#!/usr/bin/env python3
"""Project-specific lint for the msplog tree (registered as a CTest).

Checks enforced over src/ (stdlib only, no third-party deps):

  pragma-once          every header starts its preprocessor life with
                       `#pragma once`.
  raw-sync             `std::mutex` / `std::shared_mutex` /
                       `std::condition_variable` (and their includes) are
                       banned outside src/audit — everything else must go
                       through the audit::Mutex wrappers so the lock-order
                       auditor sees every acquisition.
  naked-new            no naked `new` / `delete`: ownership goes through
                       make_unique/make_shared/containers. Intentional leaks
                       (function-local singletons) carry an
                       `audit:allow(naked-new)` comment.
  nondeterminism       rand()/srand()/std::random_device/std::mt19937 are
                       banned outside common/rng.h: all randomness flows
                       through the seeded simulation RNG so runs replay
                       deterministically.
  blocking-under-lock  calls into the simulated disk/network (model-time
                       sleeps) while a lock guard is live. src/sim itself is
                       exempt (holding io_mu_ across the sleep IS the
                       single-spindle latency model). Reviewed exceptions
                       carry `audit:allow(blocking-under-lock)`.
  include-hygiene      no `#include "../..."` — project includes are rooted
                       at src/.
  obs-layering         src/obs must not include headers from any server
                       layer (sim/, msp/, log/, rpc/, db/, baseline/,
                       recovery/, harness/): the observability layer is
                       dependency-free — flight recorder and friends take
                       injected callbacks (clock, snapshot providers) — so
                       every other layer (including sim/ itself) can use it
                       without cycles.
  flush-send           kFlushRequest messages are built ONLY by the per-peer
                       flush aggregator (src/msp/flush_aggregator.cc), which
                       owns coalescing, resend dedup and the watermark. A
                       direct `msg.type = MessageType::kFlushRequest`
                       anywhere else bypasses group commit and duplicates
                       in-flight requests. Comparisons (switch/==) are fine.
  guarded-by           in headers under src/, a mutable data member declared
                       after an audit::Mutex/SharedMutex member of the same
                       class must carry GUARDED_BY/PT_GUARDED_BY. Exempt:
                       atomics, const/static/constexpr members, std::thread,
                       audit:: types (mutexes, condvars), and obs metric
                       handles (internally atomic). Reviewed exceptions
                       carry `audit:allow(guarded-by)`. This keeps the clang
                       thread-safety annotations (src/audit/annotations.h)
                       honest on the GCC-only container where clang cannot
                       check them.
  requires-assertheld  a method annotated REQUIRES(...)/REQUIRES_SHARED(...)
                       must either be named *Locked (callers see the
                       contract in the name) or call AssertHeld /
                       AssertSharedHeld in its body (the runtime twin of the
                       compile-time contract).
  hot-path-alloc       files tagged with a `// lint:hot-path` comment are
                       allocation-free fast paths: constructing a
                       std::function (heap-allocates per capture — use the
                       SBO Task from common/task.h) and calling the
                       allocating by-value Encode() (use the size-
                       precomputed EncodeTo span path) are banned there.
                       Naked new is already banned tree-wide. Reviewed
                       exceptions carry `audit:allow(hot-path-alloc)`.

Exit status: 0 clean, 1 findings (one `file:line: [check] message` per line).
Run with --self-test to prove the hot-path-alloc rule still fires on known-
bad input (a broken rule would otherwise pass everything forever).
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

RAW_SYNC = re.compile(
    r"std::(mutex|shared_mutex|condition_variable(_any)?|scoped_lock)\b")
RAW_SYNC_INCLUDE = re.compile(
    r'#\s*include\s*<(mutex|shared_mutex|condition_variable)>')
NAKED_NEW = re.compile(r"(^|[^_\w.])new\s+[A-Za-z_]")
NAKED_DELETE = re.compile(r"(^|[^_\w.])delete(\[\])?\s+[A-Za-z_*(]")
NONDET = re.compile(
    r"(^|[^_\w])(rand|srand)\s*\(|std::(random_device|mt19937)")
PARENT_INCLUDE = re.compile(r'#\s*include\s*"\.\./')
OBS_FORBIDDEN_INCLUDE = re.compile(
    r'#\s*include\s*"(sim|msp|log|rpc|db|baseline|recovery|harness)/')
# Assignment (construction) of a kFlushRequest message; `==`/`!=`/`<=`/`>=`
# comparisons and case labels don't match.
FLUSH_SEND = re.compile(r"(?<![=!<>])=\s*MessageType::kFlushRequest")

GUARD_DECL = re.compile(
    r"\b(?:audit::(?:LockGuard|UniqueLock|SharedLock|SharedUniqueLock)|"
    r"std::(?:lock_guard|unique_lock|shared_lock|scoped_lock)<[^>]*>)\s+"
    r"(\w+)\s*[({]")
# Calls that advance model time (simulated I/O / messaging): blocking while a
# lock is held serializes unrelated sessions behind one spindle seek.
# Metadata-only queries (Exists, FileSize, Register) are free and excluded.
BLOCKING_CALL = re.compile(
    r"\b(?:disk_?->\s*(?:ReadAt|WriteAt|Append|Truncate|Delete|PunchHole|"
    r"Barrier|Format)|(?:network_?|net_?)->\s*Send|log_->Flush\w*|"
    r"positions\.Flush\w*)\s*\(")
UNLOCK = re.compile(r"\b(\w+)\s*\.\s*unlock\s*\(")

# hot-path-alloc: a file opts in with this tag (in a comment); the checks
# run on comment-stripped lines so prose mentioning std::function is fine.
HOT_PATH_TAG = "lint:hot-path"
STD_FUNCTION = re.compile(r"\bstd::function\s*<")
ENCODE_BY_VALUE = re.compile(r"\.\s*Encode\s*\(\s*\)")


def strip_comments_strings(line, in_block):
    """Replace comment/string contents with spaces, preserving columns.

    Returns (code_line, still_in_block_comment)."""
    out = []
    i, n = 0, len(line)
    state = "block" if in_block else "code"
    quote = ""
    while i < n:
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                out.append(" " * (n - i))
                break
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = "str"
                quote = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(" ")
        else:  # string literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != quote else c)
        i += 1
    return "".join(out), state == "block"


def lint_file(path, findings):
    rel = path.relative_to(REPO).as_posix()
    raw = path.read_text(errors="replace").splitlines()
    lint_source(rel, raw, findings)


def lint_source(rel, raw, findings):
    in_audit = rel.startswith("src/audit/")
    in_sim = rel.startswith("src/sim/")
    is_header = rel.endswith(".h")
    hot_path = any(HOT_PATH_TAG in l for l in raw)

    # Guard tracking: list of (name, brace_depth_at_declaration).
    guards = []
    depth = 0
    in_block = False
    saw_pragma_once = False
    saw_preproc = False

    for lineno, raw_line in enumerate(raw, 1):
        # Waivers apply to their own line or the two lines that follow, so a
        # comment line can cover a wrapped statement.
        nearby = "\n".join(raw[max(0, lineno - 3):lineno])
        allow = {m for m in re.findall(r"audit:allow\(([\w-]+)\)", nearby)}
        line, in_block = strip_comments_strings(raw_line, in_block)

        if is_header and not saw_pragma_once and not saw_preproc:
            if re.match(r"\s*#\s*pragma\s+once", line):
                saw_pragma_once = True
            elif re.match(r"\s*#", line):
                saw_preproc = True  # some other directive came first

        if not in_audit:
            if RAW_SYNC.search(line) or RAW_SYNC_INCLUDE.search(line):
                findings.append(
                    f"{rel}:{lineno}: [raw-sync] raw std sync primitive; "
                    "use the audit::Mutex wrappers (src/audit/mutex.h)")

        if "naked-new" not in allow:
            if NAKED_NEW.search(line) or NAKED_DELETE.search(line):
                findings.append(
                    f"{rel}:{lineno}: [naked-new] naked new/delete; use "
                    "make_unique/make_shared or audit:allow(naked-new)")

        if rel != "src/common/rng.h" and NONDET.search(line):
            findings.append(
                f"{rel}:{lineno}: [nondeterminism] unseeded randomness; "
                "use the simulation RNG (common/rng.h)")

        # Checked against the raw line: the include path lives inside a string
        # literal, which strip_comments_strings blanks out.
        if PARENT_INCLUDE.search(raw_line):
            findings.append(
                f"{rel}:{lineno}: [include-hygiene] parent-relative "
                "include; include paths are rooted at src/")

        if rel.startswith("src/obs/") and \
                OBS_FORBIDDEN_INCLUDE.search(raw_line):
            findings.append(
                f"{rel}:{lineno}: [obs-layering] src/obs must not include "
                "server-layer headers (obs is dependency-free)")

        if rel != "src/msp/flush_aggregator.cc" and FLUSH_SEND.search(line):
            findings.append(
                f"{rel}:{lineno}: [flush-send] kFlushRequest built outside "
                "the flush aggregator; route the flush through "
                "FlushAggregator::Submit so it can coalesce")

        if hot_path and "hot-path-alloc" not in allow:
            if STD_FUNCTION.search(line):
                findings.append(
                    f"{rel}:{lineno}: [hot-path-alloc] std::function in a "
                    "lint:hot-path file heap-allocates per capture; use "
                    "Task (common/task.h)")
            if ENCODE_BY_VALUE.search(line):
                findings.append(
                    f"{rel}:{lineno}: [hot-path-alloc] allocating Encode() "
                    "in a lint:hot-path file; use the size-precomputed "
                    "EncodeTo span path")

        # --- blocking-under-lock token scan ---------------------------------
        if not in_sim:
            for m in GUARD_DECL.finditer(line):
                guards.append((m.group(1), depth))
            for m in UNLOCK.finditer(line):
                guards = [g for g in guards if g[0] != m.group(1)]
            if guards and BLOCKING_CALL.search(line) \
                    and "blocking-under-lock" not in allow:
                held = ", ".join(g[0] for g in guards)
                findings.append(
                    f"{rel}:{lineno}: [blocking-under-lock] simulated I/O "
                    f"call while holding lock guard(s): {held}")
            opens = line.count("{")
            closes = line.count("}")
            # Apply closes first for `}` lines, then opens; good enough for
            # the tree's one-statement-per-line style.
            depth = max(0, depth - closes)
            guards = [g for g in guards if g[1] <= depth]
            depth += opens
        else:
            depth = max(0, depth - line.count("}")) + line.count("{")

    if is_header and not saw_pragma_once:
        findings.append(f"{rel}:1: [pragma-once] header missing #pragma once")


MUTEX_MEMBER = re.compile(r"\baudit::(?:Mutex|SharedMutex)\s+\w+")
GUARDED_ANNOT = re.compile(r"\b(?:GUARDED_BY|PT_GUARDED_BY)\s*\(")
CLASS_OPEN = re.compile(r"\b(?:class|struct)\s+[A-Z]\w*[^;]*\{")
# Members that need no GUARDED_BY: synchronization objects themselves,
# atomics, threads (joined under an external protocol), const/static state,
# and obs metric handles (stable pointers to internally-atomic objects).
EXEMPT_MEMBER = re.compile(
    r"\b(?:std::atomic\b|std::thread\b|audit::|static\b|constexpr\b|"
    r"using\b|typedef\b|friend\b|enum\b|const\b|obs::\w+\s*\*)")


def lint_guarded_by(path, findings):
    """guarded-by: post-mutex mutable members in headers must be annotated.

    Line-oriented heuristic tuned to the tree's one-declaration-per-line
    style: tracks class scopes, joins multi-line member declarations at the
    class's member depth, and evaluates each completed statement."""
    rel = path.relative_to(REPO).as_posix()
    raw = path.read_text(errors="replace").splitlines()
    stripped = []
    in_block = False
    for line in raw:
        s, in_block = strip_comments_strings(line, in_block)
        stripped.append(s)

    depth = 0
    # Stack of class scopes: [member_depth, mutex_seen].
    classes = []
    stmt, stmt_start = "", None
    for lineno, line in enumerate(stripped, 1):
        at_member_depth = bool(classes) and depth == classes[-1][0]
        if at_member_depth and not re.match(
                r"\s*(?:public|private|protected)\s*:|\s*#|\s*$", line):
            if stmt_start is None:
                stmt_start = lineno
            stmt += " " + line.strip()
            if ";" in line:
                seen_mutex = classes[-1][1]
                if MUTEX_MEMBER.search(stmt):
                    classes[-1][1] = True
                elif (seen_mutex and "(" not in stmt
                      and not EXEMPT_MEMBER.search(stmt)
                      and re.search(r"\w+\s*(?:=[^;]*|\{[^;]*\})?\s*;", stmt)):
                    nearby = "\n".join(raw[max(0, stmt_start - 3):lineno])
                    if "audit:allow(guarded-by)" not in nearby:
                        findings.append(
                            f"{rel}:{stmt_start}: [guarded-by] mutable "
                            "member declared after this class's mutex "
                            "without GUARDED_BY/PT_GUARDED_BY (or "
                            "audit:allow(guarded-by) with a reason)")
                stmt, stmt_start = "", None
            elif "{" in line:
                # A multi-line inline function header, not a data member.
                stmt, stmt_start = "", None
        if CLASS_OPEN.search(line) and "enum" not in line:
            classes.append([depth + 1, False])
            stmt, stmt_start = "", None
        depth += line.count("{") - line.count("}")
        while classes and depth < classes[-1][0]:
            classes.pop()
            stmt, stmt_start = "", None


REQUIRES_ANNOT = re.compile(r"\bREQUIRES(?:_SHARED)?\s*\(")
NAME_BEFORE_PARENS = re.compile(r"(\w+)\s*\(")


def lint_requires_assertheld(header_texts, all_texts, findings):
    """requires-assertheld: REQUIRES methods call AssertHeld or end Locked."""
    for rel, text in header_texts.items():
        flat = " ".join(text.split())
        for m in REQUIRES_ANNOT.finditer(flat):
            names = NAME_BEFORE_PARENS.findall(flat[max(0, m.start() - 240):
                                                    m.start()])
            if not names:
                continue
            name = names[-1]
            if name.endswith("Locked") or name.startswith("Assert"):
                continue
            # Find the definition (out-of-line or inline) and look for the
            # runtime twin near the top of the body.
            ok = False
            for body_text in all_texts.values():
                for dm in re.finditer(
                        r"\b" + re.escape(name) + r"\s*\([^;{]*\)[^;{]*\{",
                        body_text):
                    body = body_text[dm.end():dm.end() + 600]
                    if "AssertHeld" in body or "AssertSharedHeld" in body:
                        ok = True
                        break
                if ok:
                    break
            if not ok:
                lineno = text[:text.find(name)].count("\n") + 1 \
                    if name in text else 1
                findings.append(
                    f"{rel}:{lineno}: [requires-assertheld] {name}() is "
                    "annotated REQUIRES but neither ends in 'Locked' nor "
                    "calls AssertHeld/AssertSharedHeld in its body")


def self_test():
    """Prove hot-path-alloc fires on known-bad input and stays quiet
    otherwise. Exercised by the lint_msplog_selftest CTest."""
    bad = [
        "// lint:hot-path",
        "#include <functional>",
        "std::function<void()> cb = [] {};",   # finding 1
        "Bytes b = rec.Encode();",             # finding 2
        "// audit:allow(hot-path-alloc): reviewed — cold error path",
        "std::function<void()> waived = [] {};",
        "w.EncodeTo(&buf);  // the good path never fires",
        "// a comment saying std::function or .Encode() never fires",
    ]
    findings = []
    lint_source("src/fake/hot.cc", bad, findings)
    hits = [f for f in findings if "[hot-path-alloc]" in f]
    if len(hits) != 2:
        sys.exit("lint_msplog: self-test FAILED: expected exactly 2 "
                 "hot-path-alloc findings on the bad fixture, got %d:\n%s"
                 % (len(hits), "\n".join(findings)))
    findings = []
    # Same source without the tag: the rule must not fire at all.
    lint_source("src/fake/cold.cc", bad[1:], findings)
    if any("[hot-path-alloc]" in f for f in findings):
        sys.exit("lint_msplog: self-test FAILED: hot-path-alloc fired on an "
                 "untagged file:\n" + "\n".join(findings))
    print("lint_msplog: self-test OK")
    return 0


def main():
    if "--self-test" in sys.argv[1:]:
        return self_test()
    findings = []
    files = sorted(
        p for p in SRC.rglob("*") if p.suffix in (".h", ".cc"))
    if not files:
        print("lint_msplog: no sources found under src/", file=sys.stderr)
        return 1
    for path in files:
        lint_file(path, findings)
    header_texts = {}
    all_texts = {}
    for path in files:
        rel = path.relative_to(REPO).as_posix()
        text = path.read_text(errors="replace")
        all_texts[rel] = text
        if path.suffix == ".h" and not rel.startswith("src/audit/"):
            header_texts[rel] = text
            lint_guarded_by(path, findings)
    lint_requires_assertheld(header_texts, all_texts, findings)
    for f in findings:
        print(f)
    if findings:
        print(f"lint_msplog: {len(findings)} finding(s) in "
              f"{len(files)} files", file=sys.stderr)
        return 1
    print(f"lint_msplog: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
