#!/usr/bin/env python3
"""Validate the BENCH_JSON machine-readable output of a bench binary.

Usage:  check_bench_json.py <bench-binary> [args...]

Runs the binary, scrapes every line of the form

    BENCH_JSON {...}

and checks that each blob parses as JSON and carries the expected schema:
a "bench" name, response-time quantiles (p50 <= p90 <= p99 <= max), and
histogram breakdown objects with consistent count/quantile fields.
Recovery-side benches (RECOVERY_BENCHES) are checked against the outage
observatory schema instead: an outage_report with known per-session fates,
non-negative time-to-servable, and monotonic MTTR quantiles.
Registered in CTest against `bench_fig14_response_time --quick` and
`bench_recovery_time --quick`.
"""
import json
import subprocess
import sys

REQUIRED_TOP = ["bench", "requests", "avg_ms", "p50_ms", "p90_ms", "p99_ms"]
REQUIRED_HIST = ["count", "mean", "p50", "p90", "p99", "min", "max"]
HIST_KEYS = ["response", "queue_wait", "execute", "flush_wait"]

# Recovery-side benches emit recovery metrics plus an outage_report section
# instead of the response-time schema above.
RECOVERY_BENCHES = {"recovery_time", "fig15b_crash_rate"}

# CPU micro-benches (bench_micro_ops --json) emit per-op nanosecond costs of
# the hot-path primitives instead of model-time response quantiles.
MICRO_BENCHES = {"micro_ops"}
REQUIRED_MICRO = [
    "payload_bytes", "ops", "append_ns", "appends_per_sec", "append_cold_ns",
    "encode_ns", "encode_to_ns", "enqueue_ns",
]
OUTAGE_FATES = {"replayed", "orphaned", "never-logged", "pending"}
REQUIRED_OUTAGE = [
    "valid", "complete", "generation", "epoch", "crash_model_ms",
    "recovery_start_ms", "sessions", "mttr",
]
REQUIRED_MTTR = ["count", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms"]

# Benches that must also carry per-session telemetry and a p99 blame
# breakdown (the observability sections, validated structurally below).
TELEMETRY_BENCHES = {
    "fig14_response_time", "fig14_scraper_overhead", "flush_coalescing",
}
REQUIRED_SESSION = [
    "session", "requests", "nested_calls", "max_request_fanout",
    "cross_domain_calls", "flush_stalls", "flush_stall_ms", "log_records",
    "log_bytes", "forced_flushes", "piggybacked_sends", "checkpoints",
    "replays", "dv_entries", "calls_by_peer",
]
REQUIRED_BLAME = [
    "threshold_ms", "traces_total", "traces_slow", "traces_incomplete",
    "total_ms", "buckets", "shares",
]
BLAME_BUCKETS = [
    "queue_wait_ms", "exec_ms", "local_flush_ms", "remote_flush_ms",
    "net_resend_ms", "other_ms",
]


def fail(msg):
    print("check_bench_json: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def check_hist(name, h):
    if not isinstance(h, dict):
        fail("%s is not an object: %r" % (name, h))
    for k in REQUIRED_HIST:
        if k not in h:
            fail("%s missing field %r (has %s)" % (name, k, sorted(h)))
    if h["count"] < 0:
        fail("%s negative count" % name)
    if h["count"] > 0:
        if not (h["min"] <= h["p50"] <= h["p90"] <= h["p99"] <= h["max"]):
            fail("%s quantiles not monotonic: %r" % (name, h))


def check_telemetry(bench, tel):
    if not isinstance(tel, list):
        fail("%s session_telemetry is not a list: %r" % (bench, tel))
    if not tel:
        fail("%s session_telemetry is empty — the MSP hot paths did not "
             "record any per-session stats" % bench)
    total_requests = 0
    for s in tel:
        if not isinstance(s, dict):
            fail("%s session_telemetry entry not an object: %r" % (bench, s))
        for k in REQUIRED_SESSION:
            if k not in s:
                fail("%s session %r missing field %r (has %s)"
                     % (bench, s.get("session"), k, sorted(s)))
        if not isinstance(s["calls_by_peer"], dict):
            fail("%s session %r calls_by_peer not an object"
                 % (bench, s["session"]))
        if sum(s["calls_by_peer"].values()) > s["nested_calls"]:
            fail("%s session %r: per-peer calls (%d) exceed nested_calls (%d)"
                 % (bench, s["session"], sum(s["calls_by_peer"].values()),
                    s["nested_calls"]))
        if s["flush_stalls"] > 0 and s["flush_stall_ms"] <= 0:
            fail("%s session %r: %d flush stalls but zero stall time"
                 % (bench, s["session"], s["flush_stalls"]))
        total_requests += s["requests"]
    if total_requests == 0:
        fail("%s session_telemetry reports zero requests across all sessions"
             % bench)


def check_blame(bench, b):
    if not isinstance(b, dict):
        fail("%s p99_blame is not an object: %r" % (bench, b))
    for k in REQUIRED_BLAME:
        if k not in b:
            fail("%s p99_blame missing field %r (has %s)"
                 % (bench, k, sorted(b)))
    for k in BLAME_BUCKETS:
        if k not in b["buckets"]:
            fail("%s p99_blame buckets missing %r" % (bench, k))
        if b["buckets"][k] < 0:
            fail("%s p99_blame bucket %r negative: %r" % (bench, k, b))
    if b["traces_slow"] > b["traces_total"]:
        fail("%s p99_blame slow > total: %r" % (bench, b))
    if b["traces_slow"] > 0:
        if b["total_ms"] <= 0:
            fail("%s p99_blame has slow traces but zero total time: %r"
                 % (bench, b))
        # Buckets partition total_ms ('other' absorbs the remainder), so
        # shares must sum to ~1.
        share_sum = sum(b["shares"].values())
        if not 0.99 <= share_sum <= 1.01:
            fail("%s p99_blame shares sum to %.4f, expected ~1: %r"
                 % (bench, share_sum, b))


def check_outage_report(bench, rep):
    if not isinstance(rep, dict):
        fail("%s outage_report is not an object: %r" % (bench, rep))
    for k in REQUIRED_OUTAGE:
        if k not in rep:
            fail("%s outage_report missing field %r (has %s)"
                 % (bench, k, sorted(rep)))
    for k in REQUIRED_MTTR:
        if k not in rep["mttr"]:
            fail("%s outage_report mttr missing %r" % (bench, k))
    if not rep["valid"]:
        # No joined crash (e.g. a zero-crash-rate point): the empty report
        # must not pretend otherwise.
        if rep["sessions"] or rep["mttr"]["count"] != 0:
            fail("%s invalid outage_report carries data: %r" % (bench, rep))
        return
    for s in rep["sessions"]:
        for k in ["session", "fate", "was_in_flight", "servable_at_ms",
                  "time_to_servable_ms", "requests_replayed"]:
            if k not in s:
                fail("%s outage session missing %r: %r" % (bench, k, s))
        if s["fate"] not in OUTAGE_FATES:
            fail("%s unknown outage fate %r" % (bench, s["fate"]))
        if s["fate"] != "pending" and s["time_to_servable_ms"] < 0:
            fail("%s session %r negative time-to-servable: %r"
                 % (bench, s["session"], s))
    m = rep["mttr"]
    if m["count"] > 0:
        if not (0 <= m["p50_ms"] <= m["p90_ms"] <= m["p99_ms"] <= m["max_ms"]):
            fail("%s outage MTTR quantiles not monotonic: %r" % (bench, m))
    if rep["complete"]:
        pending = [s for s in rep["sessions"] if s["fate"] == "pending"]
        if pending:
            fail("%s outage_report complete but has pending fates: %r"
                 % (bench, pending))


def main():
    if len(sys.argv) < 2:
        fail("usage: check_bench_json.py <bench-binary> [args...]")
    cmd = sys.argv[1:]
    try:
        out = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
    except subprocess.TimeoutExpired:
        fail("bench binary timed out: %s" % " ".join(cmd))
    if out.returncode != 0:
        fail("bench binary exited %d:\n%s" % (out.returncode, out.stderr))

    blobs = []
    for line in out.stdout.splitlines():
        if not line.startswith("BENCH_JSON "):
            continue
        raw = line[len("BENCH_JSON "):]
        try:
            blobs.append(json.loads(raw))
        except ValueError as e:
            fail("unparseable BENCH_JSON line (%s): %s" % (e, raw))
    if not blobs:
        tail = "\n".join(out.stdout.splitlines()[-10:])
        fail("no BENCH_JSON lines in output of: %s\n"
             "The bench ran (exit 0) but emitted no machine-readable "
             "results — its BENCH_JSON emitter is broken or was renamed.\n"
             "Last stdout lines were:\n%s" % (" ".join(cmd), tail))

    for blob in blobs:
        if blob.get("bench") in RECOVERY_BENCHES:
            if "outage_report" not in blob:
                fail("%s blob missing outage_report" % blob["bench"])
            check_outage_report(blob["bench"], blob["outage_report"])
            continue
        if blob.get("bench") in MICRO_BENCHES:
            for k in REQUIRED_MICRO:
                if k not in blob:
                    fail("%s blob missing field %r (has %s)"
                         % (blob["bench"], k, sorted(blob)))
                if not isinstance(blob[k], (int, float)) or blob[k] <= 0:
                    fail("%s field %r not a positive number: %r"
                         % (blob["bench"], k, blob[k]))
            # The zero-copy span encode exists to beat the allocating one.
            # Sanitizer instrumentation (TSan shadows every byte written)
            # distorts the ratio, so — like compare_bench's tolerance
            # bands — the check is skipped for sanitized blobs.
            if not blob.get("sanitized") and \
                    blob["encode_to_ns"] > blob["encode_ns"] * 1.5:
                fail("%s encode_to (%.0f ns) much slower than encode "
                     "(%.0f ns) — the zero-copy path regressed"
                     % (blob["bench"], blob["encode_to_ns"],
                        blob["encode_ns"]))
            continue
        for k in REQUIRED_TOP:
            if k not in blob:
                fail("blob missing field %r: %s" % (k, sorted(blob)))
        if blob["requests"] <= 0:
            fail("blob reports zero completed requests: %r" % blob)
        if not (0 < blob["p50_ms"] <= blob["p90_ms"] <= blob["p99_ms"]):
            fail("response quantiles not monotonic: %r" % blob)
        for k in HIST_KEYS:
            if k in blob:
                check_hist(k, blob[k])
        # The server must have attributed work to the breakdowns.
        if "execute" in blob and blob["execute"]["count"] == 0:
            fail("execute histogram recorded nothing: %r" % blob)
        if blob["bench"] in TELEMETRY_BENCHES:
            if "session_telemetry" not in blob:
                fail("%s blob missing session_telemetry" % blob["bench"])
            if "p99_blame" not in blob:
                fail("%s blob missing p99_blame" % blob["bench"])
            check_telemetry(blob["bench"], blob["session_telemetry"])
            check_blame(blob["bench"], blob["p99_blame"])

    print("check_bench_json: OK (%d blob(s) from %s)"
          % (len(blobs), " ".join(cmd)))


if __name__ == "__main__":
    main()
