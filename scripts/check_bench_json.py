#!/usr/bin/env python3
"""Validate the BENCH_JSON machine-readable output of a bench binary.

Usage:  check_bench_json.py <bench-binary> [args...]

Runs the binary, scrapes every line of the form

    BENCH_JSON {...}

and checks that each blob parses as JSON and carries the expected schema:
a "bench" name, response-time quantiles (p50 <= p90 <= p99 <= max), and
histogram breakdown objects with consistent count/quantile fields.
Registered in CTest against `bench_fig14_response_time --quick`.
"""
import json
import subprocess
import sys

REQUIRED_TOP = ["bench", "requests", "avg_ms", "p50_ms", "p90_ms", "p99_ms"]
REQUIRED_HIST = ["count", "mean", "p50", "p90", "p99", "min", "max"]
HIST_KEYS = ["response", "queue_wait", "execute", "flush_wait"]


def fail(msg):
    print("check_bench_json: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def check_hist(name, h):
    if not isinstance(h, dict):
        fail("%s is not an object: %r" % (name, h))
    for k in REQUIRED_HIST:
        if k not in h:
            fail("%s missing field %r (has %s)" % (name, k, sorted(h)))
    if h["count"] < 0:
        fail("%s negative count" % name)
    if h["count"] > 0:
        if not (h["min"] <= h["p50"] <= h["p90"] <= h["p99"] <= h["max"]):
            fail("%s quantiles not monotonic: %r" % (name, h))


def main():
    if len(sys.argv) < 2:
        fail("usage: check_bench_json.py <bench-binary> [args...]")
    cmd = sys.argv[1:]
    try:
        out = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
    except subprocess.TimeoutExpired:
        fail("bench binary timed out: %s" % " ".join(cmd))
    if out.returncode != 0:
        fail("bench binary exited %d:\n%s" % (out.returncode, out.stderr))

    blobs = []
    for line in out.stdout.splitlines():
        if not line.startswith("BENCH_JSON "):
            continue
        raw = line[len("BENCH_JSON "):]
        try:
            blobs.append(json.loads(raw))
        except ValueError as e:
            fail("unparseable BENCH_JSON line (%s): %s" % (e, raw))
    if not blobs:
        tail = "\n".join(out.stdout.splitlines()[-10:])
        fail("no BENCH_JSON lines in output of: %s\n"
             "The bench ran (exit 0) but emitted no machine-readable "
             "results — its BENCH_JSON emitter is broken or was renamed.\n"
             "Last stdout lines were:\n%s" % (" ".join(cmd), tail))

    for blob in blobs:
        for k in REQUIRED_TOP:
            if k not in blob:
                fail("blob missing field %r: %s" % (k, sorted(blob)))
        if blob["requests"] <= 0:
            fail("blob reports zero completed requests: %r" % blob)
        if not (0 < blob["p50_ms"] <= blob["p90_ms"] <= blob["p99_ms"]):
            fail("response quantiles not monotonic: %r" % blob)
        for k in HIST_KEYS:
            if k in blob:
                check_hist(k, blob[k])
        # The server must have attributed work to the breakdowns.
        if "execute" in blob and blob["execute"]["count"] == 0:
            fail("execute histogram recorded nothing: %r" % blob)

    print("check_bench_json: OK (%d blob(s) from %s)"
          % (len(blobs), " ".join(cmd)))


if __name__ == "__main__":
    main()
