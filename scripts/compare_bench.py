#!/usr/bin/env python3
"""Continuous perf-regression oracle: diff a bench's BENCH_JSON output
against a checked-in baseline with per-metric tolerance bands.

Usage:
  compare_bench.py --baseline FILE <bench-binary> [args...]
  compare_bench.py --baseline FILE --update <bench-binary> [args...]
  compare_bench.py --self-test

Modes:
  default      Run the binary, match each emitted blob to a baseline row by
               its identifying fields, and check every metric listed in the
               row against its tolerance band. Exit 1 on any violation, on
               an emitted blob with no baseline row, or on a baseline row
               that no blob matched. Writes a human-readable report (see
               --report) either way.
  --update     Run the binary and regenerate the baseline file from what it
               emitted, preserving each metric's tolerance spec. This is the
               supported way to refresh baselines after an intentional perf
               change (see docs/OBSERVABILITY.md).
  --self-test  Negative test for CI: build a fake result and a baseline,
               verify the comparator accepts an in-band value and rejects an
               out-of-band one. No binary is run.

Baseline format (bench/baselines/*.json):
  {
    "bench": "fig14_response_time",       # BENCH_JSON "bench" name to match
    "key_fields": ["config", "m"],        # identify a row within the bench
    "rows": [
      {
        "key": {"config": "LoOptimistic", "m": 1},
        "metrics": {
          "avg_ms": {"value": 24.7, "rel_tol": 0.35, "direction": "high"},
          ...
        }
      }
    ]
  }

Metric spec fields:
  value      Baseline value.
  rel_tol    Allowed relative deviation (0.35 = 35%). Mutually exclusive
             with "exact".
  exact      true: the current value must equal the baseline exactly
             (counters with deterministic expectations).
  direction  "high" (default): only value > baseline*(1+rel_tol) fails —
             a regression; improvements pass silently. "both": deviation in
             either direction fails (for quantities that should be stable,
             where "better" usually means the bench broke).

Tolerances are wide by necessity: model time is wall-clock derived and this
runs on shared CI machines. The oracle is meant to catch step-function
regressions (an extra flush per request, a lost coalescing opportunity), not
single-digit percent drift. A blob carrying "sanitized": true (emitted by
TSan/ASan-instrumented benches, ~10-20x slower) skips its tolerance-band
metrics entirely; exact counters still compare, unless their spec sets
"sanitized_skip": true (for counts that resend quantization perturbs on an
instrumented build, e.g. flush legs).
"""
import argparse
import json
import subprocess
import sys


def run_bench(cmd):
    try:
        out = subprocess.run(cmd, capture_output=True, text=True,
                             timeout=600)
    except subprocess.TimeoutExpired:
        sys.exit("compare_bench: bench binary timed out: %s" % " ".join(cmd))
    if out.returncode != 0:
        sys.exit("compare_bench: bench binary exited %d:\n%s"
                 % (out.returncode, out.stderr))
    blobs = []
    for line in out.stdout.splitlines():
        if line.startswith("BENCH_JSON "):
            blobs.append(json.loads(line[len("BENCH_JSON "):]))
    if not blobs:
        sys.exit("compare_bench: no BENCH_JSON lines from: %s"
                 % " ".join(cmd))
    return blobs


def row_key(key_fields, obj):
    return tuple((f, obj.get(f)) for f in key_fields)


def check_metric(name, spec, current, failures):
    base = spec["value"]
    direction = spec.get("direction", "high")
    if spec.get("exact"):
        if current != base:
            failures.append("%s: expected exactly %r, got %r"
                            % (name, base, current))
        return
    tol = spec["rel_tol"]
    if base == 0:
        # Relative tolerance is meaningless at zero; any nonzero value of a
        # zero baseline is a change worth flagging.
        if current != 0:
            failures.append("%s: baseline 0, got %r" % (name, current))
        return
    dev = (current - base) / abs(base)
    if direction == "high":
        bad = dev > tol
    else:
        bad = abs(dev) > tol
    if bad:
        failures.append(
            "%s: %.6g vs baseline %.6g (%+.1f%%, tolerance %s%.0f%%)"
            % (name, current, base, dev * 100.0,
               "" if direction == "both" else "+", tol * 100.0))


def compare(baseline, blobs, report_lines):
    """Returns a list of failure strings (empty = pass)."""
    failures = []
    key_fields = baseline["key_fields"]
    rows = {row_key(key_fields, r["key"]): r for r in baseline["rows"]}
    matched = set()
    for blob in blobs:
        if blob.get("bench") != baseline["bench"]:
            continue
        k = row_key(key_fields, blob)
        row = rows.get(k)
        if row is None:
            failures.append("no baseline row for %s" % dict(k))
            continue
        matched.add(k)
        # Model time is wall-clock derived; TSan/ASan instrumentation slows
        # it ~10-20x, so a blob from a sanitized build opts its tolerance-
        # band (timing) metrics out of comparison. Exact counters — request
        # counts, on-demand replays, session totals — still compare hard.
        sanitized = bool(blob.get("sanitized"))
        row_failures = []
        skipped = 0
        for name, spec in row["metrics"].items():
            if name not in blob:
                row_failures.append("%s: missing from bench output" % name)
                continue
            if sanitized and (not spec.get("exact")
                              or spec.get("sanitized_skip")):
                skipped += 1
                continue
            check_metric(name, spec, blob[name], row_failures)
        status = "FAIL" if row_failures else "ok"
        report_lines.append("%-4s %s" % (status, dict(k)))
        if skipped:
            report_lines.append(
                "      (sanitized build: skipped %d tolerance-band "
                "metric(s); exact counters still checked)" % skipped)
        for name, spec in sorted(row["metrics"].items()):
            if name in blob:
                report_lines.append("      %-24s %10.6g  (baseline %.6g)"
                                    % (name, blob[name], spec["value"]))
        for f in row_failures:
            report_lines.append("      ! %s" % f)
            failures.append("%s: %s" % (dict(k), f))
    for k in rows:
        if k not in matched:
            failures.append("baseline row never matched: %s" % dict(k))
            report_lines.append("FAIL baseline row never matched: %s"
                                % dict(k))
    return failures


def update(baseline, blobs, path):
    key_fields = baseline["key_fields"]
    by_key = {}
    for blob in blobs:
        if blob.get("bench") == baseline["bench"]:
            by_key[row_key(key_fields, blob)] = blob
    for row in baseline["rows"]:
        k = row_key(key_fields, row["key"])
        blob = by_key.get(k)
        if blob is None:
            sys.exit("compare_bench: --update: bench emitted no blob for "
                     "baseline row %s" % dict(k))
        for name, spec in row["metrics"].items():
            if name not in blob:
                sys.exit("compare_bench: --update: metric %r missing from "
                         "blob %s" % (name, dict(k)))
            spec["value"] = blob[name]
    with open(path, "w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print("compare_bench: baseline %s updated (%d row(s))"
          % (path, len(baseline["rows"])))


def self_test():
    baseline = {
        "bench": "fake",
        "key_fields": ["config"],
        "rows": [{
            "key": {"config": "X"},
            "metrics": {
                "avg_ms": {"value": 10.0, "rel_tol": 0.20,
                           "direction": "high"},
                "msgs": {"value": 4, "exact": True},
                "stable": {"value": 100.0, "rel_tol": 0.10,
                           "direction": "both"},
            },
        }],
    }
    good = [{"bench": "fake", "config": "X", "avg_ms": 11.0, "msgs": 4,
             "stable": 95.0}]
    # Out of band in all three ways: +50% on a 20% band, wrong exact
    # counter, and a "both"-direction metric that improved too much.
    bad = [{"bench": "fake", "config": "X", "avg_ms": 15.0, "msgs": 5,
            "stable": 80.0}]
    lines = []
    if compare(baseline, good, lines):
        sys.exit("compare_bench: self-test FAILED: in-band value rejected:\n"
                 + "\n".join(lines))
    lines = []
    failures = compare(baseline, bad, lines)
    if len(failures) != 3:
        sys.exit("compare_bench: self-test FAILED: expected 3 rejections "
                 "for out-of-band values, got %d:\n%s"
                 % (len(failures), "\n".join(lines)))
    # An improvement under direction "high" must pass.
    lines = []
    improved = [{"bench": "fake", "config": "X", "avg_ms": 5.0, "msgs": 4,
                 "stable": 100.0}]
    if compare(baseline, improved, lines):
        sys.exit("compare_bench: self-test FAILED: improvement rejected:\n"
                 + "\n".join(lines))
    # A sanitized (TSan/ASan) blob: wildly inflated wall-time metrics are
    # skipped, but a wrong exact counter must still fail.
    lines = []
    sanitized_ok = [{"bench": "fake", "config": "X", "sanitized": True,
                     "avg_ms": 150.0, "msgs": 4, "stable": 9.0}]
    if compare(baseline, sanitized_ok, lines):
        sys.exit("compare_bench: self-test FAILED: sanitized blob's timing "
                 "metrics were not skipped:\n" + "\n".join(lines))
    lines = []
    sanitized_bad = [{"bench": "fake", "config": "X", "sanitized": True,
                      "avg_ms": 150.0, "msgs": 5, "stable": 9.0}]
    if len(compare(baseline, sanitized_bad, lines)) != 1:
        sys.exit("compare_bench: self-test FAILED: sanitized blob's exact "
                 "counter mismatch not rejected:\n" + "\n".join(lines))
    print("compare_bench: self-test OK")


def main():
    ap = argparse.ArgumentParser(add_help=True)
    ap.add_argument("--baseline")
    ap.add_argument("--update", action="store_true")
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("--report", help="write the comparison report here "
                    "(default: stdout only)")
    ap.add_argument("cmd", nargs=argparse.REMAINDER)
    args = ap.parse_args()

    if args.self_test:
        self_test()
        return
    if not args.baseline or not args.cmd:
        ap.error("--baseline FILE and a bench command are required "
                 "(or use --self-test)")
    with open(args.baseline) as f:
        baseline = json.load(f)
    blobs = run_bench(args.cmd)
    if args.update:
        update(baseline, blobs, args.baseline)
        return
    report_lines = ["compare_bench: %s vs %s" % (" ".join(args.cmd),
                                                 args.baseline)]
    failures = compare(baseline, blobs, report_lines)
    report_lines.append("result: %s (%d failure(s))"
                        % ("FAIL" if failures else "PASS", len(failures)))
    report = "\n".join(report_lines) + "\n"
    sys.stdout.write(report)
    if args.report:
        with open(args.report, "w") as f:
            f.write(report)
    if failures:
        sys.exit(1)


if __name__ == "__main__":
    main()
