#!/usr/bin/env bash
# Build the tree under Clang's Thread Safety Analysis with findings as
# errors, verifying the lock-discipline annotations in src/audit/annotations.h
# and everything that uses them.
#
# Usage: scripts/run_thread_safety.sh [build-dir]
#
# Exits 0 with a SKIPPED notice when clang++ is not installed (the default
# container ships only GCC, where the annotation macros expand to nothing),
# so CI jobs and local hooks can call it unconditionally.
set -u

cd "$(dirname "$0")/.."

CLANG="$(command -v clang++ || true)"
if [[ -z "$CLANG" ]]; then
  echo "run_thread_safety: SKIPPED (clang++ not installed)"
  exit 0
fi

BUILD="${1:-build-thread-safety}"
cmake -B "$BUILD" -S . \
  -DCMAKE_CXX_COMPILER="$CLANG" \
  -DMSPLOG_THREAD_SAFETY=ON >/dev/null || exit 1
cmake --build "$BUILD" -j"$(nproc)"
status=$?
if [[ $status -eq 0 ]]; then
  echo "run_thread_safety: OK"
fi
exit $status
