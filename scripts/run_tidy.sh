#!/usr/bin/env bash
# Run clang-tidy over src/ with the repo's .clang-tidy profile.
#
# Usage: scripts/run_tidy.sh [build-dir]
#
# Needs a compile_commands.json; configures one into build-tidy/ if the given
# build dir has none. Exits 0 with a SKIPPED notice when clang-tidy is not
# installed (the default container ships only the compiler), so CI jobs and
# local hooks can call it unconditionally.
set -u

cd "$(dirname "$0")/.."

TIDY="$(command -v clang-tidy || true)"
RUNNER="$(command -v run-clang-tidy || true)"
if [[ -z "$TIDY" ]]; then
  echo "run_tidy: SKIPPED (clang-tidy not installed)"
  exit 0
fi

BUILD="${1:-build-tidy}"
if [[ ! -f "$BUILD/compile_commands.json" ]]; then
  cmake -B "$BUILD" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null || exit 1
fi

FILES=$(find src -name '*.cc' | sort)
if [[ -n "$RUNNER" ]]; then
  "$RUNNER" -p "$BUILD" -quiet $FILES
else
  "$TIDY" -p "$BUILD" --quiet $FILES
fi
status=$?
if [[ $status -eq 0 ]]; then
  echo "run_tidy: OK"
fi
exit $status
