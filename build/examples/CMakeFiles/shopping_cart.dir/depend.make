# Empty dependencies file for shopping_cart.
# This may be replaced when dependencies are built.
