file(REMOVE_RECURSE
  "CMakeFiles/crash_demo.dir/crash_demo.cc.o"
  "CMakeFiles/crash_demo.dir/crash_demo.cc.o.d"
  "crash_demo"
  "crash_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
