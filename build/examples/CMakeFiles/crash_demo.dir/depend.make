# Empty dependencies file for crash_demo.
# This may be replaced when dependencies are built.
