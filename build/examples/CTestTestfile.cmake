# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;13;msplog_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shopping_cart "/root/repo/build/examples/shopping_cart")
set_tests_properties(example_shopping_cart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;14;msplog_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_travel_booking "/root/repo/build/examples/travel_booking")
set_tests_properties(example_travel_booking PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;15;msplog_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_crash_demo "/root/repo/build/examples/crash_demo")
set_tests_properties(example_crash_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;16;msplog_add_example;/root/repo/examples/CMakeLists.txt;0;")
