file(REMOVE_RECURSE
  "CMakeFiles/msplog_recovery.dir/dependency_vector.cc.o"
  "CMakeFiles/msplog_recovery.dir/dependency_vector.cc.o.d"
  "CMakeFiles/msplog_recovery.dir/recovered_state_table.cc.o"
  "CMakeFiles/msplog_recovery.dir/recovered_state_table.cc.o.d"
  "libmsplog_recovery.a"
  "libmsplog_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msplog_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
