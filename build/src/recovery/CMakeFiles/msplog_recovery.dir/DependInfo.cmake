
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recovery/dependency_vector.cc" "src/recovery/CMakeFiles/msplog_recovery.dir/dependency_vector.cc.o" "gcc" "src/recovery/CMakeFiles/msplog_recovery.dir/dependency_vector.cc.o.d"
  "/root/repo/src/recovery/recovered_state_table.cc" "src/recovery/CMakeFiles/msplog_recovery.dir/recovered_state_table.cc.o" "gcc" "src/recovery/CMakeFiles/msplog_recovery.dir/recovered_state_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/msplog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
