# Empty dependencies file for msplog_recovery.
# This may be replaced when dependencies are built.
