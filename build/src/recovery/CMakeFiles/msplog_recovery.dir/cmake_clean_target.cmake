file(REMOVE_RECURSE
  "libmsplog_recovery.a"
)
