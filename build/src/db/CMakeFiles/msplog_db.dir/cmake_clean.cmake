file(REMOVE_RECURSE
  "CMakeFiles/msplog_db.dir/kvdb.cc.o"
  "CMakeFiles/msplog_db.dir/kvdb.cc.o.d"
  "libmsplog_db.a"
  "libmsplog_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msplog_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
