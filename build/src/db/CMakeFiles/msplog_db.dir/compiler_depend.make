# Empty compiler generated dependencies file for msplog_db.
# This may be replaced when dependencies are built.
