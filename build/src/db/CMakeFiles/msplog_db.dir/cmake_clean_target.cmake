file(REMOVE_RECURSE
  "libmsplog_db.a"
)
