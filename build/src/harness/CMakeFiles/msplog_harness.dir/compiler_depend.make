# Empty compiler generated dependencies file for msplog_harness.
# This may be replaced when dependencies are built.
