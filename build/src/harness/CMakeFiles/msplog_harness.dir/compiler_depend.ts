# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for msplog_harness.
