file(REMOVE_RECURSE
  "CMakeFiles/msplog_harness.dir/paper_workload.cc.o"
  "CMakeFiles/msplog_harness.dir/paper_workload.cc.o.d"
  "libmsplog_harness.a"
  "libmsplog_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msplog_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
