file(REMOVE_RECURSE
  "libmsplog_harness.a"
)
