# Empty dependencies file for msplog_common.
# This may be replaced when dependencies are built.
