file(REMOVE_RECURSE
  "libmsplog_common.a"
)
