file(REMOVE_RECURSE
  "CMakeFiles/msplog_common.dir/crc32c.cc.o"
  "CMakeFiles/msplog_common.dir/crc32c.cc.o.d"
  "CMakeFiles/msplog_common.dir/serde.cc.o"
  "CMakeFiles/msplog_common.dir/serde.cc.o.d"
  "libmsplog_common.a"
  "libmsplog_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msplog_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
