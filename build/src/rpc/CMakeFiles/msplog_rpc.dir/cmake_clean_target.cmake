file(REMOVE_RECURSE
  "libmsplog_rpc.a"
)
