# Empty dependencies file for msplog_rpc.
# This may be replaced when dependencies are built.
