file(REMOVE_RECURSE
  "CMakeFiles/msplog_rpc.dir/client_endpoint.cc.o"
  "CMakeFiles/msplog_rpc.dir/client_endpoint.cc.o.d"
  "CMakeFiles/msplog_rpc.dir/message.cc.o"
  "CMakeFiles/msplog_rpc.dir/message.cc.o.d"
  "libmsplog_rpc.a"
  "libmsplog_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msplog_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
