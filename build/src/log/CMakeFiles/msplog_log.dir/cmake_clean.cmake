file(REMOVE_RECURSE
  "CMakeFiles/msplog_log.dir/log_anchor.cc.o"
  "CMakeFiles/msplog_log.dir/log_anchor.cc.o.d"
  "CMakeFiles/msplog_log.dir/log_file.cc.o"
  "CMakeFiles/msplog_log.dir/log_file.cc.o.d"
  "CMakeFiles/msplog_log.dir/log_record.cc.o"
  "CMakeFiles/msplog_log.dir/log_record.cc.o.d"
  "CMakeFiles/msplog_log.dir/log_scanner.cc.o"
  "CMakeFiles/msplog_log.dir/log_scanner.cc.o.d"
  "CMakeFiles/msplog_log.dir/position_stream.cc.o"
  "CMakeFiles/msplog_log.dir/position_stream.cc.o.d"
  "libmsplog_log.a"
  "libmsplog_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msplog_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
