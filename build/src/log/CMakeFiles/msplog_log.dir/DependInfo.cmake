
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/log/log_anchor.cc" "src/log/CMakeFiles/msplog_log.dir/log_anchor.cc.o" "gcc" "src/log/CMakeFiles/msplog_log.dir/log_anchor.cc.o.d"
  "/root/repo/src/log/log_file.cc" "src/log/CMakeFiles/msplog_log.dir/log_file.cc.o" "gcc" "src/log/CMakeFiles/msplog_log.dir/log_file.cc.o.d"
  "/root/repo/src/log/log_record.cc" "src/log/CMakeFiles/msplog_log.dir/log_record.cc.o" "gcc" "src/log/CMakeFiles/msplog_log.dir/log_record.cc.o.d"
  "/root/repo/src/log/log_scanner.cc" "src/log/CMakeFiles/msplog_log.dir/log_scanner.cc.o" "gcc" "src/log/CMakeFiles/msplog_log.dir/log_scanner.cc.o.d"
  "/root/repo/src/log/position_stream.cc" "src/log/CMakeFiles/msplog_log.dir/position_stream.cc.o" "gcc" "src/log/CMakeFiles/msplog_log.dir/position_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/msplog_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/msplog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/msplog_recovery.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
