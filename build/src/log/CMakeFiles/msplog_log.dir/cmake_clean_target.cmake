file(REMOVE_RECURSE
  "libmsplog_log.a"
)
