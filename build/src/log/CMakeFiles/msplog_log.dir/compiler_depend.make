# Empty compiler generated dependencies file for msplog_log.
# This may be replaced when dependencies are built.
