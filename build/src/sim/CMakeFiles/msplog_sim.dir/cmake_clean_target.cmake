file(REMOVE_RECURSE
  "libmsplog_sim.a"
)
