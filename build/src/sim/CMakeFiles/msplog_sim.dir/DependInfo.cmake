
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/sim_disk.cc" "src/sim/CMakeFiles/msplog_sim.dir/sim_disk.cc.o" "gcc" "src/sim/CMakeFiles/msplog_sim.dir/sim_disk.cc.o.d"
  "/root/repo/src/sim/sim_env.cc" "src/sim/CMakeFiles/msplog_sim.dir/sim_env.cc.o" "gcc" "src/sim/CMakeFiles/msplog_sim.dir/sim_env.cc.o.d"
  "/root/repo/src/sim/sim_network.cc" "src/sim/CMakeFiles/msplog_sim.dir/sim_network.cc.o" "gcc" "src/sim/CMakeFiles/msplog_sim.dir/sim_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/msplog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
