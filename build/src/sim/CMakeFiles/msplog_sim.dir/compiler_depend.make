# Empty compiler generated dependencies file for msplog_sim.
# This may be replaced when dependencies are built.
