file(REMOVE_RECURSE
  "CMakeFiles/msplog_sim.dir/sim_disk.cc.o"
  "CMakeFiles/msplog_sim.dir/sim_disk.cc.o.d"
  "CMakeFiles/msplog_sim.dir/sim_env.cc.o"
  "CMakeFiles/msplog_sim.dir/sim_env.cc.o.d"
  "CMakeFiles/msplog_sim.dir/sim_network.cc.o"
  "CMakeFiles/msplog_sim.dir/sim_network.cc.o.d"
  "libmsplog_sim.a"
  "libmsplog_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msplog_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
