file(REMOVE_RECURSE
  "CMakeFiles/msplog_baseline.dir/state_server.cc.o"
  "CMakeFiles/msplog_baseline.dir/state_server.cc.o.d"
  "libmsplog_baseline.a"
  "libmsplog_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msplog_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
