
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/state_server.cc" "src/baseline/CMakeFiles/msplog_baseline.dir/state_server.cc.o" "gcc" "src/baseline/CMakeFiles/msplog_baseline.dir/state_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/msplog_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/msplog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/msplog_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/msplog_recovery.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
