file(REMOVE_RECURSE
  "libmsplog_baseline.a"
)
