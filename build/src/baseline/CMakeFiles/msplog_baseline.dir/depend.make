# Empty dependencies file for msplog_baseline.
# This may be replaced when dependencies are built.
