file(REMOVE_RECURSE
  "CMakeFiles/msplog_msp.dir/exec_context.cc.o"
  "CMakeFiles/msplog_msp.dir/exec_context.cc.o.d"
  "CMakeFiles/msplog_msp.dir/msp.cc.o"
  "CMakeFiles/msplog_msp.dir/msp.cc.o.d"
  "CMakeFiles/msplog_msp.dir/msp_checkpoint.cc.o"
  "CMakeFiles/msplog_msp.dir/msp_checkpoint.cc.o.d"
  "CMakeFiles/msplog_msp.dir/msp_recovery.cc.o"
  "CMakeFiles/msplog_msp.dir/msp_recovery.cc.o.d"
  "CMakeFiles/msplog_msp.dir/service_domain.cc.o"
  "CMakeFiles/msplog_msp.dir/service_domain.cc.o.d"
  "CMakeFiles/msplog_msp.dir/thread_pool.cc.o"
  "CMakeFiles/msplog_msp.dir/thread_pool.cc.o.d"
  "libmsplog_msp.a"
  "libmsplog_msp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msplog_msp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
