# Empty dependencies file for msplog_msp.
# This may be replaced when dependencies are built.
