
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msp/exec_context.cc" "src/msp/CMakeFiles/msplog_msp.dir/exec_context.cc.o" "gcc" "src/msp/CMakeFiles/msplog_msp.dir/exec_context.cc.o.d"
  "/root/repo/src/msp/msp.cc" "src/msp/CMakeFiles/msplog_msp.dir/msp.cc.o" "gcc" "src/msp/CMakeFiles/msplog_msp.dir/msp.cc.o.d"
  "/root/repo/src/msp/msp_checkpoint.cc" "src/msp/CMakeFiles/msplog_msp.dir/msp_checkpoint.cc.o" "gcc" "src/msp/CMakeFiles/msplog_msp.dir/msp_checkpoint.cc.o.d"
  "/root/repo/src/msp/msp_recovery.cc" "src/msp/CMakeFiles/msplog_msp.dir/msp_recovery.cc.o" "gcc" "src/msp/CMakeFiles/msplog_msp.dir/msp_recovery.cc.o.d"
  "/root/repo/src/msp/service_domain.cc" "src/msp/CMakeFiles/msplog_msp.dir/service_domain.cc.o" "gcc" "src/msp/CMakeFiles/msplog_msp.dir/service_domain.cc.o.d"
  "/root/repo/src/msp/thread_pool.cc" "src/msp/CMakeFiles/msplog_msp.dir/thread_pool.cc.o" "gcc" "src/msp/CMakeFiles/msplog_msp.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/msplog_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/msplog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/msplog_log.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/msplog_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/msplog_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/msplog_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
