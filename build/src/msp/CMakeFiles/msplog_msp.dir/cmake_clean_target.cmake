file(REMOVE_RECURSE
  "libmsplog_msp.a"
)
