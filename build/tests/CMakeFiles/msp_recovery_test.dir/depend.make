# Empty dependencies file for msp_recovery_test.
# This may be replaced when dependencies are built.
