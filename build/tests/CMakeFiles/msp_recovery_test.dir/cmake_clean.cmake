file(REMOVE_RECURSE
  "CMakeFiles/msp_recovery_test.dir/msp_recovery_test.cc.o"
  "CMakeFiles/msp_recovery_test.dir/msp_recovery_test.cc.o.d"
  "msp_recovery_test"
  "msp_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msp_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
