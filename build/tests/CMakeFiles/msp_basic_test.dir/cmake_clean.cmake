file(REMOVE_RECURSE
  "CMakeFiles/msp_basic_test.dir/msp_basic_test.cc.o"
  "CMakeFiles/msp_basic_test.dir/msp_basic_test.cc.o.d"
  "msp_basic_test"
  "msp_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msp_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
