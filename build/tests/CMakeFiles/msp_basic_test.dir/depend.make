# Empty dependencies file for msp_basic_test.
# This may be replaced when dependencies are built.
