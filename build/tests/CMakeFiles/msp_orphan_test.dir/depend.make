# Empty dependencies file for msp_orphan_test.
# This may be replaced when dependencies are built.
