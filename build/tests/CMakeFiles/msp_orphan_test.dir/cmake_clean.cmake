file(REMOVE_RECURSE
  "CMakeFiles/msp_orphan_test.dir/msp_orphan_test.cc.o"
  "CMakeFiles/msp_orphan_test.dir/msp_orphan_test.cc.o.d"
  "msp_orphan_test"
  "msp_orphan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msp_orphan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
