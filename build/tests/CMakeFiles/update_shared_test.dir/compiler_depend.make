# Empty compiler generated dependencies file for update_shared_test.
# This may be replaced when dependencies are built.
