file(REMOVE_RECURSE
  "CMakeFiles/update_shared_test.dir/update_shared_test.cc.o"
  "CMakeFiles/update_shared_test.dir/update_shared_test.cc.o.d"
  "update_shared_test"
  "update_shared_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_shared_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
