file(REMOVE_RECURSE
  "CMakeFiles/kvdb_test.dir/kvdb_test.cc.o"
  "CMakeFiles/kvdb_test.dir/kvdb_test.cc.o.d"
  "kvdb_test"
  "kvdb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
