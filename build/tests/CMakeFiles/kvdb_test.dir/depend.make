# Empty dependencies file for kvdb_test.
# This may be replaced when dependencies are built.
