
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/log_test.cc" "tests/CMakeFiles/log_test.dir/log_test.cc.o" "gcc" "tests/CMakeFiles/log_test.dir/log_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/msplog_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/msp/CMakeFiles/msplog_msp.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/msplog_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/msplog_db.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/msplog_log.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/msplog_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/msplog_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/msplog_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/msplog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
