# Empty compiler generated dependencies file for orphan_notice_test.
# This may be replaced when dependencies are built.
