file(REMOVE_RECURSE
  "CMakeFiles/orphan_notice_test.dir/orphan_notice_test.cc.o"
  "CMakeFiles/orphan_notice_test.dir/orphan_notice_test.cc.o.d"
  "orphan_notice_test"
  "orphan_notice_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orphan_notice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
