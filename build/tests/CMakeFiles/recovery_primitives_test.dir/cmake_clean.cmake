file(REMOVE_RECURSE
  "CMakeFiles/recovery_primitives_test.dir/recovery_primitives_test.cc.o"
  "CMakeFiles/recovery_primitives_test.dir/recovery_primitives_test.cc.o.d"
  "recovery_primitives_test"
  "recovery_primitives_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_primitives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
