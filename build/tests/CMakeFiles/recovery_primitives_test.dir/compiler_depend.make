# Empty compiler generated dependencies file for recovery_primitives_test.
# This may be replaced when dependencies are built.
