# Empty compiler generated dependencies file for bench_fig15a_checkpoint_overhead.
# This may be replaced when dependencies are built.
