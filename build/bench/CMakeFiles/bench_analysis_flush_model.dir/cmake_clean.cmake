file(REMOVE_RECURSE
  "CMakeFiles/bench_analysis_flush_model.dir/bench_analysis_flush_model.cc.o"
  "CMakeFiles/bench_analysis_flush_model.dir/bench_analysis_flush_model.cc.o.d"
  "bench_analysis_flush_model"
  "bench_analysis_flush_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analysis_flush_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
