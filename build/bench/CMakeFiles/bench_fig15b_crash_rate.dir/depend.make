# Empty dependencies file for bench_fig15b_crash_rate.
# This may be replaced when dependencies are built.
