file(REMOVE_RECURSE
  "CMakeFiles/bench_log_composition.dir/bench_log_composition.cc.o"
  "CMakeFiles/bench_log_composition.dir/bench_log_composition.cc.o.d"
  "bench_log_composition"
  "bench_log_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_log_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
