# Empty compiler generated dependencies file for bench_log_composition.
# This may be replaced when dependencies are built.
