file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_max_response.dir/bench_fig16_max_response.cc.o"
  "CMakeFiles/bench_fig16_max_response.dir/bench_fig16_max_response.cc.o.d"
  "bench_fig16_max_response"
  "bench_fig16_max_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_max_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
