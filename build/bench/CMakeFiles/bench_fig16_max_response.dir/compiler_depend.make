# Empty compiler generated dependencies file for bench_fig16_max_response.
# This may be replaced when dependencies are built.
