file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_multiclient.dir/bench_fig17_multiclient.cc.o"
  "CMakeFiles/bench_fig17_multiclient.dir/bench_fig17_multiclient.cc.o.d"
  "bench_fig17_multiclient"
  "bench_fig17_multiclient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_multiclient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
