# Empty compiler generated dependencies file for bench_dv_overhead.
# This may be replaced when dependencies are built.
