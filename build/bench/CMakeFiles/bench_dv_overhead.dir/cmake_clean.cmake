file(REMOVE_RECURSE
  "CMakeFiles/bench_dv_overhead.dir/bench_dv_overhead.cc.o"
  "CMakeFiles/bench_dv_overhead.dir/bench_dv_overhead.cc.o.d"
  "bench_dv_overhead"
  "bench_dv_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dv_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
