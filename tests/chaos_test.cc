// Chaos soak: the strongest end-to-end validation of exactly-once
// execution. Both MSPs crash repeatedly (MSP2 via the §5.4 in-flight
// injection, MSP1 abruptly between requests), the client link drops and
// duplicates messages, and aggressive checkpoint daemons run throughout.
// After the storm, the shared state at both MSPs must equal the
// deterministic function of exactly one execution per request.
#include <gtest/gtest.h>

#include "harness/paper_workload.h"

namespace msplog {
namespace {

struct ChaosParam {
  uint64_t seed;
  double drop;
  double dup;
  int crash2_every;   // §5.4 injection at MSP2
  int crash1_every;   // abrupt MSP1 crash between requests
  bool checkpoints;
};

class ChaosTest : public ::testing::TestWithParam<ChaosParam> {};

TEST_P(ChaosTest, ExactlyOnceThroughTheStorm) {
  const ChaosParam& p = GetParam();
  PaperWorkloadOptions opts;
  opts.config = PaperConfig::kLoOptimistic;
  opts.time_scale = 0.0;
  opts.checkpoint_daemon = p.checkpoints;
  opts.session_checkpoint_threshold_bytes = p.checkpoints ? 6144 : 0;
  opts.msp_checkpoint_log_bytes = p.checkpoints ? 16384 : 0;
  opts.client_max_sends = 5000;
  PaperWorkload w(opts);
  ASSERT_TRUE(w.Start().ok());

  if (p.drop > 0 || p.dup > 0) {
    FaultPlan faults;
    faults.drop_prob = p.drop;
    faults.duplicate_prob = p.dup;
    w.network()->SetFaults("chaos", "msp1", faults);
    w.network()->SetFaults("msp1", "chaos", faults);
  }

  ClientOptions copts;
  copts.max_sends = 5000;
  copts.resend_timeout_ms = 50;
  copts.busy_backoff_ms = 10;
  ClientEndpoint client(w.env(), w.network(), "chaos", copts);
  w.network()->SetLinkLatency("chaos", "msp1", 0.0);
  auto session = client.StartSession("msp1");

  constexpr int kRequests = 40;
  for (int i = 1; i <= kRequests; ++i) {
    Bytes reply;
    Status st =
        client.Call(&session, "ServiceMethod1", MakePayload(100, i), &reply);
    ASSERT_TRUE(st.ok()) << "request " << i << ": " << st.ToString();
    if (p.crash2_every > 0 && i % p.crash2_every == 0) {
      w.ArmCrash();  // MSP2 killed mid-request on the next request
    }
    if (p.crash1_every > 0 && i % p.crash1_every == 0) {
      w.msp1()->Crash();
      ASSERT_TRUE(w.msp1()->Start().ok());
    }
  }

  // Deterministic final state: SV0 was rewritten by every request exactly
  // once; SV2 by every ServiceMethod2 execution exactly once.
  auto sv0 = w.msp1()->PeekSharedValue("SV0");
  ASSERT_TRUE(sv0.ok());
  EXPECT_EQ(*sv0, MakePayload(128, kRequests * 2 + 1));
  auto sv2 = w.msp2()->PeekSharedValue("SV2");
  ASSERT_TRUE(sv2.ok());
  EXPECT_EQ(*sv2, MakePayload(128, kRequests * 3 + 1));

  // And the session still works.
  Bytes reply;
  ASSERT_TRUE(
      client.Call(&session, "ServiceMethod1", MakePayload(100, 99), &reply)
          .ok());
  w.Shutdown();
}

INSTANTIATE_TEST_SUITE_P(
    Storms, ChaosTest,
    ::testing::Values(
        // callee crashes only
        ChaosParam{1, 0.0, 0.0, 5, 0, false},
        // caller crashes only
        ChaosParam{2, 0.0, 0.0, 0, 7, false},
        // both crash, interleaved
        ChaosParam{3, 0.0, 0.0, 5, 9, false},
        // both crash + lossy, duplicating client link
        ChaosParam{4, 0.25, 0.25, 6, 11, false},
        // everything at once, with aggressive checkpoint daemons
        ChaosParam{5, 0.2, 0.2, 5, 8, true},
        // checkpoints + callee crashes
        ChaosParam{6, 0.0, 0.0, 4, 0, true}),
    [](const ::testing::TestParamInfo<ChaosParam>& info) {
      return "storm" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace msplog
