// Three-MSP chain tests: transitive dependency-vector propagation (Fig. 5)
// and recovery independence across service-domain boundaries (§3.1).
//
//   client -> A.relay -> B.relay -> C.count
//
// Intra-domain: a crash of C can transitively orphan B and A (their DVs
// carry C entries through B's replies). Cross-domain: the boundary stops
// both the DV propagation and the rollback.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <thread>

#include "msp/log_inspect.h"
#include "msp/msp.h"
#include "msp/service_domain.h"
#include "obs/trace.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

class ChainTest : public ::testing::Test {
 protected:
  ChainTest()
      : env_(0.0), net_(&env_), disk_a_(&env_, "da"), disk_b_(&env_, "db"),
        disk_c_(&env_, "dc") {}

  void Build(const std::string& dom_a, const std::string& dom_b,
             const std::string& dom_c) {
    directory_.Assign("A", dom_a);
    directory_.Assign("B", dom_b);
    directory_.Assign("C", dom_c);
    MspConfig ca, cb, cc;
    ca.id = "A";
    cb.id = "B";
    cc.id = "C";
    ca.flush_timeout_ms = cb.flush_timeout_ms = cc.flush_timeout_ms = 20;
    a_ = std::make_unique<Msp>(&env_, &net_, &disk_a_, &directory_, ca);
    b_ = std::make_unique<Msp>(&env_, &net_, &disk_b_, &directory_, cb);
    c_ = std::make_unique<Msp>(&env_, &net_, &disk_c_, &directory_, cc);

    c_->RegisterMethod("count",
                       [](ServiceContext* ctx, const Bytes&, Bytes* r) {
                         Bytes cur = ctx->GetSessionVar("n");
                         int n = cur.empty() ? 0 : std::stoi(cur);
                         ctx->SetSessionVar("n", std::to_string(n + 1));
                         *r = std::to_string(n + 1);
                         return Status::OK();
                       });
    b_->RegisterMethod(
        "brelay", [this](ServiceContext* ctx, const Bytes& arg, Bytes* r) {
          Bytes reply;
          MSPLOG_RETURN_IF_ERROR(ctx->Call("C", "count", arg, &reply));
          if (!ctx->in_replay() && b_gate_.load()) {
            b_held_.store(true);
            while (b_gate_.load()) {
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
          }
          *r = "B(" + reply + ")";
          return Status::OK();
        });
    a_->RegisterMethod(
        "arelay", [this](ServiceContext* ctx, const Bytes& arg, Bytes* r) {
          Bytes reply;
          MSPLOG_RETURN_IF_ERROR(ctx->Call("B", "brelay", arg, &reply));
          if (!ctx->in_replay() && a_gate_.load()) {
            a_held_.store(true);
            while (a_gate_.load()) {
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
          }
          *r = "A(" + reply + ")";
          return Status::OK();
        });
    ASSERT_TRUE(c_->Start().ok());
    ASSERT_TRUE(b_->Start().ok());
    ASSERT_TRUE(a_->Start().ok());
  }

  void TearDown() override {
    a_gate_.store(false);
    b_gate_.store(false);
    if (a_) a_->Shutdown();
    if (b_) b_->Shutdown();
    if (c_) c_->Shutdown();
  }

  void CrashAndRestartC() {
    c_->Crash();
    ASSERT_TRUE(c_->Start().ok());
  }

  SimEnvironment env_;
  SimNetwork net_;
  SimDisk disk_a_, disk_b_, disk_c_;
  DomainDirectory directory_;
  std::unique_ptr<Msp> a_, b_, c_;
  std::atomic<bool> a_gate_{false}, a_held_{false};
  std::atomic<bool> b_gate_{false}, b_held_{false};
};

TEST_F(ChainTest, TransitiveDvPropagationIntraDomain) {
  Build("dom", "dom", "dom");
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("A");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "arelay", "x", &reply).ok());
  EXPECT_EQ(reply, "A(B(1))");
  // A's session DV must transitively contain entries for B AND C (Fig. 5).
  // Observable via the recovered-state machinery: stop the world and check
  // the attached DVs reached the log.
  ASSERT_TRUE(a_->log()->FlushAll().ok());
}

TEST_F(ChainTest, LeafCrashTransitivelyOrphansWholeChainExactlyOnce) {
  Build("dom", "dom", "dom");
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("A");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "arelay", "x", &reply).ok());
  EXPECT_EQ(reply, "A(B(1))");

  // Park A's session mid-request (after it received B's reply, which
  // carries B's and C's dependencies), crash C, release.
  a_gate_.store(true);
  a_held_.store(false);
  std::thread t([&] {
    while (!a_held_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    CrashAndRestartC();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    a_gate_.store(false);
  });
  Status st = client.Call(&session, "arelay", "x", &reply);
  t.join();
  ASSERT_TRUE(st.ok()) << st.ToString();
  // Exactly-once through the whole chain: C's counter is 2, not 1 or 3.
  EXPECT_EQ(reply, "A(B(2))");
  EXPECT_GE(env_.stats().orphans_detected.load(), 1u);

  ASSERT_TRUE(client.Call(&session, "arelay", "x", &reply).ok());
  EXPECT_EQ(reply, "A(B(3))");
}

TEST_F(ChainTest, DomainBoundaryStopsRollback) {
  // A alone in its own domain; B and C share one. C's crash may orphan B,
  // but never A: B flushes (pessimistically) before every reply to A.
  Build("domA", "domBC", "domBC");
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("A");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "arelay", "x", &reply).ok());
  EXPECT_EQ(reply, "A(B(1))");

  // Park B mid-request (it holds an unflushed dependency on C), crash C.
  b_gate_.store(true);
  b_held_.store(false);
  std::thread t([&] {
    while (!b_held_.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    CrashAndRestartC();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    b_gate_.store(false);
  });
  Status st = client.Call(&session, "arelay", "x", &reply);
  t.join();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(reply, "A(B(2))");

  // Recovery independence (§3.1): recovery messages are broadcast only
  // within the service domain, so A never even learns about C's crash.
  auto table = a_->SnapshotRecoveredTable();
  for (const auto& [key, sn] : table.entries()) {
    EXPECT_NE(key.first, "C") << "A (cross-domain) learned about C's crash";
    EXPECT_NE(key.first, "B");
  }
  // And A's DVs never carried B/C entries: cross-domain messages are
  // DV-free; its log has no dependency on the other domain.
  ASSERT_TRUE(client.Call(&session, "arelay", "x", &reply).ok());
  EXPECT_EQ(reply, "A(B(3))");
}

TEST_F(ChainTest, MiddleNodeCrashRecoversChain) {
  Build("dom", "dom", "dom");
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("A");
  Bytes reply;
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(client.Call(&session, "arelay", "x", &reply).ok());
  }
  b_->Crash();
  ASSERT_TRUE(b_->Start().ok());
  ASSERT_TRUE(client.Call(&session, "arelay", "x", &reply).ok());
  EXPECT_EQ(reply, "A(B(4))");
}

// Acceptance: one client request's causal trace spans the whole A → B → C
// chain with correct parent links, the Chrome dump carries cross-server flow
// events, and the offline inspector replays C's physical log image (after a
// real crash/recovery cycle) with zero invariant violations. The trace dump
// and the log image are exported to the working directory so CI can run
// `msplog_inspect --self-check` over the same artifact and archive the trace.
TEST_F(ChainTest, DistributedTraceSpansChainAndLogImageSelfChecks) {
  Build("dom", "dom", "dom");
  env_.tracer().Clear();
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("A");
  Bytes reply;
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(client.Call(&session, "arelay", "x", &reply).ok());
  }
  EXPECT_EQ(reply, "A(B(3))");

  // Exercise real crash recovery on the leaf, then one more request so the
  // post-crash epoch also appears in the log image.
  CrashAndRestartC();
  ASSERT_TRUE(client.Call(&session, "arelay", "x", &reply).ok());
  EXPECT_EQ(reply, "A(B(4))");

  // ---- span tree: client root → A request span → B → C ----
  auto events = env_.tracer().Events();
  const obs::TraceEvent* root = nullptr;
  for (const auto& e : events) {
    if (e.type == obs::TraceEventType::kClientCallStart && e.actor == "cli") {
      root = &e;  // first call's root span
      break;
    }
  }
  ASSERT_NE(root, nullptr);
  const uint64_t trace = root->span.trace_id;
  ASSERT_NE(trace, 0u);
  EXPECT_EQ(root->span.span_id, trace);  // root span id doubles as trace id
  auto enqueue_of = [&](const std::string& actor) -> const obs::TraceEvent* {
    for (const auto& e : events) {
      if (e.type == obs::TraceEventType::kEnqueue && e.actor == actor &&
          e.span.trace_id == trace) {
        return &e;
      }
    }
    return nullptr;
  };
  const obs::TraceEvent* enq_a = enqueue_of("A");
  const obs::TraceEvent* enq_b = enqueue_of("B");
  const obs::TraceEvent* enq_c = enqueue_of("C");
  ASSERT_NE(enq_a, nullptr);
  ASSERT_NE(enq_b, nullptr);
  ASSERT_NE(enq_c, nullptr);  // the tree spans all three servers
  EXPECT_EQ(enq_a->span.parent_span_id, root->span.span_id);
  EXPECT_EQ(enq_b->span.parent_span_id, enq_a->span.span_id);
  EXPECT_EQ(enq_c->span.parent_span_id, enq_b->span.span_id);
  EXPECT_EQ(enq_a->session, session.session_id);

  // The Chrome dump draws the causal chain as flow events.
  std::string chrome = env_.tracer().DumpChromeTracing();
  EXPECT_NE(chrome.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(chrome.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(chrome.find("\"trace_id\":" + std::to_string(trace)),
            std::string::npos);

  // ---- recovery provenance on the restarted leaf ----
  std::vector<obs::RecoveryTimeline::SessionProvenance> prov;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    prov = c_->RecoveryProvenance();
    if (!prov.empty() && !prov[0].records.empty()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_FALSE(prov.empty());
  EXPECT_FALSE(prov[0].records.empty());

  // ---- offline inspection of C's physical log image ----
  ASSERT_TRUE(c_->log()->FlushAll().ok());
  LogInspectReport report;
  ASSERT_TRUE(
      InspectLogImage(&disk_c_, "C.log", LogInspectOptions(), &report).ok());
  EXPECT_GT(report.records, 0u);
  EXPECT_GT(report.records_by_type["RequestReceive"], 0u);
  for (const auto& v : report.invariant_violations) {
    ADD_FAILURE() << "invariant violation: " << v;
  }

  // ---- export artifacts for CI (trace dump + raw log image) ----
  {
    std::ofstream tf("msplog_chain_trace.json", std::ios::binary);
    ASSERT_TRUE(tf.good());
    tf << chrome;
  }
  {
    Bytes image;
    uint64_t size = disk_c_.FileSize("C.log");
    ASSERT_GT(size, 0u);
    ASSERT_TRUE(disk_c_.ReadAt("C.log", 0, size, &image).ok());
    std::ofstream lf("msplog_chain_log_image.bin", std::ios::binary);
    ASSERT_TRUE(lf.good());
    lf.write(image.data(), static_cast<std::streamsize>(image.size()));
  }
}

TEST_F(ChainTest, AllThreeCrashTogether) {
  Build("dom", "dom", "dom");
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("A");
  Bytes reply;
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(client.Call(&session, "arelay", "x", &reply).ok());
  }
  a_->Crash();
  b_->Crash();
  c_->Crash();
  ASSERT_TRUE(c_->Start().ok());
  ASSERT_TRUE(b_->Start().ok());
  ASSERT_TRUE(a_->Start().ok());
  ASSERT_TRUE(client.Call(&session, "arelay", "x", &reply).ok());
  EXPECT_EQ(reply, "A(B(4))");
}

}  // namespace
}  // namespace msplog
