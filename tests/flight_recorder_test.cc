// Flight recorder + outage observatory tests: the black-box ring itself,
// the freeze triggers (simulated crash, invariant violation), the
// recovery-side outage join (per-session fates and MTTR vs ground truth
// under a chaos workload), the offline post-mortem cross-check, and the
// bounded crash-generation / recovery-timeline history across many cycles.
//
// The chaos test exports its frozen bundle, live outage report, and raw log
// image (msplog_outage_*.{json,bin}) so CI can drive the msplog_postmortem
// CLI over real artifacts.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <thread>

#include "audit/invariants.h"
#include "harness/paper_workload.h"
#include "msp/postmortem.h"
#include "obs/flight_recorder.h"

namespace msplog {
namespace {

// ---------------------------------------------------------------------------
// FlightRecorder unit tests (no server involved).
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, RingWrapsAndCountsDrops) {
  double now = 1.0;
  obs::FlightRecorder::Options opt;
  opt.ring_capacity = 4;
  obs::FlightRecorder fr([&now] { return now; }, opt);
  for (int i = 0; i < 10; ++i) {
    now = 1.0 + i;
    fr.Record(obs::FlightEventType::kNote, "a", "s", i, "e" + std::to_string(i));
  }
  EXPECT_EQ(fr.recorded_total(), 10u);
  EXPECT_EQ(fr.dropped(), 6u);
  std::vector<obs::FlightEvent> ring = fr.RingEvents();
  ASSERT_EQ(ring.size(), 4u);
  // Oldest-first, and exactly the newest four survive.
  for (size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i].seq, 6 + i);
    EXPECT_EQ(ring[i].detail, "e" + std::to_string(6 + i));
  }
}

TEST(FlightRecorderTest, FreezeOnCrashSnapshotsTheCrashedActorOnly) {
  double now = 5.0;
  obs::FlightRecorder fr([&now] { return now; });
  fr.SetSnapshotProvider("m1", [] {
    obs::FlightSnapshot s;
    s.statusz_json = "{\"who\":\"m1\"}";
    s.inflight_sessions = {"sA", "sB"};
    s.log_end_lsn = 100;
    s.log_durable_lsn = 80;
    return s;
  });
  fr.SetSnapshotProvider("m2", [] { return obs::FlightSnapshot(); });
  fr.set_tracer_tail_dump([] { return std::string("[{\"t\":1}]"); });
  fr.Record(obs::FlightEventType::kRequest, "m1", "sA", 7, "method");

  obs::FlightBundle b = fr.FreezeOnCrash("m1", 3, "test crash");
  EXPECT_TRUE(b.frozen);
  EXPECT_EQ(b.generation, 3u);
  EXPECT_EQ(b.actor, "m1");
  EXPECT_EQ(b.trigger, "crash");
  EXPECT_EQ(b.frozen_at_ms, 5.0);
  ASSERT_EQ(b.snapshots.size(), 1u);  // only the crashed actor
  EXPECT_EQ(b.snapshots[0].first, "m1");
  EXPECT_EQ(b.snapshots[0].second.inflight_sessions.size(), 2u);
  EXPECT_EQ(b.snapshots[0].second.log_durable_lsn, 80u);
  ASSERT_EQ(b.events.size(), 1u);
  EXPECT_EQ(b.events[0].session, "sA");
  EXPECT_EQ(fr.frozen_count(), 1u);
  // The same bundle is retrievable by actor.
  obs::FlightBundle again = fr.LatestBundleFor("m1");
  EXPECT_TRUE(again.frozen);
  EXPECT_EQ(again.generation, 3u);
  EXPECT_FALSE(fr.LatestBundleFor("nobody").frozen);

  std::string json = b.ToJson();
  EXPECT_NE(json.find("\"trigger\":\"crash\""), std::string::npos);
  EXPECT_NE(json.find("\"statusz\":{\"who\":\"m1\"}"), std::string::npos);
  EXPECT_NE(json.find("\"tracer_tail\":[{\"t\":1}]"), std::string::npos);
}

TEST(FlightRecorderTest, BundleHistoryIsBounded) {
  double now = 0;
  obs::FlightRecorder::Options opt;
  opt.max_bundles = 2;
  obs::FlightRecorder fr([&now] { return now; }, opt);
  for (uint64_t g = 1; g <= 5; ++g) {
    now = static_cast<double>(g);
    fr.FreezeOnCrash("m", g);
  }
  std::vector<obs::FlightBundle> bundles = fr.Bundles();
  ASSERT_EQ(bundles.size(), 2u);
  EXPECT_EQ(bundles[0].generation, 4u);
  EXPECT_EQ(bundles[1].generation, 5u);
  EXPECT_EQ(fr.frozen_count(), 5u);
  EXPECT_EQ(fr.LatestBundleFor("m").generation, 5u);
}

TEST(FlightRecorderTest, ViolationFreezeSnapshotsAllProviders) {
  double now = 2.0;
  obs::FlightRecorder fr([&now] { return now; });
  fr.SetSnapshotProvider("m1", [] { return obs::FlightSnapshot(); });
  fr.SetSnapshotProvider("m2", [] { return obs::FlightSnapshot(); });
  fr.FreezeOnViolation("dv-monotonic", "went backwards");
  std::vector<obs::FlightBundle> bundles = fr.Bundles();
  ASSERT_EQ(bundles.size(), 1u);
  EXPECT_EQ(bundles[0].trigger, "invariant:dv-monotonic");
  EXPECT_EQ(bundles[0].snapshots.size(), 2u);
  // The triggering invariant is also the newest ring event.
  ASSERT_FALSE(bundles[0].events.empty());
  EXPECT_EQ(bundles[0].events.back().type, obs::FlightEventType::kInvariant);
  // DumpJson carries both the live ring and the frozen bundle.
  std::string json = fr.DumpJson();
  EXPECT_NE(json.find("\"bundles\":[{"), std::string::npos);
  EXPECT_NE(json.find("invariant:dv-monotonic"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Server integration.
// ---------------------------------------------------------------------------

TEST(FlightRecorderIntegrationTest, InvariantViolationFreezesServerState) {
  PaperWorkloadOptions opts;
  opts.config = PaperConfig::kLoOptimistic;
  opts.time_scale = 0.0;
  PaperWorkload w(opts);
  ASSERT_TRUE(w.Start().ok());
  auto client = w.MakeClient("client1");
  auto session = client->StartSession("msp1");
  Bytes reply;
  ASSERT_TRUE(
      client->Call(&session, "ServiceMethod1", MakePayload(100, 1), &reply)
          .ok());

  const uint64_t frozen_before = w.env()->flight_recorder().frozen_count();
  // Fire a (non-fatal) violation directly: the registry hook wired by
  // SimEnvironment must freeze a bundle snapshotting every registered MSP.
  audit::InvariantRegistry::Instance().Violation("test-invariant",
                                                 "injected by test");
  EXPECT_EQ(w.env()->flight_recorder().frozen_count(), frozen_before + 1);
  std::vector<obs::FlightBundle> bundles =
      w.env()->flight_recorder().Bundles();
  ASSERT_FALSE(bundles.empty());
  const obs::FlightBundle& b = bundles.back();
  EXPECT_EQ(b.trigger, "invariant:test-invariant");
  ASSERT_EQ(b.snapshots.size(), 2u);  // msp1 and msp2
  for (const auto& [who, snap] : b.snapshots) {
    EXPECT_TRUE(who == "msp1" || who == "msp2");
    EXPECT_NE(snap.statusz_json.find("\"id\":\"" + who + "\""),
              std::string::npos);
  }
  audit::InvariantRegistry::Instance().ResetForTest();
  w.Shutdown();
}

TEST(FlightRecorderIntegrationTest, StatuszAndScraperCarryCrashEpochs) {
  PaperWorkloadOptions opts;
  opts.config = PaperConfig::kLoOptimistic;
  opts.time_scale = 0.0;
  PaperWorkload w(opts);
  ASSERT_TRUE(w.Start().ok());
  auto client = w.MakeClient("client1");
  auto session = client->StartSession("msp1");
  Bytes reply;
  ASSERT_TRUE(
      client->Call(&session, "ServiceMethod1", MakePayload(100, 1), &reply)
          .ok());

  std::string statusz0 = w.msp1()->DumpStatusz();
  EXPECT_NE(statusz0.find("\"crash_generation\":0"), std::string::npos);
  EXPECT_NE(statusz0.find("\"uptime_since_recovery_ms\":"), std::string::npos);

  w.msp1()->Crash();
  ASSERT_TRUE(w.msp1()->Start().ok());
  EXPECT_EQ(w.msp1()->crash_generation(), 1u);
  std::string statusz1 = w.msp1()->DumpStatusz();
  EXPECT_NE(statusz1.find("\"crash_generation\":1"), std::string::npos);
  EXPECT_NE(statusz1.find("\"last_outage_report\":{"), std::string::npos);

  // Crash + recovery annotate the metrics timeline; the scraper exposes
  // the marks in both expositions.
  std::vector<obs::MetricsScraper::EpochMark> marks =
      w.env()->scraper().EpochMarks();
  ASSERT_GE(marks.size(), 2u);
  bool saw_crash = false, saw_up = false;
  for (const auto& m : marks) {
    if (m.label.find("msp1 crash gen=1") != std::string::npos) saw_crash = true;
    if (m.label.find("msp1 up") != std::string::npos) saw_up = true;
  }
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_up);
  EXPECT_NE(w.env()->scraper().DumpPrometheus().find("# EPOCH"),
            std::string::npos);
  EXPECT_NE(w.env()->scraper().DumpJson().find("\"epoch_marks\":["),
            std::string::npos);
  w.Shutdown();
}

// ---------------------------------------------------------------------------
// Outage observatory: chaos crash mid-workload, fates vs ground truth,
// offline post-mortem cross-check, artifact export for CI.
// ---------------------------------------------------------------------------

TEST(OutageObservatoryTest, ChaosCrashFatesAndMttrMatchGroundTruth) {
  PaperWorkloadOptions opts;
  opts.config = PaperConfig::kLoOptimistic;
  opts.time_scale = 0.0;
  opts.client_max_sends = 5000;
  PaperWorkload w(opts);
  ASSERT_TRUE(w.Start().ok());

  // 30 requests, MSP2 killed mid-request every 10 (§5.4 injection).
  RunResult r = w.RunSingleClient(30, /*crash_every=*/10);
  ASSERT_EQ(r.requests, 30u);
  ASSERT_GE(w.crashes_injected(), 1u);

  const obs::FlightBundle bundle =
      w.env()->flight_recorder().LatestBundleFor("msp2");
  ASSERT_TRUE(bundle.frozen);
  EXPECT_EQ(bundle.generation, w.crashes_injected());
  ASSERT_EQ(bundle.snapshots.size(), 1u);
  const obs::FlightSnapshot& snap = bundle.snapshots[0].second;
  // MSP2 served MSP1's one outgoing session; it was in flight at the crash.
  ASSERT_FALSE(snap.inflight_sessions.empty());

  const obs::OutageReport report = w.msp2()->LastOutageReport();
  ASSERT_TRUE(report.valid);
  EXPECT_EQ(report.generation, bundle.generation);
  EXPECT_EQ(report.crash_model_ms, bundle.frozen_at_ms);
  // Ground truth: every in-flight session is accounted for with a terminal
  // fate — nothing left pending.
  EXPECT_TRUE(report.complete);
  ASSERT_EQ(report.sessions.size(), snap.inflight_sessions.size());
  for (const auto& f : report.sessions) {
    EXPECT_TRUE(f.fate == "replayed" || f.fate == "orphaned" ||
                f.fate == "never-logged")
        << f.session_id << " has fate " << f.fate;
    EXPECT_TRUE(f.was_in_flight);
    EXPECT_GT(f.servable_at_ms, report.crash_model_ms);
  }
  // The crashes happened after nine completed requests whose client replies
  // forced distributed flushes covering MSP2 — the session has a durable
  // trace, so the mid-workload crash must classify it as replayed.
  const obs::OutageReport::SessionFate* f =
      report.Find(snap.inflight_sessions[0]);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->fate, "replayed");
  EXPECT_GT(f->requests_replayed, 0u);
  // MTTR: positive, and bounded by the whole run's model time.
  ASSERT_EQ(report.mttr.count, report.sessions.size());
  EXPECT_GT(report.mttr.mean_ms, 0.0);
  EXPECT_LE(report.mttr.p50_ms, report.mttr.p99_ms);
  EXPECT_LT(report.mttr.max_ms, r.elapsed_model_ms);

  // Offline cross-check: re-derive the fates from the raw log image alone
  // (same inputs the msplog_postmortem CLI gets) and compare.
  LogFile* log = w.msp2()->log();
  ASSERT_NE(log, nullptr);
  PostmortemInput input;
  input.actor = bundle.actor;
  input.generation = bundle.generation;
  input.crash_model_ms = bundle.frozen_at_ms;
  input.durable_at_crash = snap.log_durable_lsn;
  input.inflight_sessions = snap.inflight_sessions;
  PostmortemReport offline;
  ASSERT_TRUE(DerivePostmortem(log->disk(), log->file_name(), input, &offline)
                  .ok());
  ASSERT_EQ(offline.sessions.size(), report.sessions.size());
  for (const auto& live : report.sessions) {
    const PostmortemSessionFate* mine = offline.Find(live.session_id);
    ASSERT_NE(mine, nullptr) << live.session_id;
    EXPECT_EQ(mine->fate, live.fate) << live.session_id;
  }

  // Export the artifacts for the CI post-mortem step (CLI cross-check).
  {
    std::ofstream bf("msplog_outage_bundle.json", std::ios::binary);
    bf << bundle.ToJson() << "\n";
    std::ofstream rf("msplog_outage_report.json", std::ios::binary);
    rf << report.ToJson() << "\n";
    uint64_t size = log->disk()->FileSize(log->file_name());
    Bytes image;
    ASSERT_TRUE(log->disk()->ReadAt(log->file_name(), 0, size, &image).ok());
    std::ofstream lf("msplog_outage_log_image.bin", std::ios::binary);
    lf.write(image.data(), static_cast<std::streamsize>(image.size()));
  }
  w.Shutdown();
}

TEST(OutageObservatoryTest, CrashOnFirstRequestLeavesSessionNeverLogged) {
  PaperWorkloadOptions opts;
  opts.config = PaperConfig::kLoOptimistic;
  // Real sleeps between network hops: the armed crash (spawned when the
  // ServiceMethod2 reply reaches MSP1) must land before MSP1's client-reply
  // distributed flush reaches MSP2 — at time scale 0 that is a thread race,
  // with model latencies enforced the flush request cannot arrive earlier
  // than msp_one_way_ms of real sleep after the crash thread was spawned.
  opts.time_scale = 0.25;
  opts.checkpoint_daemon = false;
  opts.client_max_sends = 5000;
  PaperWorkload w(opts);
  ASSERT_TRUE(w.Start().ok());

  // Arm before ANY request: MSP2 dies while serving its first-ever request,
  // before MSP1's client-reply flush could make MSP2's records durable — so
  // the crash erases the session from the log entirely.
  w.ArmCrash();
  ClientOptions copts;
  copts.max_sends = 5000;
  copts.resend_timeout_ms = 50;
  copts.busy_backoff_ms = 10;
  ClientEndpoint client(w.env(), w.network(), "client1", copts);
  w.network()->SetLinkLatency("client1", "msp1", 0.0);
  auto session = client.StartSession("msp1");
  Bytes reply;
  ASSERT_TRUE(
      client.Call(&session, "ServiceMethod1", MakePayload(100, 1), &reply)
          .ok());
  ASSERT_EQ(w.crashes_injected(), 1u);
  // The crash/restart cycle runs on a harness thread; the reply above can
  // only have been produced after MSP2's recovery joined the report, but
  // give the join a moment in case the reply raced the restart's tail.
  for (int i = 0; i < 2000 && !w.msp2()->LastOutageReport().valid; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const obs::FlightBundle bundle =
      w.env()->flight_recorder().LatestBundleFor("msp2");
  ASSERT_TRUE(bundle.frozen);
  const obs::FlightSnapshot& snap = bundle.snapshots[0].second;
  ASSERT_EQ(snap.inflight_sessions.size(), 1u);

  const obs::OutageReport report = w.msp2()->LastOutageReport();
  ASSERT_TRUE(report.valid);
  EXPECT_TRUE(report.complete);
  ASSERT_EQ(report.sessions.size(), 1u);
  EXPECT_EQ(report.sessions[0].fate, "never-logged");
  EXPECT_EQ(report.sessions[0].requests_replayed, 0u);
  EXPECT_GT(report.sessions[0].time_to_servable_ms, 0.0);
  EXPECT_EQ(report.mttr.count, 1u);

  // The offline derivation agrees: no durable trace below the crash point.
  LogFile* log = w.msp2()->log();
  PostmortemInput input;
  input.actor = bundle.actor;
  input.durable_at_crash = snap.log_durable_lsn;
  input.inflight_sessions = snap.inflight_sessions;
  PostmortemReport offline;
  ASSERT_TRUE(DerivePostmortem(log->disk(), log->file_name(), input, &offline)
                  .ok());
  ASSERT_EQ(offline.sessions.size(), 1u);
  EXPECT_EQ(offline.sessions[0].fate, "never-logged");
  w.Shutdown();
}

// ---------------------------------------------------------------------------
// Bounded recovery-timeline history across many crash/recovery cycles.
// ---------------------------------------------------------------------------

TEST(OutageObservatoryTest, TimelineHistoryBoundedAcrossManyCycles) {
  PaperWorkloadOptions opts;
  opts.config = PaperConfig::kLoOptimistic;
  opts.time_scale = 0.0;
  opts.client_max_sends = 5000;
  PaperWorkload w(opts);
  ASSERT_TRUE(w.Start().ok());
  auto client = w.MakeClient("client1");
  auto session = client->StartSession("msp1");

  constexpr int kCycles = 10;  // > the 8-deep history
  for (int i = 1; i <= kCycles; ++i) {
    Bytes reply;
    ASSERT_TRUE(client
                    ->Call(&session, "ServiceMethod1", MakePayload(100, i),
                           &reply)
                    .ok())
        << "request " << i;
    const uint64_t recovered_before =
        w.env()->stats().sessions_recovered.load();
    w.msp1()->Crash();
    ASSERT_TRUE(w.msp1()->Start().ok());
    // Session replays run in the thread pool after Start() returns; wait
    // for this cycle's replay so its provenance lands in THIS timeline
    // before the next crash rotates it into history.
    while (w.env()->stats().sessions_recovered.load() <= recovered_before) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_EQ(w.msp1()->crash_generation(), static_cast<uint64_t>(kCycles));

  // Initial boot was epoch 1; each cycle bumped it. History keeps the last
  // 8 plus the current timeline, evicting oldest-first.
  std::vector<obs::RecoveryTimeline> timelines =
      w.msp1()->RecentRecoveryTimelines(0);
  ASSERT_EQ(timelines.size(), 9u);
  const uint32_t newest = timelines.back().epoch;
  EXPECT_EQ(newest, static_cast<uint32_t>(kCycles + 1));
  for (size_t i = 0; i < timelines.size(); ++i) {
    EXPECT_EQ(timelines[i].epoch, newest - (timelines.size() - 1 - i))
        << "eviction must drop oldest-first";
  }
  // Provenance survives rotation: every post-crash recovery replayed the
  // client session and recorded where its state came from.
  for (const obs::RecoveryTimeline& tl : timelines) {
    ASSERT_FALSE(tl.provenance.empty()) << "epoch " << tl.epoch;
    EXPECT_EQ(tl.provenance[0].session_id, session.session_id);
    EXPECT_EQ(tl.sessions_to_recover, 1u);
  }
  // A request still works after the storm.
  Bytes reply;
  ASSERT_TRUE(client
                  ->Call(&session, "ServiceMethod1", MakePayload(100, 99),
                         &reply)
                  .ok());
  w.Shutdown();
}

}  // namespace
}  // namespace msplog
