// Unit tests for supporting infrastructure: thread pool, domain directory,
// session checkpoint codec, MSP checkpoint codec, shared-variable basics.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "msp/msp_checkpoint_format.h"
#include "msp/service_domain.h"
#include "msp/session.h"
#include "msp/shared_variable.h"
#include "msp/thread_pool.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"

namespace msplog {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&] { counter.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ShutdownDrainsQueue) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      counter.fetch_add(1);
    });
  }
  pool.Shutdown();  // must run everything already queued
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, AbortDiscardsQueue) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  std::atomic<bool> block{true};
  pool.Submit([&] {
    while (block.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  std::thread unblocker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    block.store(false);
  });
  pool.Abort();  // queued-but-unstarted tasks are dropped
  unblocker.join();
  EXPECT_LT(counter.load(), 50);
}

TEST(ThreadPoolTest, RejectsAfterShutdown) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, ParallelismIsReal) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&] {
      int now = concurrent.fetch_add(1) + 1;
      int expect = peak.load();
      while (now > expect && !peak.compare_exchange_weak(expect, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      concurrent.fetch_sub(1);
    });
  }
  pool.Shutdown();
  EXPECT_GE(peak.load(), 2);
}

TEST(DomainDirectoryTest, Membership) {
  DomainDirectory dir;
  dir.Assign("a", "d1");
  dir.Assign("b", "d1");
  dir.Assign("c", "d2");
  EXPECT_TRUE(dir.SameDomain("a", "b"));
  EXPECT_FALSE(dir.SameDomain("a", "c"));
  EXPECT_FALSE(dir.SameDomain("a", "client"));  // end clients: no domain
  EXPECT_FALSE(dir.SameDomain("client", "client"));
  EXPECT_EQ(*dir.DomainOf("a"), "d1");
  EXPECT_FALSE(dir.DomainOf("client").has_value());
}

TEST(DomainDirectoryTest, PeersExcludeSelfAndOtherDomains) {
  DomainDirectory dir;
  dir.Assign("a", "d1");
  dir.Assign("b", "d1");
  dir.Assign("c", "d1");
  dir.Assign("x", "d2");
  auto peers = dir.PeersOf("a");
  EXPECT_EQ(peers.size(), 2u);
  for (const auto& p : peers) {
    EXPECT_NE(p, "a");
    EXPECT_NE(p, "x");
  }
  EXPECT_TRUE(dir.PeersOf("unknown").empty());
}

TEST(DomainDirectoryTest, ReassignmentMoves) {
  DomainDirectory dir;
  dir.Assign("a", "d1");
  dir.Assign("b", "d1");
  dir.Assign("b", "d2");
  EXPECT_FALSE(dir.SameDomain("a", "b"));
}

TEST(SessionCheckpointCodecTest, RoundTripsFullState) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  Session s("se1", "cli", &disk, "pos");
  s.vars["alpha"] = MakePayload(512, 1);
  s.vars["beta"] = "";
  s.dv.Set("msp2", {3, 777});
  s.state_number = 4242;
  s.next_expected_seqno = 19;
  s.buffered_reply = {true, 18, ReplyCode::kAppError, "boom"};
  s.outgoing["msp2"] = {"msp2", "m/se1>msp2", 7};

  Bytes blob = s.EncodeCheckpoint();
  Session t("se1", "cli", &disk, "pos2");
  ASSERT_TRUE(t.DecodeCheckpoint(blob).ok());
  EXPECT_EQ(t.vars.size(), 2u);
  EXPECT_EQ(t.vars["alpha"], MakePayload(512, 1));
  EXPECT_EQ(t.dv.Get("msp2")->sn, 777u);
  EXPECT_EQ(t.state_number, 4242u);
  EXPECT_EQ(t.next_expected_seqno, 19u);
  EXPECT_TRUE(t.buffered_reply.valid);
  EXPECT_EQ(t.buffered_reply.seqno, 18u);
  EXPECT_EQ(t.buffered_reply.code, ReplyCode::kAppError);
  EXPECT_EQ(t.buffered_reply.payload, "boom");
  ASSERT_EQ(t.outgoing.count("msp2"), 1u);
  EXPECT_EQ(t.outgoing["msp2"].next_seqno, 7u);
  EXPECT_EQ(t.outgoing["msp2"].session_id, "m/se1>msp2");
}

TEST(SessionCheckpointCodecTest, CorruptBlobRejected) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  Session s("se1", "cli", &disk, "pos");
  EXPECT_FALSE(s.DecodeCheckpoint("garbage").ok());
}

TEST(MspCheckpointCodecTest, RoundTrip) {
  MspCheckpointData data;
  data.table.Record("msp2", 1, 500);
  data.table.Record("msp3", 2, 900);
  data.sessions.push_back({"se1", "cli1", 1000, 512});
  data.sessions.push_back({"se2", "cli2", 0, 2048});
  data.vars.push_back({"SV0", 4096, true});
  data.vars.push_back({"SV1", 0, false});

  MspCheckpointData out;
  ASSERT_TRUE(out.Decode(data.Encode()).ok());
  EXPECT_EQ(*out.table.RecoveredSn("msp2", 1), 500u);
  ASSERT_EQ(out.sessions.size(), 2u);
  EXPECT_EQ(out.sessions[0].id, "se1");
  EXPECT_EQ(out.sessions[0].last_checkpoint_lsn, 1000u);
  EXPECT_EQ(out.sessions[1].first_lsn, 2048u);
  ASSERT_EQ(out.vars.size(), 2u);
  EXPECT_EQ(out.vars[0].name, "SV0");
  EXPECT_TRUE(out.vars[0].has_writes);
  EXPECT_FALSE(out.vars[1].has_writes);
}

TEST(MspCheckpointCodecTest, EmptyCheckpoint) {
  MspCheckpointData data;
  MspCheckpointData out;
  ASSERT_TRUE(out.Decode(data.Encode()).ok());
  EXPECT_TRUE(out.sessions.empty());
  EXPECT_TRUE(out.vars.empty());
  EXPECT_TRUE(out.table.empty());
}

TEST(SharedVariableTest, InitialState) {
  SharedVariable v("x", "init");
  EXPECT_EQ(v.value, "init");
  EXPECT_EQ(v.initial_value, "init");
  EXPECT_EQ(v.state_number, 0u);
  EXPECT_EQ(v.last_write_lsn, 0u);
  EXPECT_TRUE(v.dv.empty());
}

}  // namespace
}  // namespace msplog
