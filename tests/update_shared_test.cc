// Tests for UpdateShared — atomic read-modify-write on shared variables:
// cross-session exactness under full concurrency, replay correctness across
// crashes, orphan handling, and checkpoint interaction.
#include <gtest/gtest.h>

#include <thread>

#include "msp/msp.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

class UpdateSharedTest : public ::testing::Test {
 protected:
  UpdateSharedTest() : env_(0.0), net_(&env_), disk_(&env_, "d") {}

  void TearDown() override {
    if (msp_) msp_->Shutdown();
  }

  void StartMsp(MspConfig c) {
    directory_.Assign(c.id, "dom");
    msp_ = std::make_unique<Msp>(&env_, &net_, &disk_, &directory_, c);
    msp_->RegisterSharedVariable("counter", "0");
    msp_->RegisterMethod("inc", [](ServiceContext* ctx, const Bytes&,
                                   Bytes* r) {
      return ctx->UpdateShared(
          "counter",
          [](const Bytes& cur) { return std::to_string(std::stol(cur) + 1); },
          r);
    });
    ASSERT_TRUE(msp_->Start().ok());
  }

  SimEnvironment env_;
  SimNetwork net_;
  SimDisk disk_;
  DomainDirectory directory_;
  std::unique_ptr<Msp> msp_;
};

TEST_F(UpdateSharedTest, ConcurrentIncrementsAreExact) {
  MspConfig c;
  c.id = "alpha";
  c.thread_pool_size = 8;
  c.checkpoint_daemon = false;
  StartMsp(c);
  constexpr int kClients = 8;
  constexpr int kPerClient = 25;
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      ClientEndpoint client(&env_, &net_, "cli" + std::to_string(i));
      auto s = client.StartSession("alpha");
      Bytes reply;
      for (int r = 0; r < kPerClient; ++r) {
        ASSERT_TRUE(client.Call(&s, "inc", "", &reply).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  auto v = msp_->PeekSharedValue("counter");
  ASSERT_TRUE(v.ok());
  // The whole point: no lost updates, ever.
  EXPECT_EQ(*v, std::to_string(kClients * kPerClient));
}

TEST_F(UpdateSharedTest, ValueSurvivesCrashExactly) {
  MspConfig c;
  c.id = "alpha";
  c.checkpoint_daemon = false;
  StartMsp(c);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 1; i <= 9; ++i) {
    ASSERT_TRUE(client.Call(&session, "inc", "", &reply).ok());
    EXPECT_EQ(reply, std::to_string(i));
  }
  msp_->Crash();
  ASSERT_TRUE(msp_->Start().ok());
  auto v = msp_->PeekSharedValue("counter");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "9");
  // Duplicate of the last request after the crash: not re-applied.
  session.next_seqno = 9;
  ASSERT_TRUE(client.Call(&session, "inc", "", &reply).ok());
  EXPECT_EQ(reply, "9");
  EXPECT_EQ(*msp_->PeekSharedValue("counter"), "9");
}

TEST_F(UpdateSharedTest, ReplayReappliesFnToLoggedValue) {
  // The update function runs on the LOGGED read value during replay, so the
  // method's continuation sees the identical result, and the variable
  // itself is rolled forward from the write records, not the re-run.
  MspConfig c;
  c.id = "alpha";
  c.checkpoint_daemon = false;
  StartMsp(c);
  msp_->RegisterMethod("inc_into_session",
                       [](ServiceContext* ctx, const Bytes&, Bytes* r) {
                         Bytes after;
                         MSPLOG_RETURN_IF_ERROR(ctx->UpdateShared(
                             "counter",
                             [](const Bytes& cur) {
                               return std::to_string(std::stol(cur) + 1);
                             },
                             &after));
                         // Session state derives from the update's result.
                         ctx->SetSessionVar("seen", after);
                         *r = after;
                         return Status::OK();
                       });
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.Call(&session, "inc_into_session", "", &reply).ok());
  }
  msp_->Crash();
  ASSERT_TRUE(msp_->Start().ok());
  // Session replay re-derived the same "seen" value.
  for (int spin = 0; spin < 200; ++spin) {
    if (msp_->PeekSessionVar(session.session_id, "seen").ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  auto seen = msp_->PeekSessionVar(session.session_id, "seen");
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(*seen, "5");
  EXPECT_EQ(*msp_->PeekSharedValue("counter"), "5");
}

TEST_F(UpdateSharedTest, WorksWithCheckpointThresholds) {
  MspConfig c;
  c.id = "alpha";
  c.checkpoint_daemon = false;
  c.shared_var_checkpoint_threshold_writes = 4;
  c.session_checkpoint_threshold_bytes = 1024;
  StartMsp(c);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(client.Call(&session, "inc", "", &reply).ok());
  }
  EXPECT_GE(env_.stats().checkpoints_shared_var.load(), 4u);
  msp_->Crash();
  ASSERT_TRUE(msp_->Start().ok());
  EXPECT_EQ(*msp_->PeekSharedValue("counter"), "20");
}

}  // namespace
}  // namespace msplog
