// End-to-end integration tests on the paper's Fig. 13 topology: the full
// workload (shared variables at both MSPs, 8 KB session state, m calls per
// request), multi-client concurrency, crash storms, checkpointing daemons,
// and the flush-count arithmetic of §5.2.
#include <gtest/gtest.h>

#include <thread>

#include "harness/paper_workload.h"

namespace msplog {
namespace {

PaperWorkloadOptions FastOpts(PaperConfig config) {
  PaperWorkloadOptions opts;
  opts.config = config;
  opts.time_scale = 0.0;
  opts.checkpoint_daemon = false;
  return opts;
}

TEST(IntegrationTest, WorkloadIsDeterministicPerSeqno) {
  // The same session must observe the same replies in two separate worlds
  // (prerequisite for replay-based recovery).
  Bytes first, second;
  for (int round = 0; round < 2; ++round) {
    PaperWorkload w(FastOpts(PaperConfig::kLoOptimistic));
    ASSERT_TRUE(w.Start().ok());
    auto client = w.MakeClient("detcli");
    auto session = client->StartSession("msp1");
    Bytes reply;
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          client->Call(&session, "ServiceMethod1", MakePayload(100, i), &reply)
              .ok());
    }
    (round == 0 ? first : second) = reply;
    w.Shutdown();
  }
  EXPECT_EQ(first, second);
}

TEST(IntegrationTest, Figure13FlushCounts) {
  // §5.2: per end-client request, pessimistic logging needs 3 log flushes in
  // sequence; locally optimistic logging needs one distributed flush (two
  // local flushes, in parallel).
  for (bool optimistic : {true, false}) {
    PaperWorkload w(FastOpts(optimistic ? PaperConfig::kLoOptimistic
                                        : PaperConfig::kPessimistic));
    ASSERT_TRUE(w.Start().ok());
    auto client = w.MakeClient("fc");
    auto session = client->StartSession("msp1");
    Bytes reply;
    // Warm up (session start records, first-request setup).
    ASSERT_TRUE(client->Call(&session, "ServiceMethod1", "x", &reply).ok());
    auto before = w.env()->stats().Snap();
    constexpr int kN = 10;
    for (int i = 0; i < kN; ++i) {
      ASSERT_TRUE(client->Call(&session, "ServiceMethod1", "x", &reply).ok());
    }
    auto after = w.env()->stats().Snap();
    double flushes_per_req =
        static_cast<double>(after.disk_flushes - before.disk_flushes) / kN;
    if (optimistic) {
      EXPECT_NEAR(flushes_per_req, 2.0, 0.3);
    } else {
      EXPECT_NEAR(flushes_per_req, 3.0, 0.3);
    }
    w.Shutdown();
  }
}

TEST(IntegrationTest, SectorWasteFavorsOptimistic) {
  // §5.2: locally optimistic logging wastes about one sector less per
  // request (2 flushes instead of 3, half a sector wasted per flush).
  uint64_t waste[2];
  int idx = 0;
  for (bool optimistic : {true, false}) {
    PaperWorkload w(FastOpts(optimistic ? PaperConfig::kLoOptimistic
                                        : PaperConfig::kPessimistic));
    ASSERT_TRUE(w.Start().ok());
    auto client = w.MakeClient("sw");
    auto session = client->StartSession("msp1");
    Bytes reply;
    ASSERT_TRUE(client->Call(&session, "ServiceMethod1", "x", &reply).ok());
    auto before = w.env()->stats().Snap();
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(client->Call(&session, "ServiceMethod1", "x", &reply).ok());
    }
    auto after = w.env()->stats().Snap();
    waste[idx++] = after.disk_bytes_wasted - before.disk_bytes_wasted;
    w.Shutdown();
  }
  EXPECT_LT(waste[0], waste[1]);
}

TEST(IntegrationTest, MultiClientConcurrentLoad) {
  auto opts = FastOpts(PaperConfig::kLoOptimistic);
  PaperWorkload w(opts);
  ASSERT_TRUE(w.Start().ok());
  RunResult r = w.RunMultiClient(6, 10);
  EXPECT_EQ(r.requests, 60u);
  w.Shutdown();
}

TEST(IntegrationTest, MultiClientWithCrashes) {
  auto opts = FastOpts(PaperConfig::kLoOptimistic);
  PaperWorkload w(opts);
  ASSERT_TRUE(w.Start().ok());
  RunResult r = w.RunMultiClient(4, 15, /*crash_every=*/20);
  EXPECT_EQ(r.requests, 60u);
  EXPECT_GE(w.crashes_injected(), 2u);
  w.Shutdown();
}

TEST(IntegrationTest, CheckpointDaemonKeepsWorkloadCorrect) {
  auto opts = FastOpts(PaperConfig::kLoOptimistic);
  opts.checkpoint_daemon = true;
  opts.session_checkpoint_threshold_bytes = 4096;  // aggressive
  opts.msp_checkpoint_log_bytes = 16384;
  PaperWorkload w(opts);
  ASSERT_TRUE(w.Start().ok());
  RunResult r = w.RunSingleClient(60);
  EXPECT_EQ(r.requests, 60u);
  EXPECT_GE(w.env()->stats().checkpoints_session.load(), 1u);
  w.Shutdown();
}

TEST(IntegrationTest, CheckpointsPlusCrashes) {
  auto opts = FastOpts(PaperConfig::kLoOptimistic);
  opts.checkpoint_daemon = true;
  opts.session_checkpoint_threshold_bytes = 4096;
  opts.msp_checkpoint_log_bytes = 16384;
  PaperWorkload w(opts);
  ASSERT_TRUE(w.Start().ok());
  RunResult r = w.RunSingleClient(60, /*crash_every=*/15);
  EXPECT_EQ(r.requests, 60u);
  EXPECT_GE(w.crashes_injected(), 3u);
  w.Shutdown();
}

TEST(IntegrationTest, BatchFlushingStaysCorrect) {
  auto opts = FastOpts(PaperConfig::kPessimistic);
  opts.batch_flush = true;
  opts.batch_timeout_ms = 2.0;
  PaperWorkload w(opts);
  ASSERT_TRUE(w.Start().ok());
  RunResult r = w.RunMultiClient(4, 10);
  EXPECT_EQ(r.requests, 40u);
  w.Shutdown();
}

TEST(IntegrationTest, MultipleCallsPerRequest) {
  for (int m : {2, 4}) {
    auto opts = FastOpts(PaperConfig::kLoOptimistic);
    opts.calls_per_request = m;
    PaperWorkload w(opts);
    ASSERT_TRUE(w.Start().ok());
    RunResult r = w.RunSingleClient(8);
    EXPECT_EQ(r.requests, 8u);
    w.Shutdown();
  }
}

TEST(IntegrationTest, SharedVariablesConsistentAfterCrashStorm) {
  auto opts = FastOpts(PaperConfig::kLoOptimistic);
  PaperWorkload w(opts);
  ASSERT_TRUE(w.Start().ok());
  RunResult r = w.RunSingleClient(30, /*crash_every=*/7);
  EXPECT_EQ(r.requests, 30u);
  // SV0 at MSP1 was rewritten every request; after the storm, its value must
  // correspond to the final request's deterministic write.
  auto v = w.msp1()->PeekSharedValue("SV0");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, MakePayload(128, 30 * 2 + 1));
  w.Shutdown();
}

TEST(IntegrationTest, UnreliableClientLinkStillExactlyOnce) {
  auto opts = FastOpts(PaperConfig::kLoOptimistic);
  PaperWorkload w(opts);
  ASSERT_TRUE(w.Start().ok());
  FaultPlan faults;
  faults.drop_prob = 0.25;
  faults.duplicate_prob = 0.25;
  auto client = w.MakeClient("lossy");
  w.network()->SetFaults("lossy", "msp1", faults);
  w.network()->SetFaults("msp1", "lossy", faults);
  auto session = client->StartSession("msp1");
  Bytes reply;
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(
        client->Call(&session, "ServiceMethod1", MakePayload(100, i), &reply)
            .ok());
  }
  // SV0's final value reflects exactly 15 executions.
  auto v = w.msp1()->PeekSharedValue("SV0");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, MakePayload(128, 15 * 2 + 1));
  w.Shutdown();
}

TEST(IntegrationTest, ColdRestartRecoversWholeWorld) {
  // Both MSPs shut down gracefully; a fresh pair over the same disks must
  // recover every session and shared variable from the logs alone.
  PaperWorkloadOptions opts = FastOpts(PaperConfig::kLoOptimistic);
  PaperWorkload w(opts);
  ASSERT_TRUE(w.Start().ok());
  auto client = w.MakeClient("cold");
  auto session = client->StartSession("msp1");
  Bytes reply;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client->Call(&session, "ServiceMethod1", "x", &reply).ok());
  }
  Bytes sv0_before = *w.msp1()->PeekSharedValue("SV0");

  w.msp1()->Crash();
  w.msp2()->Crash();
  ASSERT_TRUE(w.msp2()->Start().ok());
  ASSERT_TRUE(w.msp1()->Start().ok());

  auto v = w.msp1()->PeekSharedValue("SV0");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, sv0_before);
  session.next_seqno = 6;
  ASSERT_TRUE(client->Call(&session, "ServiceMethod1", "x", &reply).ok());
  w.Shutdown();
}

}  // namespace
}  // namespace msplog
