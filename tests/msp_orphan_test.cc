// Tests for orphan detection and recovery (§3.1, §4.1, §4.2): locally
// optimistic logging between two MSPs in one service domain, orphan
// creation by crashing the callee with unflushed log records, EOS records,
// shared-variable undo along the backward write chain, and crashes layered
// on top of orphan recoveries.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "log/log_scanner.h"
#include "msp/msp.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

class OrphanTest : public ::testing::Test {
 protected:
  OrphanTest()
      : env_(0.0), net_(&env_), disk_a_(&env_, "da"), disk_b_(&env_, "db") {}

  void SetUp() override {
    directory_.Assign("alpha", "domA");
    directory_.Assign("beta", "domA");  // same domain: optimistic messages
    alpha_ = std::make_unique<Msp>(&env_, &net_, &disk_a_, &directory_,
                                   Config("alpha"));
    beta_ = std::make_unique<Msp>(&env_, &net_, &disk_b_, &directory_,
                                  Config("beta"));

    // beta: a session counter and an echo.
    beta_->RegisterMethod("bcounter",
                          [](ServiceContext* ctx, const Bytes&, Bytes* r) {
                            Bytes cur = ctx->GetSessionVar("n");
                            int n = cur.empty() ? 0 : std::stoi(cur);
                            ctx->SetSessionVar("n", std::to_string(n + 1));
                            *r = std::to_string(n + 1);
                            return Status::OK();
                          });
    beta_->RegisterMethod("becho",
                          [](ServiceContext*, const Bytes& a, Bytes* r) {
                            *r = "beta:" + a;
                            return Status::OK();
                          });

    // alpha: relays to beta; variants for the orphan scenarios.
    alpha_->RegisterSharedVariable("X", "clean");
    alpha_->RegisterMethod(
        "relay_count", [](ServiceContext* ctx, const Bytes&, Bytes* r) {
          Bytes reply;
          MSPLOG_RETURN_IF_ERROR(ctx->Call("beta", "bcounter", "", &reply));
          *r = "relayed:" + reply;
          return Status::OK();
        });
    alpha_->RegisterMethod(
        "poison_gated", [this](ServiceContext* ctx, const Bytes&, Bytes* r) {
          Bytes reply;
          MSPLOG_RETURN_IF_ERROR(ctx->Call("beta", "becho", "dep", &reply));
          MSPLOG_RETURN_IF_ERROR(ctx->WriteShared("X", "poisoned"));
          rewrites_.fetch_add(1);
          // Hold the method here (normal execution only) until the test
          // opens the gate; replay / live continuation never blocks because
          // the gate is left open.
          while (!ctx->in_replay() && gate_.load() == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          *r = "done";
          return Status::OK();
        });
    alpha_->RegisterMethod("read_x",
                           [](ServiceContext* ctx, const Bytes&, Bytes* r) {
                             return ctx->ReadShared("X", r);
                           });

    ASSERT_TRUE(beta_->Start().ok());
    ASSERT_TRUE(alpha_->Start().ok());
  }

  void TearDown() override {
    gate_.store(1);
    if (alpha_) alpha_->Shutdown();
    if (beta_) beta_->Shutdown();
  }

  static MspConfig Config(const std::string& id) {
    MspConfig c;
    c.id = id;
    c.mode = RecoveryMode::kLogBased;
    c.checkpoint_daemon = false;
    c.session_checkpoint_threshold_bytes = 0;
    c.shared_var_checkpoint_threshold_writes = 0;
    c.flush_timeout_ms = 20;
    return c;
  }

  void CrashAndRestartBeta() {
    beta_->Crash();
    ASSERT_TRUE(beta_->Start().ok());
  }

  bool LogContainsEos(SimDisk* disk, const std::string& file) {
    LogScanner sc(disk, file, 0, disk->FileSize(file));
    LogRecord r;
    while (sc.Next(&r).ok()) {
      if (r.type == LogRecordType::kEos) return true;
    }
    return false;
  }

  SimEnvironment env_;
  SimNetwork net_;
  SimDisk disk_a_;
  SimDisk disk_b_;
  DomainDirectory directory_;
  std::unique_ptr<Msp> alpha_;
  std::unique_ptr<Msp> beta_;
  std::atomic<int> gate_{0};
  std::atomic<int> rewrites_{0};
};

TEST_F(OrphanTest, CalleeCrashOrphansCallerWhichRecoversExactlyOnce) {
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;

  // Establish the session with one clean (flushed) request.
  ASSERT_TRUE(client.Call(&session, "relay_count", "", &reply).ok());
  EXPECT_EQ(reply, "relayed:1");

  // Crash beta at a moment when alpha holds an unflushed dependency on it.
  // We use a dedicated request: beta's receive record for bcounter #2 is
  // volatile (optimistic intra-domain exchange) until alpha's reply to the
  // end client forces the distributed flush — so crash beta from a side
  // thread while alpha is between the call and the flush. To make this
  // deterministic we instead crash beta right after the request completes:
  // alpha's NEXT request will carry the (now orphan) dependency only if it
  // was not yet flushed, so here we verify the flush-failure path directly:
  // send the request and crash beta concurrently.
  std::thread crasher([&] {
    // Give alpha time to send the call and receive beta's optimistic reply.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    CrashAndRestartBeta();
  });
  Status st = client.Call(&session, "relay_count", "", &reply);
  crasher.join();
  ASSERT_TRUE(st.ok()) << st.ToString();
  // Whatever interleaving happened, exactly-once must hold: the counter at
  // beta is 2 — not 1 (lost) and not 3 (duplicated).
  EXPECT_EQ(reply, "relayed:2");

  // And the system remains fully operational afterwards.
  ASSERT_TRUE(client.Call(&session, "relay_count", "", &reply).ok());
  EXPECT_EQ(reply, "relayed:3");
}

TEST_F(OrphanTest, SharedVariableOrphanIsUndoneByReader) {
  ClientEndpoint c1(&env_, &net_, "cli1");
  ClientEndpoint c2(&env_, &net_, "cli2");
  auto s2 = c2.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(c2.Call(&s2, "read_x", "", &reply).ok());
  EXPECT_EQ(reply, "clean");

  // Session 1 calls beta then writes X = "poisoned" and parks at the gate,
  // holding an unflushed dependency on beta inside X's DV.
  std::thread t1([&] {
    auto s1 = c1.StartSession("alpha");
    Bytes r;
    Status st = c1.Call(&s1, "poison_gated", "", &r);
    EXPECT_TRUE(st.ok()) << st.ToString();
  });
  // Wait until the write happened.
  while (rewrites_.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Beta crashes losing its buffered records; its recovery broadcast makes
  // X's value an orphan at alpha.
  CrashAndRestartBeta();
  // Give the announce time to land.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Session 2 reads X: the reader itself must roll the variable back along
  // the backward chain to the most recent non-orphan value (§4.2).
  ASSERT_TRUE(c2.Call(&s2, "read_x", "", &reply).ok());
  EXPECT_EQ(reply, "clean");

  // Open the gate: session 1 finishes; its reply flush fails (orphan), it
  // replays, re-calls beta and re-writes X exactly once.
  gate_.store(1);
  t1.join();
  ASSERT_TRUE(c2.Call(&s2, "read_x", "", &reply).ok());
  EXPECT_EQ(reply, "poisoned");
  EXPECT_GE(env_.stats().orphans_detected.load(), 1u);
}

TEST_F(OrphanTest, OrphanRecoveryWritesEosRecord) {
  ClientEndpoint c1(&env_, &net_, "cli1");
  std::thread t1([&] {
    auto s1 = c1.StartSession("alpha");
    Bytes r;
    (void)c1.Call(&s1, "poison_gated", "", &r);
  });
  while (rewrites_.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  CrashAndRestartBeta();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  gate_.store(1);
  t1.join();
  // Orphan recovery of session 1 must have cut at the orphan ReplyReceive
  // and logged an EOS record pointing back to it (§4.1).
  ASSERT_TRUE(alpha_->log()->FlushAll().ok());
  EXPECT_TRUE(LogContainsEos(&disk_a_, "alpha.log"));
}

TEST_F(OrphanTest, RepeatedCalleeCrashesDisjointOrphanRecoveries) {
  // Fig. 11 "disjointed": each crash orphans the session once; recoveries
  // stack up along the log with disjoint (orphan, EOS) pairs.
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  int expected = 0;
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(client.Call(&session, "relay_count", "", &reply).ok());
    ++expected;
    EXPECT_EQ(reply, "relayed:" + std::to_string(expected));
    std::thread crasher([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
      CrashAndRestartBeta();
    });
    Status st = client.Call(&session, "relay_count", "", &reply);
    crasher.join();
    ASSERT_TRUE(st.ok());
    ++expected;
    EXPECT_EQ(reply, "relayed:" + std::to_string(expected));
  }
}

TEST_F(OrphanTest, IdleSessionIsCheckedOnRecoveryAnnounce) {
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "relay_count", "", &reply).ok());
  // The session is idle. Crash beta; the recovery announce must trigger an
  // orphan check on the idle session without any new request (§4.1). The
  // first request was flushed (reply to end client), so the session is NOT
  // an orphan — but the check must run and leave the session serviceable.
  CrashAndRestartBeta();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(client.Call(&session, "relay_count", "", &reply).ok());
  EXPECT_EQ(reply, "relayed:2");
}

TEST_F(OrphanTest, CallerCrashAfterOrphanRecoveryReplaysCleanly) {
  // Orphan recovery writes EOS records; if the caller itself then crashes,
  // the analysis scan must skip the (orphan, EOS) range (§4.3).
  ClientEndpoint c1(&env_, &net_, "cli1");
  auto s1 = c1.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(c1.Call(&s1, "relay_count", "", &reply).ok());
  std::thread crasher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    CrashAndRestartBeta();
  });
  Status st = c1.Call(&s1, "relay_count", "", &reply);
  crasher.join();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(reply, "relayed:2");

  // Now crash alpha. Its recovery must replay the session without tripping
  // over the skipped records.
  alpha_->Crash();
  ASSERT_TRUE(alpha_->Start().ok());
  ASSERT_TRUE(c1.Call(&s1, "relay_count", "", &reply).ok());
  EXPECT_EQ(reply, "relayed:3");
}

TEST_F(OrphanTest, BothMspsCrashConcurrently) {
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(client.Call(&session, "relay_count", "", &reply).ok());
  }
  alpha_->Crash();
  beta_->Crash();
  ASSERT_TRUE(beta_->Start().ok());
  ASSERT_TRUE(alpha_->Start().ok());
  ASSERT_TRUE(client.Call(&session, "relay_count", "", &reply).ok());
  EXPECT_EQ(reply, "relayed:4");
}

TEST_F(OrphanTest, WatermarkSkipsRepeatedPeerFlushes) {
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "relay_count", "", &reply).ok());
  // Re-request the same reply (duplicate): the buffered reply resend flushes
  // per the session's DV, but the dependencies were already flushed — the
  // watermark should avoid a second flush round trip to beta.
  auto before = env_.stats().Snap();
  session.next_seqno = 1;
  ASSERT_TRUE(client.Call(&session, "relay_count", "", &reply).ok());
  EXPECT_EQ(reply, "relayed:1");
  auto after = env_.stats().Snap();
  EXPECT_EQ(after.disk_flushes, before.disk_flushes);
}

}  // namespace
}  // namespace msplog
