// Log-space reclamation tests: hole-punched prefixes scan as padding, and
// an MSP whose log was reclaimed after checkpoints still recovers the
// complete state from the surviving suffix.
#include <gtest/gtest.h>

#include "log/log_file.h"
#include "log/log_scanner.h"
#include "msp/msp.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

LogRecord Rec(uint64_t seqno, size_t payload = 64) {
  LogRecord r;
  r.type = LogRecordType::kRequestReceive;
  r.session_id = "s";
  r.seqno = seqno;
  r.payload = MakePayload(payload, seqno);
  return r;
}

TEST(LogGcTest, PunchedPrefixScansAsPadding) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  LogFile log(&env, &disk, "log");
  std::vector<uint64_t> lsns;
  for (uint64_t i = 1; i <= 20; ++i) {
    lsns.push_back(log.Append(Rec(i, 300)));
    if (i % 5 == 0) {
      ASSERT_TRUE(log.FlushAll().ok());
    }
  }
  ASSERT_TRUE(log.FlushAll().ok());

  // Reclaim everything below record 11.
  uint64_t cut = lsns[10];
  EXPECT_GT(log.ReclaimUpTo(cut), 0u);
  EXPECT_LE(log.reclaimed_lsn(), cut);
  EXPECT_GT(env.stats().disk_bytes_reclaimed.load(), 0u);

  // A full scan from 0 skips the hole and yields exactly the survivors.
  LogScanner scanner(&disk, "log", 0, disk.FileSize("log"));
  LogRecord r;
  std::vector<uint64_t> seen;
  while (scanner.Next(&r).ok()) seen.push_back(r.seqno);
  ASSERT_FALSE(seen.empty());
  // Everything from the first record at or after the sector-floor boundary
  // survives; in particular records 11..20 are all present, in order.
  EXPECT_EQ(seen.back(), 20u);
  for (size_t i = 1; i < seen.size(); ++i) EXPECT_EQ(seen[i], seen[i - 1] + 1);
  EXPECT_LE(seen.front(), 11u);
  EXPECT_GE(seen.size(), 10u);
}

TEST(LogGcTest, ReclaimIsIdempotentAndMonotonic) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  LogFile log(&env, &disk, "log");
  uint64_t l1 = log.Append(Rec(1, 2000));
  uint64_t l2 = log.Append(Rec(2, 2000));
  ASSERT_TRUE(log.FlushAll().ok());
  (void)l1;
  uint64_t first = log.ReclaimUpTo(l2);
  EXPECT_GT(first, 0u);
  EXPECT_EQ(log.ReclaimUpTo(l2), 0u);      // idempotent
  EXPECT_EQ(log.ReclaimUpTo(l2 - 600), 0u);  // never moves backwards
}

TEST(LogGcTest, ReclaimNeverTouchesUndurableData) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  LogFile log(&env, &disk, "log");
  uint64_t l1 = log.Append(Rec(1));
  ASSERT_TRUE(log.FlushAll().ok());
  uint64_t l2 = log.Append(Rec(2));  // buffered only
  // Reclamation clamps at the durable boundary: the whole durable prefix
  // (reserved sector + record 1) may go, the volatile buffer never.
  EXPECT_EQ(log.ReclaimUpTo(l2 + 10000), log.durable_lsn());
  (void)l1;
  LogRecord r;
  ASSERT_TRUE(log.ReadRecordAt(l2, &r).ok());  // buffer unaffected
  EXPECT_EQ(r.seqno, 2u);
}

class MspGcTest : public ::testing::Test {
 protected:
  MspGcTest() : env_(0.0), net_(&env_), disk_(&env_, "d") {}
  void TearDown() override {
    if (msp_) msp_->Shutdown();
  }
  SimEnvironment env_;
  SimNetwork net_;
  SimDisk disk_;
  DomainDirectory directory_;
  std::unique_ptr<Msp> msp_;
};

TEST_F(MspGcTest, CheckpointDrivenReclamationKeepsRecoveryCorrect) {
  directory_.Assign("alpha", "dom");
  MspConfig c;
  c.id = "alpha";
  c.checkpoint_daemon = false;
  c.reclaim_log = true;
  msp_ = std::make_unique<Msp>(&env_, &net_, &disk_, &directory_, c);
  msp_->RegisterSharedVariable("acc", "0");
  msp_->RegisterMethod("add", [](ServiceContext* ctx, const Bytes& a,
                                 Bytes* r) {
    Bytes cur;
    MSPLOG_RETURN_IF_ERROR(ctx->ReadShared("acc", &cur));
    long t = std::stol(cur) + std::stol(Bytes(a));
    MSPLOG_RETURN_IF_ERROR(ctx->WriteShared("acc", std::to_string(t)));
    Bytes mine = ctx->GetSessionVar("mine");
    ctx->SetSessionVar("mine",
                       std::to_string((mine.empty() ? 0 : std::stol(mine)) +
                                      std::stol(Bytes(a))));
    *r = std::to_string(t);
    return Status::OK();
  });
  ASSERT_TRUE(msp_->Start().ok());

  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(client.Call(&session, "add", "1", &reply).ok());
    }
    // Checkpoint the session and the variable, then the MSP: everything
    // before this round becomes reclaimable.
    ASSERT_TRUE(msp_->ForceCheckpoint(CheckpointTarget::Session(session.session_id)).ok());
    ASSERT_TRUE(msp_->ForceCheckpoint(CheckpointTarget::SharedVar("acc")).ok());
    ASSERT_TRUE(msp_->ForceCheckpoint(CheckpointTarget::Msp()).ok());
  }
  EXPECT_EQ(reply, "40");
  uint64_t reclaimed = env_.stats().disk_bytes_reclaimed.load();
  EXPECT_GT(reclaimed, 4096u) << "multiple rounds should free real space";

  // Crash recovery over the holey log restores the exact state.
  msp_->Crash();
  ASSERT_TRUE(msp_->Start().ok());
  auto v = msp_->PeekSharedValue("acc");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "40");
  ASSERT_TRUE(client.Call(&session, "add", "2", &reply).ok());
  EXPECT_EQ(reply, "42");
  auto mine = msp_->PeekSessionVar(session.session_id, "mine");
  ASSERT_TRUE(mine.ok());
  EXPECT_EQ(*mine, "42");
}

TEST_F(MspGcTest, ReclamationCanBeDisabled) {
  directory_.Assign("alpha", "dom");
  MspConfig c;
  c.id = "alpha";
  c.checkpoint_daemon = false;
  c.reclaim_log = false;
  msp_ = std::make_unique<Msp>(&env_, &net_, &disk_, &directory_, c);
  msp_->RegisterMethod("echo", [](ServiceContext*, const Bytes& a, Bytes* r) {
    *r = a;
    return Status::OK();
  });
  ASSERT_TRUE(msp_->Start().ok());
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.Call(&session, "echo", "x", &reply).ok());
  }
  uint64_t before = env_.stats().disk_bytes_reclaimed.load();
  ASSERT_TRUE(msp_->ForceCheckpoint(CheckpointTarget::Session(session.session_id)).ok());
  ASSERT_TRUE(msp_->ForceCheckpoint(CheckpointTarget::Msp()).ok());
  EXPECT_EQ(env_.stats().disk_bytes_reclaimed.load(), before);
}

}  // namespace
}  // namespace msplog
