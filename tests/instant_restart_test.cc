// Instant-restart tests (§4.3 + the phased RecoveryCoordinator): the server
// opens for traffic after the analysis scan, before any session replays; a
// request for a not-yet-recovered session triggers an on-demand replay that
// jumps the background drain queue and still serializes after the session's
// replayed history; a second crash in the middle of the incremental drain
// recovers cleanly with every outage fate resolved; and checkpoint-driven
// log archiving keeps recovery working off the punched live log while the
// archived segments still merge into a clean, inspectable image.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <memory>
#include <thread>

#include "audit/invariants.h"
#include "log/log_file.h"
#include "msp/log_inspect.h"
#include "msp/msp.h"
#include "msp/postmortem.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

class InstantRestartTest : public ::testing::Test {
 protected:
  InstantRestartTest() : env_(0.0), net_(&env_), disk_(&env_, "d") {
    audit::InvariantRegistry::Instance().ResetForTest();
  }

  void TearDown() override {
    if (msp_) msp_->Shutdown();
    audit::InvariantRegistry::Instance().ResetForTest();
  }

  MspConfig BaseConfig() {
    MspConfig c;
    c.id = "alpha";
    c.mode = RecoveryMode::kLogBased;
    c.checkpoint_daemon = false;
    c.session_checkpoint_threshold_bytes = 0;
    c.shared_var_checkpoint_threshold_writes = 0;
    return c;
  }

  void StartMsp(MspConfig c) {
    directory_.Assign(c.id, "domA");
    msp_ = std::make_unique<Msp>(&env_, &net_, &disk_, &directory_, c);
    Register(msp_.get());
    ASSERT_TRUE(msp_->Start().ok());
  }

  static void Register(Msp* msp) {
    // A per-session counter whose replay is deliberately slow: the sleep
    // widens the background-drain window so the tests can deterministically
    // land a live request on a session the drain has not reached yet.
    msp->RegisterMethod(
        "slow_counter", [](ServiceContext* ctx, const Bytes&, Bytes* result) {
          if (ctx->in_replay()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
          Bytes cur = ctx->GetSessionVar("n");
          int n = cur.empty() ? 0 : std::stoi(cur);
          ctx->SetSessionVar("n", std::to_string(n + 1));
          *result = std::to_string(n + 1);
          return Status::OK();
        });
  }

  SimEnvironment env_;
  SimNetwork net_;
  SimDisk disk_;
  DomainDirectory directory_;
  std::unique_ptr<Msp> msp_;
};

// A request for a session the background drain has not replayed yet is
// admitted immediately (no Busy), triggers an on-demand replay, and the new
// request serializes strictly after the session's replayed history — the
// counter continues from its pre-crash value.
TEST_F(InstantRestartTest, OnDemandAdmissionJumpsTheDrainQueue) {
  MspConfig c = BaseConfig();
  // One pool thread = one drain pump replaying sessions strictly in SJF
  // order, so the heaviest session is deterministically last in the queue.
  c.thread_pool_size = 1;
  StartMsp(c);

  ClientEndpoint client(&env_, &net_, "cli");
  std::vector<ClientSession> sessions;
  Bytes reply;
  for (int s = 0; s < 6; ++s) {
    sessions.push_back(client.StartSession("alpha"));
    for (int i = 0; i <= s; ++i) {
      ASSERT_TRUE(
          client.Call(&sessions.back(), "slow_counter", "", &reply).ok());
    }
  }
  ASSERT_EQ(reply, "6");  // heaviest session ran 6 requests

  msp_->Crash();
  ASSERT_TRUE(msp_->Start().ok());

  // The drain (2ms per replayed request) is still working through the
  // lighter sessions; the heaviest drains last. Its request must not wait
  // for the whole queue: the admission gate replays just this session.
  ASSERT_TRUE(client.Call(&sessions.back(), "slow_counter", "", &reply).ok());
  EXPECT_EQ(reply, "7");  // full history replayed, then the new request

  obs::RecoveryTimeline tl = msp_->LastRecoveryTimeline();
  EXPECT_EQ(tl.sessions_to_recover, 6u);
  EXPECT_GT(tl.open_for_traffic_ms, 0.0);
  EXPECT_GE(tl.on_demand_replays, 1u);

  // Every other session finishes its drain replay and continues correctly.
  for (int s = 0; s < 5; ++s) {
    ASSERT_TRUE(client.Call(&sessions[s], "slow_counter", "", &reply).ok());
    EXPECT_EQ(reply, std::to_string(s + 2));
  }
  tl = msp_->LastRecoveryTimeline();
  EXPECT_GE(tl.session_replays.size(), 6u);
  EXPECT_EQ(audit::InvariantRegistry::Instance().total_violations(), 0u);
}

// A second crash while the incremental drain is mid-flight: the next
// recovery must converge — every session servable with exactly-once
// semantics intact, every outage fate resolved, and zero audit violations.
TEST_F(InstantRestartTest, RecrashDuringIncrementalRecovery) {
  MspConfig c = BaseConfig();
  c.thread_pool_size = 1;  // slow sequential drain → the re-crash lands
                           // while some sessions are still pending
  StartMsp(c);

  ClientEndpoint client(&env_, &net_, "cli");
  std::vector<ClientSession> sessions;
  Bytes reply;
  for (int s = 0; s < 5; ++s) {
    sessions.push_back(client.StartSession("alpha"));
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          client.Call(&sessions.back(), "slow_counter", "", &reply).ok());
    }
  }

  msp_->Crash();
  ASSERT_TRUE(msp_->Start().ok());
  // Let the drain claim its first session (3 replayed requests ≈ 6ms),
  // then crash again mid-drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  msp_->Crash();
  ASSERT_TRUE(msp_->Start().ok());
  EXPECT_EQ(msp_->epoch(), 3u);

  // Exactly-once across the double crash: each counter continues from 3.
  for (auto& s : sessions) {
    ASSERT_TRUE(client.Call(&s, "slow_counter", "", &reply).ok());
    EXPECT_EQ(reply, "4");
  }

  // All five sessions were durably logged before the first crash, so the
  // outage join must resolve every fate (no "pending", no "never-logged").
  obs::OutageReport report = msp_->LastOutageReport();
  ASSERT_TRUE(report.valid);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.epoch, 3u);
  EXPECT_EQ(report.sessions.size(), 5u);
  for (const auto& f : report.sessions) {
    EXPECT_TRUE(f.fate == "replayed" || f.fate == "orphaned")
        << f.session_id << " fate=" << f.fate;
    EXPECT_GE(f.time_to_servable_ms, 0.0);
  }
  EXPECT_EQ(report.mttr.count, 5u);

  // Offline cross-check (the msplog_postmortem --report contract): re-derive
  // every fate from the frozen flight bundle + raw log image alone. The
  // re-crash-during-recovery log must tell the same story as the live join.
  const obs::FlightBundle bundle =
      env_.flight_recorder().LatestBundleFor("alpha");
  ASSERT_TRUE(bundle.frozen);
  EXPECT_EQ(bundle.generation, 2u);  // the mid-drain crash
  ASSERT_FALSE(bundle.snapshots.empty());
  const obs::FlightSnapshot& snap = bundle.snapshots.back().second;
  PostmortemInput input;
  input.actor = bundle.actor;
  input.generation = bundle.generation;
  input.crash_model_ms = bundle.frozen_at_ms;
  input.durable_at_crash = snap.log_durable_lsn;
  input.inflight_sessions = snap.inflight_sessions;
  PostmortemReport offline;
  ASSERT_TRUE(
      DerivePostmortem(&disk_, msp_->log()->file_name(), input, &offline)
          .ok());
  for (const auto& live : report.sessions) {
    const PostmortemSessionFate* mine = offline.Find(live.session_id);
    ASSERT_NE(mine, nullptr) << live.session_id;
    EXPECT_EQ(mine->fate, live.fate) << live.session_id;
  }
  EXPECT_EQ(audit::InvariantRegistry::Instance().total_violations(), 0u);
}

// Checkpoint-driven archiving: closed log ranges below the reclamation
// watermark move to archive segments instead of being punched away.
// Recovery keeps working off the punched live log; the live image alone
// passes inspection ("no live session cut"); and overlaying the archived
// segments yields the full history, also violation-free. Exports the image
// + segments + manifest so CI can re-check with the offline CLI.
TEST_F(InstantRestartTest, ArchivedSegmentsMergeIntoCleanImage) {
  MspConfig c = BaseConfig();
  c.archive_log = true;
  StartMsp(c);

  ClientEndpoint client(&env_, &net_, "cli");
  ClientSession session = client.StartSession("alpha");
  Bytes reply;
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(client.Call(&session, "slow_counter", "", &reply).ok());
    }
    ASSERT_TRUE(
        msp_->ForceCheckpoint(CheckpointTarget::Session(session.session_id))
            .ok());
    ASSERT_TRUE(msp_->ForceCheckpoint(CheckpointTarget::Msp()).ok());
  }

  const LogExtents extents = msp_->log()->Extents();
  EXPECT_GT(extents.archived_lsn, 0u);
  EXPECT_EQ(extents.archived_lsn, extents.reclaimed_lsn);
  std::vector<LogArchiveSegment> segments =
      LogFile::ListArchiveSegments(&disk_, "alpha.log");
  ASSERT_FALSE(segments.empty());

  // Recovery works off the punched live log: the scan starts at the MSP
  // checkpoint's min-recovery LSN, above everything archived.
  msp_->Crash();
  ASSERT_TRUE(msp_->Start().ok());
  ASSERT_TRUE(client.Call(&session, "slow_counter", "", &reply).ok());
  EXPECT_EQ(reply, "81");
  ASSERT_TRUE(msp_->log()->FlushAll().ok());

  Bytes live;
  const uint64_t live_size = disk_.FileSize("alpha.log");
  ASSERT_GT(live_size, 0u);
  ASSERT_TRUE(disk_.ReadAt("alpha.log", 0, live_size, &live).ok());

  // The punched live image alone: no live session was cut — its first
  // surviving record sits at or before the newest MSP checkpoint's
  // min-recovery LSN (that check is one of the walked invariants).
  SimEnvironment ienv(0.0);
  SimDisk idisk(&ienv, "inspect");
  idisk.set_charge_latency(false);
  ASSERT_TRUE(idisk.WriteAt("live.log", 0, live).ok());
  LogInspectOptions opts;
  LogInspectReport live_report;
  ASSERT_TRUE(InspectLogImage(&idisk, "live.log", opts, &live_report).ok());
  for (const auto& v : live_report.invariant_violations) {
    ADD_FAILURE() << "live image violation: " << v;
  }
  EXPECT_GT(live_report.newest_msp_checkpoint_min_lsn, 0u);
  EXPECT_LE(live_report.first_lsn, live_report.newest_msp_checkpoint_min_lsn);

  // Overlay the archived segments at their original offsets: the merged
  // image holds the full history from (near) LSN zero and still passes
  // every invariant.
  ASSERT_TRUE(idisk.WriteAt("merged.log", 0, live).ok());
  for (const LogArchiveSegment& seg : segments) {
    Bytes seg_bytes;
    ASSERT_TRUE(disk_.ReadAt(seg.file, 0, seg.bytes, &seg_bytes).ok());
    ASSERT_TRUE(idisk.WriteAt("merged.log", seg.base, seg_bytes).ok());
  }
  LogInspectReport merged_report;
  ASSERT_TRUE(
      InspectLogImage(&idisk, "merged.log", opts, &merged_report).ok());
  for (const auto& v : merged_report.invariant_violations) {
    ADD_FAILURE() << "merged image violation: " << v;
  }
  EXPECT_GT(merged_report.records, live_report.records);
  EXPECT_LT(merged_report.first_lsn, live_report.first_lsn);

  // ---- export artifacts for CI (image + archive segments + manifest) ----
  {
    std::ofstream lf("msplog_instant_archive_image.bin", std::ios::binary);
    ASSERT_TRUE(lf.good());
    lf.write(live.data(), static_cast<std::streamsize>(live.size()));
  }
  std::ofstream mf("msplog_instant_archive.manifest");
  ASSERT_TRUE(mf.good());
  for (const LogArchiveSegment& seg : segments) {
    Bytes seg_bytes;
    ASSERT_TRUE(disk_.ReadAt(seg.file, 0, seg.bytes, &seg_bytes).ok());
    const std::string name =
        "msplog_instant_archive_seg_" + std::to_string(seg.base) + ".bin";
    std::ofstream sf(name, std::ios::binary);
    ASSERT_TRUE(sf.good());
    sf.write(seg_bytes.data(), static_cast<std::streamsize>(seg_bytes.size()));
    mf << seg.base << " " << name << "\n";
  }
}

}  // namespace
}  // namespace msplog
