// Tests for the runtime correctness auditor (src/audit): lock-order cycle
// detection around audit::Mutex, the invariant registry, and the protocol
// checkers wired into the MSP / log scanner hot paths. Each injected fault
// must fail loudly through the auditor — these are the ISSUE's "the alarm
// actually rings" tests.
#include <gtest/gtest.h>

#include <thread>

#include "audit/invariants.h"
#include "audit/lock_order.h"
#include "audit/mutex.h"
#include "log/log_file.h"
#include "log/log_record.h"
#include "log/log_scanner.h"
#include "msp/msp.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

// TSan ships its own lock-order-inversion detector, which (correctly) flags
// the deliberate inversions these tests stage to exercise ours. Skip the
// staged-inversion tests under TSan; everything else runs everywhere.
#if defined(__SANITIZE_THREAD__)
#define MSPLOG_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MSPLOG_UNDER_TSAN 1
#endif
#endif
#ifndef MSPLOG_UNDER_TSAN
#define MSPLOG_UNDER_TSAN 0
#endif

#define MSPLOG_SKIP_UNDER_TSAN()                                          \
  do {                                                                    \
    if (MSPLOG_UNDER_TSAN) {                                              \
      GTEST_SKIP() << "staged lock inversion trips TSan's own detector";  \
    }                                                                     \
  } while (0)

namespace msplog {
namespace {

#if MSPLOG_AUDIT_ENABLED

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override { audit::LockOrderRegistry::Instance().ResetForTest(); }
  void TearDown() override {
    audit::LockOrderRegistry::Instance().ResetForTest();
  }
};

TEST_F(LockOrderTest, ConsistentOrderIsClean) {
  audit::Mutex a("test.a");
  audit::Mutex b("test.b");
  for (int i = 0; i < 3; ++i) {
    audit::LockGuard la(a);
    audit::LockGuard lb(b);
  }
  EXPECT_EQ(audit::LockOrderRegistry::Instance().cycles_detected(), 0u);
}

TEST_F(LockOrderTest, TwoMutexCycleIsDetected) {
  MSPLOG_SKIP_UNDER_TSAN();
  audit::Mutex a("test.a");
  audit::Mutex b("test.b");
  {
    audit::LockGuard la(a);
    audit::LockGuard lb(b);  // edge a -> b
  }
  {
    audit::LockGuard lb(b);
    audit::LockGuard la(a);  // edge b -> a: cycle, single-threaded and
                             // deterministic — no deadlock needed to trip it
  }
  auto& reg = audit::LockOrderRegistry::Instance();
  EXPECT_GE(reg.cycles_detected(), 1u);
  ASSERT_FALSE(reg.reports().empty());
  EXPECT_NE(reg.reports()[0].find("test."), std::string::npos);
}

TEST_F(LockOrderTest, ThreeMutexCycleAcrossThreadsIsDetected) {
  MSPLOG_SKIP_UNDER_TSAN();
  audit::Mutex a("test.a");
  audit::Mutex b("test.b");
  audit::Mutex c("test.c");
  // Build a -> b and b -> c on one thread, then close the cycle c -> a on
  // another; detection is at edge insertion, not at deadlock time.
  {
    audit::LockGuard la(a);
    audit::LockGuard lb(b);
  }
  {
    audit::LockGuard lb(b);
    audit::LockGuard lc(c);
  }
  std::thread t([&] {
    audit::LockGuard lc(c);
    audit::LockGuard la(a);
  });
  t.join();
  EXPECT_GE(audit::LockOrderRegistry::Instance().cycles_detected(), 1u);
}

TEST_F(LockOrderTest, SharedMutexParticipatesInOrdering) {
  MSPLOG_SKIP_UNDER_TSAN();
  audit::SharedMutex a("test.rw_a");
  audit::Mutex b("test.b");
  {
    audit::SharedLock la(a);
    audit::LockGuard lb(b);
  }
  {
    audit::LockGuard lb(b);
    audit::SharedUniqueLock la(a);
  }
  EXPECT_GE(audit::LockOrderRegistry::Instance().cycles_detected(), 1u);
}

TEST_F(LockOrderTest, UnregisterPrunesGraph) {
  // TSan keys its own inversion detector on addresses; tmp and tmp2 reuse a
  // stack slot and look like one mutex to it, while our registry correctly
  // treats them as distinct instances.
  MSPLOG_SKIP_UNDER_TSAN();
  audit::Mutex a("test.a");
  {
    audit::Mutex tmp("test.tmp");
    audit::LockGuard la(a);
    audit::LockGuard lt(tmp);
  }  // tmp destroyed: its node and edges must go with it
  {
    audit::Mutex tmp2("test.tmp2");
    audit::LockGuard lt(tmp2);
    audit::LockGuard la(a);
  }
  // tmp2 is a fresh id; no cycle exists unless stale edges survived.
  EXPECT_EQ(audit::LockOrderRegistry::Instance().cycles_detected(), 0u);
}

class InvariantTest : public ::testing::Test {
 protected:
  void SetUp() override { audit::InvariantRegistry::Instance().ResetForTest(); }
  void TearDown() override {
    audit::InvariantRegistry::Instance().ResetForTest();
  }
};

TEST_F(InvariantTest, CheckersAcceptLegalTransitions) {
  DependencyVector before, after;
  before.Set("m1", {1, 100});
  after.Set("m1", {1, 200});
  after.Set("m2", {0, 50});
  audit::CheckDvMonotonic("t", before, after);
  audit::CheckDvSelfMonotonic("t", "m1", before, StateId{1, 101});
  audit::CheckLsnAdvance("t", 512, 512);
  EXPECT_EQ(audit::InvariantRegistry::Instance().total_violations(), 0u);
}

TEST_F(InvariantTest, DvRegressionIsViolation) {
  DependencyVector before, after;
  before.Set("m1", {1, 200});
  after.Set("m1", {1, 100});  // went backwards
  audit::CheckDvMonotonic("t", before, after);
  EXPECT_EQ(audit::InvariantRegistry::Instance().violations("dv-monotonic"),
            1u);
}

TEST_F(InvariantTest, DroppedEntryIsViolation) {
  DependencyVector before, after;
  before.Set("m1", {1, 200});
  before.Set("m2", {3, 10});
  after.Set("m1", {1, 300});  // m2 entry silently vanished
  audit::CheckDvMonotonic("t", before, after);
  EXPECT_GE(audit::InvariantRegistry::Instance().violations("dv-monotonic"),
            1u);
}

TEST_F(InvariantTest, WalBeforeSendCatchesUndurableSelfEntry) {
  DependencyVector dv;
  dv.Set("m1", {2, 4096});
  // LSNs are frame-start offsets: durable means strictly below durable_lsn.
  audit::CheckWalBeforeSend("t", "m1", 2, dv, /*durable_lsn=*/8192);
  EXPECT_EQ(audit::InvariantRegistry::Instance().total_violations(), 0u);
  audit::CheckWalBeforeSend("t", "m1", 2, dv, /*durable_lsn=*/1024);
  EXPECT_EQ(
      audit::InvariantRegistry::Instance().violations("wal-before-send"), 1u);
}

TEST_F(InvariantTest, RecoveredTableMustDominateOldEpochs) {
  RecoveredStateTable table;
  table.Record("m1", /*epoch=*/0, /*sn=*/1000);
  DependencyVector ok_dv, bad_dv;
  ok_dv.Set("m1", {0, 900});   // covered by the table
  bad_dv.Set("m1", {0, 1500}); // depends on a state the table proves lost
  audit::CheckRecoveredDominates("t", table, "m1", /*current_epoch=*/1, ok_dv);
  EXPECT_EQ(audit::InvariantRegistry::Instance().total_violations(), 0u);
  audit::CheckRecoveredDominates("t", table, "m1", /*current_epoch=*/1,
                                 bad_dv);
  EXPECT_EQ(
      audit::InvariantRegistry::Instance().violations("recovery-dominates"),
      1u);
}

// ---------------------------------------------------------------------------
// AssertHeld / AssertSharedHeld — the runtime twin of the clang REQUIRES
// annotations. Violations report through the invariant sink as
// "lock-assert-held".
// ---------------------------------------------------------------------------

TEST_F(InvariantTest, AssertHeldPassesWhileHeld) {
  audit::Mutex m("test.assert");
  {
    audit::LockGuard lk(m);
    m.AssertHeld();
  }
  {
    audit::UniqueLock lk(m);
    m.AssertHeld();
  }
  EXPECT_EQ(
      audit::InvariantRegistry::Instance().violations("lock-assert-held"),
      0u);
}

TEST_F(InvariantTest, AssertHeldRingsWhenNotHeld) {
  audit::Mutex m("test.assert");
  m.AssertHeld();  // nothing held at all
  EXPECT_EQ(
      audit::InvariantRegistry::Instance().violations("lock-assert-held"),
      1u);
  // An unlock window (the DoFlushLocked I/O pattern) drops the held-set
  // entry too: asserting inside the window must ring.
  audit::UniqueLock lk(m);
  lk.unlock();
  m.AssertHeld();
  EXPECT_EQ(
      audit::InvariantRegistry::Instance().violations("lock-assert-held"),
      2u);
  lk.lock();  // dtor expects ownership state to match
}

TEST_F(InvariantTest, AssertHeldIsPerThread) {
  // Ownership by SOME thread is not enough: the contract is about the
  // calling thread.
  audit::Mutex m("test.assert");
  audit::LockGuard lk(m);
  std::thread t([&] { m.AssertHeld(); });
  t.join();
  EXPECT_EQ(
      audit::InvariantRegistry::Instance().violations("lock-assert-held"),
      1u);
}

TEST_F(InvariantTest, SharedAssertDistinguishesReaderFromWriter) {
  audit::SharedMutex rw("test.assert_rw");
  {
    audit::SharedLock lk(rw);
    rw.AssertSharedHeld();  // a reader satisfies the shared contract
    EXPECT_EQ(
        audit::InvariantRegistry::Instance().violations("lock-assert-held"),
        0u);
    rw.AssertHeld();  // ... but not the exclusive one
    EXPECT_EQ(
        audit::InvariantRegistry::Instance().violations("lock-assert-held"),
        1u);
  }
  {
    audit::SharedUniqueLock lk(rw);
    rw.AssertHeld();        // a writer satisfies the exclusive contract
    rw.AssertSharedHeld();  // ... and subsumes the shared one
  }
  EXPECT_EQ(
      audit::InvariantRegistry::Instance().violations("lock-assert-held"),
      1u);
}

// ---------------------------------------------------------------------------
// End-to-end: injected faults must ring through the wired-in checkers.
// ---------------------------------------------------------------------------

TEST_F(InvariantTest, ScannerRejectsFlippedCrcByteAndNotes) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  LogFile log(&env, &disk, "log");
  uint64_t l1 = log.Append([] {
    LogRecord r;
    r.type = LogRecordType::kRequestReceive;
    r.session_id = "s";
    r.seqno = 1;
    r.payload = "good";
    return r;
  }());
  uint64_t l2 = log.Append([] {
    LogRecord r;
    r.type = LogRecordType::kRequestReceive;
    r.session_id = "s";
    r.seqno = 2;
    r.payload = "to-corrupt";
    return r;
  }());
  ASSERT_TRUE(log.FlushAll().ok());

  // Flip one byte inside the second record's body ([len][crc] is 8 bytes).
  Bytes raw;
  ASSERT_TRUE(disk.ReadAt("log", l2 + 10, 1, &raw).ok());
  raw[0] ^= 0x01;
  ASSERT_TRUE(disk.WriteAt("log", l2 + 10, raw).ok());

  LogScanner scanner(&disk, "log", 0, disk.FileSize("log"));
  LogRecord r;
  ASSERT_TRUE(scanner.Next(&r).ok());
  EXPECT_EQ(r.lsn, l1);
  EXPECT_TRUE(scanner.Next(&r).IsCorruption());
  EXPECT_GE(audit::InvariantRegistry::Instance().notes("log.crc-reject"), 1u);
  EXPECT_EQ(audit::InvariantRegistry::Instance().total_violations(), 0u);
}

TEST_F(InvariantTest, InjectedDvRegressionTripsAuditorOnNextRequest) {
  SimEnvironment env(0.0);
  SimNetwork net(&env);
  SimDisk disk(&env, "da");
  DomainDirectory directory;
  MspConfig c;
  c.id = "alpha";
  c.mode = RecoveryMode::kLogBased;
  c.checkpoint_daemon = false;
  directory.Assign("alpha", "domA");
  Msp msp(&env, &net, &disk, &directory, c);
  msp.RegisterMethod("echo",
                     [](ServiceContext*, const Bytes& arg, Bytes* result) {
                       *result = "echo:" + arg;
                       return Status::OK();
                     });
  ASSERT_TRUE(msp.Start().ok());

  ClientEndpoint client(&env, &net, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "echo", "one", &reply).ok());
  EXPECT_EQ(audit::InvariantRegistry::Instance().violations("dv-monotonic"),
            0u);

  // Simulate a dependency-dropping bug between requests; the next request's
  // entry check must see the session DV below its shadow and ring.
  msp.InjectDvRegressionForTest(session.session_id);
  ASSERT_TRUE(client.Call(&session, "echo", "two", &reply).ok());
  EXPECT_GE(audit::InvariantRegistry::Instance().violations("dv-monotonic"),
            1u);
  msp.Shutdown();
}

TEST_F(InvariantTest, CleanRunStaysSilent) {
  SimEnvironment env(0.0);
  SimNetwork net(&env);
  SimDisk disk(&env, "da");
  DomainDirectory directory;
  MspConfig c;
  c.id = "alpha";
  c.mode = RecoveryMode::kLogBased;
  c.checkpoint_daemon = false;
  directory.Assign("alpha", "domA");
  Msp msp(&env, &net, &disk, &directory, c);
  msp.RegisterMethod("echo",
                     [](ServiceContext*, const Bytes& arg, Bytes* result) {
                       *result = "echo:" + arg;
                       return Status::OK();
                     });
  ASSERT_TRUE(msp.Start().ok());
  ClientEndpoint client(&env, &net, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.Call(&session, "echo", std::to_string(i), &reply).ok());
  }
  EXPECT_EQ(audit::InvariantRegistry::Instance().total_violations(), 0u);
  msp.Shutdown();
}

#else  // !MSPLOG_AUDIT_ENABLED

// The MSPLOG_AUDIT=OFF shells must stay zero-cost: exactly the wrapped std
// lock, no auditor id, no extra state. (The thread-safety annotations are
// attributes and cost nothing either way.)
static_assert(sizeof(audit::Mutex) == sizeof(std::mutex),
              "audit-off Mutex shell must add no state");
static_assert(sizeof(audit::SharedMutex) == sizeof(std::shared_mutex),
              "audit-off SharedMutex shell must add no state");

TEST(AuditDisabled, WrappersStillLock) {
  audit::Mutex m("noop");
  audit::LockGuard lk(m);
  audit::CheckLsnAdvance("t", 100, 0);  // no-op, must not fire anything
  EXPECT_EQ(audit::InvariantRegistry::Instance().total_violations(), 0u);
}

TEST(AuditDisabled, AssertHeldIsANoOp) {
  audit::Mutex m("noop");
  m.AssertHeld();  // not held; the disabled twin must not ring or crash
  audit::SharedMutex rw("noop.rw");
  rw.AssertHeld();
  rw.AssertSharedHeld();
  EXPECT_EQ(audit::InvariantRegistry::Instance().total_violations(), 0u);
}

#endif  // MSPLOG_AUDIT_ENABLED

}  // namespace
}  // namespace msplog
