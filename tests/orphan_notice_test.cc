// Tests for the orphan-notice extension (beyond Fig. 7's silent discard):
// a sender that missed a peer's recovery broadcast learns it is an orphan
// from the first receiver that discards its DV-tagged request, instead of
// retrying forever.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "msp/msp.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

class OrphanNoticeTest : public ::testing::Test {
 protected:
  OrphanNoticeTest()
      : env_(0.0), net_(&env_), da_(&env_, "da"), db_(&env_, "db"),
        dg_(&env_, "dg") {}

  void SetUp() override {
    directory_.Assign("alpha", "dom");
    directory_.Assign("beta", "dom");
    directory_.Assign("gamma", "dom");
    MspConfig ca, cb, cg;
    ca.id = "alpha";
    cb.id = "beta";
    cg.id = "gamma";
    ca.flush_timeout_ms = cb.flush_timeout_ms = cg.flush_timeout_ms = 20;
    alpha_ = std::make_unique<Msp>(&env_, &net_, &da_, &directory_, ca);
    beta_ = std::make_unique<Msp>(&env_, &net_, &db_, &directory_, cb);
    gamma_ = std::make_unique<Msp>(&env_, &net_, &dg_, &directory_, cg);

    gamma_->RegisterMethod("gcount",
                           [](ServiceContext* ctx, const Bytes&, Bytes* r) {
                             Bytes cur = ctx->GetSessionVar("n");
                             int n = cur.empty() ? 0 : std::stoi(cur);
                             ctx->SetSessionVar("n", std::to_string(n + 1));
                             *r = std::to_string(n + 1);
                             return Status::OK();
                           });
    beta_->RegisterMethod("becho",
                          [](ServiceContext*, const Bytes& a, Bytes* r) {
                            *r = "b:" + a;
                            return Status::OK();
                          });
    alpha_->RegisterMethod(
        "dep_then_hop", [this](ServiceContext* ctx, const Bytes&, Bytes* r) {
          Bytes g;
          MSPLOG_RETURN_IF_ERROR(ctx->Call("gamma", "gcount", "", &g));
          if (!ctx->in_replay()) {
            held_.store(true);
            while (gate_.load()) {
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
          }
          Bytes b;
          MSPLOG_RETURN_IF_ERROR(ctx->Call("beta", "becho", g, &b));
          *r = b;
          return Status::OK();
        });
    ASSERT_TRUE(gamma_->Start().ok());
    ASSERT_TRUE(beta_->Start().ok());
    ASSERT_TRUE(alpha_->Start().ok());
  }

  void TearDown() override {
    gate_.store(false);
    if (alpha_) alpha_->Shutdown();
    if (beta_) beta_->Shutdown();
    if (gamma_) gamma_->Shutdown();
  }

  SimEnvironment env_;
  SimNetwork net_;
  SimDisk da_, db_, dg_;
  DomainDirectory directory_;
  std::unique_ptr<Msp> alpha_, beta_, gamma_;
  std::atomic<bool> gate_{false}, held_{false};
};

TEST_F(OrphanNoticeTest, LostBroadcastRecoveredViaNotice) {
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;

  // Park alpha's session after acquiring an (unflushed) gamma dependency.
  gate_.store(true);
  held_.store(false);
  std::thread t([&] {
    Status st = client.Call(&session, "dep_then_hop", "", &reply);
    EXPECT_TRUE(st.ok()) << st.ToString();
  });
  while (!held_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Gamma crashes. Its recovery broadcast reaches beta but NOT alpha (the
  // link drops everything gamma→alpha during the restart).
  FaultPlan drop_all;
  drop_all.drop_prob = 1.0;
  net_.SetFaults("gamma", "alpha", drop_all);
  gamma_->Crash();
  ASSERT_TRUE(gamma_->Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  net_.SetFaults("gamma", "alpha", FaultPlan{});  // link heals

  // Alpha proceeds, oblivious: its request to beta carries the orphan
  // gamma dependency. Beta discards it per Fig. 7 — and the orphan notice
  // tells alpha why, so alpha recovers instead of retrying forever.
  gate_.store(false);
  t.join();
  EXPECT_EQ(reply, "b:1");  // exactly-once at gamma despite its crash
  EXPECT_GE(env_.stats().orphans_detected.load(), 1u);
  // Alpha learned gamma's recovered state number through the notice.
  auto table = alpha_->SnapshotRecoveredTable();
  bool knows_gamma = false;
  for (const auto& [key, sn] : table.entries()) {
    if (key.first == "gamma") knows_gamma = true;
  }
  EXPECT_TRUE(knows_gamma);

  // Everything keeps working afterwards.
  ASSERT_TRUE(client.Call(&session, "dep_then_hop", "", &reply).ok());
  EXPECT_EQ(reply, "b:2");
}

TEST_F(OrphanNoticeTest, NoFalseNoticesOnCleanTraffic) {
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(client.Call(&session, "dep_then_hop", "", &reply).ok());
    EXPECT_EQ(reply, "b:" + std::to_string(i));
  }
  EXPECT_EQ(env_.stats().orphans_detected.load(), 0u);
}

}  // namespace
}  // namespace msplog
