// Tests for the §5 baseline configurations: NoLog, Psession (database-backed
// sessions), StateServer (remote in-memory sessions) — including their
// crash-survival characteristics, which motivate log-based recovery.
#include <gtest/gtest.h>

#include "baseline/state_server.h"
#include "harness/paper_workload.h"
#include "msp/msp.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() : env_(0.0), net_(&env_), disk_(&env_, "d") {}

  void TearDown() override {
    if (msp_) msp_->Shutdown();
    if (ss_) ss_->Crash();
  }

  void StartMsp(RecoveryMode mode) {
    MspConfig c;
    c.id = "alpha";
    c.mode = mode;
    c.checkpoint_daemon = false;
    c.state_server = "ss";
    if (mode == RecoveryMode::kStateServer) {
      ss_ = std::make_unique<StateServerNode>(&env_, &net_, "ss");
      ASSERT_TRUE(ss_->Start().ok());
    }
    directory_.Assign("alpha", "domA");
    msp_ = std::make_unique<Msp>(&env_, &net_, &disk_, &directory_, c);
    msp_->RegisterMethod(
        "counter", [](ServiceContext* ctx, const Bytes&, Bytes* result) {
          Bytes cur = ctx->GetSessionVar("n");
          int n = cur.empty() ? 0 : std::stoi(cur);
          ctx->SetSessionVar("n", std::to_string(n + 1));
          *result = std::to_string(n + 1);
          return Status::OK();
        });
    msp_->RegisterMethod("echo",
                         [](ServiceContext*, const Bytes& a, Bytes* r) {
                           *r = "echo:" + a;
                           return Status::OK();
                         });
    ASSERT_TRUE(msp_->Start().ok());
  }

  SimEnvironment env_;
  SimNetwork net_;
  SimDisk disk_;
  DomainDirectory directory_;
  std::unique_ptr<Msp> msp_;
  std::unique_ptr<StateServerNode> ss_;
};

TEST_F(BaselineTest, NoLogServesRequestsWithoutDiskWrites) {
  StartMsp(RecoveryMode::kNoLog);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  auto before = env_.stats().Snap();
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
    EXPECT_EQ(reply, std::to_string(i));
  }
  auto after = env_.stats().Snap();
  EXPECT_EQ(after.disk_flushes, before.disk_flushes);
  EXPECT_EQ(after.log_records_appended, before.log_records_appended);
}

TEST_F(BaselineTest, NoLogLosesSessionStateOnCrash) {
  StartMsp(RecoveryMode::kNoLog);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  }
  msp_->Crash();
  ASSERT_TRUE(msp_->Start().ok());
  // The count restarts: NoLog provides no recovery.
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  EXPECT_EQ(reply, "1");
}

TEST_F(BaselineTest, PsessionPersistsSessionStateInDatabase) {
  StartMsp(RecoveryMode::kPsession);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
    EXPECT_EQ(reply, std::to_string(i));
  }
  msp_->Crash();
  ASSERT_TRUE(msp_->Start().ok());
  // Session state survives in the WAL-backed database.
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  EXPECT_EQ(reply, "4");
}

TEST_F(BaselineTest, PsessionPaysTwoTransactionsPerRequest) {
  StartMsp(RecoveryMode::kPsession);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  auto before = env_.stats().Snap();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  }
  auto after = env_.stats().Snap();
  // Read transaction (durable lock) + write transaction per request (§5.2).
  EXPECT_EQ(after.disk_flushes - before.disk_flushes, 10u);
}

TEST_F(BaselineTest, PsessionDedupesAcrossCrash) {
  StartMsp(RecoveryMode::kPsession);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  msp_->Crash();
  ASSERT_TRUE(msp_->Start().ok());
  session.next_seqno = 1;  // duplicate of the already-executed request
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  EXPECT_EQ(reply, "1");  // buffered reply from the database, not a re-run
}

TEST_F(BaselineTest, StateServerKeepsSessionAcrossMspCrash) {
  StartMsp(RecoveryMode::kStateServer);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  }
  EXPECT_EQ(ss_->StoredSessions(), 1u);
  msp_->Crash();
  ASSERT_TRUE(msp_->Start().ok());
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  EXPECT_EQ(reply, "4");  // state fetched back from the state server
}

TEST_F(BaselineTest, StateServerCrashLosesEverything) {
  StartMsp(RecoveryMode::kStateServer);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  }
  // The paper's critique: the state server is a single point of state loss.
  ss_->Crash();
  ASSERT_TRUE(ss_->Start().ok());
  msp_->Crash();
  ASSERT_TRUE(msp_->Start().ok());
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  EXPECT_EQ(reply, "1");  // gone
}

TEST_F(BaselineTest, StateServerNoDiskTraffic) {
  StartMsp(RecoveryMode::kStateServer);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  auto before = env_.stats().Snap();
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  auto after = env_.stats().Snap();
  EXPECT_EQ(after.disk_flushes, before.disk_flushes);
  // ...but it does cost extra messages (get + put round trips).
  EXPECT_GE(after.messages_sent - before.messages_sent, 6u);
}

TEST(PaperWorkloadTest, AllFiveConfigurationsServeTheWorkload) {
  for (PaperConfig config :
       {PaperConfig::kLoOptimistic, PaperConfig::kPessimistic,
        PaperConfig::kNoLog, PaperConfig::kPsession,
        PaperConfig::kStateServer}) {
    PaperWorkloadOptions opts;
    opts.config = config;
    opts.time_scale = 0.0;
    opts.checkpoint_daemon = false;
    PaperWorkload w(opts);
    ASSERT_TRUE(w.Start().ok()) << PaperConfigName(config);
    RunResult r = w.RunSingleClient(10);
    EXPECT_EQ(r.requests, 10u) << PaperConfigName(config);
    w.Shutdown();
  }
}

TEST(PaperWorkloadTest, LoOptimisticSurvivesInjectedCrashes) {
  PaperWorkloadOptions opts;
  opts.config = PaperConfig::kLoOptimistic;
  opts.time_scale = 0.0;
  opts.checkpoint_daemon = false;
  PaperWorkload w(opts);
  ASSERT_TRUE(w.Start().ok());
  RunResult r = w.RunSingleClient(40, /*crash_every=*/10);
  EXPECT_EQ(r.requests, 40u);
  EXPECT_GE(w.crashes_injected(), 3u);
  w.Shutdown();
}

TEST(PaperWorkloadTest, PessimisticSurvivesInjectedCrashes) {
  PaperWorkloadOptions opts;
  opts.config = PaperConfig::kPessimistic;
  opts.time_scale = 0.0;
  opts.checkpoint_daemon = false;
  PaperWorkload w(opts);
  ASSERT_TRUE(w.Start().ok());
  RunResult r = w.RunSingleClient(30, /*crash_every=*/10);
  EXPECT_EQ(r.requests, 30u);
  EXPECT_GE(w.crashes_injected(), 2u);
  w.Shutdown();
}

}  // namespace
}  // namespace msplog
