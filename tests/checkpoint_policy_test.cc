// Tests for the checkpoint policies of §3.4: daemon-driven MSP checkpoints,
// forced checkpoints for idle sessions and shared variables, and the
// anchor/scan-start interplay.
#include <gtest/gtest.h>

#include <thread>

#include "log/log_anchor.h"
#include "msp/msp.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

class CheckpointPolicyTest : public ::testing::Test {
 protected:
  CheckpointPolicyTest() : env_(0.0), net_(&env_), disk_(&env_, "d") {}

  void TearDown() override {
    if (msp_) msp_->Shutdown();
  }

  void StartMsp(MspConfig c) {
    directory_.Assign(c.id, "dom");
    msp_ = std::make_unique<Msp>(&env_, &net_, &disk_, &directory_, c);
    msp_->RegisterSharedVariable("sv", "0");
    msp_->RegisterMethod("bump", [](ServiceContext* ctx, const Bytes&,
                                    Bytes* r) {
      Bytes cur;
      MSPLOG_RETURN_IF_ERROR(ctx->ReadShared("sv", &cur));
      MSPLOG_RETURN_IF_ERROR(
          ctx->WriteShared("sv", std::to_string(std::stol(cur) + 1)));
      ctx->SetSessionVar("x", MakePayload(256, std::stol(cur)));
      *r = cur;
      return Status::OK();
    });
    ASSERT_TRUE(msp_->Start().ok());
  }

  SimEnvironment env_;
  SimNetwork net_;
  SimDisk disk_;
  DomainDirectory directory_;
  std::unique_ptr<Msp> msp_;
};

TEST_F(CheckpointPolicyTest, SessionCheckpointTriggersAtThreshold) {
  MspConfig c;
  c.id = "alpha";
  c.checkpoint_daemon = false;
  c.session_checkpoint_threshold_bytes = 512;  // every ~3 bump requests
  StartMsp(c);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client.Call(&session, "bump", "", &reply).ok());
  }
  EXPECT_GE(env_.stats().checkpoints_session.load(), 3u);
}

TEST_F(CheckpointPolicyTest, IdleSessionIsForceCheckpointed) {
  // §3.4: "If a session is inactive for a long period ... we force a
  // checkpoint for a session if the number of MSP checkpoints taken since
  // the previous session checkpoint reaches a threshold."
  MspConfig c;
  c.id = "alpha";
  c.checkpoint_daemon = false;
  c.session_checkpoint_threshold_bytes = 1 << 30;  // never by size
  c.force_checkpoint_after_msp_cps = 2;
  StartMsp(c);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Call(&session, "bump", "", &reply).ok());
  }
  EXPECT_EQ(env_.stats().checkpoints_session.load(), 0u);
  // The session now goes idle while MSP checkpoints keep happening.
  ASSERT_TRUE(msp_->ForceCheckpoint(CheckpointTarget::Msp()).ok());
  ASSERT_TRUE(msp_->ForceCheckpoint(CheckpointTarget::Msp()).ok());
  // The second MSP checkpoint crossed the staleness threshold and armed a
  // forced session checkpoint on the pool.
  for (int spin = 0; spin < 200; ++spin) {
    if (env_.stats().checkpoints_session.load() >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(env_.stats().checkpoints_session.load(), 1u);
  // The forced checkpoint advances the analysis-scan start: the position
  // stream is empty again.
  EXPECT_TRUE(msp_->PeekPositionStream(session.session_id).empty());
}

TEST_F(CheckpointPolicyTest, UncheckpointedVariableIsCheckpointedByMspCp) {
  MspConfig c;
  c.id = "alpha";
  c.checkpoint_daemon = false;
  c.shared_var_checkpoint_threshold_writes = 0;  // never by count
  StartMsp(c);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "bump", "", &reply).ok());
  EXPECT_EQ(env_.stats().checkpoints_shared_var.load(), 0u);
  // The MSP checkpoint's pre-pass gives every variable a checkpoint
  // position so the scan start is bounded.
  ASSERT_TRUE(msp_->ForceCheckpoint(CheckpointTarget::Msp()).ok());
  EXPECT_GE(env_.stats().checkpoints_shared_var.load(), 1u);
}

TEST_F(CheckpointPolicyTest, DaemonTakesMspCheckpointsBySize) {
  MspConfig c;
  c.id = "alpha";
  c.checkpoint_daemon = true;
  c.checkpoint_interval_ms = 1.0;
  c.msp_checkpoint_log_bytes = 4096;
  c.session_checkpoint_threshold_bytes = 4096;
  StartMsp(c);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(client.Call(&session, "bump", "", &reply).ok());
  }
  for (int spin = 0; spin < 300; ++spin) {
    if (env_.stats().checkpoints_msp.load() >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // At least the recovery-time checkpoint plus daemon-driven ones.
  EXPECT_GE(env_.stats().checkpoints_msp.load(), 2u);
  // Anchor tracks the newest MSP checkpoint.
  LogAnchor anchor(&disk_, "alpha.anchor");
  AnchorData ad;
  ASSERT_TRUE(anchor.Read(&ad).ok());
  EXPECT_GT(ad.msp_checkpoint_lsn, 0u);
}

TEST_F(CheckpointPolicyTest, RecoveryAfterForcedCheckpointsIsExact) {
  MspConfig c;
  c.id = "alpha";
  c.checkpoint_daemon = false;
  c.session_checkpoint_threshold_bytes = 1 << 30;
  c.force_checkpoint_after_msp_cps = 1;  // force on every MSP checkpoint
  StartMsp(c);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(client.Call(&session, "bump", "", &reply).ok());
    }
    ASSERT_TRUE(msp_->ForceCheckpoint(CheckpointTarget::Msp()).ok());
    ASSERT_TRUE(msp_->ForceCheckpoint(CheckpointTarget::Msp()).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  msp_->Crash();
  ASSERT_TRUE(msp_->Start().ok());
  auto v = msp_->PeekSharedValue("sv");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "12");
  ASSERT_TRUE(client.Call(&session, "bump", "", &reply).ok());
  EXPECT_EQ(reply, "12");
}

}  // namespace
}  // namespace msplog
