// Instrumentation-integrity tests: the benchmarks interpret SimStats
// counters, the obs histograms and the event tracer, so all three must track
// the underlying operations exactly on controlled workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <thread>
#include <vector>

#include "msp/msp.h"
#include "msp/service_domain.h"
#include "obs/blame.h"
#include "obs/metrics.h"
#include "obs/scraper.h"
#include "obs/session_stats.h"
#include "obs/trace.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

class StatsTest : public ::testing::Test {
 protected:
  StatsTest() : env_(0.0), net_(&env_), disk_a_(&env_, "da"),
                disk_b_(&env_, "db") {}

  void TearDown() override {
    if (alpha_) alpha_->Shutdown();
    if (beta_) beta_->Shutdown();
  }

  void Build(bool same_domain) {
    directory_.Assign("alpha", "domA");
    directory_.Assign("beta", same_domain ? "domA" : "domB");
    MspConfig ca, cb;
    ca.id = "alpha";
    cb.id = "beta";
    ca.checkpoint_daemon = cb.checkpoint_daemon = false;
    ca.session_checkpoint_threshold_bytes = 0;
    cb.session_checkpoint_threshold_bytes = 0;
    ca.shared_var_checkpoint_threshold_writes = 0;
    cb.shared_var_checkpoint_threshold_writes = 0;
    alpha_ = std::make_unique<Msp>(&env_, &net_, &disk_a_, &directory_, ca);
    beta_ = std::make_unique<Msp>(&env_, &net_, &disk_b_, &directory_, cb);
    beta_->RegisterMethod("echo", [](ServiceContext*, const Bytes& a,
                                     Bytes* r) {
      *r = a;
      return Status::OK();
    });
    alpha_->RegisterSharedVariable("sv", "0");
    alpha_->RegisterMethod("workload", [](ServiceContext* ctx, const Bytes& a,
                                          Bytes* r) {
      Bytes v;
      MSPLOG_RETURN_IF_ERROR(ctx->ReadShared("sv", &v));
      MSPLOG_RETURN_IF_ERROR(ctx->WriteShared("sv", v + "x"));
      return ctx->Call("beta", "echo", a, r);
    });
    ASSERT_TRUE(beta_->Start().ok());
    ASSERT_TRUE(alpha_->Start().ok());
  }

  SimEnvironment env_;
  SimNetwork net_;
  SimDisk disk_a_, disk_b_;
  DomainDirectory directory_;
  std::unique_ptr<Msp> alpha_, beta_;
};

TEST_F(StatsTest, LogRecordCountsPerRequestIntraDomain) {
  Build(/*same_domain=*/true);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  auto before = env_.stats().Snap();
  constexpr int kN = 5;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  }
  auto after = env_.stats().Snap();
  // Per request: alpha logs RequestReceive + SharedRead + SharedWrite +
  // ReplyReceive = 4; beta logs RequestReceive = 1. Five records total.
  EXPECT_EQ(after.log_records_appended - before.log_records_appended,
            5u * kN);
  // One distributed flush per request (before reply1 to the end client).
  EXPECT_EQ(after.distributed_flushes - before.distributed_flushes,
            1u * kN);
  // Messages: request1, request2, flush-request, flush-reply, reply2,
  // reply1 = 6 per request.
  EXPECT_EQ(after.messages_sent - before.messages_sent, 6u * kN);
}

TEST_F(StatsTest, CrossDomainUsesNoDvAndMoreFlushes) {
  Build(/*same_domain=*/false);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  auto before = env_.stats().Snap();
  constexpr int kN = 5;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  }
  auto after = env_.stats().Snap();
  EXPECT_EQ(after.dv_entries_attached, before.dv_entries_attached);
  // Three distributed flushes per request (each degenerates to one local
  // leg): before request2, before reply2, before reply1.
  EXPECT_EQ(after.distributed_flushes - before.distributed_flushes,
            3u * kN);
  // Messages: request1, request2, reply2, reply1 — no flush round trips.
  EXPECT_EQ(after.messages_sent - before.messages_sent, 4u * kN);
  EXPECT_EQ(after.disk_flushes - before.disk_flushes, 3u * kN);
}

TEST_F(StatsTest, ReplayCounterMatchesRecoveredRequests) {
  Build(true);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  constexpr int kN = 7;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  }
  auto before = env_.stats().Snap();
  alpha_->Crash();
  ASSERT_TRUE(alpha_->Start().ok());
  ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  auto after = env_.stats().Snap();
  EXPECT_EQ(after.requests_replayed - before.requests_replayed,
            static_cast<uint64_t>(kN));
  EXPECT_EQ(after.sessions_recovered - before.sessions_recovered, 1u);
}

TEST_F(StatsTest, WastedBytesBoundedByHalfSectorPerFlushOnAverage) {
  Build(true);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  auto before = env_.stats().Snap();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(client.Call(&session, "workload",
                            MakePayload(50 + i * 13, i), &reply)
                    .ok());
  }
  auto after = env_.stats().Snap();
  uint64_t flushes = after.disk_flushes - before.disk_flushes;
  uint64_t wasted = after.disk_bytes_wasted - before.disk_bytes_wasted;
  ASSERT_GT(flushes, 0u);
  EXPECT_LT(wasted, flushes * 512);  // strictly less than a sector each
}

// ---------------------------------------------------------------------------
// obs::Histogram correctness.

TEST(HistogramTest, BucketBoundariesExact) {
  using H = obs::Histogram;
  // Below 32 µs: one bucket per microsecond, exact boundaries.
  for (size_t u = 0; u < H::kSubBuckets; ++u) {
    EXPECT_EQ(H::BucketIndex(static_cast<double>(u) * 1e-3), u);
    EXPECT_DOUBLE_EQ(H::BucketLowerMs(u), static_cast<double>(u) * 1e-3);
    EXPECT_DOUBLE_EQ(H::BucketUpperMs(u), static_cast<double>(u + 1) * 1e-3);
  }
  // First bucket of the log range: [32 µs, 33 µs).
  EXPECT_EQ(H::BucketIndex(0.032), H::kSubBuckets);
  EXPECT_DOUBLE_EQ(H::BucketLowerMs(H::kSubBuckets), 0.032);
  EXPECT_DOUBLE_EQ(H::BucketUpperMs(H::kSubBuckets), 0.033);
  // Every bucket's lower bound maps back to that bucket, and buckets tile the
  // axis with no gaps or overlaps.
  for (size_t i = 0; i < H::kNumBuckets; ++i) {
    EXPECT_EQ(H::BucketIndex(H::BucketLowerMs(i)), i) << "bucket " << i;
    if (i + 1 < H::kNumBuckets) {
      EXPECT_DOUBLE_EQ(H::BucketUpperMs(i), H::BucketLowerMs(i + 1))
          << "bucket " << i;
    }
  }
  // Log-range buckets are at most 1/32 ≈ 3% of their lower bound wide — the
  // advertised relative quantile error.
  for (size_t i = H::kSubBuckets; i < H::kNumBuckets; ++i) {
    double lo = H::BucketLowerMs(i), hi = H::BucketUpperMs(i);
    EXPECT_LE((hi - lo) / lo, 1.0 / 32 + 1e-12) << "bucket " << i;
  }
  // Degenerate inputs clamp to bucket 0 / the top bucket.
  EXPECT_EQ(H::BucketIndex(-1.0), 0u);
  EXPECT_EQ(H::BucketIndex(0.0), 0u);
  EXPECT_EQ(H::BucketIndex(1e18), H::kNumBuckets - 1);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucketAndClampsToObserved) {
  obs::Histogram h;
  // One sample at 1 µs, one at 10 µs: q=0 and q=1 hit the bucket lower
  // bounds exactly; q=0.5 interpolates halfway into the 1 µs bucket.
  h.Record(0.001);
  h.Record(0.010);
  auto s = h.Snap();
  ASSERT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 0.001);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 0.010);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 0.0015);
  EXPECT_DOUBLE_EQ(s.min, 0.001);
  EXPECT_DOUBLE_EQ(s.max, 0.010);

  // All samples equal: interpolation would overshoot past the sample inside
  // the bucket, but the estimate is clamped to the observed [min, max].
  obs::Histogram h2;
  for (int i = 0; i < 3; ++i) h2.Record(0.005);
  auto s2 = h2.Snap();
  EXPECT_DOUBLE_EQ(s2.Quantile(0.5), 0.005);
  EXPECT_DOUBLE_EQ(s2.P99(), 0.005);

  // Wide spread: quantiles stay within the ≤3% bucket-width error bound.
  obs::Histogram h3;
  for (int v = 1; v <= 100; ++v) h3.Record(static_cast<double>(v));
  auto s3 = h3.Snap();
  EXPECT_NEAR(s3.P50(), 50.5, 3.0);
  EXPECT_NEAR(s3.P90(), 90.1, 4.0);
  EXPECT_NEAR(s3.P99(), 99.0, 4.0);
  EXPECT_LE(s3.P50(), s3.P90());
  EXPECT_LE(s3.P90(), s3.P99());
  EXPECT_LE(s3.P99(), s3.max);
  EXPECT_DOUBLE_EQ(s3.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(s3.min, 1.0);
  EXPECT_DOUBLE_EQ(s3.max, 100.0);
}

TEST(HistogramTest, ConcurrentRecordingIsDeterministic) {
  // N threads hammer one histogram with a fixed value multiset. The values
  // are exact binary fractions, so sum must come out exact regardless of the
  // interleaving, and the snapshot must equal a serially built reference.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 4000;
  static const double kValues[] = {0.25, 0.5, 1.0, 2.0, 4.0, 0.25, 8.0, 0.5};
  constexpr int kNumValues = 8;

  obs::MetricsRegistry reg;
  obs::Histogram* h = reg.GetHistogram("test.concurrent");
  // Interned handles are stable: same name, same pointer, from any thread.
  ASSERT_EQ(h, reg.GetHistogram("test.concurrent"));

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      obs::Histogram* hh = reg.GetHistogram("test.concurrent");
      for (int i = 0; i < kPerThread; ++i) hh->Record(kValues[i % kNumValues]);
    });
  }
  for (auto& t : threads) t.join();

  obs::Histogram ref;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) ref.Record(kValues[i % kNumValues]);
  }

  auto got = h->Snap();
  auto want = ref.Snap();
  EXPECT_EQ(got.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(got.count, want.count);
  EXPECT_DOUBLE_EQ(got.sum, want.sum);
  EXPECT_DOUBLE_EQ(got.min, 0.25);
  EXPECT_DOUBLE_EQ(got.max, 8.0);
  EXPECT_EQ(got.buckets, want.buckets);
  EXPECT_DOUBLE_EQ(got.P50(), want.P50());
  EXPECT_DOUBLE_EQ(got.P90(), want.P90());
  EXPECT_DOUBLE_EQ(got.P99(), want.P99());
}

TEST(HistogramTest, SnapshotMergeAndDelta) {
  obs::Histogram a, b;
  for (int i = 0; i < 10; ++i) a.Record(1.0);
  for (int i = 0; i < 10; ++i) b.Record(4.0);
  auto sa = a.Snap();
  auto before = sa;
  sa.Merge(b.Snap());
  EXPECT_EQ(sa.count, 20u);
  EXPECT_DOUBLE_EQ(sa.min, 1.0);
  EXPECT_DOUBLE_EQ(sa.max, 4.0);
  EXPECT_DOUBLE_EQ(sa.sum, 50.0);

  for (int i = 0; i < 5; ++i) a.Record(2.0);
  auto delta = a.Snap().Delta(before);
  EXPECT_EQ(delta.count, 5u);
  EXPECT_DOUBLE_EQ(delta.sum, 10.0);
  EXPECT_NEAR(delta.P50(), 2.0, 2.0 / 32);  // within one log bucket
}

// ---------------------------------------------------------------------------
// EventTracer: the request lifecycle leaves an exact, ordered event chain.

using obs::TraceEventType;

std::vector<obs::TraceEvent> EventsForActors(const obs::EventTracer& tracer,
                                             const std::string& a,
                                             const std::string& b) {
  std::vector<obs::TraceEvent> out;
  for (const auto& e : tracer.Events()) {
    if (e.actor == a || e.actor == b) out.push_back(e);
  }
  return out;  // Events() is already seq-ordered
}

TEST_F(StatsTest, TracerRecordsExactLifecycleForOneRequest) {
  Build(/*same_domain=*/true);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  // Warm up: session creation and recovery-time events are not part of the
  // steady-state per-request chain.
  ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  // The client can get the reply before the worker records kReplySent; wait
  // for the warm-up chain to drain so Clear() cannot race with its tail.
  {
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      auto ev = EventsForActors(env_.tracer(), "alpha", "alpha.log");
      if (!ev.empty() && ev.back().type == TraceEventType::kReplySent) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  env_.tracer().Clear();
  ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());

  // kReplySent is recorded just after the reply is handed to the network, so
  // the client can return before the worker reaches the Record call.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::vector<obs::TraceEvent> got;
  while (std::chrono::steady_clock::now() < deadline) {
    got = EventsForActors(env_.tracer(), "alpha", "alpha.log");
    if (!got.empty() && got.back().type == TraceEventType::kReplySent) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The full chain on alpha for one intra-domain request with an end-client
  // reply: enqueue → dequeue → execute → distributed flush (one flight
  // launched toward beta, one local log write) → reply. Nothing else may
  // interleave on this actor.
  const std::vector<TraceEventType> want = {
      TraceEventType::kEnqueue,           TraceEventType::kDequeue,
      TraceEventType::kExecStart,         TraceEventType::kExecEnd,
      TraceEventType::kDistFlushStart,    TraceEventType::kFlushFlightLaunch,
      TraceEventType::kLocalFlushStart,   TraceEventType::kLocalFlushEnd,
      TraceEventType::kDistFlushEnd,      TraceEventType::kReplySent,
  };
  ASSERT_EQ(got.size(), want.size()) << env_.tracer().DumpJson();
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].type, want[i])
        << "event " << i << " is " << obs::TraceEventTypeName(got[i].type);
  }
  // Model time is non-decreasing along the chain and seq is strictly
  // increasing (Events() sorts by seq).
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_GE(got[i].model_ms, got[i - 1].model_ms) << "event " << i;
    EXPECT_GT(got[i].seq, got[i - 1].seq) << "event " << i;
  }
  // Request-scoped events carry the session id and the request seqno.
  for (size_t i : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{9}}) {
    EXPECT_EQ(got[i].session, session.session_id);
    EXPECT_EQ(got[i].seqno, session.next_seqno - 1);
  }
  // The log-flush pair is attributed to alpha's log file.
  EXPECT_EQ(got[6].actor, "alpha.log");
  EXPECT_EQ(got[7].actor, "alpha.log");
  EXPECT_EQ(env_.tracer().dropped(), 0u);

  // Causal-tracing span contract: every request-scoped event on alpha shares
  // the request span S1 (allocated at enqueue, parent = the client's root
  // span), and the distributed-flush pair is a child span of S1.
  const obs::SpanContext s1 = got[0].span;
  EXPECT_TRUE(s1.valid());
  EXPECT_NE(s1.span_id, 0u);
  EXPECT_NE(s1.parent_span_id, 0u);  // parented under the client root
  for (size_t i : {size_t{1}, size_t{2}, size_t{3}, size_t{9}}) {
    EXPECT_EQ(got[i].span.trace_id, s1.trace_id) << "event " << i;
    EXPECT_EQ(got[i].span.span_id, s1.span_id) << "event " << i;
  }
  EXPECT_EQ(got[4].span.trace_id, s1.trace_id);
  EXPECT_EQ(got[4].span.parent_span_id, s1.span_id);
  EXPECT_NE(got[4].span.span_id, s1.span_id);
  EXPECT_EQ(got[8].span.span_id, got[4].span.span_id);
  // The flight toward beta is its own span, a child of the dist-flush span.
  EXPECT_EQ(got[5].span.trace_id, s1.trace_id);
  EXPECT_EQ(got[5].span.parent_span_id, got[4].span.span_id);
  // The client endpoint recorded the root span bracketing the whole call.
  auto all_events = env_.tracer().Events();
  const obs::TraceEvent* root_ev = nullptr;
  for (const auto& e : all_events) {
    if (e.type == TraceEventType::kClientCallStart && e.actor == "cli" &&
        e.span.trace_id == s1.trace_id) {
      root_ev = &e;
    }
  }
  ASSERT_NE(root_ev, nullptr);
  EXPECT_EQ(root_ev->span.span_id, s1.parent_span_id);
  EXPECT_EQ(root_ev->span.span_id, root_ev->span.trace_id);  // root: id==trace

  // Both dump formats carry the chain.
  std::string json = env_.tracer().DumpJson();
  EXPECT_NE(json.find("\"type\":\"Enqueue\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"ReplySent\""), std::string::npos);
  std::string chrome = env_.tracer().DumpChromeTracing();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"exec\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"dist_flush\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// RecoveryTimeline: one crash-recovery cycle fills every phase.

TEST_F(StatsTest, RecoveryTimelineAccountsCrashRecoveryPhases) {
  Build(/*same_domain=*/true);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  constexpr int kN = 4;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  }
  alpha_->Crash();
  env_.tracer().Clear();
  ASSERT_TRUE(alpha_->Start().ok());

  // Session replay runs on background workers after Start() returns.
  obs::RecoveryTimeline tl;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    tl = alpha_->LastRecoveryTimeline();
    if (!tl.session_replays.empty()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  EXPECT_EQ(tl.epoch, alpha_->epoch());
  EXPECT_GT(tl.analysis_scan_ms, 0.0);
  EXPECT_GT(tl.analysis_records_scanned, 0u);
  EXPECT_GT(tl.analysis_bytes_scanned, 0u);
  EXPECT_GT(tl.post_scan_checkpoint_ms, 0.0);
  EXPECT_EQ(tl.sessions_to_recover, 1u);
  ASSERT_EQ(tl.session_replays.size(), 1u);
  const auto& r = tl.session_replays[0];
  EXPECT_EQ(r.session_id, session.session_id);
  EXPECT_GT(r.replay_ms, 0.0);
  EXPECT_EQ(r.requests_replayed, static_cast<uint64_t>(kN));
  EXPECT_GE(r.rounds, 1u);
  EXPECT_TRUE(r.from_crash);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(tl.max_parallel_replays, 1u);
  EXPECT_DOUBLE_EQ(tl.TotalReplayMs(), r.replay_ms);
  // The timeline is the sole source of the scan duration (the old
  // last_recovery_scan_ms shim is gone) and it stamps the instant-restart
  // open point, which can only precede or equal this session's replay end.
  EXPECT_GT(tl.analysis_scan_ms, 0.0);
  EXPECT_GT(tl.open_for_traffic_ms, 0.0);
  // ToJson carries the phases for the bench reports.
  std::string json = tl.ToJson();
  EXPECT_NE(json.find("\"analysis_scan_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"open_for_traffic_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"session_replays\""), std::string::npos);

  // The tracer saw the same cycle: recovery start → analysis scan end →
  // recovery end, then the session's replay start/end pair.
  auto events = env_.tracer().Events();
  auto find = [&](TraceEventType t) -> const obs::TraceEvent* {
    for (const auto& e : events) {
      if (e.type == t && (e.actor == "alpha")) return &e;
    }
    return nullptr;
  };
  const auto* rec_start = find(TraceEventType::kRecoveryStart);
  const auto* scan_end = find(TraceEventType::kAnalysisScanEnd);
  const auto* rec_end = find(TraceEventType::kRecoveryEnd);
  const auto* replay_start = find(TraceEventType::kReplayStart);
  const auto* replay_end = find(TraceEventType::kReplayEnd);
  ASSERT_NE(rec_start, nullptr);
  ASSERT_NE(scan_end, nullptr);
  ASSERT_NE(rec_end, nullptr);
  ASSERT_NE(replay_start, nullptr);
  ASSERT_NE(replay_end, nullptr);
  EXPECT_LT(rec_start->seq, scan_end->seq);
  EXPECT_LT(scan_end->seq, rec_end->seq);
  EXPECT_LT(scan_end->seq, replay_start->seq);
  EXPECT_LT(replay_start->seq, replay_end->seq);
  EXPECT_EQ(replay_start->session, session.session_id);
  EXPECT_EQ(replay_start->detail, "crash");

  // After replay completes the session serves requests again.
  ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
}

// ---------------------------------------------------------------------------
// Tracer ring overflow is counted, not silent.

TEST(TracerDropTest, OverflowCountsDropsAndMirrorsIntoCounter) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("obs.trace_dropped");
  obs::EventTracer tracer(/*capacity=*/8, /*stripes=*/1);
  tracer.set_drop_counter(c);
  for (int i = 0; i < 20; ++i) {
    tracer.Record(obs::TraceEventType::kEnqueue, i, "actor");
  }
  EXPECT_EQ(tracer.dropped(), 12u);
  EXPECT_EQ(c->Value(), 12u);
  // The ring keeps the newest events.
  auto events = tracer.Events();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_DOUBLE_EQ(events.front().model_ms, 12.0);
  EXPECT_DOUBLE_EQ(events.back().model_ms, 19.0);
  // Clear resets retention but not the lifetime drop count.
  tracer.Clear();
  EXPECT_TRUE(tracer.Events().empty());
}

// ---------------------------------------------------------------------------
// Recovery provenance + bounded timeline history + statusz.

TEST_F(StatsTest, RecoveryProvenanceNamesTheRecordsThatRebuiltTheSession) {
  Build(/*same_domain=*/true);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  constexpr int kN = 5;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  }
  alpha_->Crash();
  ASSERT_TRUE(alpha_->Start().ok());
  // Wait for the background replay to converge.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  std::vector<obs::RecoveryTimeline::SessionProvenance> prov;
  while (std::chrono::steady_clock::now() < deadline) {
    prov = alpha_->RecoveryProvenance();
    if (!prov.empty()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(prov.size(), 1u);
  const auto& p = prov[0];
  EXPECT_EQ(p.session_id, session.session_id);
  // Every request before the crash was rebuilt from a logged RequestReceive.
  ASSERT_EQ(p.records.size(), static_cast<size_t>(kN));
  for (size_t i = 1; i < p.records.size(); ++i) {
    EXPECT_GT(p.records[i].lsn, p.records[i - 1].lsn);
    EXPECT_GT(p.records[i].seqno, p.records[i - 1].seqno);
  }
  EXPECT_GE(p.log_records_consumed, p.records.size());
  // No session checkpoint was taken (thresholds off in Build).
  EXPECT_EQ(p.session_checkpoint_lsn, 0u);
  // The timeline carries the same provenance plus the scan bounds.
  obs::RecoveryTimeline tl = alpha_->LastRecoveryTimeline();
  ASSERT_EQ(tl.provenance.size(), 1u);
  EXPECT_EQ(tl.provenance[0].records.size(), p.records.size());
  EXPECT_GT(tl.scan_end_lsn, tl.scan_start_lsn);
  std::string json = tl.ToJson();
  EXPECT_NE(json.find("\"provenance\""), std::string::npos);
  EXPECT_NE(json.find("\"scan_start_lsn\""), std::string::npos);
}

TEST_F(StatsTest, RecentRecoveryTimelinesKeepsBoundedHistory) {
  Build(/*same_domain=*/true);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  // Crash recovery runs on every Start, so the fresh boot already left one
  // (empty-scan) timeline.
  ASSERT_EQ(alpha_->RecentRecoveryTimelines().size(), 1u);

  for (int round = 0; round < 2; ++round) {
    alpha_->Crash();
    ASSERT_TRUE(alpha_->Start().ok());
    ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  }
  auto timelines = alpha_->RecentRecoveryTimelines();
  ASSERT_EQ(timelines.size(), 3u);
  // Oldest first; epochs advance by one per boot/crash cycle.
  for (size_t i = 1; i < timelines.size(); ++i) {
    EXPECT_EQ(timelines[i].epoch, timelines[i - 1].epoch + 1);
  }
  EXPECT_EQ(timelines.back().epoch, alpha_->epoch());
  // Only the crash recoveries replayed the session.
  EXPECT_EQ(timelines[0].sessions_to_recover, 0u);
  // A max_n cap keeps only the most recent entries.
  auto last_one = alpha_->RecentRecoveryTimelines(1);
  ASSERT_EQ(last_one.size(), 1u);
  EXPECT_EQ(last_one[0].epoch, timelines.back().epoch);
}

TEST_F(StatsTest, DumpStatuszCarriesLiveStateAndSurvivesCrashCycle) {
  Build(/*same_domain=*/true);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  std::string s = alpha_->DumpStatusz();
  for (const char* key :
       {"\"id\":\"alpha\"", "\"state\":\"running\"", "\"epoch\"",
        "\"sessions\"", "\"log\"", "\"end_lsn\"", "\"requests\"",
        "\"histograms\"", "\"recoveries\""}) {
    EXPECT_NE(s.find(key), std::string::npos) << key << " missing in " << s;
  }
  alpha_->Crash();
  std::string crashed = alpha_->DumpStatusz();
  EXPECT_NE(crashed.find("\"state\":\"crashed\""), std::string::npos);
  ASSERT_TRUE(alpha_->Start().ok());
  ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  EXPECT_NE(alpha_->DumpStatusz().find("\"state\":\"running\""),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Per-session telemetry: the MSP hot paths feed SessionStats exactly.

TEST_F(StatsTest, SessionTelemetryCountsHotPathEventsIntraDomain) {
  Build(/*same_domain=*/true);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  constexpr uint64_t kN = 6;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  }
  auto tel = alpha_->SessionTelemetry();
  ASSERT_EQ(tel.size(), 1u);
  const obs::SessionStatsSnapshot& s = tel[0];
  EXPECT_EQ(s.session_id, session.session_id);
  EXPECT_EQ(s.requests, kN);
  // Each request makes exactly one nested call to beta, intra-domain.
  EXPECT_EQ(s.nested_calls, kN);
  EXPECT_EQ(s.max_request_fanout, 1u);
  EXPECT_EQ(s.cross_domain_calls, 0u);
  ASSERT_EQ(s.calls_by_peer.size(), 1u);
  EXPECT_EQ(s.calls_by_peer.at("beta"), kN);
  // The intra-domain call piggybacks the DV; the reply to the end client
  // (outside any domain) forces one distributed flush per request.
  EXPECT_EQ(s.piggybacked_sends, kN);
  EXPECT_EQ(s.forced_flushes, kN);
  EXPECT_EQ(s.flush_stalls, kN);
  EXPECT_GT(s.flush_stall_ms, 0.0);
  // RequestReceive + SharedRead + SharedWrite + ReplyReceive per request.
  EXPECT_EQ(s.log_records, 4 * kN);
  EXPECT_GT(s.log_bytes, 0u);
  EXPECT_EQ(s.checkpoints, 0u);
  EXPECT_EQ(s.replays, 0u);

  // Beta's side of the same traffic: its per-caller session served the
  // nested calls and made none of its own.
  auto beta_tel = beta_->SessionTelemetry();
  ASSERT_EQ(beta_tel.size(), 1u);
  EXPECT_EQ(beta_tel[0].requests, kN);
  EXPECT_EQ(beta_tel[0].nested_calls, 0u);
  EXPECT_TRUE(beta_tel[0].calls_by_peer.empty());
}

TEST_F(StatsTest, SessionTelemetryCountsCrossDomainFlushes) {
  Build(/*same_domain=*/false);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  constexpr uint64_t kN = 4;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  }
  auto tel = alpha_->SessionTelemetry();
  ASSERT_EQ(tel.size(), 1u);
  const obs::SessionStatsSnapshot& s = tel[0];
  EXPECT_EQ(s.cross_domain_calls, kN);
  // Alpha forces a flush before the cross-domain request2 and before the
  // reply to the end client — two of the three per-request flushes are
  // attributed to this session (the third belongs to beta's side).
  EXPECT_EQ(s.forced_flushes, 2 * kN);
  EXPECT_EQ(s.piggybacked_sends, 0u);
}

TEST_F(StatsTest, SessionTelemetryCountsReplaysOnFreshRecord) {
  Build(/*same_domain=*/true);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  constexpr uint64_t kN = 5;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  }
  alpha_->Crash();
  ASSERT_TRUE(alpha_->Start().ok());
  ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  auto tel = alpha_->SessionTelemetry();
  ASSERT_EQ(tel.size(), 1u);
  // The crash destroyed the in-memory stats with the session object; the
  // fresh record separates recovery work (replays) from live traffic.
  EXPECT_EQ(tel[0].replays, kN);
  EXPECT_EQ(tel[0].requests, 1u);
}

// ---------------------------------------------------------------------------
// Strict mini JSON parser: every machine-readable dump must parse with NO
// leniency (no trailing garbage, no NaN/inf leaking out of %g, balanced
// structure). Substring checks alone would never catch a malformed dump.

size_t JsonValue(const std::string& s, size_t i);

size_t JsonWs(const std::string& s, size_t i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                          s[i] == '\r')) {
    ++i;
  }
  return i;
}

size_t JsonString(const std::string& s, size_t i) {
  if (i >= s.size() || s[i] != '"') return std::string::npos;
  ++i;
  while (i < s.size()) {
    if (s[i] == '\\') {
      if (i + 1 >= s.size()) return std::string::npos;
      i += 2;
    } else if (s[i] == '"') {
      return i + 1;
    } else {
      ++i;
    }
  }
  return std::string::npos;
}

size_t JsonNumber(const std::string& s, size_t i) {
  size_t start = i;
  if (i < s.size() && s[i] == '-') ++i;
  size_t digits = i;
  while (i < s.size() && isdigit(static_cast<unsigned char>(s[i]))) ++i;
  if (i == digits) return std::string::npos;  // rejects nan/inf too
  if (i < s.size() && s[i] == '.') {
    ++i;
    size_t frac = i;
    while (i < s.size() && isdigit(static_cast<unsigned char>(s[i]))) ++i;
    if (i == frac) return std::string::npos;
  }
  if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
    ++i;
    if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
    size_t exp = i;
    while (i < s.size() && isdigit(static_cast<unsigned char>(s[i]))) ++i;
    if (i == exp) return std::string::npos;
  }
  return i > start ? i : std::string::npos;
}

size_t JsonObject(const std::string& s, size_t i) {
  ++i;  // '{'
  i = JsonWs(s, i);
  if (i < s.size() && s[i] == '}') return i + 1;
  while (true) {
    i = JsonString(s, JsonWs(s, i));
    if (i == std::string::npos) return std::string::npos;
    i = JsonWs(s, i);
    if (i >= s.size() || s[i] != ':') return std::string::npos;
    i = JsonValue(s, i + 1);
    if (i == std::string::npos) return std::string::npos;
    i = JsonWs(s, i);
    if (i < s.size() && s[i] == ',') {
      ++i;
    } else if (i < s.size() && s[i] == '}') {
      return i + 1;
    } else {
      return std::string::npos;
    }
  }
}

size_t JsonArray(const std::string& s, size_t i) {
  ++i;  // '['
  i = JsonWs(s, i);
  if (i < s.size() && s[i] == ']') return i + 1;
  while (true) {
    i = JsonValue(s, i);
    if (i == std::string::npos) return std::string::npos;
    i = JsonWs(s, i);
    if (i < s.size() && s[i] == ',') {
      ++i;
    } else if (i < s.size() && s[i] == ']') {
      return i + 1;
    } else {
      return std::string::npos;
    }
  }
}

size_t JsonValue(const std::string& s, size_t i) {
  i = JsonWs(s, i);
  if (i >= s.size()) return std::string::npos;
  switch (s[i]) {
    case '{': return JsonObject(s, i);
    case '[': return JsonArray(s, i);
    case '"': return JsonString(s, i);
    case 't': return s.compare(i, 4, "true") == 0 ? i + 4 : std::string::npos;
    case 'f': return s.compare(i, 5, "false") == 0 ? i + 5 : std::string::npos;
    case 'n': return s.compare(i, 4, "null") == 0 ? i + 4 : std::string::npos;
    default:  return JsonNumber(s, i);
  }
}

::testing::AssertionResult JsonStrict(const std::string& s) {
  size_t end = JsonValue(s, 0);
  if (end == std::string::npos) {
    return ::testing::AssertionFailure() << "JSON parse error in: " << s;
  }
  end = JsonWs(s, end);
  if (end != s.size()) {
    return ::testing::AssertionFailure()
           << "trailing garbage at offset " << end << ": " << s.substr(end);
  }
  return ::testing::AssertionSuccess();
}

TEST(JsonStrictTest, RejectsMalformedDocuments) {
  EXPECT_TRUE(JsonStrict("{\"a\":[1,2.5e-3,\"x\\\"y\"],\"b\":{}}"));
  EXPECT_FALSE(JsonStrict("{\"a\":1,}"));
  EXPECT_FALSE(JsonStrict("{\"a\":nan}"));
  EXPECT_FALSE(JsonStrict("{\"a\":inf}"));
  EXPECT_FALSE(JsonStrict("{\"a\":1} trailing"));
  EXPECT_FALSE(JsonStrict("{\"a\":}"));
  EXPECT_FALSE(JsonStrict("[1,2"));
}

TEST_F(StatsTest, DumpStatuszAndTelemetryDumpsParseStrictly) {
  Build(/*same_domain=*/true);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  }

  std::string statusz = alpha_->DumpStatusz();
  EXPECT_TRUE(JsonStrict(statusz));
  EXPECT_NE(statusz.find("\"telemetry\":["), std::string::npos);
  EXPECT_NE(statusz.find("\"session\":\"" + session.session_id + "\""),
            std::string::npos);
  EXPECT_NE(statusz.find("\"calls_by_peer\":{\"beta\":"), std::string::npos);

  EXPECT_TRUE(
      JsonStrict(obs::SessionTelemetryJson(alpha_->SessionTelemetry())));
  EXPECT_TRUE(JsonStrict(
      obs::AttributeTailQuantile(env_.tracer().Events(), 0.99).ToJson()));

  // Scraper JSON exposition, with MSP probes attached and samples taken.
  env_.scraper().WatchAllRegistered();
  alpha_->RegisterTelemetryProbes(&env_.scraper());
  env_.scraper().SampleNow();
  env_.scraper().SampleNow();
  EXPECT_TRUE(JsonStrict(env_.scraper().DumpJson()));
  // The crashed server's dump parses too.
  alpha_->Crash();
  EXPECT_TRUE(JsonStrict(alpha_->DumpStatusz()));
  ASSERT_TRUE(alpha_->Start().ok());
}

// ---------------------------------------------------------------------------
// MetricsScraper: ring semantics, lifecycle, crash survival.

TEST(ScraperTest, RingWrapsOverwritingOldestAndCountsTotalPushes) {
  obs::TimeSeriesRing ring(4);
  EXPECT_EQ(ring.Latest().t_ms, 0.0);
  for (int i = 0; i < 10; ++i) {
    ring.Push(i, i * 2.0);
  }
  EXPECT_EQ(ring.total_pushed(), 10u);
  EXPECT_EQ(ring.size(), 4u);
  auto pts = ring.Samples();
  ASSERT_EQ(pts.size(), 4u);
  for (int i = 0; i < 4; ++i) {  // oldest first: 6, 7, 8, 9
    EXPECT_DOUBLE_EQ(pts[i].t_ms, 6.0 + i);
    EXPECT_DOUBLE_EQ(pts[i].value, (6.0 + i) * 2);
  }
  EXPECT_DOUBLE_EQ(ring.Latest().t_ms, 9.0);
}

TEST(ScraperTest, ProbesSampleIntoRingsAndWrapAroundIsVisible) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.GetCounter("test.counter");
  double now = 0;
  obs::MetricsScraper::Options o;
  o.ring_capacity = 8;
  obs::MetricsScraper s(&reg, [&now] { return now; }, o);
  s.WatchCounter("test.counter");
  double probe_value = 0;
  s.AddProbe("custom.probe", [&probe_value] { return probe_value; });
  // Re-registering the same names must not create duplicate series.
  s.WatchCounter("test.counter");
  s.AddProbe("custom.probe", [] { return -1.0; });
  EXPECT_EQ(s.SeriesNames().size(), 2u);

  for (int i = 0; i < 20; ++i) {
    now = i;
    probe_value = 100.0 + i;
    c->Add(3);
    s.SampleNow();
  }
  EXPECT_EQ(s.samples_taken(), 20u);
  std::vector<obs::TimeSeriesRing::Sample> pts;
  ASSERT_TRUE(s.Series("test.counter", &pts));
  ASSERT_EQ(pts.size(), 8u);  // capacity, not 20
  EXPECT_EQ(s.SeriesTotalPushed("test.counter"), 20u);  // wrap is visible
  EXPECT_DOUBLE_EQ(pts.back().value, 60.0);
  EXPECT_DOUBLE_EQ(pts.back().t_ms, 19.0);
  ASSERT_TRUE(s.Series("custom.probe", &pts));
  EXPECT_DOUBLE_EQ(pts.back().value, 119.0);  // first registration won
  EXPECT_FALSE(s.Series("no.such", &pts));
  EXPECT_EQ(s.SeriesTotalPushed("no.such"), 0u);

  std::string prom = s.DumpPrometheus();
  EXPECT_NE(prom.find("# TYPE msplog_test_counter counter"),
            std::string::npos);
  EXPECT_NE(prom.find("msplog_test_counter 60"), std::string::npos);
  EXPECT_NE(prom.find("msplog_custom_probe 119"), std::string::npos);
}

TEST(ScraperTest, StartStopAreIdempotentAndRestartable) {
  obs::MetricsRegistry reg;
  obs::MetricsScraper::Options o;
  o.period_ms = 2.0;  // dense: this test wants background samples quickly
  obs::MetricsScraper s(&reg, [] { return 0.0; }, o);
  s.AddProbe("p", [] { return 1.0; });
  EXPECT_FALSE(s.running());
  s.Start();
  s.Start();  // no-op, no second thread
  EXPECT_TRUE(s.running());
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (s.samples_taken() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(s.samples_taken(), 3u);
  s.Stop();
  s.Stop();  // no-op
  EXPECT_FALSE(s.running());
  uint64_t after_stop = s.samples_taken();
  // Rings are retained across Stop, and Start resumes cleanly.
  EXPECT_GE(s.SeriesTotalPushed("p"), after_stop);
  s.Start();
  deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (s.samples_taken() <= after_stop &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(s.samples_taken(), after_stop);
  s.Stop();
}

TEST_F(StatsTest, ScraperRingsSurviveMspCrashRecoveryBoundary) {
  Build(/*same_domain=*/true);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());

  obs::MetricsScraper& scraper = env_.scraper();
  scraper.WatchCounter("msp.requests");
  alpha_->RegisterTelemetryProbes(&scraper);
  scraper.SampleNow();
  scraper.SampleNow();
  uint64_t before = scraper.SeriesTotalPushed("msp.requests");
  ASSERT_EQ(before, 2u);
  std::vector<obs::TimeSeriesRing::Sample> pre;
  ASSERT_TRUE(scraper.Series("msp.requests", &pre));

  // Crash and recover the MSP the probes point at; the scraper (owned by
  // the environment) keeps sampling across the boundary without losing the
  // pre-crash points.
  alpha_->Crash();
  scraper.SampleNow();  // while crashed
  ASSERT_TRUE(alpha_->Start().ok());
  ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  scraper.SampleNow();

  std::vector<obs::TimeSeriesRing::Sample> post;
  ASSERT_TRUE(scraper.Series("msp.requests", &post));
  ASSERT_EQ(post.size(), pre.size() + 2);
  EXPECT_EQ(scraper.SeriesTotalPushed("msp.requests"), before + 2);
  for (size_t i = 0; i < pre.size(); ++i) {  // old points still there
    EXPECT_DOUBLE_EQ(post[i].t_ms, pre[i].t_ms);
    EXPECT_DOUBLE_EQ(post[i].value, pre[i].value);
  }
  // The MSP occupancy probes sampled through the crash too.
  EXPECT_EQ(scraper.SeriesTotalPushed("alpha.sessions"), 4u);
}

// ---------------------------------------------------------------------------
// Tail-latency blame: attribution buckets partition the slow calls' time.

TEST_F(StatsTest, TailBlameAttributesCompletedClientCalls) {
  Build(/*same_domain=*/true);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  constexpr int kN = 8;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  }
  auto events = env_.tracer().Events();
  // Threshold 0: every complete client call is attributed.
  obs::TailBlameReport all = obs::AttributeTailLatency(events, 0.0);
  EXPECT_GE(all.traces_slow, static_cast<uint64_t>(kN) - 1);
  EXPECT_GT(all.total_ms, 0.0);
  double bucket_sum = all.queue_wait_ms + all.exec_ms + all.local_flush_ms +
                      all.remote_flush_ms + all.net_resend_ms + all.other_ms;
  EXPECT_NEAR(bucket_sum, all.total_ms, all.total_ms * 1e-6);
  // The p99 cut selects a (near-)worst call, so it can only shrink the set.
  obs::TailBlameReport p99 = obs::AttributeTailQuantile(events, 0.99);
  EXPECT_LE(p99.traces_slow, all.traces_slow);
  EXPECT_GE(p99.traces_slow, 1u);
  EXPECT_GE(p99.threshold_ms, 0.0);
}

}  // namespace
}  // namespace msplog
