// Instrumentation-integrity tests: the benchmarks interpret SimStats
// counters, so the counters must track the underlying operations exactly on
// controlled workloads.
#include <gtest/gtest.h>

#include "msp/msp.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

class StatsTest : public ::testing::Test {
 protected:
  StatsTest() : env_(0.0), net_(&env_), disk_a_(&env_, "da"),
                disk_b_(&env_, "db") {}

  void TearDown() override {
    if (alpha_) alpha_->Shutdown();
    if (beta_) beta_->Shutdown();
  }

  void Build(bool same_domain) {
    directory_.Assign("alpha", "domA");
    directory_.Assign("beta", same_domain ? "domA" : "domB");
    MspConfig ca, cb;
    ca.id = "alpha";
    cb.id = "beta";
    ca.checkpoint_daemon = cb.checkpoint_daemon = false;
    ca.session_checkpoint_threshold_bytes = 0;
    cb.session_checkpoint_threshold_bytes = 0;
    ca.shared_var_checkpoint_threshold_writes = 0;
    cb.shared_var_checkpoint_threshold_writes = 0;
    alpha_ = std::make_unique<Msp>(&env_, &net_, &disk_a_, &directory_, ca);
    beta_ = std::make_unique<Msp>(&env_, &net_, &disk_b_, &directory_, cb);
    beta_->RegisterMethod("echo", [](ServiceContext*, const Bytes& a,
                                     Bytes* r) {
      *r = a;
      return Status::OK();
    });
    alpha_->RegisterSharedVariable("sv", "0");
    alpha_->RegisterMethod("workload", [](ServiceContext* ctx, const Bytes& a,
                                          Bytes* r) {
      Bytes v;
      MSPLOG_RETURN_IF_ERROR(ctx->ReadShared("sv", &v));
      MSPLOG_RETURN_IF_ERROR(ctx->WriteShared("sv", v + "x"));
      return ctx->Call("beta", "echo", a, r);
    });
    ASSERT_TRUE(beta_->Start().ok());
    ASSERT_TRUE(alpha_->Start().ok());
  }

  SimEnvironment env_;
  SimNetwork net_;
  SimDisk disk_a_, disk_b_;
  DomainDirectory directory_;
  std::unique_ptr<Msp> alpha_, beta_;
};

TEST_F(StatsTest, LogRecordCountsPerRequestIntraDomain) {
  Build(/*same_domain=*/true);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  auto before = env_.stats().Snap();
  constexpr int kN = 5;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  }
  auto after = env_.stats().Snap();
  // Per request: alpha logs RequestReceive + SharedRead + SharedWrite +
  // ReplyReceive = 4; beta logs RequestReceive = 1. Five records total.
  EXPECT_EQ(after.log_records_appended - before.log_records_appended,
            5u * kN);
  // One distributed flush per request (before reply1 to the end client).
  EXPECT_EQ(after.distributed_flushes - before.distributed_flushes,
            1u * kN);
  // Messages: request1, request2, flush-request, flush-reply, reply2,
  // reply1 = 6 per request.
  EXPECT_EQ(after.messages_sent - before.messages_sent, 6u * kN);
}

TEST_F(StatsTest, CrossDomainUsesNoDvAndMoreFlushes) {
  Build(/*same_domain=*/false);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  auto before = env_.stats().Snap();
  constexpr int kN = 5;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  }
  auto after = env_.stats().Snap();
  EXPECT_EQ(after.dv_entries_attached, before.dv_entries_attached);
  // Three distributed flushes per request (each degenerates to one local
  // leg): before request2, before reply2, before reply1.
  EXPECT_EQ(after.distributed_flushes - before.distributed_flushes,
            3u * kN);
  // Messages: request1, request2, reply2, reply1 — no flush round trips.
  EXPECT_EQ(after.messages_sent - before.messages_sent, 4u * kN);
  EXPECT_EQ(after.disk_flushes - before.disk_flushes, 3u * kN);
}

TEST_F(StatsTest, ReplayCounterMatchesRecoveredRequests) {
  Build(true);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  constexpr int kN = 7;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  }
  auto before = env_.stats().Snap();
  alpha_->Crash();
  ASSERT_TRUE(alpha_->Start().ok());
  ASSERT_TRUE(client.Call(&session, "workload", "a", &reply).ok());
  auto after = env_.stats().Snap();
  EXPECT_EQ(after.requests_replayed - before.requests_replayed,
            static_cast<uint64_t>(kN));
  EXPECT_EQ(after.sessions_recovered - before.sessions_recovered, 1u);
}

TEST_F(StatsTest, WastedBytesBoundedByHalfSectorPerFlushOnAverage) {
  Build(true);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  auto before = env_.stats().Snap();
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(client.Call(&session, "workload",
                            MakePayload(50 + i * 13, i), &reply)
                    .ok());
  }
  auto after = env_.stats().Snap();
  uint64_t flushes = after.disk_flushes - before.disk_flushes;
  uint64_t wasted = after.disk_bytes_wasted - before.disk_bytes_wasted;
  ASSERT_GT(flushes, 0u);
  EXPECT_LT(wasted, flushes * 512);  // strictly less than a sector each
}

}  // namespace
}  // namespace msplog
