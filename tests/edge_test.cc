// Edge-case tests: determinism-contract violations are detected, reordering
// networks, scanner corner cases, concurrent kvdb use, recovery of empty /
// padding-only logs.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "db/kvdb.h"
#include "log/log_file.h"
#include "log/log_scanner.h"
#include "msp/msp.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

TEST(DeterminismContractTest, NondeterministicMethodIsDetectedOnReplay) {
  SimEnvironment env(0.0);
  SimNetwork net(&env);
  SimDisk disk(&env, "d");
  DomainDirectory dir;
  dir.Assign("alpha", "dom");
  MspConfig c;
  c.id = "alpha";
  c.checkpoint_daemon = false;
  Msp msp(&env, &net, &disk, &dir, c);
  // A method that violates the contract: it consults mutable state outside
  // the ServiceContext, so re-execution takes a different path.
  static std::atomic<int> evil_counter{0};
  msp.RegisterSharedVariable("A", "a");
  msp.RegisterSharedVariable("B", "b");
  msp.RegisterMethod("evil", [](ServiceContext* ctx, const Bytes&, Bytes* r) {
    Bytes v;
    // First execution reads A; any re-execution reads B.
    MSPLOG_RETURN_IF_ERROR(
        ctx->ReadShared(evil_counter.fetch_add(1) == 0 ? "A" : "B", &v));
    *r = v;
    return Status::OK();
  });
  ASSERT_TRUE(msp.Start().ok());
  ClientEndpoint client(&env, &net, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "evil", "", &reply).ok());
  EXPECT_EQ(reply, "a");

  msp.Crash();
  ASSERT_TRUE(msp.Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // The infrastructure must DETECT the divergence rather than silently
  // feeding the wrong logged value to the wrong read.
  EXPECT_GE(env.stats().replay_misalignments.load(), 1u);
  msp.Shutdown();
}

TEST(ReorderingNetworkTest, ExactlyOnceWithJitter) {
  SimEnvironment env(0.02);
  SimNetwork net(&env);
  SimDisk disk(&env, "d");
  DomainDirectory dir;
  dir.Assign("alpha", "dom");
  MspConfig c;
  c.id = "alpha";
  c.checkpoint_daemon = false;
  Msp msp(&env, &net, &disk, &dir, c);
  msp.RegisterMethod("counter", [](ServiceContext* ctx, const Bytes&,
                                   Bytes* r) {
    Bytes cur = ctx->GetSessionVar("n");
    int n = cur.empty() ? 0 : std::stoi(cur);
    ctx->SetSessionVar("n", std::to_string(n + 1));
    *r = std::to_string(n + 1);
    return Status::OK();
  });
  ASSERT_TRUE(msp.Start().ok());
  FaultPlan jitter;
  jitter.reorder_jitter_ms = 5.0;  // messages can overtake one another
  jitter.duplicate_prob = 0.3;
  net.SetFaults("cli", "alpha", jitter);
  net.SetFaults("alpha", "cli", jitter);
  ClientOptions copts;
  copts.resend_timeout_ms = 30;
  ClientEndpoint client(&env, &net, "cli", copts);
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 1; i <= 12; ++i) {
    ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
    EXPECT_EQ(reply, std::to_string(i));
  }
  msp.Shutdown();
}

TEST(ScannerEdgeTest, StartInsidePaddingSkipsForward) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  LogFile log(&env, &disk, "log");
  LogRecord r;
  r.type = LogRecordType::kRequestReceive;
  r.session_id = "s";
  r.seqno = 1;
  r.payload = MakePayload(100);
  uint64_t l1 = log.Append(r);
  ASSERT_TRUE(log.FlushAll().ok());
  r.seqno = 2;
  uint64_t l2 = log.Append(r);
  ASSERT_TRUE(log.FlushAll().ok());
  // Start the scan in the padding between record 1's end (~l1 + 140) and
  // record 2 at the next sector boundary.
  LogScanner scanner(&disk, "log", l1 + 300, disk.FileSize("log"));
  LogRecord out;
  ASSERT_TRUE(scanner.Next(&out).ok());
  EXPECT_EQ(out.lsn, l2);
  EXPECT_EQ(out.seqno, 2u);
}

TEST(ScannerEdgeTest, EmptyAndPaddingOnlyLogs) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  {
    LogScanner scanner(&disk, "missing", 0, 0);
    LogRecord out;
    EXPECT_TRUE(scanner.Next(&out).IsNotFound());
  }
  ASSERT_TRUE(disk.WriteAt("zeros", 0, Bytes(4096, '\0')).ok());
  LogScanner scanner(&disk, "zeros", 0, 4096);
  LogRecord out;
  EXPECT_TRUE(scanner.Next(&out).IsNotFound());
}

TEST(KvDbConcurrencyTest, ParallelWritersAllLand) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  KvDb db(&env, &disk, "db");
  ASSERT_TRUE(db.Recover().ok());
  constexpr int kThreads = 4;
  constexpr int kKeys = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kKeys; ++k) {
        ASSERT_TRUE(db.TxnPut("t" + std::to_string(t) + "/k" +
                                  std::to_string(k),
                              MakePayload(100, t * 1000 + k))
                        .ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(db.KeyCount(), static_cast<size_t>(kThreads * kKeys));
  // Every write survives a reopen.
  KvDb db2(&env, &disk, "db");
  ASSERT_TRUE(db2.Recover().ok());
  EXPECT_EQ(db2.KeyCount(), static_cast<size_t>(kThreads * kKeys));
  Bytes v;
  ASSERT_TRUE(db2.TxnGet("t2/k7", &v).ok());
  EXPECT_EQ(v, MakePayload(100, 2007));
}

TEST(RestartAfterGracefulShutdownTest, FullStateRecovered) {
  SimEnvironment env(0.0);
  SimNetwork net(&env);
  SimDisk disk(&env, "d");
  DomainDirectory dir;
  dir.Assign("alpha", "dom");
  MspConfig c;
  c.id = "alpha";
  c.checkpoint_daemon = false;
  Msp msp(&env, &net, &disk, &dir, c);
  msp.RegisterSharedVariable("acc", "0");
  msp.RegisterMethod("add", [](ServiceContext* ctx, const Bytes& a, Bytes* r) {
    Bytes cur;
    MSPLOG_RETURN_IF_ERROR(ctx->ReadShared("acc", &cur));
    MSPLOG_RETURN_IF_ERROR(ctx->WriteShared(
        "acc", std::to_string(std::stol(cur) + std::stol(Bytes(a)))));
    *r = "ok";
    return Status::OK();
  });
  ASSERT_TRUE(msp.Start().ok());
  ClientEndpoint client(&env, &net, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(client.Call(&session, "add", "3", &reply).ok());
  }
  msp.Shutdown();  // graceful: flushes everything
  ASSERT_TRUE(msp.Start().ok());
  auto v = msp.PeekSharedValue("acc");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "21");
  // Graceful shutdown loses nothing, so zero requests needed live re-run:
  // replay is fed fully from the durable log.
  ASSERT_TRUE(client.Call(&session, "add", "3", &reply).ok());
  v = msp.PeekSharedValue("acc");
  EXPECT_EQ(*v, "24");
  msp.Shutdown();
}

TEST(ColdStartTest, StartCrashStartWithNoTrafficIsClean) {
  SimEnvironment env(0.0);
  SimNetwork net(&env);
  SimDisk disk(&env, "d");
  DomainDirectory dir;
  dir.Assign("alpha", "dom");
  MspConfig c;
  c.id = "alpha";
  Msp msp(&env, &net, &disk, &dir, c);
  ASSERT_TRUE(msp.Start().ok());
  msp.Crash();
  ASSERT_TRUE(msp.Start().ok());
  msp.Crash();
  ASSERT_TRUE(msp.Start().ok());
  EXPECT_EQ(msp.epoch(), 3u);
  EXPECT_EQ(msp.SessionCount(), 0u);
  msp.Shutdown();
}

}  // namespace
}  // namespace msplog
