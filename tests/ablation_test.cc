// Tests for the ablation modes (DESIGN.md §5): the §3.2 MSP-wide-DV
// strawman versus per-session DVs, and sequential versus parallel session
// recovery.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "msp/msp.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

// Two sessions at alpha: one depends on beta (via relay), one is purely
// local. Beta crashes while the dependent session's dependency is
// unflushed. With per-session DVs only the dependent session replays; with
// the MSP-wide strawman both do.
class DvGranularityTest : public ::testing::TestWithParam<bool> {
 protected:
  DvGranularityTest()
      : env_(0.0), net_(&env_), disk_a_(&env_, "da"), disk_b_(&env_, "db") {}

  void SetUp() override {
    bool per_session = GetParam();
    directory_.Assign("alpha", "dom");
    directory_.Assign("beta", "dom");
    MspConfig ca, cb;
    ca.id = "alpha";
    cb.id = "beta";
    ca.per_session_dv = per_session;
    ca.flush_timeout_ms = cb.flush_timeout_ms = 20;
    alpha_ = std::make_unique<Msp>(&env_, &net_, &disk_a_, &directory_, ca);
    beta_ = std::make_unique<Msp>(&env_, &net_, &disk_b_, &directory_, cb);
    beta_->RegisterMethod("echo",
                          [](ServiceContext*, const Bytes& a, Bytes* r) {
                            *r = "beta:" + a;
                            return Status::OK();
                          });
    alpha_->RegisterMethod(
        "relay_gated", [this](ServiceContext* ctx, const Bytes& a, Bytes* r) {
          Bytes reply;
          MSPLOG_RETURN_IF_ERROR(ctx->Call("beta", "echo", a, &reply));
          if (!ctx->in_replay()) {
            held_.store(true);
            while (gate_.load()) {
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
          }
          *r = reply;
          return Status::OK();
        });
    alpha_->RegisterMethod("local_count",
                           [](ServiceContext* ctx, const Bytes&, Bytes* r) {
                             Bytes cur = ctx->GetSessionVar("n");
                             int n = cur.empty() ? 0 : std::stoi(cur);
                             ctx->SetSessionVar("n", std::to_string(n + 1));
                             *r = std::to_string(n + 1);
                             return Status::OK();
                           });
    ASSERT_TRUE(beta_->Start().ok());
    ASSERT_TRUE(alpha_->Start().ok());
  }

  void TearDown() override {
    gate_.store(false);
    if (alpha_) alpha_->Shutdown();
    if (beta_) beta_->Shutdown();
  }

  SimEnvironment env_;
  SimNetwork net_;
  SimDisk disk_a_, disk_b_;
  DomainDirectory directory_;
  std::unique_ptr<Msp> alpha_, beta_;
  std::atomic<bool> gate_{false}, held_{false};
};

TEST_P(DvGranularityTest, IndependentSessionRollbackOnlyWithPerSessionDvs) {
  bool per_session = GetParam();
  ClientEndpoint c1(&env_, &net_, "dep");
  ClientEndpoint c2(&env_, &net_, "indep");
  auto s2 = c2.StartSession("alpha");
  Bytes reply;
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(c2.Call(&s2, "local_count", "", &reply).ok());
  }
  EXPECT_EQ(reply, "5");

  // Dependent session parks with an unflushed dependency on beta.
  gate_.store(true);
  held_.store(false);
  std::thread t([&] {
    auto s1 = c1.StartSession("alpha");
    Bytes r;
    Status st = c1.Call(&s1, "relay_gated", "x", &r);
    EXPECT_TRUE(st.ok()) << st.ToString();
  });
  while (!held_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  uint64_t replayed_before = env_.stats().requests_replayed.load();
  beta_->Crash();
  ASSERT_TRUE(beta_->Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  gate_.store(false);
  t.join();

  // The independent session keeps working and its state is intact in both
  // modes — correctness is never at stake, only wasted work.
  ASSERT_TRUE(c2.Call(&s2, "local_count", "", &reply).ok());
  EXPECT_EQ(reply, "6");

  uint64_t replayed = env_.stats().requests_replayed.load() - replayed_before;
  if (per_session) {
    // Only the dependent session's single request replays.
    EXPECT_LE(replayed, 2u);
  } else {
    // §3.2: "If only one DV is maintained ... all its sessions will roll
    // back, possibly unnecessarily" — the independent session's 5 requests
    // replay too.
    EXPECT_GE(replayed, 5u);
  }
}

INSTANTIATE_TEST_SUITE_P(Granularity, DvGranularityTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "PerSessionDv" : "MspWideDv";
                         });

// ---------------------------------------------------------------------------
// Sequential vs parallel session recovery: same end state either way.
// ---------------------------------------------------------------------------

class RecoveryParallelismTest : public ::testing::TestWithParam<bool> {};

TEST_P(RecoveryParallelismTest, SameStateEitherWay) {
  SimEnvironment env(0.0);
  SimNetwork net(&env);
  SimDisk disk(&env, "d");
  DomainDirectory dir;
  dir.Assign("alpha", "dom");
  MspConfig c;
  c.id = "alpha";
  c.sequential_recovery = GetParam();
  c.thread_pool_size = 4;
  Msp msp(&env, &net, &disk, &dir, c);
  msp.RegisterMethod("counter",
                     [](ServiceContext* ctx, const Bytes&, Bytes* r) {
                       Bytes cur = ctx->GetSessionVar("n");
                       int n = cur.empty() ? 0 : std::stoi(cur);
                       ctx->SetSessionVar("n", std::to_string(n + 1));
                       *r = std::to_string(n + 1);
                       return Status::OK();
                     });
  ASSERT_TRUE(msp.Start().ok());
  constexpr int kSessions = 5;
  for (int i = 0; i < kSessions; ++i) {
    ClientEndpoint client(&env, &net, "cli" + std::to_string(i));
    auto s = client.StartSession("alpha");
    Bytes reply;
    for (int r = 0; r < 4; ++r) {
      ASSERT_TRUE(client.Call(&s, "counter", "", &reply).ok());
    }
  }
  msp.Crash();
  ASSERT_TRUE(msp.Start().ok());
  for (int i = 0; i < kSessions; ++i) {
    ClientEndpoint client(&env, &net, "cli" + std::to_string(i));
    ClientSession s;
    s.msp = "alpha";
    s.session_id = "cli" + std::to_string(i) + "/se1";
    s.next_seqno = 5;
    Bytes reply;
    ASSERT_TRUE(client.Call(&s, "counter", "", &reply).ok());
    EXPECT_EQ(reply, "5");
  }
  msp.Shutdown();
}

INSTANTIATE_TEST_SUITE_P(Modes, RecoveryParallelismTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Sequential" : "Parallel";
                         });

}  // namespace
}  // namespace msplog
