// Tests for distributed-flush coalescing (the per-peer FlushAggregator and
// the receiver-side InboundFlushCoalescer): concurrent repliers share flush
// messages; a coalesced flight that fails authoritatively orphans every
// joined waiter exactly as per-leg flushes would; a crash mid-flight leaks
// no aggregator state; and turning the knob off reproduces the one-message-
// per-leg behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "msp/msp.h"
#include "msp/service_domain.h"
#include "obs/metrics.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

// A small but nonzero time scale gives the flush round trip a real duration,
// so legs submitted by concurrently released workers actually overlap an
// in-flight request (at scale 0 the flight lands in microseconds and there
// is nothing to join).
constexpr double kTimeScale = 0.02;

class FlushCoalesceTest : public ::testing::Test {
 protected:
  FlushCoalesceTest()
      : env_(kTimeScale), net_(&env_), disk_a_(&env_, "da"),
        disk_b_(&env_, "db") {}

  void TearDown() override {
    gate_.store(1);
    if (alpha_) alpha_->Shutdown();
    if (beta_) beta_->Shutdown();
  }

  MspConfig Config(const std::string& id, bool coalesce) {
    MspConfig c;
    c.id = id;
    c.mode = RecoveryMode::kLogBased;
    c.checkpoint_daemon = false;
    c.session_checkpoint_threshold_bytes = 0;
    c.shared_var_checkpoint_threshold_writes = 0;
    // Generous: sanitizer builds run 10-20x slower and a fired timeout just
    // resends the in-flight request (legitimate, but noise in the counts).
    c.flush_timeout_ms = 500;
    c.thread_pool_size = 16;
    c.coalesce_distributed_flushes = coalesce;
    return c;
  }

  void BuildAndStart(bool coalesce) {
    net_.set_default_one_way_ms(1.0);
    directory_.Assign("alpha", "domA");
    directory_.Assign("beta", "domA");  // same domain: optimistic messages
    alpha_ = std::make_unique<Msp>(&env_, &net_, &disk_a_, &directory_,
                                   Config("alpha", coalesce));
    beta_ = std::make_unique<Msp>(&env_, &net_, &disk_b_, &directory_,
                                  Config("beta", coalesce));
    beta_->RegisterMethod("bcounter",
                          [](ServiceContext* ctx, const Bytes&, Bytes* r) {
                            Bytes cur = ctx->GetSessionVar("n");
                            int n = cur.empty() ? 0 : std::stoi(cur);
                            ctx->SetSessionVar("n", std::to_string(n + 1));
                            *r = std::to_string(n + 1);
                            return Status::OK();
                          });
    // Calls beta (so the reply's pessimistic boundary carries a flush leg to
    // beta), then parks until the test opens the gate — releasing many
    // parked sessions at once makes their flush legs concurrent. Replay
    // never parks: the gate only guards first execution.
    alpha_->RegisterMethod(
        "relay_gated", [this](ServiceContext* ctx, const Bytes&, Bytes* r) {
          MSPLOG_RETURN_IF_ERROR(ctx->Call("beta", "bcounter", "", r));
          arrivals_.fetch_add(1);
          while (!ctx->in_replay() && gate_.load() == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          return Status::OK();
        });
    ASSERT_TRUE(beta_->Start().ok());
    ASSERT_TRUE(alpha_->Start().ok());
  }

  uint64_t Ctr(const std::string& name) {
    return env_.metrics().GetCounter(name)->Value();
  }

  /// Run `clients` sessions through one synchronized round of relay_gated:
  /// all park after their beta call, then the gate releases them together.
  /// Returns each session's reply.
  std::vector<Bytes> GatedRound(std::vector<ClientEndpoint*> endpoints,
                                std::vector<ClientSession*> sessions,
                                std::vector<Status>* statuses) {
    const size_t n = endpoints.size();
    std::vector<Bytes> replies(n);
    statuses->assign(n, Status::OK());
    arrivals_.store(0);
    gate_.store(0);
    std::vector<std::thread> threads;
    for (size_t c = 0; c < n; ++c) {
      threads.emplace_back([&, c] {
        (*statuses)[c] = endpoints[c]->Call(sessions[c], "relay_gated", "",
                                            &replies[c]);
      });
    }
    while (arrivals_.load() < static_cast<int>(n)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    gate_.store(1);
    for (auto& t : threads) t.join();
    return replies;
  }

  SimEnvironment env_;
  SimNetwork net_;
  SimDisk disk_a_;
  SimDisk disk_b_;
  DomainDirectory directory_;
  std::unique_ptr<Msp> alpha_, beta_;
  std::atomic<int> gate_{0};
  std::atomic<int> arrivals_{0};
};

// Concurrently released repliers must share kFlushRequest round trips: with
// the aggregator on, the number of flush messages sent stays below the
// number of legs requested, and some legs ride a flight they didn't launch.
TEST_F(FlushCoalesceTest, ConcurrentRepliesShareFlushMessages) {
  BuildAndStart(/*coalesce=*/true);
  constexpr int kClients = 8;
  constexpr int kRounds = 3;
  std::vector<std::unique_ptr<ClientEndpoint>> eps;
  std::vector<ClientSession> sessions;
  for (int c = 0; c < kClients; ++c) {
    eps.push_back(std::make_unique<ClientEndpoint>(
        &env_, &net_, "cli" + std::to_string(c)));
    sessions.push_back(eps.back()->StartSession("alpha"));
  }
  uint64_t legs0 = Ctr("flush.legs_requested");
  uint64_t sent0 = Ctr("flush.requests_sent");
  uint64_t saved0 = Ctr("flush.messages_saved");
  for (int round = 0; round < kRounds; ++round) {
    std::vector<ClientEndpoint*> ep;
    std::vector<ClientSession*> se;
    for (int c = 0; c < kClients; ++c) {
      ep.push_back(eps[c].get());
      se.push_back(&sessions[c]);
    }
    std::vector<Status> statuses;
    std::vector<Bytes> replies = GatedRound(ep, se, &statuses);
    for (int c = 0; c < kClients; ++c) {
      ASSERT_TRUE(statuses[c].ok()) << statuses[c].ToString();
      EXPECT_EQ(replies[c], std::to_string(round + 1));
    }
  }
  uint64_t legs = Ctr("flush.legs_requested") - legs0;
  uint64_t sent = Ctr("flush.requests_sent") - sent0;
  uint64_t saved = Ctr("flush.messages_saved") - saved0;
  EXPECT_GE(legs, uint64_t(kClients * kRounds));
  // The load-bearing claim: group commit actually shared messages.
  EXPECT_GT(saved, 0u);
  EXPECT_LT(sent, legs);
}

// With coalescing off every leg pays its own message: nothing is saved and
// the wire count matches the leg count (minus watermark fast-path skips).
TEST_F(FlushCoalesceTest, CoalescingOffSendsOneMessagePerLeg) {
  BuildAndStart(/*coalesce=*/false);
  constexpr int kClients = 8;
  std::vector<std::unique_ptr<ClientEndpoint>> eps;
  std::vector<ClientSession> sessions;
  std::vector<ClientEndpoint*> ep;
  std::vector<ClientSession*> se;
  for (int c = 0; c < kClients; ++c) {
    eps.push_back(std::make_unique<ClientEndpoint>(
        &env_, &net_, "cli" + std::to_string(c)));
    sessions.push_back(eps.back()->StartSession("alpha"));
  }
  for (int c = 0; c < kClients; ++c) {
    ep.push_back(eps[c].get());
    se.push_back(&sessions[c]);
  }
  uint64_t legs0 = Ctr("flush.legs_requested");
  uint64_t sent0 = Ctr("flush.requests_sent");
  uint64_t skips0 = Ctr("flush.watermark_skips");
  std::vector<Status> statuses;
  std::vector<Bytes> replies = GatedRound(ep, se, &statuses);
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(statuses[c].ok()) << statuses[c].ToString();
    EXPECT_EQ(replies[c], "1");
  }
  EXPECT_EQ(Ctr("flush.legs_coalesced"), 0u);
  EXPECT_EQ(Ctr("flush.messages_saved"), 0u);
  // Every non-skipped leg pays its own message (timeout resends can only
  // add sends on top, so this is a lower bound).
  EXPECT_GE(Ctr("flush.requests_sent") - sent0,
            (Ctr("flush.legs_requested") - legs0) -
                (Ctr("flush.watermark_skips") - skips0));
}

// A coalesced flight that fails authoritatively must orphan EVERY waiter
// that joined it — bit-for-bit with the per-leg protocol: each of the parked
// sessions loses its unflushed dependency when beta crashes, and each must
// recover exactly-once (replayed reply still "1", never "2").
TEST_F(FlushCoalesceTest, FailedFlightOrphansAllJoinedWaiters) {
  BuildAndStart(/*coalesce=*/true);
  constexpr int kClients = 4;
  std::vector<std::unique_ptr<ClientEndpoint>> eps;
  std::vector<ClientSession> sessions;
  std::vector<Bytes> replies(kClients);
  std::vector<Status> statuses(kClients, Status::OK());
  for (int c = 0; c < kClients; ++c) {
    eps.push_back(std::make_unique<ClientEndpoint>(
        &env_, &net_, "cli" + std::to_string(c)));
    sessions.push_back(eps.back()->StartSession("alpha"));
  }
  uint64_t orphans0 = env_.stats().orphans_detected.load();
  arrivals_.store(0);
  gate_.store(0);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      statuses[c] = eps[c]->Call(&sessions[c], "relay_gated", "",
                                 &replies[c]);
    });
  }
  while (arrivals_.load() < kClients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // All sessions hold an unflushed (volatile, optimistic) dependency on
  // beta. Crash + restart: beta recovers below the legs' target, so the one
  // coalesced flight gets an authoritative failure covering every waiter.
  beta_->Crash();
  ASSERT_TRUE(beta_->Start().ok());
  gate_.store(1);
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(statuses[c].ok()) << statuses[c].ToString();
    // Exactly-once: the replayed bcounter re-executes against recovered
    // (empty) session state at beta.
    EXPECT_EQ(replies[c], "1") << "session " << c;
  }
  EXPECT_GE(env_.stats().orphans_detected.load() - orphans0,
            uint64_t(kClients));
  // Nothing left behind in the aggregator.
  EXPECT_EQ(alpha_->PendingFlushLegsForTest(), 0u);
  EXPECT_EQ(alpha_->InFlightFlushesForTest(), 0u);
}

// Crashing the sender mid-flight must fail every waiter and leave no
// aggregator state behind; after both sides restart the system serves the
// same sessions again.
TEST_F(FlushCoalesceTest, CrashMidFlightLeavesNoPendingLegs) {
  BuildAndStart(/*coalesce=*/true);
  constexpr int kClients = 4;
  std::vector<std::unique_ptr<ClientEndpoint>> eps;
  std::vector<ClientSession> sessions;
  std::vector<Bytes> replies(kClients);
  std::vector<Status> statuses(kClients, Status::OK());
  for (int c = 0; c < kClients; ++c) {
    eps.push_back(std::make_unique<ClientEndpoint>(
        &env_, &net_, "cli" + std::to_string(c)));
    sessions.push_back(eps.back()->StartSession("alpha"));
  }
  arrivals_.store(0);
  gate_.store(0);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      statuses[c] = eps[c]->Call(&sessions[c], "relay_gated", "",
                                 &replies[c]);
    });
  }
  while (arrivals_.load() < kClients) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Kill the peer silently (no restart yet): the flush flight launched at
  // gate-open gets no reply. Crash alpha while legs are pending/in flight —
  // FailAll must settle and clear everything.
  beta_->Crash();
  gate_.store(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  alpha_->Crash();
  EXPECT_EQ(alpha_->PendingFlushLegsForTest(), 0u);
  EXPECT_EQ(alpha_->InFlightFlushesForTest(), 0u);
  // Restart both; the clients' resends replay their sessions to completion
  // exactly-once.
  ASSERT_TRUE(beta_->Start().ok());
  ASSERT_TRUE(alpha_->Start().ok());
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(statuses[c].ok()) << statuses[c].ToString();
    EXPECT_EQ(replies[c], "1") << "session " << c;
  }
  EXPECT_EQ(alpha_->PendingFlushLegsForTest(), 0u);
  EXPECT_EQ(alpha_->InFlightFlushesForTest(), 0u);
}

}  // namespace
}  // namespace msplog
