// Offline log/checkpoint inspector tests (msp/log_inspect.h): a real
// workload's log image inspects cleanly — every record accounted, every
// checkpoint blob decodable, zero invariant violations — and a corrupted
// copy of the same image is detected instead of silently accepted.
#include <gtest/gtest.h>

#include <memory>

#include "msp/log_inspect.h"
#include "msp/msp.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

class InspectTest : public ::testing::Test {
 protected:
  InspectTest() : env_(0.0), net_(&env_), disk_(&env_, "d1") {}

  void TearDown() override {
    if (msp_) msp_->Shutdown();
  }

  /// One MSP with aggressive checkpointing, so the log image carries every
  /// record type the inspector knows how to validate.
  void Build() {
    directory_.Assign("m1", "dom");
    MspConfig c;
    c.id = "m1";
    c.checkpoint_daemon = false;
    c.session_checkpoint_threshold_bytes = 256;
    c.shared_var_checkpoint_threshold_writes = 4;
    msp_ = std::make_unique<Msp>(&env_, &net_, &disk_, &directory_, c);
    msp_->RegisterSharedVariable("sv", "0");
    msp_->RegisterMethod("work", [](ServiceContext* ctx, const Bytes& arg,
                                    Bytes* r) {
      Bytes v;
      MSPLOG_RETURN_IF_ERROR(ctx->ReadShared("sv", &v));
      MSPLOG_RETURN_IF_ERROR(ctx->WriteShared("sv", v + "x"));
      ctx->SetSessionVar("last", arg);
      *r = arg;
      return Status::OK();
    });
    ASSERT_TRUE(msp_->Start().ok());
  }

  /// Requests + a crash/recovery cycle, then make the whole log durable.
  void RunWorkloadWithCrash() {
    ClientEndpoint client(&env_, &net_, "cli");
    auto session = client.StartSession("m1");
    Bytes reply;
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(
          client.Call(&session, "work", std::to_string(i), &reply).ok());
    }
    msp_->Crash();
    ASSERT_TRUE(msp_->Start().ok());
    for (int i = 12; i < 15; ++i) {
      ASSERT_TRUE(
          client.Call(&session, "work", std::to_string(i), &reply).ok());
    }
    ASSERT_TRUE(msp_->log()->FlushAll().ok());
  }

  SimEnvironment env_;
  SimNetwork net_;
  SimDisk disk_;
  DomainDirectory directory_;
  std::unique_ptr<Msp> msp_;
};

TEST_F(InspectTest, CleanImagePassesEveryInvariant) {
  Build();
  RunWorkloadWithCrash();

  LogInspectOptions opts;
  opts.dump_records = true;
  opts.dump_checkpoints = true;
  LogInspectReport report;
  std::string dump;
  ASSERT_TRUE(InspectLogImage(&disk_, "m1.log", opts, &report, &dump).ok());

  EXPECT_GT(report.records, 0u);
  EXPECT_GT(report.image_bytes, 0u);
  EXPECT_GT(report.last_lsn, report.first_lsn);
  // Requests reached the log. Not all fifteen survive: session checkpoints
  // let GC reclaim the head of the log, which is exactly the behavior the
  // inspector must tolerate (reclaimed sectors read back as padding).
  EXPECT_GE(report.records_by_type["RequestReceive"], 1u);
  EXPECT_LE(report.records_by_type["RequestReceive"], 15u);
  EXPECT_GT(report.records_by_type["SharedWrite"], 0u);
  // The 256-byte threshold forced session checkpoints; recovery wrote an
  // MSP checkpoint after its analysis scan on both boots.
  EXPECT_GE(report.session_checkpoints, 1u);
  EXPECT_GE(report.msp_checkpoints, 1u);
  EXPECT_GE(report.shared_var_checkpoints, 1u);
  EXPECT_EQ(report.records_by_session.size(), 1u);
  EXPECT_FALSE(report.torn_tail);
  for (const auto& v : report.invariant_violations) {
    ADD_FAILURE() << "invariant violation: " << v;
  }

  // The per-record dump names each record, and both renderings carry the
  // headline numbers.
  EXPECT_NE(dump.find("RequestReceive"), std::string::npos);
  EXPECT_NE(dump.find("crc=ok"), std::string::npos);
  EXPECT_NE(dump.find("checkpoint"), std::string::npos);
  std::string summary = report.Summary();
  EXPECT_NE(summary.find("records: " + std::to_string(report.records)),
            std::string::npos);
  EXPECT_NE(summary.find("invariants: OK"), std::string::npos);
  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"records\":" + std::to_string(report.records)),
            std::string::npos);
  EXPECT_NE(json.find("\"invariant_violations\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"torn_tail\":false"), std::string::npos);
}

TEST_F(InspectTest, CorruptedCopyIsDetectedNotAccepted) {
  Build();
  RunWorkloadWithCrash();

  LogInspectReport clean;
  ASSERT_TRUE(
      InspectLogImage(&disk_, "m1.log", LogInspectOptions(), &clean).ok());
  ASSERT_TRUE(clean.invariant_violations.empty());

  // Copy the image and stomp its second half: the scan must stop at the
  // first corrupt frame instead of returning garbage records.
  uint64_t size = disk_.FileSize("m1.log");
  ASSERT_GT(size, 1024u);
  Bytes image;
  ASSERT_TRUE(disk_.ReadAt("m1.log", 0, size, &image).ok());
  for (size_t i = image.size() / 2; i < image.size(); ++i) {
    image[i] = static_cast<char>(image[i] ^ 0x5a);
  }
  ASSERT_TRUE(disk_.WriteAt("corrupt.log", 0, image).ok());

  LogInspectReport report;
  ASSERT_TRUE(
      InspectLogImage(&disk_, "corrupt.log", LogInspectOptions(), &report)
          .ok());
  EXPECT_TRUE(report.torn_tail);
  EXPECT_LT(report.records, clean.records);
  EXPECT_NE(report.Summary().find("torn tail"), std::string::npos);
}

TEST_F(InspectTest, StatsReconstructsPerSessionCountsFromTheImage) {
  Build();
  RunWorkloadWithCrash();

  LogInspectOptions opts;
  opts.collect_session_stats = true;
  LogInspectReport report;
  ASSERT_TRUE(InspectLogImage(&disk_, "m1.log", opts, &report).ok());

  ASSERT_EQ(report.session_stats.size(), 1u);
  const obs::SessionStatsSnapshot& ss = report.session_stats[0];
  ASSERT_EQ(report.records_by_session.count(ss.session_id), 1u);
  // The reconstruction agrees with the walk's own accounting.
  EXPECT_EQ(ss.log_records, report.records_by_session.at(ss.session_id));
  EXPECT_EQ(ss.requests, report.records_by_type["RequestReceive"]);
  EXPECT_EQ(ss.checkpoints, report.session_checkpoints);
  EXPECT_GE(ss.requests, 1u);
  EXPECT_LE(ss.requests, 15u);  // GC may have reclaimed the head
  EXPECT_GE(ss.checkpoints, 1u);
  // Byte accounting uses the framed on-log footprint, so the per-session
  // total can never exceed the image.
  EXPECT_GT(ss.log_bytes, 0u);
  EXPECT_LE(ss.log_bytes, report.image_bytes);
  EXPECT_EQ(ss.nested_calls, 0u);  // this workload makes no nested calls
  EXPECT_TRUE(ss.calls_by_peer.empty());

  // Rendered in both outputs, in the same shape live telemetry uses.
  EXPECT_NE(report.Summary().find("per-session stats:"), std::string::npos);
  EXPECT_NE(report.Summary().find(ss.session_id + ": requests="),
            std::string::npos);
  EXPECT_NE(report.ToJson().find("\"session_stats\":[{\"session\":"),
            std::string::npos);

  // Without the flag the report stays lean.
  LogInspectReport plain;
  ASSERT_TRUE(
      InspectLogImage(&disk_, "m1.log", LogInspectOptions(), &plain).ok());
  EXPECT_TRUE(plain.session_stats.empty());
  EXPECT_EQ(plain.ToJson().find("session_stats"), std::string::npos);
}

TEST_F(InspectTest, MissingImageIsAnError) {
  LogInspectReport report;
  EXPECT_TRUE(InspectLogImage(&disk_, "no-such.log", LogInspectOptions(),
                              &report)
                  .IsNotFound());
}

}  // namespace
}  // namespace msplog
