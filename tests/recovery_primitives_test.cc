// Unit tests for dependency vectors and the recovered-state table — the
// §3.1 orphan-detection machinery, including the paper's Figure 5 walk.
#include <gtest/gtest.h>

#include "recovery/dependency_vector.h"
#include "recovery/recovered_state_table.h"

namespace msplog {
namespace {

TEST(StateIdTest, Ordering) {
  EXPECT_LT((StateId{1, 100}), (StateId{1, 200}));
  EXPECT_LT((StateId{1, 999}), (StateId{2, 0}));  // epoch dominates
  EXPECT_EQ((StateId{1, 5}), (StateId{1, 5}));
  EXPECT_TRUE((StateId{1, 5}) <= (StateId{1, 5}));
}

TEST(DependencyVectorTest, MergeIsItemwiseMax) {
  DependencyVector a, b;
  a.Set("p1", {0, 10});
  a.Set("p2", {0, 20});
  b.Set("p1", {0, 11});
  b.Set("p3", {0, 30});
  a.Merge(b);
  EXPECT_EQ(a.Get("p1")->sn, 11u);
  EXPECT_EQ(a.Get("p2")->sn, 20u);
  EXPECT_EQ(a.Get("p3")->sn, 30u);
  EXPECT_EQ(a.entry_count(), 3u);
}

TEST(DependencyVectorTest, MergeRespectsEpochs) {
  DependencyVector a, b;
  a.Set("p1", {1, 999});
  b.Set("p1", {2, 5});  // newer epoch wins even with a smaller sn
  a.Merge(b);
  EXPECT_EQ(a.Get("p1")->epoch, 2u);
  EXPECT_EQ(a.Get("p1")->sn, 5u);
}

TEST(DependencyVectorTest, RaiseNeverLowers) {
  DependencyVector a;
  a.Set("p1", {0, 10});
  a.Raise("p1", {0, 5});
  EXPECT_EQ(a.Get("p1")->sn, 10u);
  a.Raise("p1", {0, 15});
  EXPECT_EQ(a.Get("p1")->sn, 15u);
}

TEST(DependencyVectorTest, ReplaceWith) {
  DependencyVector a, b;
  a.Set("p1", {0, 10});
  b.Set("p2", {0, 20});
  a.ReplaceWith(b);
  EXPECT_FALSE(a.Get("p1").has_value());
  EXPECT_EQ(a.Get("p2")->sn, 20u);
}

TEST(DependencyVectorTest, EncodeDecodeRoundTrip) {
  DependencyVector a;
  a.Set("p1", {1, 10});
  a.Set("p2", {2, 20});
  BinaryWriter w;
  a.EncodeTo(&w);
  DependencyVector b;
  BinaryReader r(w.buffer());
  ASSERT_TRUE(b.DecodeFrom(&r).ok());
  EXPECT_EQ(a, b);
}

TEST(DependencyVectorTest, Figure5Walk) {
  // Reproduce the dependency propagation of the paper's Figure 5.
  DependencyVector p1, p2, p3;
  // p1 receives input m1, logged at LSN 10.
  p1.Set("p1", {0, 10});
  // p1 sends m2 to p2; p2 logs at 20.
  p2.Merge(p1);
  p2.Set("p2", {0, 20});
  // p2 sends m3 to p3; p3 logs at 30.
  p3.Merge(p2);
  p3.Set("p3", {0, 30});
  EXPECT_EQ(p3.Get("p1")->sn, 10u);
  EXPECT_EQ(p3.Get("p2")->sn, 20u);
  EXPECT_EQ(p3.Get("p3")->sn, 30u);
  // p1 receives m4 (LSN 11) and sends m5 to p3 (logs at 31).
  DependencyVector m5;
  m5.Set("p1", {0, 11});
  p3.Merge(m5);
  p3.Set("p3", {0, 31});
  EXPECT_EQ(p3.Get("p1")->sn, 11u);
  EXPECT_EQ(p3.Get("p2")->sn, 20u);
  EXPECT_EQ(p3.Get("p3")->sn, 31u);

  // p1 crashes. If it recovers only to state 10, p3 (which depends on
  // p1:11 via m5) is an orphan while p2 (depending on p1:10) is not.
  RecoveredStateTable table;
  table.Record("p1", 0, 10);
  EXPECT_TRUE(table.IsOrphanDv(p3));
  EXPECT_FALSE(table.IsOrphanDv(p2));
  // "If p1 is not able to recover to state 10, both p2 and p3 will know
  // they are orphans" (§3.1).
  RecoveredStateTable table0;
  table0.Record("p1", 0, 9);
  EXPECT_TRUE(table0.IsOrphanDv(p3));
  EXPECT_TRUE(table0.IsOrphanDv(p2));
  // If p1 recovers to 11, nobody is an orphan.
  RecoveredStateTable table2;
  table2.Record("p1", 0, 11);
  EXPECT_FALSE(table2.IsOrphanDv(p3));
  EXPECT_FALSE(table2.IsOrphanDv(p2));
}

TEST(RecoveredStateTableTest, OrphanOnlyForMatchingEpoch) {
  RecoveredStateTable t;
  t.Record("p", 1, 100);
  EXPECT_TRUE(t.IsOrphanEntry("p", {1, 101}));
  EXPECT_FALSE(t.IsOrphanEntry("p", {1, 100}));
  EXPECT_FALSE(t.IsOrphanEntry("p", {1, 50}));
  // Different epoch: no verdict from this entry.
  EXPECT_FALSE(t.IsOrphanEntry("p", {2, 101}));
  EXPECT_FALSE(t.IsOrphanEntry("q", {1, 101}));
}

TEST(RecoveredStateTableTest, RecordKeepsMaximum) {
  RecoveredStateTable t;
  t.Record("p", 1, 100);
  t.Record("p", 1, 50);  // duplicate/stale announce
  EXPECT_EQ(*t.RecoveredSn("p", 1), 100u);
  t.Record("p", 1, 150);
  EXPECT_EQ(*t.RecoveredSn("p", 1), 150u);
}

TEST(RecoveredStateTableTest, MergeAndSerialize) {
  RecoveredStateTable a, b;
  a.Record("p", 1, 100);
  b.Record("q", 2, 200);
  a.Merge(b);
  BinaryWriter w;
  a.EncodeTo(&w);
  RecoveredStateTable c;
  BinaryReader r(w.buffer());
  ASSERT_TRUE(c.DecodeFrom(&r).ok());
  EXPECT_EQ(*c.RecoveredSn("p", 1), 100u);
  EXPECT_EQ(*c.RecoveredSn("q", 2), 200u);
}

TEST(RecoveredStateTableTest, MultipleEpochsPerPeer) {
  RecoveredStateTable t;
  t.Record("p", 1, 100);
  t.Record("p", 2, 500);
  EXPECT_TRUE(t.IsOrphanEntry("p", {1, 200}));
  EXPECT_FALSE(t.IsOrphanEntry("p", {2, 400}));
  EXPECT_TRUE(t.IsOrphanEntry("p", {2, 600}));
}

TEST(DependencyVectorTest, WireSizeGrowsWithEntries) {
  DependencyVector a;
  size_t s0 = a.WireSize();
  a.Set("msp1", {0, 1});
  size_t s1 = a.WireSize();
  a.Set("msp2", {0, 1});
  size_t s2 = a.WireSize();
  EXPECT_LT(s0, s1);
  EXPECT_LT(s1, s2);
}

}  // namespace
}  // namespace msplog
