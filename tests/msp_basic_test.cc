// Tests for normal execution of a recoverable MSP (§2, §3): sessions,
// session variables, shared-variable value logging, duplicate detection,
// inter-MSP calls, locally optimistic vs pessimistic flushing.
#include <gtest/gtest.h>

#include <thread>

#include "msp/msp.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

// One MSP ("alpha") optionally joined by a second ("beta"), with a client.
class MspBasicTest : public ::testing::Test {
 protected:
  MspBasicTest() : env_(0.0), net_(&env_), disk_a_(&env_, "da"),
                   disk_b_(&env_, "db") {}

  void TearDown() override {
    if (alpha_) alpha_->Shutdown();
    if (beta_) beta_->Shutdown();
  }

  MspConfig BaseConfig(const std::string& id) {
    MspConfig c;
    c.id = id;
    c.mode = RecoveryMode::kLogBased;
    c.checkpoint_daemon = false;
    c.session_checkpoint_threshold_bytes = 0;  // explicit control in tests
    c.shared_var_checkpoint_threshold_writes = 0;
    return c;
  }

  void StartAlpha(MspConfig c) {
    directory_.Assign(c.id, "domA");
    alpha_ = std::make_unique<Msp>(&env_, &net_, &disk_a_, &directory_, c);
    RegisterEcho(alpha_.get());
    ASSERT_TRUE(alpha_->Start().ok());
  }

  void StartBeta(MspConfig c, const std::string& domain) {
    directory_.Assign(c.id, domain);
    beta_ = std::make_unique<Msp>(&env_, &net_, &disk_b_, &directory_, c);
    RegisterEcho(beta_.get());
    ASSERT_TRUE(beta_->Start().ok());
  }

  static void RegisterEcho(Msp* msp) {
    msp->RegisterMethod("echo", [](ServiceContext* ctx, const Bytes& arg,
                                   Bytes* result) {
      (void)ctx;
      *result = "echo:" + arg;
      return Status::OK();
    });
    msp->RegisterMethod(
        "set_var", [](ServiceContext* ctx, const Bytes& arg, Bytes* result) {
          ctx->SetSessionVar("v", arg);
          *result = "ok";
          return Status::OK();
        });
    msp->RegisterMethod(
        "get_var", [](ServiceContext* ctx, const Bytes& arg, Bytes* result) {
          (void)arg;
          *result = ctx->GetSessionVar("v");
          return Status::OK();
        });
    msp->RegisterMethod(
        "counter", [](ServiceContext* ctx, const Bytes& arg, Bytes* result) {
          (void)arg;
          Bytes cur = ctx->GetSessionVar("n");
          int n = cur.empty() ? 0 : std::stoi(cur);
          ctx->SetSessionVar("n", std::to_string(n + 1));
          *result = std::to_string(n + 1);
          return Status::OK();
        });
    msp->RegisterMethod(
        "shared_rmw", [](ServiceContext* ctx, const Bytes& arg, Bytes* result) {
          Bytes cur;
          MSPLOG_RETURN_IF_ERROR(ctx->ReadShared("counter", &cur));
          int n = cur.empty() ? 0 : std::stoi(cur);
          (void)arg;
          MSPLOG_RETURN_IF_ERROR(
              ctx->WriteShared("counter", std::to_string(n + 1)));
          *result = std::to_string(n + 1);
          return Status::OK();
        });
    msp->RegisterMethod(
        "rmw_named",
        [](ServiceContext* ctx, const Bytes& name, Bytes* result) {
          Bytes cur;
          MSPLOG_RETURN_IF_ERROR(ctx->ReadShared(Bytes(name), &cur));
          int n = cur.empty() ? 0 : std::stoi(cur);
          MSPLOG_RETURN_IF_ERROR(
              ctx->WriteShared(Bytes(name), std::to_string(n + 1)));
          *result = std::to_string(n + 1);
          return Status::OK();
        });
    msp->RegisterMethod(
        "relay", [msp](ServiceContext* ctx, const Bytes& arg, Bytes* result) {
          // arg = "<target>|<method>|<payload>"
          auto p1 = arg.find('|');
          auto p2 = arg.find('|', p1 + 1);
          Bytes reply;
          MSPLOG_RETURN_IF_ERROR(ctx->Call(arg.substr(0, p1),
                                           arg.substr(p1 + 1, p2 - p1 - 1),
                                           arg.substr(p2 + 1), &reply));
          *result = "relayed:" + reply;
          return Status::OK();
        });
    msp->RegisterMethod("fail", [](ServiceContext*, const Bytes&, Bytes*) {
      return Status::InvalidArgument("deliberate failure");
    });
  }

  SimEnvironment env_;
  SimNetwork net_;
  SimDisk disk_a_;
  SimDisk disk_b_;
  DomainDirectory directory_;
  std::unique_ptr<Msp> alpha_;
  std::unique_ptr<Msp> beta_;
};

TEST_F(MspBasicTest, EchoRequest) {
  StartAlpha(BaseConfig("alpha"));
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "echo", "hello", &reply).ok());
  EXPECT_EQ(reply, "echo:hello");
}

TEST_F(MspBasicTest, SessionVariablesPersistAcrossRequests) {
  StartAlpha(BaseConfig("alpha"));
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "set_var", "payload42", &reply).ok());
  ASSERT_TRUE(client.Call(&session, "get_var", "", &reply).ok());
  EXPECT_EQ(reply, "payload42");
}

TEST_F(MspBasicTest, SessionsAreIsolated) {
  StartAlpha(BaseConfig("alpha"));
  ClientEndpoint client(&env_, &net_, "cli");
  auto s1 = client.StartSession("alpha");
  auto s2 = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&s1, "set_var", "one", &reply).ok());
  ASSERT_TRUE(client.Call(&s2, "set_var", "two", &reply).ok());
  ASSERT_TRUE(client.Call(&s1, "get_var", "", &reply).ok());
  EXPECT_EQ(reply, "one");
  ASSERT_TRUE(client.Call(&s2, "get_var", "", &reply).ok());
  EXPECT_EQ(reply, "two");
}

TEST_F(MspBasicTest, SharedVariableVisibleAcrossSessions) {
  StartAlpha(BaseConfig("alpha"));
  ClientEndpoint client(&env_, &net_, "cli");
  auto s1 = client.StartSession("alpha");
  auto s2 = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&s1, "shared_rmw", "", &reply).ok());
  EXPECT_EQ(reply, "1");
  ASSERT_TRUE(client.Call(&s2, "shared_rmw", "", &reply).ok());
  EXPECT_EQ(reply, "2");
}

TEST_F(MspBasicTest, ConcurrentSharedAccessPerVariableIsSafe) {
  // §2.2: read/write locks are held only for the duration of EACH access —
  // a read-modify-write across two accesses is deliberately NOT atomic
  // (that is application-level concern, as in the paper's model). Each
  // client therefore counts in its own shared variable, where single-access
  // atomicity guarantees exact results under full concurrency.
  auto cfg = BaseConfig("alpha");
  cfg.thread_pool_size = 8;
  StartAlpha(cfg);
  constexpr int kClients = 6;
  constexpr int kPerClient = 20;
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      ClientEndpoint client(&env_, &net_, "cli" + std::to_string(i));
      auto s = client.StartSession("alpha");
      Bytes reply;
      for (int r = 0; r < kPerClient; ++r) {
        // relay-free RMW on a per-client variable via session-scoped method
        ASSERT_TRUE(client
                        .Call(&s, "rmw_named", "counter" + std::to_string(i),
                              &reply)
                        .ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    auto v = alpha_->PeekSharedValue("counter" + std::to_string(i));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, std::to_string(kPerClient));
  }
}

TEST_F(MspBasicTest, DuplicateRequestGetsBufferedReplyNotReexecution) {
  StartAlpha(BaseConfig("alpha"));
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  EXPECT_EQ(reply, "1");
  // Replay the same request seqno manually: the MSP must resend the
  // buffered reply ("1") rather than increment again.
  session.next_seqno = 1;
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  EXPECT_EQ(reply, "1");
  auto v = alpha_->PeekSessionVar(session.session_id, "n");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "1");
}

TEST_F(MspBasicTest, ExactlyOnceUnderLossyDuplicatingNetwork) {
  StartAlpha(BaseConfig("alpha"));
  FaultPlan faults;
  faults.drop_prob = 0.3;
  faults.duplicate_prob = 0.3;
  net_.SetFaults("cli", "alpha", faults);
  net_.SetFaults("alpha", "cli", faults);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 1; i <= 30; ++i) {
    ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
    EXPECT_EQ(reply, std::to_string(i));  // each request counted exactly once
  }
}

TEST_F(MspBasicTest, AppErrorPropagatesButSessionSurvives) {
  StartAlpha(BaseConfig("alpha"));
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  EXPECT_FALSE(client.Call(&session, "fail", "", &reply).ok());
  ASSERT_TRUE(client.Call(&session, "echo", "still-alive", &reply).ok());
  EXPECT_EQ(reply, "echo:still-alive");
}

TEST_F(MspBasicTest, UnknownMethodIsAppError) {
  StartAlpha(BaseConfig("alpha"));
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  EXPECT_FALSE(client.Call(&session, "no_such_method", "", &reply).ok());
}

TEST_F(MspBasicTest, CrossMspCallSameDomain) {
  StartAlpha(BaseConfig("alpha"));
  StartBeta(BaseConfig("beta"), "domA");
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "relay", "beta|echo|ping", &reply).ok());
  EXPECT_EQ(reply, "relayed:echo:ping");
}

TEST_F(MspBasicTest, CrossMspCallCrossDomain) {
  StartAlpha(BaseConfig("alpha"));
  StartBeta(BaseConfig("beta"), "domB");
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "relay", "beta|echo|ping", &reply).ok());
  EXPECT_EQ(reply, "relayed:echo:ping");
}

TEST_F(MspBasicTest, OptimisticIntraDomainUsesFewerFlushesThanPessimistic) {
  // Same topology twice; count physical log flushes per request.
  StartAlpha(BaseConfig("alpha"));
  StartBeta(BaseConfig("beta"), "domA");  // same domain: optimistic
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "relay", "beta|echo|x", &reply).ok());
  auto s0 = env_.stats().Snap();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.Call(&session, "relay", "beta|echo|x", &reply).ok());
  }
  auto s1 = env_.stats().Snap();
  uint64_t optimistic_flushes = s1.disk_flushes - s0.disk_flushes;

  alpha_->Shutdown();
  beta_->Shutdown();
  disk_a_.Format();
  disk_b_.Format();
  directory_.Assign("beta", "domB");  // split domains: pessimistic
  ASSERT_TRUE(beta_->Start().ok());
  ASSERT_TRUE(alpha_->Start().ok());
  auto session2 = client.StartSession("alpha");
  ASSERT_TRUE(client.Call(&session2, "relay", "beta|echo|x", &reply).ok());
  auto s2 = env_.stats().Snap();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.Call(&session2, "relay", "beta|echo|x", &reply).ok());
  }
  auto s3 = env_.stats().Snap();
  uint64_t pessimistic_flushes = s3.disk_flushes - s2.disk_flushes;

  // §5.2: pessimistic needs 3 flushes per request; locally optimistic needs
  // one distributed flush (two local flushes in parallel).
  EXPECT_LT(optimistic_flushes, pessimistic_flushes);
}

TEST_F(MspBasicTest, IntraDomainMessagesCarryDvs) {
  StartAlpha(BaseConfig("alpha"));
  StartBeta(BaseConfig("beta"), "domA");
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  auto before = env_.stats().Snap();
  ASSERT_TRUE(client.Call(&session, "relay", "beta|echo|x", &reply).ok());
  auto after = env_.stats().Snap();
  EXPECT_GT(after.dv_entries_attached, before.dv_entries_attached);
}

TEST_F(MspBasicTest, CrossDomainMessagesCarryNoDvs) {
  StartAlpha(BaseConfig("alpha"));
  StartBeta(BaseConfig("beta"), "domB");
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  auto before = env_.stats().Snap();
  ASSERT_TRUE(client.Call(&session, "relay", "beta|echo|x", &reply).ok());
  auto after = env_.stats().Snap();
  EXPECT_EQ(after.dv_entries_attached, before.dv_entries_attached);
}

TEST_F(MspBasicTest, ReplyToEndClientIsFlushedFirst) {
  StartAlpha(BaseConfig("alpha"));
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "echo", "x", &reply).ok());
  // Everything the session logged must be durable: end clients are outside
  // every service domain, so the reply leg is pessimistic (§3.1).
  EXPECT_GE(alpha_->log()->durable_lsn(), 1u);
  auto positions = alpha_->PeekPositionStream(session.session_id);
  ASSERT_FALSE(positions.empty());
  EXPECT_LT(positions.back(), alpha_->log()->durable_lsn());
}

TEST_F(MspBasicTest, EndSessionWritesEndRecordAndStopsService) {
  StartAlpha(BaseConfig("alpha"));
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "echo", "x", &reply).ok());
  ASSERT_TRUE(client.Call(&session, "__end_session", "", &reply).ok());
  // Further requests on the ended session get a definitive error (not
  // silence): the client must not retry forever.
  ClientEndpoint client2(&env_, &net_, "cli2");
  ClientSession dead = session;
  Status st = client2.Call(&dead, "echo", "x", &reply);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(st.IsTimedOut());
  EXPECT_EQ(reply, "session ended");
}

TEST_F(MspBasicTest, EndSessionCascadesToOutgoingSessions) {
  StartAlpha(BaseConfig("alpha"));
  StartBeta(BaseConfig("beta"), "domA");
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "relay", "beta|echo|x", &reply).ok());
  const std::string out_id = "alpha/" + session.session_id + ">beta";
  EXPECT_TRUE(beta_->HasSession(out_id));
  ASSERT_TRUE(client.Call(&session, "__end_session", "", &reply).ok());
  // The outgoing session at beta ended with it (§2.1: sessions are started
  // and ended by client requests — alpha is beta's client here).
  auto seq = beta_->PeekNextExpectedSeqno(out_id);
  // Either fully removed by a later recovery or marked ended; a fresh call
  // on it must fail definitively.
  ClientEndpoint probe(&env_, &net_, "probe");
  ClientSession dead;
  dead.msp = "beta";
  dead.session_id = out_id;
  dead.next_seqno = seq.ok() ? *seq : 99;
  Status st = probe.Call(&dead, "echo", "x", &reply);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(st.IsTimedOut());
}

TEST_F(MspBasicTest, SessionCheckpointTruncatesPositionStream) {
  auto cfg = BaseConfig("alpha");
  StartAlpha(cfg);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  }
  EXPECT_GE(alpha_->PeekPositionStream(session.session_id).size(), 5u);
  ASSERT_TRUE(alpha_->ForceCheckpoint(CheckpointTarget::Session(session.session_id)).ok());
  EXPECT_TRUE(alpha_->PeekPositionStream(session.session_id).empty());
  // Service continues normally after the checkpoint.
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  EXPECT_EQ(reply, "6");
}

TEST_F(MspBasicTest, MspCheckpointUpdatesAnchor) {
  StartAlpha(BaseConfig("alpha"));
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "echo", "x", &reply).ok());
  ASSERT_TRUE(alpha_->ForceCheckpoint(CheckpointTarget::Msp()).ok());
  LogAnchor anchor(&disk_a_, "alpha.anchor");
  AnchorData ad;
  ASSERT_TRUE(anchor.Read(&ad).ok());
  EXPECT_GT(ad.msp_checkpoint_lsn, 0u);
  EXPECT_EQ(ad.epoch, 1u);
}

}  // namespace
}  // namespace msplog
