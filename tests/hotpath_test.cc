// Stress tests for the request→log hot path rebuilt in the async-pipeline
// overhaul: MPSC intake (multi-producer FIFO, spill correctness, pool
// liveness), concurrent arena appends racing flushes / reclamation /
// archiving, and FlushUpTo watermark wakeups under Crash/Stop/Abort.
#include <gtest/gtest.h>

#include <atomic>
#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "common/mpsc_queue.h"
#include "common/task.h"
#include "log/log_file.h"
#include "log/log_record.h"
#include "log/log_scanner.h"
#include "msp/thread_pool.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"

namespace msplog {
namespace {

LogRecord MakeRecord(const std::string& session, uint64_t seqno,
                     size_t payload) {
  LogRecord r;
  r.type = LogRecordType::kRequestReceive;
  r.session_id = session;
  r.seqno = seqno;
  r.target = "m";
  r.payload = MakePayload(payload, static_cast<char>('a' + seqno % 23));
  return r;
}

// ---------------------------------------------------------------------------
// MPSC intake
// ---------------------------------------------------------------------------

// Multiple producers, one consumer, a ring small enough that the overflow
// valve engages: nothing is lost, and each producer's items arrive in the
// order it pushed them.
TEST(MpscQueueTest, MultiProducerFifoPerProducerNoLoss) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 20000;
  MpscQueue<std::pair<int, int>> q(/*capacity=*/64, "test.q");
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.Push({p, i});
      }
    });
  }
  std::vector<int> last_seen(kProducers, -1);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    std::pair<int, int> item;
    if (!q.TryPop(&item)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_LT(item.first, kProducers);
    // FIFO per producer: strictly increasing sequence from each.
    ASSERT_GT(item.second, last_seen[item.first])
        << "producer " << item.first << " reordered";
    last_seen[item.first] = item.second;
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(q.empty());
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(last_seen[p], kPerProducer - 1);
  }
}

// Liveness: tasks submitted from many threads to an idle-then-busy pool all
// run exactly once — the eventcount sleep protocol loses no wakeups.
TEST(ThreadPoolHotPathTest, ConcurrentSubmittersAllTasksRunExactlyOnce) {
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 5000;
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    std::vector<std::thread> submitters;
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&pool, &ran] {
        for (int i = 0; i < kPerSubmitter; ++i) {
          ASSERT_TRUE(pool.Submit([&ran] {
            ran.fetch_add(1, std::memory_order_relaxed);
          }));
          if (i % 1024 == 0) std::this_thread::yield();  // let the pool idle
        }
      });
    }
    for (auto& t : submitters) t.join();
    pool.Shutdown();  // drains the queue before joining workers
  }
  EXPECT_EQ(ran.load(), kSubmitters * kPerSubmitter);
}

// Abort must terminate promptly, run no further tasks, and leave Submit
// returning false — even with producers still pushing.
TEST(ThreadPoolHotPathTest, AbortIsLiveAgainstConcurrentSubmitters) {
  std::atomic<bool> stop_submitting{false};
  std::atomic<int> ran{0};
  ThreadPool pool(2);
  std::thread submitter([&] {
    while (!stop_submitting.load(std::memory_order_acquire)) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  while (ran.load(std::memory_order_relaxed) == 0) std::this_thread::yield();
  pool.Abort();  // must not hang despite the concurrent submitter
  stop_submitting.store(true, std::memory_order_release);
  submitter.join();
  EXPECT_FALSE(pool.Submit([] {}));
}

// ---------------------------------------------------------------------------
// Arena append vs concurrent flush / reclaim / archive
// ---------------------------------------------------------------------------

// Hammer Append from several threads while another thread flushes, reclaims,
// and archives the durable prefix. Afterwards: LSNs are disjoint and
// monotonic per appender, and every record above the reclaimed watermark
// reads back intact (arena, disk, or mid-write — wherever it lives).
TEST(LogHotPathTest, ConcurrentAppendsSurviveFlushReclaimArchiveRaces) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  disk.set_charge_latency(false);
  LogFileOptions opt;
  opt.max_buffer_bytes = 16 << 10;  // small arenas: seals + backpressure
  LogFile log(&env, &disk, "log", opt);

  constexpr int kAppenders = 4;
  constexpr int kPerAppender = 1500;
  struct Appended {
    uint64_t lsn;
    size_t framed;
    int tid;
    uint64_t seqno;
  };
  std::vector<std::vector<Appended>> appended(kAppenders);
  std::atomic<bool> appenders_done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kAppenders; ++t) {
    threads.emplace_back([&, t] {
      appended[t].reserve(kPerAppender);
      for (int i = 0; i < kPerAppender; ++i) {
        LogRecord r = MakeRecord("se" + std::to_string(t), i, 64 + i % 200);
        size_t framed = 0;
        uint64_t lsn = log.Append(r, &framed);
        appended[t].push_back({lsn, framed, t, static_cast<uint64_t>(i)});
      }
    });
  }
  std::thread churn([&] {
    int round = 0;
    while (!appenders_done.load(std::memory_order_acquire)) {
      ASSERT_TRUE(log.FlushAll().ok());
      const uint64_t durable = log.durable_lsn();
      // Alternate archive and plain reclaim over a slice of the durable
      // prefix, always keeping the most recent half intact.
      const uint64_t cut = durable / 2;
      if (round++ % 2 == 0) {
        log.ArchiveUpTo(cut);
      } else {
        log.ReclaimUpTo(cut);
      }
      std::this_thread::yield();
    }
  });
  for (auto& t : threads) t.join();
  appenders_done.store(true, std::memory_order_release);
  churn.join();
  ASSERT_TRUE(log.FlushAll().ok());

  // LSN ranges are pairwise disjoint and per-appender monotonic.
  std::vector<Appended> all;
  for (const auto& v : appended) {
    for (size_t i = 1; i < v.size(); ++i) {
      ASSERT_LT(v[i - 1].lsn, v[i].lsn);
    }
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end(),
            [](const Appended& a, const Appended& b) { return a.lsn < b.lsn; });
  for (size_t i = 1; i < all.size(); ++i) {
    ASSERT_LE(all[i - 1].lsn + all[i - 1].framed, all[i].lsn);
  }
  // Everything above the reclaimed watermark reads back intact.
  const uint64_t reclaimed = log.reclaimed_lsn();
  size_t verified = 0;
  for (const auto& a : all) {
    if (a.lsn < reclaimed) continue;
    LogRecord out;
    ASSERT_TRUE(log.ReadRecordAt(a.lsn, &out).ok()) << "lsn " << a.lsn;
    EXPECT_EQ(out.session_id, "se" + std::to_string(a.tid));
    EXPECT_EQ(out.seqno, a.seqno);
    ++verified;
  }
  EXPECT_GT(verified, 0u);
  // The archived prefix was preserved before punching.
  // Archive segments are disjoint, sorted, and confined to the archived
  // prefix (interleaved plain reclaims legally punch holes they skip).
  auto segments = LogFile::ListArchiveSegments(&disk, "log");
  const uint64_t archived_lsn = log.Extents().archived_lsn;
  uint64_t prev_end = 0;
  for (const auto& s : segments) {
    EXPECT_GE(s.base, prev_end);
    prev_end = s.base + s.bytes;
    EXPECT_LE(prev_end, archived_lsn);
  }
}

// ---------------------------------------------------------------------------
// FlushUpTo watermark wakeups under Crash / Stop
// ---------------------------------------------------------------------------

// Park many FlushUpTo waiters, then crash the log: every waiter must return
// promptly with OK (its write completed first) or Crashed — never hang.
TEST(LogHotPathTest, FlushWaitersResolveOnCrash) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  LogFile log(&env, &disk, "log");
  constexpr int kWaiters = 6;
  std::vector<uint64_t> lsns;
  for (int i = 0; i < kWaiters; ++i) {
    lsns.push_back(log.Append(MakeRecord("se", i, 256)));
  }
  std::atomic<int> resolved{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&, i] {
      Status st = log.FlushUpTo(lsns[i]);
      EXPECT_TRUE(st.ok() || st.IsCrashed()) << st.ToString();
      resolved.fetch_add(1, std::memory_order_relaxed);
    });
  }
  log.Crash();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(resolved.load(), kWaiters);
  // Post-crash flushes fail immediately instead of parking forever.
  uint64_t lsn = log.Append(MakeRecord("se", 99, 64));
  EXPECT_TRUE(log.FlushUpTo(lsn).IsCrashed());
}

// Stop (orderly writer shutdown) fails parked waiters with IOError.
TEST(LogHotPathTest, FlushWaitersResolveOnStop) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  LogFile log(&env, &disk, "log");
  constexpr int kWaiters = 4;
  std::vector<uint64_t> lsns;
  for (int i = 0; i < kWaiters; ++i) {
    lsns.push_back(log.Append(MakeRecord("se", i, 256)));
  }
  std::atomic<int> resolved{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&, i] {
      Status st = log.FlushUpTo(lsns[i]);
      EXPECT_TRUE(st.ok() || st.code() == StatusCode::kIOError)
          << st.ToString();
      resolved.fetch_add(1, std::memory_order_relaxed);
    });
  }
  log.Stop();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(resolved.load(), kWaiters);
}

// Batch-flush mode rides the same completion path: concurrent waiters on
// one batched write all resolve, and the data really is durable after.
TEST(LogHotPathTest, BatchFlushResolvesConcurrentWaiters) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  LogFileOptions opt;
  opt.batch_flush = true;
  opt.batch_timeout_ms = 1.0;
  LogFile log(&env, &disk, "log", opt);
  constexpr int kWaiters = 5;
  std::vector<std::thread> waiters;
  std::atomic<int> ok_count{0};
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&, i] {
      uint64_t lsn = log.Append(MakeRecord("se" + std::to_string(i), i, 128));
      ASSERT_TRUE(log.FlushUpTo(lsn).ok());
      EXPECT_GT(log.durable_lsn(), lsn);
      ok_count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& t : waiters) t.join();
  EXPECT_EQ(ok_count.load(), kWaiters);
}

}  // namespace
}  // namespace msplog
