// Tests for MSP crash recovery (§4.3): analysis scan, session replay,
// shared-state roll forward, checkpoint-bounded scans, exactly-once
// semantics across crashes, parallel session recovery.
#include <gtest/gtest.h>

#include <thread>

#include "msp/msp.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

class MspRecoveryTest : public ::testing::Test {
 protected:
  MspRecoveryTest() : env_(0.0), net_(&env_), disk_(&env_, "d") {}

  void TearDown() override {
    if (msp_) msp_->Shutdown();
  }

  MspConfig BaseConfig() {
    MspConfig c;
    c.id = "alpha";
    c.mode = RecoveryMode::kLogBased;
    c.checkpoint_daemon = false;
    c.session_checkpoint_threshold_bytes = 0;
    c.shared_var_checkpoint_threshold_writes = 0;
    return c;
  }

  void StartMsp(MspConfig c) {
    directory_.Assign(c.id, "domA");
    msp_ = std::make_unique<Msp>(&env_, &net_, &disk_, &directory_, c);
    Register(msp_.get());
    ASSERT_TRUE(msp_->Start().ok());
  }

  static void Register(Msp* msp) {
    msp->RegisterSharedVariable("acc", "0");
    msp->RegisterMethod(
        "counter", [](ServiceContext* ctx, const Bytes&, Bytes* result) {
          Bytes cur = ctx->GetSessionVar("n");
          int n = cur.empty() ? 0 : std::stoi(cur);
          ctx->SetSessionVar("n", std::to_string(n + 1));
          *result = std::to_string(n + 1);
          return Status::OK();
        });
    msp->RegisterMethod(
        "add_shared", [](ServiceContext* ctx, const Bytes& arg, Bytes* result) {
          Bytes cur;
          MSPLOG_RETURN_IF_ERROR(ctx->ReadShared("acc", &cur));
          long total = std::stol(cur) + std::stol(Bytes(arg));
          MSPLOG_RETURN_IF_ERROR(
              ctx->WriteShared("acc", std::to_string(total)));
          *result = std::to_string(total);
          return Status::OK();
        });
    msp->RegisterMethod(
        "mix", [](ServiceContext* ctx, const Bytes& arg, Bytes* result) {
          // Session state += shared state read; shared state updated.
          Bytes shared;
          MSPLOG_RETURN_IF_ERROR(ctx->ReadShared("acc", &shared));
          Bytes mine = ctx->GetSessionVar("sum");
          long sum = (mine.empty() ? 0 : std::stol(mine)) + std::stol(shared);
          ctx->SetSessionVar("sum", std::to_string(sum));
          MSPLOG_RETURN_IF_ERROR(ctx->WriteShared(
              "acc", std::to_string(std::stol(shared) + std::stol(Bytes(arg)))));
          *result = std::to_string(sum);
          return Status::OK();
        });
  }

  void CrashAndRestart() {
    msp_->Crash();
    ASSERT_TRUE(msp_->Start().ok());
  }

  SimEnvironment env_;
  SimNetwork net_;
  SimDisk disk_;
  DomainDirectory directory_;
  std::unique_ptr<Msp> msp_;
};

TEST_F(MspRecoveryTest, SessionStateSurvivesCrash) {
  StartMsp(BaseConfig());
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  }
  CrashAndRestart();
  // The session's private state was never logged — redo recovery replayed
  // the requests (§3.2). The next request continues the same count.
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  EXPECT_EQ(reply, "6");
  EXPECT_GE(env_.stats().requests_replayed.load(), 5u);
}

TEST_F(MspRecoveryTest, EpochIncrementsPerStart) {
  // Every start — even the first — runs crash recovery and opens a new
  // epoch, because a restarted process cannot prove its previous
  // incarnation never existed.
  StartMsp(BaseConfig());
  EXPECT_EQ(msp_->epoch(), 1u);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  CrashAndRestart();
  EXPECT_EQ(msp_->epoch(), 2u);
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  CrashAndRestart();
  EXPECT_EQ(msp_->epoch(), 3u);
}

TEST_F(MspRecoveryTest, SharedStateRollsForwardFromLog) {
  StartMsp(BaseConfig());
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "add_shared", "10", &reply).ok());
  ASSERT_TRUE(client.Call(&session, "add_shared", "32", &reply).ok());
  EXPECT_EQ(reply, "42");
  CrashAndRestart();
  auto v = msp_->PeekSharedValue("acc");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "42");
}

TEST_F(MspRecoveryTest, ExactlyOnceAcrossCrash) {
  StartMsp(BaseConfig());
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "add_shared", "5", &reply).ok());
  CrashAndRestart();
  // Resend of the SAME request after the crash must not re-execute.
  session.next_seqno = 1;
  ASSERT_TRUE(client.Call(&session, "add_shared", "5", &reply).ok());
  EXPECT_EQ(reply, "5");
  auto v = msp_->PeekSharedValue("acc");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "5");  // not 10
}

TEST_F(MspRecoveryTest, UnflushedTailIsLostButClientRetrySucceeds) {
  StartMsp(BaseConfig());
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  EXPECT_EQ(reply, "1");
  CrashAndRestart();
  // Request 2 again: whether or not its receive record was flushed, the
  // client's retry must end with exactly one execution of request 2.
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  EXPECT_EQ(reply, "2");
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  EXPECT_EQ(reply, "3");
}

TEST_F(MspRecoveryTest, MultipleSessionsRecoverInParallel) {
  auto cfg = BaseConfig();
  cfg.thread_pool_size = 4;
  StartMsp(cfg);
  constexpr int kSessions = 6;
  std::vector<std::thread> threads;
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      ClientEndpoint client(&env_, &net_, "cli" + std::to_string(i));
      auto s = client.StartSession("alpha");
      Bytes reply;
      for (int r = 0; r < 5; ++r) {
        ASSERT_TRUE(client.Call(&s, "counter", "", &reply).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  uint64_t recovered_before = env_.stats().sessions_recovered.load();
  CrashAndRestart();
  // Wait for all session recovery tasks to finish.
  for (int spin = 0; spin < 500; ++spin) {
    if (env_.stats().sessions_recovered.load() >= recovered_before + kSessions)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(env_.stats().sessions_recovered.load(),
            recovered_before + kSessions);
  // Each session continues with its own count.
  for (int i = 0; i < kSessions; ++i) {
    ClientEndpoint client(&env_, &net_, "cli" + std::to_string(i));
    // Session ids are deterministic per client name + counter; recreate the
    // handle with the right seqno.
    ClientSession s;
    s.msp = "alpha";
    s.session_id = "cli" + std::to_string(i) + "/se1";
    s.next_seqno = 6;
    Bytes reply;
    ASSERT_TRUE(client.Call(&s, "counter", "", &reply).ok());
    EXPECT_EQ(reply, "6");
  }
}

TEST_F(MspRecoveryTest, CheckpointBoundsReplayWork) {
  StartMsp(BaseConfig());
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  }
  ASSERT_TRUE(msp_->ForceCheckpoint(CheckpointTarget::Session(session.session_id)).ok());
  ASSERT_TRUE(msp_->ForceCheckpoint(CheckpointTarget::Msp()).ok());
  uint64_t replayed_before = env_.stats().requests_replayed.load();
  CrashAndRestart();
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  EXPECT_EQ(reply, "11");
  // Nothing (or almost nothing) to replay: the checkpoint captured it all.
  EXPECT_EQ(env_.stats().requests_replayed.load(), replayed_before);
}

TEST_F(MspRecoveryTest, RecoveryWithCheckpointPlusTail) {
  StartMsp(BaseConfig());
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  }
  ASSERT_TRUE(msp_->ForceCheckpoint(CheckpointTarget::Session(session.session_id)).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  }
  uint64_t replayed_before = env_.stats().requests_replayed.load();
  CrashAndRestart();
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  EXPECT_EQ(reply, "11");
  // Only the post-checkpoint tail (≤4 requests) needed replay.
  EXPECT_LE(env_.stats().requests_replayed.load() - replayed_before, 4u);
}

TEST_F(MspRecoveryTest, SharedVarCheckpointBreaksUndoChain) {
  auto cfg = BaseConfig();
  StartMsp(cfg);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.Call(&session, "add_shared", "1", &reply).ok());
  }
  ASSERT_TRUE(msp_->ForceCheckpoint(CheckpointTarget::SharedVar("acc")).ok());
  ASSERT_TRUE(client.Call(&session, "add_shared", "1", &reply).ok());
  EXPECT_EQ(reply, "6");
  CrashAndRestart();
  auto v = msp_->PeekSharedValue("acc");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "6");
}

TEST_F(MspRecoveryTest, RepeatedCrashesConverge) {
  StartMsp(BaseConfig());
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int round = 1; round <= 5; ++round) {
    ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
    EXPECT_EQ(reply, std::to_string(round));
    CrashAndRestart();
  }
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  EXPECT_EQ(reply, "6");
  EXPECT_EQ(msp_->epoch(), 6u);
}

TEST_F(MspRecoveryTest, FreshStartHasNothingToRecover) {
  StartMsp(BaseConfig());
  EXPECT_EQ(msp_->SessionCount(), 0u);
  EXPECT_EQ(msp_->epoch(), 1u);
  EXPECT_EQ(env_.stats().requests_replayed.load(), 0u);
}

TEST_F(MspRecoveryTest, EndedSessionsAreNotResurrected) {
  StartMsp(BaseConfig());
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  ASSERT_TRUE(client.Call(&session, "__end_session", "", &reply).ok());
  CrashAndRestart();
  EXPECT_FALSE(msp_->HasSession(session.session_id));
}

TEST_F(MspRecoveryTest, RequestsDuringRecoveryEventuallyServed) {
  // Crash with a populated log; issue a request immediately after Start
  // returns (sessions may still be replaying).
  StartMsp(BaseConfig());
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  }
  msp_->Crash();
  ASSERT_TRUE(msp_->Start().ok());
  ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
  EXPECT_EQ(reply, "11");
}

}  // namespace
}  // namespace msplog
