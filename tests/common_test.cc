// Unit tests for src/common: Status, serialization, CRC32C, RNG, payloads.
#include <gtest/gtest.h>

#include <cstring>

#include "common/bytes.h"
#include "common/crc32c.h"
#include "common/rng.h"
#include "common/serde.h"
#include "common/status.h"

namespace msplog {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Corruption("bad frame");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_EQ(s.ToString(), "Corruption: bad frame");
}

TEST(StatusTest, AllPredicatesMatchCodes) {
  EXPECT_TRUE(Status::NotFound("").IsNotFound());
  EXPECT_TRUE(Status::TimedOut("").IsTimedOut());
  EXPECT_TRUE(Status::Busy("").IsBusy());
  EXPECT_TRUE(Status::Orphan("").IsOrphan());
  EXPECT_TRUE(Status::Crashed("").IsCrashed());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
}

TEST(SerdeTest, RoundTripPrimitives) {
  BinaryWriter w;
  w.PutU8(7);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutVarint(0);
  w.PutVarint(127);
  w.PutVarint(128);
  w.PutVarint(UINT64_MAX);
  w.PutBytes("hello");
  w.PutBytes("");

  BinaryReader r(w.buffer());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64, v;
  Bytes b;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  EXPECT_EQ(u8, 7);
  ASSERT_TRUE(r.GetU32(&u32).ok());
  EXPECT_EQ(u32, 0xDEADBEEFu);
  ASSERT_TRUE(r.GetU64(&u64).ok());
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  ASSERT_TRUE(r.GetVarint(&v).ok());
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(r.GetVarint(&v).ok());
  EXPECT_EQ(v, 127u);
  ASSERT_TRUE(r.GetVarint(&v).ok());
  EXPECT_EQ(v, 128u);
  ASSERT_TRUE(r.GetVarint(&v).ok());
  EXPECT_EQ(v, UINT64_MAX);
  ASSERT_TRUE(r.GetBytes(&b).ok());
  EXPECT_EQ(b, "hello");
  ASSERT_TRUE(r.GetBytes(&b).ok());
  EXPECT_EQ(b, "");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, TruncationIsCorruption) {
  BinaryWriter w;
  w.PutU64(1);
  BinaryReader r(ByteView(w.buffer()).substr(0, 3));
  uint64_t v;
  EXPECT_TRUE(r.GetU64(&v).IsCorruption());
}

TEST(SerdeTest, TruncatedBytesIsCorruption) {
  BinaryWriter w;
  w.PutBytes("hello world");
  BinaryReader r(ByteView(w.buffer()).substr(0, 4));
  Bytes b;
  EXPECT_TRUE(r.GetBytes(&b).IsCorruption());
}

TEST(SerdeTest, OverlongVarintIsCorruption) {
  Bytes evil(11, '\xFF');
  BinaryReader r(evil);
  uint64_t v;
  EXPECT_TRUE(r.GetVarint(&v).IsCorruption());
}

TEST(Crc32cTest, KnownVector) {
  // CRC32C("123456789") = 0xE3069283 (well-known check value).
  EXPECT_EQ(crc32c::Compute("123456789", 9), 0xE3069283u);
}

TEST(Crc32cTest, MaskRoundTrip) {
  uint32_t crc = crc32c::Compute("some data", 9);
  EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
  EXPECT_NE(crc32c::Mask(crc), crc);
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  Bytes data = MakePayload(1000, 5);
  uint32_t crc = crc32c::Compute(data);
  data[500] ^= 0x01;
  EXPECT_NE(crc32c::Compute(data), crc);
}

TEST(Crc32cTest, Rfc3720Vectors) {
  // RFC 3720 §B.4 test vectors for CRC32C.
  unsigned char buf[32];
  std::memset(buf, 0, sizeof(buf));
  EXPECT_EQ(crc32c::Compute(buf, sizeof(buf)), 0x8A9136AAu);
  std::memset(buf, 0xFF, sizeof(buf));
  EXPECT_EQ(crc32c::Compute(buf, sizeof(buf)), 0x62A8AB43u);
  for (int i = 0; i < 32; ++i) buf[i] = static_cast<unsigned char>(i);
  EXPECT_EQ(crc32c::Compute(buf, sizeof(buf)), 0x46DD794Eu);
  for (int i = 0; i < 32; ++i) buf[i] = static_cast<unsigned char>(31 - i);
  EXPECT_EQ(crc32c::Compute(buf, sizeof(buf)), 0x113FDB5Cu);
  // An iSCSI SCSI Read (10) command PDU.
  unsigned char pdu[48] = {
      0x01, 0xC0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x00,
      0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x18, 0x28, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00};
  EXPECT_EQ(crc32c::Compute(pdu, sizeof(pdu)), 0xD9963A56u);
}

TEST(Crc32cTest, SlicedMatchesBytewiseReference) {
  // The `init` parameter continues a previous Compute, so feeding the data
  // one byte at a time exercises exactly the byte-at-a-time tail path —
  // a reference implementation for the slice-by-8 fast path, across sizes
  // that cover the 8-byte alignment remainders.
  for (size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u, 4096u}) {
    Bytes data = MakePayload(len, static_cast<int>(len) + 11);
    uint32_t ref = 0;
    for (size_t i = 0; i < data.size(); ++i) {
      ref = crc32c::Compute(data.data() + i, 1, ref);
    }
    EXPECT_EQ(crc32c::Compute(data), ref) << "len=" << len;
  }
}

TEST(Crc32cTest, IncrementalMatchesWhole) {
  Bytes data = MakePayload(777, 3);
  uint32_t whole = crc32c::Compute(data);
  for (size_t split : {1u, 8u, 100u, 776u}) {
    uint32_t crc = crc32c::Compute(data.data(), split);
    crc = crc32c::Compute(data.data() + split, data.size() - split, crc);
    EXPECT_EQ(crc, whole) << "split=" << split;
  }
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, ChanceBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(r.Chance(0.0));
    EXPECT_TRUE(r.Chance(1.0));
  }
}

TEST(RngTest, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(10), 10u);
  }
  EXPECT_EQ(r.Uniform(0), 0u);
}

TEST(PayloadTest, SizeAndDeterminism) {
  EXPECT_EQ(MakePayload(100, 1).size(), 100u);
  EXPECT_EQ(MakePayload(100, 1), MakePayload(100, 1));
  EXPECT_NE(MakePayload(100, 1), MakePayload(100, 2));
}

}  // namespace
}  // namespace msplog
