// Unit tests for the simulation substrate: SimEnvironment time scaling,
// SimDisk durability + latency model, SimNetwork delivery and fault
// injection.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "common/bytes.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

TEST(SimEnvTest, ZeroScaleSleepsAreInstant) {
  SimEnvironment env(0.0);
  uint64_t t0 = env.ElapsedRealNs();
  env.SleepModelMs(1000.0);
  EXPECT_LT(env.ElapsedRealNs() - t0, 5'000'000u);  // < 5 ms real
}

TEST(SimEnvTest, ScaledSleepIsAccurate) {
  SimEnvironment env(0.1);
  uint64_t t0 = env.ElapsedRealNs();
  env.SleepModelMs(10.0);  // 1 ms real
  uint64_t dt = env.ElapsedRealNs() - t0;
  EXPECT_GE(dt, 900'000u);
  EXPECT_LT(dt, 3'000'000u);
}

TEST(SimEnvTest, ModelClockDividesByScale) {
  SimEnvironment env(0.1);
  env.SleepModelMs(20.0);
  double now = env.NowModelMs();
  EXPECT_GE(now, 18.0);
  EXPECT_LT(now, 40.0);
}

TEST(DiskGeometryTest, PaperFlushFormula) {
  DiskGeometry g;  // paper defaults: 7200 RPM, 63 sectors/track, tts 1.2 ms
  // TF2 = 60000/7200/2 + 2/63*60000/7200 + 2/63*1.2 ≈ 4.47 ms (§5.2).
  double tf2 = g.WriteLatencyMs(2);
  EXPECT_NEAR(tf2, 60000.0 / 7200 / 2 + 2.0 / 63 * 60000.0 / 7200 +
                       2.0 / 63 * 1.2,
              1e-9);
  EXPECT_NEAR(tf2, 4.47, 0.05);
  // Monotone in sector count.
  EXPECT_LT(g.WriteLatencyMs(1), g.WriteLatencyMs(128));
}

TEST(SimDiskTest, WriteReadRoundTrip) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  ASSERT_TRUE(disk.WriteAt("f", 0, "hello world").ok());
  Bytes out;
  ASSERT_TRUE(disk.ReadAt("f", 0, 11, &out).ok());
  EXPECT_EQ(out, "hello world");
  ASSERT_TRUE(disk.ReadAt("f", 6, 100, &out).ok());
  EXPECT_EQ(out, "world");  // short read at EOF
}

TEST(SimDiskTest, SparseWriteZeroFills) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  ASSERT_TRUE(disk.WriteAt("f", 10, "x").ok());
  EXPECT_EQ(disk.FileSize("f"), 11u);
  Bytes out;
  ASSERT_TRUE(disk.ReadAt("f", 0, 11, &out).ok());
  EXPECT_EQ(out.substr(0, 10), Bytes(10, '\0'));
}

TEST(SimDiskTest, AppendGrowsFile) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  ASSERT_TRUE(disk.Append("f", "abc").ok());
  ASSERT_TRUE(disk.Append("f", "def").ok());
  EXPECT_EQ(disk.FileSize("f"), 6u);
  Bytes out;
  ASSERT_TRUE(disk.ReadAt("f", 0, 6, &out).ok());
  EXPECT_EQ(out, "abcdef");
}

TEST(SimDiskTest, ReadMissingFileIsNotFound) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  Bytes out;
  EXPECT_TRUE(disk.ReadAt("nope", 0, 1, &out).IsNotFound());
}

TEST(SimDiskTest, TruncateAndDelete) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  ASSERT_TRUE(disk.Append("f", "abcdef").ok());
  ASSERT_TRUE(disk.Truncate("f", 3).ok());
  EXPECT_EQ(disk.FileSize("f"), 3u);
  ASSERT_TRUE(disk.Delete("f").ok());
  EXPECT_FALSE(disk.Exists("f"));
  EXPECT_TRUE(disk.Delete("f").IsNotFound());
}

TEST(SimDiskTest, StatsCountSectors) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  auto before = env.stats().Snap();
  disk.WriteAt("f", 0, Bytes(1000, 'x'));  // 2 sectors
  auto after = env.stats().Snap();
  EXPECT_EQ(after.disk_flushes - before.disk_flushes, 1u);
  EXPECT_EQ(after.disk_sectors_written - before.disk_sectors_written, 2u);
}

TEST(SimDiskTest, LatencyChargedWhenScaled) {
  SimEnvironment env(0.05);
  DiskGeometry g;
  g.os_interference_prob = 0.0;  // deterministic
  SimDisk disk(&env, "d", g);
  uint64_t t0 = env.ElapsedRealNs();
  disk.WriteAt("f", 0, Bytes(512, 'x'));  // TF1 ≈ 4.3 ms model ≈ 215 µs real
  uint64_t dt = env.ElapsedRealNs() - t0;
  EXPECT_GE(dt, 150'000u);
}

TEST(SimNetworkTest, DeliversImmediatelyAtZeroScale) {
  SimEnvironment env(0.0);
  SimNetwork net(&env);
  auto mb = net.Register("b");
  net.Send("a", "b", "payload");
  Packet p;
  ASSERT_TRUE(mb->PopWithTimeout(&p, 1000));
  EXPECT_EQ(p.from, "a");
  EXPECT_EQ(p.wire, "payload");
  net.Shutdown();
}

TEST(SimNetworkTest, UnregisteredDestinationDropsPacket) {
  SimEnvironment env(0.0);
  SimNetwork net(&env);
  auto mb = net.Register("b");
  net.Unregister("b");
  net.Send("a", "b", "x");
  Packet p;
  EXPECT_FALSE(mb->PopWithTimeout(&p, 50));
  net.Shutdown();
}

TEST(SimNetworkTest, DropFaultLosesMessages) {
  SimEnvironment env(0.0);
  SimNetwork net(&env);
  auto mb = net.Register("b");
  FaultPlan plan;
  plan.drop_prob = 1.0;
  net.SetFaults("a", "b", plan);
  for (int i = 0; i < 10; ++i) net.Send("a", "b", "x");
  Packet p;
  EXPECT_FALSE(mb->PopWithTimeout(&p, 50));
  EXPECT_EQ(env.stats().messages_dropped.load(), 10u);
  net.Shutdown();
}

TEST(SimNetworkTest, DuplicateFaultDoublesDelivery) {
  SimEnvironment env(0.0);
  SimNetwork net(&env);
  auto mb = net.Register("b");
  FaultPlan plan;
  plan.duplicate_prob = 1.0;
  net.SetFaults("a", "b", plan);
  net.Send("a", "b", "x");
  Packet p;
  ASSERT_TRUE(mb->PopWithTimeout(&p, 1000));
  ASSERT_TRUE(mb->PopWithTimeout(&p, 1000));
  net.Shutdown();
}

TEST(SimNetworkTest, ScaledLatencyDelaysDelivery) {
  SimEnvironment env(0.1);
  SimNetwork net(&env);
  net.set_default_one_way_ms(10.0);  // 1 ms real
  auto mb = net.Register("b");
  net.Send("a", "b", "x");
  Packet p;
  EXPECT_FALSE(mb->PopWithTimeout(&p, 0));  // not yet
  ASSERT_TRUE(mb->PopWithTimeout(&p, 1000));
  net.Shutdown();
}

TEST(SimNetworkTest, BandwidthTermScalesWithSize) {
  SimEnvironment env(0.0);
  SimNetwork net(&env);
  net.set_default_one_way_ms(1.0);
  net.set_bandwidth_mbps(100.0);
  // 8 KB at 100 Mbps ≈ 0.655 ms extra.
  double small = net.OneWayMs("a", "b", 100);
  double large = net.OneWayMs("a", "b", 8192);
  EXPECT_NEAR(large - small, (8192.0 - 100.0) * 8.0 / (100.0 * 1000.0), 1e-9);
  net.Shutdown();
}

TEST(SimNetworkTest, FifoWithoutJitter) {
  SimEnvironment env(0.0);
  SimNetwork net(&env);
  auto mb = net.Register("b");
  for (int i = 0; i < 100; ++i) {
    net.Send("a", "b", Bytes(1, static_cast<char>(i)));
  }
  for (int i = 0; i < 100; ++i) {
    Packet p;
    ASSERT_TRUE(mb->PopWithTimeout(&p, 1000));
    EXPECT_EQ(p.wire[0], static_cast<char>(i));
  }
  net.Shutdown();
}

TEST(MailboxTest, CloseWakesBlockedPop) {
  Mailbox mb;
  std::atomic<bool> returned{false};
  std::thread t([&] {
    Packet p;
    EXPECT_FALSE(mb.Pop(&p));
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  mb.Close();
  t.join();
  EXPECT_TRUE(returned);
}

}  // namespace
}  // namespace msplog
