// Property-based tests: parameterized sweeps over fault rates, crash
// intervals and checkpoint thresholds asserting the paper's core invariants
// (exactly-once execution, no surviving orphans, DV algebra, codec fuzz).
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "harness/paper_workload.h"
#include "log/log_record.h"
#include "log/log_scanner.h"
#include "msp/msp.h"
#include "msp/service_domain.h"
#include "recovery/dependency_vector.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

// ---------------------------------------------------------------------------
// Exactly-once under network faults (sweep drop × duplicate probabilities).
// ---------------------------------------------------------------------------

class FaultSweepTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FaultSweepTest, CounterIsExactlyOnce) {
  auto [drop, dup] = GetParam();
  SimEnvironment env(0.0);
  SimNetwork net(&env);
  SimDisk disk(&env, "d");
  DomainDirectory dir;
  dir.Assign("alpha", "domA");
  MspConfig c;
  c.id = "alpha";
  c.checkpoint_daemon = false;
  Msp msp(&env, &net, &disk, &dir, c);
  msp.RegisterMethod("counter",
                     [](ServiceContext* ctx, const Bytes&, Bytes* result) {
                       Bytes cur = ctx->GetSessionVar("n");
                       int n = cur.empty() ? 0 : std::stoi(cur);
                       ctx->SetSessionVar("n", std::to_string(n + 1));
                       *result = std::to_string(n + 1);
                       return Status::OK();
                     });
  ASSERT_TRUE(msp.Start().ok());
  FaultPlan faults;
  faults.drop_prob = drop;
  faults.duplicate_prob = dup;
  net.SetFaults("cli", "alpha", faults);
  net.SetFaults("alpha", "cli", faults);
  ClientEndpoint client(&env, &net, "cli");
  auto session = client.StartSession("alpha");
  Bytes reply;
  for (int i = 1; i <= 15; ++i) {
    ASSERT_TRUE(client.Call(&session, "counter", "", &reply).ok());
    EXPECT_EQ(reply, std::to_string(i));
  }
  msp.Shutdown();
}

INSTANTIATE_TEST_SUITE_P(
    DropDupGrid, FaultSweepTest,
    ::testing::Combine(::testing::Values(0.0, 0.2, 0.45),
                       ::testing::Values(0.0, 0.2, 0.45)));

// ---------------------------------------------------------------------------
// Crash-interval sweep on the paper workload: every request executes exactly
// once no matter how often the callee dies.
// ---------------------------------------------------------------------------

class CrashIntervalTest : public ::testing::TestWithParam<int> {};

TEST_P(CrashIntervalTest, SharedStateReflectsEveryRequestOnce) {
  int crash_every = GetParam();
  PaperWorkloadOptions opts;
  opts.config = PaperConfig::kLoOptimistic;
  opts.time_scale = 0.0;
  opts.checkpoint_daemon = false;
  opts.client_max_sends = 2000;  // storms must not exhaust the retry budget
  PaperWorkload w(opts);
  ASSERT_TRUE(w.Start().ok());
  constexpr int kRequests = 24;
  RunResult r = w.RunSingleClient(kRequests, crash_every);
  EXPECT_EQ(r.requests, static_cast<uint64_t>(kRequests));
  auto v = w.msp1()->PeekSharedValue("SV0");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, MakePayload(128, kRequests * 2 + 1));
  auto v2 = w.msp2()->PeekSharedValue("SV2");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, MakePayload(128, kRequests * 3 + 1));
  w.Shutdown();
}

INSTANTIATE_TEST_SUITE_P(Intervals, CrashIntervalTest,
                         ::testing::Values(4, 6, 9, 13));

// ---------------------------------------------------------------------------
// Checkpoint-threshold sweep: recovery lands on the same state whatever the
// checkpoint cadence.
// ---------------------------------------------------------------------------

class CheckpointSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CheckpointSweepTest, RecoveredStateIndependentOfThreshold) {
  uint64_t threshold = GetParam();
  PaperWorkloadOptions opts;
  opts.config = PaperConfig::kLoOptimistic;
  opts.time_scale = 0.0;
  opts.checkpoint_daemon = threshold != 0;
  opts.session_checkpoint_threshold_bytes = threshold;
  opts.msp_checkpoint_log_bytes = threshold ? threshold : 0;
  PaperWorkload w(opts);
  ASSERT_TRUE(w.Start().ok());
  auto client = w.MakeClient("cks");
  auto session = client->StartSession("msp1");
  Bytes reply;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client->Call(&session, "ServiceMethod1", "x", &reply).ok());
  }
  Bytes sv0 = *w.msp1()->PeekSharedValue("SV0");
  w.msp1()->Crash();
  ASSERT_TRUE(w.msp1()->Start().ok());
  auto v = w.msp1()->PeekSharedValue("SV0");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, sv0);
  ASSERT_TRUE(client->Call(&session, "ServiceMethod1", "x", &reply).ok());
  w.Shutdown();
}

INSTANTIATE_TEST_SUITE_P(Thresholds, CheckpointSweepTest,
                         ::testing::Values(0, 2048, 8192, 65536));

// ---------------------------------------------------------------------------
// Dependency-vector algebra (merge is a join: commutative, associative,
// idempotent, monotone).
// ---------------------------------------------------------------------------

DependencyVector RandomDv(Rng* rng, int max_entries) {
  DependencyVector dv;
  int n = static_cast<int>(rng->Uniform(max_entries + 1));
  for (int i = 0; i < n; ++i) {
    dv.Set("p" + std::to_string(rng->Uniform(5)),
           {static_cast<uint32_t>(rng->Uniform(3)), rng->Uniform(1000)});
  }
  return dv;
}

class DvAlgebraTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DvAlgebraTest, MergeIsJoinSemilattice) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    DependencyVector a = RandomDv(&rng, 4);
    DependencyVector b = RandomDv(&rng, 4);
    DependencyVector c = RandomDv(&rng, 4);

    // Commutative: a ∨ b == b ∨ a.
    DependencyVector ab = a, ba = b;
    ab.Merge(b);
    ba.Merge(a);
    EXPECT_EQ(ab, ba);

    // Associative: (a ∨ b) ∨ c == a ∨ (b ∨ c).
    DependencyVector abc1 = ab;
    abc1.Merge(c);
    DependencyVector bc = b;
    bc.Merge(c);
    DependencyVector abc2 = a;
    abc2.Merge(bc);
    EXPECT_EQ(abc1, abc2);

    // Idempotent: a ∨ a == a.
    DependencyVector aa = a;
    aa.Merge(a);
    EXPECT_EQ(aa, a);

    // Monotone: every entry of a and of b is ≤ the merged entry.
    for (const auto& [msp, id] : a.entries()) {
      auto merged = ab.Get(msp);
      ASSERT_TRUE(merged.has_value());
      EXPECT_TRUE(id <= *merged);
    }
  }
}

TEST_P(DvAlgebraTest, SerializationRoundTripsRandomDvs) {
  Rng rng(GetParam() * 7919);
  for (int round = 0; round < 100; ++round) {
    DependencyVector a = RandomDv(&rng, 6);
    BinaryWriter w;
    a.EncodeTo(&w);
    DependencyVector b;
    BinaryReader r(w.buffer());
    ASSERT_TRUE(b.DecodeFrom(&r).ok());
    EXPECT_EQ(a, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DvAlgebraTest, ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Log record codec fuzz: random well-formed records round-trip; random bytes
// never crash the decoder.
// ---------------------------------------------------------------------------

class CodecFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecFuzzTest, RandomRecordsRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    LogRecord r;
    r.type = static_cast<LogRecordType>(1 + rng.Uniform(11));
    r.session_id = Bytes(rng.Uniform(20), 's');
    r.var_id = Bytes(rng.Uniform(10), 'v');
    r.seqno = rng.Uniform(1 << 20);
    r.target = Bytes(rng.Uniform(12), 't');
    r.payload = MakePayload(rng.Uniform(4096), rng.Next());
    r.has_dv = rng.Chance(0.5);
    if (r.has_dv) {
      int n = static_cast<int>(rng.Uniform(4));
      for (int k = 0; k < n; ++k) {
        r.dv.Set("m" + std::to_string(k),
                 {static_cast<uint32_t>(rng.Uniform(4)), rng.Uniform(1 << 30)});
      }
    }
    r.prev_lsn = rng.Uniform(1 << 30);
    r.peer = Bytes(rng.Uniform(8), 'p');
    r.peer_epoch = static_cast<uint32_t>(rng.Uniform(16));
    r.peer_recovered_sn = rng.Uniform(1 << 30);
    r.aux = static_cast<uint8_t>(rng.Uniform(3));

    LogRecord out;
    ASSERT_TRUE(LogRecord::Decode(r.Encode(), &out).ok());
    EXPECT_EQ(out.type, r.type);
    EXPECT_EQ(out.session_id, r.session_id);
    EXPECT_EQ(out.var_id, r.var_id);
    EXPECT_EQ(out.seqno, r.seqno);
    EXPECT_EQ(out.target, r.target);
    EXPECT_EQ(out.payload, r.payload);
    EXPECT_EQ(out.has_dv, r.has_dv);
    EXPECT_EQ(out.dv, r.dv);
    EXPECT_EQ(out.prev_lsn, r.prev_lsn);
    EXPECT_EQ(out.peer, r.peer);
    EXPECT_EQ(out.peer_epoch, r.peer_epoch);
    EXPECT_EQ(out.peer_recovered_sn, r.peer_recovered_sn);
    EXPECT_EQ(out.aux, r.aux);
  }
}

TEST_P(CodecFuzzTest, RandomBytesNeverCrashDecoder) {
  Rng rng(GetParam() * 31337);
  for (int i = 0; i < 500; ++i) {
    Bytes junk = MakePayload(rng.Uniform(200), rng.Next());
    LogRecord r;
    (void)LogRecord::Decode(junk, &r);  // must not crash / UB
    Message m;
    (void)Message::Decode(junk, &m);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzTest, ::testing::Values(11, 22, 33));

// ---------------------------------------------------------------------------
// Position-stream skip ranges: the Fig. 11 disjoint and embedded (orphan,
// EOS) combinations remove exactly the right positions.
// ---------------------------------------------------------------------------

TEST(PositionSkipTest, EmbeddedRangesNest) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  PositionStream ps(&disk, "pos", 100);
  for (uint64_t i = 1; i <= 10; ++i) ps.Add(i * 10);
  // Inner skip [40,60] then outer skip [20,90]: the embedded case.
  ps.RemoveRange(40, 60);
  ps.RemoveRange(20, 90);
  auto all = ps.All();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], 10u);
  EXPECT_EQ(all[1], 100u);
}

TEST(PositionSkipTest, DisjointRanges) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  PositionStream ps(&disk, "pos", 100);
  for (uint64_t i = 1; i <= 10; ++i) ps.Add(i * 10);
  ps.RemoveRange(20, 30);
  ps.RemoveRange(70, 80);
  auto all = ps.All();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0], 10u);
  EXPECT_EQ(all[1], 40u);
  EXPECT_EQ(all.back(), 100u);
}

// ---------------------------------------------------------------------------
// Log write/scan property: whatever mix of record sizes and flush points,
// scanning returns exactly the appended sequence.
// ---------------------------------------------------------------------------

class LogScanPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LogScanPropertyTest, ScanEqualsAppendHistory) {
  Rng rng(GetParam());
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  LogFile log(&env, &disk, "log");
  std::vector<std::pair<uint64_t, uint64_t>> appended;  // (lsn, seqno)
  uint64_t seq = 0;
  for (int i = 0; i < 200; ++i) {
    LogRecord r;
    r.type = LogRecordType::kRequestReceive;
    r.session_id = "s";
    r.seqno = ++seq;
    r.payload = MakePayload(rng.Uniform(2000), rng.Next());
    appended.push_back({log.Append(r), seq});
    if (rng.Chance(0.15)) {
      ASSERT_TRUE(log.FlushAll().ok());
    }
  }
  ASSERT_TRUE(log.FlushAll().ok());
  LogScanner scanner(&disk, "log", 0, disk.FileSize("log"));
  size_t n = 0;
  LogRecord r;
  while (scanner.Next(&r).ok()) {
    ASSERT_LT(n, appended.size());
    EXPECT_EQ(r.lsn, appended[n].first);
    EXPECT_EQ(r.seqno, appended[n].second);
    ++n;
  }
  EXPECT_EQ(n, appended.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogScanPropertyTest,
                         ::testing::Values(5, 6, 7, 8));

}  // namespace
}  // namespace msplog
