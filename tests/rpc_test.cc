// Unit tests for the rpc layer: message codec and the end-client contract
// (resend until reply, duplicate-reply discard, Busy backoff).
#include <gtest/gtest.h>

#include <thread>

#include "rpc/client_endpoint.h"
#include "rpc/message.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

TEST(MessageTest, EncodeDecodeRoundTrip) {
  Message m;
  m.type = MessageType::kRequest;
  m.sender = "client1";
  m.session_id = "client1/se1";
  m.seqno = 17;
  m.method = "ServiceMethod1";
  m.payload = MakePayload(100, 3);
  m.has_dv = true;
  m.dv.Set("msp1", {1, 500});
  m.reply_code = ReplyCode::kBusy;
  m.flush_id = 9;
  m.epoch = 2;
  m.flush_sn = 1234;
  m.flush_ok = true;
  m.rec_epoch = 1;
  m.rec_sn = 888;
  m.trace_id = 0xabcdef0123456789ull;
  m.parent_span_id = 42;

  Message out;
  ASSERT_TRUE(Message::Decode(m.Encode(), &out).ok());
  EXPECT_EQ(out.type, MessageType::kRequest);
  EXPECT_EQ(out.sender, "client1");
  EXPECT_EQ(out.session_id, "client1/se1");
  EXPECT_EQ(out.seqno, 17u);
  EXPECT_EQ(out.method, "ServiceMethod1");
  EXPECT_EQ(out.payload, m.payload);
  ASSERT_TRUE(out.has_dv);
  EXPECT_EQ(out.dv.Get("msp1")->sn, 500u);
  EXPECT_EQ(out.reply_code, ReplyCode::kBusy);
  EXPECT_EQ(out.flush_id, 9u);
  EXPECT_EQ(out.epoch, 2u);
  EXPECT_EQ(out.flush_sn, 1234u);
  EXPECT_TRUE(out.flush_ok);
  EXPECT_EQ(out.rec_epoch, 1u);
  EXPECT_EQ(out.rec_sn, 888u);
  EXPECT_EQ(out.trace_id, 0xabcdef0123456789ull);
  EXPECT_EQ(out.parent_span_id, 42u);
}

TEST(MessageTest, TraceFieldsDefaultToUntraced) {
  Message m;
  m.type = MessageType::kRequest;
  m.sender = "c";
  Message out;
  ASSERT_TRUE(Message::Decode(m.Encode(), &out).ok());
  EXPECT_EQ(out.trace_id, 0u);
  EXPECT_EQ(out.parent_span_id, 0u);
}

// Forward compatibility: a newer encoder that appends fields at the *tail*
// of the frame must still be readable by this decoder — Decode reads the
// fields it knows and ignores extra trailing bytes.
TEST(MessageTest, DecodeIgnoresExtraTrailingBytes) {
  Message m;
  m.type = MessageType::kReply;
  m.sender = "srv";
  m.session_id = "cli/se1";
  m.seqno = 3;
  m.payload = "result";
  m.trace_id = 77;
  m.parent_span_id = 78;
  Bytes wire = m.Encode();
  wire += std::string("\x01\x02\x03\x04\x05\x06\x07\x08", 8);  // future tail

  Message out;
  ASSERT_TRUE(Message::Decode(wire, &out).ok());
  EXPECT_EQ(out.type, MessageType::kReply);
  EXPECT_EQ(out.sender, "srv");
  EXPECT_EQ(out.seqno, 3u);
  EXPECT_EQ(out.payload, "result");
  EXPECT_EQ(out.trace_id, 77u);
  EXPECT_EQ(out.parent_span_id, 78u);
}

TEST(MessageTest, DecodeGarbageFails) {
  Message out;
  EXPECT_FALSE(Message::Decode("", &out).ok());
  EXPECT_FALSE(Message::Decode("\x63zzz", &out).ok());
}

// A scripted server for exercising the client contract.
class ScriptedServer {
 public:
  ScriptedServer(SimEnvironment* env, SimNetwork* net, std::string name)
      : env_(env), net_(net), name_(std::move(name)) {
    mailbox_ = net_->Register(name_);
    thread_ = std::thread([this] { Loop(); });
  }
  ~ScriptedServer() {
    net_->Unregister(name_);
    if (thread_.joinable()) thread_.join();
  }

  /// 0 = reply normally; >0 = ignore that many requests first; -N = send N
  /// Busy replies first.
  std::atomic<int> script{0};
  std::atomic<int> requests_seen{0};

 private:
  void Loop() {
    Packet p;
    while (mailbox_->Pop(&p)) {
      Message m;
      if (!Message::Decode(p.wire, &m).ok()) continue;
      requests_seen++;
      int s = script.load();
      Message r;
      r.type = MessageType::kReply;
      r.sender = name_;
      r.session_id = m.session_id;
      r.seqno = m.seqno;
      if (s > 0) {
        script = s - 1;
        continue;  // drop the request: client must resend
      }
      if (s < 0) {
        script = s + 1;
        r.reply_code = ReplyCode::kBusy;
      } else {
        r.reply_code = ReplyCode::kOk;
        r.payload = "echo:" + m.payload;
      }
      net_->Send(name_, p.from, r.Encode());
    }
  }

  SimEnvironment* env_;
  SimNetwork* net_;
  std::string name_;
  std::shared_ptr<Mailbox> mailbox_;
  std::thread thread_;
};

class ClientTest : public ::testing::Test {
 protected:
  ClientTest() : env_(0.0), net_(&env_) {}
  SimEnvironment env_;
  SimNetwork net_;
};

TEST_F(ClientTest, SimpleCallSucceeds) {
  ScriptedServer server(&env_, &net_, "srv");
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("srv");
  Bytes reply;
  CallStats cs;
  ASSERT_TRUE(client.Call(&session, "m", "hi", &reply, &cs).ok());
  EXPECT_EQ(reply, "echo:hi");
  EXPECT_EQ(cs.sends, 1u);
  EXPECT_EQ(session.next_seqno, 2u);
}

TEST_F(ClientTest, ResendsUntilReply) {
  ScriptedServer server(&env_, &net_, "srv");
  server.script = 3;  // drop the first three sends
  ClientOptions opts;
  opts.resend_timeout_ms = 10;
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("srv");
  Bytes reply;
  CallStats cs;
  ASSERT_TRUE(client.Call(&session, "m", "x", &reply, &cs).ok());
  EXPECT_GE(cs.sends, 4u);
}

TEST_F(ClientTest, BusyReplyBacksOffAndRetries) {
  ScriptedServer server(&env_, &net_, "srv");
  server.script = -2;  // two Busy replies first (§5.4 behavior)
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("srv");
  Bytes reply;
  CallStats cs;
  ASSERT_TRUE(client.Call(&session, "m", "x", &reply, &cs).ok());
  EXPECT_EQ(cs.busy_replies, 2u);
  EXPECT_EQ(reply, "echo:x");
}

TEST_F(ClientTest, SurvivesLossyLink) {
  ScriptedServer server(&env_, &net_, "srv");
  FaultPlan lossy;
  lossy.drop_prob = 0.5;
  net_.SetFaults("cli", "srv", lossy);
  net_.SetFaults("srv", "cli", lossy);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("srv");
  for (int i = 0; i < 20; ++i) {
    Bytes reply;
    ASSERT_TRUE(client.Call(&session, "m", std::to_string(i), &reply).ok());
    EXPECT_EQ(reply, "echo:" + std::to_string(i));
  }
  EXPECT_EQ(session.next_seqno, 21u);
}

TEST_F(ClientTest, SurvivesDuplicatingLink) {
  ScriptedServer server(&env_, &net_, "srv");
  FaultPlan dup;
  dup.duplicate_prob = 0.7;
  net_.SetFaults("cli", "srv", dup);
  net_.SetFaults("srv", "cli", dup);
  ClientEndpoint client(&env_, &net_, "cli");
  auto session = client.StartSession("srv");
  for (int i = 0; i < 20; ++i) {
    Bytes reply;
    ASSERT_TRUE(client.Call(&session, "m", std::to_string(i), &reply).ok());
    EXPECT_EQ(reply, "echo:" + std::to_string(i));
  }
}

TEST_F(ClientTest, DistinctSessionsGetDistinctIds) {
  ClientEndpoint client(&env_, &net_, "cli");
  auto s1 = client.StartSession("srv");
  auto s2 = client.StartSession("srv");
  EXPECT_NE(s1.session_id, s2.session_id);
}

TEST_F(ClientTest, TimesOutAgainstDeadServer) {
  ClientOptions opts;
  opts.resend_timeout_ms = 5;
  opts.max_sends = 3;
  ClientEndpoint client(&env_, &net_, "cli", opts);
  auto session = client.StartSession("ghost");
  Bytes reply;
  CallStats cs;
  EXPECT_TRUE(client.Call(&session, "m", "x", &reply, &cs).IsTimedOut());
  EXPECT_EQ(cs.sends, 3u);
}

}  // namespace
}  // namespace msplog
