// Unit tests for the physical log: record encoding, sector-aligned framing,
// flush semantics, crash (volatile loss), group commit, scanner, anchor,
// position streams.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "log/log_anchor.h"
#include "log/log_file.h"
#include "log/log_record.h"
#include "log/log_scanner.h"
#include "log/position_stream.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"

namespace msplog {
namespace {

LogRecord MakeRequestRecord(const std::string& session, uint64_t seqno,
                            const std::string& method, Bytes payload) {
  LogRecord r;
  r.type = LogRecordType::kRequestReceive;
  r.session_id = session;
  r.seqno = seqno;
  r.target = method;
  r.payload = std::move(payload);
  return r;
}

class LogFileTest : public ::testing::Test {
 protected:
  LogFileTest() : env_(0.0), disk_(&env_, "d") {}
  SimEnvironment env_;
  SimDisk disk_;
};

TEST_F(LogFileTest, RecordEncodeDecodeRoundTrip) {
  LogRecord r = MakeRequestRecord("se1", 42, "m", MakePayload(100, 1));
  r.has_dv = true;
  r.dv.Set("msp1", {2, 1000});
  r.dv.Set("msp2", {1, 2000});
  r.prev_lsn = 77;
  r.peer = "msp3";
  r.peer_epoch = 5;
  r.peer_recovered_sn = 999;
  r.aux = 2;
  LogRecord out;
  ASSERT_TRUE(LogRecord::Decode(r.Encode(), &out).ok());
  EXPECT_EQ(out.type, r.type);
  EXPECT_EQ(out.session_id, "se1");
  EXPECT_EQ(out.seqno, 42u);
  EXPECT_EQ(out.target, "m");
  EXPECT_EQ(out.payload, r.payload);
  EXPECT_TRUE(out.has_dv);
  EXPECT_EQ(out.dv, r.dv);
  EXPECT_EQ(out.prev_lsn, 77u);
  EXPECT_EQ(out.peer, "msp3");
  EXPECT_EQ(out.peer_epoch, 5u);
  EXPECT_EQ(out.peer_recovered_sn, 999u);
  EXPECT_EQ(out.aux, 2);
}

TEST_F(LogFileTest, DecodeGarbageIsCorruption) {
  LogRecord out;
  EXPECT_TRUE(LogRecord::Decode("", &out).IsCorruption());
  EXPECT_TRUE(LogRecord::Decode("\xFFgarbage", &out).IsCorruption());
}

TEST_F(LogFileTest, AppendAssignsMonotonicLsns) {
  LogFile log(&env_, &disk_, "log");
  uint64_t prev = 0;
  for (int i = 0; i < 10; ++i) {
    uint64_t lsn = log.Append(MakeRequestRecord("s", i, "m", "x"));
    if (i > 0) {
      EXPECT_GT(lsn, prev);
    }
    prev = lsn;
  }
}

TEST_F(LogFileTest, FlushMakesDurableAndSectorAligned) {
  LogFile log(&env_, &disk_, "log");
  uint64_t lsn = log.Append(MakeRequestRecord("s", 1, "m", MakePayload(100)));
  EXPECT_EQ(lsn, 512u);                  // first record after reserved sector
  EXPECT_EQ(log.durable_lsn(), 512u);    // nothing flushed yet
  ASSERT_TRUE(log.FlushUpTo(lsn).ok());
  EXPECT_GT(log.durable_lsn(), lsn);
  EXPECT_EQ(log.durable_lsn() % 512, 0u);           // sector aligned
  EXPECT_EQ(disk_.FileSize("log") % 512, 0u);
  // Next append starts at the padded boundary.
  uint64_t lsn2 = log.Append(MakeRequestRecord("s", 2, "m", "y"));
  EXPECT_EQ(lsn2 % 512, 0u);
}

TEST_F(LogFileTest, HalfSectorWastePerFlush) {
  LogFile log(&env_, &disk_, "log");
  auto before = env_.stats().Snap();
  uint64_t lsn = log.Append(MakeRequestRecord("s", 1, "m", MakePayload(100)));
  ASSERT_TRUE(log.FlushUpTo(lsn).ok());
  auto after = env_.stats().Snap();
  EXPECT_GT(after.disk_bytes_wasted, before.disk_bytes_wasted);
  EXPECT_LT(after.disk_bytes_wasted - before.disk_bytes_wasted, 512u);
}

TEST_F(LogFileTest, FlushUpToIsIdempotent) {
  LogFile log(&env_, &disk_, "log");
  uint64_t lsn = log.Append(MakeRequestRecord("s", 1, "m", "x"));
  ASSERT_TRUE(log.FlushUpTo(lsn).ok());
  auto before = env_.stats().Snap();
  ASSERT_TRUE(log.FlushUpTo(lsn).ok());  // already durable: no I/O
  auto after = env_.stats().Snap();
  EXPECT_EQ(after.disk_flushes, before.disk_flushes);
}

TEST_F(LogFileTest, FlushBeyondEndIsInvalid) {
  LogFile log(&env_, &disk_, "log");
  EXPECT_TRUE(log.FlushUpTo(12345).code() == StatusCode::kInvalidArgument);
}

TEST_F(LogFileTest, ReadRecordAtServesBufferAndDisk) {
  LogFile log(&env_, &disk_, "log");
  uint64_t l1 = log.Append(MakeRequestRecord("s", 1, "m", "first"));
  ASSERT_TRUE(log.FlushUpTo(l1).ok());
  uint64_t l2 = log.Append(MakeRequestRecord("s", 2, "m", "second"));

  LogRecord r;
  ASSERT_TRUE(log.ReadRecordAt(l1, &r).ok());  // durable
  EXPECT_EQ(r.payload, "first");
  ASSERT_TRUE(log.ReadRecordAt(l2, &r).ok());  // buffered
  EXPECT_EQ(r.payload, "second");
  EXPECT_EQ(r.lsn, l2);
}

TEST_F(LogFileTest, CrashLosesBufferKeepsDurable) {
  uint64_t l1;
  {
    LogFile log(&env_, &disk_, "log");
    l1 = log.Append(MakeRequestRecord("s", 1, "m", "durable"));
    ASSERT_TRUE(log.FlushUpTo(l1).ok());
    log.Append(MakeRequestRecord("s", 2, "m", "volatile"));
    log.Crash();
  }
  LogFile log2(&env_, &disk_, "log");
  LogRecord r;
  ASSERT_TRUE(log2.ReadRecordAt(l1, &r).ok());
  EXPECT_EQ(r.payload, "durable");
  // The volatile record is gone; the new end is the durable boundary.
  EXPECT_EQ(log2.end_lsn(), log2.durable_lsn());
}

TEST_F(LogFileTest, CrashFailsFlushWaiters) {
  LogFile log(&env_, &disk_, "log");
  log.Crash();
  LogRecord rec = MakeRequestRecord("s", 1, "m", "x");
  uint64_t lsn = log.Append(rec);
  EXPECT_TRUE(log.FlushUpTo(lsn).IsCrashed());
}

TEST_F(LogFileTest, ResumesAfterDurablePrefix) {
  uint64_t durable_end;
  {
    LogFile log(&env_, &disk_, "log");
    uint64_t l = log.Append(MakeRequestRecord("s", 1, "m", MakePayload(700)));
    ASSERT_TRUE(log.FlushUpTo(l).ok());
    durable_end = log.durable_lsn();
  }
  LogFile log2(&env_, &disk_, "log");
  uint64_t l2 = log2.Append(MakeRequestRecord("s", 2, "m", "x"));
  EXPECT_EQ(l2, durable_end);
}

TEST_F(LogFileTest, GroupCommitBatchesConcurrentFlushes) {
  LogFileOptions opts;
  opts.batch_flush = true;
  opts.batch_timeout_ms = 1.0;
  LogFile log(&env_, &disk_, "log", opts);
  constexpr int kThreads = 8;
  std::vector<uint64_t> lsns(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    lsns[i] = log.Append(MakeRequestRecord("s", i, "m", MakePayload(200, i)));
  }
  auto before = env_.stats().Snap();
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] { EXPECT_TRUE(log.FlushUpTo(lsns[i]).ok()); });
  }
  for (auto& t : threads) t.join();
  auto after = env_.stats().Snap();
  // All 8 flush requests should ride very few physical writes.
  EXPECT_LE(after.disk_flushes - before.disk_flushes, 3u);
  EXPECT_GT(log.durable_lsn(), lsns[kThreads - 1]);
}

TEST_F(LogFileTest, ScannerSeesAllRecordsAcrossFlushBoundaries) {
  LogFile log(&env_, &disk_, "log");
  std::vector<uint64_t> lsns;
  // Multiple flushes create padding gaps the scanner must skip.
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 7; ++i) {
      lsns.push_back(log.Append(
          MakeRequestRecord("s", batch * 7 + i, "m", MakePayload(90, i))));
    }
    ASSERT_TRUE(log.FlushAll().ok());
  }
  LogScanner scanner(&disk_, "log", 0, disk_.FileSize("log"));
  size_t n = 0;
  while (true) {
    LogRecord r;
    Status st = scanner.Next(&r);
    if (st.IsNotFound()) break;
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_LT(n, lsns.size());
    EXPECT_EQ(r.lsn, lsns[n]);
    EXPECT_EQ(r.seqno, n);
    ++n;
  }
  EXPECT_EQ(n, lsns.size());
}

TEST_F(LogFileTest, ScannerHandlesRecordsLargerThanChunk) {
  LogFile log(&env_, &disk_, "log");
  uint64_t l1 = log.Append(MakeRequestRecord("s", 1, "m", MakePayload(100)));
  uint64_t l2 =
      log.Append(MakeRequestRecord("s", 2, "m", MakePayload(100 * 1024)));
  uint64_t l3 = log.Append(MakeRequestRecord("s", 3, "m", MakePayload(100)));
  ASSERT_TRUE(log.FlushAll().ok());
  LogScanner scanner(&disk_, "log", 0, disk_.FileSize("log"));
  LogRecord r;
  ASSERT_TRUE(scanner.Next(&r).ok());
  EXPECT_EQ(r.lsn, l1);
  ASSERT_TRUE(scanner.Next(&r).ok());
  EXPECT_EQ(r.lsn, l2);
  EXPECT_EQ(r.payload.size(), 100u * 1024);
  ASSERT_TRUE(scanner.Next(&r).ok());
  EXPECT_EQ(r.lsn, l3);
  EXPECT_TRUE(scanner.Next(&r).IsNotFound());
}

TEST_F(LogFileTest, ScannerStartsMidLog) {
  LogFile log(&env_, &disk_, "log");
  log.Append(MakeRequestRecord("s", 1, "m", "a"));
  ASSERT_TRUE(log.FlushAll().ok());
  uint64_t l2 = log.Append(MakeRequestRecord("s", 2, "m", "b"));
  ASSERT_TRUE(log.FlushAll().ok());
  LogScanner scanner(&disk_, "log", l2, disk_.FileSize("log"));
  LogRecord r;
  ASSERT_TRUE(scanner.Next(&r).ok());
  EXPECT_EQ(r.seqno, 2u);
  EXPECT_TRUE(scanner.Next(&r).IsNotFound());
}

TEST_F(LogFileTest, ScannerStopsAtCorruptTail) {
  LogFile log(&env_, &disk_, "log");
  uint64_t l1 = log.Append(MakeRequestRecord("s", 1, "m", "good"));
  uint64_t l2 = log.Append(MakeRequestRecord("s", 2, "m", "to-corrupt"));
  ASSERT_TRUE(log.FlushAll().ok());
  // Flip a byte inside the second record's body.
  Bytes raw;
  ASSERT_TRUE(disk_.ReadAt("log", l2 + 12, 1, &raw).ok());
  raw[0] ^= 0x55;
  ASSERT_TRUE(disk_.WriteAt("log", l2 + 12, raw).ok());

  LogScanner scanner(&disk_, "log", 0, disk_.FileSize("log"));
  LogRecord r;
  ASSERT_TRUE(scanner.Next(&r).ok());
  EXPECT_EQ(r.lsn, l1);
  EXPECT_TRUE(scanner.Next(&r).IsCorruption());
}

TEST(LogAnchorTest, RoundTripAndMissing) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  LogAnchor anchor(&disk, "a");
  AnchorData out;
  EXPECT_TRUE(anchor.Read(&out).IsNotFound());
  ASSERT_TRUE(anchor.Write({12345, 7}).ok());
  ASSERT_TRUE(anchor.Read(&out).ok());
  EXPECT_EQ(out.msp_checkpoint_lsn, 12345u);
  EXPECT_EQ(out.epoch, 7u);
  // Overwrite wins.
  ASSERT_TRUE(anchor.Write({99, 8}).ok());
  ASSERT_TRUE(anchor.Read(&out).ok());
  EXPECT_EQ(out.msp_checkpoint_lsn, 99u);
  EXPECT_EQ(out.epoch, 8u);
}

TEST(LogAnchorTest, CorruptAnchorDetected) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  LogAnchor anchor(&disk, "a");
  ASSERT_TRUE(anchor.Write({1, 1}).ok());
  Bytes raw;
  ASSERT_TRUE(disk.ReadAt("a", 5, 1, &raw).ok());
  raw[0] ^= 0xFF;
  ASSERT_TRUE(disk.WriteAt("a", 5, raw).ok());
  AnchorData out;
  EXPECT_TRUE(anchor.Read(&out).IsCorruption());
}

TEST(PositionStreamTest, AddAndAll) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  PositionStream ps(&disk, "pos", 4);
  for (uint64_t i = 0; i < 10; ++i) ps.Add(i * 100);
  EXPECT_EQ(ps.size(), 10u);
  auto all = ps.All();
  ASSERT_EQ(all.size(), 10u);
  EXPECT_EQ(all[3], 300u);
}

TEST(PositionStreamTest, BufferFlushesToDiskAtCapacity) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  PositionStream ps(&disk, "pos", 4);
  for (uint64_t i = 0; i < 3; ++i) ps.Add(i);
  std::vector<uint64_t> persisted;
  ASSERT_TRUE(ps.LoadPersisted(&persisted).ok());
  EXPECT_TRUE(persisted.empty());  // below capacity: buffered only
  ps.Add(3);
  ASSERT_TRUE(ps.LoadPersisted(&persisted).ok());
  EXPECT_EQ(persisted.size(), 4u);
}

TEST(PositionStreamTest, TruncateDropsEverything) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  PositionStream ps(&disk, "pos", 2);
  for (uint64_t i = 0; i < 6; ++i) ps.Add(i);
  ps.Truncate();
  EXPECT_EQ(ps.size(), 0u);
  std::vector<uint64_t> persisted;
  ASSERT_TRUE(ps.LoadPersisted(&persisted).ok());
  EXPECT_TRUE(persisted.empty());
}

TEST(PositionStreamTest, RemoveRangeCutsOrphanSpan) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  PositionStream ps(&disk, "pos", 100);
  for (uint64_t i = 0; i < 10; ++i) ps.Add(i * 10);
  ps.RemoveRange(30, 60);  // removes 30,40,50,60
  auto all = ps.All();
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[2], 20u);
  EXPECT_EQ(all[3], 70u);
}

TEST(PositionStreamTest, ReplaceAllAfterCrashReconstruction) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  PositionStream ps(&disk, "pos", 2);
  for (uint64_t i = 0; i < 6; ++i) ps.Add(i);
  ps.ReplaceAll({100, 200, 300});
  auto all = ps.All();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], 100u);
}

}  // namespace
}  // namespace msplog
