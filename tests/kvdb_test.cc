// Unit tests for the kvdb substrate (the Psession baseline's database).
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "db/kvdb.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"

namespace msplog {
namespace {

class KvDbTest : public ::testing::Test {
 protected:
  KvDbTest() : env_(0.0), disk_(&env_, "d") {}
  SimEnvironment env_;
  SimDisk disk_;
};

TEST_F(KvDbTest, PutGetDelete) {
  KvDb db(&env_, &disk_, "db");
  ASSERT_TRUE(db.Recover().ok());
  ASSERT_TRUE(db.TxnPut("k1", "v1").ok());
  Bytes v;
  ASSERT_TRUE(db.TxnGet("k1", &v).ok());
  EXPECT_EQ(v, "v1");
  ASSERT_TRUE(db.TxnDelete("k1").ok());
  EXPECT_TRUE(db.TxnGet("k1", &v).IsNotFound());
}

TEST_F(KvDbTest, OverwriteKeepsLatest) {
  KvDb db(&env_, &disk_, "db");
  ASSERT_TRUE(db.Recover().ok());
  ASSERT_TRUE(db.TxnPut("k", "v1").ok());
  ASSERT_TRUE(db.TxnPut("k", "v2").ok());
  Bytes v;
  ASSERT_TRUE(db.TxnGet("k", &v).ok());
  EXPECT_EQ(v, "v2");
  EXPECT_EQ(db.KeyCount(), 1u);
}

TEST_F(KvDbTest, RecoverReplaysWal) {
  {
    KvDb db(&env_, &disk_, "db");
    ASSERT_TRUE(db.Recover().ok());
    ASSERT_TRUE(db.TxnPut("a", MakePayload(8192, 1)).ok());
    ASSERT_TRUE(db.TxnPut("b", "bee").ok());
    ASSERT_TRUE(db.TxnDelete("b").ok());
    ASSERT_TRUE(db.TxnPut("c", "sea").ok());
  }  // "crash": the object dies; the WAL survives on the SimDisk
  KvDb db2(&env_, &disk_, "db");
  ASSERT_TRUE(db2.Recover().ok());
  EXPECT_EQ(db2.KeyCount(), 2u);
  Bytes v;
  ASSERT_TRUE(db2.TxnGet("a", &v).ok());
  EXPECT_EQ(v, MakePayload(8192, 1));
  EXPECT_TRUE(db2.TxnGet("b", &v).IsNotFound());
  ASSERT_TRUE(db2.TxnGet("c", &v).ok());
  EXPECT_EQ(v, "sea");
}

TEST_F(KvDbTest, TornTailIsTruncatedNotFatal) {
  {
    KvDb db(&env_, &disk_, "db");
    ASSERT_TRUE(db.Recover().ok());
    ASSERT_TRUE(db.TxnPut("a", "alpha").ok());
    ASSERT_TRUE(db.TxnPut("b", "beta").ok());
  }
  // Corrupt the final WAL record's body.
  uint64_t size = disk_.FileSize("db.wal");
  Bytes raw;
  ASSERT_TRUE(disk_.ReadAt("db.wal", size - 2, 1, &raw).ok());
  raw[0] ^= 0x7F;
  ASSERT_TRUE(disk_.WriteAt("db.wal", size - 2, raw).ok());

  KvDb db2(&env_, &disk_, "db");
  ASSERT_TRUE(db2.Recover().ok());
  Bytes v;
  ASSERT_TRUE(db2.TxnGet("a", &v).ok());  // first record survives
  EXPECT_TRUE(db2.TxnGet("b", &v).IsNotFound());  // torn tail dropped
}

TEST_F(KvDbTest, EveryCommitIsADiskWrite) {
  KvDb db(&env_, &disk_, "db");
  ASSERT_TRUE(db.Recover().ok());
  auto before = env_.stats().Snap();
  ASSERT_TRUE(db.TxnPut("k", MakePayload(8192)).ok());
  auto mid = env_.stats().Snap();
  EXPECT_EQ(mid.disk_flushes - before.disk_flushes, 1u);
  // Durable read locks make read transactions pay a write too (the cost
  // structure behind the Psession baseline, §5.2).
  Bytes v;
  ASSERT_TRUE(db.TxnGet("k", &v).ok());
  auto after = env_.stats().Snap();
  EXPECT_EQ(after.disk_flushes - mid.disk_flushes, 1u);
}

TEST_F(KvDbTest, ReadLocksCanBeDisabled) {
  KvDbOptions opts;
  opts.durable_read_locks = false;
  KvDb db(&env_, &disk_, "db", opts);
  ASSERT_TRUE(db.Recover().ok());
  ASSERT_TRUE(db.TxnPut("k", "v").ok());
  auto before = env_.stats().Snap();
  Bytes v;
  ASSERT_TRUE(db.TxnGet("k", &v).ok());
  auto after = env_.stats().Snap();
  EXPECT_EQ(after.disk_flushes, before.disk_flushes);
}

TEST_F(KvDbTest, EmptyValueRoundTrips) {
  KvDb db(&env_, &disk_, "db");
  ASSERT_TRUE(db.Recover().ok());
  ASSERT_TRUE(db.TxnPut("k", "").ok());
  Bytes v = "sentinel";
  ASSERT_TRUE(db.TxnGet("k", &v).ok());
  EXPECT_EQ(v, "");
}

}  // namespace
}  // namespace msplog
