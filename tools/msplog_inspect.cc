// msplog_inspect — offline inspector for an exported MSP log image.
//
// A log image is the raw bytes of one MSP's physical log file (e.g. written
// by a test via SimDisk::ReadAt of "<msp>.log", or any future export path).
// The inspector loads the bytes into a fresh latency-free SimDisk and walks
// them with the same scanner crash recovery uses — so what it accepts is
// exactly what recovery would accept.
//
// Usage:
//   msplog_inspect [--records] [--checkpoints] [--stats] [--json]
//                  [--self-check] FILE
//
//   --records      dump one line per record (type, session, seqno, CRC)
//   --checkpoints  also dump decoded checkpoint contents
//   --stats        per-session record/byte/checkpoint counts, in the same
//                  SessionStats shape the live server's telemetry reports
//   --json         print the report as JSON instead of text
//   --self-check   exit 1 unless the image has records and no invariant
//                  violations (CI gate)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "msp/log_inspect.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--records] [--checkpoints] [--stats] [--json] "
               "[--self-check] <log-image-file>\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  msplog::LogInspectOptions opts;
  bool json = false;
  bool self_check = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--records") == 0) {
      opts.dump_records = true;
    } else if (std::strcmp(argv[i], "--checkpoints") == 0) {
      opts.dump_checkpoints = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      opts.collect_session_stats = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--self-check") == 0) {
      self_check = true;
    } else if (argv[i][0] == '-') {
      return Usage(argv[0]);
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (path.empty()) return Usage(argv[0]);

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "msplog_inspect: cannot open %s\n", path.c_str());
    return 2;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  // Offline: time scale 0 and no latency charging — contents only.
  msplog::SimEnvironment env(/*time_scale=*/0.0);
  msplog::SimDisk disk(&env, "inspect");
  disk.set_charge_latency(false);
  const std::string file = "image.log";
  msplog::Status wst = disk.WriteAt(file, 0, bytes);
  if (!wst.ok()) {
    std::fprintf(stderr, "msplog_inspect: load failed: %s\n",
                 wst.ToString().c_str());
    return 2;
  }

  msplog::LogInspectReport report;
  std::string dump;
  msplog::Status st =
      msplog::InspectLogImage(&disk, file, opts, &report, &dump);
  if (!st.ok()) {
    std::fprintf(stderr, "msplog_inspect: %s\n", st.ToString().c_str());
    return 2;
  }

  if (!dump.empty()) std::fputs(dump.c_str(), stdout);
  if (json) {
    std::printf("%s\n", report.ToJson().c_str());
  } else {
    std::fputs(report.Summary().c_str(), stdout);
  }

  if (self_check) {
    if (report.records == 0) {
      std::fprintf(stderr, "msplog_inspect: self-check FAILED: no records\n");
      return 1;
    }
    if (!report.invariant_violations.empty()) {
      std::fprintf(stderr,
                   "msplog_inspect: self-check FAILED: %zu invariant "
                   "violation(s)\n",
                   report.invariant_violations.size());
      return 1;
    }
    std::printf("self-check OK: %llu records, 0 violations\n",
                static_cast<unsigned long long>(report.records));
  }
  return 0;
}
