// msplog_inspect — offline inspector for an exported MSP log image.
//
// A log image is the raw bytes of one MSP's physical log file (e.g. written
// by a test via SimDisk::ReadAt of "<msp>.log", or any future export path).
// The inspector loads the bytes into a fresh latency-free SimDisk and walks
// them with the same scanner crash recovery uses — so what it accepts is
// exactly what recovery would accept.
//
// Usage:
//   msplog_inspect [--records] [--checkpoints] [--stats] [--json]
//                  [--self-check] [--archive-manifest FILE] FILE
//
//   --records      dump one line per record (type, session, seqno, CRC)
//   --checkpoints  also dump decoded checkpoint contents
//   --stats        per-session record/byte/checkpoint counts, in the same
//                  SessionStats shape the live server's telemetry reports
//   --json         print the report as JSON instead of text
//   --self-check   exit 1 unless the image has records and no invariant
//                  violations (CI gate)
//   --archive-manifest FILE
//                  overlay archived log segments into the image before the
//                  walk. Each manifest line is "<base-lsn> <segment-file>"
//                  (paths relative to the manifest's directory); segment
//                  bytes land at their original byte offsets, backfilling
//                  the ranges archiving punched out of the live log. With
//                  --self-check this also verifies no live session was cut:
//                  the merged image must still start at or before the
//                  newest MSP checkpoint's min-recovery LSN.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "msp/log_inspect.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--records] [--checkpoints] [--stats] [--json] "
               "[--self-check] [--archive-manifest FILE] <log-image-file>\n",
               argv0);
  return 2;
}

struct ManifestEntry {
  uint64_t base = 0;
  std::string path;
};

/// Parse "<base-lsn> <segment-file>" lines; '#' starts a comment, blank
/// lines are skipped. Relative segment paths resolve against the
/// manifest's own directory.
bool LoadArchiveManifest(const std::string& manifest_path,
                         std::vector<ManifestEntry>* entries) {
  std::ifstream in(manifest_path);
  if (!in) {
    std::fprintf(stderr, "msplog_inspect: cannot open manifest %s\n",
                 manifest_path.c_str());
    return false;
  }
  std::string dir;
  const size_t slash = manifest_path.find_last_of('/');
  if (slash != std::string::npos) dir = manifest_path.substr(0, slash + 1);
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    ManifestEntry e;
    if (!(ls >> e.base >> e.path)) continue;  // blank / comment-only line
    if (!e.path.empty() && e.path[0] != '/') e.path = dir + e.path;
    entries->push_back(e);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  msplog::LogInspectOptions opts;
  bool json = false;
  bool self_check = false;
  std::string manifest_path;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--records") == 0) {
      opts.dump_records = true;
    } else if (std::strcmp(argv[i], "--checkpoints") == 0) {
      opts.dump_checkpoints = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      opts.collect_session_stats = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--self-check") == 0) {
      self_check = true;
    } else if (std::strcmp(argv[i], "--archive-manifest") == 0) {
      if (++i >= argc) return Usage(argv[0]);
      manifest_path = argv[i];
    } else if (argv[i][0] == '-') {
      return Usage(argv[0]);
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (path.empty()) return Usage(argv[0]);

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "msplog_inspect: cannot open %s\n", path.c_str());
    return 2;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  // Offline: time scale 0 and no latency charging — contents only.
  msplog::SimEnvironment env(/*time_scale=*/0.0);
  msplog::SimDisk disk(&env, "inspect");
  disk.set_charge_latency(false);
  const std::string file = "image.log";
  msplog::Status wst = disk.WriteAt(file, 0, bytes);
  if (!wst.ok()) {
    std::fprintf(stderr, "msplog_inspect: load failed: %s\n",
                 wst.ToString().c_str());
    return 2;
  }

  // Archived segments backfill the zeroed ranges archiving punched out of
  // the live log: overlay each at its original byte offset. Archiving only
  // ever moves bytes strictly below the reclamation watermark, so a segment
  // that reaches past the live image's end can only come from a mismatched
  // manifest — warn, then let the walk surface the damage as violations.
  uint64_t archive_segments = 0;
  if (!manifest_path.empty()) {
    std::vector<ManifestEntry> entries;
    if (!LoadArchiveManifest(manifest_path, &entries)) return 2;
    for (const ManifestEntry& e : entries) {
      std::ifstream seg(e.path, std::ios::binary);
      if (!seg) {
        std::fprintf(stderr, "msplog_inspect: cannot open archive segment %s\n",
                     e.path.c_str());
        return 2;
      }
      std::string seg_bytes((std::istreambuf_iterator<char>(seg)),
                            std::istreambuf_iterator<char>());
      if (e.base + seg_bytes.size() > bytes.size()) {
        std::fprintf(stderr,
                     "msplog_inspect: warning: archive segment %s [%llu, %llu) "
                     "reaches past the live image end %llu\n",
                     e.path.c_str(), (unsigned long long)e.base,
                     (unsigned long long)(e.base + seg_bytes.size()),
                     (unsigned long long)bytes.size());
      }
      wst = disk.WriteAt(file, e.base, seg_bytes);
      if (!wst.ok()) {
        std::fprintf(stderr, "msplog_inspect: overlay failed: %s\n",
                     wst.ToString().c_str());
        return 2;
      }
      ++archive_segments;
    }
  }

  msplog::LogInspectReport report;
  std::string dump;
  msplog::Status st =
      msplog::InspectLogImage(&disk, file, opts, &report, &dump);
  if (!st.ok()) {
    std::fprintf(stderr, "msplog_inspect: %s\n", st.ToString().c_str());
    return 2;
  }
  report.archive_segments = archive_segments;

  if (!dump.empty()) std::fputs(dump.c_str(), stdout);
  if (json) {
    std::printf("%s\n", report.ToJson().c_str());
  } else {
    std::fputs(report.Summary().c_str(), stdout);
  }

  if (self_check) {
    if (report.records == 0) {
      std::fprintf(stderr, "msplog_inspect: self-check FAILED: no records\n");
      return 1;
    }
    if (!report.invariant_violations.empty()) {
      std::fprintf(stderr,
                   "msplog_inspect: self-check FAILED: %zu invariant "
                   "violation(s)\n",
                   report.invariant_violations.size());
      return 1;
    }
    std::printf("self-check OK: %llu records, %llu archive segment(s), "
                "0 violations\n",
                static_cast<unsigned long long>(report.records),
                static_cast<unsigned long long>(report.archive_segments));
  }
  return 0;
}
