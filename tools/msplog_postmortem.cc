// msplog_postmortem — offline outage post-mortem correlator.
//
// Loads a flight-recorder bundle (the JSON a test or the server dumped at
// crash time) plus the raw log image of the crashed MSP, re-derives every
// in-flight session's fate (replayed / orphaned / never-logged) from the
// log alone, and — when given the live outage report too — cross-checks
// the live recovery join against the log-derived ground truth.
//
// Usage:
//   msplog_postmortem --bundle BUNDLE.json --log IMAGE [--report REPORT.json]
//                     [--json]
//
//   --bundle   frozen FlightBundle JSON (FlightBundle::ToJson output)
//   --log      raw bytes of the crashed MSP's physical log file
//   --report   live obs::OutageReport JSON; fates are cross-checked and a
//              mismatch exits 1 (CI gate)
//   --json     print the derived report as JSON instead of text
#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "msp/postmortem.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough to lift a handful of fields out of the
// bundle / report dumps this repo itself emits. Not a general validator.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  const JsonValue* Get(const std::string& key) const {
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
  double NumberOr(double dflt) const {
    return kind == Kind::kNumber ? num : dflt;
  }
  const std::string& StringOr(const std::string& dflt) const {
    return kind == Kind::kString ? str : dflt;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"': out->kind = JsonValue::Kind::kString;
                return ParseString(&out->str);
      case 't': out->kind = JsonValue::Kind::kBool; out->b = true;
                return Literal("true");
      case 'f': out->kind = JsonValue::Kind::kBool; out->b = false;
                return Literal("false");
      case 'n': out->kind = JsonValue::Kind::kNull;
                return Literal("null");
      default:  return ParseNumber(out);
    }
  }

  bool Literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->num = std::strtod(s_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Eat('"')) return false;
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      char e = s_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          // The repo's own dumps only \u-escape control bytes; decode the
          // low byte and drop the high one.
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = std::strtoul(s_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          out->push_back(static_cast<char>(code & 0xff));
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Eat('{')) return false;
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Eat(':')) return false;
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->obj.emplace(std::move(key), std::move(v));
      SkipWs();
      if (Eat(',')) continue;
      return Eat('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->arr.push_back(std::move(v));
      SkipWs();
      if (Eat(',')) continue;
      return Eat(']');
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --bundle BUNDLE.json --log IMAGE "
               "[--report REPORT.json] [--json]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string bundle_path, log_path, report_path;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](std::string* dst) -> bool {
      if (i + 1 >= argc) return false;
      *dst = argv[++i];
      return true;
    };
    if (std::strcmp(argv[i], "--bundle") == 0) {
      if (!next(&bundle_path)) return Usage(argv[0]);
    } else if (std::strcmp(argv[i], "--log") == 0) {
      if (!next(&log_path)) return Usage(argv[0]);
    } else if (std::strcmp(argv[i], "--report") == 0) {
      if (!next(&report_path)) return Usage(argv[0]);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (bundle_path.empty() || log_path.empty()) return Usage(argv[0]);

  std::string bundle_text;
  if (!ReadFile(bundle_path, &bundle_text)) {
    std::fprintf(stderr, "msplog_postmortem: cannot open %s\n",
                 bundle_path.c_str());
    return 2;
  }
  JsonValue bundle;
  if (!JsonParser(bundle_text).Parse(&bundle) ||
      bundle.kind != JsonValue::Kind::kObject) {
    std::fprintf(stderr, "msplog_postmortem: %s is not valid JSON\n",
                 bundle_path.c_str());
    return 2;
  }
  const JsonValue* frozen = bundle.Get("frozen");
  if (!frozen || frozen->kind != JsonValue::Kind::kBool || !frozen->b) {
    std::fprintf(stderr, "msplog_postmortem: bundle is not frozen\n");
    return 2;
  }

  msplog::PostmortemInput input;
  if (const JsonValue* v = bundle.Get("actor")) input.actor = v->StringOr("");
  if (const JsonValue* v = bundle.Get("generation")) {
    input.generation = static_cast<uint64_t>(v->NumberOr(0));
  }
  if (const JsonValue* v = bundle.Get("frozen_at_ms")) {
    input.crash_model_ms = v->NumberOr(0);
  }
  const JsonValue* snapshots = bundle.Get("snapshots");
  bool found_snapshot = false;
  if (snapshots && snapshots->kind == JsonValue::Kind::kArray) {
    for (const JsonValue& snap : snapshots->arr) {
      const JsonValue* who = snap.Get("actor");
      if (!who || who->StringOr("") != input.actor) continue;
      found_snapshot = true;
      if (const JsonValue* d = snap.Get("log_durable_lsn")) {
        input.durable_at_crash = static_cast<uint64_t>(d->NumberOr(0));
      }
      if (const JsonValue* fl = snap.Get("inflight_sessions")) {
        for (const JsonValue& id : fl->arr) {
          input.inflight_sessions.push_back(id.StringOr(""));
        }
      }
      break;
    }
  }
  if (!found_snapshot) {
    std::fprintf(stderr,
                 "msplog_postmortem: bundle has no snapshot for actor %s\n",
                 input.actor.c_str());
    return 2;
  }

  std::string image;
  if (!ReadFile(log_path, &image)) {
    std::fprintf(stderr, "msplog_postmortem: cannot open %s\n",
                 log_path.c_str());
    return 2;
  }

  // Offline: time scale 0 and no latency charging — contents only.
  msplog::SimEnvironment env(/*time_scale=*/0.0);
  msplog::SimDisk disk(&env, "postmortem");
  disk.set_charge_latency(false);
  const std::string file = "image.log";
  msplog::Status wst = disk.WriteAt(file, 0, image);
  if (!wst.ok()) {
    std::fprintf(stderr, "msplog_postmortem: load failed: %s\n",
                 wst.ToString().c_str());
    return 2;
  }

  msplog::PostmortemReport derived;
  msplog::Status st = msplog::DerivePostmortem(&disk, file, input, &derived);
  if (!st.ok()) {
    std::fprintf(stderr, "msplog_postmortem: %s\n", st.ToString().c_str());
    return 2;
  }

  if (json) {
    std::printf("%s\n", derived.ToJson().c_str());
  } else {
    std::fputs(derived.Summary().c_str(), stdout);
  }

  if (report_path.empty()) return 0;

  // Cross-check: the live recovery join must agree with the log.
  std::string report_text;
  if (!ReadFile(report_path, &report_text)) {
    std::fprintf(stderr, "msplog_postmortem: cannot open %s\n",
                 report_path.c_str());
    return 2;
  }
  JsonValue live;
  if (!JsonParser(report_text).Parse(&live) ||
      live.kind != JsonValue::Kind::kObject) {
    std::fprintf(stderr, "msplog_postmortem: %s is not valid JSON\n",
                 report_path.c_str());
    return 2;
  }
  const JsonValue* live_sessions = live.Get("sessions");
  if (!live_sessions || live_sessions->kind != JsonValue::Kind::kArray) {
    std::fprintf(stderr, "msplog_postmortem: report has no sessions array\n");
    return 2;
  }
  int mismatches = 0;
  size_t compared = 0;
  for (const JsonValue& s : live_sessions->arr) {
    const JsonValue* id = s.Get("session");
    const JsonValue* fate = s.Get("fate");
    if (!id || !fate) continue;
    const msplog::PostmortemSessionFate* mine =
        derived.Find(id->StringOr(""));
    if (!mine) {
      std::fprintf(stderr,
                   "MISMATCH session %s: in live report but not in bundle's "
                   "in-flight set\n",
                   id->StringOr("").c_str());
      ++mismatches;
      continue;
    }
    ++compared;
    if (fate->StringOr("") != mine->fate) {
      std::fprintf(stderr, "MISMATCH session %s: live=%s log-derived=%s\n",
                   id->StringOr("").c_str(), fate->StringOr("").c_str(),
                   mine->fate.c_str());
      ++mismatches;
    }
  }
  if (compared != derived.sessions.size()) {
    std::fprintf(stderr,
                 "MISMATCH: live report covers %zu of %zu in-flight "
                 "sessions\n",
                 compared, derived.sessions.size());
    ++mismatches;
  }
  if (mismatches > 0) {
    std::fprintf(stderr, "cross-check FAILED: %d mismatch(es)\n", mismatches);
    return 1;
  }
  std::printf("cross-check OK: %zu session fate(s) agree with the log\n",
              compared);
  return 0;
}
