// Crash demo — a guided tour of the recovery machinery, with log dumps.
//
// Shows what actually lands in the single physical log (§3): session starts,
// request receives, value-logged shared reads/writes with their dependency
// vectors and backward chains, checkpoints, the ARIES-style anchor — then
// crashes the MSP and narrates crash recovery (§4.3), and finally provokes
// an orphan (§4.1) to show the EOS record.
//
//   build/examples/crash_demo
#include <atomic>
#include <cstdio>
#include <thread>

#include "log/log_anchor.h"
#include "log/log_scanner.h"
#include "msp/msp.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

using namespace msplog;

namespace {

void DumpLog(SimDisk* disk, const std::string& file, const char* title) {
  printf("\n--- %s (%llu durable bytes) ---\n", title,
         (unsigned long long)disk->FileSize(file));
  LogScanner scanner(disk, file, 0, disk->FileSize(file));
  LogRecord r;
  int shown = 0;
  while (scanner.Next(&r).ok()) {
    printf("  %s\n", r.ToString().c_str());
    if (++shown >= 40) {
      printf("  ... (truncated)\n");
      break;
    }
  }
}

}  // namespace

int main() {
  SimEnvironment env(0.0);
  SimNetwork network(&env);
  SimDisk disk_a(&env, "disk-a");
  SimDisk disk_b(&env, "disk-b");
  DomainDirectory domains;
  domains.Assign("alpha", "demo-domain");
  domains.Assign("beta", "demo-domain");  // same domain: optimistic logging

  MspConfig ca, cb;
  ca.id = "alpha";
  cb.id = "beta";
  Msp alpha(&env, &network, &disk_a, &domains, ca);
  Msp beta(&env, &network, &disk_b, &domains, cb);

  // `hold` parks the method after the audit call (normal execution only),
  // so the demo can crash beta while alpha still holds an unflushed
  // dependency on it — the deterministic way to manufacture an orphan.
  static std::atomic<bool> hold{false};
  static std::atomic<bool> held{false};
  alpha.RegisterSharedVariable("balance", "1000");
  alpha.RegisterMethod(
      "transfer", [](ServiceContext* ctx, const Bytes& amount, Bytes* r) {
        Bytes bal;
        MSPLOG_RETURN_IF_ERROR(ctx->ReadShared("balance", &bal));
        long b = std::stol(bal) - std::stol(Bytes(amount));
        MSPLOG_RETURN_IF_ERROR(ctx->WriteShared("balance", std::to_string(b)));
        Bytes audit;
        MSPLOG_RETURN_IF_ERROR(ctx->Call("beta", "audit", amount, &audit));
        if (!ctx->in_replay()) {
          held.store(true);
          while (hold.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
        ctx->SetSessionVar("last_transfer", amount);
        *r = "balance=" + std::to_string(b) + " " + audit;
        return Status::OK();
      });
  beta.RegisterMethod("audit", [](ServiceContext*, const Bytes& a, Bytes* r) {
    *r = "(audited " + a + ")";
    return Status::OK();
  });

  if (!beta.Start().ok() || !alpha.Start().ok()) return 1;

  ClientEndpoint client(&env, &network, "teller");
  ClientSession session = client.StartSession("alpha");
  Bytes reply;
  printf("== normal execution: every nondeterministic event is logged ==\n");
  for (int i = 0; i < 2; ++i) {
    client.Call(&session, "transfer", "50", &reply);
    printf("transfer -> %s\n", reply.c_str());
  }
  alpha.log()->FlushAll();
  DumpLog(&disk_a, "alpha.log", "alpha's physical log");
  printf("\nnote: SharedRead records carry the value AND the variable's DV "
         "(value logging, §3.3);\nSharedWrite records carry prev= back-"
         "pointers (the undo chain); ReplyReceive\nrecords carry the "
         "callee's DV (optimistic intra-domain message, §3.1).\n");

  printf("\n== checkpoints bound the recovery scan (§3.4) ==\n");
  alpha.ForceCheckpoint(msplog::CheckpointTarget::Session(session.session_id));
  alpha.ForceCheckpoint(msplog::CheckpointTarget::Msp());
  LogAnchor anchor(&disk_a, "alpha.anchor");
  AnchorData ad;
  anchor.Read(&ad);
  printf("anchor: MSP checkpoint at LSN %llu, epoch %u\n",
         (unsigned long long)ad.msp_checkpoint_lsn, ad.epoch);

  printf("\n== crash & recovery (§4.3) ==\n");
  alpha.Crash();
  printf("alpha crashed. restarting...\n");
  if (!alpha.Start().ok()) return 1;
  printf("alpha recovered: epoch %u, analysis scan %.2f model ms, "
         "balance=%s\n", alpha.epoch(),
         alpha.LastRecoveryTimeline().analysis_scan_ms,
         alpha.PeekSharedValue("balance")->c_str());
  client.Call(&session, "transfer", "50", &reply);
  printf("transfer after recovery -> %s\n", reply.c_str());

  printf("\n== orphan recovery (§4.1): beta dies holding unflushed state ==\n");
  // beta's records for the next audit call are only in its volatile buffer
  // (optimistic intra-domain exchange, never flushed). We park alpha's
  // method right after the audit reply, kill beta, and release: alpha's
  // reply flush fails, its session is an orphan, recovery cuts at the
  // orphan ReplyReceive record (writing an EOS record) and re-executes the
  // request live against the recovered beta.
  hold.store(true);
  held.store(false);
  std::thread killer([&] {
    while (!held.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    beta.Crash();
    beta.Start();
    hold.store(false);
  });
  client.Call(&session, "transfer", "50", &reply);
  killer.join();
  printf("transfer during beta's crash -> %s\n", reply.c_str());
  printf("orphans detected so far: %llu\n",
         (unsigned long long)env.stats().orphans_detected.load());
  alpha.log()->FlushAll();
  DumpLog(&disk_a, "alpha.log", "alpha's log after orphan recovery");
  printf("\n(an Eos record pointing back at the orphan record means this "
         "session's skipped\nsuffix stays invisible to every future "
         "recovery, §4.1)\n");

  printf("\nfinal balance: %s (started at 1000, 4 transfers of 50)\n",
         alpha.PeekSharedValue("balance")->c_str());

  alpha.Shutdown();
  beta.Shutdown();
  return 0;
}
