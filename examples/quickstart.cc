// Quickstart — the smallest useful msplog program.
//
// One recoverable middleware server with a session counter. We run a few
// requests, kill the server abruptly, restart it, and show that log-based
// recovery reconstructed the session state and that a duplicated request is
// answered from the buffered reply rather than re-executed: exactly-once
// execution, transparent to the service method.
//
//   build/examples/quickstart
#include <chrono>
#include <cstdio>
#include <thread>

#include "msp/msp.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

using namespace msplog;

int main() {
  // Simulation substrate: instant time, one disk, one in-process network.
  SimEnvironment env(/*time_scale=*/0.0);
  SimNetwork network(&env);
  SimDisk disk(&env, "disk0");
  DomainDirectory domains;
  domains.Assign("server", "domainA");

  // A middleware server process with one service method.
  MspConfig config;
  config.id = "server";
  Msp server(&env, &network, &disk, &domains, config);
  server.RegisterMethod(
      "increment", [](ServiceContext* ctx, const Bytes&, Bytes* result) {
        Bytes current = ctx->GetSessionVar("count");   // private session state
        int n = current.empty() ? 0 : std::stoi(current);
        ctx->SetSessionVar("count", std::to_string(n + 1));
        *result = std::to_string(n + 1);
        return Status::OK();
      });
  if (!server.Start().ok()) return 1;
  printf("server started (epoch %u)\n", server.epoch());

  // A client with one session. The client resends until it gets a reply;
  // the server deduplicates by request sequence number.
  ClientEndpoint client(&env, &network, "client");
  ClientSession session = client.StartSession("server");
  Bytes reply;
  for (int i = 0; i < 3; ++i) {
    if (!client.Call(&session, "increment", "", &reply).ok()) return 1;
    printf("increment -> %s\n", reply.c_str());
  }

  printf("\n*** crash! volatile state gone, durable log survives ***\n\n");
  server.Crash();
  if (!server.Start().ok()) return 1;
  // Session replay runs in parallel with new traffic; give it a beat so the
  // statistics below are settled (requests would be served correctly either
  // way — arrivals during recovery just get Busy and are retried).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  printf("server recovered (epoch %u), %llu requests replayed\n",
         server.epoch(),
         (unsigned long long)env.stats().requests_replayed.load());

  // The session continues exactly where it left off...
  if (!client.Call(&session, "increment", "", &reply).ok()) return 1;
  printf("increment -> %s   (state reconstructed by replay)\n", reply.c_str());

  // ...and a duplicate of an already-executed request is NOT re-executed.
  session.next_seqno -= 1;
  if (!client.Call(&session, "increment", "", &reply).ok()) return 1;
  printf("duplicate of the same request -> %s   (buffered reply, "
         "exactly-once)\n", reply.c_str());

  server.Shutdown();
  printf("\ndone.\n");
  return 0;
}
