// Shopping cart — shared in-memory state across sessions (§1.3, §3.3).
//
// A storefront MSP keeps each customer's cart in private session state and
// the store-wide inventory in shared variables. This is exactly the design
// the paper advocates: shared state lives in recoverable server memory
// instead of round-tripping to a database on every request.
//
// Several customers shop concurrently; the server crashes in the middle;
// after recovery every cart is intact and the inventory equals the initial
// stock minus exactly the items sold — no decrement lost, none duplicated.
//
//   build/examples/shopping_cart
#include <cstdio>
#include <thread>
#include <vector>

#include "msp/msp.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

using namespace msplog;

namespace {

void RegisterStore(Msp* store) {
  // Inventory: shared variables, value-logged on every access.
  store->RegisterSharedVariable("stock/widget", "100");
  store->RegisterSharedVariable("stock/gadget", "50");

  // add_to_cart <item>: reserve one unit and remember it in the cart.
  // The decrement uses UpdateShared — an atomic read-modify-write under one
  // lock hold — because concurrent sessions reserving the same item with a
  // separate ReadShared + WriteShared pair could lose decrements (§2.2
  // locks cover single accesses only).
  store->RegisterMethod(
      "add_to_cart", [](ServiceContext* ctx, const Bytes& item, Bytes* result) {
        Bytes after;
        MSPLOG_RETURN_IF_ERROR(ctx->UpdateShared(
            "stock/" + item,
            [](const Bytes& cur) {
              int stock = std::stoi(cur);
              return stock > 0 ? std::to_string(stock - 1) : cur;
            },
            &after));
        Bytes cart = ctx->GetSessionVar("cart");
        cart += item + ";";
        ctx->SetSessionVar("cart", cart);
        *result = "reserved " + item + ", cart=" + cart;
        return Status::OK();
      });

  store->RegisterMethod("view_cart",
                        [](ServiceContext* ctx, const Bytes&, Bytes* result) {
                          *result = ctx->GetSessionVar("cart");
                          return Status::OK();
                        });
}

}  // namespace

int main() {
  SimEnvironment env(0.0);
  SimNetwork network(&env);
  SimDisk disk(&env, "store-disk");
  DomainDirectory domains;
  domains.Assign("store", "shop-domain");

  MspConfig config;
  config.id = "store";
  config.thread_pool_size = 4;
  Msp store(&env, &network, &disk, &domains, config);
  RegisterStore(&store);
  if (!store.Start().ok()) return 1;

  constexpr int kCustomers = 4;
  constexpr int kWidgetsEach = 5;
  constexpr int kGadgetsEach = 2;

  printf("%d customers shopping concurrently...\n", kCustomers);
  std::vector<std::thread> shoppers;
  for (int c = 0; c < kCustomers; ++c) {
    shoppers.emplace_back([&, c] {
      ClientEndpoint customer(&env, &network, "customer" + std::to_string(c));
      ClientSession session = customer.StartSession("store");
      Bytes reply;
      for (int i = 0; i < kWidgetsEach; ++i) {
        customer.Call(&session, "add_to_cart", "widget", &reply);
      }
      for (int i = 0; i < kGadgetsEach; ++i) {
        customer.Call(&session, "add_to_cart", "gadget", &reply);
      }
    });
  }
  for (auto& t : shoppers) t.join();

  printf("stock after shopping: widget=%s gadget=%s\n",
         store.PeekSharedValue("stock/widget")->c_str(),
         store.PeekSharedValue("stock/gadget")->c_str());

  printf("\n*** the store crashes ***\n\n");
  store.Crash();
  if (!store.Start().ok()) return 1;

  // Shared state was rolled forward from the log; carts replayed in
  // parallel from their position streams.
  printf("recovered stock:     widget=%s gadget=%s\n",
         store.PeekSharedValue("stock/widget")->c_str(),
         store.PeekSharedValue("stock/gadget")->c_str());
  int widget = std::stoi(*store.PeekSharedValue("stock/widget"));
  int gadget = std::stoi(*store.PeekSharedValue("stock/gadget"));
  bool exact = widget == 100 - kCustomers * kWidgetsEach &&
               gadget == 50 - kCustomers * kGadgetsEach;
  printf("inventory conservation: %s (expected widget=%d gadget=%d)\n",
         exact ? "EXACT" : "VIOLATED", 100 - kCustomers * kWidgetsEach,
         50 - kCustomers * kGadgetsEach);

  // Every customer's cart survived too.
  ClientEndpoint checker(&env, &network, "customer0");
  ClientSession s0;
  s0.msp = "store";
  s0.session_id = "customer0/se1";
  s0.next_seqno = kWidgetsEach + kGadgetsEach + 1;
  Bytes cart;
  if (checker.Call(&s0, "view_cart", "", &cart).ok()) {
    printf("customer0 cart after recovery: %s\n", cart.c_str());
  }

  store.Shutdown();
  return exact ? 0 : 1;
}
