// Travel booking — multi-MSP interaction across service-domain boundaries
// (§1.3, §2.1, §3.1).
//
// A travel-agency MSP and a payments MSP run in one service domain (same
// provider, fast LAN: locally OPTIMISTIC logging — DV-tagged messages, no
// flush per hop). An airline MSP belongs to a different provider and hence
// a different service domain: messages to it are PESSIMISTICALLY logged
// (distributed log flush before send), which keeps recovery independent
// across organizations.
//
// We book trips while both the payments MSP and the airline MSP crash, and
// verify that every booking settled exactly once on both sides.
//
//   build/examples/travel_booking
#include <cstdio>

#include "msp/msp.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

using namespace msplog;

int main() {
  SimEnvironment env(0.0);
  SimNetwork network(&env);
  SimDisk agency_disk(&env, "agency-disk");
  SimDisk payments_disk(&env, "payments-disk");
  SimDisk airline_disk(&env, "airline-disk");

  DomainDirectory domains;
  domains.Assign("agency", "travelcorp");
  domains.Assign("payments", "travelcorp");  // same provider: optimistic
  domains.Assign("airline", "skyways");      // other provider: pessimistic

  MspConfig agency_cfg, payments_cfg, airline_cfg;
  agency_cfg.id = "agency";
  payments_cfg.id = "payments";
  airline_cfg.id = "airline";

  Msp agency(&env, &network, &agency_disk, &domains, agency_cfg);
  Msp payments(&env, &network, &payments_disk, &domains, payments_cfg);
  Msp airline(&env, &network, &airline_disk, &domains, airline_cfg);

  // Airline: seat inventory in shared state, one booking method.
  airline.RegisterSharedVariable("seats", "20");
  airline.RegisterMethod(
      "reserve_seat", [](ServiceContext* ctx, const Bytes& who, Bytes* r) {
        Bytes left;
        MSPLOG_RETURN_IF_ERROR(ctx->UpdateShared(
            "seats",
            [](const Bytes& cur) {
              int n = std::stoi(cur);
              return n > 0 ? std::to_string(n - 1) : cur;
            },
            &left));
        *r = "seat-" + std::to_string(20 - std::stoi(left)) + " for " + who;
        return Status::OK();
      });

  // Payments: total charged volume in shared state.
  payments.RegisterSharedVariable("charged_total", "0");
  payments.RegisterMethod(
      "charge", [](ServiceContext* ctx, const Bytes& amount, Bytes* r) {
        Bytes amt(amount);
        MSPLOG_RETURN_IF_ERROR(ctx->UpdateShared(
            "charged_total", [amt](const Bytes& cur) {
              return std::to_string(std::stol(cur) + std::stol(amt));
            }));
        *r = "charged " + amt;
        return Status::OK();
      });

  // Agency: orchestrates seat + payment, remembers itinerary per session.
  agency.RegisterMethod(
      "book_trip", [](ServiceContext* ctx, const Bytes& who, Bytes* r) {
        Bytes seat, receipt;
        // Cross-domain call: the agency's log is flushed before this
        // request leaves the "travelcorp" domain.
        MSPLOG_RETURN_IF_ERROR(ctx->Call("airline", "reserve_seat", who, &seat));
        // Intra-domain call: optimistic, DV attached, no flush.
        MSPLOG_RETURN_IF_ERROR(ctx->Call("payments", "charge", "199", &receipt));
        Bytes itinerary = ctx->GetSessionVar("itinerary");
        itinerary += seat + "|";
        ctx->SetSessionVar("itinerary", itinerary);
        *r = seat + " (" + receipt + ")";
        return Status::OK();
      });

  if (!airline.Start().ok() || !payments.Start().ok() ||
      !agency.Start().ok()) {
    return 1;
  }

  ClientEndpoint traveler(&env, &network, "traveler");
  ClientSession session = traveler.StartSession("agency");
  Bytes reply;

  constexpr int kTrips = 6;
  for (int i = 0; i < kTrips; ++i) {
    if (i == 2) {
      printf("*** payments MSP crashes (intra-domain orphan recovery) ***\n");
      payments.Crash();
      if (!payments.Start().ok()) return 1;
    }
    if (i == 4) {
      printf("*** airline MSP crashes (cross-domain: agency unaffected) ***\n");
      airline.Crash();
      if (!airline.Start().ok()) return 1;
    }
    if (!traveler.Call(&session, "book_trip", "traveler", &reply).ok()) {
      printf("booking %d failed\n", i + 1);
      return 1;
    }
    printf("booking %d: %s\n", i + 1, reply.c_str());
  }

  int seats_left = std::stoi(*airline.PeekSharedValue("seats"));
  long charged = std::stol(*payments.PeekSharedValue("charged_total"));
  printf("\nseats left:    %d (expected %d)\n", seats_left, 20 - kTrips);
  printf("total charged: %ld (expected %d)\n", charged, kTrips * 199);
  bool exact = seats_left == 20 - kTrips && charged == kTrips * 199L;
  printf("exactly-once across both domains: %s\n", exact ? "YES" : "NO");

  printf("\nmessage overhead: %llu DV entries attached (only on "
         "intra-domain messages)\n",
         (unsigned long long)env.stats().dv_entries_attached.load());

  agency.Shutdown();
  payments.Shutdown();
  airline.Shutdown();
  return exact ? 0 : 1;
}
