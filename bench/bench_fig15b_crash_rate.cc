// E4 — Figure 15(b) (§5.4): throughput versus crash rate for locally
// optimistic and pessimistic logging, session checkpoint threshold fixed.
//
// The paper injects one MSP2 crash per N end-client requests (N = 2000,
// 1500, 1000 over 20K requests). We run a 1:10-scaled experiment (N = 200,
// 150, 100 over 1200 requests; threshold 96 KB ≈ 1 MB / 10) so recovery
// work per crash is proportionally identical.
//
// Paper shape: LoOptimistic above Pessimistic at every rate; throughput
// decreases as crashes become more frequent; LoOptimistic declines slightly
// faster because crashes additionally orphan SE1 at MSP1 (§5.4).
#include <cstdio>

#include "bench_util.h"
#include "harness/paper_workload.h"

namespace msplog {
namespace {

constexpr double kTimeScale = 0.05;
constexpr int kRequests = 1200;
constexpr uint64_t kThreshold = 96ull << 10;

double MeasureThroughput(PaperConfig config, int crash_every,
                         uint64_t* crashes, obs::OutageReport* outage) {
  PaperWorkloadOptions opts;
  opts.config = config;
  opts.time_scale = kTimeScale;
  opts.session_checkpoint_threshold_bytes = kThreshold;
  PaperWorkload w(opts);
  if (!w.Start().ok()) return -1;
  RunResult r = w.RunSingleClient(kRequests, crash_every);
  *crashes = w.crashes_injected();
  // The injected crashes hit MSP2; its outage report (from the last
  // crash/recovery cycle) is the observatory's view of the damage. Captured
  // before Shutdown: shutdown is a clean stop, not a crash, and must not
  // perturb the report.
  *outage = w.msp2()->LastOutageReport();
  w.Shutdown();
  return r.throughput_rps;
}

void Run() {
  bench::Header("bench_fig15b_crash_rate",
                "Fig. 15(b) — throughput (req/s) vs crash rate, "
                "LoOptimistic vs Pessimistic (1:10-scaled rates)");

  struct Rate {
    const char* label;
    int crash_every;
  };
  const Rate rates[] = {
      {"0", 0}, {"1/2000", 200}, {"1/1500", 150}, {"1/1000", 100}};

  bench::Table table({"crash rate", "LoOptimistic", "Pessimistic",
                      "crashes(Lo)", "crashes(Pe)"});
  double lo[4], pe[4];
  for (int i = 0; i < 4; ++i) {
    uint64_t clo = 0, cpe = 0;
    obs::OutageReport olo, ope;
    lo[i] = MeasureThroughput(PaperConfig::kLoOptimistic,
                              rates[i].crash_every, &clo, &olo);
    pe[i] = MeasureThroughput(PaperConfig::kPessimistic,
                              rates[i].crash_every, &cpe, &ope);
    table.AddRow({rates[i].label, bench::Fmt(lo[i], 1), bench::Fmt(pe[i], 1),
                  std::to_string(clo), std::to_string(cpe)});
    struct Side {
      const char* config;
      double rps;
      uint64_t crashes;
      const obs::OutageReport* outage;
    };
    const Side sides[] = {{"LoOptimistic", lo[i], clo, &olo},
                          {"Pessimistic", pe[i], cpe, &ope}};
    for (const Side& s : sides) {
      bench::Json j;
      j.Add("config", s.config)
          .Add("rate", rates[i].label)
          .Add("crash_every", rates[i].crash_every)
          .Add("throughput_rps", s.rps)
          .Add("crashes", s.crashes)
          .AddRaw("outage_report", s.outage->ToJson());
      bench::EmitJson("fig15b_crash_rate", j);
    }
  }
  table.Print();

  printf("\nshape checks:\n");
  bool lo_above = true, lo_declines = true, pe_declines = true;
  for (int i = 0; i < 4; ++i) lo_above &= lo[i] > pe[i];
  lo_declines = lo[3] < lo[0];
  pe_declines = pe[3] < pe[0];
  printf("  [%s] LoOptimistic above Pessimistic at every crash rate\n",
         lo_above ? "PASS" : "FAIL");
  printf("  [%s] LoOptimistic throughput declines with crash rate\n",
         lo_declines ? "PASS" : "FAIL");
  printf("  [%s] Pessimistic throughput declines with crash rate\n",
         pe_declines ? "PASS" : "FAIL");
  double lo_drop = (lo[0] - lo[3]) / lo[0];
  double pe_drop = (pe[0] - pe[3]) / pe[0];
  printf("  decline at 1/1000: LoOptimistic %.1f%%, Pessimistic %.1f%% "
         "(paper: LoOptimistic declines a bit more — orphan recovery)\n",
         lo_drop * 100, pe_drop * 100);
}

}  // namespace
}  // namespace msplog

int main() {
  msplog::Run();
  return 0;
}
