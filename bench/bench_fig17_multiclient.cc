// E7 — Figure 17 (§5.5): throughput and response time versus number of
// concurrent end clients, for both logging methods, with and without batch
// flushing (group commit, 8 ms timeout).
//
// Paper shape: without batch flushing throughput peaks around 4 clients
// (the log disk saturates); batch flushing lifts the peak (~6 clients) and
// helps Pessimistic (~30%) much more than LoOptimistic (~8%) because
// Pessimistic issues three times as many flushes; LoOptimistic stays ~30%
// above Pessimistic even with batching; response time rises with load and
// batching lowers it beyond ~3 clients.
#include <cstdio>

#include "bench_util.h"
#include "harness/paper_workload.h"

namespace msplog {
namespace {

constexpr double kTimeScale = 0.05;
constexpr int kRequestsPerClient = 60;

struct Point {
  double throughput = 0;
  double avg_ms = 0;
};

Point Measure(PaperConfig config, bool batch, int clients) {
  PaperWorkloadOptions opts;
  opts.config = config;
  opts.time_scale = kTimeScale;
  opts.batch_flush = batch;
  opts.batch_timeout_ms = 8.0;
  // §5.5: the paper's servers were single-CPU machines that ran at ~90%
  // utilization with 4 clients; issuing each physical log write costs CPU,
  // which is why batch flushing "can reduce both CPU and disk utilization
  // simultaneously". Model both effects.
  opts.single_core_cpu = true;
  opts.method_compute_ms = 8.0;
  opts.cpu_per_flush_ms = 2.5;
  PaperWorkload w(opts);
  Point p;
  if (!w.Start().ok()) return p;
  RunResult r = w.RunMultiClient(clients, kRequestsPerClient);
  w.Shutdown();
  p.throughput = r.throughput_rps;
  p.avg_ms = r.avg_response_ms;
  return p;
}

void Run() {
  bench::Header("bench_fig17_multiclient",
                "Fig. 17 — throughput (req/s) and response time (ms) vs "
                "number of clients, with/without batch flushing");

  const int clients[] = {1, 2, 4, 8, 16, 24, 32};
  constexpr int kN = 7;
  Point pe_nb[kN], pe_b[kN], lo_nb[kN], lo_b[kN];
  for (int i = 0; i < kN; ++i) {
    pe_nb[i] = Measure(PaperConfig::kPessimistic, false, clients[i]);
    pe_b[i] = Measure(PaperConfig::kPessimistic, true, clients[i]);
    lo_nb[i] = Measure(PaperConfig::kLoOptimistic, false, clients[i]);
    lo_b[i] = Measure(PaperConfig::kLoOptimistic, true, clients[i]);
  }

  bench::Table tput({"clients", "Pess-NoBatch", "Pess-Batch", "LoOpt-NoBatch",
                     "LoOpt-Batch"});
  for (int i = 0; i < kN; ++i) {
    tput.AddRow({std::to_string(clients[i]), bench::Fmt(pe_nb[i].throughput, 1),
                 bench::Fmt(pe_b[i].throughput, 1),
                 bench::Fmt(lo_nb[i].throughput, 1),
                 bench::Fmt(lo_b[i].throughput, 1)});
  }
  printf("\nthroughput (requests per model second):\n");
  tput.Print();

  bench::Table resp({"clients", "Pess-NoBatch", "Pess-Batch", "LoOpt-NoBatch",
                     "LoOpt-Batch"});
  for (int i = 0; i < kN; ++i) {
    resp.AddRow({std::to_string(clients[i]), bench::Fmt(pe_nb[i].avg_ms, 1),
                 bench::Fmt(pe_b[i].avg_ms, 1),
                 bench::Fmt(lo_nb[i].avg_ms, 1),
                 bench::Fmt(lo_b[i].avg_ms, 1)});
  }
  printf("\navg response time (model ms):\n");
  resp.Print();

  auto peak = [&](Point* series) {
    double best = 0;
    for (int i = 0; i < kN; ++i) best = std::max(best, series[i].throughput);
    return best;
  };
  double pe_nb_peak = peak(pe_nb), pe_b_peak = peak(pe_b);
  double lo_nb_peak = peak(lo_nb), lo_b_peak = peak(lo_b);

  printf("\nshape checks:\n");
  auto check = [](const char* what, bool ok) {
    printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  };
  check("batching raises Pessimistic peak throughput",
        pe_b_peak > pe_nb_peak);
  double pe_gain = (pe_b_peak - pe_nb_peak) / pe_nb_peak * 100;
  double lo_gain = (lo_b_peak - lo_nb_peak) / lo_nb_peak * 100;
  printf("  batch-flush gain: Pessimistic +%.0f%% (paper ~30%%), "
         "LoOptimistic %+.0f%% (paper ~8%%)\n", pe_gain, lo_gain);
  check("Pessimistic benefits more from batching than LoOptimistic",
        pe_gain > lo_gain);
  check("LoOptimistic+batch peak above Pessimistic+batch peak",
        lo_b_peak > pe_b_peak);
  check("throughput saturates (peak not at 1 client)",
        pe_nb[0].throughput < pe_nb_peak);
  check("response time grows with clients (Pess-NoBatch)",
        pe_nb[kN - 1].avg_ms > pe_nb[0].avg_ms);
}

}  // namespace
}  // namespace msplog

int main() {
  msplog::Run();
  return 0;
}
