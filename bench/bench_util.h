// Shared console utilities for the reproduction benchmarks: aligned tables,
// paper-vs-measured rows, and consistent run headers. Each bench binary
// regenerates one table or figure from §5 of "Log-Based Recovery for
// Middleware Servers" (SIGMOD 2007); absolute numbers differ from the
// paper's testbed, the *shape* (ordering, growth, crossovers) is the target.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace msplog {
namespace bench {

inline void Header(const std::string& title, const std::string& paper_ref) {
  printf("\n==============================================================\n");
  printf("%s\n", title.c_str());
  printf("reproduces: %s\n", paper_ref.c_str());
  printf("==============================================================\n");
}

class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> width(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      printf("  ");
      for (size_t c = 0; c < columns_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        printf("%-*s  ", static_cast<int>(width[c]), cell.c_str());
      }
      printf("\n");
    };
    print_row(columns_);
    std::vector<std::string> sep;
    for (size_t c = 0; c < columns_.size(); ++c) {
      sep.push_back(std::string(width[c], '-'));
    }
    print_row(sep);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int prec = 2) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

}  // namespace bench
}  // namespace msplog
