// Shared console utilities for the reproduction benchmarks: aligned tables,
// paper-vs-measured rows, and consistent run headers. Each bench binary
// regenerates one table or figure from §5 of "Log-Based Recovery for
// Middleware Servers" (SIGMOD 2007); absolute numbers differ from the
// paper's testbed, the *shape* (ordering, growth, crossovers) is the target.
// Machine-readable results: each bench binary also emits one line
//
//   BENCH_JSON {"bench":"...", ...}
//
// (via Json + EmitJson below) so scripts — scripts/check_bench_json.py in
// CTest, plotting notebooks, CI trend trackers — can scrape structured
// numbers out of the human-readable report without parsing tables.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace msplog {
namespace bench {

inline void Header(const std::string& title, const std::string& paper_ref) {
  printf("\n==============================================================\n");
  printf("%s\n", title.c_str());
  printf("reproduces: %s\n", paper_ref.c_str());
  printf("==============================================================\n");
}

class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print() const {
    std::vector<size_t> width(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      printf("  ");
      for (size_t c = 0; c < columns_.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        printf("%-*s  ", static_cast<int>(width[c]), cell.c_str());
      }
      printf("\n");
    };
    print_row(columns_);
    std::vector<std::string> sep;
    for (size_t c = 0; c < columns_.size(); ++c) {
      sep.push_back(std::string(width[c], '-'));
    }
    print_row(sep);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double v, int prec = 2) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

/// Minimal insertion-ordered JSON object builder. Values added with AddRaw
/// must already be valid JSON (nested objects, arrays, numbers).
class Json {
 public:
  Json& Add(const std::string& key, const std::string& value) {
    return AddRaw(key, "\"" + obs::JsonEscape(value) + "\"");
  }
  Json& Add(const std::string& key, const char* value) {
    return Add(key, std::string(value));
  }
  Json& Add(const std::string& key, double value) {
    char buf[64];
    snprintf(buf, sizeof(buf), "%.6g", value);
    return AddRaw(key, buf);
  }
  Json& Add(const std::string& key, uint64_t value) {
    return AddRaw(key, std::to_string(value));
  }
  Json& Add(const std::string& key, int value) {
    return AddRaw(key, std::to_string(value));
  }
  Json& Add(const std::string& key, bool value) {
    return AddRaw(key, value ? "true" : "false");
  }
  /// Full quantile summary of a histogram snapshot.
  Json& Add(const std::string& key, const obs::Histogram::Snapshot& s) {
    return AddRaw(key, obs::SnapshotJson(s));
  }
  Json& AddRaw(const std::string& key, const std::string& json_value) {
    fields_.push_back({key, json_value});
    return *this;
  }

  std::string Str() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i) out += ",";
      out += "\"" + obs::JsonEscape(fields_[i].first) +
             "\":" + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Fold event-tracer ring health into a BENCH_JSON body: the drop count
/// always, plus an explicit warning field (and a stderr note) when the ring
/// overflowed — a dropped-event trace is silently truncated and should not
/// be trusted as a complete causal record.
inline void AddTracerHealth(Json* j, uint64_t dropped) {
  j->Add("tracer_dropped", dropped);
  if (dropped > 0) {
    j->Add("tracer_warning",
           "event tracer ring overflowed; trace dump is truncated");
    fprintf(stderr,
            "WARNING: event tracer dropped %llu events (ring overflow); "
            "trace dump is truncated\n",
            static_cast<unsigned long long>(dropped));
  }
}

/// True when this binary is instrumented by TSan/ASan: model time is
/// wall-clock derived, and instrumentation slows everything ~10-20x, so
/// timing metrics from such a build are not comparable to native baselines.
/// Mirrors SimEnvironment::kFastWaitFloorMs's detection.
inline constexpr bool UnderSanitizer() {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  return true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

/// Print the canonical machine-readable line for bench `name`. Every blob
/// carries `sanitized` so the compare_bench oracle can skip its wall-time
/// tolerance bands on instrumented builds (exact counters still compare).
inline void EmitJson(const std::string& name, const Json& body) {
  Json wrapped;
  wrapped.Add("bench", name);
  wrapped.Add("sanitized", UnderSanitizer());
  std::string inner = body.Str();
  // splice: {"bench":"..."} + body fields
  std::string head = wrapped.Str();
  head.pop_back();  // drop '}'
  if (inner.size() > 2) head += "," + inner.substr(1);
  else head += "}";
  printf("BENCH_JSON %s\n", head.c_str());
  fflush(stdout);
}

}  // namespace bench
}  // namespace msplog
