// Log-composition analysis — what value logging actually costs (§3.3).
//
// The paper chooses VALUE logging for shared-variable access over the
// access-ORDER logging of the record/replay literature: reads log the value
// plus the variable's DV (so a recovering reader needs nobody), writes log
// the value, the writer's DV and a chain pointer (so orphan variables are
// undone in place, avoiding writer rollbacks and thread-pool deadlocks).
// The price is bytes: an order-only record would carry just the variable id
// and a position. This bench runs the Fig. 13 workload, scans the physical
// log, breaks it down by record type, and quantifies the value-logging
// overhead the paper argues is "modest" for small, infrequently accessed
// shared state.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "harness/paper_workload.h"
#include "log/log_scanner.h"

namespace msplog {
namespace {

struct TypeStats {
  uint64_t count = 0;
  uint64_t bytes = 0;        // encoded body bytes
  uint64_t value_bytes = 0;  // payload portion
  uint64_t dv_bytes = 0;     // dependency-vector portion
};

void Run() {
  bench::Header("bench_log_composition",
                "§3.3 value logging — physical-log composition on the "
                "Fig. 13 workload (200 requests, LoOptimistic)");

  PaperWorkloadOptions opts;
  opts.config = PaperConfig::kLoOptimistic;
  opts.time_scale = 0.0;
  opts.checkpoint_daemon = false;
  PaperWorkload w(opts);
  if (!w.Start().ok()) return;
  RunResult r = w.RunSingleClient(200);
  (void)r;
  w.msp1()->log()->FlushAll();

  std::map<LogRecordType, TypeStats> stats;
  uint64_t total_bytes = 0;
  {
    SimDisk* disk = w.msp1()->log()->disk();
    LogScanner scanner(disk, "msp1.log", 0, disk->FileSize("msp1.log"));
    LogRecord rec;
    while (scanner.Next(&rec).ok()) {
      TypeStats& t = stats[rec.type];
      Bytes body = rec.Encode();
      t.count++;
      t.bytes += body.size();
      t.value_bytes += rec.payload.size();
      if (rec.has_dv) t.dv_bytes += rec.dv.WireSize();
      total_bytes += body.size();
    }
  }
  w.Shutdown();

  bench::Table table({"record type", "count", "bytes", "value bytes",
                      "DV bytes", "% of log"});
  for (const auto& [type, t] : stats) {
    table.AddRow({LogRecordTypeName(type), std::to_string(t.count),
                  std::to_string(t.bytes), std::to_string(t.value_bytes),
                  std::to_string(t.dv_bytes),
                  bench::Fmt(100.0 * t.bytes / total_bytes, 1) + "%"});
  }
  table.Print();

  // Value logging vs hypothetical access-order logging for shared state:
  // an order record needs only the variable id + a small header (~24 B).
  const TypeStats& reads = stats[LogRecordType::kSharedRead];
  const TypeStats& writes = stats[LogRecordType::kSharedWrite];
  uint64_t value_logged = reads.bytes + writes.bytes;
  uint64_t order_only = (reads.count + writes.count) * 24;
  printf("\nshared-state logging: value-logged %llu B vs ~%llu B for "
         "access-order records (%.1fx)\n",
         (unsigned long long)value_logged, (unsigned long long)order_only,
         double(value_logged) / order_only);
  printf("as a share of the whole log, value logging of shared state costs "
         "%.1f%% extra\n",
         100.0 * (value_logged - order_only) / total_bytes);
  printf("\nwhat the extra bytes buy (§3.3, §4.2):\n"
         "  - reader recovery never rolls back writers (values come from "
         "the log);\n"
         "  - orphan variables are undone in place along the write chain;\n"
         "  - no thread-pool deadlocks waiting for other sessions' replay.\n");

  double per_access =
      double(value_logged) / (reads.count + writes.count);
  printf("\nper shared access: %.0f B logged — well under one 512 B "
         "sector, so the\nvalue-logged bytes never add a sector to a flush "
         "on their own. The paper's\n'modest overhead' claim assumes "
         "infrequent access; the Fig. 13 workload is\ndeliberately "
         "shared-heavy (4 accesses per request), which is why shared\n"
         "records dominate this log. Scale the share down linearly for "
         "sparser access.\n", per_access);

  printf("\nshape checks:\n");
  bool bounded = per_access < 512;
  printf("  [%s] value logging costs < 1 sector per shared access "
         "(128 B variables)\n", bounded ? "PASS" : "FAIL");
  bool dv_small = reads.dv_bytes + writes.dv_bytes < total_bytes / 4;
  printf("  [%s] DV bytes in shared-state records are a minor component\n",
         dv_small ? "PASS" : "FAIL");
}

}  // namespace
}  // namespace msplog

int main() {
  msplog::Run();
  return 0;
}
