// DV overhead versus service-domain size (§3.1): "When the number of
// processes is large, the size of DVs becomes large, increasing message
// size" — the reason service domains bound optimistic logging.
//
// We build a call chain of N MSPs inside ONE domain (client → m1 → … → mN)
// and measure the DV entries and bytes attached per intra-domain message,
// the distributed-flush fan-out at the reply to the end client, and the
// response time — then the same chain split into N single-MSP domains
// (pure pessimistic: no DVs, but a flush on every hop).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "msp/msp.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

constexpr double kTimeScale = 0.05;
constexpr int kRequests = 60;

struct Result {
  double avg_dv_entries_per_msg = 0;
  double dv_bytes_per_request = 0;
  double flush_legs_per_request = 0;
  double avg_response_ms = 0;
};

Result Measure(int chain_len, bool one_domain) {
  SimEnvironment env(kTimeScale);
  SimNetwork net(&env);
  net.set_default_one_way_ms(0.5);
  DomainDirectory dir;
  std::vector<std::unique_ptr<SimDisk>> disks;
  std::vector<std::unique_ptr<Msp>> msps;
  for (int i = 0; i < chain_len; ++i) {
    std::string id = "m" + std::to_string(i + 1);
    dir.Assign(id, one_domain ? "dom" : "dom" + std::to_string(i));
    disks.push_back(std::make_unique<SimDisk>(&env, "disk" + id));
    MspConfig c;
    c.id = id;
    c.checkpoint_daemon = false;
    msps.push_back(std::make_unique<Msp>(&env, &net, disks.back().get(),
                                         &dir, c));
  }
  for (int i = 0; i < chain_len; ++i) {
    Msp* msp = msps[i].get();
    if (i + 1 < chain_len) {
      std::string next = "m" + std::to_string(i + 2);
      msp->RegisterMethod(
          "hop", [next](ServiceContext* ctx, const Bytes& a, Bytes* r) {
            return ctx->Call(next, "hop", a, r);
          });
    } else {
      msp->RegisterMethod("hop", [](ServiceContext* ctx, const Bytes&,
                                    Bytes* r) {
        Bytes cur = ctx->GetSessionVar("n");
        int n = cur.empty() ? 0 : std::stoi(cur);
        ctx->SetSessionVar("n", std::to_string(n + 1));
        *r = std::to_string(n + 1);
        return Status::OK();
      });
    }
  }
  Result out;
  for (int i = chain_len - 1; i >= 0; --i) {
    if (!msps[i]->Start().ok()) return out;
  }
  ClientEndpoint client(&env, &net, "cli");
  auto session = client.StartSession("m1");
  Bytes reply;
  // Warm up (session start records).
  (void)client.Call(&session, "hop", "x", &reply);
  auto before = env.stats().Snap();
  double sum_ms = 0;
  for (int i = 0; i < kRequests; ++i) {
    CallStats cs;
    if (!client.Call(&session, "hop", "x", &reply, &cs).ok()) return out;
    sum_ms += cs.response_model_ms;
  }
  auto after = env.stats().Snap();
  uint64_t msgs = after.messages_sent - before.messages_sent;
  uint64_t dv_entries = after.dv_entries_attached - before.dv_entries_attached;
  out.avg_dv_entries_per_msg = msgs ? double(dv_entries) / msgs : 0;
  // Each DV entry costs ~13 B + the MSP name on the wire.
  out.dv_bytes_per_request = double(dv_entries) * 15 / kRequests;
  out.flush_legs_per_request =
      double(after.disk_flushes - before.disk_flushes) / kRequests;
  out.avg_response_ms = sum_ms / kRequests;
  for (auto& m : msps) m->Shutdown();
  return out;
}

void Run() {
  bench::Header("bench_dv_overhead",
                "§3.1 — dependency-vector overhead vs service-domain size "
                "(call chain of N MSPs)");

  bench::Table table({"chain", "domains", "DV entries/msg", "DV B/request",
                      "flush legs/request", "response(ms)"});
  const int lens[] = {2, 4, 6, 8};
  Result one[4], split[4];
  for (int i = 0; i < 4; ++i) {
    one[i] = Measure(lens[i], true);
    split[i] = Measure(lens[i], false);
    table.AddRow({std::to_string(lens[i]), "one",
                  bench::Fmt(one[i].avg_dv_entries_per_msg, 2),
                  bench::Fmt(one[i].dv_bytes_per_request, 0),
                  bench::Fmt(one[i].flush_legs_per_request, 2),
                  bench::Fmt(one[i].avg_response_ms, 1)});
    table.AddRow({std::to_string(lens[i]), "per-MSP",
                  bench::Fmt(split[i].avg_dv_entries_per_msg, 2),
                  bench::Fmt(split[i].dv_bytes_per_request, 0),
                  bench::Fmt(split[i].flush_legs_per_request, 2),
                  bench::Fmt(split[i].avg_response_ms, 1)});
  }
  table.Print();

  printf("\nshape checks:\n");
  auto check = [](const char* what, bool ok) {
    printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  };
  check("DV size grows with the domain size (paper's motivation for "
        "bounding domains)",
        one[3].avg_dv_entries_per_msg > one[0].avg_dv_entries_per_msg);
  check("per-MSP domains attach no DVs at all",
        split[3].avg_dv_entries_per_msg == 0);
  check("one domain needs fewer flush legs per request than per-MSP domains",
        one[3].flush_legs_per_request < split[3].flush_legs_per_request);
  check("one-domain (optimistic) response time beats per-MSP (pessimistic) "
        "at every chain length",
        one[0].avg_response_ms < split[0].avg_response_ms &&
            one[3].avg_response_ms < split[3].avg_response_ms);
  printf("\n(the trade-off: within one large domain every message carries a "
         "growing DV and a\ncrash rolls back dependents across the whole "
         "chain; per-MSP domains pay a flush\non every hop instead — the "
         "paper's service domains let operators pick the boundary)\n");
}

}  // namespace
}  // namespace msplog

int main() {
  msplog::Run();
  return 0;
}
