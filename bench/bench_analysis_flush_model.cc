// E8 — §5.2 response-time analysis: the flush-cost model behind Figure 14.
//
//   TFn  = rot/2 + n/63·rot + n/63·tts           (n-sector flush)
//   ∆response = 2·TF2 − TM − TDV                  (Pessimistic − LoOptimistic)
//
// plus the sector-waste accounting: pessimistic logging flushes 2+2+3
// sectors per request, locally optimistic 3+3 — one sector less per request.
// This bench prints the analytic model, then measures each quantity on the
// simulator and compares.
#include <cstdio>

#include "bench_util.h"
#include "harness/paper_workload.h"
#include "sim/sim_disk.h"

namespace msplog {
namespace {

constexpr double kTimeScale = 0.1;
constexpr int kRequests = 200;

struct Measured {
  double avg_ms;
  double sectors_per_req;
  double flushes_per_req;
  double wasted_per_req;
};

Measured Measure(PaperConfig config) {
  PaperWorkloadOptions opts;
  opts.config = config;
  opts.time_scale = kTimeScale;
  opts.checkpoint_daemon = false;  // steady-state accounting only
  PaperWorkload w(opts);
  Measured m{};
  if (!w.Start().ok()) return m;
  RunResult warm = w.RunSingleClient(5);
  (void)warm;
  auto before = w.env()->stats().Snap();
  RunResult r = w.RunSingleClient(kRequests);
  auto after = w.env()->stats().Snap();
  w.Shutdown();
  m.avg_ms = r.avg_response_ms;
  m.sectors_per_req =
      double(after.disk_sectors_written - before.disk_sectors_written) /
      kRequests;
  m.flushes_per_req =
      double(after.disk_flushes - before.disk_flushes) / kRequests;
  m.wasted_per_req =
      double(after.disk_bytes_wasted - before.disk_bytes_wasted) / kRequests;
  return m;
}

void Run() {
  bench::Header("bench_analysis_flush_model",
                "§5.2 analysis — TFn flush model, ∆response = 2·TF2−TM−TDV, "
                "and per-request sector accounting");

  DiskGeometry g;
  printf("\nanalytic flush latency TFn (model ms, no OS-interference seek):\n");
  bench::Table tf({"sectors", "TFn(write)", "TFn(read)"});
  for (int n : {1, 2, 3, 8, 64, 128}) {
    tf.AddRow({std::to_string(n), bench::Fmt(g.WriteLatencyMs(n), 3),
               bench::Fmt(g.ReadLatencyMs(n), 3)});
  }
  tf.Print();
  double tf2 = g.WriteLatencyMs(2) + g.write_avg_seek_ms / 3.0;
  printf("\n  effective TF2 with 1/3 OS-interference seek: %.2f ms "
         "(paper estimate: 8 ms)\n", tf2);

  Measured lo = Measure(PaperConfig::kLoOptimistic);
  Measured pe = Measure(PaperConfig::kPessimistic);

  const double tm = 2 * 1.70 + 100 * 8.0 / (100.0 * 1000.0) * 2;  // msp RTT
  double predicted_delta = 2 * tf2 - tm;  // TDV ~ 0 in the model
  double measured_delta = pe.avg_ms - lo.avg_ms;

  printf("\n∆response (Pessimistic − LoOptimistic):\n");
  printf("  predicted 2·TF2 − TM − TDV = %.2f ms "
         "(paper: 12.404 − TDV, measured 10.481)\n", predicted_delta);
  printf("  measured                  = %.2f ms\n", measured_delta);

  printf("\nper-request disk accounting:\n");
  bench::Table acct({"config", "flushes/req", "sectors/req", "wasted B/req"});
  acct.AddRow({"LoOptimistic", bench::Fmt(lo.flushes_per_req, 2),
               bench::Fmt(lo.sectors_per_req, 2),
               bench::Fmt(lo.wasted_per_req, 0)});
  acct.AddRow({"Pessimistic", bench::Fmt(pe.flushes_per_req, 2),
               bench::Fmt(pe.sectors_per_req, 2),
               bench::Fmt(pe.wasted_per_req, 0)});
  acct.Print();

  // Estimated disk time per request from the flush model: each flush pays
  // the fixed rotational cost (plus amortized OS seek), each sector the
  // transfer cost. Fewer flushes dominate, which is the paper's point —
  // "the number of flushes is the decisive factor, not the size of the
  // flushed records".
  auto disk_ms = [&](const Measured& m) {
    double fixed = g.RotationMs() / 2.0 + g.write_avg_seek_ms / 3.0;
    double per_sector = (g.RotationMs() + g.write_track_to_track_ms) /
                        g.sectors_per_track;
    return m.flushes_per_req * fixed + m.sectors_per_req * per_sector;
  };
  printf("\n  est. disk time/request: LoOptimistic %.2f ms, "
         "Pessimistic %.2f ms\n", disk_ms(lo), disk_ms(pe));

  printf("\nshape checks:\n");
  auto check = [](const char* what, bool ok) {
    printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  };
  check("measured ∆response within 50% of the model prediction",
        measured_delta > 0.5 * predicted_delta &&
            measured_delta < 1.8 * predicted_delta);
  check("Pessimistic uses ~1 more flush leg than LoOptimistic per request "
        "(3 vs 2)",
        pe.flushes_per_req - lo.flushes_per_req > 0.6);
  check("per-flush padding waste ~ half a sector for both configs (§5.2)",
        lo.wasted_per_req / lo.flushes_per_req > 100 &&
            lo.wasted_per_req / lo.flushes_per_req < 512 &&
            pe.wasted_per_req / pe.flushes_per_req > 100 &&
            pe.wasted_per_req / pe.flushes_per_req < 512);
  check("fewer flushes => less disk time per request for LoOptimistic "
        "(deviation note: our DV-tagged records are larger, so LoOptimistic "
        "does not also save a raw sector as in the paper)",
        disk_ms(lo) < disk_ms(pe));
}

}  // namespace
}  // namespace msplog

int main() {
  msplog::Run();
  return 0;
}
