// Recovery-time bench — how checkpointing bounds crash-recovery work
// (§3.4, §4.3). The paper motivates checkpoints as "reducing recovery
// time, which is important for high availability" but reports recovery
// cost only indirectly (through Fig. 16's maxima). This bench measures it
// directly: crash MSP1 after a fixed workload and report the analysis-scan
// time, the time until every session finished replaying, the number of
// requests replayed, and the log space reclaimed — per checkpoint
// threshold. The outage observatory rides along: each point also reports
// the flight-recorder-joined outage report (per-session fate and MTTR).
//
// --quick: one point (64KB threshold, 150 requests, faster clock) for the
// CTest perf-regression oracle (compare_bench.py against
// bench/baselines/recovery_quick.json).
//
// --instant: the instant-restart view. Many sessions share MSP1's log; after
// the crash a few "hot" sessions issue a request immediately, hitting the
// admission gate's on-demand replay while the background drain works
// through the rest. Reports per-session time-to-servable (p50 over the hot
// set) against the full-drain time — the classic recovery time every
// session would have waited under a monolithic gate. --quick --instant is
// one small point for the oracle (bench/baselines/recovery_instant_quick.json).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "harness/paper_workload.h"

namespace msplog {
namespace {

struct Point {
  double scan_ms = 0;
  double total_ms = 0;
  uint64_t replayed = 0;
  uint64_t reclaimed = 0;
  uint64_t log_bytes = 0;
  uint64_t tracer_dropped = 0;
  obs::RecoveryTimeline timeline;
  obs::OutageReport outage;
};

Point Measure(uint64_t threshold, int requests, double time_scale) {
  PaperWorkloadOptions opts;
  opts.config = PaperConfig::kLoOptimistic;
  opts.time_scale = time_scale;
  opts.session_checkpoint_threshold_bytes = threshold;
  opts.msp_checkpoint_log_bytes = threshold ? threshold : 0;
  opts.checkpoint_daemon = threshold != 0;
  PaperWorkload w(opts);
  Point p;
  if (!w.Start().ok()) return p;
  RunResult r = w.RunSingleClient(requests);
  (void)r;

  uint64_t recovered_before = w.env()->stats().sessions_recovered.load();
  uint64_t replayed_before = w.env()->stats().requests_replayed.load();
  p.log_bytes = w.msp1()->log()->end_lsn();

  w.msp1()->Crash();
  double t0 = w.env()->NowModelMs();
  if (!w.msp1()->Start().ok()) return p;
  // MSP1 hosts one client session plus nothing else; wait for its replay.
  while (w.env()->stats().sessions_recovered.load() <= recovered_before) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  p.total_ms = w.env()->NowModelMs() - t0;
  p.timeline = w.msp1()->LastRecoveryTimeline();
  p.scan_ms = p.timeline.analysis_scan_ms;
  p.outage = w.msp1()->LastOutageReport();
  p.replayed =
      w.env()->stats().requests_replayed.load() - replayed_before;
  p.reclaimed = w.env()->stats().disk_bytes_reclaimed.load();
  p.tracer_dropped = w.env()->tracer().dropped();
  w.Shutdown();
  return p;
}

void EmitPoint(const char* label, const Point& p) {
  bench::Json j;
  j.Add("threshold", label)
      .Add("scan_ms", p.scan_ms)
      .Add("total_ms", p.total_ms)
      .Add("replayed", p.replayed)
      .Add("reclaimed_bytes", p.reclaimed)
      .Add("mttr_count", p.outage.mttr.count)
      .Add("mttr_mean_ms", p.outage.mttr.mean_ms)
      .Add("mttr_p50_ms", p.outage.mttr.p50_ms)
      .Add("mttr_p99_ms", p.outage.mttr.p99_ms)
      .Add("mttr_max_ms", p.outage.mttr.max_ms)
      .AddRaw("outage_report", p.outage.ToJson())
      .AddRaw("timeline", p.timeline.ToJson());
  bench::AddTracerHealth(&j, p.tracer_dropped);
  bench::EmitJson("recovery_time", j);
}

// ---- instant restart ----

struct InstantPoint {
  uint64_t sessions = 0;
  uint64_t hot = 0;
  uint64_t log_bytes = 0;
  double open_ms = 0;        ///< crash → open for traffic (scan + checkpoint)
  double hot_p50_ms = 0;     ///< p50 time-to-servable over the hot sessions
  double all_p50_ms = 0;     ///< p50 time-to-servable over every session
  double full_drain_ms = 0;  ///< crash → last session replayed (classic MTTR)
  uint64_t on_demand = 0;
  uint64_t tracer_dropped = 0;
  obs::RecoveryTimeline timeline;
  obs::OutageReport outage;
};

InstantPoint MeasureInstant(int sessions, int hot, int requests_per_session,
                            double time_scale) {
  PaperWorkloadOptions opts;
  opts.config = PaperConfig::kLoOptimistic;
  opts.time_scale = time_scale;
  // No checkpoints: every session replays its whole history, so the drain
  // tail is long and the per-session admission gate has something to beat.
  opts.session_checkpoint_threshold_bytes = 0;
  opts.msp_checkpoint_log_bytes = 0;
  opts.checkpoint_daemon = false;
  // One pool thread = one drain pump replaying sessions strictly in SJF
  // order; an on-demand replay jumps the queue after at most the one
  // in-flight replay. This is the configuration where per-session REDO
  // matters most — the full drain is the sum of every session's replay.
  opts.thread_pool_size = 1;
  // Replay re-charges the method's model compute (§5.4), so a compute-heavy
  // method makes per-session replay dominate the shared, one-off analysis
  // scan — the regime §4.3 targets. Shrinking the per-request log footprint
  // and disabling OS seek interference pushes the same way from the other
  // side: the scan is cheap and deterministic, the replay work is not.
  opts.method_compute_ms = 20.0;
  opts.os_interference_prob = 0.0;
  opts.session_state_bytes = 1024;
  opts.session_write_bytes = 128;
  PaperWorkload w(opts);
  InstantPoint p;
  p.sessions = static_cast<uint64_t>(sessions);
  p.hot = static_cast<uint64_t>(hot);
  if (!w.Start().ok()) return p;

  // Hot sessions get their own client endpoints so the post-restart
  // requests come from the same endpoint the session's replies route to.
  // Every session carries identical work, so the SJF drain falls back to
  // its id tie-break — the "zz-" prefix parks the hot sessions at the BACK
  // of the queue, the worst case a monolithic gate would make them wait
  // out and exactly the case on-demand admission is built for.
  std::vector<std::unique_ptr<ClientEndpoint>> hot_clients;
  std::vector<ClientSession> hot_ids;
  Bytes reply;
  for (int h = 0; h < hot; ++h) {
    hot_clients.push_back(w.MakeClient("zz-hot" + std::to_string(h)));
    hot_ids.push_back(hot_clients.back()->StartSession("msp1"));
    for (int r = 0; r < requests_per_session; ++r) {
      (void)hot_clients.back()->Call(&hot_ids.back(), "ServiceMethod1",
                                     std::string(64, 'a' + (r % 26)), &reply);
    }
  }
  auto client = w.MakeClient("instant-cli");
  std::vector<ClientSession> ids;
  for (int s = hot; s < sessions; ++s) {
    ids.push_back(client->StartSession("msp1"));
    for (int r = 0; r < requests_per_session; ++r) {
      (void)client->Call(&ids.back(), "ServiceMethod1",
                         std::string(64, 'a' + (r % 26)), &reply);
    }
  }
  p.log_bytes = w.msp1()->log()->end_lsn();

  const uint64_t recovered_before = w.env()->stats().sessions_recovered.load();
  w.msp1()->Crash();
  const double t0 = w.env()->NowModelMs();
  if (!w.msp1()->Start().ok()) return p;

  // Hot sessions fire one request each, concurrently, the moment the
  // server reopened — each lands in the admission gate and triggers an
  // on-demand replay of just that session (or queues behind the drain's
  // in-flight replay of it).
  std::vector<std::thread> hot_threads;
  for (int h = 0; h < hot; ++h) {
    hot_threads.emplace_back([&hot_clients, &hot_ids, h] {
      Bytes r;
      (void)hot_clients[h]->Call(&hot_ids[h], "ServiceMethod1", "hot", &r);
    });
  }
  for (auto& t : hot_threads) t.join();

  while (w.env()->stats().sessions_recovered.load() <
         recovered_before + static_cast<uint64_t>(sessions)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  p.full_drain_ms = w.env()->NowModelMs() - t0;
  p.timeline = w.msp1()->LastRecoveryTimeline();
  p.open_ms = p.timeline.open_for_traffic_ms;
  p.on_demand = p.timeline.on_demand_replays;
  p.outage = w.msp1()->LastOutageReport();
  p.all_p50_ms = p.outage.mttr.p50_ms;
  std::vector<double> hot_tts;
  for (int h = 0; h < hot; ++h) {
    if (const obs::OutageReport::SessionFate* f =
            p.outage.Find(hot_ids[h].session_id)) {
      hot_tts.push_back(f->time_to_servable_ms);
    }
  }
  if (!hot_tts.empty()) {
    std::sort(hot_tts.begin(), hot_tts.end());
    p.hot_p50_ms = hot_tts[hot_tts.size() / 2];
  }
  p.tracer_dropped = w.env()->tracer().dropped();
  w.Shutdown();
  return p;
}

void EmitInstantPoint(const char* label, const InstantPoint& p) {
  bench::Json j;
  j.Add("threshold", label)
      .Add("sessions", p.sessions)
      .Add("hot_sessions", p.hot)
      .Add("log_bytes", p.log_bytes)
      .Add("open_ms", p.open_ms)
      .Add("hot_tts_p50_ms", p.hot_p50_ms)
      .Add("all_tts_p50_ms", p.all_p50_ms)
      .Add("full_drain_ms", p.full_drain_ms)
      .Add("on_demand_replays", p.on_demand)
      .Add("mttr_count", p.outage.mttr.count)
      .Add("mttr_p50_ms", p.outage.mttr.p50_ms)
      .Add("mttr_max_ms", p.outage.mttr.max_ms)
      .AddRaw("outage_report", p.outage.ToJson())
      .AddRaw("timeline", p.timeline.ToJson());
  bench::AddTracerHealth(&j, p.tracer_dropped);
  bench::EmitJson("recovery_time", j);
}

void PrintInstantPoint(const InstantPoint& p) {
  printf("  %llu sessions (%llu hot), log %llu B: open %.1f ms, hot p50 "
         "time-to-servable %.1f ms, all p50 %.1f ms, full drain %.1f ms, "
         "%llu on-demand (%.1fx hot speedup over full drain)\n",
         static_cast<unsigned long long>(p.sessions),
         static_cast<unsigned long long>(p.hot),
         static_cast<unsigned long long>(p.log_bytes), p.open_ms, p.hot_p50_ms,
         p.all_p50_ms, p.full_drain_ms,
         static_cast<unsigned long long>(p.on_demand),
         p.hot_p50_ms > 0 ? p.full_drain_ms / p.hot_p50_ms : 0.0);
}

void RunInstantQuick() {
  bench::Header("bench_recovery_time --quick --instant",
                "instant restart, one point (12 sessions, 2 hot) for the "
                "perf-regression oracle");
  InstantPoint p = MeasureInstant(/*sessions=*/12, /*hot=*/2,
                                  /*requests_per_session=*/6,
                                  /*time_scale=*/0.02);
  PrintInstantPoint(p);
  EmitInstantPoint("InstantQuick", p);
}

void RunInstant() {
  bench::Header("bench_recovery_time --instant",
                "per-session time-to-servable vs full-drain recovery time: "
                "hot sessions are admitted by on-demand replay while the "
                "background drain finishes the rest");
  struct InstantRow {
    const char* label;
    int sessions;
    int requests;
  };
  const InstantRow rows[] = {{"Instant16", 16, 8}, {"Instant32", 32, 8}};
  InstantPoint points[2];
  for (int i = 0; i < 2; ++i) {
    points[i] = MeasureInstant(rows[i].sessions, /*hot=*/3, rows[i].requests,
                               /*time_scale=*/0.05);
    PrintInstantPoint(points[i]);
    EmitInstantPoint(rows[i].label, points[i]);
  }

  printf("\nshape checks:\n");
  auto check = [](const char* what, bool ok) {
    printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  };
  const InstantPoint& big = points[1];  // largest log size
  check("server opens before the drain finishes (open << full drain)",
        big.open_ms > 0 && big.open_ms < big.full_drain_ms / 2);
  check("hot p50 time-to-servable >= 5x below full-drain recovery time "
        "at the largest log size",
        big.hot_p50_ms > 0 && big.hot_p50_ms * 5 <= big.full_drain_ms);
  check("admission gate actually fired (on-demand replays > 0)",
        points[0].on_demand > 0 && points[1].on_demand > 0);
  check("outage report complete at both scales",
        points[0].outage.complete && points[1].outage.complete &&
            points[0].outage.mttr.count == points[0].sessions &&
            points[1].outage.mttr.count == points[1].sessions);
}

void RunQuick() {
  bench::Header("bench_recovery_time --quick",
                "recovery cost + outage MTTR, one point (64KB threshold, "
                "150 requests) for the perf-regression oracle");
  Point p = Measure(64ull << 10, /*requests=*/150, /*time_scale=*/0.02);
  printf("  scan %.1f ms, total %.1f ms, %llu replayed, MTTR mean %.1f ms "
         "(%llu session(s))\n",
         p.scan_ms, p.total_ms, static_cast<unsigned long long>(p.replayed),
         p.outage.mttr.mean_ms,
         static_cast<unsigned long long>(p.outage.mttr.count));
  EmitPoint("64KB", p);
}

void Run() {
  bench::Header("bench_recovery_time",
                "recovery cost vs checkpoint threshold (600 requests, then "
                "crash MSP1): scan + parallel replay, model ms");

  struct Row {
    const char* label;
    uint64_t threshold;
  };
  const Row rows[] = {{"NoCp", 0},
                      {"256KB", 256ull << 10},
                      {"64KB", 64ull << 10},
                      {"16KB", 16ull << 10}};

  bench::Table table({"threshold", "scan(ms)", "records scanned",
                      "recovery total(ms)", "replay(ms)",
                      "requests replayed", "log reclaimed(B)", "MTTR(ms)"});
  Point results[4];
  for (int i = 0; i < 4; ++i) {
    results[i] = Measure(rows[i].threshold, /*requests=*/600,
                         /*time_scale=*/0.05);
    const obs::RecoveryTimeline& tl = results[i].timeline;
    table.AddRow({rows[i].label, bench::Fmt(results[i].scan_ms, 1),
                  std::to_string(tl.analysis_records_scanned),
                  bench::Fmt(results[i].total_ms, 1),
                  bench::Fmt(tl.TotalReplayMs(), 1),
                  std::to_string(results[i].replayed),
                  std::to_string(results[i].reclaimed),
                  bench::Fmt(results[i].outage.mttr.mean_ms, 1)});
    EmitPoint(rows[i].label, results[i]);
  }
  table.Print();

  printf("\nshape checks:\n");
  auto check = [](const char* what, bool ok) {
    printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  };
  check("replay work shrinks monotonically with the checkpoint threshold",
        results[0].replayed >= results[1].replayed &&
            results[1].replayed >= results[2].replayed &&
            results[2].replayed >= results[3].replayed);
  check("total recovery time shrinks with frequent checkpoints (16KB vs NoCp)",
        results[3].total_ms < results[0].total_ms);
  // Without checkpoints the only reclamation is the one MSP checkpoint at
  // recovery end; with checkpoints nearly the whole log is freed.
  check("checkpointing enables log reclamation (orders of magnitude more)",
        results[3].reclaimed > 50 * (results[0].reclaimed + 1));
  // The outage observatory must account for the crash at every threshold:
  // the one client session was in flight, and replay made it servable.
  bool outage_ok = true;
  for (const Point& p : results) {
    outage_ok &= p.outage.valid && p.outage.complete &&
                 p.outage.mttr.count >= 1 && p.outage.mttr.mean_ms > 0;
  }
  check("outage report complete at every threshold (MTTR > 0)", outage_ok);
}

}  // namespace
}  // namespace msplog

int main(int argc, char** argv) {
  bool quick = false;
  bool instant = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--instant") == 0) instant = true;
  }
  if (quick && instant) {
    msplog::RunInstantQuick();
  } else if (instant) {
    msplog::RunInstant();
  } else if (quick) {
    msplog::RunQuick();
  } else {
    msplog::Run();
  }
  return 0;
}
