// Recovery-time bench — how checkpointing bounds crash-recovery work
// (§3.4, §4.3). The paper motivates checkpoints as "reducing recovery
// time, which is important for high availability" but reports recovery
// cost only indirectly (through Fig. 16's maxima). This bench measures it
// directly: crash MSP1 after a fixed workload and report the analysis-scan
// time, the time until every session finished replaying, the number of
// requests replayed, and the log space reclaimed — per checkpoint
// threshold. The outage observatory rides along: each point also reports
// the flight-recorder-joined outage report (per-session fate and MTTR).
//
// --quick: one point (64KB threshold, 150 requests, faster clock) for the
// CTest perf-regression oracle (compare_bench.py against
// bench/baselines/recovery_quick.json).
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench_util.h"
#include "harness/paper_workload.h"

namespace msplog {
namespace {

struct Point {
  double scan_ms = 0;
  double total_ms = 0;
  uint64_t replayed = 0;
  uint64_t reclaimed = 0;
  uint64_t log_bytes = 0;
  uint64_t tracer_dropped = 0;
  obs::RecoveryTimeline timeline;
  obs::OutageReport outage;
};

Point Measure(uint64_t threshold, int requests, double time_scale) {
  PaperWorkloadOptions opts;
  opts.config = PaperConfig::kLoOptimistic;
  opts.time_scale = time_scale;
  opts.session_checkpoint_threshold_bytes = threshold;
  opts.msp_checkpoint_log_bytes = threshold ? threshold : 0;
  opts.checkpoint_daemon = threshold != 0;
  PaperWorkload w(opts);
  Point p;
  if (!w.Start().ok()) return p;
  RunResult r = w.RunSingleClient(requests);
  (void)r;

  uint64_t recovered_before = w.env()->stats().sessions_recovered.load();
  uint64_t replayed_before = w.env()->stats().requests_replayed.load();
  p.log_bytes = w.msp1()->log()->end_lsn();

  w.msp1()->Crash();
  double t0 = w.env()->NowModelMs();
  if (!w.msp1()->Start().ok()) return p;
  // MSP1 hosts one client session plus nothing else; wait for its replay.
  while (w.env()->stats().sessions_recovered.load() <= recovered_before) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  p.total_ms = w.env()->NowModelMs() - t0;
  p.timeline = w.msp1()->LastRecoveryTimeline();
  p.scan_ms = p.timeline.analysis_scan_ms;
  p.outage = w.msp1()->LastOutageReport();
  p.replayed =
      w.env()->stats().requests_replayed.load() - replayed_before;
  p.reclaimed = w.env()->stats().disk_bytes_reclaimed.load();
  p.tracer_dropped = w.env()->tracer().dropped();
  w.Shutdown();
  return p;
}

void EmitPoint(const char* label, const Point& p) {
  bench::Json j;
  j.Add("threshold", label)
      .Add("scan_ms", p.scan_ms)
      .Add("total_ms", p.total_ms)
      .Add("replayed", p.replayed)
      .Add("reclaimed_bytes", p.reclaimed)
      .Add("mttr_count", p.outage.mttr.count)
      .Add("mttr_mean_ms", p.outage.mttr.mean_ms)
      .Add("mttr_p50_ms", p.outage.mttr.p50_ms)
      .Add("mttr_p99_ms", p.outage.mttr.p99_ms)
      .Add("mttr_max_ms", p.outage.mttr.max_ms)
      .AddRaw("outage_report", p.outage.ToJson())
      .AddRaw("timeline", p.timeline.ToJson());
  bench::AddTracerHealth(&j, p.tracer_dropped);
  bench::EmitJson("recovery_time", j);
}

void RunQuick() {
  bench::Header("bench_recovery_time --quick",
                "recovery cost + outage MTTR, one point (64KB threshold, "
                "150 requests) for the perf-regression oracle");
  Point p = Measure(64ull << 10, /*requests=*/150, /*time_scale=*/0.02);
  printf("  scan %.1f ms, total %.1f ms, %llu replayed, MTTR mean %.1f ms "
         "(%llu session(s))\n",
         p.scan_ms, p.total_ms, static_cast<unsigned long long>(p.replayed),
         p.outage.mttr.mean_ms,
         static_cast<unsigned long long>(p.outage.mttr.count));
  EmitPoint("64KB", p);
}

void Run() {
  bench::Header("bench_recovery_time",
                "recovery cost vs checkpoint threshold (600 requests, then "
                "crash MSP1): scan + parallel replay, model ms");

  struct Row {
    const char* label;
    uint64_t threshold;
  };
  const Row rows[] = {{"NoCp", 0},
                      {"256KB", 256ull << 10},
                      {"64KB", 64ull << 10},
                      {"16KB", 16ull << 10}};

  bench::Table table({"threshold", "scan(ms)", "records scanned",
                      "recovery total(ms)", "replay(ms)",
                      "requests replayed", "log reclaimed(B)", "MTTR(ms)"});
  Point results[4];
  for (int i = 0; i < 4; ++i) {
    results[i] = Measure(rows[i].threshold, /*requests=*/600,
                         /*time_scale=*/0.05);
    const obs::RecoveryTimeline& tl = results[i].timeline;
    table.AddRow({rows[i].label, bench::Fmt(results[i].scan_ms, 1),
                  std::to_string(tl.analysis_records_scanned),
                  bench::Fmt(results[i].total_ms, 1),
                  bench::Fmt(tl.TotalReplayMs(), 1),
                  std::to_string(results[i].replayed),
                  std::to_string(results[i].reclaimed),
                  bench::Fmt(results[i].outage.mttr.mean_ms, 1)});
    EmitPoint(rows[i].label, results[i]);
  }
  table.Print();

  printf("\nshape checks:\n");
  auto check = [](const char* what, bool ok) {
    printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  };
  check("replay work shrinks monotonically with the checkpoint threshold",
        results[0].replayed >= results[1].replayed &&
            results[1].replayed >= results[2].replayed &&
            results[2].replayed >= results[3].replayed);
  check("total recovery time shrinks with frequent checkpoints (16KB vs NoCp)",
        results[3].total_ms < results[0].total_ms);
  // Without checkpoints the only reclamation is the one MSP checkpoint at
  // recovery end; with checkpoints nearly the whole log is freed.
  check("checkpointing enables log reclamation (orders of magnitude more)",
        results[3].reclaimed > 50 * (results[0].reclaimed + 1));
  // The outage observatory must account for the crash at every threshold:
  // the one client session was in flight, and replay made it servable.
  bool outage_ok = true;
  for (const Point& p : results) {
    outage_ok &= p.outage.valid && p.outage.complete &&
                 p.outage.mttr.count >= 1 && p.outage.mttr.mean_ms > 0;
  }
  check("outage report complete at every threshold (MTTR > 0)", outage_ok);
}

}  // namespace
}  // namespace msplog

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  if (quick) {
    msplog::RunQuick();
  } else {
    msplog::Run();
  }
  return 0;
}
