// Recovery-time bench — how checkpointing bounds crash-recovery work
// (§3.4, §4.3). The paper motivates checkpoints as "reducing recovery
// time, which is important for high availability" but reports recovery
// cost only indirectly (through Fig. 16's maxima). This bench measures it
// directly: crash MSP1 after a fixed workload and report the analysis-scan
// time, the time until every session finished replaying, the number of
// requests replayed, and the log space reclaimed — per checkpoint
// threshold.
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "harness/paper_workload.h"

namespace msplog {
namespace {

constexpr double kTimeScale = 0.05;
constexpr int kRequests = 600;

struct Point {
  double scan_ms = 0;
  double total_ms = 0;
  uint64_t replayed = 0;
  uint64_t reclaimed = 0;
  uint64_t log_bytes = 0;
  uint64_t tracer_dropped = 0;
  obs::RecoveryTimeline timeline;
};

Point Measure(uint64_t threshold) {
  PaperWorkloadOptions opts;
  opts.config = PaperConfig::kLoOptimistic;
  opts.time_scale = kTimeScale;
  opts.session_checkpoint_threshold_bytes = threshold;
  opts.msp_checkpoint_log_bytes = threshold ? threshold : 0;
  opts.checkpoint_daemon = threshold != 0;
  PaperWorkload w(opts);
  Point p;
  if (!w.Start().ok()) return p;
  RunResult r = w.RunSingleClient(kRequests);
  (void)r;

  uint64_t recovered_before = w.env()->stats().sessions_recovered.load();
  uint64_t replayed_before = w.env()->stats().requests_replayed.load();
  p.log_bytes = w.msp1()->log()->end_lsn();

  w.msp1()->Crash();
  double t0 = w.env()->NowModelMs();
  if (!w.msp1()->Start().ok()) return p;
  // MSP1 hosts one client session plus nothing else; wait for its replay.
  while (w.env()->stats().sessions_recovered.load() <= recovered_before) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  p.total_ms = w.env()->NowModelMs() - t0;
  p.timeline = w.msp1()->LastRecoveryTimeline();
  p.scan_ms = p.timeline.analysis_scan_ms;
  p.replayed =
      w.env()->stats().requests_replayed.load() - replayed_before;
  p.reclaimed = w.env()->stats().disk_bytes_reclaimed.load();
  p.tracer_dropped = w.env()->tracer().dropped();
  w.Shutdown();
  return p;
}

void Run() {
  bench::Header("bench_recovery_time",
                "recovery cost vs checkpoint threshold (600 requests, then "
                "crash MSP1): scan + parallel replay, model ms");

  struct Row {
    const char* label;
    uint64_t threshold;
  };
  const Row rows[] = {{"NoCp", 0},
                      {"256KB", 256ull << 10},
                      {"64KB", 64ull << 10},
                      {"16KB", 16ull << 10}};

  bench::Table table({"threshold", "scan(ms)", "records scanned",
                      "recovery total(ms)", "replay(ms)",
                      "requests replayed", "log reclaimed(B)"});
  Point results[4];
  for (int i = 0; i < 4; ++i) {
    results[i] = Measure(rows[i].threshold);
    const obs::RecoveryTimeline& tl = results[i].timeline;
    table.AddRow({rows[i].label, bench::Fmt(results[i].scan_ms, 1),
                  std::to_string(tl.analysis_records_scanned),
                  bench::Fmt(results[i].total_ms, 1),
                  bench::Fmt(tl.TotalReplayMs(), 1),
                  std::to_string(results[i].replayed),
                  std::to_string(results[i].reclaimed)});
    bench::Json j;
    j.Add("threshold", rows[i].label)
        .Add("scan_ms", results[i].scan_ms)
        .Add("total_ms", results[i].total_ms)
        .Add("replayed", results[i].replayed)
        .Add("reclaimed_bytes", results[i].reclaimed)
        .AddRaw("timeline", tl.ToJson());
    bench::AddTracerHealth(&j, results[i].tracer_dropped);
    bench::EmitJson("recovery_time", j);
  }
  table.Print();

  printf("\nshape checks:\n");
  auto check = [](const char* what, bool ok) {
    printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  };
  check("replay work shrinks monotonically with the checkpoint threshold",
        results[0].replayed >= results[1].replayed &&
            results[1].replayed >= results[2].replayed &&
            results[2].replayed >= results[3].replayed);
  check("total recovery time shrinks with frequent checkpoints (16KB vs NoCp)",
        results[3].total_ms < results[0].total_ms);
  // Without checkpoints the only reclamation is the one MSP checkpoint at
  // recovery end; with checkpoints nearly the whole log is freed.
  check("checkpointing enables log reclamation (orders of magnitude more)",
        results[3].reclaimed > 50 * (results[0].reclaimed + 1));
}

}  // namespace
}  // namespace msplog

int main() {
  msplog::Run();
  return 0;
}
