// E6 — Figure 16 chart (§5.4): throughput at a fixed crash rate versus
// session checkpointing threshold — the checkpoint-frequency trade-off.
//
// Paper shape: an interior optimum. Frequent checkpoints cost normal-
// execution overhead; rare checkpoints make each orphan/crash recovery
// replay a longer log suffix. The paper finds the optimum for crash rate
// 1/1000 between 256 KB and 1 MB (512 KB near the maximum). At our 1:10
// scale (crash every 100 requests) the optimum shifts to thresholds one
// decade smaller.
#include <cstdio>

#include "bench_util.h"
#include "harness/paper_workload.h"

namespace msplog {
namespace {

constexpr double kTimeScale = 0.05;
constexpr int kRequests = 1200;
constexpr int kCrashEvery = 100;  // 1:10-scaled 1/1000

double Measure(uint64_t threshold) {
  PaperWorkloadOptions opts;
  opts.config = PaperConfig::kLoOptimistic;
  opts.time_scale = kTimeScale;
  opts.session_checkpoint_threshold_bytes = threshold;
  PaperWorkload w(opts);
  if (!w.Start().ok()) return -1;
  RunResult r = w.RunSingleClient(kRequests, kCrashEvery);
  w.Shutdown();
  return r.throughput_rps;
}

void Run() {
  bench::Header("bench_fig16_optimal_threshold",
                "Fig. 16 chart — throughput at crash rate 1/1000 (scaled) "
                "vs checkpoint threshold: interior optimum");

  struct Point {
    const char* label;
    uint64_t threshold;
  };
  const Point points[] = {{"8KB", 8ull << 10},   {"16KB", 16ull << 10},
                          {"32KB", 32ull << 10}, {"64KB", 64ull << 10},
                          {"128KB", 128ull << 10}, {"256KB", 256ull << 10},
                          {"NoCp", 0}};
  constexpr int kN = 7;

  bench::Table table({"threshold", "throughput(req/s)"});
  double results[kN];
  for (int i = 0; i < kN; ++i) {
    results[i] = Measure(points[i].threshold);
    table.AddRow({points[i].label, bench::Fmt(results[i], 1)});
  }
  table.Print();

  int best = 0;
  for (int i = 1; i < kN; ++i) {
    if (results[i] > results[best]) best = i;
  }
  printf("\nbest threshold: %s\n", points[best].label);
  printf("shape checks:\n");
  printf("  [%s] optimum is interior (not the smallest threshold)\n",
         best != 0 ? "PASS" : "FAIL");
  printf("  [%s] optimum beats NoCp (recovery cost matters under crashes)\n",
         best != kN - 1 && results[best] > results[kN - 1] ? "PASS" : "FAIL");
}

}  // namespace
}  // namespace msplog

int main() {
  msplog::Run();
  return 0;
}
