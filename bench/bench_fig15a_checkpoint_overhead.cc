// E3 — Figure 15(a) (§5.3): throughput versus session-checkpointing
// threshold under locally optimistic logging, single client, no crashes.
//
// Paper shape: the lower the threshold (the more frequent the checkpoints),
// the lower the throughput — but because session state is small (8 KB), even
// 64 KB only costs a few percent; by 4 MB throughput matches NoCp.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "harness/paper_workload.h"

namespace msplog {
namespace {

constexpr double kTimeScale = 0.05;
constexpr int kRequests = 1200;

double MeasureOnce(uint64_t threshold, uint64_t* checkpoints) {
  PaperWorkloadOptions opts;
  opts.config = PaperConfig::kLoOptimistic;
  opts.time_scale = kTimeScale;
  opts.session_checkpoint_threshold_bytes = threshold;
  PaperWorkload w(opts);
  if (!w.Start().ok()) return -1;
  RunResult r = w.RunSingleClient(kRequests);
  *checkpoints = w.env()->stats().checkpoints_session.load();
  w.Shutdown();
  return r.throughput_rps;
}

// Best of two runs: the effect being measured is a 1–2 % throughput delta,
// below the noise floor of a single run on a busy host.
double MeasureThroughput(uint64_t threshold, uint64_t* checkpoints) {
  double a = MeasureOnce(threshold, checkpoints);
  double b = MeasureOnce(threshold, checkpoints);
  return std::max(a, b);
}

void Run() {
  bench::Header("bench_fig15a_checkpoint_overhead",
                "Fig. 15(a) — throughput (req/s, model time) vs session "
                "checkpointing threshold, LoOptimistic, 1 client");

  struct Point {
    const char* label;
    uint64_t threshold;
  };
  const Point points[] = {{"64KB", 64ull << 10},  {"128KB", 128ull << 10},
                          {"256KB", 256ull << 10}, {"512KB", 512ull << 10},
                          {"1MB", 1ull << 20},     {"4MB", 4ull << 20},
                          {"NoCp", 0}};

  bench::Table table({"threshold", "throughput(req/s)", "session cps",
                      "relative to NoCp"});
  double results[7];
  uint64_t cps[7];
  for (int i = 0; i < 7; ++i) {
    results[i] = MeasureThroughput(points[i].threshold, &cps[i]);
  }
  double base = results[6];
  for (int i = 0; i < 7; ++i) {
    table.AddRow({points[i].label, bench::Fmt(results[i], 1),
                  std::to_string(cps[i]),
                  bench::Fmt(100.0 * results[i] / base, 1) + "%"});
  }
  table.Print();

  printf("\nshape checks:\n");
  printf("  [%s] 64KB threshold costs only a few %% vs NoCp (paper: small)\n",
         results[0] > 0.90 * base ? "PASS" : "FAIL");
  printf("  [%s] 4MB ~ NoCp (paper: indistinguishable, within noise)\n",
         results[5] > 0.95 * base ? "PASS" : "FAIL");
  printf("  [%s] large thresholds at least match the smallest one\n",
         std::max(results[4], results[5]) >= 0.98 * results[0] ? "PASS"
                                                               : "FAIL");
}

}  // namespace
}  // namespace msplog

int main() {
  msplog::Run();
  return 0;
}
