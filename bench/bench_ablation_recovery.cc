// Ablations of two §1.3 contributions that have no dedicated figure in the
// paper but are claimed as design wins:
//
//  1. PARALLEL RECOVERY (§4.3): "we enable parallel recovery of session
//     states ... this results in faster recovery than replaying all
//     activities sequentially in log order." We crash an MSP hosting many
//     sessions and measure wall (model) time until every session finished
//     replaying, with the pool replaying in parallel vs one at a time.
//
//  2. PER-SESSION DVs (§3.2): "If only one DV is maintained to capture
//     dependencies for an MSP as a whole, all its sessions will roll back,
//     possibly unnecessarily." We crash a peer that only ONE session
//     depends on and count how many requests get replayed under each DV
//     granularity, and how large the attached DVs get.
#include <atomic>
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "msp/msp.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

// ---------------------------------------------------------------------------
// Part 1: parallel vs sequential session recovery
// ---------------------------------------------------------------------------

double MeasureRecoveryMs(bool sequential, int sessions, int requests_each) {
  SimEnvironment env(0.05);
  SimNetwork net(&env);
  SimDisk disk(&env, "d");
  DomainDirectory dir;
  dir.Assign("alpha", "dom");
  MspConfig c;
  c.id = "alpha";
  c.sequential_recovery = sequential;
  c.thread_pool_size = 8;
  c.checkpoint_daemon = false;
  c.session_checkpoint_threshold_bytes = 0;
  Msp msp(&env, &net, &disk, &dir, c);
  msp.RegisterMethod("work", [](ServiceContext* ctx, const Bytes&, Bytes* r) {
    ctx->Compute(3.0);  // 3 model ms of business logic per request
    Bytes cur = ctx->GetSessionVar("n");
    int n = cur.empty() ? 0 : std::stoi(cur);
    ctx->SetSessionVar("n", std::to_string(n + 1));
    *r = std::to_string(n + 1);
    return Status::OK();
  });
  if (!msp.Start().ok()) return -1;

  std::vector<std::thread> threads;
  for (int i = 0; i < sessions; ++i) {
    threads.emplace_back([&, i] {
      ClientEndpoint client(&env, &net, "cli" + std::to_string(i));
      auto s = client.StartSession("alpha");
      Bytes reply;
      for (int r = 0; r < requests_each; ++r) {
        client.Call(&s, "work", "", &reply);
      }
    });
  }
  for (auto& t : threads) t.join();

  msp.Crash();
  double t0 = env.NowModelMs();
  if (!msp.Start().ok()) return -1;
  // Wait until every session's replay task completed.
  while (env.stats().sessions_recovered.load() <
         static_cast<uint64_t>(sessions)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  double elapsed = env.NowModelMs() - t0;
  msp.Shutdown();
  return elapsed;
}

// ---------------------------------------------------------------------------
// Part 2: per-session vs MSP-wide dependency vectors
// ---------------------------------------------------------------------------

struct DvResult {
  uint64_t replayed = 0;
  uint64_t dv_entries = 0;
  uint64_t messages = 0;
};

DvResult MeasureDvGranularity(bool per_session, int independent_sessions,
                              int requests_each) {
  SimEnvironment env(0.0);
  SimNetwork net(&env);
  SimDisk da(&env, "da"), db(&env, "db");
  DomainDirectory dir;
  dir.Assign("alpha", "dom");
  dir.Assign("beta", "dom");
  MspConfig ca, cb;
  ca.id = "alpha";
  cb.id = "beta";
  ca.per_session_dv = per_session;
  ca.flush_timeout_ms = cb.flush_timeout_ms = 20;
  ca.checkpoint_daemon = cb.checkpoint_daemon = false;
  Msp alpha(&env, &net, &da, &dir, ca);
  Msp beta(&env, &net, &db, &dir, cb);
  beta.RegisterMethod("echo", [](ServiceContext*, const Bytes& a, Bytes* r) {
    *r = a;
    return Status::OK();
  });
  std::atomic<bool> gate{false}, held{false};
  alpha.RegisterMethod("relay_gated", [&](ServiceContext* ctx, const Bytes& a,
                                          Bytes* r) {
    MSPLOG_RETURN_IF_ERROR(ctx->Call("beta", "echo", a, r));
    if (!ctx->in_replay()) {
      held.store(true);
      while (gate.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return Status::OK();
  });
  alpha.RegisterMethod("local", [](ServiceContext* ctx, const Bytes&,
                                   Bytes* r) {
    Bytes cur = ctx->GetSessionVar("n");
    int n = cur.empty() ? 0 : std::stoi(cur);
    ctx->SetSessionVar("n", std::to_string(n + 1));
    *r = std::to_string(n + 1);
    return Status::OK();
  });
  if (!beta.Start().ok() || !alpha.Start().ok()) return {};

  // Independent sessions build up local-only history.
  for (int i = 0; i < independent_sessions; ++i) {
    ClientEndpoint client(&env, &net, "ind" + std::to_string(i));
    auto s = client.StartSession("alpha");
    Bytes reply;
    for (int r = 0; r < requests_each; ++r) {
      client.Call(&s, "local", "", &reply);
    }
  }

  // One dependent session parks holding an unflushed beta dependency.
  gate.store(true);
  held.store(false);
  ClientEndpoint dep(&env, &net, "dep");
  std::thread t([&] {
    auto s = dep.StartSession("alpha");
    Bytes r;
    (void)dep.Call(&s, "relay_gated", "x", &r);
  });
  while (!held.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto before = env.stats().Snap();
  beta.Crash();
  (void)beta.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  gate.store(false);
  t.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  auto after = env.stats().Snap();

  DvResult out;
  out.replayed = after.requests_replayed - before.requests_replayed;
  out.dv_entries = after.dv_entries_attached;
  out.messages = after.messages_sent;
  alpha.Shutdown();
  beta.Shutdown();
  return out;
}

void Run() {
  bench::Header("bench_ablation_recovery",
                "ablations: parallel session recovery (§4.3) and "
                "per-session DVs (§3.2)");

  printf("\n[1] parallel vs sequential session replay "
         "(8 sessions x 30 requests, 3 model ms CPU each):\n");
  double par = MeasureRecoveryMs(false, 8, 30);
  double seq = MeasureRecoveryMs(true, 8, 30);
  bench::Table t1({"mode", "recovery time (model ms)"});
  t1.AddRow({"parallel (pool of 8)", bench::Fmt(par, 1)});
  t1.AddRow({"sequential", bench::Fmt(seq, 1)});
  t1.Print();
  printf("  speedup: %.1fx\n", seq / par);
  printf("  (re-execution CPU overlaps across sessions; the per-session\n"
         "   64 KB log reads still serialize on the single log disk, which\n"
         "   bounds the speedup below the session count)\n");
  printf("  [%s] parallel recovery is at least 1.5x faster\n",
         seq > 1.5 * par ? "PASS" : "FAIL");

  printf("\n[2] DV granularity: peer crash that only 1 of 9 sessions "
         "depends on:\n");
  DvResult ps = MeasureDvGranularity(true, 8, 10);
  DvResult mw = MeasureDvGranularity(false, 8, 10);
  bench::Table t2({"mode", "requests replayed", "DV entries attached"});
  t2.AddRow({"per-session DVs", std::to_string(ps.replayed),
             std::to_string(ps.dv_entries)});
  t2.AddRow({"MSP-wide DV", std::to_string(mw.replayed),
             std::to_string(mw.dv_entries)});
  t2.Print();
  printf("  [%s] per-session DVs avoid unnecessary rollback "
         "(%llu vs %llu replayed)\n",
         ps.replayed < mw.replayed ? "PASS" : "FAIL",
         (unsigned long long)ps.replayed, (unsigned long long)mw.replayed);
}

}  // namespace
}  // namespace msplog

int main() {
  msplog::Run();
  return 0;
}
