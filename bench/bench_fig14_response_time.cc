// E1 + E2 — Figure 14 (§5.2): average response time of the five system
// configurations, and response time versus the number of calls to
// ServiceMethod2 inside ServiceMethod1.
//
// Paper reference values (ms, m = 1):
//   NoLog 8.697 < StateServer 16.658 < LoOptimistic 24.746
//   < Pessimistic 35.227 < Psession 48.617
// Expected shape: same ordering; Pessimistic grows fastest with m (two more
// flushes per extra call), LoOptimistic stays at one distributed flush, and
// StateServer closes in on LoOptimistic near m = 4.
#include <cstdio>

#include "bench_util.h"
#include "harness/paper_workload.h"

namespace msplog {
namespace {

constexpr double kTimeScale = 0.1;
constexpr int kRequests = 250;

double MeasureAvgMs(PaperConfig config, int calls_per_request) {
  PaperWorkloadOptions opts;
  opts.config = config;
  opts.time_scale = kTimeScale;
  opts.calls_per_request = calls_per_request;
  PaperWorkload w(opts);
  if (!w.Start().ok()) return -1;
  // Warm-up request (session materialization) excluded from the average.
  RunResult warm = w.RunSingleClient(5);
  (void)warm;
  RunResult r = w.RunSingleClient(kRequests);
  w.Shutdown();
  return r.avg_response_ms;
}

void Run() {
  const PaperConfig configs[] = {
      PaperConfig::kNoLog, PaperConfig::kStateServer,
      PaperConfig::kLoOptimistic, PaperConfig::kPessimistic,
      PaperConfig::kPsession};
  const double paper_m1[] = {8.697, 16.658, 24.746, 35.227, 48.617};

  bench::Header("bench_fig14_response_time",
                "Fig. 14 table + chart — avg response time (model ms), "
                "5 configurations, m = 1..4 calls per request");

  bench::Table table({"config", "paper(m=1)", "m=1", "m=2", "m=3", "m=4"});
  double measured_m1[5];
  for (int c = 0; c < 5; ++c) {
    std::vector<std::string> row;
    row.push_back(PaperConfigName(configs[c]));
    row.push_back(bench::Fmt(paper_m1[c], 3));
    for (int m = 1; m <= 4; ++m) {
      double ms = MeasureAvgMs(configs[c], m);
      if (m == 1) measured_m1[c] = ms;
      row.push_back(bench::Fmt(ms));
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  printf("\nshape checks (m=1):\n");
  auto check = [&](const char* what, bool ok) {
    printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  };
  check("NoLog < StateServer", measured_m1[0] < measured_m1[1]);
  check("StateServer < LoOptimistic", measured_m1[1] < measured_m1[2]);
  check("LoOptimistic < Pessimistic", measured_m1[2] < measured_m1[3]);
  check("Pessimistic < Psession", measured_m1[3] < measured_m1[4]);
  double reduction = (measured_m1[3] - measured_m1[2]) / measured_m1[3];
  printf("  LoOptimistic reduces response time vs Pessimistic by %.0f%% "
         "(paper: ~30%%)\n", reduction * 100.0);
}

}  // namespace
}  // namespace msplog

int main() {
  msplog::Run();
  return 0;
}
