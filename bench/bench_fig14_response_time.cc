// E1 + E2 — Figure 14 (§5.2): average response time of the five system
// configurations, and response time versus the number of calls to
// ServiceMethod2 inside ServiceMethod1.
//
// Paper reference values (ms, m = 1):
//   NoLog 8.697 < StateServer 16.658 < LoOptimistic 24.746
//   < Pessimistic 35.227 < Psession 48.617
// Expected shape: same ordering; Pessimistic grows fastest with m (two more
// flushes per extra call), LoOptimistic stays at one distributed flush, and
// StateServer closes in on LoOptimistic near m = 4.
//
// Besides the table, every measurement emits a BENCH_JSON line carrying the
// p50/p90/p99 response-time quantiles and the server-side queue-wait /
// execute / flush-wait histogram breakdowns (delta over the measured run).
// `--quick` runs a single cheap measurement (LoOptimistic, m = 1) — used by
// scripts/check_bench_json.py in CTest to validate the JSON schema.
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "harness/paper_workload.h"

namespace msplog {
namespace {

constexpr int kRequests = 250;

struct Measurement {
  RunResult r;
  obs::Histogram::Snapshot queue_wait;
  obs::Histogram::Snapshot execute;
  obs::Histogram::Snapshot flush_wait;
  uint64_t tracer_dropped = 0;
};

Measurement Measure(PaperConfig config, int calls_per_request,
                    double time_scale, int requests) {
  PaperWorkloadOptions opts;
  opts.config = config;
  opts.time_scale = time_scale;
  opts.calls_per_request = calls_per_request;
  PaperWorkload w(opts);
  Measurement out;
  if (!w.Start().ok()) {
    out.r.avg_response_ms = -1;
    return out;
  }
  // Warm-up request (session materialization) excluded from the average.
  RunResult warm = w.RunSingleClient(5);
  (void)warm;
  obs::MetricsRegistry& m = w.env()->metrics();
  obs::Histogram::Snapshot q0 = m.GetHistogram("msp.queue_wait_ms")->Snap();
  obs::Histogram::Snapshot e0 = m.GetHistogram("msp.execute_ms")->Snap();
  obs::Histogram::Snapshot f0 = m.GetHistogram("msp.flush_wait_ms")->Snap();
  out.r = w.RunSingleClient(requests);
  out.queue_wait = m.GetHistogram("msp.queue_wait_ms")->Snap().Delta(q0);
  out.execute = m.GetHistogram("msp.execute_ms")->Snap().Delta(e0);
  out.flush_wait = m.GetHistogram("msp.flush_wait_ms")->Snap().Delta(f0);
  out.tracer_dropped = w.env()->tracer().dropped();
  w.Shutdown();
  return out;
}

void Emit(PaperConfig config, int m, const Measurement& meas) {
  bench::Json j;
  j.Add("config", PaperConfigName(config))
      .Add("m", m)
      .Add("requests", meas.r.requests)
      .Add("avg_ms", meas.r.avg_response_ms)
      .Add("p50_ms", meas.r.p50_ms)
      .Add("p90_ms", meas.r.p90_ms)
      .Add("p99_ms", meas.r.p99_ms)
      .Add("max_ms", meas.r.max_response_ms)
      .Add("throughput_rps", meas.r.throughput_rps)
      .Add("response", meas.r.response_hist)
      .Add("queue_wait", meas.queue_wait)
      .Add("execute", meas.execute)
      .Add("flush_wait", meas.flush_wait);
  bench::AddTracerHealth(&j, meas.tracer_dropped);
  bench::EmitJson("fig14_response_time", j);
}

void RunQuick() {
  bench::Header("bench_fig14_response_time --quick",
                "schema smoke: LoOptimistic, m = 1, small request count");
  Measurement meas =
      Measure(PaperConfig::kLoOptimistic, 1, /*time_scale=*/0.05,
              /*requests=*/40);
  printf("avg %.2f ms  p50 %.2f  p90 %.2f  p99 %.2f\n",
         meas.r.avg_response_ms, meas.r.p50_ms, meas.r.p90_ms, meas.r.p99_ms);
  Emit(PaperConfig::kLoOptimistic, 1, meas);
}

void Run() {
  const double kTimeScale = 0.1;
  const PaperConfig configs[] = {
      PaperConfig::kNoLog, PaperConfig::kStateServer,
      PaperConfig::kLoOptimistic, PaperConfig::kPessimistic,
      PaperConfig::kPsession};
  const double paper_m1[] = {8.697, 16.658, 24.746, 35.227, 48.617};

  bench::Header("bench_fig14_response_time",
                "Fig. 14 table + chart — avg response time (model ms), "
                "5 configurations, m = 1..4 calls per request");

  bench::Table table(
      {"config", "paper(m=1)", "m=1", "p50", "p90", "p99", "m=2", "m=3",
       "m=4"});
  double measured_m1[5];
  for (int c = 0; c < 5; ++c) {
    std::vector<std::string> row;
    row.push_back(PaperConfigName(configs[c]));
    row.push_back(bench::Fmt(paper_m1[c], 3));
    for (int m = 1; m <= 4; ++m) {
      Measurement meas = Measure(configs[c], m, kTimeScale, kRequests);
      Emit(configs[c], m, meas);
      if (m == 1) {
        measured_m1[c] = meas.r.avg_response_ms;
        row.push_back(bench::Fmt(meas.r.avg_response_ms));
        row.push_back(bench::Fmt(meas.r.p50_ms));
        row.push_back(bench::Fmt(meas.r.p90_ms));
        row.push_back(bench::Fmt(meas.r.p99_ms));
      } else {
        row.push_back(bench::Fmt(meas.r.avg_response_ms));
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  printf("\nshape checks (m=1):\n");
  auto check = [&](const char* what, bool ok) {
    printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  };
  check("NoLog < StateServer", measured_m1[0] < measured_m1[1]);
  check("StateServer < LoOptimistic", measured_m1[1] < measured_m1[2]);
  check("LoOptimistic < Pessimistic", measured_m1[2] < measured_m1[3]);
  check("Pessimistic < Psession", measured_m1[3] < measured_m1[4]);
  double reduction = (measured_m1[3] - measured_m1[2]) / measured_m1[3];
  printf("  LoOptimistic reduces response time vs Pessimistic by %.0f%% "
         "(paper: ~30%%)\n", reduction * 100.0);
}

}  // namespace
}  // namespace msplog

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  if (quick) {
    msplog::RunQuick();
  } else {
    msplog::Run();
  }
  return 0;
}
