// E1 + E2 — Figure 14 (§5.2): average response time of the five system
// configurations, and response time versus the number of calls to
// ServiceMethod2 inside ServiceMethod1.
//
// Paper reference values (ms, m = 1):
//   NoLog 8.697 < StateServer 16.658 < LoOptimistic 24.746
//   < Pessimistic 35.227 < Psession 48.617
// Expected shape: same ordering; Pessimistic grows fastest with m (two more
// flushes per extra call), LoOptimistic stays at one distributed flush, and
// StateServer closes in on LoOptimistic near m = 4.
//
// Besides the table, every measurement emits a BENCH_JSON line carrying the
// p50/p90/p99 response-time quantiles and the server-side queue-wait /
// execute / flush-wait histogram breakdowns (delta over the measured run).
// `--quick` runs a single cheap measurement (LoOptimistic, m = 1) — used by
// scripts/check_bench_json.py in CTest to validate the JSON schema.
#include <cstdio>
#include <cstring>
#include <fstream>

#include "bench_util.h"
#include "harness/paper_workload.h"
#include "obs/blame.h"
#include "obs/session_stats.h"

namespace msplog {
namespace {

constexpr int kRequests = 250;

struct Measurement {
  RunResult r;
  obs::Histogram::Snapshot queue_wait;
  obs::Histogram::Snapshot execute;
  obs::Histogram::Snapshot flush_wait;
  uint64_t tracer_dropped = 0;
  std::string telemetry_json = "[]";  ///< per-session SessionStats, both MSPs
  std::string blame_json = "{}";      ///< p99 tail-latency attribution
  // Populated only when the background scraper ran during the measurement.
  uint64_t scrape_samples = 0;
  std::string prom_dump;
  std::string scrape_json;
  // Populated by MeasureScraperOverhead only.
  double avg_ms_scraper_off = 0;
  double overhead_pct = 0;
};

Measurement Measure(PaperConfig config, int calls_per_request,
                    double time_scale, int requests, bool scrape = false) {
  PaperWorkloadOptions opts;
  opts.config = config;
  opts.time_scale = time_scale;
  opts.calls_per_request = calls_per_request;
  PaperWorkload w(opts);
  Measurement out;
  if (!w.Start().ok()) {
    out.r.avg_response_ms = -1;
    return out;
  }
  if (scrape) {
    // Default period: the overhead acceptance criterion is measured against
    // exactly this configuration.
    w.env()->scraper().WatchAllRegistered();
    w.msp1()->RegisterTelemetryProbes(&w.env()->scraper());
    w.msp2()->RegisterTelemetryProbes(&w.env()->scraper());
    w.env()->scraper().Start();
  }
  // Warm-up request (session materialization) excluded from the average.
  RunResult warm = w.RunSingleClient(5);
  (void)warm;
  obs::MetricsRegistry& m = w.env()->metrics();
  obs::Histogram::Snapshot q0 = m.GetHistogram("msp.queue_wait_ms")->Snap();
  obs::Histogram::Snapshot e0 = m.GetHistogram("msp.execute_ms")->Snap();
  obs::Histogram::Snapshot f0 = m.GetHistogram("msp.flush_wait_ms")->Snap();
  out.r = w.RunSingleClient(requests);
  out.queue_wait = m.GetHistogram("msp.queue_wait_ms")->Snap().Delta(q0);
  out.execute = m.GetHistogram("msp.execute_ms")->Snap().Delta(e0);
  out.flush_wait = m.GetHistogram("msp.flush_wait_ms")->Snap().Delta(f0);
  out.tracer_dropped = w.env()->tracer().dropped();

  std::vector<obs::SessionStatsSnapshot> tel = w.msp1()->SessionTelemetry();
  std::vector<obs::SessionStatsSnapshot> tel2 = w.msp2()->SessionTelemetry();
  tel.insert(tel.end(), tel2.begin(), tel2.end());
  out.telemetry_json = obs::SessionTelemetryJson(tel);
  out.blame_json =
      obs::AttributeTailQuantile(w.env()->tracer().Events(), 0.99).ToJson();

  if (scrape) {
    w.env()->scraper().Stop();
    out.scrape_samples = w.env()->scraper().samples_taken();
    out.prom_dump = w.env()->scraper().DumpPrometheus();
    out.scrape_json = w.env()->scraper().DumpJson();
  }
  w.Shutdown();
  return out;
}

void Emit(PaperConfig config, int m, const Measurement& meas) {
  bench::Json j;
  j.Add("config", PaperConfigName(config))
      .Add("m", m)
      .Add("requests", meas.r.requests)
      .Add("avg_ms", meas.r.avg_response_ms)
      .Add("p50_ms", meas.r.p50_ms)
      .Add("p90_ms", meas.r.p90_ms)
      .Add("p99_ms", meas.r.p99_ms)
      .Add("max_ms", meas.r.max_response_ms)
      .Add("throughput_rps", meas.r.throughput_rps)
      .Add("response", meas.r.response_hist)
      .Add("queue_wait", meas.queue_wait)
      .Add("execute", meas.execute)
      .Add("flush_wait", meas.flush_wait)
      .AddRaw("session_telemetry", meas.telemetry_json)
      .AddRaw("p99_blame", meas.blame_json);
  bench::AddTracerHealth(&j, meas.tracer_dropped);
  bench::EmitJson("fig14_response_time", j);
}

// Scraper overhead via interleaved off/on phases inside ONE workload.
// Separate off/on processes drift by several percent run to run (model time
// is wall-clock derived, so sleep overshoot and scheduling noise leak in),
// which would swamp the scraper's true cost. Instead: one long-lived
// workload, a generous warm-up (the first phase of a process runs
// measurably slower), then eight phases in an ABBA-BAAB pattern — off when
// the letter is A, scraper running at its default period when B — which
// cancels linear drift across the run. Each arm's response histograms are
// merged and the two arm means compared. Runs at time scale 1.0, where
// sleep overshoot is the smallest fraction of the sleep itself.
Measurement MeasureScraperOverhead() {
  const double kScale = 1.0;
  const int kPhaseRequests = 30;
  const bool kScrapeOn[8] = {false, true,  true,  false,
                             true,  false, false, true};
  PaperWorkloadOptions opts;
  opts.config = PaperConfig::kLoOptimistic;
  opts.time_scale = kScale;
  opts.calls_per_request = 1;
  // Background checkpoints collide with requests at random, and the §5.2
  // OS-interference coin flip turns one in three disk I/Os into a full
  // random seek. Both add request-to-request variance orders of magnitude
  // above the effect being measured; with them off the model latencies are
  // deterministic and the residual noise is just sleep overshoot.
  opts.checkpoint_daemon = false;
  opts.os_interference_prob = 0.0;
  PaperWorkload w(opts);
  Measurement out;
  if (!w.Start().ok()) {
    out.r.avg_response_ms = -1;
    return out;
  }
  RunResult warm = w.RunSingleClient(30);
  (void)warm;

  w.env()->scraper().WatchAllRegistered();
  w.msp1()->RegisterTelemetryProbes(&w.env()->scraper());
  w.msp2()->RegisterTelemetryProbes(&w.env()->scraper());

  obs::Histogram::Snapshot on_hist, off_hist;
  double on_sum = 0, off_sum = 0;
  int on_n = 0, off_n = 0;
  for (bool scrape : kScrapeOn) {
    if (scrape) w.env()->scraper().Start();
    RunResult r = w.RunSingleClient(kPhaseRequests);
    if (scrape) {
      w.env()->scraper().Stop();
      on_hist.Merge(r.response_hist);
      on_sum += r.avg_response_ms;
      ++on_n;
    } else {
      off_hist.Merge(r.response_hist);
      off_sum += r.avg_response_ms;
      ++off_n;
    }
  }
  out.scrape_samples = w.env()->scraper().samples_taken();
  out.prom_dump = w.env()->scraper().DumpPrometheus();
  out.scrape_json = w.env()->scraper().DumpJson();

  out.r.requests = on_hist.count;
  out.r.avg_response_ms = on_sum / on_n;
  out.r.p50_ms = on_hist.P50();
  out.r.p90_ms = on_hist.P90();
  out.r.p99_ms = on_hist.P99();
  out.r.response_hist = on_hist;
  out.avg_ms_scraper_off = off_sum / off_n;
  out.overhead_pct =
      out.avg_ms_scraper_off > 0
          ? 100.0 * (out.r.avg_response_ms - out.avg_ms_scraper_off) /
                out.avg_ms_scraper_off
          : 0;

  std::vector<obs::SessionStatsSnapshot> tel = w.msp1()->SessionTelemetry();
  std::vector<obs::SessionStatsSnapshot> tel2 = w.msp2()->SessionTelemetry();
  tel.insert(tel.end(), tel2.begin(), tel2.end());
  out.telemetry_json = obs::SessionTelemetryJson(tel);
  out.blame_json =
      obs::AttributeTailQuantile(w.env()->tracer().Events(), 0.99).ToJson();
  out.tracer_dropped = w.env()->tracer().dropped();
  w.Shutdown();
  return out;
}

void RunQuick(const std::string& scrape_dump_prefix) {
  bench::Header("bench_fig14_response_time --quick",
                "schema smoke: LoOptimistic, m = 1, small request count; "
                "plus scraper-overhead before/after");
  Measurement off =
      Measure(PaperConfig::kLoOptimistic, 1, /*time_scale=*/0.05,
              /*requests=*/40);
  printf("avg %.2f ms  p50 %.2f  p90 %.2f  p99 %.2f\n",
         off.r.avg_response_ms, off.r.p50_ms, off.r.p90_ms, off.r.p99_ms);
  Emit(PaperConfig::kLoOptimistic, 1, off);

  Measurement ov = MeasureScraperOverhead();
  printf("scraper on: avg %.2f ms (off %.2f ms, overhead %+.2f%%), "
         "%llu samples\n",
         ov.r.avg_response_ms, ov.avg_ms_scraper_off, ov.overhead_pct,
         static_cast<unsigned long long>(ov.scrape_samples));
  bench::Json j;
  j.Add("config", PaperConfigName(PaperConfig::kLoOptimistic))
      .Add("m", 1)
      .Add("requests", ov.r.requests)
      .Add("avg_ms", ov.r.avg_response_ms)
      .Add("p50_ms", ov.r.p50_ms)
      .Add("p90_ms", ov.r.p90_ms)
      .Add("p99_ms", ov.r.p99_ms)
      .Add("avg_ms_scraper_off", ov.avg_ms_scraper_off)
      .Add("avg_ms_scraper_on", ov.r.avg_response_ms)
      .Add("scraper_overhead_pct", ov.overhead_pct)
      .Add("scraper_samples", ov.scrape_samples)
      .AddRaw("session_telemetry", ov.telemetry_json)
      .AddRaw("p99_blame", ov.blame_json);
  bench::AddTracerHealth(&j, ov.tracer_dropped);
  bench::EmitJson("fig14_scraper_overhead", j);

  if (!scrape_dump_prefix.empty()) {
    std::ofstream prom(scrape_dump_prefix + ".prom");
    prom << ov.prom_dump;
    std::ofstream sj(scrape_dump_prefix + ".json");
    sj << ov.scrape_json;
    printf("scrape dumps: %s.prom, %s.json\n", scrape_dump_prefix.c_str(),
           scrape_dump_prefix.c_str());
  }
}

void Run() {
  const double kTimeScale = 0.1;
  const PaperConfig configs[] = {
      PaperConfig::kNoLog, PaperConfig::kStateServer,
      PaperConfig::kLoOptimistic, PaperConfig::kPessimistic,
      PaperConfig::kPsession};
  const double paper_m1[] = {8.697, 16.658, 24.746, 35.227, 48.617};

  bench::Header("bench_fig14_response_time",
                "Fig. 14 table + chart — avg response time (model ms), "
                "5 configurations, m = 1..4 calls per request");

  bench::Table table(
      {"config", "paper(m=1)", "m=1", "p50", "p90", "p99", "m=2", "m=3",
       "m=4"});
  double measured_m1[5];
  for (int c = 0; c < 5; ++c) {
    std::vector<std::string> row;
    row.push_back(PaperConfigName(configs[c]));
    row.push_back(bench::Fmt(paper_m1[c], 3));
    for (int m = 1; m <= 4; ++m) {
      Measurement meas = Measure(configs[c], m, kTimeScale, kRequests);
      Emit(configs[c], m, meas);
      if (m == 1) {
        measured_m1[c] = meas.r.avg_response_ms;
        row.push_back(bench::Fmt(meas.r.avg_response_ms));
        row.push_back(bench::Fmt(meas.r.p50_ms));
        row.push_back(bench::Fmt(meas.r.p90_ms));
        row.push_back(bench::Fmt(meas.r.p99_ms));
      } else {
        row.push_back(bench::Fmt(meas.r.avg_response_ms));
      }
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  printf("\nshape checks (m=1):\n");
  auto check = [&](const char* what, bool ok) {
    printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  };
  check("NoLog < StateServer", measured_m1[0] < measured_m1[1]);
  check("StateServer < LoOptimistic", measured_m1[1] < measured_m1[2]);
  check("LoOptimistic < Pessimistic", measured_m1[2] < measured_m1[3]);
  check("Pessimistic < Psession", measured_m1[3] < measured_m1[4]);
  double reduction = (measured_m1[3] - measured_m1[2]) / measured_m1[3];
  printf("  LoOptimistic reduces response time vs Pessimistic by %.0f%% "
         "(paper: ~30%%)\n", reduction * 100.0);
}

}  // namespace
}  // namespace msplog

int main(int argc, char** argv) {
  bool quick = false;
  std::string scrape_dump_prefix;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--scrape-dump") == 0 && i + 1 < argc) {
      scrape_dump_prefix = argv[++i];
    }
  }
  if (quick) {
    msplog::RunQuick(scrape_dump_prefix);
  } else {
    msplog::Run();
  }
  return 0;
}
