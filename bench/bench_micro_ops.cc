// Micro-benchmarks (google-benchmark) for the hot primitives of the
// recovery infrastructure: log-record encoding, framed appends, dependency-
// vector merges and orphan checks, CRC32C, and log scanning. These quantify
// TDV and the CPU side of the logging overhead discussed in §5.2.
#include <benchmark/benchmark.h>

#include "common/crc32c.h"
#include "log/log_file.h"
#include "log/log_record.h"
#include "log/log_scanner.h"
#include "recovery/dependency_vector.h"
#include "recovery/recovered_state_table.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"

namespace msplog {
namespace {

LogRecord SampleRecord(size_t payload, int dv_entries) {
  LogRecord r;
  r.type = LogRecordType::kRequestReceive;
  r.session_id = "client7/se42";
  r.seqno = 123456;
  r.target = "ServiceMethod1";
  r.payload = MakePayload(payload, 1);
  if (dv_entries > 0) {
    r.has_dv = true;
    for (int i = 0; i < dv_entries; ++i) {
      r.dv.Set("msp" + std::to_string(i), {1, 1000000ull + i});
    }
  }
  return r;
}

void BM_LogRecordEncode(benchmark::State& state) {
  LogRecord r = SampleRecord(state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.Encode());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LogRecordEncode)->Arg(100)->Arg(1024)->Arg(8192);

void BM_LogRecordDecode(benchmark::State& state) {
  Bytes encoded = SampleRecord(state.range(0), 2).Encode();
  LogRecord out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LogRecord::Decode(encoded, &out));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LogRecordDecode)->Arg(100)->Arg(1024)->Arg(8192);

void BM_LogAppend(benchmark::State& state) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  LogFile log(&env, &disk, "log");
  LogRecord r = SampleRecord(state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.Append(r));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LogAppend)->Arg(100)->Arg(1024);

void BM_DvMerge(benchmark::State& state) {
  DependencyVector a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a.Set("msp" + std::to_string(i), {1, 100ull + i});
    b.Set("msp" + std::to_string(i), {1, 200ull + i});
  }
  for (auto _ : state) {
    DependencyVector c = a;
    c.Merge(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_DvMerge)->Arg(2)->Arg(8)->Arg(32);

void BM_OrphanCheck(benchmark::State& state) {
  RecoveredStateTable table;
  DependencyVector dv;
  for (int i = 0; i < state.range(0); ++i) {
    table.Record("msp" + std::to_string(i), 1, 1000);
    dv.Set("msp" + std::to_string(i), {1, 900ull});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.IsOrphanDv(dv));
  }
}
BENCHMARK(BM_OrphanCheck)->Arg(2)->Arg(8)->Arg(32);

void BM_Crc32c(benchmark::State& state) {
  Bytes data = MakePayload(state.range(0), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Compute(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(512)->Arg(4096)->Arg(65536);

void BM_LogScan(benchmark::State& state) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  disk.set_charge_latency(false);
  LogFile log(&env, &disk, "log");
  for (int i = 0; i < state.range(0); ++i) {
    log.Append(SampleRecord(256, 2));
  }
  log.FlushAll();
  uint64_t size = disk.FileSize("log");
  for (auto _ : state) {
    LogScanner scanner(&disk, "log", 0, size);
    LogRecord r;
    int n = 0;
    while (scanner.Next(&r).ok()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LogScan)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace msplog

BENCHMARK_MAIN();
