// Micro-benchmarks (google-benchmark) for the hot primitives of the
// recovery infrastructure: log-record encoding, framed appends, dependency-
// vector merges and orphan checks, CRC32C, and log scanning. These quantify
// TDV and the CPU side of the logging overhead discussed in §5.2.
//
// Two modes:
//   (default)  google-benchmark suite, full statistical output.
//   --json     quick hand-timed pass over the three hot-path primitives
//              (append / encode / enqueue) emitting one BENCH_JSON
//              "micro_ops" blob for the perf-regression oracle
//              (scripts/compare_bench.py vs bench/baselines/micro_ops.json).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>

#include "bench_util.h"
#include "common/crc32c.h"
#include "common/mpsc_queue.h"
#include "common/serde.h"
#include "common/task.h"
#include "log/log_file.h"
#include "log/log_record.h"
#include "log/log_scanner.h"
#include "recovery/dependency_vector.h"
#include "recovery/recovered_state_table.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"

namespace msplog {
namespace {

LogRecord SampleRecord(size_t payload, int dv_entries) {
  LogRecord r;
  r.type = LogRecordType::kRequestReceive;
  r.session_id = "client7/se42";
  r.seqno = 123456;
  r.target = "ServiceMethod1";
  r.payload = MakePayload(payload, 1);
  if (dv_entries > 0) {
    r.has_dv = true;
    for (int i = 0; i < dv_entries; ++i) {
      r.dv.Set("msp" + std::to_string(i), {1, 1000000ull + i});
    }
  }
  return r;
}

void BM_LogRecordEncode(benchmark::State& state) {
  LogRecord r = SampleRecord(state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.Encode());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LogRecordEncode)->Arg(100)->Arg(1024)->Arg(8192);

void BM_LogRecordDecode(benchmark::State& state) {
  Bytes encoded = SampleRecord(state.range(0), 2).Encode();
  LogRecord out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LogRecord::Decode(encoded, &out));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LogRecordDecode)->Arg(100)->Arg(1024)->Arg(8192);

void BM_LogAppend(benchmark::State& state) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  LogFile log(&env, &disk, "log");
  LogRecord r = SampleRecord(state.range(0), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.Append(r));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LogAppend)->Arg(100)->Arg(1024);

// Zero-copy encode: size-precomputed EncodeTo into a caller span, the path
// Append uses to write straight into the log arena.
void BM_LogRecordEncodeTo(benchmark::State& state) {
  LogRecord r = SampleRecord(state.range(0), 2);
  Bytes buf(r.EncodedSize(), '\0');
  for (auto _ : state) {
    BinaryWriter w(buf.data(), buf.size());
    r.EncodeTo(&w);
    benchmark::DoNotOptimize(w.size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LogRecordEncodeTo)->Arg(100)->Arg(1024)->Arg(8192);

// Append with the batch-DV piggyback: consecutive records share one
// pre-encoded DV, so the per-append cost drops to frame + body copy.
void BM_LogAppendDvCached(benchmark::State& state) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  disk.set_charge_latency(false);
  LogFile log(&env, &disk, "log");
  LogRecord r = SampleRecord(state.range(0), 2);
  Bytes dv_wire;
  {
    BinaryWriter w(&dv_wire);
    r.dv.EncodeTo(&w);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.Append(r, nullptr, &dv_wire));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LogAppendDvCached)->Arg(100)->Arg(1024);

// Hot-path intake primitive: one MPSC enqueue + dequeue of the pool's
// small-buffer task type (no allocation for lambdas under the SBO bound).
void BM_MpscTaskQueue(benchmark::State& state) {
  MpscQueue<Task> q(1024, "bench.q");
  uint64_t sink = 0;
  for (auto _ : state) {
    q.Push(Task([&sink] { ++sink; }));
    Task t;
    if (q.TryPop(&t)) t();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_MpscTaskQueue);

void BM_DvMerge(benchmark::State& state) {
  DependencyVector a, b;
  for (int i = 0; i < state.range(0); ++i) {
    a.Set("msp" + std::to_string(i), {1, 100ull + i});
    b.Set("msp" + std::to_string(i), {1, 200ull + i});
  }
  for (auto _ : state) {
    DependencyVector c = a;
    c.Merge(b);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_DvMerge)->Arg(2)->Arg(8)->Arg(32);

void BM_OrphanCheck(benchmark::State& state) {
  RecoveredStateTable table;
  DependencyVector dv;
  for (int i = 0; i < state.range(0); ++i) {
    table.Record("msp" + std::to_string(i), 1, 1000);
    dv.Set("msp" + std::to_string(i), {1, 900ull});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.IsOrphanDv(dv));
  }
}
BENCHMARK(BM_OrphanCheck)->Arg(2)->Arg(8)->Arg(32);

void BM_Crc32c(benchmark::State& state) {
  Bytes data = MakePayload(state.range(0), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32c::Compute(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(512)->Arg(4096)->Arg(65536);

void BM_LogScan(benchmark::State& state) {
  SimEnvironment env(0.0);
  SimDisk disk(&env, "d");
  disk.set_charge_latency(false);
  LogFile log(&env, &disk, "log");
  for (int i = 0; i < state.range(0); ++i) {
    log.Append(SampleRecord(256, 2));
  }
  log.FlushAll();
  uint64_t size = disk.FileSize("log");
  for (auto _ : state) {
    LogScanner scanner(&disk, "log", 0, size);
    LogRecord r;
    int n = 0;
    while (scanner.Next(&r).ok()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LogScan)->Arg(1000)->Arg(10000);

// ---------------------------------------------------------------------------
// --json quick mode: hand-timed loops over the three hot-path primitives,
// one BENCH_JSON blob for the perf-regression oracle. Wall-clock timing on
// purpose — these are CPU micro-costs, the sim clock plays no part.
// ---------------------------------------------------------------------------

double NsPerOp(const std::chrono::steady_clock::time_point& t0,
               const std::chrono::steady_clock::time_point& t1, uint64_t ops) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
             .count() /
         static_cast<double>(ops);
}

void RunQuickJson() {
  using Clock = std::chrono::steady_clock;
  constexpr int kPayloadBytes = 100;
  constexpr uint64_t kOps = 200000;
  LogRecord rec = SampleRecord(kPayloadBytes, 2);

  // encode (allocating Encode(), the pre-overhaul hot path)
  auto t0 = Clock::now();
  for (uint64_t i = 0; i < kOps; ++i) {
    Bytes b = rec.Encode();
    benchmark::DoNotOptimize(b);
  }
  auto t1 = Clock::now();
  const double encode_ns = NsPerOp(t0, t1, kOps);

  // encode_to (size-precomputed zero-copy span encode)
  Bytes span(rec.EncodedSize(), '\0');
  t0 = Clock::now();
  for (uint64_t i = 0; i < kOps; ++i) {
    BinaryWriter w(span.data(), span.size());
    rec.EncodeTo(&w);
    benchmark::DoNotOptimize(w.size());
  }
  t1 = Clock::now();
  const double encode_to_ns = NsPerOp(t0, t1, kOps);

  // append (sustained pipeline: reserve → encode-into-arena → lock-free
  // commit, with the log-writer draining concurrently — the steady-state
  // appends/sec number). The warmup pass sizes, faults, and recycles the
  // arenas so the timed window measures the hot path, not first-touch cost.
  double append_ns = 0;
  {
    SimEnvironment env(0.0);
    SimDisk disk(&env, "d");
    disk.set_charge_latency(false);
    LogFile log(&env, &disk, "log");
    Bytes dv_wire;
    {
      BinaryWriter w(&dv_wire);
      rec.dv.EncodeTo(&w);
    }
    for (uint64_t i = 0; i < kOps / 4; ++i) {
      log.Append(rec, nullptr, &dv_wire);
    }
    log.FlushAll();
    t0 = Clock::now();
    for (uint64_t i = 0; i < kOps; ++i) {
      benchmark::DoNotOptimize(log.Append(rec, nullptr, &dv_wire));
    }
    t1 = Clock::now();
    append_ns = NsPerOp(t0, t1, kOps);
    log.FlushAll();
  }

  // append_cold (one big never-drained buffer from a cold start: includes
  // arena growth copies and first-touch page faults — the worst-case burst)
  double append_cold_ns = 0;
  {
    SimEnvironment env(0.0);
    SimDisk disk(&env, "d2");
    disk.set_charge_latency(false);
    LogFileOptions lopt;
    lopt.max_buffer_bytes = 256 << 20;
    LogFile log(&env, &disk, "log", lopt);
    Bytes dv_wire;
    {
      BinaryWriter w(&dv_wire);
      rec.dv.EncodeTo(&w);
    }
    t0 = Clock::now();
    for (uint64_t i = 0; i < kOps; ++i) {
      benchmark::DoNotOptimize(log.Append(rec, nullptr, &dv_wire));
    }
    t1 = Clock::now();
    append_cold_ns = NsPerOp(t0, t1, kOps);
    log.FlushAll();
  }

  // enqueue (MPSC push + pop of an SBO task, the intake hot path)
  double enqueue_ns = 0;
  {
    MpscQueue<Task> q(1024, "bench.q");
    uint64_t sink = 0;
    t0 = Clock::now();
    for (uint64_t i = 0; i < kOps; ++i) {
      q.Push(Task([&sink] { ++sink; }));
      Task t;
      if (q.TryPop(&t)) t();
    }
    t1 = Clock::now();
    enqueue_ns = NsPerOp(t0, t1, kOps);
    benchmark::DoNotOptimize(sink);
  }

  bench::Json j;
  j.Add("payload_bytes", kPayloadBytes);
  j.Add("ops", kOps);
  j.Add("append_ns", append_ns);
  j.Add("appends_per_sec", append_ns > 0 ? 1e9 / append_ns : 0.0);
  j.Add("append_cold_ns", append_cold_ns);
  j.Add("encode_ns", encode_ns);
  j.Add("encode_to_ns", encode_to_ns);
  j.Add("enqueue_ns", enqueue_ns);
  bench::EmitJson("micro_ops", j);
}

}  // namespace
}  // namespace msplog

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      msplog::RunQuickJson();
      return 0;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
