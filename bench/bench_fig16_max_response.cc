// E5 — Figure 16 table (§5.4): maximum response time with crashes, with
// checkpointing but no crashes, and without checkpointing, for both logging
// methods, plus the no-crash maxima of the three baselines.
//
// Paper values (ms): LoOptimistic 3245/490/123, Pessimistic 2360/150/133;
// NoLog 217, StateServer 544, Psession 660.
// Shape: Crash >> NoCrash >= NoCp; LoOptimistic's crash maximum exceeds
// Pessimistic's (SE1's orphan recovery at MSP1 replays up to a checkpoint
// interval of requests); checkpointing raises the no-crash maximum more for
// LoOptimistic (distributed vs local flush before a session checkpoint);
// the average stays low even with crashes.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "harness/paper_workload.h"

namespace msplog {
namespace {

constexpr double kTimeScale = 0.05;
constexpr int kRequests = 800;
// Scaled thresholds. The paper ran 20K requests with a 1 MB threshold
// (a session checkpoint every ~682 requests) and a crash every 1000. Our
// 800-request runs scale both: the crash column uses 96 KB (~85 requests
// per checkpoint, so a crash replays up to one comparable checkpoint
// interval) and the no-crash columns use 32 KB (~28 checkpoints per run,
// the paper's per-run checkpoint count) so the checkpoint cost is visible
// in the maximum statistic.
constexpr uint64_t kCrashThreshold = 512ull << 10;
constexpr uint64_t kNoCrashThreshold = 32ull << 10;
constexpr int kCrashEvery = 100;  // 1:10-scaled 1/1000
// The maximum is a noisy statistic; like the paper's 20K-request runs (20
// crash events), we aggregate several runs and report the worst case.
constexpr int kReps = 3;

struct Result {
  double max_ms = 0;
  double avg_ms = 0;
};

Result MeasureOnce(PaperConfig config, uint64_t threshold, int crash_every) {
  PaperWorkloadOptions opts;
  opts.config = config;
  // No-crash columns run at a finer time scale: the checkpoint stall being
  // measured is a few model ms, so scheduling jitter (which scales as
  // 1/time_scale) must stay below it.
  opts.time_scale = crash_every > 0 ? kTimeScale : 2 * kTimeScale;
  opts.session_checkpoint_threshold_bytes = threshold;
  // Deterministic disk latencies: the maximum statistic should expose
  // checkpoint and recovery stalls, not random OS-interference seeks.
  opts.os_interference_prob = 0.0;
  // 1:10-scaled recovery times need proportionally finer retry clocks, or
  // retry-timeout quantization masks the replay work being measured.
  opts.call_resend_timeout_ms = 50;
  opts.flush_timeout_ms = 40;
  opts.client_busy_backoff_ms = 20;
  PaperWorkload w(opts);
  Result out;
  if (!w.Start().ok()) return out;
  RunResult r = w.RunSingleClient(kRequests, crash_every);
  w.Shutdown();
  out.max_ms = r.max_response_ms;
  out.avg_ms = r.avg_response_ms;
  return out;
}

Result Measure(PaperConfig config, uint64_t threshold, int crash_every) {
  Result worst;
  double avg_sum = 0;
  for (int i = 0; i < kReps; ++i) {
    Result r = MeasureOnce(config, threshold, crash_every);
    worst.max_ms = std::max(worst.max_ms, r.max_ms);
    avg_sum += r.avg_ms;
  }
  worst.avg_ms = avg_sum / kReps;
  return worst;
}

void Run() {
  bench::Header("bench_fig16_max_response",
                "Fig. 16 table — maximum response time (model ms): "
                "Crash / NoCrash / NoCp, plus baselines (1:10-scaled)");

  Result lo_crash = Measure(PaperConfig::kLoOptimistic, kCrashThreshold,
                            kCrashEvery);
  Result lo_nocrash =
      Measure(PaperConfig::kLoOptimistic, kNoCrashThreshold, 0);
  Result lo_nocp = Measure(PaperConfig::kLoOptimistic, 0, 0);
  Result pe_crash = Measure(PaperConfig::kPessimistic, kCrashThreshold,
                            kCrashEvery);
  Result pe_nocrash = Measure(PaperConfig::kPessimistic, kNoCrashThreshold, 0);
  Result pe_nocp = Measure(PaperConfig::kPessimistic, 0, 0);

  bench::Table table({"config", "Crash", "NoCrash", "NoCp",
                      "paper(Crash/NoCrash/NoCp)"});
  table.AddRow({"LoOptimistic", bench::Fmt(lo_crash.max_ms, 0),
                bench::Fmt(lo_nocrash.max_ms, 0),
                bench::Fmt(lo_nocp.max_ms, 0), "3245 / 490 / 123"});
  table.AddRow({"Pessimistic", bench::Fmt(pe_crash.max_ms, 0),
                bench::Fmt(pe_nocrash.max_ms, 0),
                bench::Fmt(pe_nocp.max_ms, 0), "2360 / 150 / 133"});
  table.Print();

  Result nolog = Measure(PaperConfig::kNoLog, 0, 0);
  Result ss = Measure(PaperConfig::kStateServer, 0, 0);
  Result ps = Measure(PaperConfig::kPsession, 0, 0);
  bench::Table base({"baseline", "max", "paper"});
  base.AddRow({"NoLog", bench::Fmt(nolog.max_ms, 0), "217"});
  base.AddRow({"StateServer", bench::Fmt(ss.max_ms, 0), "544"});
  base.AddRow({"Psession", bench::Fmt(ps.max_ms, 0), "660"});
  base.Print();

  printf("\naverages stay low despite crashes (paper: ~26 / ~36 ms):\n");
  printf("  LoOptimistic avg with crashes: %.2f ms\n", lo_crash.avg_ms);
  printf("  Pessimistic  avg with crashes: %.2f ms\n", pe_crash.avg_ms);

  printf("\nshape checks:\n");
  auto check = [](const char* what, bool ok) {
    printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  };
  check("LoOptimistic: Crash >> NoCrash",
        lo_crash.max_ms > 2 * lo_nocrash.max_ms);
  check("Pessimistic: Crash >> NoCrash",
        pe_crash.max_ms > 2 * pe_nocrash.max_ms);
  check("LoOptimistic crash max > Pessimistic crash max (orphan replay)",
        lo_crash.max_ms > pe_crash.max_ms);
  // The paper's NoCrash-vs-NoCp gap (490 vs 123 ms) comes from checkpoint
  // stalls that are large on its testbed; at our 1:10 scale the ~10 model ms
  // session-checkpoint stall sits inside scheduling jitter, so we report it
  // rather than gate on it. Fig. 15(a) captures the checkpoint cost
  // robustly as a throughput delta.
  printf("  [INFO] NoCrash vs NoCp maxima: LoOptimistic %.0f vs %.0f, "
         "Pessimistic %.0f vs %.0f (model ms)\n",
         lo_nocrash.max_ms, lo_nocp.max_ms, pe_nocrash.max_ms,
         pe_nocp.max_ms);
  check("avg with crashes stays ~1-2x the no-crash avg",
        lo_crash.avg_ms < 3 * lo_nocrash.avg_ms);
}

}  // namespace
}  // namespace msplog

int main() {
  msplog::Run();
  return 0;
}
