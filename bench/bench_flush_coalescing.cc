// Distributed-flush coalescing microbenchmark: K concurrent clients drive a
// server whose replies cross a pessimistic boundary with one peer flush leg
// each (server and peer share a domain, the end client is outside it). With
// the per-peer flush aggregator ON, legs that arrive while a kFlushRequest
// flight is in the air join it — the distributed analogue of §5.5 batch
// flushing — so flush message count and peer log flushes grow sublinearly
// in K. With it OFF every leg pays its own round trip.
//
// Sweeps K ∈ {1, 2, 4, 8, 16} in both modes and reports response-time
// quantiles plus the aggregator counters (flush.legs_requested,
// flush.legs_coalesced, flush.messages_saved, flush.peer_flushes_saved).
// Target: ≥30% fewer flush messages at K ≥ 8 with coalescing on.
//
// `--quick` runs only K = 8, fewer requests — used by
// scripts/check_bench_json.py (CTest `check_bench_json_flush`) to validate
// the BENCH_JSON schema.
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "msp/msp.h"
#include "obs/blame.h"
#include "obs/session_stats.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {
namespace {

constexpr double kTimeScale = 0.05;

struct Result {
  uint64_t requests = 0;
  obs::Histogram::Snapshot response;
  // Deltas over the measured run.
  uint64_t legs_requested = 0;
  uint64_t legs_coalesced = 0;
  uint64_t messages_saved = 0;
  uint64_t watermark_skips = 0;
  uint64_t flush_requests_sent = 0;
  uint64_t peer_flushes_saved = 0;
  uint64_t messages_sent = 0;
  uint64_t disk_flushes = 0;
  std::string telemetry_json = "[]";  ///< per-session SessionStats, all MSPs
  std::string blame_json = "{}";      ///< p99 tail-latency attribution
};

Result Measure(int clients, bool coalesce, int requests_per_client) {
  SimEnvironment env(kTimeScale);
  SimNetwork net(&env);
  // WAN-ish link: a longer flush round trip is exactly the regime the
  // aggregator targets — more legs arrive while a flight is in the air.
  net.set_default_one_way_ms(2.0);
  // Two servers and one peer share a domain. Each server's reply to its end
  // client crosses the pessimistic boundary with a flush leg to `peer` (the
  // intra-domain call makes the reply depend on peer's volatile log). Two
  // senders give the peer's inbound coalescer concurrent kFlushRequests to
  // batch; the per-sender aggregator alone already serializes each sender
  // to one in-flight request.
  DomainDirectory dir;
  dir.Assign("srv0", "domA");
  dir.Assign("srv1", "domA");
  dir.Assign("peer", "domA");
  SimDisk disk_s0(&env, "ds0"), disk_s1(&env, "ds1"), disk_p(&env, "dp");
  MspConfig cs0, cs1, cp;
  cs0.id = "srv0";
  cs1.id = "srv1";
  cp.id = "peer";
  cs0.coalesce_distributed_flushes = cs1.coalesce_distributed_flushes =
      cp.coalesce_distributed_flushes = coalesce;
  cs0.checkpoint_daemon = cs1.checkpoint_daemon = cp.checkpoint_daemon = false;
  cs0.thread_pool_size = cs1.thread_pool_size = 32;  // don't queue on workers
  Msp srv0(&env, &net, &disk_s0, &dir, cs0);
  Msp srv1(&env, &net, &disk_s1, &dir, cs1);
  Msp peer(&env, &net, &disk_p, &dir, cp);
  peer.RegisterMethod("echo", [](ServiceContext*, const Bytes& a, Bytes* r) {
    *r = a;
    return Status::OK();
  });
  for (Msp* srv : {&srv0, &srv1}) {
    srv->RegisterMethod("work", [](ServiceContext* ctx, const Bytes& a,
                                   Bytes* r) {
      return ctx->Call("peer", "echo", a, r);
    });
  }
  Result out;
  if (!peer.Start().ok() || !srv0.Start().ok() || !srv1.Start().ok()) {
    return out;
  }

  obs::MetricsRegistry& m = env.metrics();
  obs::Histogram* resp = m.GetHistogram("bench.response_ms");

  // One endpoint + session per client, reused across warm-up and the
  // measured phase (a fresh same-named session would collide with the
  // server's session state for the first one).
  std::vector<std::unique_ptr<ClientEndpoint>> endpoints;
  std::vector<ClientSession> sessions;
  for (int c = 0; c < clients; ++c) {
    endpoints.push_back(std::make_unique<ClientEndpoint>(
        &env, &net, "cli" + std::to_string(c)));
    // Split the clients across the two servers so the peer sees concurrent
    // kFlushRequests from more than one sender.
    sessions.push_back(
        endpoints.back()->StartSession("srv" + std::to_string(c % 2)));
  }
  auto run_clients = [&](int n_requests) {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        Bytes reply;
        for (int i = 0; i < n_requests; ++i) {
          CallStats stats;
          if (!endpoints[c]
                   ->Call(&sessions[c], "work", "x", &reply, &stats)
                   .ok()) {
            return;
          }
          resp->Record(stats.response_model_ms);
        }
      });
    }
    for (auto& t : threads) t.join();
  };

  // Warm-up (session materialization records) excluded from the deltas.
  run_clients(2);

  obs::Histogram::Snapshot r0 = resp->Snap();
  uint64_t legs0 = m.GetCounter("flush.legs_requested")->Value();
  uint64_t coal0 = m.GetCounter("flush.legs_coalesced")->Value();
  uint64_t saved0 = m.GetCounter("flush.messages_saved")->Value();
  uint64_t skip0 = m.GetCounter("flush.watermark_skips")->Value();
  uint64_t sent0 = m.GetCounter("flush.requests_sent")->Value();
  uint64_t psave0 = m.GetCounter("flush.peer_flushes_saved")->Value();
  auto s0 = env.stats().Snap();

  run_clients(requests_per_client);

  out.response = resp->Snap().Delta(r0);
  out.requests = out.response.count;
  out.legs_requested = m.GetCounter("flush.legs_requested")->Value() - legs0;
  out.legs_coalesced = m.GetCounter("flush.legs_coalesced")->Value() - coal0;
  out.messages_saved = m.GetCounter("flush.messages_saved")->Value() - saved0;
  out.watermark_skips = m.GetCounter("flush.watermark_skips")->Value() - skip0;
  out.flush_requests_sent =
      m.GetCounter("flush.requests_sent")->Value() - sent0;
  out.peer_flushes_saved =
      m.GetCounter("flush.peer_flushes_saved")->Value() - psave0;
  auto s1 = env.stats().Snap();
  out.messages_sent = s1.messages_sent - s0.messages_sent;
  out.disk_flushes = s1.disk_flushes - s0.disk_flushes;
  std::vector<obs::SessionStatsSnapshot> tel = srv0.SessionTelemetry();
  for (Msp* other : {&srv1, &peer}) {
    std::vector<obs::SessionStatsSnapshot> t = other->SessionTelemetry();
    tel.insert(tel.end(), t.begin(), t.end());
  }
  out.telemetry_json = obs::SessionTelemetryJson(tel);
  out.blame_json =
      obs::AttributeTailQuantile(env.tracer().Events(), 0.99).ToJson();
  srv0.Shutdown();
  srv1.Shutdown();
  peer.Shutdown();
  return out;
}

void Emit(int clients, bool coalesce, const Result& r) {
  bench::Json j;
  j.Add("clients", clients)
      .Add("coalesce", coalesce)
      .Add("requests", r.requests)
      .Add("avg_ms", r.response.Mean())
      .Add("p50_ms", r.response.P50())
      .Add("p90_ms", r.response.P90())
      .Add("p99_ms", r.response.P99())
      .Add("max_ms", r.response.max)
      .Add("response", r.response)
      .Add("legs_requested", r.legs_requested)
      .Add("legs_coalesced", r.legs_coalesced)
      .Add("messages_saved", r.messages_saved)
      .Add("watermark_skips", r.watermark_skips)
      .Add("flush_requests_sent", r.flush_requests_sent)
      .Add("peer_flushes_saved", r.peer_flushes_saved)
      .Add("messages_sent", r.messages_sent)
      .Add("disk_flushes", r.disk_flushes)
      .AddRaw("session_telemetry", r.telemetry_json)
      .AddRaw("p99_blame", r.blame_json);
  bench::EmitJson("flush_coalescing", j);
}

void RunSweep(const std::vector<int>& ks, int requests_per_client) {
  bench::Table table({"clients", "mode", "avg(ms)", "p99(ms)", "flush msgs",
                      "legs", "coalesced", "msgs saved", "peer flushes saved",
                      "disk flushes"});
  std::vector<Result> on(ks.size()), off(ks.size());
  for (size_t i = 0; i < ks.size(); ++i) {
    off[i] = Measure(ks[i], /*coalesce=*/false, requests_per_client);
    on[i] = Measure(ks[i], /*coalesce=*/true, requests_per_client);
    Emit(ks[i], false, off[i]);
    Emit(ks[i], true, on[i]);
    for (const auto* r : {&off[i], &on[i]}) {
      table.AddRow({std::to_string(ks[i]), r == &on[i] ? "coalesce" : "per-leg",
                    bench::Fmt(r->response.Mean(), 2),
                    bench::Fmt(r->response.P99(), 2),
                    std::to_string(r->flush_requests_sent),
                    std::to_string(r->legs_requested),
                    std::to_string(r->legs_coalesced),
                    std::to_string(r->messages_saved),
                    std::to_string(r->peer_flushes_saved),
                    std::to_string(r->disk_flushes)});
    }
  }
  printf("\n");
  table.Print();

  printf("\nshape checks:\n");
  auto check = [](const char* what, bool ok) {
    printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  };
  for (size_t i = 0; i < ks.size(); ++i) {
    if (ks[i] < 8) continue;
    double reduction =
        off[i].flush_requests_sent == 0
            ? 0
            : 1.0 - double(on[i].flush_requests_sent) /
                        double(off[i].flush_requests_sent);
    char buf[128];
    snprintf(buf, sizeof(buf),
             "K=%d: coalescing cuts flush messages by >=30%% (got %.0f%%)",
             ks[i], reduction * 100.0);
    check(buf, reduction >= 0.30);
  }
  if (!ks.empty()) {
    size_t last = ks.size() - 1;
    check("coalescing does not hurt mean response at max K",
          on[last].response.Mean() <= off[last].response.Mean() * 1.10);
    check("coalescing-off saves no messages (sanity)",
          off[last].messages_saved == 0 && off[last].legs_coalesced == 0);
  }
}

}  // namespace
}  // namespace msplog

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  msplog::bench::Header(
      "bench_flush_coalescing",
      "distributed-flush group commit: flush messages & response time vs "
      "concurrent clients, per-peer aggregator on/off");
  if (quick) {
    msplog::RunSweep({8}, /*requests_per_client=*/10);
  } else {
    msplog::RunSweep({1, 2, 4, 8, 16}, /*requests_per_client=*/30);
  }
  return 0;
}
