#include "audit/invariants.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace msplog {
namespace audit {

namespace {
constexpr size_t kMaxReports = 128;
}  // namespace

struct InvariantRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, uint64_t> violation_counts;
  std::map<std::string, uint64_t> note_counts;
  uint64_t total = 0;
  std::vector<std::string> reports;
  bool fatal = false;
  std::map<int, ViolationHook> hooks;  ///< wiring; survives ResetForTest
  int next_hook_id = 1;
};

namespace {
/// Violation() invoked from inside a violation hook must not re-enter the
/// hooks (e.g. a statusz dump tripping a lock assert while the flight
/// recorder freezes).
thread_local bool tls_in_violation_hook = false;
}  // namespace

InvariantRegistry::Impl& InvariantRegistry::impl() const {
  static Impl* imp = new Impl;  // audit:allow(naked-new) — leaked: outlives statics
  return *imp;
}

InvariantRegistry& InvariantRegistry::Instance() {
  static InvariantRegistry* r = new InvariantRegistry;  // audit:allow(naked-new)
  return *r;
}

void InvariantRegistry::Violation(const std::string& invariant,
                                  const std::string& detail) {
  Impl& im = impl();
  bool fatal;
  std::vector<ViolationHook> hooks;
  {
    std::lock_guard<std::mutex> lk(im.mu);
    ++im.violation_counts[invariant];
    ++im.total;
    std::string msg = "invariant '" + invariant + "' violated: " + detail;
    if (im.reports.size() < kMaxReports) im.reports.push_back(msg);
    std::fprintf(stderr, "[msplog audit] %s\n", msg.c_str());
    fatal = im.fatal;
    if (!tls_in_violation_hook) {
      hooks.reserve(im.hooks.size());
      for (const auto& [_, h] : im.hooks) hooks.push_back(h);
    }
  }
  // Hooks run unlocked (they may dump server state, taking server locks),
  // and before a fatal abort so the black box still freezes.
  if (!hooks.empty()) {
    tls_in_violation_hook = true;
    for (const auto& h : hooks) h(invariant, detail);
    tls_in_violation_hook = false;
  }
  if (fatal) std::abort();
}

int InvariantRegistry::AddViolationHook(ViolationHook hook) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  int id = im.next_hook_id++;
  im.hooks[id] = std::move(hook);
  return id;
}

void InvariantRegistry::RemoveViolationHook(int id) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  im.hooks.erase(id);
}

void InvariantRegistry::Note(const std::string& invariant,
                             const std::string& detail) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  ++im.note_counts[invariant];
  (void)detail;
}

uint64_t InvariantRegistry::violations(const std::string& invariant) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  auto it = im.violation_counts.find(invariant);
  return it == im.violation_counts.end() ? 0 : it->second;
}

uint64_t InvariantRegistry::total_violations() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  return im.total;
}

uint64_t InvariantRegistry::notes(const std::string& invariant) const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  auto it = im.note_counts.find(invariant);
  return it == im.note_counts.end() ? 0 : it->second;
}

std::vector<std::string> InvariantRegistry::reports() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  return im.reports;
}

void InvariantRegistry::set_fatal(bool v) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  im.fatal = v;
}

void InvariantRegistry::ResetForTest() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  im.violation_counts.clear();
  im.note_counts.clear();
  im.total = 0;
  im.reports.clear();
}

#if MSPLOG_AUDIT_ENABLED

void CheckDvMonotonic(const std::string& who, const DependencyVector& before,
                      const DependencyVector& after) {
  for (const auto& [msp, id] : before.entries()) {
    auto cur = after.Get(msp);
    if (!cur || *cur < id) {
      InvariantRegistry::Instance().Violation(
          "dv-monotonic",
          who + ": entry for " + msp + " regressed from " + id.ToString() +
              " to " + (cur ? cur->ToString() : "<absent>"));
    }
  }
}

void CheckDvSelfMonotonic(const std::string& who, const MspId& self,
                          const DependencyVector& dv, StateId next) {
  auto cur = dv.Get(self);
  if (cur && next < *cur) {
    InvariantRegistry::Instance().Violation(
        "dv-self-monotonic", who + ": self entry " + cur->ToString() +
                                 " would regress to " + next.ToString());
  }
}

void CheckWalBeforeSend(const std::string& who, const MspId& self,
                        uint32_t epoch, const DependencyVector& dv,
                        uint64_t durable_lsn) {
  auto id = dv.Get(self);
  if (id && id->epoch == epoch && id->sn >= durable_lsn) {
    InvariantRegistry::Instance().Violation(
        "wal-before-send",
        who + ": pessimistic send with self state " + id->ToString() +
            " but log durable only below " + std::to_string(durable_lsn));
  }
}

void CheckLsnAdvance(const std::string& who, uint64_t prev_end, uint64_t lsn) {
  if (lsn < prev_end) {
    InvariantRegistry::Instance().Violation(
        "log-scan-monotonic", who + ": record at LSN " + std::to_string(lsn) +
                                  " after cursor already reached " +
                                  std::to_string(prev_end));
  }
}

void CheckRecoveredDominates(const std::string& who,
                             const RecoveredStateTable& table,
                             const MspId& self, uint32_t current_epoch,
                             const DependencyVector& dv) {
  auto id = dv.Get(self);
  if (!id || id->epoch >= current_epoch) return;
  auto rsn = table.RecoveredSn(self, id->epoch);
  if (!rsn || *rsn < id->sn) {
    InvariantRegistry::Instance().Violation(
        "recovery-dominates",
        who + ": replayed DV depends on own state " + id->ToString() +
            " but epoch " + std::to_string(id->epoch) + " recovered only to " +
            (rsn ? std::to_string(*rsn) : std::string("<unknown>")));
  }
}

#endif  // MSPLOG_AUDIT_ENABLED

}  // namespace audit
}  // namespace msplog
