// Protocol invariant auditor — always-on runtime checks of the properties
// the paper's correctness argument rests on (Theorems 4.2/4.3 of "Log-based
// recovery for middleware servers", SIGMOD 2007):
//
//   dv-monotonic          A session's dependency vector only grows during
//                         failure-free forward execution (§3.1: DVs are
//                         merged by item-wise maximum; §3.2: per-session
//                         DVs). A component going backwards outside of
//                         orphan/crash recovery means dependencies were
//                         silently dropped — exactly the bug class that
//                         turns "exactly once" into "maybe".
//   dv-self-monotonic     The owner's own (epoch, sn) entry never regresses
//                         when a new record is appended: LSNs are strictly
//                         monotonic in the log (§3.1 state numbers).
//   wal-before-send       No message crosses a pessimistic boundary (to an
//                         end client or another service domain) while the
//                         state it depends on is not yet durable (§2.3,
//                         Fig. 7: distributed flush BEFORE send).
//   log-scan-monotonic    The analysis scan returns records at strictly
//                         increasing LSNs and never returns a record whose
//                         CRC did not verify (§4.3 single-threaded scan).
//   recovery-dominates    After crash recovery, the RecoveredStateTable
//                         dominates every replayed session DV: no session
//                         survives recovery depending on a state number the
//                         table proves lost (§4, Theorem 4.2).
//
// Violations are counted and reported through InvariantRegistry; by default
// they print to stderr and execution continues (an auditor must not turn a
// recoverable run into a crash), tests can set_fatal(true). The registry
// also keeps non-violation "notes" (e.g. CRC-rejected frames seen by the
// scanner) so tests can assert that a defense actually fired.
//
// With MSPLOG_AUDIT=OFF every checker is an inline no-op and the registry
// still exists (cheap) so callers need no #ifdefs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "recovery/dependency_vector.h"
#include "recovery/recovered_state_table.h"
#include "recovery/state_id.h"

namespace msplog {
namespace audit {

class InvariantRegistry {
 public:
  static InvariantRegistry& Instance();

  /// Record a violation of `invariant` (one of the names above).
  void Violation(const std::string& invariant, const std::string& detail);
  /// Record an expected defensive event (not a violation): e.g. the scanner
  /// rejecting a corrupt frame.
  void Note(const std::string& invariant, const std::string& detail);

  uint64_t violations(const std::string& invariant) const;
  uint64_t total_violations() const;
  uint64_t notes(const std::string& invariant) const;
  /// Human-readable violation reports, oldest first, capped.
  std::vector<std::string> reports() const;
  void set_fatal(bool v);
  void ResetForTest();

  /// Observer of violations — the flight recorder's freeze trigger. Hooks
  /// run AFTER the violation is recorded and the registry lock released
  /// (they may take arbitrary locks and dump server state), and BEFORE a
  /// fatal abort so the black box freezes even in fatal mode. A hook that
  /// itself trips a violation does not recurse (per-thread guard). Returns
  /// an id for RemoveViolationHook. Hooks survive ResetForTest — they are
  /// wiring, not accumulated state.
  using ViolationHook =
      std::function<void(const std::string& invariant,
                         const std::string& detail)>;
  int AddViolationHook(ViolationHook hook);
  void RemoveViolationHook(int id);

 private:
  InvariantRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

#if MSPLOG_AUDIT_ENABLED

/// `after` must dominate `before`: every entry of `before` exists in
/// `after` with an equal or larger StateId.
void CheckDvMonotonic(const std::string& who, const DependencyVector& before,
                      const DependencyVector& after);

/// Appending a record may only move the owner's self entry forward.
void CheckDvSelfMonotonic(const std::string& who, const MspId& self,
                          const DependencyVector& dv, StateId next);

/// Pessimistic send: every current-epoch self entry of `dv` must already be
/// durable (`sn < durable_lsn`, LSNs being frame-start offsets strictly
/// below the durable extent).
void CheckWalBeforeSend(const std::string& who, const MspId& self,
                        uint32_t epoch, const DependencyVector& dv,
                        uint64_t durable_lsn);

/// The scan cursor only moves forward.
void CheckLsnAdvance(const std::string& who, uint64_t prev_end, uint64_t lsn);

/// Post-recovery: `table` must dominate `dv`'s self entries for every epoch
/// that already ended (epoch < current_epoch).
void CheckRecoveredDominates(const std::string& who,
                             const RecoveredStateTable& table,
                             const MspId& self, uint32_t current_epoch,
                             const DependencyVector& dv);

#else  // !MSPLOG_AUDIT_ENABLED

inline void CheckDvMonotonic(const std::string&, const DependencyVector&,
                             const DependencyVector&) {}
inline void CheckDvSelfMonotonic(const std::string&, const MspId&,
                                 const DependencyVector&, StateId) {}
inline void CheckWalBeforeSend(const std::string&, const MspId&, uint32_t,
                               const DependencyVector&, uint64_t) {}
inline void CheckLsnAdvance(const std::string&, uint64_t, uint64_t) {}
inline void CheckRecoveredDominates(const std::string&,
                                    const RecoveredStateTable&, const MspId&,
                                    uint32_t, const DependencyVector&) {}

#endif  // MSPLOG_AUDIT_ENABLED

}  // namespace audit
}  // namespace msplog
