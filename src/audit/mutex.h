// audit::Mutex / audit::SharedMutex — drop-in lock wrappers that feed the
// LockOrderRegistry (lock_order.h). These are THE lock types of this
// codebase: scripts/lint_msplog.py rejects naked std::mutex /
// std::shared_mutex / std::condition_variable anywhere outside src/audit.
//
// With MSPLOG_AUDIT=ON (the default) every acquisition is tracked: held-set
// per thread, lock-order edge graph, cycle detection with an immediate
// diagnostic. With MSPLOG_AUDIT=OFF the wrappers are inline forwarding
// shells around std::mutex / std::shared_mutex — zero added state, zero
// added calls — so release builds pay nothing.
//
// The wrappers are also the tree's thread-safety CAPABILITIES
// (audit/annotations.h): clang's -Werror=thread-safety build proves
// statically that every GUARDED_BY member is touched under its lock, and
// AssertHeld() / AssertSharedHeld() are the runtime twins of that proof —
// they check the LockOrderRegistry's per-thread held-set and report a
// "lock-assert-held" violation through the invariant sink when the calling
// thread does not hold the lock. REQUIRES-annotated helpers call them at
// the top, so GCC-only builds and the audit CI job enforce the same
// discipline the clang job proves at compile time. With MSPLOG_AUDIT=OFF
// the asserts are empty inlines (the static annotation still applies).
//
// Naming a lock (`audit::Mutex mu_{"msp.sessions"}`) makes cycle reports
// readable; the name defaults to "mutex"/"shared_mutex" otherwise.
//
// audit::CondVar is std::condition_variable_any so it can wait on the
// RAII guards directly; waits release and reacquire through the wrapper,
// which keeps the per-thread held-set accurate across the wait. Condvar
// predicate lambdas are separate functions to the static analysis: start
// them with `mu.AssertHeld();` so the analysis (and the auditor) know the
// lock is held inside the predicate.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "audit/annotations.h"
#include "audit/lock_order.h"

namespace msplog {
namespace audit {

#if MSPLOG_AUDIT_ENABLED

class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name = "mutex")
      : id_(LockOrderRegistry::Instance().Register(name)) {}
  ~Mutex() { LockOrderRegistry::Instance().Unregister(id_); }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    LockOrderRegistry::Instance().OnAcquire(id_);
    mu_.lock();
    LockOrderRegistry::Instance().OnAcquired(id_);
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    // try_lock cannot deadlock, so no edge is recorded; the held-set entry
    // still matters for edges of later blocking acquisitions.
    LockOrderRegistry::Instance().OnAcquired(id_);
    return true;
  }
  void unlock() RELEASE() {
    LockOrderRegistry::Instance().OnRelease(id_);
    mu_.unlock();
  }

  /// Runtime twin of a REQUIRES(this) contract: reports through the
  /// invariant sink ("lock-assert-held") unless the calling thread holds
  /// this mutex. One thread-local scan; no locking on the success path.
  void AssertHeld() const ASSERT_CAPABILITY(this) {
    LockOrderRegistry::Instance().AssertHeldByThisThread(
        id_, /*shared_ok=*/false);
  }

  LockId audit_id() const { return id_; }

 private:
  std::mutex mu_;
  LockId id_;
};

class CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(const char* name = "shared_mutex")
      : id_(LockOrderRegistry::Instance().Register(name)) {}
  ~SharedMutex() { LockOrderRegistry::Instance().Unregister(id_); }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() {
    LockOrderRegistry::Instance().OnAcquire(id_);
    mu_.lock();
    LockOrderRegistry::Instance().OnAcquired(id_);
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    LockOrderRegistry::Instance().OnAcquired(id_);
    return true;
  }
  void unlock() RELEASE() {
    LockOrderRegistry::Instance().OnRelease(id_);
    mu_.unlock();
  }

  // Shared acquisitions participate in ordering exactly like exclusive
  // ones: reader/writer cycles deadlock just the same.
  void lock_shared() ACQUIRE_SHARED() {
    LockOrderRegistry::Instance().OnAcquire(id_);
    mu_.lock_shared();
    LockOrderRegistry::Instance().OnAcquired(id_, /*shared=*/true);
  }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) return false;
    LockOrderRegistry::Instance().OnAcquired(id_, /*shared=*/true);
    return true;
  }
  void unlock_shared() RELEASE_SHARED() {
    LockOrderRegistry::Instance().OnRelease(id_);
    mu_.unlock_shared();
  }

  /// The calling thread must hold this lock EXCLUSIVELY (a writer).
  void AssertHeld() const ASSERT_CAPABILITY(this) {
    LockOrderRegistry::Instance().AssertHeldByThisThread(
        id_, /*shared_ok=*/false);
  }
  /// The calling thread must hold this lock in either mode (exclusive
  /// ownership subsumes a reader's access rights).
  void AssertSharedHeld() const ASSERT_SHARED_CAPABILITY(this) {
    LockOrderRegistry::Instance().AssertHeldByThisThread(
        id_, /*shared_ok=*/true);
  }

  LockId audit_id() const { return id_; }

 private:
  std::shared_mutex mu_;
  LockId id_;
};

#else  // !MSPLOG_AUDIT_ENABLED

class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* /*name*/ = nullptr) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;
  void lock() ACQUIRE() { mu_.lock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  /// Zero-cost shell: the static ASSERT_CAPABILITY annotation still
  /// satisfies the clang analysis; the runtime check needs the auditor.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  std::mutex mu_;
};

class CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(const char* /*name*/ = nullptr) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;
  void lock() ACQUIRE() { mu_.lock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  void lock_shared() ACQUIRE_SHARED() { mu_.lock_shared(); }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }
  void unlock_shared() RELEASE_SHARED() { mu_.unlock_shared(); }
  void AssertHeld() const ASSERT_CAPABILITY(this) {}
  void AssertSharedHeld() const ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

#endif  // MSPLOG_AUDIT_ENABLED

// ---------------------------------------------------------------------------
// RAII guards. These used to be aliases of std::lock_guard / std::unique_lock
// / std::shared_lock; they are hand-rolled now because libstdc++'s lock types
// carry no thread-safety annotations, so the clang analysis cannot see
// through them. Only the operations the tree actually uses are provided
// (construction, and lock()/unlock() on the relockable ones — which is also
// exactly what std::condition_variable_any::wait needs).
// ---------------------------------------------------------------------------

/// Scoped exclusive lock; not relockable (use UniqueLock to wait on a CV or
/// to drop the lock around I/O).
class SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive lock, relockable: BasicLockable for CondVar::wait, and
/// unlock()/lock() for blocking-I/O windows. Destruction releases the lock
/// if currently owned.
class SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), owned_(true) {
    mu_.lock();
  }
  ~UniqueLock() RELEASE() {
    if (owned_) mu_.unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() ACQUIRE() {
    mu_.lock();
    owned_ = true;
  }
  void unlock() RELEASE() {
    owned_ = false;
    mu_.unlock();
  }
  bool owns_lock() const { return owned_; }

 private:
  Mutex& mu_;
  bool owned_;
};

/// Scoped shared (reader) lock on a SharedMutex. unlock() supports the
/// read-then-upgrade pattern (drop the shared lock, take an exclusive one).
class SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) ACQUIRE_SHARED(mu)
      : mu_(mu), owned_(true) {
    mu_.lock_shared();
  }
  ~SharedLock() RELEASE_GENERIC() {
    if (owned_) mu_.unlock_shared();
  }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

  void unlock() RELEASE_GENERIC() {
    owned_ = false;
    mu_.unlock_shared();
  }

 private:
  SharedMutex& mu_;
  bool owned_;
};

/// Scoped exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY SharedUniqueLock {
 public:
  explicit SharedUniqueLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~SharedUniqueLock() RELEASE() { mu_.unlock(); }

  SharedUniqueLock(const SharedUniqueLock&) = delete;
  SharedUniqueLock& operator=(const SharedUniqueLock&) = delete;

 private:
  SharedMutex& mu_;
};

using CondVar = std::condition_variable_any;

}  // namespace audit
}  // namespace msplog
