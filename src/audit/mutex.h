// audit::Mutex / audit::SharedMutex — drop-in lock wrappers that feed the
// LockOrderRegistry (lock_order.h). These are THE lock types of this
// codebase: scripts/lint_msplog.py rejects naked std::mutex /
// std::shared_mutex / std::condition_variable anywhere outside src/audit.
//
// With MSPLOG_AUDIT=ON (the default) every acquisition is tracked: held-set
// per thread, lock-order edge graph, cycle detection with an immediate
// diagnostic. With MSPLOG_AUDIT=OFF the wrappers are inline forwarding
// shells around std::mutex / std::shared_mutex — zero added state, zero
// added calls — so release builds pay nothing.
//
// Naming a lock (`audit::Mutex mu_{"msp.sessions"}`) makes cycle reports
// readable; the name defaults to "mutex"/"shared_mutex" otherwise.
//
// audit::CondVar is std::condition_variable_any so it can wait on the
// wrappers directly; waits release and reacquire through the wrapper, which
// keeps the per-thread held-set accurate across the wait.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "audit/lock_order.h"

namespace msplog {
namespace audit {

#if MSPLOG_AUDIT_ENABLED

class Mutex {
 public:
  explicit Mutex(const char* name = "mutex")
      : id_(LockOrderRegistry::Instance().Register(name)) {}
  ~Mutex() { LockOrderRegistry::Instance().Unregister(id_); }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() {
    LockOrderRegistry::Instance().OnAcquire(id_);
    mu_.lock();
    LockOrderRegistry::Instance().OnAcquired(id_);
  }
  bool try_lock() {
    if (!mu_.try_lock()) return false;
    // try_lock cannot deadlock, so no edge is recorded; the held-set entry
    // still matters for edges of later blocking acquisitions.
    LockOrderRegistry::Instance().OnAcquired(id_);
    return true;
  }
  void unlock() {
    LockOrderRegistry::Instance().OnRelease(id_);
    mu_.unlock();
  }

  LockId audit_id() const { return id_; }

 private:
  std::mutex mu_;
  LockId id_;
};

class SharedMutex {
 public:
  explicit SharedMutex(const char* name = "shared_mutex")
      : id_(LockOrderRegistry::Instance().Register(name)) {}
  ~SharedMutex() { LockOrderRegistry::Instance().Unregister(id_); }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() {
    LockOrderRegistry::Instance().OnAcquire(id_);
    mu_.lock();
    LockOrderRegistry::Instance().OnAcquired(id_);
  }
  bool try_lock() {
    if (!mu_.try_lock()) return false;
    LockOrderRegistry::Instance().OnAcquired(id_);
    return true;
  }
  void unlock() {
    LockOrderRegistry::Instance().OnRelease(id_);
    mu_.unlock();
  }

  // Shared acquisitions participate in ordering exactly like exclusive
  // ones: reader/writer cycles deadlock just the same.
  void lock_shared() {
    LockOrderRegistry::Instance().OnAcquire(id_);
    mu_.lock_shared();
    LockOrderRegistry::Instance().OnAcquired(id_);
  }
  bool try_lock_shared() {
    if (!mu_.try_lock_shared()) return false;
    LockOrderRegistry::Instance().OnAcquired(id_);
    return true;
  }
  void unlock_shared() {
    LockOrderRegistry::Instance().OnRelease(id_);
    mu_.unlock_shared();
  }

  LockId audit_id() const { return id_; }

 private:
  std::shared_mutex mu_;
  LockId id_;
};

#else  // !MSPLOG_AUDIT_ENABLED

class Mutex {
 public:
  explicit Mutex(const char* /*name*/ = nullptr) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;
  void lock() { mu_.lock(); }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

class SharedMutex {
 public:
  explicit SharedMutex(const char* /*name*/ = nullptr) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;
  void lock() { mu_.lock(); }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }
  void lock_shared() { mu_.lock_shared(); }
  bool try_lock_shared() { return mu_.try_lock_shared(); }
  void unlock_shared() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

#endif  // MSPLOG_AUDIT_ENABLED

using LockGuard = std::lock_guard<Mutex>;
using UniqueLock = std::unique_lock<Mutex>;
using SharedLock = std::shared_lock<SharedMutex>;
using SharedUniqueLock = std::unique_lock<SharedMutex>;
using CondVar = std::condition_variable_any;

}  // namespace audit
}  // namespace msplog
