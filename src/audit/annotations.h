// Clang Thread Safety Analysis annotations — the compile-time twin of the
// runtime lock-order auditor (lock_order.h).
//
// The macros below expand to clang's thread-safety attributes when the
// compiler supports them and to nothing everywhere else (GCC builds the
// tree with the macros erased, so the annotations are zero-cost and cannot
// change behaviour). The analysis is enforced by the `thread-safety` CI job
// and locally via scripts/run_thread_safety.sh, which configures a clang
// build with -DMSPLOG_THREAD_SAFETY=ON (-Werror=thread-safety
// -Wthread-safety-beta) and skips gracefully when clang is absent.
//
// Vocabulary (see docs/STATIC_ANALYSIS.md for the policy):
//   CAPABILITY("mutex")      — marks a class as a lockable capability;
//                              audit::Mutex / audit::SharedMutex carry it.
//   GUARDED_BY(mu)           — this member may only be touched while `mu`
//                              is held (shared for reads, exclusive for
//                              writes).
//   PT_GUARDED_BY(mu)        — the pointee of this pointer member is
//                              guarded by `mu` (the pointer itself is not).
//   REQUIRES(mu)             — callers must hold `mu` exclusively before
//                              calling; the function does not release it.
//   REQUIRES_SHARED(mu)      — callers must hold `mu` at least shared.
//   ACQUIRE / RELEASE        — the function acquires / releases the named
//                              capability (lock wrappers and RAII guards).
//   EXCLUDES(mu)             — the caller must NOT hold `mu` (deadlock
//                              documentation for self-locking entry points).
//   RETURN_CAPABILITY(mu)    — the function returns a reference to `mu`.
//   ASSERT_CAPABILITY(mu)    — the function asserts at runtime that `mu` is
//                              held; the analysis takes its word for it.
//                              audit::Mutex::AssertHeld() is annotated with
//                              this, pairing every static contract with its
//                              runtime twin.
//   NO_THREAD_SAFETY_ANALYSIS — opt a function out. Policy: only with a
//                              comment naming the reason (init/teardown
//                              monotonic states, intentional benign races).
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define MSPLOG_TS_ATTRIBUTE__(x) __attribute__((x))
#endif
#endif
#ifndef MSPLOG_TS_ATTRIBUTE__
#define MSPLOG_TS_ATTRIBUTE__(x)  // not clang: annotations erase to nothing
#endif

#define CAPABILITY(x) MSPLOG_TS_ATTRIBUTE__(capability(x))

#define SCOPED_CAPABILITY MSPLOG_TS_ATTRIBUTE__(scoped_lockable)

#define GUARDED_BY(x) MSPLOG_TS_ATTRIBUTE__(guarded_by(x))

#define PT_GUARDED_BY(x) MSPLOG_TS_ATTRIBUTE__(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) MSPLOG_TS_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) MSPLOG_TS_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define REQUIRES(...) MSPLOG_TS_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  MSPLOG_TS_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) MSPLOG_TS_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  MSPLOG_TS_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) MSPLOG_TS_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  MSPLOG_TS_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define RELEASE_GENERIC(...) \
  MSPLOG_TS_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  MSPLOG_TS_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  MSPLOG_TS_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) MSPLOG_TS_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) MSPLOG_TS_ATTRIBUTE__(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  MSPLOG_TS_ATTRIBUTE__(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) MSPLOG_TS_ATTRIBUTE__(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  MSPLOG_TS_ATTRIBUTE__(no_thread_safety_analysis)
