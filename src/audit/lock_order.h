// LockOrderRegistry — runtime lock-order (deadlock-potential) detection.
//
// Every audit::Mutex / audit::SharedMutex registers itself here with a name.
// Each thread keeps a stack of the lock instances it currently holds; when a
// thread that holds A blocks on B, the directed edge A→B ("A held while
// acquiring B") is added to a global graph. A cycle in that graph is a
// potential deadlock — two call paths acquire the same locks in opposite
// orders — and is reported immediately with the full cycle path, BEFORE the
// acquisition blocks, so even a real deadlock produces a diagnostic instead
// of a silent hang.
//
// Edges are per lock *instance*, not per lock class, so two different
// SharedVariable locks acquired in a fixed order never alias. Detection is
// edge-triggered: a cycle is reported once per offending edge insertion and
// counted every time. By default detection reports to stderr and keeps
// going; tests (and paranoid callers) can make it abort via set_fatal().
//
// Cost model: acquiring a lock while holding NO other lock is the common
// case and touches only a thread-local vector. Nested acquisitions take one
// internal mutex and do set lookups; the DFS runs only when a brand-new
// edge appears (bounded by the number of distinct lock pairs).
//
// This file intentionally uses std::mutex internally — the tracker cannot
// be built out of the wrappers it implements. scripts/lint_msplog.py
// exempts src/audit from the no-std::mutex rule.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace msplog {
namespace audit {

using LockId = uint32_t;

class LockOrderRegistry {
 public:
  static LockOrderRegistry& Instance();

  /// Register a lock instance; returns its id (never reused).
  LockId Register(const char* name);
  /// Remove a destroyed lock instance and every edge touching it.
  void Unregister(LockId id);

  /// Called BEFORE blocking on the native mutex: records held→id edges and
  /// runs cycle detection on any new edge.
  void OnAcquire(LockId id);
  /// Called after the native mutex is owned: pushes onto the thread stack.
  /// `shared` records the ownership mode for AssertHeldByThisThread.
  void OnAcquired(LockId id, bool shared = false);
  /// Called before the native unlock: removes from the thread stack (the
  /// release order need not be LIFO).
  void OnRelease(LockId id);

  /// Runtime twin of a static REQUIRES / REQUIRES_SHARED contract
  /// (audit/annotations.h): true iff the calling thread holds `id` —
  /// exclusively, or in either mode when `shared_ok`. A failed assert is
  /// reported as a "lock-assert-held" violation through the invariant sink
  /// (audit/invariants.h) with the lock's name; like every auditor check it
  /// is non-fatal by default. The success path is one scan of the
  /// thread-local held-set — no locking, no allocation.
  bool AssertHeldByThisThread(LockId id, bool shared_ok) const;

  /// Number of cycle detections so far (every occurrence counts).
  uint64_t cycles_detected() const;
  /// Human-readable reports, most recent first capped at kMaxReports.
  std::vector<std::string> reports() const;
  /// Abort the process on detection (default: report and continue).
  void set_fatal(bool v);

  /// Drop the accumulated graph, counters and reports. Live registrations
  /// survive. Test-only: concurrent lock traffic during the reset races.
  void ResetForTest();

  /// Locks currently held by the calling thread (diagnostics/tests).
  size_t HeldByThisThread() const;
  /// Names of the locks held by the calling thread, in acquisition order —
  /// the held-lock summary a flight-recorder bundle carries.
  std::vector<std::string> HeldNamesByThisThread() const;

 private:
  LockOrderRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace audit
}  // namespace msplog
