#include "audit/lock_order.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>

#include "audit/invariants.h"

namespace msplog {
namespace audit {

namespace {
constexpr size_t kMaxReports = 64;

/// One held lock: its id and the mode it was acquired in.
struct HeldLock {
  LockId id;
  bool shared;
};

/// Stack of locks held by this thread, in acquisition order.
thread_local std::vector<HeldLock> tls_held;
}  // namespace

struct LockOrderRegistry::Impl {
  mutable std::mutex mu;
  LockId next_id = 1;
  std::map<LockId, std::string> names;
  /// a → {b}: a was held while b was acquired.
  std::map<LockId, std::set<LockId>> edges;
  uint64_t cycles = 0;
  std::vector<std::string> reports;
  bool fatal = false;

  /// DFS: is `to` reachable from `from` through `edges`? Fills `path` with
  /// the node sequence from→…→to when found.
  bool Reaches(LockId from, LockId to, std::set<LockId>* seen,
               std::vector<LockId>* path) {
    if (from == to) {
      path->push_back(from);
      return true;
    }
    if (!seen->insert(from).second) return false;
    auto it = edges.find(from);
    if (it == edges.end()) return false;
    for (LockId next : it->second) {
      if (Reaches(next, to, seen, path)) {
        path->push_back(from);
        return true;
      }
    }
    return false;
  }

  std::string NameOf(LockId id) {
    auto it = names.find(id);
    return it == names.end() ? "<dead lock #" + std::to_string(id) + ">"
                             : it->second + " #" + std::to_string(id);
  }
};

LockOrderRegistry::Impl& LockOrderRegistry::impl() const {
  // Leaked on purpose: mutexes may be destroyed during static teardown
  // after a non-leaked registry would already be gone.
  static Impl* imp = new Impl;  // audit:allow(naked-new)
  return *imp;
}

LockOrderRegistry& LockOrderRegistry::Instance() {
  static LockOrderRegistry* r = new LockOrderRegistry;  // audit:allow(naked-new)
  return *r;
}

LockId LockOrderRegistry::Register(const char* name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  LockId id = im.next_id++;
  im.names[id] = name ? name : "mutex";
  return id;
}

void LockOrderRegistry::Unregister(LockId id) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  im.names.erase(id);
  im.edges.erase(id);
  for (auto& [from, tos] : im.edges) tos.erase(id);
}

void LockOrderRegistry::OnAcquire(LockId id) {
  if (tls_held.empty()) return;  // fast path: no edges possible
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  for (const HeldLock& h : tls_held) {
    LockId held = h.id;
    if (held == id) continue;  // re-entrant CV reacquire of the same lock
    auto& tos = im.edges[held];
    if (!tos.insert(id).second) continue;  // edge known → already checked
    // New edge held→id. A path id→…→held means a cycle through this edge.
    std::set<LockId> seen;
    std::vector<LockId> path;
    if (im.Reaches(id, held, &seen, &path)) {
      ++im.cycles;
      std::string msg = "lock-order cycle: acquiring " + im.NameOf(id) +
                        " while holding " + im.NameOf(held) +
                        ", but the reverse order exists:";
      for (auto it = path.rbegin(); it != path.rend(); ++it) {
        msg += " -> " + im.NameOf(*it);
      }
      if (im.reports.size() < kMaxReports) im.reports.push_back(msg);
      std::fprintf(stderr, "[msplog audit] %s\n", msg.c_str());
      if (im.fatal) std::abort();
      // Keep the graph acyclic so later detections stay meaningful.
      tos.erase(id);
    }
  }
}

void LockOrderRegistry::OnAcquired(LockId id, bool shared) {
  tls_held.push_back({id, shared});
}

void LockOrderRegistry::OnRelease(LockId id) {
  // Usually LIFO, but scoped locks may be released in any order.
  for (auto it = tls_held.rbegin(); it != tls_held.rend(); ++it) {
    if (it->id == id) {
      tls_held.erase(std::next(it).base());
      return;
    }
  }
}

bool LockOrderRegistry::AssertHeldByThisThread(LockId id,
                                               bool shared_ok) const {
  bool held_shared = false;
  for (const HeldLock& h : tls_held) {
    if (h.id != id) continue;
    if (!h.shared) return true;  // exclusive ownership satisfies both modes
    held_shared = true;
  }
  if (held_shared && shared_ok) return true;
  Impl& im = impl();
  std::string name;
  {
    std::lock_guard<std::mutex> lk(im.mu);
    name = im.NameOf(id);
  }
  InvariantRegistry::Instance().Violation(
      "lock-assert-held",
      std::string(shared_ok ? "AssertSharedHeld" : "AssertHeld") + " on " +
          name + ": calling thread holds it " +
          (held_shared ? "only shared (exclusive required)" : "not at all"));
  return false;
}

uint64_t LockOrderRegistry::cycles_detected() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  return im.cycles;
}

std::vector<std::string> LockOrderRegistry::reports() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  return im.reports;
}

void LockOrderRegistry::set_fatal(bool v) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  im.fatal = v;
}

void LockOrderRegistry::ResetForTest() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  im.edges.clear();
  im.cycles = 0;
  im.reports.clear();
}

size_t LockOrderRegistry::HeldByThisThread() const { return tls_held.size(); }

std::vector<std::string> LockOrderRegistry::HeldNamesByThisThread() const {
  std::vector<std::string> out;
  if (tls_held.empty()) return out;
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  out.reserve(tls_held.size());
  for (const HeldLock& h : tls_held) {
    out.push_back(im.NameOf(h.id) + (h.shared ? " (shared)" : ""));
  }
  return out;
}

}  // namespace audit
}  // namespace msplog
