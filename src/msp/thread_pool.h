// Fixed-size worker pool (§2.1): an MSP serves its request queue with a
// thread pool; the same pool replays sessions in parallel after a crash
// (§4.3, "recover sessions in parallel").
#pragma once

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "audit/mutex.h"

namespace msplog {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  /// Stop accepting tasks, run what is queued, join all workers.
  void Shutdown();

  /// Stop accepting tasks, DISCARD the queue, join workers once in-flight
  /// tasks return (crash path — tasks observe the crash via Status and
  /// unwind quickly).
  void Abort();

  size_t num_threads() const { return workers_.size(); }
  size_t queued() const;

 private:
  void WorkerLoop();

  mutable audit::Mutex mu_{"thread_pool"};
  audit::CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  bool discard_ GUARDED_BY(mu_) = false;
  /// Written only while spawning (constructor) and joining (Shutdown/Abort,
  /// serialized by stop_); sized concurrently by num_threads().
  std::vector<std::thread> workers_;
};

}  // namespace msplog
