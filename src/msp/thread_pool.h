// lint:hot-path
//
// Fixed-size worker pool (§2.1): an MSP serves its request queue with a
// thread pool; the same pool replays sessions in parallel after a crash
// (§4.3, "recover sessions in parallel").
//
// Hot-path shape: Submit pushes a move-only, small-buffer-optimized Task
// onto a lock-free MPSC ring (common/mpsc_queue.h) — no mutex, no heap
// allocation for the dispatcher's lambdas. Workers spin through TryPop and
// only fall back to an eventcount-style sleep (sleepers_ counter + condvar)
// when the queue is empty; producers pay a fence plus one relaxed load to
// detect sleepers, and take the mutex only to wake them.
//
// Known (accepted) semantic difference from the old mutex design: Submit
// and Shutdown are no longer atomic with respect to each other — a task
// pushed concurrently with Shutdown may be popped-and-run or may be left
// behind in the queue (it is destroyed, not run, when the pool dies). Every
// in-tree caller stops its producers (dispatch loop, timers) before
// shutting the pool down, so no task is lost in practice.
#pragma once

#include <atomic>
#include <thread>
#include <vector>

#include "audit/mutex.h"
#include "common/mpsc_queue.h"
#include "common/task.h"

namespace msplog {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Returns false if the pool is shutting down.
  /// Allocation-free for callables that fit Task's inline storage.
  bool Submit(Task task);

  /// Stop accepting tasks, run what is queued, join all workers.
  void Shutdown();

  /// Stop accepting tasks, DISCARD the queue, join workers once in-flight
  /// tasks return (crash path — tasks observe the crash via Status and
  /// unwind quickly).
  void Abort();

  size_t num_threads() const { return workers_.size(); }
  /// Relaxed-atomic depth: safe to sample at any rate (scraper probes it
  /// every 100 ms) without ever contending with Submit/worker pops.
  size_t queued() const { return queue_.depth(); }

 private:
  void WorkerLoop();

  MpscQueue<Task> queue_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> discard_{false};
  /// Eventcount: number of workers inside the sleep protocol. Producers
  /// only touch mu_/cv_ when this is nonzero.
  std::atomic<int> sleepers_{0};
  mutable audit::Mutex mu_{"thread_pool"};
  audit::CondVar cv_;
  /// Written only while spawning (constructor) and joining (Shutdown/Abort,
  /// serialized by stop_); sized concurrently by num_threads().
  std::vector<std::thread> workers_;
};

}  // namespace msplog
