// Offline log/checkpoint inspection (forensics for §3–§4 artifacts): walk a
// physical log image record by record with the same scanner crash recovery
// uses, decode every checkpoint blob, and re-check the structural invariants
// the online scanner relies on — without booting an MSP.
//
// The core is separated from the msplog_inspect CLI so tests can inspect a
// live SimDisk directly while CI runs the CLI over an exported image file.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/session_stats.h"
#include "sim/sim_disk.h"

namespace msplog {

struct LogInspectOptions {
  /// Append one line per record to `dump_text`.
  bool dump_records = false;
  /// Also dump decoded session / MSP checkpoint contents.
  bool dump_checkpoints = false;
  /// Reconstruct per-session record/byte/checkpoint stats from the image,
  /// in the same SessionStatsSnapshot shape the live server reports, so
  /// online telemetry and offline forensics diff cleanly.
  bool collect_session_stats = false;
};

/// What the walk found. `invariant_violations` is the offline re-check of
/// the scanner's structural invariants:
///   * LSNs strictly increase in scan order;
///   * per session, kRequestReceive seqnos never decrease — except inside
///     an EOS-cut range, which recovery made invisible (§4.1);
///   * kSharedWrite backward chains point strictly backward;
///   * kEos points at or before itself;
///   * session checkpoint blobs decode;
///   * MSP checkpoint blobs decode and imply a scan start at or before
///     themselves;
///   * the first surviving record sits at or before the newest MSP
///     checkpoint's min-recovery LSN — reclamation (hole punch) and
///     archiving both stop strictly below that position, so a first record
///     *beyond* it means a live session's replay prefix was cut.
struct LogInspectReport {
  uint64_t records = 0;
  uint64_t first_lsn = 0;
  uint64_t last_lsn = 0;
  uint64_t image_bytes = 0;          ///< durable extent walked
  std::map<std::string, uint64_t> records_by_type;
  std::map<std::string, uint64_t> records_by_session;
  uint64_t session_checkpoints = 0;
  uint64_t shared_var_checkpoints = 0;
  uint64_t msp_checkpoints = 0;
  /// Min-recovery LSN of the newest (last-in-scan-order) decodable MSP
  /// checkpoint; 0 when the image has none. The "no live session cut"
  /// invariant compares first_lsn against this.
  uint64_t newest_msp_checkpoint_min_lsn = 0;
  /// Archive segments overlaid into the image before the walk (set by the
  /// caller — InspectLogImage itself only sees the merged byte image).
  uint64_t archive_segments = 0;
  /// The scan hit a corrupt frame (CRC mismatch / truncated frame) and
  /// stopped there. A torn tail is normal after a crash, so it is reported
  /// separately rather than as a violation.
  bool torn_tail = false;
  uint64_t torn_tail_lsn = 0;
  std::vector<std::string> invariant_violations;
  /// Per-session reconstruction (populated when
  /// LogInspectOptions::collect_session_stats): requests, nested calls
  /// (reply-receive records, by peer), log records/bytes, checkpoints, and
  /// the last DV width seen — the offline subset of the live telemetry.
  std::vector<obs::SessionStatsSnapshot> session_stats;

  /// Human-readable multi-line summary.
  std::string Summary() const;
  std::string ToJson() const;
};

/// Walk the log image `file` on `disk` from offset 0 through the durable
/// extent. Returns non-OK only for environmental failures (missing file);
/// corrupt frames and invariant violations are reported in `*report`.
/// `dump_text`, when set, receives the per-record dump per `opts`.
Status InspectLogImage(SimDisk* disk, const std::string& file,
                       const LogInspectOptions& opts, LogInspectReport* report,
                       std::string* dump_text = nullptr);

}  // namespace msplog
