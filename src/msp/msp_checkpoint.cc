// Checkpointing (§3.2–§3.4): independent session checkpoints, independent
// shared-variable checkpoints, and the fuzzy MSP checkpoint that ties their
// positions together and is anchored ARIES-style.
#include <algorithm>
#include <chrono>
#include <thread>

#include "audit/mutex.h"
#include "msp/exec_context.h"
#include "msp/msp.h"
#include "msp/msp_checkpoint_format.h"

namespace msplog {

Status Msp::TakeSessionCheckpoint(Session* s, const obs::SpanContext& span) {
  if (config_.mode != RecoveryMode::kLogBased) return Status::Unsupported("");
  // When a traced request triggers the checkpoint, the pause shows up in
  // its span tree as a child span.
  obs::SpanContext cspan;
  if (span.valid()) {
    cspan.trace_id = span.trace_id;
    cspan.span_id = obs::NextSpanId();
    cspan.parent_span_id = span.span_id;
  }
  env_->tracer().Record(obs::TraceEventType::kCheckpointBegin,
                        env_->NowModelMs(), config_.id, s->id, /*seqno=*/0,
                        "session", cspan);
  // §3.2: prior to a session checkpoint, a distributed log flush as dictated
  // by the session's DV ensures the checkpointed state is never an orphan.
  Status fst = DistributedFlush(s->dv, cspan, s);
  if (!fst.ok()) {
    env_->tracer().Record(obs::TraceEventType::kCheckpointEnd,
                          env_->NowModelMs(), config_.id, s->id, /*seqno=*/0,
                          "session " + fst.ToString(), cspan);
    return fst;
  }

  LogRecord rec;
  rec.type = LogRecordType::kSessionCheckpoint;
  rec.session_id = s->id;
  rec.payload = s->EncodeCheckpoint();
  uint64_t lsn = log_->Append(rec);
  s->last_checkpoint_lsn.store(lsn);
  // §3.2: on completion, the session's previous log records can be
  // discarded — the position stream truncates to zero length.
  s->positions.Truncate();
  s->bytes_logged_since_cp = 0;
  s->msp_cps_since_cp = 0;
  s->stats.OnCheckpoint();
  env_->stats().checkpoints_session.fetch_add(1);
  env_->tracer().Record(obs::TraceEventType::kCheckpointEnd,
                        env_->NowModelMs(), config_.id, s->id, /*seqno=*/0,
                        "session", cspan);
  return Status::OK();
}

Status Msp::TakeSharedVarCheckpoint(SharedVariable* var) {
  // Caller holds the variable's unique lock.
  // §3.3: a distributed log flush per the variable's DV first; afterwards
  // the checkpointed value can never be an orphan, so the DV clears and the
  // backward chain breaks here.
  MSPLOG_RETURN_IF_ERROR(DistributedFlush(var->dv));

  LogRecord rec;
  rec.type = LogRecordType::kSharedVarCheckpoint;
  rec.var_id = var->name;
  rec.payload = var->value;
  uint64_t lsn = log_->Append(rec);
  var->last_checkpoint_lsn = lsn;
  var->last_write_lsn = lsn;  // chain restarts at the checkpoint
  var->state_number = lsn;
  var->dv.Clear();
  var->writes_since_cp = 0;
  var->msp_cps_since_cp = 0;
  env_->stats().checkpoints_shared_var.fetch_add(1);
  return Status::OK();
}

Status Msp::TakeMspCheckpoint(bool force_units) {
  if (config_.mode != RecoveryMode::kLogBased || !log_) {
    return Status::Unsupported("");
  }
  audit::LockGuard cp_guard(msp_cp_mu_);
  env_->tracer().Record(obs::TraceEventType::kCheckpointBegin,
                        env_->NowModelMs(), config_.id, /*session=*/"",
                        /*seqno=*/0, force_units ? "msp forced" : "msp");

  // Pre-pass: make sure every shared variable has a checkpoint position, so
  // the analysis-scan start point is bounded (§3.4 forced checkpoints).
  if (force_units) {
    std::vector<std::shared_ptr<SharedVariable>> vars;
    {
      audit::LockGuard lk(vars_mu_);
      for (auto& [n, v] : shared_vars_) vars.push_back(v);
    }
    for (auto& v : vars) {
      audit::SharedUniqueLock vlk(v->rw);
      v->msp_cps_since_cp++;
      bool stale = config_.force_checkpoint_after_msp_cps > 0 &&
                   v->msp_cps_since_cp >= config_.force_checkpoint_after_msp_cps;
      bool never = v->last_checkpoint_lsn == 0;
      if (never || (stale && v->writes_since_cp > 0)) {
        Status st = TakeSharedVarCheckpoint(v.get());
        if (st.IsOrphan()) {
          env_->stats().orphans_detected.fetch_add(1);
          MSPLOG_RETURN_IF_ERROR(UndoSharedVariable(v.get()));
        } else if (st.IsCrashed()) {
          return st;
        }
      }
    }
  }

  MspCheckpointData data;
  {
    audit::LockGuard lk(table_mu_);
    data.table = recovered_table_;
  }
  std::vector<std::shared_ptr<Session>> stale_sessions;
  {
    audit::LockGuard lk(sessions_mu_);
    for (auto& [id, s] : sessions_) {
      if (s->ended) continue;
      uint64_t cp = s->last_checkpoint_lsn.load();
      uint64_t first = s->first_lsn.load();
      if (cp == 0 && first == 0) continue;  // no log presence yet
      data.sessions.push_back({id, s->client, cp, first});
      s->msp_cps_since_cp++;
      if (force_units && config_.force_checkpoint_after_msp_cps > 0 &&
          s->msp_cps_since_cp >= config_.force_checkpoint_after_msp_cps &&
          s->bytes_logged_since_cp > 0) {
        s->needs_checkpoint = true;
        if (!s->worker_active && !s->recovering) {
          s->worker_active = true;
          stale_sessions.push_back(s);
        }
      }
    }
  }
  {
    audit::LockGuard lk(vars_mu_);
    for (auto& [name, v] : shared_vars_) {
      audit::SharedLock vlk(v->rw);
      data.vars.push_back({name, v->last_checkpoint_lsn,
                           v->last_write_lsn != 0});
    }
  }

  LogRecord rec;
  rec.type = LogRecordType::kMspCheckpoint;
  rec.payload = data.Encode();
  uint64_t lsn = log_->Append(rec);
  uint64_t min_needed = data.MinRecoveryLsn(lsn);
  // The referenced session/variable checkpoints were all appended before we
  // read their LSNs, so flushing everything through the MSP checkpoint
  // record makes every referenced position durable before the anchor points
  // at it (ARIES rule). audit:allow(blocking-under-lock): MSP checkpoints
  // are serialized by design; the flush is the checkpoint's commit point.
  MSPLOG_RETURN_IF_ERROR(log_->FlushAll());
  MSPLOG_RETURN_IF_ERROR(anchor_.Write({lsn, epoch_.load()}));
  last_msp_cp_log_end_.store(log_->end_lsn());
  env_->stats().checkpoints_msp.fetch_add(1);

  // Log-space reclamation: no recovery — crash, session or shared-variable —
  // ever reads below the scan start position this checkpoint pins, so the
  // prefix is dead ("the session's previous log records can be discarded",
  // §3.2; we extend the same argument to the whole log).
  if (config_.reclaim_log && min_needed > 0) {
    if (config_.archive_log) {
      log_->ArchiveUpTo(min_needed);
    } else {
      log_->ReclaimUpTo(min_needed);
    }
  }

  for (auto& s : stale_sessions) {
    pool_->Submit([this, s] { SessionWorker(s); });
  }
  env_->tracer().Record(obs::TraceEventType::kCheckpointEnd,
                        env_->NowModelMs(), config_.id, /*session=*/"",
                        /*seqno=*/0, "msp");
  return Status::OK();
}

Status Msp::ForceCheckpoint(const CheckpointTarget& target) {
  switch (target.kind) {
    case CheckpointTarget::Kind::kMsp:
      return TakeMspCheckpoint(/*force_units=*/true);
    case CheckpointTarget::Kind::kSession:
      return ForceSessionCheckpointImpl(target.name);
    case CheckpointTarget::Kind::kSharedVar:
      return ForceSharedVarCheckpointImpl(target.name);
  }
  return Status::InvalidArgument("unknown checkpoint target kind");
}

Status Msp::ForceSessionCheckpointImpl(const std::string& session_id) {
  auto s = GetSession(session_id);
  if (!s) return Status::NotFound("no session " + session_id);
  // Claim the session like a worker would, so the checkpoint happens
  // "between requests" (§3.2).
  while (true) {
    {
      audit::LockGuard lk(sessions_mu_);
      if (!s->worker_active && !s->recovering) {
        s->worker_active = true;
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (state_.load() != State::kRunning) return Status::Crashed("");
  }
  Status st = TakeSessionCheckpoint(s.get());
  bool rearm = false;
  {
    audit::LockGuard lk(sessions_mu_);
    if (!s->pending_requests.empty() || s->needs_orphan_check ||
        s->needs_checkpoint) {
      rearm = true;  // stay claimed; a worker drains the queue
    } else {
      s->worker_active = false;
    }
  }
  if (rearm) pool_->Submit([this, s] { SessionWorker(s); });
  return st;
}

Status Msp::ForceSharedVarCheckpointImpl(const std::string& name) {
  std::shared_ptr<SharedVariable> v;
  {
    audit::LockGuard lk(vars_mu_);
    auto it = shared_vars_.find(name);
    if (it == shared_vars_.end()) return Status::NotFound("no shared " + name);
    v = it->second;
  }
  audit::SharedUniqueLock vlk(v->rw);
  Status st = TakeSharedVarCheckpoint(v.get());
  if (st.IsOrphan()) {
    env_->stats().orphans_detected.fetch_add(1);
    return UndoSharedVariable(v.get());
  }
  return st;
}

void Msp::CheckpointDaemonLoop() {
  audit::UniqueLock lk(cp_mu_);
  while (!cp_stop_) {
    cp_cv_.wait_for(lk,
                    std::chrono::milliseconds(
                        RealWaitMs(config_.checkpoint_interval_ms)),
                    [&] {
                      cp_mu_.AssertHeld();
                      return cp_stop_;
                    });
    if (cp_stop_) break;
    lk.unlock();
    if (config_.msp_checkpoint_log_bytes > 0 && log_ &&
        log_->end_lsn() - last_msp_cp_log_end_.load() >=
            config_.msp_checkpoint_log_bytes &&
        state_.load() == State::kRunning) {
      (void)ForceCheckpoint(CheckpointTarget::Msp());
    }
    lk.lock();
  }
}

}  // namespace msplog
