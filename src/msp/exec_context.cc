#include "msp/exec_context.h"

#include <algorithm>

#include "log/log_scanner.h"

namespace msplog {

// ---------------------------------------------------------------------------
// ReplayCursor
// ---------------------------------------------------------------------------

ReplayCursor::ReplayCursor(LogFile* log, std::vector<uint64_t> positions)
    : log_(log), positions_(std::move(positions)) {}

Status ReplayCursor::Peek(LogRecord* out) {
  if (!HasNext()) return Status::NotFound("cursor exhausted");
  uint64_t lsn = positions_[idx_];
  if (cached_ && cached_rec_.lsn == lsn) {
    *out = cached_rec_;
    return Status::OK();
  }
  Status st;
  if (lsn >= log_->durable_lsn()) {
    // Still in the volatile buffer: a memory read.
    st = log_->ReadRecordAt(lsn, out);
  } else {
    st = ReadDurable(lsn, out);
  }
  if (st.ok()) {
    cached_ = true;
    cached_rec_ = *out;
  }
  return st;
}

void ReplayCursor::Skip() {
  ++idx_;
  cached_ = false;
}

Status ReplayCursor::ReadDurable(uint64_t lsn, LogRecord* out) {
  SimDisk* disk = log_->disk();
  const std::string& file = log_->file_name();
  auto ensure = [&](uint64_t need_end) -> Status {
    if (chunk_valid_ && lsn >= chunk_base_ &&
        need_end <= chunk_base_ + chunk_.size()) {
      return Status::OK();
    }
    chunk_base_ = lsn;
    uint64_t want = std::max<uint64_t>(LogScanner::kChunkBytes, need_end - lsn);
    MSPLOG_RETURN_IF_ERROR(disk->ReadAt(file, chunk_base_, want, &chunk_));
    chunk_valid_ = true;
    return Status::OK();
  };
  MSPLOG_RETURN_IF_ERROR(ensure(lsn + 8));
  if (chunk_.size() < lsn - chunk_base_ + 8) {
    return Status::Corruption("position beyond durable log");
  }
  // Read the frame length to make sure the whole record is in the chunk.
  uint64_t off = lsn - chunk_base_;
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(chunk_[off + i]))
           << (8 * i);
  }
  MSPLOG_RETURN_IF_ERROR(ensure(lsn + 8 + len));
  ByteView body;
  size_t frame_len = 0;
  Status st = ParseFrame(ByteView(chunk_), lsn - chunk_base_, &body,
                         &frame_len);
  if (st.IsNotFound()) {
    return Status::Corruption("position points at log padding");
  }
  MSPLOG_RETURN_IF_ERROR(st);
  MSPLOG_RETURN_IF_ERROR(LogRecord::Decode(body, out));
  out->lsn = lsn;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ExecContext
// ---------------------------------------------------------------------------

Bytes ExecContext::GetSessionVar(const std::string& name) {
  auto it = s_->vars.find(name);
  return it == s_->vars.end() ? Bytes() : it->second;
}

bool ExecContext::HasSessionVar(const std::string& name) const {
  return s_->vars.count(name) > 0;
}

void ExecContext::SetSessionVar(const std::string& name, ByteView value) {
  // Session variables are never logged (§3.2): deterministic re-execution
  // reconstructs them, so this is identical in every mode.
  s_->vars[name] = Bytes(value);
}

Status ExecContext::NextForReplay(LogRecordType expected,
                                  const std::string& key, LogRecord* rec,
                                  bool* run_live) {
  *run_live = false;
  if (live_) {
    *run_live = true;
    return Status::OK();
  }
  if (!cursor_->HasNext()) {
    // §4.3: the log ends mid-request (its tail was lost in the crash) —
    // re-execution becomes execution from here on.
    live_ = true;
    *run_live = true;
    return Status::OK();
  }
  MSPLOG_RETURN_IF_ERROR(cursor_->Peek(rec));
  if (rec->has_dv && msp_->DvIsOrphan(rec->dv)) {
    // §4.1: the orphan log record ends replay; skip it and everything after,
    // write the EOS record, and continue the interrupted action live.
    msp_->OrphanCut(s_, rec->lsn);
    live_ = true;
    *run_live = true;
    return Status::OK();
  }
  if (rec->type != expected) {
    msp_->env()->stats().replay_misalignments.fetch_add(1);
    return Status::Internal("replay misalignment: expected " +
                            std::string(LogRecordTypeName(expected)) +
                            ", log has " +
                            std::string(LogRecordTypeName(rec->type)));
  }
  if (expected == LogRecordType::kSharedRead && rec->var_id != key) {
    msp_->env()->stats().replay_misalignments.fetch_add(1);
    return Status::Internal("replay misalignment: read of '" + rec->var_id +
                            "' logged, method read '" + key + "'");
  }
  if (expected == LogRecordType::kReplyReceive && rec->target != key) {
    msp_->env()->stats().replay_misalignments.fetch_add(1);
    return Status::Internal("replay misalignment: reply from '" +
                            rec->target + "' logged, method called '" + key +
                            "'");
  }
  cursor_->Skip();
  return Status::OK();
}

Status ExecContext::ReadShared(const std::string& name, Bytes* out) {
  if (mode_ == Mode::kReplay && !live_) {
    LogRecord rec;
    bool run_live = false;
    MSPLOG_RETURN_IF_ERROR(
        NextForReplay(LogRecordType::kSharedRead, name, &rec, &run_live));
    if (!run_live) {
      // §4.1: reading a shared variable gets its value from the log; the
      // session's DV and state number advance exactly as they did during
      // normal execution.
      s_->state_number = rec.lsn;
      s_->dv.Set(msp_->config().id, StateId{msp_->epoch(), rec.lsn});
      if (rec.has_dv) s_->dv.Merge(rec.dv);
      *out = rec.payload;
      return Status::OK();
    }
  }
  return msp_->SharedReadImpl(s_, name, out);
}

Status ExecContext::WriteShared(const std::string& name, ByteView value) {
  if (mode_ == Mode::kReplay && !live_) {
    // §4.1: writing a shared variable is skipped during replay — the
    // variable has its own separate recovery (roll-forward / undo chain).
    return Status::OK();
  }
  return msp_->SharedWriteImpl(s_, name, value);
}

Status ExecContext::UpdateShared(const std::string& name,
                                 const std::function<Bytes(const Bytes&)>& fn,
                                 Bytes* out) {
  if (mode_ == Mode::kReplay && !live_) {
    LogRecord rec;
    bool run_live = false;
    MSPLOG_RETURN_IF_ERROR(
        NextForReplay(LogRecordType::kSharedRead, name, &rec, &run_live));
    if (!run_live) {
      // Same replay rules as a read followed by a (skipped) write: the
      // deterministic `fn` re-derives the value the method continued with.
      s_->state_number = rec.lsn;
      s_->dv.Set(msp_->config().id, StateId{msp_->epoch(), rec.lsn});
      if (rec.has_dv) s_->dv.Merge(rec.dv);
      Bytes result = fn(rec.payload);
      if (out) *out = std::move(result);
      return Status::OK();
    }
  }
  return msp_->SharedUpdateImpl(s_, name, fn, out);
}

Status ExecContext::Call(const std::string& target_msp,
                         const std::string& method, ByteView arg,
                         Bytes* reply) {
  if (mode_ == Mode::kReplay && !live_) {
    LogRecord rec;
    bool run_live = false;
    MSPLOG_RETURN_IF_ERROR(NextForReplay(LogRecordType::kReplyReceive,
                                         target_msp, &rec, &run_live));
    if (!run_live) {
      // §4.1: requests to other MSPs are not sent; the reply is read from
      // the log.
      auto& o = s_->outgoing[target_msp];
      if (o.session_id.empty()) {
        o.target = target_msp;
        o.session_id = msp_->config().id + "/" + s_->id + ">" + target_msp;
      }
      o.next_seqno = rec.seqno + 1;
      s_->state_number = rec.lsn;
      s_->dv.Set(msp_->config().id, StateId{msp_->epoch(), rec.lsn});
      if (rec.has_dv) s_->dv.Merge(rec.dv);
      *reply = rec.payload;
      if (static_cast<ReplyCode>(rec.aux) == ReplyCode::kAppError) {
        return Status::Aborted("remote application error: " + *reply);
      }
      return Status::OK();
    }
  }
  return msp_->OutgoingCallImpl(s_, target_msp, method, arg, reply, span_);
}

void ExecContext::Compute(double model_ms) {
  // Re-execution pays the same CPU cost as normal execution (§5.4).
  msp_->ChargeCpu(model_ms);
}

}  // namespace msplog
