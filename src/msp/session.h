// Session — the recovery unit of an MSP (§3.2). Sessions hold private
// session variables (never logged: replay re-executes service methods to
// reconstruct them), a per-session dependency vector and state number, the
// duplicate-detection bookkeeping of §3.1, and the per-session position
// stream into the shared physical log.
//
// Concurrency: within a session at most one request is processed at a time
// (§2.1). The fields below are mutated only by the worker thread currently
// owning the session; the queue/ownership flags are guarded by the MSP's
// session-table mutex.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/serde.h"
#include "common/status.h"
#include "log/position_stream.h"
#include "obs/session_stats.h"
#include "obs/trace.h"
#include "recovery/dependency_vector.h"
#include "rpc/message.h"

namespace msplog {

/// The reply of the latest request, buffered so it can be resent if lost
/// (§3.1).
struct BufferedReply {
  bool valid = false;
  uint64_t seqno = 0;
  ReplyCode code = ReplyCode::kOk;
  Bytes payload;
};

/// Client-side state of an outgoing session this session started with
/// another MSP (§2.1, Fig. 3).
struct OutgoingSessionState {
  std::string target;      ///< target MSP id
  std::string session_id;  ///< deterministic id of the session at the target
  uint64_t next_seqno = 1; ///< next available request sequence number
};

class Session {
 public:
  Session(std::string id, std::string client, SimDisk* disk,
          const std::string& pos_file)
      : id(std::move(id)),
        client(std::move(client)),
        positions(disk, pos_file) {}

  // ---- identity ----
  const std::string id;
  std::string client;  ///< endpoint that owns this session

  // ---- business state (reconstructed by replay) ----
  std::map<std::string, Bytes> vars;  ///< session variables (not logged)

  // ---- recovery bookkeeping ----
  DependencyVector dv;       ///< per-session DV (§3.2), includes self entry
  /// Auditor shadow of `dv` as of the last request boundary (or replay
  /// end). The dv-monotonic invariant check compares against it on the next
  /// request: outside recovery, a DV may only grow (audit/invariants.h).
  DependencyVector audit_shadow_dv;
  uint64_t state_number = 0; ///< LSN of this session's most recent log record
  /// first_lsn / last_checkpoint_lsn are read by the fuzzy MSP checkpoint
  /// without owning the session, hence atomic. The two checkpoint-staleness
  /// counters below are atomic for the same reason: the owner thread resets
  /// them at a session checkpoint while TakeMspCheckpoint (holding only the
  /// session-table mutex, not session ownership) increments and reads them.
  std::atomic<uint64_t> first_lsn{0};          ///< LSN of kSessionStart
  std::atomic<uint64_t> last_checkpoint_lsn{0};  ///< 0 = never checkpointed
  std::atomic<uint64_t> bytes_logged_since_cp{0};
  std::atomic<uint32_t> msp_cps_since_cp{0};
  PositionStream positions;

  // ---- message bookkeeping (§3.1) ----
  uint64_t next_expected_seqno = 1;
  BufferedReply buffered_reply;
  std::map<std::string, OutgoingSessionState> outgoing;  ///< by target MSP

  // ---- scheduling state (guarded by the MSP's session-table mutex) ----
  /// A request plus the model time it entered the queue, so the worker can
  /// attribute queue-wait separately from execute time.
  struct QueuedRequest {
    Message msg;
    double enqueue_model_ms = 0;
    /// Server-side request span, allocated at enqueue with the message's
    /// wire parent; every later lifecycle event of this request carries it.
    obs::SpanContext span;
  };
  std::deque<QueuedRequest> pending_requests;
  bool worker_active = false;
  bool recovering = false;
  /// Set while a replay (background drain, on-demand admission, or lazy
  /// orphan recovery) owns this session, cleared together with `recovering`
  /// at replay end. Distinguishes "waiting for replay" (a new request may
  /// claim it on demand) from "replay in progress" (just queue behind it).
  bool replay_claimed = false;
  bool needs_orphan_check = false;
  /// Set by the MSP checkpoint when this session's checkpoint is stale
  /// (§3.4 forced checkpoints); honored by the session worker.
  bool needs_checkpoint = false;
  bool ended = false;

  /// Sequence numbers for baseline state-server RPCs. Deliberately volatile
  /// and not part of the checkpointable state.
  uint64_t volatile_rpc_seqno = 1;

  /// Orphan cuts (§4.1 EOS records) applied to this session since it was
  /// (re)created. Mutated only by the thread currently replaying the
  /// session; the outage join reads its own replay's delta to classify the
  /// session's fate as "orphaned" vs cleanly "replayed".
  uint64_t orphan_cuts = 0;

  // ---- telemetry (obs/session_stats.h) ----
  /// Relaxed-atomic counters; safe to Snap() from any thread. Volatile by
  /// design: a crash recreates the Session, so recovered sessions restart
  /// their telemetry (replays are counted on the fresh record).
  obs::SessionStats stats;
  /// Nested calls made by the request currently executing; owner-thread
  /// only, folded into stats.OnRequestFanout at the request boundary.
  uint64_t calls_in_request = 0;

  // ---- hot-path encode caches (owner-thread only, like `dv` itself) ----
  /// Wire encoding of `dv`, re-encoded only when the DV actually changed
  /// (DependencyVector bumps `version()` on every mutation). Spliced
  /// verbatim into outgoing messages and checkpoints so the hot path never
  /// copies the DV map or re-encodes an unchanged vector.
  const Bytes& CachedDvWire() const {
    if (dv_wire_version_ != dv.version()) {
      dv_wire_.clear();
      BinaryWriter w(&dv_wire_);
      dv.EncodeTo(&w);
      dv_wire_version_ = dv.version();
    }
    return dv_wire_;
  }

  /// Batch DV piggybacking (log side): consecutive log records of this
  /// session that carry an identical DV share one encoding. Keyed by value
  /// (not version) because record DVs often come from merged peers, not
  /// from `dv` itself.
  struct LoggedDvCache {
    bool valid = false;
    DependencyVector value;
    Bytes wire;
  };
  LoggedDvCache logged_dv_cache;

  /// Serialize the checkpointable state (§3.2: session variables, buffered
  /// reply, next expected request seqno, outgoing sessions' next available
  /// seqnos — plus the DV, which is safe to persist because a distributed
  /// flush precedes every session checkpoint).
  Bytes EncodeCheckpoint() const {
    BinaryWriter w;
    w.PutRaw(CachedDvWire());
    w.PutVarint(state_number);
    w.PutVarint(next_expected_seqno);
    w.PutU8(buffered_reply.valid ? 1 : 0);
    w.PutVarint(buffered_reply.seqno);
    w.PutU8(static_cast<uint8_t>(buffered_reply.code));
    w.PutBytes(buffered_reply.payload);
    w.PutVarint(vars.size());
    for (const auto& [k, v] : vars) {
      w.PutBytes(k);
      w.PutBytes(v);
    }
    w.PutVarint(outgoing.size());
    for (const auto& [target, o] : outgoing) {
      w.PutBytes(target);
      w.PutBytes(o.session_id);
      w.PutVarint(o.next_seqno);
    }
    return w.Take();
  }

  /// Restore the checkpointable state from a blob produced by
  /// EncodeCheckpoint.
  Status DecodeCheckpoint(ByteView blob) {
    BinaryReader r(blob);
    MSPLOG_RETURN_IF_ERROR(dv.DecodeFrom(&r));
    MSPLOG_RETURN_IF_ERROR(r.GetVarint(&state_number));
    MSPLOG_RETURN_IF_ERROR(r.GetVarint(&next_expected_seqno));
    uint8_t valid = 0;
    MSPLOG_RETURN_IF_ERROR(r.GetU8(&valid));
    buffered_reply.valid = valid != 0;
    MSPLOG_RETURN_IF_ERROR(r.GetVarint(&buffered_reply.seqno));
    uint8_t code = 0;
    MSPLOG_RETURN_IF_ERROR(r.GetU8(&code));
    buffered_reply.code = static_cast<ReplyCode>(code);
    MSPLOG_RETURN_IF_ERROR(r.GetBytes(&buffered_reply.payload));
    uint64_t nvars = 0;
    MSPLOG_RETURN_IF_ERROR(r.GetVarint(&nvars));
    vars.clear();
    for (uint64_t i = 0; i < nvars; ++i) {
      Bytes k, v;
      MSPLOG_RETURN_IF_ERROR(r.GetBytes(&k));
      MSPLOG_RETURN_IF_ERROR(r.GetBytes(&v));
      vars[k] = std::move(v);
    }
    uint64_t nout = 0;
    MSPLOG_RETURN_IF_ERROR(r.GetVarint(&nout));
    outgoing.clear();
    for (uint64_t i = 0; i < nout; ++i) {
      OutgoingSessionState o;
      Bytes target;
      MSPLOG_RETURN_IF_ERROR(r.GetBytes(&target));
      MSPLOG_RETURN_IF_ERROR(r.GetBytes(&o.session_id));
      MSPLOG_RETURN_IF_ERROR(r.GetVarint(&o.next_seqno));
      o.target = target;
      outgoing[target] = std::move(o);
    }
    return Status::OK();
  }

 private:
  mutable Bytes dv_wire_;
  mutable uint64_t dv_wire_version_ = 0;  ///< 0 = nothing cached yet
};

}  // namespace msplog
