// Internal: serialized content of an MSP fuzzy checkpoint record (§3.4).
// It contains only *positions*, not state: the recovered state numbers the
// MSP knows, and the LSN of each session's and each shared variable's most
// recent checkpoint (plus session-start LSNs for sessions not yet
// checkpointed). Crash recovery starts its analysis scan at the minimum of
// these positions.
#pragma once

#include <string>
#include <vector>

#include "common/serde.h"
#include "common/status.h"
#include "recovery/recovered_state_table.h"

namespace msplog {

struct MspCheckpointData {
  RecoveredStateTable table;

  struct SessionEntry {
    std::string id;
    std::string client;
    uint64_t last_checkpoint_lsn = 0;  ///< 0 = never checkpointed
    uint64_t first_lsn = 0;            ///< kSessionStart record
  };
  std::vector<SessionEntry> sessions;

  struct VarEntry {
    std::string name;
    uint64_t last_checkpoint_lsn = 0;  ///< 0 = never checkpointed
    bool has_writes = false;
  };
  std::vector<VarEntry> vars;

  Bytes Encode() const {
    BinaryWriter w;
    table.EncodeTo(&w);
    w.PutVarint(sessions.size());
    for (const auto& s : sessions) {
      w.PutBytes(s.id);
      w.PutBytes(s.client);
      w.PutVarint(s.last_checkpoint_lsn);
      w.PutVarint(s.first_lsn);
    }
    w.PutVarint(vars.size());
    for (const auto& v : vars) {
      w.PutBytes(v.name);
      w.PutVarint(v.last_checkpoint_lsn);
      w.PutU8(v.has_writes ? 1 : 0);
    }
    return w.Take();
  }

  /// The analysis-scan start position this checkpoint implies (Fig. 12):
  /// the minimum over every session's base (its checkpoint, else its start
  /// record) and every touched shared variable's checkpoint. Returns 0 when
  /// some unit forces a full scan, and `fallback` when nothing needs
  /// scanning at all.
  uint64_t MinRecoveryLsn(uint64_t fallback) const {
    bool have = false;
    uint64_t min_lsn = 0;
    auto consider = [&](uint64_t base) {
      if (!have || base < min_lsn) {
        min_lsn = base;
        have = true;
      }
    };
    for (const auto& s : sessions) {
      consider(s.last_checkpoint_lsn ? s.last_checkpoint_lsn : s.first_lsn);
    }
    for (const auto& v : vars) {
      if (v.last_checkpoint_lsn == 0 && !v.has_writes) continue;  // untouched
      consider(v.last_checkpoint_lsn);  // 0 forces a full scan
    }
    return have ? min_lsn : fallback;
  }

  Status Decode(ByteView blob) {
    BinaryReader r(blob);
    MSPLOG_RETURN_IF_ERROR(table.DecodeFrom(&r));
    uint64_t n = 0;
    MSPLOG_RETURN_IF_ERROR(r.GetVarint(&n));
    sessions.clear();
    for (uint64_t i = 0; i < n; ++i) {
      SessionEntry e;
      Bytes id, client;
      MSPLOG_RETURN_IF_ERROR(r.GetBytes(&id));
      MSPLOG_RETURN_IF_ERROR(r.GetBytes(&client));
      MSPLOG_RETURN_IF_ERROR(r.GetVarint(&e.last_checkpoint_lsn));
      MSPLOG_RETURN_IF_ERROR(r.GetVarint(&e.first_lsn));
      e.id = id;
      e.client = client;
      sessions.push_back(std::move(e));
    }
    MSPLOG_RETURN_IF_ERROR(r.GetVarint(&n));
    vars.clear();
    for (uint64_t i = 0; i < n; ++i) {
      VarEntry e;
      Bytes name;
      MSPLOG_RETURN_IF_ERROR(r.GetBytes(&name));
      MSPLOG_RETURN_IF_ERROR(r.GetVarint(&e.last_checkpoint_lsn));
      uint8_t hw = 0;
      MSPLOG_RETURN_IF_ERROR(r.GetU8(&hw));
      e.name = name;
      e.has_writes = hw != 0;
      vars.push_back(std::move(e));
    }
    return Status::OK();
  }
};

}  // namespace msplog
