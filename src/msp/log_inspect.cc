#include "msp/log_inspect.h"

#include <algorithm>

#include "log/log_record.h"
#include "log/log_scanner.h"
#include "msp/msp_checkpoint_format.h"
#include "msp/session.h"
#include "obs/metrics.h"  // JsonEscape

namespace msplog {

namespace {

/// One EOS-cut range: records of `session` with lsn in [lo, hi] were made
/// invisible by an orphan cut (§4.1) and are exempt from the per-session
/// seqno monotonicity check.
struct CutRange {
  uint64_t lo = 0;
  uint64_t hi = 0;
};

struct RequestRef {
  uint64_t seqno = 0;
  uint64_t lsn = 0;
};

std::string Lsn(uint64_t v) { return std::to_string(v); }

}  // namespace

std::string LogInspectReport::Summary() const {
  std::string out;
  out += "records: " + std::to_string(records);
  out += "  lsn range: [" + Lsn(first_lsn) + ", " + Lsn(last_lsn) + "]";
  out += "  image bytes: " + std::to_string(image_bytes) + "\n";
  out += "by type:\n";
  for (const auto& [type, n] : records_by_type) {
    out += "  " + type + ": " + std::to_string(n) + "\n";
  }
  out += "sessions: " + std::to_string(records_by_session.size());
  out += "  session checkpoints: " + std::to_string(session_checkpoints);
  out += "  shared-var checkpoints: " + std::to_string(shared_var_checkpoints);
  out += "  msp checkpoints: " + std::to_string(msp_checkpoints) + "\n";
  if (archive_segments > 0) {
    out += "archive segments overlaid: " + std::to_string(archive_segments) +
           "\n";
  }
  if (newest_msp_checkpoint_min_lsn > 0) {
    out += "newest msp checkpoint min-recovery lsn: " +
           Lsn(newest_msp_checkpoint_min_lsn) + "\n";
  }
  if (torn_tail) {
    out += "torn tail at lsn " + Lsn(torn_tail_lsn) +
           " (normal after a crash)\n";
  }
  if (!session_stats.empty()) {
    out += "per-session stats:\n";
    for (const auto& s : session_stats) {
      out += "  " + s.session_id + ": requests=" +
             std::to_string(s.requests) + " nested_calls=" +
             std::to_string(s.nested_calls) + " records=" +
             std::to_string(s.log_records) + " bytes=" +
             std::to_string(s.log_bytes) + " checkpoints=" +
             std::to_string(s.checkpoints) + " dv_entries=" +
             std::to_string(s.dv_entries) + "\n";
    }
  }
  if (invariant_violations.empty()) {
    out += "invariants: OK\n";
  } else {
    out += "invariants: " + std::to_string(invariant_violations.size()) +
           " VIOLATION(S)\n";
    for (const auto& v : invariant_violations) out += "  ! " + v + "\n";
  }
  return out;
}

std::string LogInspectReport::ToJson() const {
  std::string out = "{";
  out += "\"records\":" + std::to_string(records);
  out += ",\"first_lsn\":" + Lsn(first_lsn);
  out += ",\"last_lsn\":" + Lsn(last_lsn);
  out += ",\"image_bytes\":" + std::to_string(image_bytes);
  out += ",\"by_type\":{";
  bool first = true;
  for (const auto& [type, n] : records_by_type) {
    if (!first) out += ",";
    first = false;
    out += "\"" + obs::JsonEscape(type) + "\":" + std::to_string(n);
  }
  out += "},\"sessions\":" + std::to_string(records_by_session.size());
  out += ",\"session_checkpoints\":" + std::to_string(session_checkpoints);
  out += ",\"shared_var_checkpoints\":" +
         std::to_string(shared_var_checkpoints);
  out += ",\"msp_checkpoints\":" + std::to_string(msp_checkpoints);
  out += ",\"newest_msp_checkpoint_min_lsn\":" +
         Lsn(newest_msp_checkpoint_min_lsn);
  out += ",\"archive_segments\":" + std::to_string(archive_segments);
  out += ",\"torn_tail\":" + std::string(torn_tail ? "true" : "false");
  out += ",\"torn_tail_lsn\":" + Lsn(torn_tail_lsn);
  out += ",\"invariant_violations\":[";
  first = true;
  for (const auto& v : invariant_violations) {
    if (!first) out += ",";
    first = false;
    out += "\"" + obs::JsonEscape(v) + "\"";
  }
  out += "]";
  if (!session_stats.empty()) {
    out += ",\"session_stats\":" + obs::SessionTelemetryJson(session_stats);
  }
  out += "}";
  return out;
}

Status InspectLogImage(SimDisk* disk, const std::string& file,
                       const LogInspectOptions& opts, LogInspectReport* report,
                       std::string* dump_text) {
  *report = LogInspectReport();
  const uint64_t durable = disk->FileSize(file);
  report->image_bytes = durable;
  if (durable == 0) {
    return Status::NotFound("log image '" + file + "' is missing or empty");
  }

  // A throwaway session holds checkpoint blobs while they are validated;
  // its position stream targets a scratch file that is never written.
  Session scratch("inspect", "inspect", disk, "inspect/scratch-positions");

  std::map<std::string, std::vector<RequestRef>> requests;
  std::map<std::string, std::vector<CutRange>> cuts;
  std::map<std::string, obs::SessionStatsSnapshot> sstats;

  uint64_t prev_record_lsn = 0;
  bool have_prev = false;

  LogScanner scanner(disk, file, /*start_lsn=*/0, durable);
  while (true) {
    LogRecord rec;
    Status st = scanner.Next(&rec);
    if (st.IsNotFound()) break;  // clean end
    if (st.IsCorruption()) {
      report->torn_tail = true;
      report->torn_tail_lsn = scanner.next_lsn();
      break;
    }
    MSPLOG_RETURN_IF_ERROR(st);

    ++report->records;
    if (report->records == 1) report->first_lsn = rec.lsn;
    report->last_lsn = rec.lsn;
    report->records_by_type[LogRecordTypeName(rec.type)]++;
    if (!rec.session_id.empty()) report->records_by_session[rec.session_id]++;

    if (opts.collect_session_stats && !rec.session_id.empty()) {
      obs::SessionStatsSnapshot& ss = sstats[rec.session_id];
      ss.session_id = rec.session_id;
      ++ss.log_records;
      // next_lsn() sits one past the frame just returned, so the delta is
      // the record's exact on-log footprint, frame included.
      ss.log_bytes += scanner.next_lsn() - rec.lsn;
      switch (rec.type) {
        case LogRecordType::kRequestReceive:
          ++ss.requests;
          break;
        case LogRecordType::kReplyReceive:
          // One logged reply receive per completed nested call; `target`
          // names the callee.
          ++ss.nested_calls;
          if (!rec.target.empty()) ++ss.calls_by_peer[rec.target];
          break;
        case LogRecordType::kSessionCheckpoint:
          ++ss.checkpoints;
          break;
        default:
          break;
      }
      if (rec.has_dv) ss.dv_entries = rec.dv.entry_count();
    }

    if (have_prev && rec.lsn <= prev_record_lsn) {
      report->invariant_violations.push_back(
          "lsn not increasing: " + Lsn(rec.lsn) + " after " +
          Lsn(prev_record_lsn));
    }
    prev_record_lsn = rec.lsn;
    have_prev = true;

    switch (rec.type) {
      case LogRecordType::kRequestReceive:
        requests[rec.session_id].push_back({rec.seqno, rec.lsn});
        break;
      case LogRecordType::kSharedWrite:
        if (rec.prev_lsn != 0 && rec.prev_lsn >= rec.lsn) {
          report->invariant_violations.push_back(
              "shared-write chain not backward: prev_lsn " +
              Lsn(rec.prev_lsn) + " >= lsn " + Lsn(rec.lsn) + " (var " +
              rec.var_id + ")");
        }
        break;
      case LogRecordType::kEos:
        if (rec.prev_lsn > rec.lsn) {
          report->invariant_violations.push_back(
              "eos points forward: prev_lsn " + Lsn(rec.prev_lsn) +
              " > lsn " + Lsn(rec.lsn));
        } else {
          cuts[rec.session_id].push_back({rec.prev_lsn, rec.lsn});
        }
        break;
      case LogRecordType::kSessionCheckpoint: {
        ++report->session_checkpoints;
        Status dst = scratch.DecodeCheckpoint(rec.payload);
        if (!dst.ok()) {
          report->invariant_violations.push_back(
              "session checkpoint at " + Lsn(rec.lsn) +
              " does not decode: " + dst.ToString());
        } else if (opts.dump_checkpoints && dump_text) {
          *dump_text += "  checkpoint session=" + rec.session_id +
                        " state_number=" + Lsn(scratch.state_number) +
                        " next_seqno=" +
                        std::to_string(scratch.next_expected_seqno) +
                        " vars=" + std::to_string(scratch.vars.size()) +
                        " outgoing=" + std::to_string(scratch.outgoing.size()) +
                        "\n";
        }
        break;
      }
      case LogRecordType::kSharedVarCheckpoint:
        ++report->shared_var_checkpoints;
        break;
      case LogRecordType::kMspCheckpoint: {
        ++report->msp_checkpoints;
        MspCheckpointData data;
        Status dst = data.Decode(rec.payload);
        if (!dst.ok()) {
          report->invariant_violations.push_back(
              "msp checkpoint at " + Lsn(rec.lsn) +
              " does not decode: " + dst.ToString());
        } else {
          uint64_t min_lsn = data.MinRecoveryLsn(rec.lsn);
          if (min_lsn > rec.lsn) {
            report->invariant_violations.push_back(
                "msp checkpoint at " + Lsn(rec.lsn) +
                " implies scan start " + Lsn(min_lsn) + " beyond itself");
          }
          // Records arrive in LSN order, so the last decodable MSP
          // checkpoint seen is the newest — the one the anchor points at
          // and the one whose min-recovery LSN bounds reclamation.
          report->newest_msp_checkpoint_min_lsn = min_lsn;
          if (opts.dump_checkpoints && dump_text) {
            *dump_text += "  msp checkpoint sessions=" +
                          std::to_string(data.sessions.size()) +
                          " vars=" + std::to_string(data.vars.size()) +
                          " min_recovery_lsn=" + Lsn(min_lsn) + "\n";
          }
        }
        break;
      }
      default:
        break;
    }

    if (opts.dump_records && dump_text) {
      // A record returned by the scanner passed its frame CRC.
      *dump_text += Lsn(rec.lsn) + " " +
                    std::string(LogRecordTypeName(rec.type));
      if (!rec.session_id.empty()) *dump_text += " session=" + rec.session_id;
      if (!rec.var_id.empty()) *dump_text += " var=" + rec.var_id;
      if (rec.seqno != 0) *dump_text += " seqno=" + std::to_string(rec.seqno);
      if (rec.prev_lsn != 0) *dump_text += " prev_lsn=" + Lsn(rec.prev_lsn);
      if (rec.has_dv) *dump_text += " dv";
      *dump_text += " payload=" + std::to_string(rec.payload.size()) +
                    "B crc=ok\n";
    }
  }

  // No live session cut: checkpoint-driven reclamation (hole punch or
  // archiving) discards strictly below the newest MSP checkpoint's
  // min-recovery LSN, and the record *at* that LSN is one recovery still
  // reads — so the first record surviving in the image must sit at or
  // before it. A first record beyond it means bytes a live session's
  // replay needed were punched or mis-archived.
  if (report->records > 0 && report->newest_msp_checkpoint_min_lsn > 0 &&
      report->first_lsn > report->newest_msp_checkpoint_min_lsn) {
    report->invariant_violations.push_back(
        "live prefix cut: first surviving record at " +
        Lsn(report->first_lsn) + " but newest msp checkpoint needs scan from " +
        Lsn(report->newest_msp_checkpoint_min_lsn));
  }

  // Per-session request seqnos never decrease in log order — except records
  // an EOS cut made invisible, which resent requests may legitimately
  // shadow with equal or lower seqnos.
  for (const auto& [session, refs] : requests) {
    const auto cit = cuts.find(session);
    uint64_t prev_seqno = 0;
    uint64_t prev_lsn = 0;
    for (const RequestRef& ref : refs) {
      if (cit != cuts.end()) {
        bool in_cut = std::any_of(
            cit->second.begin(), cit->second.end(), [&](const CutRange& c) {
              return ref.lsn >= c.lo && ref.lsn <= c.hi;
            });
        if (in_cut) continue;
      }
      if (ref.seqno < prev_seqno) {
        report->invariant_violations.push_back(
            "session " + session + ": request seqno " +
            std::to_string(ref.seqno) + " at lsn " + Lsn(ref.lsn) +
            " after seqno " + std::to_string(prev_seqno) + " at lsn " +
            Lsn(prev_lsn));
      }
      prev_seqno = ref.seqno;
      prev_lsn = ref.lsn;
    }
  }

  for (auto& [id, ss] : sstats) {
    (void)id;
    report->session_stats.push_back(std::move(ss));
  }

  return Status::OK();
}

}  // namespace msplog
