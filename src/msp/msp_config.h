// Configuration of one middleware server process. The `mode` selects between
// the paper's log-based recovery and the §5 baseline configurations.
#pragma once

#include <cstdint>
#include <string>

namespace msplog {

enum class RecoveryMode {
  /// The paper's system: locally optimistic logging, value logging, fuzzy
  /// checkpointing, log-based crash/orphan recovery. Whether message
  /// exchanges are optimistic or pessimistic is decided per message by the
  /// service-domain configuration.
  kLogBased,
  /// No logging or recovery infrastructure at all (config "NoLog").
  kNoLog,
  /// Persistent sessions: session state is fetched from and stored to a
  /// local WAL-backed database around every request (config "Psession").
  kPsession,
  /// Session state kept at a remote in-memory state server (config
  /// "StateServer"): two network round trips per request, no durability.
  kStateServer,
};

const char* RecoveryModeName(RecoveryMode m);

struct MspConfig {
  std::string id;
  RecoveryMode mode = RecoveryMode::kLogBased;

  /// Worker threads serving the request queue (also used for parallel
  /// session recovery).
  size_t thread_pool_size = 8;

  // ---- logging / flushing ----
  /// Batch flushing (§5.5): park flush requests for `batch_timeout_ms` so
  /// several ride one physical write.
  bool batch_flush = false;
  double batch_timeout_ms = 8.0;
  /// Group-commit the peer legs of distributed flushes (the distributed
  /// analogue of §5.5 batch flushing): concurrent legs toward the same peer
  /// join or accumulate behind one in-flight "flush up to" request, and the
  /// receiver serves concurrent requests from one physical flush. When
  /// false, every leg sends its own kFlushRequest (per-request behaviour).
  bool coalesce_distributed_flushes = true;

  // ---- checkpointing (§3.2–§3.4) ----
  /// Take a session checkpoint once this much log was written for the
  /// session since its previous checkpoint. 0 disables ("NoCp").
  uint64_t session_checkpoint_threshold_bytes = 1 << 20;
  /// Checkpoint a shared variable every this many writes. 0 disables.
  uint32_t shared_var_checkpoint_threshold_writes = 256;
  /// Take an MSP fuzzy checkpoint whenever the log has grown by this much
  /// since the previous one (evaluated by the checkpoint daemon). 0 = only
  /// on demand (ForceMspCheckpoint) and at recovery end.
  uint64_t msp_checkpoint_log_bytes = 1 << 20;
  /// Force a session / shared-variable checkpoint if this many MSP
  /// checkpoints passed since its last one (§3.4, idle-session rule).
  uint32_t force_checkpoint_after_msp_cps = 4;
  /// Run the background checkpoint daemon.
  bool checkpoint_daemon = false;
  /// Reclaim (hole-punch) log space below the analysis-scan start after
  /// each MSP checkpoint — everything before it can never be read again.
  bool reclaim_log = true;
  /// With reclaim_log: copy each reclaimed range into an archive segment
  /// (`<log>.arc.<base>`) before punching it, so offline forensics can still
  /// reconstruct the full log image (msplog_inspect --archive-manifest).
  bool archive_log = false;
  /// Daemon wake interval (model ms).
  double checkpoint_interval_ms = 250.0;

  // ---- rpc ----
  /// Resend timeout for outgoing MSP-to-MSP calls (model ms).
  double call_resend_timeout_ms = 400.0;
  /// Backoff after a Busy reply (model ms).
  double busy_backoff_ms = 100.0;
  /// Timeout for one round of a distributed-flush request (model ms);
  /// retried until the peer answers or the session turns out orphan.
  double flush_timeout_ms = 300.0;
  uint32_t max_call_sends = 200;

  // ---- baselines ----
  /// Endpoint name of the state server (mode kStateServer).
  std::string state_server;

  /// Model CPU milliseconds charged for executing one service method body
  /// in addition to whatever the method itself Compute()s.
  double method_overhead_ms = 0.0;

  // ---- ablations (DESIGN.md §5) ----
  /// §3.2: per-session DVs let sessions recover independently. When false,
  /// the MSP behaves as if it kept ONE dependency vector for the whole
  /// process (the strawman the paper argues against): any orphan dependency
  /// rolls back EVERY session, and messages carry the union DV.
  bool per_session_dv = true;
  /// §4.3: replay sessions one at a time instead of in parallel on the
  /// thread pool — quantifies the parallel-recovery contribution.
  bool sequential_recovery = false;

  // ---- CPU model ----
  /// When true, ServiceContext::Compute() serializes on a per-MSP mutex,
  /// modeling the paper's single-CPU server machines: concurrent requests
  /// contend for the core and throughput saturates (§5.5, Fig. 17).
  bool single_core_cpu = false;
  /// CPU milliseconds charged (on the contended core when enabled) per
  /// physical log write — fewer writes under batch flushing means less CPU,
  /// matching the paper's 90% -> 60% utilization observation.
  double cpu_per_flush_ms = 0.0;
};

inline const char* RecoveryModeName(RecoveryMode m) {
  switch (m) {
    case RecoveryMode::kLogBased: return "LogBased";
    case RecoveryMode::kNoLog: return "NoLog";
    case RecoveryMode::kPsession: return "Psession";
    case RecoveryMode::kStateServer: return "StateServer";
  }
  return "?";
}

}  // namespace msplog
