// Recovery processing (§4): MSP crash recovery (analysis scan, shared-state
// roll forward, recovery broadcast, parallel session replay) and session
// orphan recovery (replay from the latest checkpoint along the position
// stream, EOS cut at the orphan log record, live continuation).
#include <algorithm>
#include <map>

#include "audit/invariants.h"
#include "audit/mutex.h"
#include "log/log_scanner.h"
#include "msp/exec_context.h"
#include "msp/msp.h"
#include "msp/msp_checkpoint_format.h"

namespace msplog {

namespace {
std::string PosFileName(const std::string& msp, const std::string& session) {
  return "pos/" + msp + "/" + session;
}
}  // namespace

obs::RecoveryTimeline Msp::LastRecoveryTimeline() const {
  audit::LockGuard lk(timeline_mu_);
  return last_recovery_timeline_;
}

std::vector<obs::RecoveryTimeline> Msp::RecentRecoveryTimelines(
    size_t max_n) const {
  audit::LockGuard lk(timeline_mu_);
  std::vector<obs::RecoveryTimeline> out(recovery_history_.begin(),
                                         recovery_history_.end());
  if (last_recovery_timeline_.epoch != 0) {
    out.push_back(last_recovery_timeline_);
  }
  if (max_n != 0 && out.size() > max_n) {
    out.erase(out.begin(), out.end() - static_cast<ptrdiff_t>(max_n));
  }
  return out;
}

std::vector<obs::RecoveryTimeline::SessionProvenance> Msp::RecoveryProvenance()
    const {
  audit::LockGuard lk(timeline_mu_);
  return last_recovery_timeline_.provenance;
}

obs::OutageReport Msp::LastOutageReport() const {
  audit::LockGuard lk(timeline_mu_);
  return last_outage_report_;
}

Status Msp::CrashRecovery() {
  double t0 = env_->NowModelMs();
  env_->tracer().Record(obs::TraceEventType::kRecoveryStart, t0, config_.id);
  const std::string log_file = config_.id + ".log";

  // Epoch handling: bump and persist the epoch BEFORE anything else, so a
  // crash during recovery can never reuse a failure-free period identifier.
  AnchorData ad;
  Status ast = anchor_.Read(&ad);
  uint64_t msp_cp_lsn = 0;
  uint32_t old_epoch = 0;
  if (ast.ok()) {
    msp_cp_lsn = ad.msp_checkpoint_lsn;
    old_epoch = ad.epoch;
  } else if (!ast.IsNotFound()) {
    return ast;
  }
  epoch_.store(old_epoch + 1);
  MSPLOG_RETURN_IF_ERROR(anchor_.Write({msp_cp_lsn, epoch_.load()}));

  {
    audit::LockGuard lk(timeline_mu_);
    // The previous recovery's timeline moves into the bounded history
    // before this one takes the "last" slot.
    if (last_recovery_timeline_.epoch != 0) {
      recovery_history_.push_back(std::move(last_recovery_timeline_));
      while (recovery_history_.size() > kRecoveryHistoryLimit) {
        recovery_history_.pop_front();
      }
    }
    last_recovery_timeline_ = obs::RecoveryTimeline();
    last_recovery_timeline_.epoch = epoch_.load();
    last_recovery_timeline_.started_model_ms = t0;
    last_recovery_timeline_.msp_checkpoint_lsn = msp_cp_lsn;
  }

  // Re-initialize from the most recent MSP checkpoint (Fig. 12).
  uint64_t min_lsn = 0;
  if (msp_cp_lsn != 0) {
    LogRecord cp;
    MSPLOG_RETURN_IF_ERROR(log_->ReadRecordAt(msp_cp_lsn, &cp));
    if (cp.type != LogRecordType::kMspCheckpoint) {
      return Status::Corruption("anchor does not point at an MSP checkpoint");
    }
    MspCheckpointData data;
    MSPLOG_RETURN_IF_ERROR(data.Decode(cp.payload));
    {
      audit::LockGuard lk(table_mu_);
      recovered_table_.Merge(data.table);
    }
    audit::LockGuard lk(sessions_mu_);
    for (const auto& e : data.sessions) {
      auto s = std::make_shared<Session>(e.id, e.client, disk_,
                                         PosFileName(config_.id, e.id));
      s->last_checkpoint_lsn.store(e.last_checkpoint_lsn);
      s->first_lsn.store(e.first_lsn);
      s->recovering = true;
      sessions_[e.id] = s;
    }
    for (const auto& e : data.vars) {
      auto v = GetOrCreateSharedVar(e.name);
      v->last_checkpoint_lsn = e.last_checkpoint_lsn;
    }
    min_lsn = data.MinRecoveryLsn(msp_cp_lsn);
  }

  // Single-threaded analysis scan (§4.3): reconstruct position streams,
  // roll shared variables forward, rebuild recovered-state knowledge.
  const uint64_t durable = disk_->FileSize(log_file);
  std::map<std::string, std::vector<uint64_t>> positions;
  {
    audit::LockGuard lk(sessions_mu_);
    for (auto& [id, s] : sessions_) positions[id];  // seed known sessions
  }

  auto ensure_session =
      [&](const std::string& id,
          const std::string& client) -> std::shared_ptr<Session> {
    audit::LockGuard lk(sessions_mu_);
    auto it = sessions_.find(id);
    if (it != sessions_.end()) {
      if (it->second->client.empty() && !client.empty()) {
        it->second->client = client;
      }
      return it->second;
    }
    auto s = std::make_shared<Session>(id, client, disk_,
                                       PosFileName(config_.id, id));
    s->recovering = true;
    sessions_[id] = s;
    return s;
  };

  uint64_t scanned_records = 0;
  LogScanner scanner(disk_, log_file, min_lsn, durable);
  while (true) {
    LogRecord rec;
    Status st = scanner.Next(&rec);
    if (st.IsNotFound()) break;
    if (st.IsCorruption()) break;  // torn tail: the durable log ends here
    MSPLOG_RETURN_IF_ERROR(st);
    ++scanned_records;

    switch (rec.type) {
      case LogRecordType::kSessionStart: {
        auto s = ensure_session(rec.session_id, rec.target);
        s->first_lsn.store(rec.lsn);
        break;
      }
      case LogRecordType::kRequestReceive:
      case LogRecordType::kSharedRead:
      case LogRecordType::kReplyReceive: {
        auto s = ensure_session(rec.session_id, "");
        if (rec.lsn > s->last_checkpoint_lsn.load()) {
          positions[rec.session_id].push_back(rec.lsn);
        }
        break;
      }
      case LogRecordType::kSharedWrite: {
        // Roll forward (§4.3): each write record carries the full value.
        auto v = GetOrCreateSharedVar(rec.var_id);
        audit::SharedUniqueLock vlk(v->rw);
        v->value = rec.payload;
        v->dv = rec.dv;
        v->state_number = rec.lsn;
        v->last_write_lsn = rec.lsn;
        break;
      }
      case LogRecordType::kSharedVarCheckpoint: {
        auto v = GetOrCreateSharedVar(rec.var_id);
        audit::SharedUniqueLock vlk(v->rw);
        v->value = rec.payload;
        v->dv.Clear();
        v->state_number = rec.lsn;
        v->last_write_lsn = rec.lsn;
        v->last_checkpoint_lsn = rec.lsn;
        break;
      }
      case LogRecordType::kSessionCheckpoint: {
        auto s = ensure_session(rec.session_id, "");
        s->last_checkpoint_lsn.store(rec.lsn);
        positions[rec.session_id].clear();
        break;
      }
      case LogRecordType::kSessionEnd: {
        audit::LockGuard lk(sessions_mu_);
        sessions_.erase(rec.session_id);
        positions.erase(rec.session_id);
        break;
      }
      case LogRecordType::kRecoveredState: {
        audit::LockGuard lk(table_mu_);
        recovered_table_.Record(rec.peer, rec.peer_epoch,
                                rec.peer_recovered_sn);
        break;
      }
      case LogRecordType::kEos: {
        // §4.3: records from the orphan record through the EOS are skipped
        // by any subsequent recovery of this session.
        auto it = positions.find(rec.session_id);
        if (it != positions.end()) {
          auto& ps = it->second;
          ps.erase(std::remove_if(ps.begin(), ps.end(),
                                  [&](uint64_t p) {
                                    return p >= rec.prev_lsn && p <= rec.lsn;
                                  }),
                   ps.end());
        }
        break;
      }
      case LogRecordType::kMspCheckpoint:
        break;  // the newest one already initialized us
      default:
        break;
    }
  }

  // The recovered state number for the epoch that just ended: the largest
  // LSN that can still belong to a durable record. `durable` is the
  // EXCLUSIVE end of the durable extent — a record whose frame starts at
  // exactly `durable` was lost, so the boundary itself counts as not
  // recovered.
  const uint64_t recovered_sn = durable > 0 ? durable - 1 : 0;
  {
    audit::LockGuard lk(table_mu_);
    recovered_table_.Record(config_.id, old_epoch, recovered_sn);
  }

  // Hand the reconstructed position streams to the sessions.
  uint64_t sessions_to_recover = 0;
  std::vector<std::string> surviving_ids;
  {
    audit::LockGuard lk(sessions_mu_);
    for (auto& [id, s] : sessions_) {
      auto it = positions.find(id);
      if (it != positions.end()) {
        s->positions.ReplaceAll(std::move(it->second));
      }
      s->recovering = true;
      surviving_ids.push_back(id);
    }
    sessions_to_recover = sessions_.size();
  }

  // Outage observatory join (flight recorder × analysis scan): the frozen
  // pre-crash bundle names the sessions that were in flight at the crash;
  // the scan just established which of them left any durable trace. A
  // bundle session absent from the rebuilt table was never logged — its
  // client sees a fresh session, servable once recovery completes. The
  // rest start "pending" and are resolved by their replay.
  {
    obs::FlightBundle bundle =
        env_->flight_recorder().LatestBundleFor(config_.id);
    audit::LockGuard lk(timeline_mu_);
    if (bundle.frozen && bundle.generation == crash_generation_.load() &&
        bundle.generation > outage_joined_generation_) {
      outage_joined_generation_ = bundle.generation;
      last_outage_report_ = obs::OutageReport();
      last_outage_report_.valid = true;
      last_outage_report_.generation = bundle.generation;
      last_outage_report_.epoch = epoch_.load();
      last_outage_report_.crash_model_ms = bundle.frozen_at_ms;
      last_outage_report_.recovery_start_ms = t0;
      for (const auto& [who, snap] : bundle.snapshots) {
        if (who != config_.id) continue;
        for (const std::string& id : snap.inflight_sessions) {
          obs::OutageReport::SessionFate f;
          f.session_id = id;
          f.was_in_flight = true;
          if (std::find(surviving_ids.begin(), surviving_ids.end(), id) ==
              surviving_ids.end()) {
            f.fate = "never-logged";
          }
          last_outage_report_.sessions.push_back(std::move(f));
        }
      }
    }
  }

  // Analysis phase (§4.3) ends here: the single-threaded scan is done and
  // every session knows its replay positions. What follows — broadcast and
  // the fresh MSP checkpoint — is attributed separately in the timeline.
  const double scan_end_ms = env_->NowModelMs();
  env_->tracer().Record(obs::TraceEventType::kAnalysisScanEnd, scan_end_ms,
                        config_.id, /*session=*/"", /*seqno=*/0,
                        "records=" + std::to_string(scanned_records));
  {
    audit::LockGuard lk(timeline_mu_);
    last_recovery_timeline_.analysis_scan_ms = scan_end_ms - t0;
    last_recovery_timeline_.analysis_records_scanned = scanned_records;
    last_recovery_timeline_.analysis_bytes_scanned =
        durable > min_lsn ? durable - min_lsn : 0;
    last_recovery_timeline_.sessions_to_recover = sessions_to_recover;
    last_recovery_timeline_.scan_start_lsn = min_lsn;
    last_recovery_timeline_.scan_end_lsn = durable;
  }

  // Broadcast the recovery message within the service domain (§4.3). The
  // full own history is included so peers recovering concurrently (or that
  // lost an unflushed kRecoveredState record) still converge.
  std::vector<std::pair<uint32_t, uint64_t>> own_history;
  {
    audit::LockGuard lk(table_mu_);
    for (const auto& [key, sn] : recovered_table_.entries()) {
      if (key.first == config_.id) own_history.push_back({key.second, sn});
    }
  }
  for (const auto& peer : directory_->PeersOf(config_.id)) {
    for (const auto& [e, sn] : own_history) {
      Message m;
      m.type = MessageType::kRecoveryAnnounce;
      m.sender = config_.id;
      m.rec_epoch = e;
      m.rec_sn = sn;
      network_->Send(config_.id, peer, m.Encode());
    }
  }

  // Fresh MSP checkpoint so the next crash starts from here (Fig. 12).
  // Unit forcing is skipped: peers cannot be flushed to before our
  // dispatcher runs.
  const double cp_t0 = env_->NowModelMs();
  MSPLOG_RETURN_IF_ERROR(TakeMspCheckpoint(/*force_units=*/false));

  const double end_ms = env_->NowModelMs();
  {
    audit::LockGuard lk(timeline_mu_);
    last_recovery_timeline_.post_scan_checkpoint_ms = end_ms - cp_t0;
    // Never-logged sessions have no replay to resolve them: they become
    // servable (as brand-new sessions) the moment recovery completes.
    if (last_outage_report_.valid) {
      for (auto& f : last_outage_report_.sessions) {
        if (f.fate == "never-logged" && f.servable_at_ms == 0) {
          f.servable_at_ms = end_ms;
          f.time_to_servable_ms = end_ms - last_outage_report_.crash_model_ms;
        }
      }
      last_outage_report_.Finalize();
    }
  }
  env_->flight_recorder().Record(
      obs::FlightEventType::kRecovery, config_.id, /*session=*/"",
      /*seqno=*/0,
      "epoch=" + std::to_string(epoch_.load()) +
          " sessions=" + std::to_string(sessions_to_recover) +
          " scan_ms=" + std::to_string(scan_end_ms - t0));
  env_->tracer().Record(obs::TraceEventType::kRecoveryEnd, end_ms, config_.id,
                        /*session=*/"", /*seqno=*/0,
                        "sessions=" + std::to_string(sessions_to_recover));
  return Status::OK();
}

void Msp::SessionRecoveryTask(std::shared_ptr<Session> s) {
  (void)RecoverSessionReplay(s.get(), /*from_crash=*/true);
  env_->stats().sessions_recovered.fetch_add(1);
}

Status Msp::RecoverSessionReplay(Session* s, bool from_crash) {
  {
    audit::LockGuard lk(sessions_mu_);
    s->recovering = true;
  }
  const double replay_t0 = env_->NowModelMs();
  env_->tracer().Record(obs::TraceEventType::kReplayStart, replay_t0,
                        config_.id, s->id, /*seqno=*/0,
                        from_crash ? "crash" : "orphan");
  const uint32_t parallel_now = active_replays_.fetch_add(1) + 1;
  {
    audit::LockGuard lk(timeline_mu_);
    if (parallel_now > last_recovery_timeline_.max_parallel_replays) {
      last_recovery_timeline_.max_parallel_replays = parallel_now;
    }
  }
  uint64_t requests_replayed = 0;
  // Delta over this replay distinguishes a clean "replayed" fate from an
  // "orphaned" one in the outage report (the field is owner-thread only,
  // and this thread owns the session for the duration of the replay).
  const uint64_t orphan_cuts_before = s->orphan_cuts;
  obs::RecoveryTimeline::SessionProvenance prov;
  prov.session_id = s->id;
  Status st = Status::OK();
  uint32_t rounds = 0;
  while (true) {
    if (++rounds > 64) {
      st = Status::Internal("session recovery did not converge");
      break;
    }
    // Each pass overwrites the provenance; the final converged pass is the
    // one that actually rebuilt the session, which is what we keep.
    st = ReplayOnce(s, &requests_replayed, &prov);
    if (st.IsOrphan()) continue;  // orphaned again mid-replay: start over
    if (!st.ok()) break;
    // §4.1 "Orphan Recovery upon Multiple Crashes": another crash may have
    // arrived while we replayed; re-check before declaring victory.
    if (SessionIsOrphan(s)) continue;
    break;
  }
  active_replays_.fetch_sub(1);
  // Replay legitimately rewinds the DV; re-arm the monotonicity shadow at the
  // new baseline, and cross-check that no surviving dependency points at a
  // state number the recovered-state table proves lost (Theorem 4.2).
  s->audit_shadow_dv = s->dv;
  if (st.ok()) {
    audit::CheckRecoveredDominates("session " + s->id,
                                   SnapshotRecoveredTable(), config_.id,
                                   epoch_.load(), s->dv);
  }
  const double servable_now = env_->NowModelMs();
  const double replay_ms = servable_now - replay_t0;
  hist_replay_ms_->Record(replay_ms);
  s->stats.OnReplayedRequests(requests_replayed);
  s->stats.SetDvEntries(s->dv.entry_count());
  env_->tracer().Record(obs::TraceEventType::kReplayEnd,
                        env_->NowModelMs(), config_.id, s->id, /*seqno=*/0,
                        "replayed=" + std::to_string(requests_replayed));
  {
    audit::LockGuard lk(timeline_mu_);
    last_recovery_timeline_.session_replays.push_back(
        {s->id, replay_ms, requests_replayed, rounds, from_crash, st.ok()});
    prov.msp_checkpoint_lsn = last_recovery_timeline_.msp_checkpoint_lsn;
    // Replace-or-append: a lazy orphan recovery updates its session's entry
    // rather than duplicating it.
    bool replaced = false;
    for (auto& p : last_recovery_timeline_.provenance) {
      if (p.session_id == s->id) {
        p = prov;
        replaced = true;
        break;
      }
    }
    if (!replaced) last_recovery_timeline_.provenance.push_back(prov);
    // Resolve this session's fate in the outage report: the replay just
    // made it servable again. An EOS cut during this replay means its
    // in-flight work was orphaned; otherwise it replayed cleanly.
    if (from_crash && st.ok() && last_outage_report_.valid) {
      if (obs::OutageReport::SessionFate* f =
              last_outage_report_.Find(s->id)) {
        if (f->fate == "pending") {
          f->fate =
              s->orphan_cuts > orphan_cuts_before ? "orphaned" : "replayed";
          f->servable_at_ms = servable_now;
          f->time_to_servable_ms =
              servable_now - last_outage_report_.crash_model_ms;
          f->requests_replayed = requests_replayed;
          last_outage_report_.Finalize();
        }
      }
    }
  }
  // The client may still be waiting for the reply of the last request —
  // resend it (duplicate replies are discarded by receivers).
  if (st.ok() && s->buffered_reply.valid && !s->ended) {
    Status rst = SendReply(s, s->buffered_reply.code,
                           s->buffered_reply.payload, s->buffered_reply.seqno);
    if (rst.IsOrphan()) {
      // Rare: orphaned between the convergence check and the resend flush.
      audit::LockGuard lk(sessions_mu_);
      s->needs_orphan_check = true;
    }
  }
  bool arm = false;
  {
    audit::LockGuard lk(sessions_mu_);
    s->recovering = false;
    if ((!s->pending_requests.empty() || s->needs_orphan_check ||
         s->needs_checkpoint) &&
        !s->worker_active) {
      s->worker_active = true;
      arm = true;
    }
  }
  if (arm) {
    auto sp = GetSession(s->id);
    if (sp) pool_->Submit([this, sp] { SessionWorker(sp); });
  }
  return st;
}

Status Msp::ReplayOnce(Session* s, uint64_t* replayed_out,
                       obs::RecoveryTimeline::SessionProvenance* prov) {
  // 1. Initialize from the most recent session checkpoint (§4.1).
  uint64_t cp_lsn = s->last_checkpoint_lsn.load();
  if (prov) {
    prov->records.clear();
    prov->log_records_consumed = 0;
    prov->session_checkpoint_lsn = cp_lsn;
  }
  if (cp_lsn != 0) {
    LogRecord cp;
    MSPLOG_RETURN_IF_ERROR(log_->ReadRecordAt(cp_lsn, &cp));
    if (cp.type != LogRecordType::kSessionCheckpoint) {
      return Status::Corruption("expected session checkpoint at " +
                                std::to_string(cp_lsn));
    }
    MSPLOG_RETURN_IF_ERROR(s->DecodeCheckpoint(cp.payload));
  } else {
    s->vars.clear();
    s->dv.Clear();
    s->state_number = 0;
    s->next_expected_seqno = 1;
    s->buffered_reply = BufferedReply();
    s->outgoing.clear();
  }

  // 2. Redo recovery: replay logged requests along the position stream.
  ReplayCursor cursor(log_.get(), s->positions.All());
  // Every exit path stamps how far along the stream this pass got.
  auto done = [&](Status st) {
    if (prov) prov->log_records_consumed = cursor.consumed();
    return st;
  };
  while (cursor.HasNext()) {
    LogRecord rec;
    MSPLOG_RETURN_IF_ERROR(done(cursor.Peek(&rec)));
    if (rec.type == LogRecordType::kSessionStart) {
      cursor.Skip();
      continue;
    }
    if (rec.type == LogRecordType::kSessionEnd) {
      audit::LockGuard lk(sessions_mu_);
      s->ended = true;
      return done(Status::OK());
    }
    if (rec.has_dv && DvIsOrphan(rec.dv)) {
      // The session became an orphan by receiving this request: skip it and
      // everything after; the sender will resend after its own recovery.
      OrphanCut(s, rec.lsn);
      return done(Status::OK());
    }
    if (rec.type != LogRecordType::kRequestReceive) {
      env_->stats().replay_misalignments.fetch_add(1);
      return done(Status::Internal(
          "position stream misaligned: expected RequestReceive, found " +
          std::string(LogRecordTypeName(rec.type)) + " at " +
          std::to_string(rec.lsn)));
    }
    cursor.Skip();
    s->state_number = rec.lsn;
    s->dv.Set(config_.id, StateId{epoch_.load(), rec.lsn});
    if (rec.has_dv) s->dv.Merge(rec.dv);
    s->next_expected_seqno = rec.seqno;
    if (prov) prov->records.push_back({epoch_.load(), rec.seqno, rec.lsn});

    ExecContext ctx(this, s, ExecContext::Mode::kReplay, rec.seqno, &cursor);
    Bytes result;
    Status st = InvokeMethod(rec.target, &ctx, rec.payload, &result);
    env_->stats().requests_replayed.fetch_add(1);
    if (replayed_out) ++*replayed_out;
    if (st.IsOrphan() || st.IsCrashed() || st.IsTimedOut()) return done(st);

    ReplyCode code = st.ok() ? ReplyCode::kOk : ReplyCode::kAppError;
    Bytes payload = st.ok() ? std::move(result) : Bytes(st.ToString());
    s->buffered_reply = {true, rec.seqno, code, payload};
    s->next_expected_seqno = rec.seqno + 1;

    if (ctx.switched_live()) {
      // The request was in flight when the log ended (or the cut happened):
      // its execution just completed for real, so the reply must go out.
      Status rst = SendReply(s, code, payload, rec.seqno);
      if (rst.IsOrphan()) return done(rst);
      MSPLOG_RETURN_IF_ERROR(done(rst));
      // Anything after the switch point is gone (cut) or did not exist.
      return done(Status::OK());
    }
  }
  return done(Status::OK());
}

void Msp::OrphanCut(Session* s, uint64_t orphan_lsn) {
  // §4.1 "Orphan Recovery End": write an EOS record pointing back to the
  // orphan log record and make the skipped range invisible to any future
  // recovery of this session. The EOS need not be flushed; if it is lost in
  // a crash, everything from the orphan record onward is skipped anyway.
  LogRecord eos;
  eos.type = LogRecordType::kEos;
  eos.session_id = s->id;
  eos.prev_lsn = orphan_lsn;
  log_->Append(eos);
  s->positions.RemoveRange(orphan_lsn, UINT64_MAX);
  ++s->orphan_cuts;
  env_->tracer().Record(obs::TraceEventType::kOrphanCut, env_->NowModelMs(),
                        config_.id, s->id, /*seqno=*/0,
                        "orphan_lsn=" + std::to_string(orphan_lsn));
  audit::LockGuard lk(timeline_mu_);
  ++last_recovery_timeline_.orphan_events;
}

}  // namespace msplog
