// Recovery processing (§4): the CrashRecovery wrapper over the phased
// RecoveryCoordinator (analysis scan + open + background drain live in
// recovery_coordinator.cc), per-session replay, and session orphan recovery
// (replay from the latest checkpoint along the position stream, EOS cut at
// the orphan log record, live continuation).
#include <algorithm>

#include "audit/invariants.h"
#include "audit/mutex.h"
#include "msp/exec_context.h"
#include "msp/msp.h"
#include "msp/recovery_coordinator.h"

namespace msplog {

obs::RecoveryTimeline Msp::LastRecoveryTimeline() const {
  audit::LockGuard lk(timeline_mu_);
  return last_recovery_timeline_;
}

std::vector<obs::RecoveryTimeline> Msp::RecentRecoveryTimelines(
    size_t max_n) const {
  audit::LockGuard lk(timeline_mu_);
  std::vector<obs::RecoveryTimeline> out(recovery_history_.begin(),
                                         recovery_history_.end());
  if (last_recovery_timeline_.epoch != 0) {
    out.push_back(last_recovery_timeline_);
  }
  if (max_n != 0 && out.size() > max_n) {
    out.erase(out.begin(), out.end() - static_cast<ptrdiff_t>(max_n));
  }
  return out;
}

std::vector<obs::RecoveryTimeline::SessionProvenance> Msp::RecoveryProvenance()
    const {
  audit::LockGuard lk(timeline_mu_);
  return last_recovery_timeline_.provenance;
}

obs::OutageReport Msp::LastOutageReport() const {
  audit::LockGuard lk(timeline_mu_);
  return last_outage_report_;
}

Status Msp::CrashRecovery() {
  // Thin wrapper over the phased coordinator (recovery_coordinator.h):
  // analysis + open here, synchronously, so Start() can accept traffic the
  // moment this returns; the per-session replay drain is kicked off by
  // Start() after the mailbox is live (BeginBackgroundDrain) and raced by
  // on-demand admissions (HandleRequestMsg).
  recovery_coordinator_ = std::make_unique<RecoveryCoordinator>(this);
  MSPLOG_RETURN_IF_ERROR(recovery_coordinator_->RunAnalysis());
  return recovery_coordinator_->PrepareOpen();
}

void Msp::SessionRecoveryTask(std::shared_ptr<Session> s, bool on_demand) {
  {
    // Claim the session: background drain, on-demand admission, and (via
    // RecoverSessionReplay's own claim) lazy orphan recovery may race to
    // replay it; exactly one wins, the rest no-op.
    audit::LockGuard lk(sessions_mu_);
    if (!s->recovering || s->replay_claimed) return;
    s->replay_claimed = true;
  }
  if (on_demand) {
    audit::LockGuard lk(timeline_mu_);
    ++last_recovery_timeline_.on_demand_replays;
  }
  (void)RecoverSessionReplay(s.get(), /*from_crash=*/true);
}

Status Msp::RecoverSessionReplay(Session* s, bool from_crash) {
  {
    audit::LockGuard lk(sessions_mu_);
    s->recovering = true;
    // Also claim: blocks the admission gate from spawning a concurrent
    // on-demand replay while a lazy orphan recovery owns the session.
    s->replay_claimed = true;
  }
  const double replay_t0 = env_->NowModelMs();
  env_->tracer().Record(obs::TraceEventType::kReplayStart, replay_t0,
                        config_.id, s->id, /*seqno=*/0,
                        from_crash ? "crash" : "orphan");
  const uint32_t parallel_now = active_replays_.fetch_add(1) + 1;
  {
    audit::LockGuard lk(timeline_mu_);
    if (parallel_now > last_recovery_timeline_.max_parallel_replays) {
      last_recovery_timeline_.max_parallel_replays = parallel_now;
    }
  }
  uint64_t requests_replayed = 0;
  // Delta over this replay distinguishes a clean "replayed" fate from an
  // "orphaned" one in the outage report (the field is owner-thread only,
  // and this thread owns the session for the duration of the replay).
  const uint64_t orphan_cuts_before = s->orphan_cuts;
  obs::RecoveryTimeline::SessionProvenance prov;
  prov.session_id = s->id;
  Status st = Status::OK();
  uint32_t rounds = 0;
  while (true) {
    if (++rounds > 64) {
      st = Status::Internal("session recovery did not converge");
      break;
    }
    // Each pass overwrites the provenance; the final converged pass is the
    // one that actually rebuilt the session, which is what we keep.
    st = ReplayOnce(s, &requests_replayed, &prov);
    if (st.IsOrphan()) continue;  // orphaned again mid-replay: start over
    if (!st.ok()) break;
    // §4.1 "Orphan Recovery upon Multiple Crashes": another crash may have
    // arrived while we replayed; re-check before declaring victory.
    if (SessionIsOrphan(s)) continue;
    break;
  }
  active_replays_.fetch_sub(1);
  if (from_crash) {
    // Count the recovery BEFORE the session becomes servable again (reply
    // resend / worker arming below): an observer that just completed a
    // round trip against the recovered session must see the counter.
    env_->stats().sessions_recovered.fetch_add(1);
  }
  // Replay legitimately rewinds the DV; re-arm the monotonicity shadow at the
  // new baseline, and cross-check that no surviving dependency points at a
  // state number the recovered-state table proves lost (Theorem 4.2).
  s->audit_shadow_dv = s->dv;
  if (st.ok()) {
    audit::CheckRecoveredDominates("session " + s->id,
                                   SnapshotRecoveredTable(), config_.id,
                                   epoch_.load(), s->dv);
  }
  const double servable_now = env_->NowModelMs();
  const double replay_ms = servable_now - replay_t0;
  hist_replay_ms_->Record(replay_ms);
  s->stats.OnReplayedRequests(requests_replayed);
  s->stats.SetDvEntries(s->dv.entry_count());
  env_->tracer().Record(obs::TraceEventType::kReplayEnd,
                        env_->NowModelMs(), config_.id, s->id, /*seqno=*/0,
                        "replayed=" + std::to_string(requests_replayed));
  {
    audit::LockGuard lk(timeline_mu_);
    last_recovery_timeline_.session_replays.push_back(
        {s->id, replay_ms, requests_replayed, rounds, from_crash, st.ok()});
    prov.msp_checkpoint_lsn = last_recovery_timeline_.msp_checkpoint_lsn;
    // Replace-or-append: a lazy orphan recovery updates its session's entry
    // rather than duplicating it.
    bool replaced = false;
    for (auto& p : last_recovery_timeline_.provenance) {
      if (p.session_id == s->id) {
        p = prov;
        replaced = true;
        break;
      }
    }
    if (!replaced) last_recovery_timeline_.provenance.push_back(prov);
    // Resolve this session's fate in the outage report: the replay just
    // made it servable again. An EOS cut during this replay means its
    // in-flight work was orphaned; otherwise it replayed cleanly.
    if (from_crash && st.ok() && last_outage_report_.valid) {
      if (obs::OutageReport::SessionFate* f =
              last_outage_report_.Find(s->id)) {
        if (f->fate == "pending") {
          f->fate =
              s->orphan_cuts > orphan_cuts_before ? "orphaned" : "replayed";
          f->servable_at_ms = servable_now;
          f->time_to_servable_ms =
              servable_now - last_outage_report_.crash_model_ms;
          f->requests_replayed = requests_replayed;
          last_outage_report_.Finalize();
        }
      }
    }
  }
  // The client may still be waiting for the reply of the last request —
  // resend it (duplicate replies are discarded by receivers).
  if (st.ok() && s->buffered_reply.valid && !s->ended) {
    Status rst = SendReply(s, s->buffered_reply.code,
                           s->buffered_reply.payload, s->buffered_reply.seqno);
    if (rst.IsOrphan()) {
      // Rare: orphaned between the convergence check and the resend flush.
      audit::LockGuard lk(sessions_mu_);
      s->needs_orphan_check = true;
    }
  }
  bool arm = false;
  {
    audit::LockGuard lk(sessions_mu_);
    s->recovering = false;
    s->replay_claimed = false;
    if ((!s->pending_requests.empty() || s->needs_orphan_check ||
         s->needs_checkpoint) &&
        !s->worker_active) {
      s->worker_active = true;
      arm = true;
    }
  }
  if (arm) {
    auto sp = GetSession(s->id);
    if (sp) pool_->Submit([this, sp] { SessionWorker(sp); });
  }
  return st;
}

Status Msp::ReplayOnce(Session* s, uint64_t* replayed_out,
                       obs::RecoveryTimeline::SessionProvenance* prov) {
  // 1. Initialize from the most recent session checkpoint (§4.1).
  uint64_t cp_lsn = s->last_checkpoint_lsn.load();
  if (prov) {
    prov->records.clear();
    prov->log_records_consumed = 0;
    prov->session_checkpoint_lsn = cp_lsn;
  }
  if (cp_lsn != 0) {
    LogRecord cp;
    MSPLOG_RETURN_IF_ERROR(log_->ReadRecordAt(cp_lsn, &cp));
    if (cp.type != LogRecordType::kSessionCheckpoint) {
      return Status::Corruption("expected session checkpoint at " +
                                std::to_string(cp_lsn));
    }
    MSPLOG_RETURN_IF_ERROR(s->DecodeCheckpoint(cp.payload));
  } else {
    s->vars.clear();
    s->dv.Clear();
    s->state_number = 0;
    s->next_expected_seqno = 1;
    s->buffered_reply = BufferedReply();
    s->outgoing.clear();
  }

  // 2. Redo recovery: replay logged requests along the position stream.
  ReplayCursor cursor(log_.get(), s->positions.All());
  // Every exit path stamps how far along the stream this pass got.
  auto done = [&](Status st) {
    if (prov) prov->log_records_consumed = cursor.consumed();
    return st;
  };
  while (cursor.HasNext()) {
    LogRecord rec;
    MSPLOG_RETURN_IF_ERROR(done(cursor.Peek(&rec)));
    if (rec.type == LogRecordType::kSessionStart) {
      cursor.Skip();
      continue;
    }
    if (rec.type == LogRecordType::kSessionEnd) {
      audit::LockGuard lk(sessions_mu_);
      s->ended = true;
      return done(Status::OK());
    }
    if (rec.has_dv && DvIsOrphan(rec.dv)) {
      // The session became an orphan by receiving this request: skip it and
      // everything after; the sender will resend after its own recovery.
      OrphanCut(s, rec.lsn);
      return done(Status::OK());
    }
    if (rec.type != LogRecordType::kRequestReceive) {
      env_->stats().replay_misalignments.fetch_add(1);
      return done(Status::Internal(
          "position stream misaligned: expected RequestReceive, found " +
          std::string(LogRecordTypeName(rec.type)) + " at " +
          std::to_string(rec.lsn)));
    }
    cursor.Skip();
    s->state_number = rec.lsn;
    s->dv.Set(config_.id, StateId{epoch_.load(), rec.lsn});
    if (rec.has_dv) s->dv.Merge(rec.dv);
    s->next_expected_seqno = rec.seqno;
    if (prov) prov->records.push_back({epoch_.load(), rec.seqno, rec.lsn});

    ExecContext ctx(this, s, ExecContext::Mode::kReplay, rec.seqno, &cursor);
    Bytes result;
    Status st = InvokeMethod(rec.target, &ctx, rec.payload, &result);
    env_->stats().requests_replayed.fetch_add(1);
    if (replayed_out) ++*replayed_out;
    if (st.IsOrphan() || st.IsCrashed() || st.IsTimedOut()) return done(st);

    ReplyCode code = st.ok() ? ReplyCode::kOk : ReplyCode::kAppError;
    Bytes payload = st.ok() ? std::move(result) : Bytes(st.ToString());
    s->buffered_reply = {true, rec.seqno, code, payload};
    s->next_expected_seqno = rec.seqno + 1;

    if (ctx.switched_live()) {
      // The request was in flight when the log ended (or the cut happened):
      // its execution just completed for real, so the reply must go out.
      Status rst = SendReply(s, code, payload, rec.seqno);
      if (rst.IsOrphan()) return done(rst);
      MSPLOG_RETURN_IF_ERROR(done(rst));
      // Anything after the switch point is gone (cut) or did not exist.
      return done(Status::OK());
    }
  }
  return done(Status::OK());
}

void Msp::OrphanCut(Session* s, uint64_t orphan_lsn) {
  // §4.1 "Orphan Recovery End": write an EOS record pointing back to the
  // orphan log record and make the skipped range invisible to any future
  // recovery of this session. The EOS need not be flushed; if it is lost in
  // a crash, everything from the orphan record onward is skipped anyway.
  LogRecord eos;
  eos.type = LogRecordType::kEos;
  eos.session_id = s->id;
  eos.prev_lsn = orphan_lsn;
  log_->Append(eos);
  s->positions.RemoveRange(orphan_lsn, UINT64_MAX);
  ++s->orphan_cuts;
  env_->tracer().Record(obs::TraceEventType::kOrphanCut, env_->NowModelMs(),
                        config_.id, s->id, /*seqno=*/0,
                        "orphan_lsn=" + std::to_string(orphan_lsn));
  audit::LockGuard lk(timeline_mu_);
  ++last_recovery_timeline_.orphan_events;
}

}  // namespace msplog
