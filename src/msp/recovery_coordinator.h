// RecoveryCoordinator — the phased crash-recovery driver behind
// Msp::CrashRecovery (§4.3, restructured for instant restart following the
// on-demand REDO design of Sauer & Härder):
//
//   1. RunAnalysis()          — epoch bump persisted to the anchor, state
//                               re-initialization from the MSP checkpoint,
//                               and ONE bounded analysis scan that builds
//                               every session's replay work-list (position
//                               stream). No session is replayed here.
//   2. PrepareOpen()          — recovery broadcast to the service domain and
//                               a fresh MSP checkpoint; after this the
//                               server is ready to accept traffic even
//                               though no session has replayed yet.
//   3. BeginBackgroundDrain() — invoked by Msp::Start once the mailbox is
//                               live: replays the remaining sessions in
//                               background priority order (smallest replay
//                               work-list first). The drain deliberately
//                               yields the pool between sessions so an
//                               on-demand replay — triggered by a request
//                               arriving for a not-yet-replayed session
//                               (Msp::HandleRequestMsg admission gate) —
//                               waits behind at most one background replay.
//
// A coordinator instance drives exactly one recovery; Msp::Start creates a
// fresh one per boot. Pool tasks capture the coordinator raw: Crash/Shutdown
// join the pool before the next Start can replace the instance.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "audit/mutex.h"
#include "common/status.h"

namespace msplog {

class Msp;

class RecoveryCoordinator {
 public:
  explicit RecoveryCoordinator(Msp* msp) : msp_(msp) {}

  RecoveryCoordinator(const RecoveryCoordinator&) = delete;
  RecoveryCoordinator& operator=(const RecoveryCoordinator&) = delete;

  /// Phase 1 — the bounded analysis pass. On return every surviving session
  /// exists (marked recovering) with its replay positions reconstructed,
  /// shared variables are rolled forward, and the outage report is joined
  /// with the flight recorder's frozen pre-crash bundle.
  Status RunAnalysis();

  /// Phase 2 — recovery broadcast + fresh MSP checkpoint (Fig. 12). After
  /// this returns, accepting traffic is safe: replay happens per session,
  /// on demand or in the background.
  Status PrepareOpen();

  /// Phase 3 — stamp the open-for-traffic moment and start draining the
  /// not-yet-replayed sessions in the background, smallest work-list first.
  void BeginBackgroundDrain();

 private:
  /// One background drain step: claim and replay the next pending session
  /// from the priority queue, then resubmit itself while work remains.
  void DrainStep();

  Msp* msp_;
  double started_ms_ = 0;      ///< model time RunAnalysis began
  uint32_t old_epoch_ = 0;     ///< epoch of the failure-free period that ended
  uint64_t msp_cp_lsn_ = 0;    ///< anchor's MSP checkpoint at boot
  uint64_t sessions_to_recover_ = 0;

  audit::Mutex queue_mu_{"recovery_coordinator.queue"};
  /// Session ids still awaiting a background replay, priority order.
  std::deque<std::string> drain_queue_ GUARDED_BY(queue_mu_);
};

}  // namespace msplog
