// Phased crash recovery (§4.3, instant-restart variant). The analysis and
// open phases here were carved out of the former monolithic
// Msp::CrashRecovery; the background drain replaces the eager
// replay-everything-before-traffic loop in Msp::Start.
#include "msp/recovery_coordinator.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "audit/mutex.h"
#include "log/log_scanner.h"
#include "msp/msp.h"
#include "msp/msp_checkpoint_format.h"

namespace msplog {

namespace {
std::string PosFileName(const std::string& msp, const std::string& session) {
  return "pos/" + msp + "/" + session;
}
}  // namespace

Status RecoveryCoordinator::RunAnalysis() {
  Msp* m = msp_;
  started_ms_ = m->env_->NowModelMs();
  const double t0 = started_ms_;
  m->env_->tracer().Record(obs::TraceEventType::kRecoveryStart, t0,
                           m->config_.id);
  const std::string log_file = m->config_.id + ".log";

  // Epoch handling: bump and persist the epoch BEFORE anything else, so a
  // crash during recovery can never reuse a failure-free period identifier.
  AnchorData ad;
  Status ast = m->anchor_.Read(&ad);
  if (ast.ok()) {
    msp_cp_lsn_ = ad.msp_checkpoint_lsn;
    old_epoch_ = ad.epoch;
  } else if (!ast.IsNotFound()) {
    return ast;
  }
  m->epoch_.store(old_epoch_ + 1);
  MSPLOG_RETURN_IF_ERROR(m->anchor_.Write({msp_cp_lsn_, m->epoch_.load()}));

  {
    audit::LockGuard lk(m->timeline_mu_);
    // The previous recovery's timeline moves into the bounded history
    // before this one takes the "last" slot.
    if (m->last_recovery_timeline_.epoch != 0) {
      m->recovery_history_.push_back(std::move(m->last_recovery_timeline_));
      while (m->recovery_history_.size() > Msp::kRecoveryHistoryLimit) {
        m->recovery_history_.pop_front();
      }
    }
    m->last_recovery_timeline_ = obs::RecoveryTimeline();
    m->last_recovery_timeline_.epoch = m->epoch_.load();
    m->last_recovery_timeline_.started_model_ms = t0;
    m->last_recovery_timeline_.msp_checkpoint_lsn = msp_cp_lsn_;
  }

  // Re-initialize from the most recent MSP checkpoint (Fig. 12).
  uint64_t min_lsn = 0;
  if (msp_cp_lsn_ != 0) {
    LogRecord cp;
    MSPLOG_RETURN_IF_ERROR(m->log_->ReadRecordAt(msp_cp_lsn_, &cp));
    if (cp.type != LogRecordType::kMspCheckpoint) {
      return Status::Corruption("anchor does not point at an MSP checkpoint");
    }
    MspCheckpointData data;
    MSPLOG_RETURN_IF_ERROR(data.Decode(cp.payload));
    {
      audit::LockGuard lk(m->table_mu_);
      m->recovered_table_.Merge(data.table);
    }
    audit::LockGuard lk(m->sessions_mu_);
    for (const auto& e : data.sessions) {
      auto s = std::make_shared<Session>(e.id, e.client, m->disk_,
                                         PosFileName(m->config_.id, e.id));
      s->last_checkpoint_lsn.store(e.last_checkpoint_lsn);
      s->first_lsn.store(e.first_lsn);
      s->recovering = true;
      m->sessions_[e.id] = s;
    }
    for (const auto& e : data.vars) {
      auto v = m->GetOrCreateSharedVar(e.name);
      v->last_checkpoint_lsn = e.last_checkpoint_lsn;
    }
    min_lsn = data.MinRecoveryLsn(msp_cp_lsn_);
  }

  // Single-threaded analysis scan (§4.3): reconstruct position streams,
  // roll shared variables forward, rebuild recovered-state knowledge. The
  // scan is bounded by the checkpoint's minimum recovery position and the
  // durable extent — nothing is replayed here; sessions become servable
  // one by one afterwards (on demand or via the background drain).
  const uint64_t durable = m->disk_->FileSize(log_file);
  std::map<std::string, std::vector<uint64_t>> positions;
  {
    audit::LockGuard lk(m->sessions_mu_);
    for (auto& [id, s] : m->sessions_) positions[id];  // seed known sessions
  }

  auto ensure_session =
      [&](const std::string& id,
          const std::string& client) -> std::shared_ptr<Session> {
    audit::LockGuard lk(m->sessions_mu_);
    auto it = m->sessions_.find(id);
    if (it != m->sessions_.end()) {
      if (it->second->client.empty() && !client.empty()) {
        it->second->client = client;
      }
      return it->second;
    }
    auto s = std::make_shared<Session>(id, client, m->disk_,
                                       PosFileName(m->config_.id, id));
    s->recovering = true;
    m->sessions_[id] = s;
    return s;
  };

  uint64_t scanned_records = 0;
  LogScanner scanner(m->disk_, log_file, min_lsn, durable);
  while (true) {
    LogRecord rec;
    Status st = scanner.Next(&rec);
    if (st.IsNotFound()) break;
    if (st.IsCorruption()) break;  // torn tail: the durable log ends here
    MSPLOG_RETURN_IF_ERROR(st);
    ++scanned_records;

    switch (rec.type) {
      case LogRecordType::kSessionStart: {
        auto s = ensure_session(rec.session_id, rec.target);
        s->first_lsn.store(rec.lsn);
        break;
      }
      case LogRecordType::kRequestReceive:
      case LogRecordType::kSharedRead:
      case LogRecordType::kReplyReceive: {
        auto s = ensure_session(rec.session_id, "");
        if (rec.lsn > s->last_checkpoint_lsn.load()) {
          positions[rec.session_id].push_back(rec.lsn);
        }
        break;
      }
      case LogRecordType::kSharedWrite: {
        // Roll forward (§4.3): each write record carries the full value.
        auto v = m->GetOrCreateSharedVar(rec.var_id);
        audit::SharedUniqueLock vlk(v->rw);
        v->value = rec.payload;
        v->dv = rec.dv;
        v->state_number = rec.lsn;
        v->last_write_lsn = rec.lsn;
        break;
      }
      case LogRecordType::kSharedVarCheckpoint: {
        auto v = m->GetOrCreateSharedVar(rec.var_id);
        audit::SharedUniqueLock vlk(v->rw);
        v->value = rec.payload;
        v->dv.Clear();
        v->state_number = rec.lsn;
        v->last_write_lsn = rec.lsn;
        v->last_checkpoint_lsn = rec.lsn;
        break;
      }
      case LogRecordType::kSessionCheckpoint: {
        auto s = ensure_session(rec.session_id, "");
        s->last_checkpoint_lsn.store(rec.lsn);
        positions[rec.session_id].clear();
        break;
      }
      case LogRecordType::kSessionEnd: {
        audit::LockGuard lk(m->sessions_mu_);
        auto sit = m->sessions_.find(rec.session_id);
        if (sit != m->sessions_.end()) {
          m->queued_requests_.fetch_sub(sit->second->pending_requests.size(),
                                        std::memory_order_relaxed);
          m->sessions_.erase(sit);
        }
        positions.erase(rec.session_id);
        break;
      }
      case LogRecordType::kRecoveredState: {
        audit::LockGuard lk(m->table_mu_);
        m->recovered_table_.Record(rec.peer, rec.peer_epoch,
                                   rec.peer_recovered_sn);
        break;
      }
      case LogRecordType::kEos: {
        // §4.3: records from the orphan record through the EOS are skipped
        // by any subsequent recovery of this session.
        auto it = positions.find(rec.session_id);
        if (it != positions.end()) {
          auto& ps = it->second;
          ps.erase(std::remove_if(ps.begin(), ps.end(),
                                  [&](uint64_t p) {
                                    return p >= rec.prev_lsn && p <= rec.lsn;
                                  }),
                   ps.end());
        }
        break;
      }
      case LogRecordType::kMspCheckpoint:
        break;  // the newest one already initialized us
      default:
        break;
    }
  }

  // The recovered state number for the epoch that just ended: the largest
  // LSN that can still belong to a durable record. `durable` is the
  // EXCLUSIVE end of the durable extent — a record whose frame starts at
  // exactly `durable` was lost, so the boundary itself counts as not
  // recovered.
  const uint64_t recovered_sn = durable > 0 ? durable - 1 : 0;
  {
    audit::LockGuard lk(m->table_mu_);
    m->recovered_table_.Record(m->config_.id, old_epoch_, recovered_sn);
  }

  // Hand the reconstructed position streams to the sessions.
  std::vector<std::string> surviving_ids;
  {
    audit::LockGuard lk(m->sessions_mu_);
    for (auto& [id, s] : m->sessions_) {
      auto it = positions.find(id);
      if (it != positions.end()) {
        s->positions.ReplaceAll(std::move(it->second));
      }
      s->recovering = true;
      surviving_ids.push_back(id);
    }
    sessions_to_recover_ = m->sessions_.size();
  }

  // Outage observatory join (flight recorder × analysis scan): the frozen
  // pre-crash bundle names the sessions that were in flight at the crash;
  // the scan just established which of them left any durable trace. A
  // bundle session absent from the rebuilt table was never logged — its
  // client sees a fresh session, servable once the server reopens. The
  // rest start "pending" and are resolved by their replay.
  {
    obs::FlightBundle bundle =
        m->env_->flight_recorder().LatestBundleFor(m->config_.id);
    audit::LockGuard lk(m->timeline_mu_);
    if (bundle.frozen && bundle.generation == m->crash_generation_.load() &&
        bundle.generation > m->outage_joined_generation_) {
      m->outage_joined_generation_ = bundle.generation;
      m->last_outage_report_ = obs::OutageReport();
      m->last_outage_report_.valid = true;
      m->last_outage_report_.generation = bundle.generation;
      m->last_outage_report_.epoch = m->epoch_.load();
      m->last_outage_report_.crash_model_ms = bundle.frozen_at_ms;
      m->last_outage_report_.recovery_start_ms = t0;
      for (const auto& [who, snap] : bundle.snapshots) {
        if (who != m->config_.id) continue;
        for (const std::string& id : snap.inflight_sessions) {
          obs::OutageReport::SessionFate f;
          f.session_id = id;
          f.was_in_flight = true;
          if (std::find(surviving_ids.begin(), surviving_ids.end(), id) ==
              surviving_ids.end()) {
            f.fate = "never-logged";
          }
          m->last_outage_report_.sessions.push_back(std::move(f));
        }
      }
    }
  }

  // Analysis phase (§4.3) ends here: the single-threaded scan is done and
  // every session knows its replay positions. What follows — broadcast and
  // the fresh MSP checkpoint — is attributed separately in the timeline.
  const double scan_end_ms = m->env_->NowModelMs();
  m->env_->tracer().Record(obs::TraceEventType::kAnalysisScanEnd, scan_end_ms,
                           m->config_.id, /*session=*/"", /*seqno=*/0,
                           "records=" + std::to_string(scanned_records));
  {
    audit::LockGuard lk(m->timeline_mu_);
    m->last_recovery_timeline_.analysis_scan_ms = scan_end_ms - t0;
    m->last_recovery_timeline_.analysis_records_scanned = scanned_records;
    m->last_recovery_timeline_.analysis_bytes_scanned =
        durable > min_lsn ? durable - min_lsn : 0;
    m->last_recovery_timeline_.sessions_to_recover = sessions_to_recover_;
    m->last_recovery_timeline_.scan_start_lsn = min_lsn;
    m->last_recovery_timeline_.scan_end_lsn = durable;
  }
  return Status::OK();
}

Status RecoveryCoordinator::PrepareOpen() {
  Msp* m = msp_;
  // Broadcast the recovery message within the service domain (§4.3). The
  // full own history is included so peers recovering concurrently (or that
  // lost an unflushed kRecoveredState record) still converge.
  std::vector<std::pair<uint32_t, uint64_t>> own_history;
  {
    audit::LockGuard lk(m->table_mu_);
    for (const auto& [key, sn] : m->recovered_table_.entries()) {
      if (key.first == m->config_.id) own_history.push_back({key.second, sn});
    }
  }
  for (const auto& peer : m->directory_->PeersOf(m->config_.id)) {
    for (const auto& [e, sn] : own_history) {
      Message msg;
      msg.type = MessageType::kRecoveryAnnounce;
      msg.sender = m->config_.id;
      msg.rec_epoch = e;
      msg.rec_sn = sn;
      m->network_->Send(m->config_.id, peer, msg.Encode());
    }
  }

  // Fresh MSP checkpoint so the next crash starts from here (Fig. 12).
  // Unit forcing is skipped: peers cannot be flushed to before our
  // dispatcher runs.
  const double cp_t0 = m->env_->NowModelMs();
  MSPLOG_RETURN_IF_ERROR(m->TakeMspCheckpoint(/*force_units=*/false));

  const double end_ms = m->env_->NowModelMs();
  {
    audit::LockGuard lk(m->timeline_mu_);
    m->last_recovery_timeline_.post_scan_checkpoint_ms = end_ms - cp_t0;
  }
  m->env_->flight_recorder().Record(
      obs::FlightEventType::kRecovery, m->config_.id, /*session=*/"",
      /*seqno=*/0,
      "epoch=" + std::to_string(m->epoch_.load()) +
          " sessions=" + std::to_string(sessions_to_recover_) +
          " scan_ms=" + std::to_string(end_ms - started_ms_));
  m->env_->tracer().Record(obs::TraceEventType::kRecoveryEnd, end_ms,
                           m->config_.id, /*session=*/"", /*seqno=*/0,
                           "sessions=" + std::to_string(sessions_to_recover_));
  return Status::OK();
}

void RecoveryCoordinator::BeginBackgroundDrain() {
  Msp* m = msp_;
  const double now = m->env_->NowModelMs();
  {
    audit::LockGuard lk(m->timeline_mu_);
    m->last_recovery_timeline_.open_for_traffic_ms =
        now - m->last_recovery_timeline_.started_model_ms;
    // Never-logged sessions have no replay to resolve them: they become
    // servable (as brand-new sessions) the moment the server reopens.
    if (m->last_outage_report_.valid) {
      for (auto& f : m->last_outage_report_.sessions) {
        if (f.fate == "never-logged" && f.servable_at_ms == 0) {
          f.servable_at_ms = now;
          f.time_to_servable_ms = now - m->last_outage_report_.crash_model_ms;
        }
      }
      m->last_outage_report_.Finalize();
    }
  }

  // Priority order: smallest replay work-list first (shortest-job-first —
  // maximizes the rate at which sessions become servable), ties by id for
  // determinism. On-demand admissions override this order naturally.
  struct Entry {
    size_t work;
    std::string id;
  };
  std::vector<Entry> entries;
  {
    audit::LockGuard lk(m->sessions_mu_);
    for (auto& [id, s] : m->sessions_) {
      if (s->recovering && !s->replay_claimed) {
        entries.push_back({s->positions.size(), id});
      }
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.work != b.work ? a.work < b.work : a.id < b.id;
  });
  size_t pumps;
  {
    audit::LockGuard lk(queue_mu_);
    for (auto& e : entries) drain_queue_.push_back(std::move(e.id));
    // sequential_recovery is the ablation that replays one session at a
    // time; otherwise drain with the pool's full parallelism (§4.3).
    pumps = m->config_.sequential_recovery
                ? (drain_queue_.empty() ? 0 : 1)
                : std::min(drain_queue_.size(), m->pool_->num_threads());
  }
  for (size_t i = 0; i < pumps; ++i) {
    m->pool_->Submit([this] { DrainStep(); });
  }
}

void RecoveryCoordinator::DrainStep() {
  Msp* m = msp_;
  std::shared_ptr<Session> target;
  while (!target) {
    std::string id;
    {
      audit::LockGuard lk(queue_mu_);
      if (drain_queue_.empty()) return;
      id = std::move(drain_queue_.front());
      drain_queue_.pop_front();
    }
    audit::LockGuard lk(m->sessions_mu_);
    auto it = m->sessions_.find(id);
    // Sessions already claimed (on-demand admission or lazy orphan
    // recovery) or already done are simply skipped.
    if (it != m->sessions_.end() && it->second->recovering &&
        !it->second->replay_claimed) {
      target = it->second;
    }
  }
  m->SessionRecoveryTask(target);
  bool more;
  {
    audit::LockGuard lk(queue_mu_);
    more = !drain_queue_.empty();
  }
  // Resubmit instead of looping: yielding the pool thread between sessions
  // bounds how long an on-demand replay queued behind the drain waits.
  if (more) m->pool_->Submit([this] { DrainStep(); });
}

}  // namespace msplog
