#include "audit/mutex.h"
#include "msp/service_domain.h"

namespace msplog {

void DomainDirectory::Assign(const std::string& msp,
                             const std::string& domain) {
  audit::LockGuard lk(mu_);
  domain_of_[msp] = domain;
}

std::optional<std::string> DomainDirectory::DomainOf(
    const std::string& id) const {
  audit::LockGuard lk(mu_);
  auto it = domain_of_.find(id);
  if (it == domain_of_.end()) return std::nullopt;
  return it->second;
}

bool DomainDirectory::SameDomain(const std::string& a,
                                 const std::string& b) const {
  audit::LockGuard lk(mu_);
  auto ia = domain_of_.find(a);
  auto ib = domain_of_.find(b);
  if (ia == domain_of_.end() || ib == domain_of_.end()) return false;
  return ia->second == ib->second;
}

std::vector<std::string> DomainDirectory::PeersOf(const std::string& id) const {
  audit::LockGuard lk(mu_);
  std::vector<std::string> out;
  auto it = domain_of_.find(id);
  if (it == domain_of_.end()) return out;
  for (const auto& [msp, dom] : domain_of_) {
    if (msp != id && dom == it->second) out.push_back(msp);
  }
  return out;
}

}  // namespace msplog
