#include "audit/mutex.h"
#include "msp/msp.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <thread>

#include "audit/invariants.h"
#include "msp/exec_context.h"
#include "msp/recovery_coordinator.h"

namespace msplog {

namespace {
std::string PosFileName(const std::string& msp, const std::string& session) {
  return "pos/" + msp + "/" + session;
}
}  // namespace

Msp::Msp(SimEnvironment* env, SimNetwork* network, SimDisk* disk,
         DomainDirectory* directory, MspConfig config)
    : env_(env),
      network_(network),
      disk_(disk),
      directory_(directory),
      config_(std::move(config)),
      anchor_(disk, config_.id + ".anchor") {
  obs::MetricsRegistry& m = env_->metrics();
  hist_queue_wait_ms_ = m.GetHistogram("msp.queue_wait_ms");
  hist_execute_ms_ = m.GetHistogram("msp.execute_ms");
  hist_flush_wait_ms_ = m.GetHistogram("msp.flush_wait_ms");
  hist_request_ms_ = m.GetHistogram("msp.request_ms");
  hist_replay_ms_ = m.GetHistogram("msp.replay_ms");
  ctr_requests_ = m.GetCounter("msp.requests");
  gauge_crash_generation_ = m.GetGauge(config_.id + ".crash_generation");

  // Black-box registration: at any freeze (our crash, or any invariant
  // violation) the environment's flight recorder captures this server's
  // statusz, in-flight session set, and log tail extent.
  env_->flight_recorder().SetSnapshotProvider(
      config_.id, [this] { return BuildFlightSnapshot(); });

  FlushAggregator::Options fopt;
  fopt.self = config_.id;
  fopt.coalesce = config_.coalesce_distributed_flushes;
  fopt.max_rounds = config_.max_call_sends;
  flush_agg_ = std::make_unique<FlushAggregator>(
      env_, fopt, [this](const MspId& peer, const Bytes& wire) {
        network_->Send(config_.id, peer, wire);
      });
}

Msp::~Msp() {
  if (state_.load() == State::kRunning) Shutdown();
  env_->flight_recorder().ClearSnapshotProvider(config_.id);
}

void Msp::RegisterMethod(const std::string& name, ServiceMethod fn) {
  methods_[name] = std::move(fn);
}

void Msp::RegisterSharedVariable(const std::string& name, Bytes initial) {
  audit::LockGuard lk(vars_mu_);
  shared_vars_[name] = std::make_shared<SharedVariable>(name, std::move(initial));
}

void Msp::ChargeCpu(double model_ms) {
  if (model_ms <= 0) return;
  if (config_.single_core_cpu) {
    audit::LockGuard lk(cpu_mu_);
    env_->SleepModelMs(model_ms);
  } else {
    env_->SleepModelMs(model_ms);
  }
}

bool Msp::IntraDomain(const std::string& other) const {
  return directory_->SameDomain(config_.id, other);
}

int64_t Msp::RealWaitMs(double model_ms) const {
  if (env_->time_scale() <= 0.0) return SimEnvironment::kFastWaitFloorMs;
  return std::max<int64_t>(
      1, static_cast<int64_t>(model_ms * env_->time_scale()));
}

std::shared_ptr<Session> Msp::GetSession(const std::string& id) const {
  audit::LockGuard lk(sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

Status Msp::Start() {
  audit::LockGuard lifecycle(lifecycle_mu_);
  State st = state_.load();
  if (st == State::kRunning || st == State::kRecovering) {
    return Status::InvalidArgument("MSP already running");
  }

  LogFileOptions lopt;
  lopt.batch_flush = config_.batch_flush;
  lopt.batch_timeout_ms = config_.batch_timeout_ms;
  if (config_.cpu_per_flush_ms > 0) {
    lopt.on_physical_write = [this] { ChargeCpu(config_.cpu_per_flush_ms); };
  }
  log_ = std::make_unique<LogFile>(env_, disk_, config_.id + ".log", lopt);
  inbound_flush_ = std::make_unique<InboundFlushCoalescer>(
      env_,
      // audit:allow(blocking-under-lock): lambda runs on control-pool
      // threads when requests drain, not under the lifecycle lock here.
      [this](uint64_t flush_sn) { return log_->FlushUpTo(flush_sn); },
      [this](const InboundFlushCoalescer::Request& r) {
        SendFlushReply(r.sender, r.flush_id, /*ok=*/true, 0, 0);
      });
  pool_ = std::make_unique<ThreadPool>(config_.thread_pool_size);
  control_pool_ = std::make_unique<ThreadPool>(2);
  {
    audit::LockGuard lk(probe_mu_);
    probe_pool_ = pool_.get();
  }
  {
    audit::LockGuard lk(sessions_mu_);
    sessions_.clear();
    queued_requests_.store(0, std::memory_order_relaxed);
  }
  {
    audit::LockGuard lk(table_mu_);
    recovered_table_.Clear();
  }
  flush_agg_->Reset();
  {
    audit::LockGuard lk(cp_mu_);
    cp_stop_ = false;
  }
  last_msp_cp_log_end_.store(0);

  if (config_.mode == RecoveryMode::kPsession) {
    psession_db_ = std::make_unique<KvDb>(env_, disk_, config_.id + ".db");
    MSPLOG_RETURN_IF_ERROR(psession_db_->Recover());
  }

  if (config_.mode == RecoveryMode::kLogBased) {
    // Crash recovery runs on EVERY start — a restarted process cannot tell
    // whether its previous incarnation crashed before flushing anything, and
    // reusing an epoch after such a crash would let lost state numbers be
    // reissued. A genuinely fresh boot just bumps to epoch 1 with an empty
    // scan, which is harmless. Only the bounded analysis pass and the open
    // preparation run here (phased coordinator); no session is replayed yet.
    state_.store(State::kRecovering);
    MSPLOG_RETURN_IF_ERROR(CrashRecovery());
  }

  mailbox_ = network_->Register(config_.id);
  state_.store(State::kRunning);
  dispatch_thread_ = std::thread([this] { DispatchLoop(); });
  if (config_.checkpoint_daemon && config_.mode == RecoveryMode::kLogBased) {
    checkpoint_thread_ = std::thread([this] { CheckpointDaemonLoop(); });
  }

  // Instant restart (§4.3 + on-demand REDO): the server is open as of the
  // state transition above. Surviving sessions replay in background
  // priority order; a request for a not-yet-replayed session jumps the
  // queue through the HandleRequestMsg admission gate. sequential_recovery
  // (the ablation) drains one session at a time inside the coordinator.
  if (config_.mode == RecoveryMode::kLogBased) {
    recovery_coordinator_->BeginBackgroundDrain();
  }

  const double now = env_->NowModelMs();
  last_start_end_ms_.store(now, std::memory_order_relaxed);
  // Mark the restart on the scraper's shared time axis; together with the
  // crash mark this brackets the gap every per-MSP series shows.
  env_->scraper().AnnotateEpoch(
      now, config_.id + " up epoch=" + std::to_string(epoch_.load()) +
               " gen=" + std::to_string(crash_generation_.load()));
  return Status::OK();
}

void Msp::Crash() {
  audit::LockGuard lifecycle(lifecycle_mu_);
  CrashLocked(/*is_crash=*/true);
}

void Msp::CrashLocked(bool is_crash) {
  State prev = state_.exchange(State::kCrashed);
  if (prev == State::kCrashed || prev == State::kStopped) return;

  if (is_crash) {
    // Black box first, while the log extents and session table still
    // describe the moment of death. The bundle is generation-stamped so the
    // recovery-side join can tell this fault from earlier ones.
    const uint64_t gen = crash_generation_.fetch_add(1) + 1;
    gauge_crash_generation_->Set(static_cast<int64_t>(gen));
    env_->flight_recorder().Record(
        obs::FlightEventType::kCrash, config_.id, "", 0,
        "epoch=" + std::to_string(epoch_.load()) +
            " gen=" + std::to_string(gen));
    env_->flight_recorder().FreezeOnCrash(config_.id, gen);
    env_->scraper().AnnotateEpoch(
        env_->NowModelMs(),
        config_.id + " crash gen=" + std::to_string(gen));
  }

  network_->Unregister(config_.id);
  if (log_) log_->Crash();
  {
    audit::LockGuard lk(calls_mu_);
    for (auto& [key, pc] : pending_calls_) {
      audit::LockGuard plk(pc->mu);
      pc->failed = true;
      pc->cv.notify_all();
    }
  }
  // Fail every in-flight and queued distributed-flush leg: waiters wake,
  // see crashed, and no aggregator state leaks into the next incarnation.
  flush_agg_->FailAll();
  {
    audit::LockGuard lk(cp_mu_);
    cp_stop_ = true;
  }
  cp_cv_.notify_all();

  if (pool_) pool_->Abort();
  if (control_pool_) control_pool_->Abort();
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  if (checkpoint_thread_.joinable()) checkpoint_thread_.join();

  // Everything volatile dies with the process. The SimDisk content — the
  // durable log prefix, position-stream files, the anchor, kvdb WAL —
  // survives for the next Start().
  log_.reset();
  {
    audit::LockGuard lk(sessions_mu_);
    sessions_.clear();
    queued_requests_.store(0, std::memory_order_relaxed);
  }
  {
    audit::LockGuard lk(vars_mu_);
    for (auto& [name, v] : shared_vars_) {
      audit::SharedUniqueLock vlk(v->rw);
      v->value = v->initial_value;
      v->dv.Clear();
      v->state_number = 0;
      v->last_write_lsn = 0;
      v->last_checkpoint_lsn = 0;
      v->writes_since_cp = 0;
      v->msp_cps_since_cp = 0;
    }
  }
  {
    audit::LockGuard lk(calls_mu_);
    pending_calls_.clear();
  }
  inbound_flush_.reset();
  psession_db_.reset();
  {
    // Detach the scraper probe before the pool dies: the probe thread only
    // dereferences probe_pool_ under probe_mu_, so after this block no
    // probe can reach the object pool_.reset() is about to destroy.
    audit::LockGuard lk(probe_mu_);
    probe_pool_ = nullptr;
  }
  pool_.reset();
  control_pool_.reset();
}

void Msp::Shutdown() {
  audit::LockGuard lifecycle(lifecycle_mu_);
  if (state_.load() != State::kRunning) return;
  // Make everything durable, then tear down like a crash: a subsequent
  // Start() recovers the complete state from the log.
  // audit:allow(blocking-under-lock): lifecycle transitions serialize here.
  if (log_) log_->FlushAll();
  CrashLocked(/*is_crash=*/false);
  state_.store(State::kStopped);
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void Msp::DispatchLoop() {
  Packet p;
  while (mailbox_->Pop(&p)) {
    Message m;
    if (!Message::Decode(p.wire, &m).ok()) continue;  // garbage: drop
    switch (m.type) {
      case MessageType::kRequest:
        HandleRequestMsg(std::move(m));
        break;
      case MessageType::kReply:
        HandleReplyMsg(std::move(m));
        break;
      case MessageType::kFlushRequest:
        // Move-only task type: the message moves into the closure, no copy.
        control_pool_->Submit(
            [this, fm = std::move(m)] { HandleFlushRequest(fm); });
        break;
      case MessageType::kFlushReply:
        HandleFlushReply(std::move(m));
        break;
      case MessageType::kRecoveryAnnounce:
        HandleRecoveryAnnounce(std::move(m));
        break;
      default:
        break;
    }
  }
}

void Msp::SendBusyReply(const Message& req) {
  Message r;
  r.type = MessageType::kReply;
  r.sender = config_.id;
  r.session_id = req.session_id;
  r.seqno = req.seqno;
  r.reply_code = ReplyCode::kBusy;
  network_->Send(config_.id, req.sender, r.Encode());
}

void Msp::HandleRequestMsg(Message m) {
  if (state_.load() != State::kRunning) {
    SendBusyReply(m);
    return;
  }
  std::shared_ptr<Session> s;
  bool arm = false;
  bool on_demand = false;
  bool ended = false;
  {
    audit::LockGuard lk(sessions_mu_);
    auto it = sessions_.find(m.session_id);
    if (it == sessions_.end()) {
      s = std::make_shared<Session>(m.session_id, m.sender, disk_,
                                    PosFileName(config_.id, m.session_id));
      sessions_[m.session_id] = s;
    } else {
      s = it->second;
    }
    if (s->ended) {
      ended = true;  // reply outside the table lock
    } else {
      double now_ms = env_->NowModelMs();
      // Allocate this request's server-side span, parented on the span the
      // sender stamped on the wire (client root or caller's request span).
      obs::SpanContext span;
      if (m.trace_id != 0) {
        span.trace_id = m.trace_id;
        span.span_id = obs::NextSpanId();
        span.parent_span_id = m.parent_span_id;
      }
      env_->tracer().Record(obs::TraceEventType::kEnqueue, now_ms, config_.id,
                            m.session_id, m.seqno, m.method, span);
      s->pending_requests.push_back({std::move(m), now_ms, span});
      queued_requests_.fetch_add(1, std::memory_order_relaxed);
      if (s->recovering) {
        // Admission gate (instant restart): the request is queued and a
        // replay of JUST this session is triggered on demand — it jumps the
        // background drain's priority order. The replay epilogue arms the
        // worker, so the queued request serializes after the session's
        // replayed history. If a replay already owns the session
        // (replay_claimed), queueing behind it is all that is needed.
        on_demand = !s->replay_claimed;
      } else if (!s->worker_active) {
        s->worker_active = true;
        arm = true;
      }
    }
  }
  if (ended) {
    // A request to an ended session gets a definitive error rather than
    // silence — the client should not retry forever.
    Message r;
    r.type = MessageType::kReply;
    r.sender = config_.id;
    r.session_id = m.session_id;
    r.seqno = m.seqno;
    r.reply_code = ReplyCode::kAppError;
    r.payload = "session ended";
    network_->Send(config_.id, m.sender, r.Encode());
    return;
  }
  if (on_demand) {
    pool_->Submit([this, s] { SessionRecoveryTask(s, /*on_demand=*/true); });
    return;
  }
  if (arm) {
    pool_->Submit([this, s] { SessionWorker(s); });
  }
}

void Msp::SessionWorker(std::shared_ptr<Session> s) {
  while (true) {
    Message m;
    double enqueue_ms = 0;
    obs::SpanContext span;
    bool have_msg = false;
    bool check_orphan = false;
    bool take_cp = false;
    {
      audit::LockGuard lk(sessions_mu_);
      if (state_.load() != State::kRunning) {
        s->worker_active = false;
        return;
      }
      if (s->needs_orphan_check) {
        s->needs_orphan_check = false;
        check_orphan = true;
      } else if (s->needs_checkpoint) {
        s->needs_checkpoint = false;
        take_cp = true;
      } else if (!s->pending_requests.empty()) {
        m = std::move(s->pending_requests.front().msg);
        enqueue_ms = s->pending_requests.front().enqueue_model_ms;
        span = s->pending_requests.front().span;
        s->pending_requests.pop_front();
        queued_requests_.fetch_sub(1, std::memory_order_relaxed);
        have_msg = true;
      } else {
        s->worker_active = false;
        return;
      }
    }
    if (check_orphan) {
      if (SessionIsOrphan(s.get())) {
        (void)RecoverSessionReplay(s.get());
      }
      continue;
    }
    if (take_cp) {
      if (config_.mode == RecoveryMode::kLogBased && !s->ended &&
          s->first_lsn.load() != 0) {
        Status st = TakeSessionCheckpoint(s.get());
        if (st.IsOrphan()) (void)RecoverSessionReplay(s.get());
      }
      continue;
    }
    if (have_msg) {
      double t_start = env_->NowModelMs();
      hist_queue_wait_ms_->Record(t_start - enqueue_ms);
      env_->tracer().Record(obs::TraceEventType::kDequeue, t_start, config_.id,
                            s->id, m.seqno, m.method, span);
      env_->flight_recorder().Record(obs::FlightEventType::kRequest,
                                     config_.id, s->id, m.seqno, m.method);
      ProcessRequest(s, m, span);
      hist_request_ms_->Record(env_->NowModelMs() - t_start);
      ctr_requests_->Add(1);
    }
  }
}

void Msp::ProcessRequest(const std::shared_ptr<Session>& s, const Message& m,
                         const obs::SpanContext& span) {
  Status st = config_.mode == RecoveryMode::kLogBased
                  ? ProcessRequestLogBased(s.get(), m, span)
                  : ProcessRequestBaseline(s.get(), m, span);
  (void)st;  // kCrashed/kTimedOut: client resends; nothing more to do here
}

// ---------------------------------------------------------------------------
// Request processing — log-based mode (§3)
// ---------------------------------------------------------------------------

Status Msp::ProcessRequestLogBased(Session* s, const Message& m,
                                   const obs::SpanContext& span) {
  // Interception point (§4.1): lazy orphan check on request receive.
  if (SessionIsOrphan(s)) {
    MSPLOG_RETURN_IF_ERROR(RecoverSessionReplay(s));
  }

  // Auditor: since the last request boundary the session's DV may only have
  // grown (any recovery in between re-synced the shadow).
  audit::CheckDvMonotonic("session " + s->id, s->audit_shadow_dv, s->dv);

  // Duplicate / out-of-order detection (§3.1).
  if (m.seqno < s->next_expected_seqno) {
    if (s->buffered_reply.valid && s->buffered_reply.seqno == m.seqno) {
      Status st = SendReply(s, s->buffered_reply.code,
                            s->buffered_reply.payload, m.seqno, span);
      if (st.IsOrphan()) return RecoverSessionReplay(s);
      return st;
    }
    return Status::OK();  // stale duplicate
  }
  if (m.seqno > s->next_expected_seqno) return Status::OK();  // out of order

  // Fig. 7, receive side: an orphan message is discarded outright; the
  // sender session will be rolled back and will resend. We extend the
  // paper's silent discard with an ORPHAN NOTICE carrying the recovered
  // state number that condemned the message — without it, a sender that
  // missed the recovery broadcast retries forever.
  if (m.has_dv) {
    std::optional<RecoveredStateTable::OrphanWitness> witness;
    {
      audit::LockGuard lk(table_mu_);
      witness = recovered_table_.FindOrphanEntry(m.dv);
    }
    if (witness) {
      env_->stats().orphans_detected.fetch_add(1);
      env_->tracer().Record(obs::TraceEventType::kOrphanDetected,
                            env_->NowModelMs(), config_.id, s->id, m.seqno,
                            "witness=" + witness->msp);
      Message r;
      r.type = MessageType::kReply;
      r.sender = config_.id;
      r.session_id = s->id;
      r.seqno = m.seqno;
      r.reply_code = ReplyCode::kOrphanNotice;
      r.payload = witness->msp;  // which peer's recovery condemned it
      r.rec_epoch = witness->epoch;
      r.rec_sn = witness->recovered_sn;
      network_->Send(config_.id, m.sender, r.Encode());
      return Status::OK();
    }
  }

  if (m.method == "__end_session") {
    // Cascade: end the outgoing sessions this session started (§2.1 — a
    // session is started AND ended by a client request). Best effort; an
    // unreachable target's session is cleaned up by its own end-of-life
    // handling when requests for it error out.
    for (auto& [target, o] : s->outgoing) {
      Message endreq;
      endreq.type = MessageType::kRequest;
      endreq.sender = config_.id;
      endreq.session_id = o.session_id;
      endreq.seqno = o.next_seqno;
      endreq.method = "__end_session";
      Message rep;
      (void)CallRoundTrip(target, endreq, /*check_orphan_reply=*/false, &rep,
                          /*max_sends=*/3);
    }
    LogRecord end;
    end.type = LogRecordType::kSessionEnd;
    end.session_id = s->id;
    uint64_t lsn = log_->Append(end);
    // The end record must survive a crash or the session gets resurrected.
    MSPLOG_RETURN_IF_ERROR(log_->FlushUpTo(lsn));
    s->positions.Discard();
    {
      audit::LockGuard lk(sessions_mu_);
      s->ended = true;
    }
    return SendReply(s, ReplyCode::kOk, "", m.seqno, span);
  }

  // First activity of a fresh session: mark its start in the log.
  if (s->first_lsn.load() == 0) {
    LogRecord start;
    start.type = LogRecordType::kSessionStart;
    start.session_id = s->id;
    start.target = s->client;
    s->first_lsn.store(log_->Append(start));
  }

  // Log the nondeterministic event: the request receive.
  {
    LogRecord rec;
    rec.type = LogRecordType::kRequestReceive;
    rec.seqno = m.seqno;
    rec.target = m.method;
    rec.payload = m.payload;
    if (m.has_dv) {
      rec.has_dv = true;
      rec.dv = m.dv;
    }
    AppendSessionRecord(s, std::move(rec));
    if (m.has_dv) s->dv.Merge(m.dv);
  }

  // Execute the service method.
  ExecContext ctx(this, s, ExecContext::Mode::kNormal, m.seqno, nullptr, span);
  Bytes result;
  s->calls_in_request = 0;
  env_->tracer().Record(obs::TraceEventType::kExecStart, env_->NowModelMs(),
                        config_.id, s->id, m.seqno, m.method, span);
  double exec_t0 = env_->NowModelMs();
  Status st = InvokeMethod(m.method, &ctx, m.payload, &result);
  double exec_t1 = env_->NowModelMs();
  hist_execute_ms_->Record(exec_t1 - exec_t0);
  env_->tracer().Record(obs::TraceEventType::kExecEnd, exec_t1, config_.id,
                        s->id, m.seqno, st.ok() ? "" : st.ToString(), span);
  s->stats.OnRequest();
  s->stats.OnRequestFanout(s->calls_in_request);
  s->calls_in_request = 0;
  s->stats.SetDvEntries(s->dv.entry_count());
  if (st.IsOrphan()) return RecoverSessionReplay(s);
  if (st.IsCrashed() || st.IsTimedOut()) return st;

  ReplyCode code = st.ok() ? ReplyCode::kOk : ReplyCode::kAppError;
  Bytes payload = st.ok() ? std::move(result) : Bytes(st.ToString());

  Status rst = SendReply(s, code, payload, m.seqno, span);
  if (rst.IsOrphan()) return RecoverSessionReplay(s);
  MSPLOG_RETURN_IF_ERROR(rst);

  s->buffered_reply = {true, m.seqno, code, payload};
  s->next_expected_seqno = m.seqno + 1;
  s->audit_shadow_dv = s->dv;

  // Session checkpoint, only between requests (§3.2).
  if (config_.session_checkpoint_threshold_bytes > 0 &&
      s->bytes_logged_since_cp >= config_.session_checkpoint_threshold_bytes) {
    Status cst = TakeSessionCheckpoint(s, span);
    if (cst.IsOrphan()) return RecoverSessionReplay(s);
  }

  if (after_request_hook_) after_request_hook_(this, s->id, m.seqno);
  return Status::OK();
}

Status Msp::InvokeMethod(const std::string& method, ExecContext* ctx,
                         const Bytes& arg, Bytes* result) {
  auto it = methods_.find(method);
  if (it == methods_.end()) {
    return Status::InvalidArgument("no such method: " + method);
  }
  if (config_.method_overhead_ms > 0) ctx->Compute(config_.method_overhead_ms);
  return it->second(ctx, arg, result);
}

Status Msp::SendReply(Session* s, ReplyCode code, const Bytes& payload,
                      uint64_t seqno, const obs::SpanContext& span) {
  Message r;
  r.type = MessageType::kReply;
  r.sender = config_.id;
  r.session_id = s->id;
  r.seqno = seqno;
  r.reply_code = code;
  r.payload = payload;
  // Echo the trace back: the reply's parent is this server's request span.
  r.trace_id = span.trace_id;
  r.parent_span_id = span.span_id;
  const Bytes* dv_wire = nullptr;
  if (config_.mode == RecoveryMode::kLogBased) {
    if (IntraDomain(s->client)) {
      // Optimistic: attach the sender session's DV (Fig. 7) — or the whole
      // process's DV in the §3.2-strawman mode. The per-session path splices
      // the session's cached wire encoding instead of copying the DV map
      // into the message.
      r.has_dv = true;
      if (config_.per_session_dv) {
        dv_wire = &s->CachedDvWire();
        env_->stats().dv_entries_attached.fetch_add(s->dv.entry_count());
      } else {
        r.dv = MspWideDv();
        env_->stats().dv_entries_attached.fetch_add(r.dv.entry_count());
      }
      s->stats.OnPiggybackedSend();
    } else {
      // Pessimistic: output messages must never become orphans (§2.3).
      DependencyVector flush_dv =
          config_.per_session_dv ? s->dv : MspWideDv();
      MSPLOG_RETURN_IF_ERROR(DistributedFlush(flush_dv, span, s));
      audit::CheckWalBeforeSend("reply to " + s->client, config_.id,
                                epoch_.load(), flush_dv,
                                log_->durable_lsn());
    }
  }
  Bytes wire;
  r.AppendTo(&wire, dv_wire);
  network_->Send(config_.id, s->client, std::move(wire));
  env_->tracer().Record(obs::TraceEventType::kReplySent, env_->NowModelMs(),
                        config_.id, s->id, seqno, "", span);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Logging primitives
// ---------------------------------------------------------------------------

uint64_t Msp::AppendSessionRecord(Session* s, LogRecord rec) {
  rec.session_id = s->id;
  // Batch DV piggybacking: consecutive records of this session that carry
  // an identical DV splice one shared encoding into the log arena.
  const Bytes* dv_wire = nullptr;
  if (rec.has_dv) {
    auto& cache = s->logged_dv_cache;
    if (!cache.valid || !(cache.value == rec.dv)) {
      cache.wire.clear();
      BinaryWriter w(&cache.wire);
      rec.dv.EncodeTo(&w);
      cache.value = rec.dv;
      cache.valid = true;
    }
    dv_wire = &cache.wire;
  }
  size_t framed = 0;
  uint64_t lsn = log_->Append(rec, &framed, dv_wire);
  s->positions.Add(lsn);
  s->state_number = lsn;
  audit::CheckDvSelfMonotonic("session " + s->id, config_.id, s->dv,
                              StateId{epoch_.load(), lsn});
  s->dv.Set(config_.id, StateId{epoch_.load(), lsn});
  s->bytes_logged_since_cp += framed;
  s->stats.OnLogAppend(framed);
  env_->flight_recorder().Record(
      obs::FlightEventType::kDvUpdate, config_.id, s->id, rec.seqno,
      "lsn=" + std::to_string(lsn) + " epoch=" + std::to_string(epoch_.load()));
  return lsn;
}

std::shared_ptr<SharedVariable> Msp::GetOrCreateSharedVar(
    const std::string& name) {
  audit::LockGuard lk(vars_mu_);
  auto it = shared_vars_.find(name);
  if (it != shared_vars_.end()) return it->second;
  auto v = std::make_shared<SharedVariable>(name, Bytes());
  shared_vars_[name] = v;
  return v;
}

Status Msp::SharedReadImpl(Session* s, const std::string& name, Bytes* out) {
  auto var = GetOrCreateSharedVar(name);
  if (config_.mode != RecoveryMode::kLogBased) {
    audit::SharedLock lk(var->rw);
    *out = var->value;
    return Status::OK();
  }
  // Interception point: the reader session's own orphan status.
  if (SessionIsOrphan(s)) return Status::Orphan("session " + s->id);

  // Fig. 8, read: check whether the variable's value is an orphan; if so,
  // the reader itself rolls it back along the backward chain (§4.2).
  audit::SharedLock rlk(var->rw);
  if (DvIsOrphan(var->dv)) {
    rlk.unlock();
    audit::SharedUniqueLock wlk(var->rw);
    if (DvIsOrphan(var->dv)) {
      env_->stats().orphans_detected.fetch_add(1);
      MSPLOG_RETURN_IF_ERROR(UndoSharedVariable(var.get()));
    }
    // Value logging under the exclusive lock — correct, just conservative.
    LogRecord rec;
    rec.type = LogRecordType::kSharedRead;
    rec.var_id = name;
    rec.payload = var->value;
    rec.has_dv = true;
    rec.dv = var->dv;
    AppendSessionRecord(s, rec);
    s->dv.Merge(var->dv);
    *out = var->value;
    return Status::OK();
  }
  LogRecord rec;
  rec.type = LogRecordType::kSharedRead;
  rec.var_id = name;
  rec.payload = var->value;
  rec.has_dv = true;
  rec.dv = var->dv;
  AppendSessionRecord(s, rec);
  s->dv.Merge(var->dv);
  *out = var->value;
  return Status::OK();
}

Status Msp::SharedWriteImpl(Session* s, const std::string& name,
                            ByteView value) {
  auto var = GetOrCreateSharedVar(name);
  if (config_.mode != RecoveryMode::kLogBased) {
    audit::SharedUniqueLock lk(var->rw);
    var->value = Bytes(value);
    return Status::OK();
  }
  if (SessionIsOrphan(s)) return Status::Orphan("session " + s->id);

  audit::SharedUniqueLock lk(var->rw);
  // Fig. 8, write: the writer need not check whether the existing value is
  // an orphan — it is being replaced. The write record carries the writer
  // session's DV, the new value, and the LSN of the previous write record
  // (backward chain).
  LogRecord rec;
  rec.type = LogRecordType::kSharedWrite;
  rec.session_id = s->id;
  rec.var_id = name;
  rec.payload = Bytes(value);
  rec.has_dv = true;
  rec.dv = s->dv;
  rec.prev_lsn = var->last_write_lsn;
  size_t framed = 0;
  uint64_t lsn = log_->Append(rec, &framed);
  // The write record belongs to the *variable's* recovery, not the session's
  // replay: it is not added to the position stream and does not change the
  // session's state number (Fig. 8). Telemetry still attributes it to the
  // writing session — the record carries its id, and the offline inspector's
  // per-session reconstruction groups by that id.
  s->bytes_logged_since_cp += framed;
  s->stats.OnLogAppend(framed);

  // Refined dependency tracking (§3.3): a write REPLACES the variable's DV
  // with the writer's; nothing flows back into the writer.
  var->dv.ReplaceWith(s->dv);
  var->state_number = lsn;
  var->last_write_lsn = lsn;
  var->value = Bytes(value);
  var->writes_since_cp++;

  if (config_.shared_var_checkpoint_threshold_writes > 0 &&
      var->writes_since_cp >= config_.shared_var_checkpoint_threshold_writes) {
    Status st = TakeSharedVarCheckpoint(var.get());
    if (st.IsOrphan()) {
      // The variable's value turned out to be an orphan during the
      // checkpoint flush: roll it back instead of checkpointing (§4.2).
      env_->stats().orphans_detected.fetch_add(1);
      MSPLOG_RETURN_IF_ERROR(UndoSharedVariable(var.get()));
    } else if (!st.ok() && !st.IsCrashed()) {
      return st;
    }
  }
  return Status::OK();
}

Status Msp::SharedUpdateImpl(Session* s, const std::string& name,
                             const std::function<Bytes(const Bytes&)>& fn,
                             Bytes* out) {
  auto var = GetOrCreateSharedVar(name);
  if (config_.mode != RecoveryMode::kLogBased) {
    audit::SharedUniqueLock lk(var->rw);
    var->value = fn(var->value);
    if (out) *out = var->value;
    return Status::OK();
  }
  if (SessionIsOrphan(s)) return Status::Orphan("session " + s->id);

  // Fused read + write under ONE lock hold: atomic read-modify-write. The
  // log sees the same two records a ReadShared/WriteShared pair produces
  // (value-logged read, chained write), so recovery is unchanged; only the
  // lock scope differs.
  audit::SharedUniqueLock lk(var->rw);
  if (DvIsOrphan(var->dv)) {
    env_->stats().orphans_detected.fetch_add(1);
    MSPLOG_RETURN_IF_ERROR(UndoSharedVariable(var.get()));
  }
  LogRecord read;
  read.type = LogRecordType::kSharedRead;
  read.var_id = name;
  read.payload = var->value;
  read.has_dv = true;
  read.dv = var->dv;
  AppendSessionRecord(s, read);
  s->dv.Merge(var->dv);

  Bytes newval = fn(var->value);

  LogRecord write;
  write.type = LogRecordType::kSharedWrite;
  write.session_id = s->id;
  write.var_id = name;
  write.payload = newval;
  write.has_dv = true;
  write.dv = s->dv;
  write.prev_lsn = var->last_write_lsn;
  size_t framed = 0;
  uint64_t lsn = log_->Append(write, &framed);
  s->bytes_logged_since_cp += framed;
  s->stats.OnLogAppend(framed);

  var->dv.ReplaceWith(s->dv);
  var->state_number = lsn;
  var->last_write_lsn = lsn;
  var->value = newval;
  var->writes_since_cp++;
  if (out) *out = std::move(newval);

  if (config_.shared_var_checkpoint_threshold_writes > 0 &&
      var->writes_since_cp >= config_.shared_var_checkpoint_threshold_writes) {
    Status st = TakeSharedVarCheckpoint(var.get());
    if (st.IsOrphan()) {
      env_->stats().orphans_detected.fetch_add(1);
      MSPLOG_RETURN_IF_ERROR(UndoSharedVariable(var.get()));
    } else if (!st.ok() && !st.IsCrashed()) {
      return st;
    }
  }
  return Status::OK();
}

Status Msp::UndoSharedVariable(SharedVariable* var) {
  // Follow the backward chain of write records to the most recent
  // non-orphan value (§4.2 — undo recovery). The chain breaks at
  // shared-variable checkpoints, whose values are never orphans.
  uint64_t lsn = var->last_write_lsn;
  while (lsn != 0) {
    LogRecord rec;
    Status st = log_->ReadRecordAt(lsn, &rec);
    if (!st.ok()) return st;
    if (rec.type == LogRecordType::kSharedVarCheckpoint) {
      var->value = rec.payload;
      var->dv.Clear();
      var->state_number = lsn;
      var->last_write_lsn = lsn;
      return Status::OK();
    }
    if (rec.type != LogRecordType::kSharedWrite) {
      return Status::Corruption("write chain points at " +
                                std::string(LogRecordTypeName(rec.type)));
    }
    if (!DvIsOrphan(rec.dv)) {
      var->value = rec.payload;
      var->dv = rec.dv;
      var->state_number = lsn;
      var->last_write_lsn = lsn;
      return Status::OK();
    }
    lsn = rec.prev_lsn;
  }
  // Chain exhausted: every logged value was an orphan.
  var->value = var->initial_value;
  var->dv.Clear();
  var->state_number = 0;
  var->last_write_lsn = 0;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Outgoing calls
// ---------------------------------------------------------------------------

Status Msp::CallRoundTrip(const std::string& dest, const Message& req,
                          bool check_orphan_reply, Message* out,
                          uint32_t max_sends, const Bytes* dv_wire) {
  if (max_sends == 0) max_sends = config_.max_call_sends;
  // Encoded once, resent verbatim on loss. `dv_wire`, when set, splices the
  // caller's pre-encoded DV (zero-copy piggybacking).
  Bytes wire;
  req.AppendTo(&wire, dv_wire);
  auto key = std::make_pair(req.session_id, req.seqno);
  uint32_t sends = 0;
  while (sends < max_sends) {
    auto pc = std::make_shared<PendingCall>();
    {
      audit::LockGuard lk(calls_mu_);
      pending_calls_[key] = pc;
    }
    network_->Send(config_.id, dest, wire);
    ++sends;
    bool got = false;
    bool failed = false;
    bool done = false;
    Message reply;
    {
      // Snapshot under pc->mu: the dispatch thread can deliver a late reply
      // right after a timed-out wait, racing unlocked reads of done/reply.
      audit::UniqueLock lk(pc->mu);
      got = pc->cv.wait_for(
          lk,
          std::chrono::milliseconds(RealWaitMs(config_.call_resend_timeout_ms)),
          [&] {
            pc->mu.AssertHeld();
            return pc->done || pc->failed;
          });
      failed = pc->failed;
      done = pc->done;
      if (done) reply = std::move(pc->reply);
    }
    {
      audit::LockGuard lk(calls_mu_);
      auto it = pending_calls_.find(key);
      if (it != pending_calls_.end() && it->second == pc) {
        pending_calls_.erase(it);
      }
    }
    if (state_.load() == State::kCrashed || failed) {
      return Status::Crashed("MSP crashed during call");
    }
    if (!got || !done) continue;  // timeout: resend
    Message& m = reply;
    if (m.reply_code == ReplyCode::kBusy) {
      env_->SleepModelMs(config_.busy_backoff_ms);
      continue;
    }
    if (m.reply_code == ReplyCode::kOrphanNotice) {
      // The callee proved our request carried a lost dependency: absorb the
      // recovered state number and surface orphan-ness to the session.
      {
        audit::LockGuard lk(table_mu_);
        recovered_table_.Record(m.payload, m.rec_epoch, m.rec_sn);
      }
      return Status::Orphan("orphan notice from " + dest);
    }
    if (check_orphan_reply && m.has_dv && DvIsOrphan(m.dv)) {
      // Fig. 7: an orphan message is discarded; the sender recovers and
      // resends. Keep resending our request until a clean reply arrives.
      env_->stats().orphans_detected.fetch_add(1);
      env_->SleepModelMs(config_.busy_backoff_ms);
      continue;
    }
    *out = std::move(m);
    return Status::OK();
  }
  return Status::TimedOut("no reply from " + dest + " after " +
                          std::to_string(sends) + " sends");
}

Status Msp::OutgoingCallImpl(Session* s, const std::string& target,
                             const std::string& method, ByteView arg,
                             Bytes* reply, const obs::SpanContext& parent_span) {
  const bool log_based = config_.mode == RecoveryMode::kLogBased;
  if (log_based && SessionIsOrphan(s)) {
    return Status::Orphan("session " + s->id);
  }

  auto& o = s->outgoing[target];
  if (o.session_id.empty()) {
    o.target = target;
    // Deterministic id: replay after a crash re-creates the same outgoing
    // session, so the server-side session and its seqnos keep working.
    o.session_id = config_.id + "/" + s->id + ">" + target;
    o.next_seqno = 1;
  }
  uint64_t seqno = o.next_seqno;

  Message req;
  req.type = MessageType::kRequest;
  req.sender = config_.id;
  req.session_id = o.session_id;
  req.seqno = seqno;
  req.method = method;
  req.payload = Bytes(arg);
  // Propagate the caller's trace: the callee's request span becomes a child
  // of this request's span, linking span trees across MSPs.
  req.trace_id = parent_span.trace_id;
  req.parent_span_id = parent_span.span_id;

  const bool intra = IntraDomain(target);
  s->stats.OnNestedCall(target, /*cross_domain=*/!intra);
  ++s->calls_in_request;
  const Bytes* dv_wire = nullptr;
  if (log_based) {
    if (intra) {
      // Per-session mode splices the session's cached wire DV rather than
      // copying the map into the request (the cache stays valid for the
      // whole round trip: only this worker thread mutates s->dv).
      req.has_dv = true;
      if (config_.per_session_dv) {
        dv_wire = &s->CachedDvWire();
        env_->stats().dv_entries_attached.fetch_add(s->dv.entry_count());
      } else {
        req.dv = MspWideDv();
        env_->stats().dv_entries_attached.fetch_add(req.dv.entry_count());
      }
      s->stats.OnPiggybackedSend();
    } else {
      // Pessimistic leg: flush our dependencies before the message leaves
      // the service domain (Fig. 7, "before send, across service domains").
      DependencyVector flush_dv =
          config_.per_session_dv ? s->dv : MspWideDv();
      MSPLOG_RETURN_IF_ERROR(DistributedFlush(flush_dv, parent_span, s));
      audit::CheckWalBeforeSend("call to " + target, config_.id,
                                epoch_.load(), flush_dv,
                                log_->durable_lsn());
    }
  }

  Message rep;
  MSPLOG_RETURN_IF_ERROR(CallRoundTrip(target, req,
                                       /*check_orphan_reply=*/log_based, &rep,
                                       /*max_sends=*/0, dv_wire));

  if (log_based) {
    // §3.1: log the nondeterministic reply receive (with its DV if the
    // reply came from inside the domain).
    LogRecord rec;
    rec.type = LogRecordType::kReplyReceive;
    rec.target = target;
    rec.seqno = seqno;
    rec.payload = rep.payload;
    rec.aux = static_cast<uint8_t>(rep.reply_code);
    if (rep.has_dv) {
      rec.has_dv = true;
      rec.dv = rep.dv;
    }
    AppendSessionRecord(s, rec);
    if (rep.has_dv) s->dv.Merge(rep.dv);
  }
  o.next_seqno = seqno + 1;
  *reply = rep.payload;
  if (rep.reply_code == ReplyCode::kAppError) {
    return Status::Aborted("remote application error: " + *reply);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Distributed log flush (§3.1)
// ---------------------------------------------------------------------------

Status Msp::DistributedFlush(const DependencyVector& dv,
                             const obs::SpanContext& span,
                             Session* stats_session) {
  if (config_.mode != RecoveryMode::kLogBased) return Status::OK();
  // The flush is its own child span under the stalled request span, so the
  // trace shows the log-flush stall as a distinct stage.
  obs::SpanContext fspan;
  if (span.valid()) {
    fspan.trace_id = span.trace_id;
    fspan.span_id = obs::NextSpanId();
    fspan.parent_span_id = span.span_id;
  }
  double t0 = env_->NowModelMs();
  env_->tracer().Record(obs::TraceEventType::kDistFlushStart, t0, config_.id,
                        /*session=*/"", /*seqno=*/0,
                        "dv_entries=" + std::to_string(dv.entry_count()),
                        fspan);
  Status st = DistributedFlushImpl(dv, fspan);
  double t1 = env_->NowModelMs();
  hist_flush_wait_ms_->Record(t1 - t0);
  env_->flight_recorder().Record(
      obs::FlightEventType::kFlushLeg, config_.id,
      stats_session ? stats_session->id : "", 0,
      "dv_entries=" + std::to_string(dv.entry_count()) +
          (st.ok() ? "" : " " + st.ToString()));
  if (stats_session) {
    stats_session->stats.OnForcedFlush();
    stats_session->stats.OnFlushStall(t1 - t0);
  }
  env_->tracer().Record(obs::TraceEventType::kDistFlushEnd, t1, config_.id,
                        /*session=*/"", /*seqno=*/0,
                        st.ok() ? "" : st.ToString(), fspan);
  return st;
}

Status Msp::DistributedFlushImpl(const DependencyVector& dv,
                                 const obs::SpanContext& span) {
  env_->stats().distributed_flushes.fetch_add(1);

  // Submit the peer legs first so they run in parallel with the local one.
  // The aggregator decides, under one lock pass per leg, whether it is
  // already covered by the durable watermark (skip), rides an in-flight
  // request (join), accumulates behind one (queue), or launches a flight.
  auto call = std::make_shared<FlushCall>();
  std::vector<std::shared_ptr<FlushWaiter>> waiters;
  for (const auto& [msp, id] : dv.entries()) {
    if (msp == config_.id) continue;
    if (!IntraDomain(msp)) continue;  // cross-domain deps never exist
    auto w = flush_agg_->Submit(msp, id, call, span);
    if (w) waiters.push_back(std::move(w));
  }

  auto abandon_unsettled = [&] {
    for (auto& w : waiters) {
      bool settled;
      {
        audit::LockGuard lk(call->mu);
        settled = w->settled;
      }
      if (!settled) flush_agg_->Abandon(w);
    }
  };

  // Local leg (skipped when the durable watermark already covers it).
  auto self = dv.Get(config_.id);
  if (self && self->epoch == epoch_.load() && log_ &&
      self->sn < log_->end_lsn() && self->sn >= log_->durable_lsn()) {
    Status st = log_->FlushUpTo(self->sn);
    if (!st.ok()) {
      abandon_unsettled();
      return st;
    }
  }

  // One deadline-driven wait across ALL legs (no per-leg serialization): a
  // slow first peer no longer delays settled later legs' bookkeeping. Wake
  // when every leg settled or any settled leg failed; after a timeout round
  // with no settlement, the aggregator resends each stalled flight at most
  // once per round and eventually times the flight out (max_rounds). The
  // peer may be mid-crash; once it recovers it either confirms durability
  // or reports the recovered state number that proves we are an orphan.
  while (!waiters.empty()) {
    bool all_settled;
    bool fatal;
    {
      audit::UniqueLock lk(call->mu);
      call->cv.wait_for(
          lk, std::chrono::milliseconds(RealWaitMs(config_.flush_timeout_ms)),
          [&] {
            call->mu.AssertHeld();
            return call->unsettled == 0 || call->fatal;
          });
      all_settled = call->unsettled == 0;
      fatal = call->fatal;
    }
    if (all_settled || fatal || state_.load() == State::kCrashed) break;
    for (auto& w : waiters) flush_agg_->OnWaitTimeout(w);
  }

  // Harvest outcomes. Precedence mirrors the old per-leg loop: crash wins,
  // then orphan-hood (recording every peer's recovered state number), then
  // timeout. Legs still unsettled after an early exit are abandoned — their
  // outcome no longer matters to this call.
  bool crashed = state_.load() == State::kCrashed;
  MspId orphan_peer;
  MspId timeout_peer;
  for (auto& w : waiters) {
    bool settled, ok, t_out, w_crashed;
    uint32_t oe;
    uint64_t osn;
    {
      audit::LockGuard lk(call->mu);
      settled = w->settled;
      ok = w->ok;
      t_out = w->timed_out;
      w_crashed = w->crashed;
      oe = w->orphan_epoch;
      osn = w->orphan_sn;
    }
    if (!settled) {
      flush_agg_->Abandon(w);
      continue;
    }
    if (ok) continue;
    if (w_crashed) {
      crashed = true;
    } else if (oe != 0) {
      // The peer's recovery provably lost our dependency: orphan.
      {
        audit::LockGuard lk(table_mu_);
        recovered_table_.Record(w->peer, oe, osn);
      }
      env_->stats().orphans_detected.fetch_add(1);
      env_->tracer().Record(obs::TraceEventType::kOrphanDetected,
                            env_->NowModelMs(), config_.id,
                            /*session=*/"", /*seqno=*/0,
                            "flush_leg=" + w->peer);
      if (orphan_peer.empty()) orphan_peer = w->peer;
    } else if (t_out && timeout_peer.empty()) {
      timeout_peer = w->peer;
    }
  }
  if (crashed) return Status::Crashed("MSP crashed during distributed flush");
  if (!orphan_peer.empty()) return Status::Orphan("flush failed at " + orphan_peer);
  if (!timeout_peer.empty()) {
    return Status::TimedOut("distributed flush to " + timeout_peer);
  }
  return Status::OK();
}

void Msp::SendFlushReply(const std::string& to, uint64_t flush_id, bool ok,
                         uint32_t rec_epoch, uint64_t rec_sn) {
  Message r;
  r.type = MessageType::kFlushReply;
  r.sender = config_.id;
  r.flush_id = flush_id;
  r.flush_ok = ok;
  r.rec_epoch = rec_epoch;
  r.rec_sn = rec_sn;
  network_->Send(config_.id, to, r.Encode());
}

void Msp::HandleFlushRequest(Message m) {
  uint32_t cur_epoch = epoch_.load();
  if (m.epoch == cur_epoch && log_) {
    if (m.flush_sn < log_->durable_lsn()) {
      // Already durable: no write needed.
      SendFlushReply(m.sender, m.flush_id, /*ok=*/true, 0, 0);
    } else if (m.flush_sn < log_->end_lsn()) {
      if (config_.coalesce_distributed_flushes && inbound_flush_) {
        // Group commit: concurrent requests drain through one batching
        // loop — a single FlushUpTo to the batch maximum answers them all.
        inbound_flush_->Enqueue({m.sender, m.flush_id, m.flush_sn});
      } else if (log_->FlushUpTo(m.flush_sn).ok()) {
        SendFlushReply(m.sender, m.flush_id, /*ok=*/true, 0, 0);
      }
      // FlushUpTo failure means we are crashing mid-flush. NEVER report a
      // failure for the current epoch — that would amount to announcing a
      // recovered state number for an epoch that has not ended, poisoning
      // the requester's table. Stay silent; the requester retries and our
      // recovery will give the authoritative answer.
    }
    // else: an sn from our current epoch that we do not know (should not
    // happen); drop rather than guess.
    return;
  }
  if (m.epoch < cur_epoch) {
    // The epoch already ended: the sn is durable iff it survived recovery.
    bool ok;
    uint32_t rec_epoch = 0;
    uint64_t rec_sn = 0;
    {
      audit::LockGuard lk(table_mu_);
      auto rsn = recovered_table_.RecoveredSn(config_.id, m.epoch);
      ok = rsn.has_value() && *rsn >= m.flush_sn;
      if (!ok) {
        // Authoritative failure: the epoch ended at rec_sn < flush_sn.
        rec_epoch = m.epoch;
        rec_sn = rsn.value_or(0);
      }
    }
    SendFlushReply(m.sender, m.flush_id, ok, rec_epoch, rec_sn);
    return;
  }
  // Request from our future (stale routing): drop.
}

void Msp::HandleFlushReply(Message m) { flush_agg_->HandleReply(m); }

size_t Msp::PendingFlushLegsForTest() const {
  return flush_agg_->WaiterCountForTest();
}

size_t Msp::InFlightFlushesForTest() const {
  return flush_agg_->InFlightForTest();
}

void Msp::HandleReplyMsg(Message m) {
  std::shared_ptr<PendingCall> pc;
  {
    audit::LockGuard lk(calls_mu_);
    auto it = pending_calls_.find({m.session_id, m.seqno});
    if (it == pending_calls_.end()) return;  // duplicate/stale reply
    pc = it->second;
  }
  {
    audit::LockGuard lk(pc->mu);
    if (pc->done) return;
    pc->reply = std::move(m);
    pc->done = true;
  }
  pc->cv.notify_all();
}

void Msp::HandleRecoveryAnnounce(Message m) {
  {
    audit::LockGuard lk(table_mu_);
    recovered_table_.Record(m.sender, m.rec_epoch, m.rec_sn);
  }
  if (config_.mode == RecoveryMode::kLogBased && log_) {
    // Persist the knowledge (§3.1: "Other processes log and remember this
    // recovered state number").
    LogRecord rec;
    rec.type = LogRecordType::kRecoveredState;
    rec.peer = m.sender;
    rec.peer_epoch = m.rec_epoch;
    rec.peer_recovered_sn = m.rec_sn;
    log_->Append(rec);
  }
  // §4.1: idle sessions are checked now; busy sessions at the next
  // interception point (their worker picks the flag up between requests).
  std::vector<std::shared_ptr<Session>> to_arm;
  {
    audit::LockGuard lk(sessions_mu_);
    for (auto& [id, s] : sessions_) {
      if (s->ended) continue;
      s->needs_orphan_check = true;
      if (!s->worker_active && !s->recovering) {
        s->worker_active = true;
        to_arm.push_back(s);
      }
    }
  }
  for (auto& s : to_arm) {
    pool_->Submit([this, s] { SessionWorker(s); });
  }
}

// ---------------------------------------------------------------------------
// Orphan predicates
// ---------------------------------------------------------------------------

bool Msp::DvIsOrphan(const DependencyVector& dv) const {
  audit::LockGuard lk(table_mu_);
  return recovered_table_.IsOrphanDv(dv);
}

DependencyVector Msp::MspWideDv() const {
  DependencyVector all;
  audit::LockGuard lk(sessions_mu_);
  for (const auto& [id, sess] : sessions_) {
    if (!sess->ended) all.Merge(sess->dv);
  }
  return all;
}

bool Msp::SessionIsOrphan(const Session* s) const {
  if (!config_.per_session_dv) {
    // §3.2 strawman: one DV for the whole MSP — if ANY session carries an
    // orphan dependency, every session is considered orphan and rolls back.
    return DvIsOrphan(MspWideDv());
  }
  return DvIsOrphan(s->dv);
}

// ---------------------------------------------------------------------------
// Baseline request processing (§5 comparison configurations)
// ---------------------------------------------------------------------------

Status Msp::ProcessRequestBaseline(Session* s, const Message& m,
                                   const obs::SpanContext& span) {
  const bool stateful = config_.mode == RecoveryMode::kPsession ||
                        config_.mode == RecoveryMode::kStateServer;
  if (m.method == "__end_session") {
    {
      audit::LockGuard lk(sessions_mu_);
      s->ended = true;
    }
    return SendReply(s, ReplyCode::kOk, "", m.seqno, span);
  }
  bool state_found = false;
  if (stateful) {
    MSPLOG_RETURN_IF_ERROR(FetchBaselineState(s, &state_found));
  }
  if (m.seqno < s->next_expected_seqno) {
    if (s->buffered_reply.valid && s->buffered_reply.seqno == m.seqno) {
      return SendReply(s, s->buffered_reply.code, s->buffered_reply.payload,
                       m.seqno, span);
    }
    return Status::OK();
  }
  if (m.seqno > s->next_expected_seqno) {
    if (config_.mode == RecoveryMode::kNoLog || !state_found) {
      // The duplicate-detection state was lost (NoLog crash, or the state
      // server died): accept the client's sequence as the new truth. This
      // is exactly the exactly-once guarantee these baselines lack.
      s->next_expected_seqno = m.seqno;
    } else {
      return Status::OK();
    }
  }

  ExecContext ctx(this, s, ExecContext::Mode::kNormal, m.seqno, nullptr, span);
  Bytes result;
  s->calls_in_request = 0;
  Status st = InvokeMethod(m.method, &ctx, m.payload, &result);
  s->stats.OnRequest();
  s->stats.OnRequestFanout(s->calls_in_request);
  s->calls_in_request = 0;
  if (st.IsCrashed() || st.IsTimedOut()) return st;
  ReplyCode code = st.ok() ? ReplyCode::kOk : ReplyCode::kAppError;
  Bytes payload = st.ok() ? std::move(result) : Bytes(st.ToString());

  s->buffered_reply = {true, m.seqno, code, payload};
  s->next_expected_seqno = m.seqno + 1;
  if (stateful) {
    MSPLOG_RETURN_IF_ERROR(StoreBaselineState(s));
  }
  MSPLOG_RETURN_IF_ERROR(SendReply(s, code, payload, m.seqno, span));
  if (after_request_hook_) after_request_hook_(this, s->id, m.seqno);
  return Status::OK();
}

Status Msp::FetchBaselineState(Session* s, bool* found) {
  *found = false;
  if (config_.mode == RecoveryMode::kPsession) {
    Bytes blob;
    Status st = psession_db_->TxnGet("session/" + s->id, &blob);
    if (st.IsNotFound()) return Status::OK();
    MSPLOG_RETURN_IF_ERROR(st);
    MSPLOG_RETURN_IF_ERROR(s->DecodeCheckpoint(blob));
    *found = true;
    return Status::OK();
  }
  // StateServer: one round trip to fetch the whole session state.
  Message req;
  req.type = MessageType::kRequest;
  req.sender = config_.id;
  req.session_id = config_.id + "/" + s->id + "@ss";
  req.seqno = s->volatile_rpc_seqno++;
  req.method = "__ss_get";
  req.payload = s->id;
  Message rep;
  MSPLOG_RETURN_IF_ERROR(CallRoundTrip(config_.state_server, req,
                                       /*check_orphan_reply=*/false, &rep));
  if (rep.payload.empty()) return Status::Corruption("bad state reply");
  if (rep.payload[0] == 1) {
    MSPLOG_RETURN_IF_ERROR(
        s->DecodeCheckpoint(ByteView(rep.payload).substr(1)));
    *found = true;
  }
  return Status::OK();
}

Status Msp::StoreBaselineState(Session* s) {
  Bytes blob = s->EncodeCheckpoint();
  if (config_.mode == RecoveryMode::kPsession) {
    return psession_db_->TxnPut("session/" + s->id, blob);
  }
  Message req;
  req.type = MessageType::kRequest;
  req.sender = config_.id;
  req.session_id = config_.id + "/" + s->id + "@ss";
  req.seqno = s->volatile_rpc_seqno++;
  req.method = "__ss_put";
  BinaryWriter w;
  w.PutBytes(s->id);
  w.PutBytes(blob);
  req.payload = w.Take();
  Message rep;
  return CallRoundTrip(config_.state_server, req,
                       /*check_orphan_reply=*/false, &rep);
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

void Msp::QuiesceSession(Session* s) const {
  // Session fields are owned by the worker (or recovery) thread currently
  // draining the session, and that thread can still be running its epilogue
  // after the client already has its reply. Both worker_active and
  // recovering are cleared under sessions_mu_, so observing them false here
  // orders every owner-thread write before the caller's access.
  while (true) {
    {
      audit::LockGuard lk(sessions_mu_);
      if (!s->worker_active && !s->recovering && s->pending_requests.empty())
        return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

StatusOr<Bytes> Msp::PeekSessionVar(const std::string& session_id,
                                    const std::string& var) const {
  auto s = GetSession(session_id);
  if (!s) return Status::NotFound("no session " + session_id);
  QuiesceSession(s.get());
  auto it = s->vars.find(var);
  if (it == s->vars.end()) return Status::NotFound("no var " + var);
  return it->second;
}

StatusOr<Bytes> Msp::PeekSharedValue(const std::string& name) const {
  std::shared_ptr<SharedVariable> v;
  {
    audit::LockGuard lk(vars_mu_);
    auto it = shared_vars_.find(name);
    if (it == shared_vars_.end()) return Status::NotFound("no shared " + name);
    v = it->second;
  }
  audit::SharedLock vlk(v->rw);
  return v->value;
}

StatusOr<uint64_t> Msp::PeekNextExpectedSeqno(
    const std::string& session_id) const {
  auto s = GetSession(session_id);
  if (!s) return Status::NotFound("no session " + session_id);
  QuiesceSession(s.get());
  return s->next_expected_seqno;
}

std::vector<uint64_t> Msp::PeekPositionStream(
    const std::string& session_id) const {
  auto s = GetSession(session_id);
  if (!s) return {};
  QuiesceSession(s.get());
  return s->positions.All();
}

bool Msp::HasSession(const std::string& session_id) const {
  return GetSession(session_id) != nullptr;
}

void Msp::InjectDvRegressionForTest(const std::string& session_id) {
  auto s = GetSession(session_id);
  if (!s) return;
  QuiesceSession(s.get());
  std::optional<StateId> self = s->dv.Get(config_.id);
  if (!self || self->sn == 0) return;
  // Silently drop the self entry back one LSN, simulating a bug that loses a
  // logged dependency. The dv-monotonic check fires on the next request.
  s->dv.Set(config_.id, StateId{self->epoch, self->sn - 1});
}

size_t Msp::SessionCount() const {
  audit::LockGuard lk(sessions_mu_);
  return sessions_.size();
}

RecoveredStateTable Msp::SnapshotRecoveredTable() const {
  audit::LockGuard lk(table_mu_);
  return recovered_table_;
}

std::vector<obs::SessionStatsSnapshot> Msp::SessionTelemetry() const {
  std::vector<std::pair<std::string, std::shared_ptr<Session>>> snap;
  {
    audit::LockGuard lk(sessions_mu_);
    snap.reserve(sessions_.size());
    for (const auto& [id, s] : sessions_) snap.emplace_back(id, s);
  }
  // Snapping outside the table lock: SessionStats is relaxed-atomic, so no
  // session ownership is required (std::map iteration is id-sorted already).
  std::vector<obs::SessionStatsSnapshot> out;
  out.reserve(snap.size());
  for (const auto& [id, s] : snap) out.push_back(s->stats.Snap(id));
  return out;
}

void Msp::RegisterTelemetryProbes(obs::MetricsScraper* scraper) const {
  const std::string p = config_.id + ".";
  scraper->AddProbe(p + "sessions", [this] {
    return static_cast<double>(SessionCount());
  });
  // Both queue-depth probes read relaxed atomics: the scraper fires every
  // 100ms and must never contend with the request hot path for a mutex.
  scraper->AddProbe(p + "queued_requests", [this] {
    return static_cast<double>(
        queued_requests_.load(std::memory_order_relaxed));
  });
  scraper->AddProbe(p + "pool.queue_depth", [this] {
    audit::LockGuard lk(probe_mu_);
    return probe_pool_ ? static_cast<double>(probe_pool_->queued()) : 0.0;
  });
  // Aggregates over live sessions' relaxed-atomic telemetry; the sessions
  // table lock only pins the session set, never session bodies.
  auto sum = [this](uint64_t (*field)(const Session&)) {
    audit::LockGuard lk(sessions_mu_);
    uint64_t total = 0;
    for (const auto& [id, s] : sessions_) total += field(*s);
    return static_cast<double>(total);
  };
  scraper->AddProbe(p + "telemetry.requests", [sum] {
    return sum([](const Session& s) { return s.stats.requests(); });
  });
  scraper->AddProbe(p + "telemetry.flush_stalls", [sum] {
    return sum([](const Session& s) { return s.stats.flush_stalls(); });
  });
  scraper->AddProbe(p + "crash_generation", [this] {
    return static_cast<double>(crash_generation_.load());
  });
  scraper->AddProbe(p + "uptime_ms", [this] {
    double up = last_start_end_ms_.load(std::memory_order_relaxed);
    if (up <= 0 || state_.load() != State::kRunning) return 0.0;
    return env_->NowModelMs() - up;
  });
}

obs::FlightSnapshot Msp::BuildFlightSnapshot() const {
  obs::FlightSnapshot snap;
  snap.statusz_json = DumpStatusz();
  {
    audit::LockGuard lk(sessions_mu_);
    for (const auto& [id, s] : sessions_) {
      if (!s->ended) snap.inflight_sessions.push_back(id);
    }
  }
  if (log_) {
    const LogExtents x = log_->Extents();  // one consistent snapshot
    snap.log_end_lsn = x.end_lsn;
    snap.log_durable_lsn = x.durable_lsn;
    snap.log_reclaimed_lsn = x.reclaimed_lsn;
    snap.log_archived_lsn = x.archived_lsn;
  }
  return snap;
}

std::string Msp::DumpStatusz() const {
  const char* state_name = "?";
  switch (state_.load()) {
    case State::kStopped: state_name = "stopped"; break;
    case State::kRecovering: state_name = "recovering"; break;
    case State::kRunning: state_name = "running"; break;
    case State::kCrashed: state_name = "crashed"; break;
  }
  std::string out = "{";
  out += "\"id\":\"" + obs::JsonEscape(config_.id) + "\",";
  out += "\"state\":\"" + std::string(state_name) + "\",";
  out += "\"epoch\":" + std::to_string(epoch_.load()) + ",";
  out += "\"model_ms\":" + std::to_string(env_->NowModelMs()) + ",";

  // Session occupancy. Only queue/ownership flags are touched — those are
  // the fields sessions_mu_ actually guards, so this is safe while workers
  // are mutating session bodies.
  {
    uint64_t queued = 0, active = 0, recovering = 0, ended = 0;
    audit::LockGuard lk(sessions_mu_);
    for (const auto& [id, s] : sessions_) {
      queued += s->pending_requests.size();
      if (s->worker_active) ++active;
      if (s->recovering) ++recovering;
      if (s->ended) ++ended;
    }
    out += "\"sessions\":{\"count\":" + std::to_string(sessions_.size()) +
           ",\"queued_requests\":" + std::to_string(queued) +
           ",\"active_workers\":" + std::to_string(active) +
           ",\"recovering\":" + std::to_string(recovering) +
           ",\"ended\":" + std::to_string(ended) + "},";
  }

  // Log extents (absent outside kLogBased or before Start). One Extents()
  // snapshot — the former end/durable/reclaimed triple-read could tear.
  if (log_) {
    const LogExtents x = log_->Extents();
    out += "\"log\":{\"end_lsn\":" + std::to_string(x.end_lsn) +
           ",\"durable_lsn\":" + std::to_string(x.durable_lsn) +
           ",\"reclaimed_lsn\":" + std::to_string(x.reclaimed_lsn) +
           ",\"archived_lsn\":" + std::to_string(x.archived_lsn) +
           "},";
  }

  {
    audit::LockGuard lk(table_mu_);
    out += "\"recovered_table_entries\":" +
           std::to_string(recovered_table_.entries().size()) + ",";
  }
  {
    audit::LockGuard lk(timeline_mu_);
    size_t n = recovery_history_.size() +
               (last_recovery_timeline_.epoch != 0 ? 1 : 0);
    out += "\"recoveries\":" + std::to_string(n) + ",";
    out += "\"last_outage_report\":" + last_outage_report_.ToJson() + ",";
  }
  out += "\"crash_generation\":" + std::to_string(crash_generation_.load()) +
         ",";
  {
    // "Uptime since last recovery": model ms since the last Start()
    // finished; 0 while down or before the first start.
    double up = last_start_end_ms_.load(std::memory_order_relaxed);
    double uptime = (up > 0 && state_.load() == State::kRunning)
                        ? env_->NowModelMs() - up
                        : 0.0;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f", uptime);
    out += "\"uptime_since_recovery_ms\":" + std::string(buf) + ",";
  }
  out += "\"requests\":" + std::to_string(ctr_requests_->Value()) + ",";

  // Distributed-flush group commit (shared registry: sums over every MSP in
  // this environment; in-flight/pending legs are this MSP's own).
  {
    obs::MetricsRegistry& m = env_->metrics();
    out += "\"flush\":{";
    out += "\"legs_requested\":" +
           std::to_string(m.GetCounter("flush.legs_requested")->Value()) + ",";
    out += "\"legs_coalesced\":" +
           std::to_string(m.GetCounter("flush.legs_coalesced")->Value()) + ",";
    out += "\"messages_saved\":" +
           std::to_string(m.GetCounter("flush.messages_saved")->Value()) + ",";
    out += "\"watermark_skips\":" +
           std::to_string(m.GetCounter("flush.watermark_skips")->Value()) + ",";
    out += "\"requests_sent\":" +
           std::to_string(m.GetCounter("flush.requests_sent")->Value()) + ",";
    out += "\"peer_flushes_saved\":" +
           std::to_string(m.GetCounter("flush.peer_flushes_saved")->Value()) +
           ",";
    out += "\"in_flight\":" + std::to_string(flush_agg_->InFlightForTest()) +
           ",";
    out += "\"pending_legs\":" +
           std::to_string(flush_agg_->WaiterCountForTest()) + ",";
    out += "\"flight_batch\":" +
           obs::SnapshotJson(m.GetHistogram("flush.flight_batch")->Snap());
    out += "},";
  }
  // Per-session telemetry (obs/session_stats.h), id-sorted.
  out += "\"telemetry\":" + obs::SessionTelemetryJson(SessionTelemetry()) + ",";

  out += "\"histograms\":{";
  out += "\"queue_wait_ms\":" + obs::SnapshotJson(hist_queue_wait_ms_->Snap());
  out += ",\"execute_ms\":" + obs::SnapshotJson(hist_execute_ms_->Snap());
  out += ",\"flush_wait_ms\":" + obs::SnapshotJson(hist_flush_wait_ms_->Snap());
  out += ",\"request_ms\":" + obs::SnapshotJson(hist_request_ms_->Snap());
  out += ",\"replay_ms\":" + obs::SnapshotJson(hist_replay_ms_->Snap());
  out += "}}";
  return out;
}

}  // namespace msplog
