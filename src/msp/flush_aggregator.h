// FlushAggregator / InboundFlushCoalescer — group commit for the peer legs
// of distributed log flushes (§3.1): the distributed analogue of the §5.5
// batch flusher.
//
// A pessimistic boundary (client reply, cross-domain call) forces every
// remote dependency in the session's DV durable at its peer. Without
// aggregation, N concurrent repliers cost N kFlushRequest round trips and up
// to N physical flushes at the peer even when a single request to the
// DV-maximum state number would satisfy them all. The wire format already
// permits this: `flush_sn` is a "flush up to" bound (ARIES flush-to-LSN), so
// one in-flight request covers every leg with a smaller state number of the
// same epoch.
//
// Sender side (FlushAggregator). Each peer has at most one open *flight* —
// an in-flight kFlushRequest with a target StateId. A submitted leg either:
//   * skips   — the durable watermark already covers it (no leg at all);
//   * joins   — its id is ≤ the open flight's target, so that flight's
//               completion settles it too (no message sent);
//   * queues  — it exceeds the open flight's target; queued legs accumulate
//               and dispatch as ONE max-target flight when the flight lands;
//   * launches — no open flight: it becomes a new flight immediately.
// All four outcomes are decided under one aggregator lock pass. A failed
// flight settles *every* joined leg exactly as per-leg requests would have:
// legs at or below the peer's recovered (epoch, sn) are durable, everything
// above is orphaned with that recovered state number as the witness.
//
// Receiver side (InboundFlushCoalescer). Concurrent kFlushRequests drain
// through one batching loop: the first arrival becomes the drainer, flushes
// to the batch maximum with a single LogFile::FlushUpTo, and replies to all
// covered requests from that one completion.
//
// Threading: the aggregator mutex orders before each call's rendezvous
// mutex (msp.flush_agg → msp.flush_call). Sends happen via an injected
// callback; SimNetwork::Send never blocks on model time, so sending under
// the aggregator lock is safe.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "audit/mutex.h"
#include "common/bytes.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "recovery/state_id.h"
#include "rpc/message.h"
#include "sim/sim_env.h"

namespace msplog {

/// Completion rendezvous for one DistributedFlushImpl call: every leg the
/// call submits settles against this object, so the caller waits on ONE
/// condition variable with one deadline instead of polling legs in turn.
struct FlushCall {
  audit::Mutex mu{"msp.flush_call"};
  audit::CondVar cv;
  size_t unsettled GUARDED_BY(mu) = 0;  ///< legs not yet settled
  bool fatal GUARDED_BY(mu) = false;    ///< some settled leg was not ok
};

/// One leg of one distributed flush: "make (epoch, sn) durable at `peer`".
struct FlushWaiter {
  std::shared_ptr<FlushCall> call;
  MspId peer;
  StateId id;
  obs::SpanContext span;  ///< the submitting flush's span (trace parent)

  // -- outcome, guarded by the rendezvous mutex --
  bool settled GUARDED_BY(call->mu) = false;
  bool ok GUARDED_BY(call->mu) = false;
  bool timed_out GUARDED_BY(call->mu) = false;
  bool crashed GUARDED_BY(call->mu) = false;
  /// Authoritative-failure witness (0 = none).
  uint32_t orphan_epoch GUARDED_BY(call->mu) = 0;
  uint64_t orphan_sn GUARDED_BY(call->mu) = 0;

  // -- flight bookkeeping, guarded by FlushAggregator::mu_ --
  uint64_t flight_id = 0;       ///< 0 = queued behind the peer's open flight
  uint64_t observed_round = 0;  ///< resend round-guard (one resend per round)
};

class FlushAggregator {
 public:
  struct Options {
    MspId self;
    /// Join/accumulate legs per peer. When false every leg launches its own
    /// flight — today's per-request behaviour, kept for the ablation knob.
    bool coalesce = true;
    /// Send rounds per flight before its waiters settle as timed out.
    uint32_t max_rounds = 200;
  };
  using SendFn = std::function<void(const MspId& peer, const Bytes& wire)>;

  FlushAggregator(SimEnvironment* env, Options opts, SendFn send);

  /// Submit one leg. Returns nullptr when the durable watermark already
  /// covers `id` (nothing to wait for); otherwise a waiter registered with
  /// `call` whose settlement the caller awaits on call->cv.
  std::shared_ptr<FlushWaiter> Submit(const MspId& peer, StateId id,
                                      const std::shared_ptr<FlushCall>& call,
                                      const obs::SpanContext& parent_span);

  /// Route a kFlushReply to its flight: success settles every joined leg and
  /// advances the watermark to the flight target; authoritative failure
  /// settles each leg against the recovered (epoch, sn); non-authoritative
  /// failure resends. Either way, legs queued behind the flight dispatch.
  void HandleReply(const Message& m);

  /// Called by the waiting thread after a timeout round with no settlement:
  /// resends the stalled flight (once per round across all its waiters) or,
  /// past the round budget, times the whole flight out.
  void OnWaitTimeout(const std::shared_ptr<FlushWaiter>& w);

  /// Detach a waiter whose caller stopped caring (early exit on another
  /// leg's orphan/crash). If its flight has no waiters left the flight is
  /// dropped so queued legs are not stuck behind it.
  void Abandon(const std::shared_ptr<FlushWaiter>& w);

  /// Crash: settle every in-flight and queued leg as crashed, drop state.
  void FailAll();

  /// Start/restart: drop watermarks, flights and queues (FailAll first if
  /// any legs are still registered).
  void Reset();

  /// Highest (epoch, sn) known durable at `peer`, if any.
  std::optional<StateId> WatermarkForTest(const MspId& peer) const;
  size_t InFlightForTest() const;
  /// Unsettled legs held by the aggregator (joined + queued).
  size_t WaiterCountForTest() const;

 private:
  struct Flight {
    MspId peer;
    StateId target;
    uint64_t round = 0;     ///< send rounds so far (1 = initial send)
    Bytes wire;             ///< encoded kFlushRequest, resent verbatim
    obs::SpanContext span;  ///< the flight's own span (joined legs parent it)
    std::vector<std::shared_ptr<FlushWaiter>> waiters;
  };
  struct PeerState {
    StateId watermark;  ///< highest (epoch, sn) known durable at the peer
    uint64_t current_flight_id = 0;  ///< coalescing: the peer's open flight
    std::vector<std::shared_ptr<FlushWaiter>> queued;
    StateId queued_target;  ///< max id among queued
  };

  void LaunchLocked(const MspId& peer, PeerState& ps, StateId target,
                    std::vector<std::shared_ptr<FlushWaiter>> waiters,
                    const obs::SpanContext& parent_span) REQUIRES(mu_);
  void LaunchQueuedLocked(const MspId& peer, PeerState& ps) REQUIRES(mu_);
  void TimeOutFlightLocked(uint64_t flight_id) REQUIRES(mu_);
  void AdvanceWatermarkLocked(PeerState& ps, StateId id) REQUIRES(mu_);
  /// Settle `w` (idempotent): takes call->mu under mu_, wakes the caller.
  void SettleLocked(const std::shared_ptr<FlushWaiter>& w, bool ok,
                    bool timed_out, bool crashed, uint32_t orphan_epoch,
                    uint64_t orphan_sn) REQUIRES(mu_);

  SimEnvironment* env_;
  Options opts_;
  SendFn send_;

  mutable audit::Mutex mu_{"msp.flush_agg"};
  std::map<MspId, PeerState> peers_ GUARDED_BY(mu_);
  std::map<uint64_t, Flight> flights_ GUARDED_BY(mu_);
  uint64_t next_flush_id_ GUARDED_BY(mu_) = 1;

  // Observability handles (owned by the environment's registry).
  obs::Counter* ctr_legs_;        ///< "flush.legs_requested"
  obs::Counter* ctr_coalesced_;   ///< "flush.legs_coalesced" (in-flight joins)
  obs::Counter* ctr_msgs_saved_;  ///< "flush.messages_saved"
  obs::Counter* ctr_skips_;       ///< "flush.watermark_skips"
  obs::Counter* ctr_sent_;        ///< "flush.requests_sent"
  obs::Histogram* hist_batch_;    ///< "flush.flight_batch" legs per flight
};

/// Receiver-side group commit: concurrent kFlushRequest handlers enqueue
/// here; one drainer flushes to the batch maximum and replies to every
/// covered request from the single LogFile::FlushUpTo completion.
class InboundFlushCoalescer {
 public:
  struct Request {
    MspId sender;
    uint64_t flush_id = 0;
    uint64_t flush_sn = 0;
  };
  using FlushFn = std::function<Status(uint64_t flush_sn)>;
  using ReplyFn = std::function<void(const Request&)>;

  InboundFlushCoalescer(SimEnvironment* env, FlushFn flush, ReplyFn reply);

  /// Queue one request. The calling thread becomes the drainer if none is
  /// active; otherwise it returns immediately and the active drainer's next
  /// batch covers the request. On flush failure (we are crashing) the whole
  /// batch is dropped silently — recovery gives the authoritative answer.
  void Enqueue(Request r);

 private:
  void Drain();

  FlushFn flush_;
  ReplyFn reply_;

  audit::Mutex mu_{"msp.flush_inbound"};
  bool draining_ GUARDED_BY(mu_) = false;
  std::vector<Request> queue_ GUARDED_BY(mu_);

  obs::Counter* ctr_flushes_saved_;  ///< "flush.peer_flushes_saved"
  obs::Histogram* hist_batch_;       ///< "flush.inbound_batch"
};

}  // namespace msplog
