// SharedVariable — passive recovery unit shared by all sessions of an MSP
// (§2.2, §3.3). Access is protected by a per-variable read/write lock held
// only for the duration of the access (so no deadlocks and no lock table).
// The variable carries its own DV and state number (the LSN of its most
// recent write); writes form a backward chain through the log that breaks
// at shared-variable checkpoints, enabling undo-style orphan recovery by
// whichever session trips over the orphan value.
#pragma once

#include <cstdint>
#include <string>

#include "audit/mutex.h"
#include "common/bytes.h"
#include "recovery/dependency_vector.h"

namespace msplog {

class SharedVariable {
 public:
  SharedVariable(std::string name, Bytes initial)
      : name(std::move(name)),
        initial_value(initial),
        value(std::move(initial)) {}

  const std::string name;
  const Bytes initial_value;

  // The lock is declared before the state it guards so the GUARDED_BY
  // expressions below can name it.
  audit::SharedMutex rw{"shared_var.rw"};

  Bytes value GUARDED_BY(rw);
  DependencyVector dv GUARDED_BY(rw);  ///< dependency of the current value
  /// LSN of the most recent write (0 = initial).
  uint64_t state_number GUARDED_BY(rw) = 0;
  /// Head of the backward write chain.
  uint64_t last_write_lsn GUARDED_BY(rw) = 0;
  uint64_t last_checkpoint_lsn GUARDED_BY(rw) = 0;
  uint32_t writes_since_cp GUARDED_BY(rw) = 0;
  uint32_t msp_cps_since_cp GUARDED_BY(rw) = 0;
};

}  // namespace msplog
