// lint:hot-path
#include "msp/thread_pool.h"

#include <chrono>

namespace msplog {

namespace {
// Belt-and-braces bound on an idle worker's sleep. The eventcount protocol
// (sleepers_ + seq_cst fence) makes a lost wakeup impossible in theory; the
// timed re-poll makes liveness immune to the theory being wrong on some
// exotic platform, at the cost of one empty TryPop per idle worker per tick.
constexpr auto kIdleRepoll = std::chrono::milliseconds(50);
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(Task task) {
  if (stop_.load(std::memory_order_acquire)) return false;
  queue_.Push(std::move(task));
  // Publish-then-check (Dekker): the fence orders our push against the
  // sleeper count read; a worker that missed the item must have registered
  // in sleepers_ first, so we see it here and wake it.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (sleepers_.load(std::memory_order_relaxed) > 0) {
    audit::LockGuard lk(mu_);
    cv_.notify_all();
  }
  return true;
}

void ThreadPool::Shutdown() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  {
    audit::LockGuard lk(mu_);
    cv_.notify_all();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Abort() {
  if (!stop_.exchange(true, std::memory_order_acq_rel)) {
    discard_.store(true, std::memory_order_release);
  }
  {
    audit::LockGuard lk(mu_);
    cv_.notify_all();
  }
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  // Free anything the workers left behind (they drop instead of run under
  // discard_, but a task pushed after the last worker exited would sit in
  // the ring until destruction otherwise).
  Task dropped;
  while (queue_.TryPop(&dropped)) dropped = Task();
}

void ThreadPool::WorkerLoop() {
  Task task;
  while (true) {
    if (queue_.TryPop(&task)) {
      if (discard_.load(std::memory_order_relaxed)) {
        task = Task();
        continue;
      }
      task();
      task = Task();
      continue;
    }
    // Queue looked empty: enter the eventcount sleep protocol. The
    // seq_cst increment pairs with Submit's fence — after registering we
    // re-poll, so either we see the producer's item or the producer sees
    // our registration and notifies.
    audit::UniqueLock lk(mu_);
    // Stay registered in sleepers_ for the whole idle period — including
    // across the timed wait — so a producer arriving at any point sees a
    // nonzero count and posts the notify.
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    for (;;) {
      if (queue_.TryPop(&task)) break;
      if (stop_.load(std::memory_order_acquire)) {
        sleepers_.fetch_sub(1, std::memory_order_relaxed);
        return;
      }
      cv_.wait_for(lk, kIdleRepoll);
    }
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    lk.unlock();
    if (discard_.load(std::memory_order_relaxed)) {
      task = Task();
      continue;
    }
    task();
    task = Task();
  }
}

}  // namespace msplog
