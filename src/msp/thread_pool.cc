#include "audit/mutex.h"
#include "msp/thread_pool.h"

namespace msplog {

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    audit::LockGuard lk(mu_);
    if (stop_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    audit::LockGuard lk(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::Abort() {
  {
    audit::LockGuard lk(mu_);
    if (!stop_) {
      stop_ = true;
      discard_ = true;
      queue_.clear();
    }
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

size_t ThreadPool::queued() const {
  audit::LockGuard lk(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      audit::UniqueLock lk(mu_);
      cv_.wait(lk, [&] {
        mu_.AssertHeld();
        return stop_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stop_ and drained (or discarded)
      if (discard_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace msplog
