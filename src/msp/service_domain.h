// Service domains (§1.3, §2.1): disjoint groups of tightly associated MSPs
// with fast, reliable communication. Message exchanges *within* a domain use
// optimistic logging (attach DV, no flush); exchanges *across* domain
// boundaries — including all traffic with end clients, which belong to no
// domain — use pessimistic logging (distributed log flush before send).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "audit/mutex.h"

namespace msplog {

class DomainDirectory {
 public:
  /// Place `msp` in `domain`. An MSP belongs to exactly one domain.
  void Assign(const std::string& msp, const std::string& domain);

  /// Domain of `id`, or nullopt for end clients / unknown endpoints.
  std::optional<std::string> DomainOf(const std::string& id) const;

  /// True iff both ids are MSPs configured into the same domain.
  bool SameDomain(const std::string& a, const std::string& b) const;

  /// All members of `id`'s domain except `id` itself (recovery-broadcast
  /// and distributed-flush fan-out set). Empty for end clients.
  std::vector<std::string> PeersOf(const std::string& id) const;

 private:
  mutable audit::Mutex mu_{"service_domain"};
  std::map<std::string, std::string> domain_of_ GUARDED_BY(mu_);
};

}  // namespace msplog
