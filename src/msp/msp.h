// Msp — a recoverable Middleware Server Process, the system of the paper.
//
// An Msp serves client-initiated requests with a thread pool, maintains
// private per-session state and shared in-memory state, and — in
// RecoveryMode::kLogBased — makes all of it recoverable through:
//
//   * locally optimistic logging (§3.1): DV-tagged optimistic messages
//     inside the service domain, pessimistic distributed log flushes across
//     domain boundaries and toward end clients;
//   * per-session DVs and state numbers (§3.2), so sessions are independent
//     recovery units inside the crash unit that is the MSP;
//   * value logging with backward write chains for shared variables (§3.3);
//   * independent session / shared-variable checkpoints plus fuzzy MSP
//     checkpoints anchored ARIES-style (§3.4);
//   * crash recovery with a single analysis scan followed by parallel
//     session replay, and lazy orphan recovery driven by recovery
//     broadcasts (§4).
//
// Crash semantics: Crash() discards everything volatile — the log buffer,
// position buffers, sessions, shared-variable values, pending calls — and
// unregisters the network endpoint. Start() afterwards re-runs crash
// recovery from the durable log, exactly as a restarted OS process would.
//
// The other RecoveryModes implement the paper's §5 baselines (NoLog,
// Psession, StateServer) over the same runtime.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "audit/mutex.h"
#include "common/bytes.h"
#include "common/status.h"
#include "db/kvdb.h"
#include "log/log_anchor.h"
#include "log/log_file.h"
#include "msp/flush_aggregator.h"
#include "msp/msp_config.h"
#include "msp/service_context.h"
#include "msp/service_domain.h"
#include "msp/session.h"
#include "msp/shared_variable.h"
#include "msp/thread_pool.h"
#include "obs/flight_recorder.h"
#include "obs/outage_report.h"
#include "obs/recovery_timeline.h"
#include "recovery/recovered_state_table.h"
#include "rpc/message.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {

class ExecContext;
class ReplayCursor;
class RecoveryCoordinator;

/// Typed designator for Msp::ForceCheckpoint — the one entry point behind
/// which the three checkpoint kinds of §3.4 (whole-MSP fuzzy checkpoint,
/// per-session checkpoint, shared-variable checkpoint) now live.
struct CheckpointTarget {
  enum class Kind { kMsp, kSession, kSharedVar };
  Kind kind = Kind::kMsp;
  /// Session id (kSession) or shared-variable name (kSharedVar).
  std::string name;

  static CheckpointTarget Msp() { return {Kind::kMsp, ""}; }
  static CheckpointTarget Session(std::string id) {
    return {Kind::kSession, std::move(id)};
  }
  static CheckpointTarget SharedVar(std::string var) {
    return {Kind::kSharedVar, std::move(var)};
  }
};

class Msp {
 public:
  Msp(SimEnvironment* env, SimNetwork* network, SimDisk* disk,
      DomainDirectory* directory, MspConfig config);
  ~Msp();

  Msp(const Msp&) = delete;
  Msp& operator=(const Msp&) = delete;

  // ---- setup (before Start) ----
  void RegisterMethod(const std::string& name, ServiceMethod fn);
  void RegisterSharedVariable(const std::string& name, Bytes initial);

  // ---- lifecycle ----
  /// Boot the server. If a durable log exists (kLogBased), runs crash
  /// recovery (§4.3) before accepting traffic; sessions then recover in
  /// parallel while new sessions are served.
  Status Start();

  /// Graceful stop: flushes the log, joins all threads, unregisters.
  void Shutdown();

  /// Abrupt failure: volatile state is lost; the durable log survives.
  void Crash();

  bool running() const { return state_.load() == State::kRunning; }
  uint32_t epoch() const { return epoch_.load(); }
  const MspConfig& config() const { return config_; }
  SimEnvironment* env() const { return env_; }
  LogFile* log() const { return log_.get(); }

  // ---- explicit checkpoint triggers (also driven by the daemon) ----
  /// Force a checkpoint of `target` now: the whole MSP (fuzzy, §3.4), one
  /// session, or one shared variable. The typed target replaces the former
  /// ForceMspCheckpoint / ForceSessionCheckpoint / ForceSharedVarCheckpoint
  /// triple.
  Status ForceCheckpoint(const CheckpointTarget& target);

  /// Deprecated: thin wrappers over ForceCheckpoint(CheckpointTarget); use
  /// the typed entry point in new code.
  Status ForceMspCheckpoint() {
    return ForceCheckpoint(CheckpointTarget::Msp());
  }
  Status ForceSessionCheckpoint(const std::string& session_id) {
    return ForceCheckpoint(CheckpointTarget::Session(session_id));
  }
  Status ForceSharedVarCheckpoint(const std::string& name) {
    return ForceCheckpoint(CheckpointTarget::SharedVar(name));
  }

  // ---- crash-injection & instrumentation hooks ----
  /// Invoked after each successfully processed request (not during replay).
  using RequestHook =
      std::function<void(Msp*, const std::string& session_id, uint64_t seqno)>;
  void SetAfterRequestHook(RequestHook hook) {
    after_request_hook_ = std::move(hook);
  }

  /// Test hook for the protocol auditor: silently lower `session_id`'s own
  /// DV entry, simulating a dependency-dropping bug. The dv-monotonic
  /// invariant check must trip on the session's next request.
  void InjectDvRegressionForTest(const std::string& session_id);

  // ---- introspection for tests and benchmarks ----
  StatusOr<Bytes> PeekSessionVar(const std::string& session_id,
                                 const std::string& var) const;
  StatusOr<Bytes> PeekSharedValue(const std::string& name) const;
  StatusOr<uint64_t> PeekNextExpectedSeqno(const std::string& session_id) const;
  std::vector<uint64_t> PeekPositionStream(const std::string& session_id) const;
  bool HasSession(const std::string& session_id) const;
  size_t SessionCount() const;
  RecoveredStateTable SnapshotRecoveredTable() const;

  /// Unsettled distributed-flush legs (joined to flights + queued) held by
  /// the flush aggregator; 0 after a crash proves no leaked flush state.
  size_t PendingFlushLegsForTest() const;
  /// In-flight coalesced flush requests (one per open flight).
  size_t InFlightFlushesForTest() const;

  /// Structured timeline of the most recent crash recovery: analysis-scan
  /// duration and volume, per-session replay phases, parallelism achieved,
  /// and orphan-recovery events observed since that recovery started.
  obs::RecoveryTimeline LastRecoveryTimeline() const;

  /// Bounded history of recovery timelines, oldest first, ending with the
  /// in-progress/most-recent one. At most kRecoveryHistoryLimit entries are
  /// retained; `max_n` (0 = all retained) trims to the most recent n.
  std::vector<obs::RecoveryTimeline> RecentRecoveryTimelines(
      size_t max_n = 0) const;

  /// Outage report of the most recent crash recovery: the recovery-side
  /// join of the flight recorder's frozen pre-crash bundle with the replay
  /// — per-session fate (replayed / orphaned / never-logged), per-session
  /// time-to-servable, and MTTR percentiles. `valid` is false until a crash
  /// bundle has been joined; `complete` once every fate is resolved.
  obs::OutageReport LastOutageReport() const;

  /// Crashes this Msp has suffered (Crash() calls; graceful Shutdown does
  /// not count). Monotonic across restarts — generation stamps the flight
  /// recorder bundles.
  uint64_t crash_generation() const { return crash_generation_.load(); }

  /// Per-session provenance of the most recent recovery: which checkpoints
  /// rebuilt each session and which (epoch, seqno, LSN) log records its
  /// replay consumed. Lazy orphan recoveries update their session's entry.
  std::vector<obs::RecoveryTimeline::SessionProvenance> RecoveryProvenance()
      const;

  /// Per-session telemetry snapshots (obs/session_stats.h), id-sorted.
  /// Relaxed-atomic reads; safe from any thread while workers run.
  std::vector<obs::SessionStatsSnapshot> SessionTelemetry() const;

  /// Register this server's per-session aggregate probes with a scraper
  /// ("<id>.sessions", "<id>.queued_requests", "<id>.telemetry.requests",
  /// "<id>.telemetry.flush_stalls"). The probes capture `this`: the Msp
  /// must outlive the scraper's sampling (stop the scraper first).
  void RegisterTelemetryProbes(obs::MetricsScraper* scraper) const;

  /// One-call structured snapshot of the server ("/statusz"): identity,
  /// lifecycle state, epoch, session/queue occupancy, log extents,
  /// per-session telemetry, and latency-histogram quantiles. JSON; safe to
  /// call from any thread.
  std::string DumpStatusz() const;

 private:
  friend class ExecContext;
  friend class RecoveryCoordinator;

  enum class State { kStopped, kRecovering, kRunning, kCrashed };

  /// Block until no worker or recovery thread owns `s` (test-hook helper;
  /// establishes happens-before with the owner thread's last writes).
  void QuiesceSession(Session* s) const;

  /// Crash/stop body; caller holds lifecycle_mu_. `is_crash` distinguishes
  /// a simulated fault (bumps the crash generation and freezes a flight
  /// recorder bundle) from a graceful Shutdown teardown.
  void CrashLocked(bool is_crash) REQUIRES(lifecycle_mu_);

  /// Snapshot provider registered with the environment's flight recorder:
  /// statusz + in-flight session set + log tail extent, captured at freeze
  /// time (i.e. from inside CrashLocked or an invariant violation hook).
  obs::FlightSnapshot BuildFlightSnapshot() const;

  // ---- threads ----
  void DispatchLoop();
  void CheckpointDaemonLoop();
  void SessionWorker(std::shared_ptr<Session> s);

  // ---- message handling ----
  void HandleRequestMsg(Message m);
  void HandleReplyMsg(Message m);
  void HandleFlushRequest(Message m);
  void HandleFlushReply(Message m);
  void HandleRecoveryAnnounce(Message m);
  void SendBusyReply(const Message& req);
  void SendFlushReply(const std::string& to, uint64_t flush_id, bool ok,
                      uint32_t rec_epoch, uint64_t rec_sn);

  // ---- request processing ----
  void ProcessRequest(const std::shared_ptr<Session>& s, const Message& m,
                      const obs::SpanContext& span);
  Status ProcessRequestLogBased(Session* s, const Message& m,
                                const obs::SpanContext& span);
  Status ProcessRequestBaseline(Session* s, const Message& m,
                                const obs::SpanContext& span);
  Status InvokeMethod(const std::string& method, ExecContext* ctx,
                      const Bytes& arg, Bytes* result);
  Status SendReply(Session* s, ReplyCode code, const Bytes& payload,
                   uint64_t seqno, const obs::SpanContext& span = {});

  // ---- normal-execution primitives (called via ExecContext) ----
  uint64_t AppendSessionRecord(Session* s, LogRecord rec);
  Status SharedReadImpl(Session* s, const std::string& name, Bytes* out);
  Status SharedWriteImpl(Session* s, const std::string& name, ByteView value);
  Status SharedUpdateImpl(Session* s, const std::string& name,
                          const std::function<Bytes(const Bytes&)>& fn,
                          Bytes* out);
  Status OutgoingCallImpl(Session* s, const std::string& target,
                          const std::string& method, ByteView arg,
                          Bytes* reply, const obs::SpanContext& parent_span = {});
  std::shared_ptr<SharedVariable> GetOrCreateSharedVar(const std::string& name);

  /// Send `req` to `dest` and await the matching reply, resending on loss
  /// and backing off on Busy. If `check_orphan_reply` is set, replies whose
  /// attached DV is an orphan are discarded (Fig. 7) and the wait continues.
  /// `max_sends` of 0 uses the configured retry budget. `dv_wire`, when
  /// set, is the pre-encoded DV spliced into the wire image in place of
  /// `req.dv` (zero-copy piggybacking; `req.has_dv` must be true).
  Status CallRoundTrip(const std::string& dest, const Message& req,
                       bool check_orphan_reply, Message* out,
                       uint32_t max_sends = 0, const Bytes* dv_wire = nullptr);

  // ---- distributed log flush (§3.1) ----
  /// Timing/tracing wrapper around DistributedFlushImpl. `span` is the
  /// request span stalled on this flush; the flush records a child span.
  /// When `stats_session` is set, the stall is attributed to that session's
  /// telemetry (forced flush + stall time).
  Status DistributedFlush(const DependencyVector& dv,
                          const obs::SpanContext& span = {},
                          Session* stats_session = nullptr);
  /// Submits the peer legs to the flush aggregator (skip/join/queue/launch
  /// decided per leg), flushes the local leg, then awaits every leg with a
  /// single deadline-driven wait on one condition variable.
  Status DistributedFlushImpl(const DependencyVector& dv,
                              const obs::SpanContext& span);

  // ---- orphan machinery ----
  bool SessionIsOrphan(const Session* s) const;
  /// Ablation (per_session_dv = false): the union of every live session's
  /// DV — the single process-wide vector of the §3.2 strawman.
  DependencyVector MspWideDv() const;
  bool DvIsOrphan(const DependencyVector& dv) const;
  /// Roll `var` back along its backward write chain to the most recent
  /// non-orphan value (§4.2). Caller holds the variable's unique lock.
  Status UndoSharedVariable(SharedVariable* var);
  /// Write the EOS record and truncate the position stream (§4.1).
  void OrphanCut(Session* s, uint64_t orphan_lsn);

  // ---- checkpoints (§3.2–§3.4) ----
  Status TakeSessionCheckpoint(Session* s, const obs::SpanContext& span = {});
  Status TakeSharedVarCheckpoint(SharedVariable* var);
  /// `force_units` also force-checkpoints stale/uncheckpointed sessions and
  /// shared variables (§3.4); recovery passes false because peer flushes are
  /// not yet serviceable at that point.
  Status TakeMspCheckpoint(bool force_units);
  /// ForceCheckpoint bodies for the session / shared-variable kinds.
  Status ForceSessionCheckpointImpl(const std::string& session_id);
  Status ForceSharedVarCheckpointImpl(const std::string& name);

  // ---- recovery (§4) ----
  /// Thin wrapper over RecoveryCoordinator: analysis pass + open
  /// preparation. Session replay is NOT awaited — Start() kicks off the
  /// background drain and HandleRequestMsg admits sessions on demand.
  Status CrashRecovery();
  /// Replay loop handling repeated orphan-ness under multiple crashes.
  /// `from_crash` marks replays launched by crash recovery (vs lazy orphan
  /// recovery) in the recovery timeline.
  Status RecoverSessionReplay(Session* s, bool from_crash = false);
  /// One replay pass from the latest checkpoint along the position stream.
  /// `replayed_out`, when set, accumulates the number of requests replayed.
  /// `prov`, when set, is overwritten with this pass's provenance (the
  /// checkpoint initialized from and every request record consumed).
  Status ReplayOnce(Session* s, uint64_t* replayed_out = nullptr,
                    obs::RecoveryTimeline::SessionProvenance* prov = nullptr);
  /// Claim-and-replay one session (no-op if it already replayed or another
  /// replay owns it). `on_demand` marks admissions triggered by a live
  /// request (vs the background drain) in the recovery timeline.
  void SessionRecoveryTask(std::shared_ptr<Session> s, bool on_demand = false);

  // ---- baseline substrate ----
  Status FetchBaselineState(Session* s, bool* found);
  Status StoreBaselineState(Session* s);

  // ---- helpers ----
  /// Charge model CPU time; serialized on the MSP's core when
  /// config.single_core_cpu is set.
  void ChargeCpu(double model_ms);
  bool IntraDomain(const std::string& other) const;
  int64_t RealWaitMs(double model_ms) const;
  std::shared_ptr<Session> GetSession(const std::string& id) const;

  SimEnvironment* env_;
  SimNetwork* network_;
  SimDisk* disk_;
  DomainDirectory* directory_;
  MspConfig config_;

  /// Serializes Start / Crash / Shutdown against each other (crash
  /// injection may fire while a previous restart is still in progress).
  audit::Mutex lifecycle_mu_{"msp.lifecycle"};
  std::atomic<State> state_{State::kStopped};
  std::atomic<uint32_t> epoch_{0};

  // Lifecycle substrate: (re)built in Start() before any worker thread
  // exists and torn down in Crash()/Shutdown() after quiesce, with the
  // cycles serialized by lifecycle_mu_ — so these handles are stable
  // whenever another thread can observe them.
  std::unique_ptr<LogFile> log_;             // audit:allow(guarded-by)
  LogAnchor anchor_;                         // audit:allow(guarded-by)
  std::unique_ptr<ThreadPool> pool_;         // audit:allow(guarded-by)
  std::unique_ptr<ThreadPool> control_pool_; // audit:allow(guarded-by)
  std::shared_ptr<Mailbox> mailbox_;         // audit:allow(guarded-by)
  std::thread dispatch_thread_;
  std::thread checkpoint_thread_;
  audit::Mutex cp_mu_{"msp.cp"};
  audit::CondVar cp_cv_;
  bool cp_stop_ GUARDED_BY(cp_mu_) = false;

  /// Guards the session *table* and the per-session scheduling flags
  /// (Session::pending_requests / worker_active / recovering /
  /// needs_orphan_check / needs_checkpoint / ended) — a cross-class guard
  /// the static analysis cannot express; the auditor's lock-order tracking
  /// still covers it at runtime.
  mutable audit::Mutex sessions_mu_{"msp.sessions"};
  std::map<std::string, std::shared_ptr<Session>> sessions_
      GUARDED_BY(sessions_mu_);

  mutable audit::Mutex vars_mu_{"msp.vars"};
  std::map<std::string, std::shared_ptr<SharedVariable>> shared_vars_
      GUARDED_BY(vars_mu_);

  /// Written only before Start() (RegisterMethod), read-only afterwards:
  /// no lock by design.
  std::map<std::string, ServiceMethod> methods_;  // audit:allow(guarded-by)

  mutable audit::Mutex table_mu_{"msp.table"};
  RecoveredStateTable recovered_table_ GUARDED_BY(table_mu_);

  struct PendingCall {
    audit::Mutex mu{"msp.pending"};
    audit::CondVar cv;
    bool done GUARDED_BY(mu) = false;
    bool failed GUARDED_BY(mu) = false;
    Message reply GUARDED_BY(mu);
  };
  audit::Mutex calls_mu_{"msp.calls"};
  std::map<std::pair<std::string, uint64_t>, std::shared_ptr<PendingCall>>
      pending_calls_ GUARDED_BY(calls_mu_);

  /// Sender-side group commit for distributed-flush legs: per-peer durable
  /// watermark (skip), in-flight flight state (join/queue) and dispatch.
  /// Created once (internally locked); Reset() on Start, FailAll() on
  /// crash.
  std::unique_ptr<FlushAggregator> flush_agg_;  // audit:allow(guarded-by)
  /// Receiver-side group commit: concurrent kFlushRequests ride one
  /// LogFile::FlushUpTo. Rebuilt on every Start (binds the fresh log),
  /// before the dispatch thread that uses it exists.
  std::unique_ptr<InboundFlushCoalescer>
      inbound_flush_;  // audit:allow(guarded-by)

  /// Serializes MSP checkpoints.
  audit::Mutex msp_cp_mu_{"msp.msp_cp"};
  /// The single CPU core (config.single_core_cpu).
  audit::Mutex cpu_mu_{"msp.cpu"};

  /// Log extent as of the last MSP checkpoint. Atomic: written under
  /// msp_cp_mu_ (and in Start before threads exist) but read by the
  /// checkpoint daemon's staleness test without any lock.
  std::atomic<uint64_t> last_msp_cp_log_end_{0};
  /// Test instrumentation, installed before Start().
  RequestHook after_request_hook_;  // audit:allow(guarded-by)

  /// Timeline of the most recent CrashRecovery(); session-replay entries
  /// (including lazy orphan recoveries) are appended as they finish.
  mutable audit::Mutex timeline_mu_{"msp.timeline"};
  obs::RecoveryTimeline last_recovery_timeline_ GUARDED_BY(timeline_mu_);
  /// Completed predecessors of last_recovery_timeline_, oldest first,
  /// trimmed to kRecoveryHistoryLimit.
  static constexpr size_t kRecoveryHistoryLimit = 8;
  std::deque<obs::RecoveryTimeline> recovery_history_ GUARDED_BY(timeline_mu_);
  /// Concurrent RecoverSessionReplay calls right now / high-water mark.
  std::atomic<uint32_t> active_replays_{0};

  /// The phased driver of the most recent crash recovery; rebuilt by each
  /// CrashRecovery() under lifecycle_mu_, and quiesced before replacement
  /// (pool tasks referencing it are joined by Crash/Shutdown).
  std::unique_ptr<RecoveryCoordinator>
      recovery_coordinator_;  // audit:allow(guarded-by)

  /// Queue depth across every session's pending_requests, maintained with
  /// relaxed increments/decrements at enqueue/dequeue so the telemetry
  /// scraper's "queued_requests" probe never takes sessions_mu_.
  std::atomic<uint64_t> queued_requests_{0};

  /// Scraper-safe handle to pool_: the probe thread dereferences the pool
  /// while Crash() may be resetting it, so the probe reads this pointer
  /// under its own tiny mutex and Crash nulls it before pool_.reset().
  mutable audit::Mutex probe_mu_{"msp.probe"};
  ThreadPool* probe_pool_ GUARDED_BY(probe_mu_) = nullptr;

  /// Crashes suffered (not graceful shutdowns); stamps flight bundles.
  std::atomic<uint64_t> crash_generation_{0};
  /// Model time the most recent Start() finished (any mode) — the anchor of
  /// "uptime since last recovery" in statusz and the scraper probe.
  std::atomic<double> last_start_end_ms_{0.0};
  /// The outage observatory's join state: the report for the most recent
  /// joined crash bundle, and the generation already joined (so a graceful
  /// restart does not re-join a stale bundle).
  obs::OutageReport last_outage_report_ GUARDED_BY(timeline_mu_);
  uint64_t outage_joined_generation_ GUARDED_BY(timeline_mu_) = 0;

  // Observability handles (owned by the environment's registry).
  obs::Histogram* hist_queue_wait_ms_;  ///< "msp.queue_wait_ms"
  obs::Histogram* hist_execute_ms_;     ///< "msp.execute_ms"
  obs::Histogram* hist_flush_wait_ms_;  ///< "msp.flush_wait_ms" (dist flush)
  obs::Histogram* hist_request_ms_;     ///< "msp.request_ms" (dequeue→done)
  obs::Histogram* hist_replay_ms_;      ///< "msp.replay_ms" per session replay
  obs::Counter* ctr_requests_;          ///< "msp.requests"
  obs::Gauge* gauge_crash_generation_;  ///< "<id>.crash_generation"

  /// Created in Start() before workers exist; KvDb is internally locked.
  std::unique_ptr<KvDb> psession_db_;  // audit:allow(guarded-by)
};

}  // namespace msplog
