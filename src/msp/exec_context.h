// Internal: the ServiceContext implementation and the replay cursor.
//
// The same service-method body runs in two modes:
//   kNormal — operations hit the live world and are value-logged;
//   kReplay — operations are fed from the session's logged records (§4.1):
//             shared reads return logged values, outgoing calls return
//             logged replies, shared writes are skipped.
//
// A replaying context *switches to live execution mid-method* when the next
// logged record is an orphan (§4.1 "Orphan Recovery End": the session skips
// the orphan record and everything after it, writes an EOS record, and
// "continues the action occurring at recovery end") or when the log simply
// ends (§4.3, crash recovery replay of a request whose tail was lost). From
// that point on, every operation of the re-executed method runs for real —
// re-execution seamlessly becomes execution, which is what yields
// exactly-once semantics for the in-flight request.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "log/log_file.h"
#include "log/log_record.h"
#include "msp/msp.h"
#include "msp/service_context.h"
#include "msp/session.h"

namespace msplog {

/// Iterates a session's log records along its position stream, reading the
/// durable region in 64 KB chunks (one disk read can serve many records —
/// the efficiency the paper measures in §5.4) and the volatile buffer
/// directly.
class ReplayCursor {
 public:
  ReplayCursor(LogFile* log, std::vector<uint64_t> positions);

  bool HasNext() const { return idx_ < positions_.size(); }
  /// Read (without consuming) the record at the current position.
  Status Peek(LogRecord* out);
  void Skip();
  uint64_t CurrentLsn() const { return positions_[idx_]; }
  /// Number of positions consumed (Skipped) so far — replay provenance.
  size_t consumed() const { return idx_; }

 private:
  Status ReadDurable(uint64_t lsn, LogRecord* out);

  LogFile* log_;
  std::vector<uint64_t> positions_;
  size_t idx_ = 0;
  Bytes chunk_;
  uint64_t chunk_base_ = 0;
  bool chunk_valid_ = false;
  bool cached_ = false;
  LogRecord cached_rec_;
};

class ExecContext : public ServiceContext {
 public:
  enum class Mode { kNormal, kReplay };

  ExecContext(Msp* msp, Session* s, Mode mode, uint64_t seqno,
              ReplayCursor* cursor = nullptr, obs::SpanContext span = {})
      : msp_(msp),
        s_(s),
        mode_(mode),
        seqno_(seqno),
        cursor_(cursor),
        span_(span),
        live_(mode == Mode::kNormal) {}

  // ---- ServiceContext ----
  const std::string& session_id() const override { return s_->id; }
  uint64_t request_seqno() const override { return seqno_; }
  bool in_replay() const override { return mode_ == Mode::kReplay && !live_; }

  Bytes GetSessionVar(const std::string& name) override;
  bool HasSessionVar(const std::string& name) const override;
  void SetSessionVar(const std::string& name, ByteView value) override;
  Status ReadShared(const std::string& name, Bytes* out) override;
  Status WriteShared(const std::string& name, ByteView value) override;
  Status UpdateShared(const std::string& name,
                      const std::function<Bytes(const Bytes&)>& fn,
                      Bytes* out) override;
  Status Call(const std::string& target_msp, const std::string& method,
              ByteView arg, Bytes* reply) override;
  void Compute(double model_ms) override;

  /// True once a replaying context has crossed into live execution.
  bool switched_live() const { return mode_ == Mode::kReplay && live_; }

  /// The request span this execution runs under (invalid when untraced).
  const obs::SpanContext& span() const { return span_; }

 private:
  /// Decide how a replay-mode operation proceeds:
  ///  - returns OK with *run_live=false and *rec filled: consume the logged
  ///    record (the caller must cursor_->Skip());
  ///  - returns OK with *run_live=true: the context switched to live
  ///    execution (orphan cut done if needed); run the operation normally;
  ///  - returns Internal: the position stream does not match the
  ///    re-execution (nondeterministic service method).
  Status NextForReplay(LogRecordType expected, const std::string& key,
                       LogRecord* rec, bool* run_live);

  Msp* msp_;
  Session* s_;
  Mode mode_;
  uint64_t seqno_;
  ReplayCursor* cursor_;
  obs::SpanContext span_;
  bool live_;
};

}  // namespace msplog
