#include "msp/postmortem.h"

#include <cstdio>
#include <map>

#include "log/log_record.h"
#include "log/log_scanner.h"
#include "obs/metrics.h"  // JsonEscape

namespace msplog {

namespace {

std::string FmtMs(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

const PostmortemSessionFate* PostmortemReport::Find(
    const std::string& session_id) const {
  for (const auto& f : sessions) {
    if (f.session_id == session_id) return &f;
  }
  return nullptr;
}

std::string PostmortemReport::Summary() const {
  std::string out;
  out += "post-mortem for " + actor + " (crash generation " +
         std::to_string(generation) + ")\n";
  out += "  crash at model " + FmtMs(crash_model_ms) + " ms, log durable to " +
         std::to_string(durable_at_crash) + " of " +
         std::to_string(image_bytes) + " bytes, " +
         std::to_string(records_scanned) + " records scanned\n";
  for (const auto& f : sessions) {
    out += "  session " + f.session_id + ": " + f.fate + " (first_lsn=" +
           std::to_string(f.first_lsn) + ", requests_logged=" +
           std::to_string(f.requests_logged) + ", eos_cuts_after_crash=" +
           std::to_string(f.eos_cuts_after_crash) + ")\n";
  }
  if (sessions.empty()) out += "  no in-flight sessions at the crash\n";
  return out;
}

std::string PostmortemReport::ToJson() const {
  std::string out = "{";
  out += "\"actor\":\"" + obs::JsonEscape(actor) + "\",";
  out += "\"generation\":" + std::to_string(generation) + ",";
  out += "\"crash_model_ms\":" + FmtMs(crash_model_ms) + ",";
  out += "\"durable_at_crash\":" + std::to_string(durable_at_crash) + ",";
  out += "\"records_scanned\":" + std::to_string(records_scanned) + ",";
  out += "\"image_bytes\":" + std::to_string(image_bytes) + ",";
  out += "\"sessions\":[";
  for (size_t i = 0; i < sessions.size(); ++i) {
    const auto& f = sessions[i];
    if (i) out += ",";
    out += "{\"session\":\"" + obs::JsonEscape(f.session_id) + "\",";
    out += "\"fate\":\"" + f.fate + "\",";
    out += "\"first_lsn\":" + std::to_string(f.first_lsn) + ",";
    out += "\"requests_logged\":" + std::to_string(f.requests_logged) + ",";
    out += "\"eos_cuts_after_crash\":" +
           std::to_string(f.eos_cuts_after_crash) + "}";
  }
  out += "]}";
  return out;
}

Status DerivePostmortem(SimDisk* disk, const std::string& file,
                        const PostmortemInput& in, PostmortemReport* report) {
  *report = PostmortemReport();
  report->actor = in.actor;
  report->generation = in.generation;
  report->crash_model_ms = in.crash_model_ms;
  report->durable_at_crash = in.durable_at_crash;
  report->image_bytes = disk->FileSize(file);
  if (report->image_bytes == 0) {
    return Status::NotFound("empty or missing log image: " + file);
  }

  // One full scan collects the per-session evidence; classification only
  // consults sessions the bundle names as in-flight.
  struct Evidence {
    uint64_t first_lsn = 0;
    uint64_t requests_before_crash = 0;
    uint64_t eos_after_crash = 0;
    bool durable_trace = false;  ///< any record below durable_at_crash
  };
  std::map<std::string, Evidence> evidence;

  LogScanner scanner(disk, file, /*start_lsn=*/0, report->image_bytes);
  while (true) {
    LogRecord rec;
    Status st = scanner.Next(&rec);
    if (st.IsNotFound()) break;
    if (st.IsCorruption()) break;  // torn tail: durable log ends here
    MSPLOG_RETURN_IF_ERROR(st);
    ++report->records_scanned;
    if (rec.session_id.empty()) continue;
    Evidence& e = evidence[rec.session_id];
    if (e.first_lsn == 0) e.first_lsn = rec.lsn;
    if (rec.lsn < in.durable_at_crash) {
      e.durable_trace = true;
      if (rec.type == LogRecordType::kRequestReceive) {
        ++e.requests_before_crash;
      }
    } else if (rec.type == LogRecordType::kEos) {
      ++e.eos_after_crash;
    }
  }

  for (const std::string& id : in.inflight_sessions) {
    PostmortemSessionFate f;
    f.session_id = id;
    auto it = evidence.find(id);
    if (it == evidence.end() || !it->second.durable_trace) {
      f.fate = "never-logged";
      if (it != evidence.end()) f.first_lsn = it->second.first_lsn;
    } else {
      f.first_lsn = it->second.first_lsn;
      f.requests_logged = it->second.requests_before_crash;
      f.eos_cuts_after_crash = it->second.eos_after_crash;
      f.fate = it->second.eos_after_crash > 0 ? "orphaned" : "replayed";
    }
    report->sessions.push_back(std::move(f));
  }
  return Status::OK();
}

}  // namespace msplog
