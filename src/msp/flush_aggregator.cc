#include "audit/mutex.h"
#include "msp/flush_aggregator.h"

#include <algorithm>
#include <utility>

namespace msplog {

FlushAggregator::FlushAggregator(SimEnvironment* env, Options opts, SendFn send)
    : env_(env), opts_(std::move(opts)), send_(std::move(send)) {
  obs::MetricsRegistry& m = env_->metrics();
  ctr_legs_ = m.GetCounter("flush.legs_requested");
  ctr_coalesced_ = m.GetCounter("flush.legs_coalesced");
  ctr_msgs_saved_ = m.GetCounter("flush.messages_saved");
  ctr_skips_ = m.GetCounter("flush.watermark_skips");
  ctr_sent_ = m.GetCounter("flush.requests_sent");
  hist_batch_ = m.GetHistogram("flush.flight_batch");
}

std::shared_ptr<FlushWaiter> FlushAggregator::Submit(
    const MspId& peer, StateId id, const std::shared_ptr<FlushCall>& call,
    const obs::SpanContext& parent_span) {
  audit::LockGuard lk(mu_);
  ctr_legs_->Add(1);
  PeerState& ps = peers_[peer];
  if (id <= ps.watermark) {
    ctr_skips_->Add(1);
    return nullptr;  // already durable at the peer: no leg needed
  }

  auto w = std::make_shared<FlushWaiter>();
  w->call = call;
  w->peer = peer;
  w->id = id;
  w->span = parent_span;
  {
    audit::LockGuard clk(call->mu);
    ++call->unsettled;
  }

  if (opts_.coalesce && ps.current_flight_id != 0) {
    auto fit = flights_.find(ps.current_flight_id);
    if (fit == flights_.end()) {
      ps.current_flight_id = 0;  // defensive: stale id, fall through
    } else {
      Flight& f = fit->second;
      if (id.epoch == f.target.epoch && id.sn <= f.target.sn) {
        // Ride the in-flight request: its "flush up to" bound covers us, so
        // its completion is ours. No message is sent for this leg.
        w->flight_id = fit->first;
        w->observed_round = f.round;
        f.waiters.push_back(w);
        ctr_coalesced_->Add(1);
        ctr_msgs_saved_->Add(1);
        obs::SpanContext jspan;
        if (f.span.valid()) {
          jspan = {f.span.trace_id, obs::NextSpanId(), f.span.span_id};
        }
        env_->tracer().Record(obs::TraceEventType::kFlushLegJoin,
                              env_->NowModelMs(), opts_.self, /*session=*/"",
                              /*seqno=*/fit->first, "peer=" + peer, jspan);
        return w;
      }
      // Above the open flight's bound (or a different epoch): accumulate.
      // One max-target flight dispatches for the whole queue when the open
      // flight lands.
      if (ps.queued.empty() || ps.queued_target < id) ps.queued_target = id;
      ps.queued.push_back(std::move(w));
      return ps.queued.back();
    }
  }

  std::vector<std::shared_ptr<FlushWaiter>> batch{w};
  LaunchLocked(peer, ps, id, std::move(batch), parent_span);
  return w;
}

void FlushAggregator::LaunchLocked(
    const MspId& peer, PeerState& ps, StateId target,
    std::vector<std::shared_ptr<FlushWaiter>> waiters,
    const obs::SpanContext& parent_span) {
  mu_.AssertHeld();
  uint64_t fid = next_flush_id_++;
  Flight f;
  f.peer = peer;
  f.target = target;
  f.round = 1;
  if (parent_span.valid()) {
    f.span = {parent_span.trace_id, obs::NextSpanId(), parent_span.span_id};
  }

  // The aggregator is the only producer of kFlushRequest messages (lint rule
  // `flush-send`): flush_sn is a "flush up to" bound, so this one message
  // covers every waiter at or below `target`.
  Message fm;
  fm.type = MessageType::kFlushRequest;
  fm.sender = opts_.self;
  fm.flush_id = fid;
  fm.epoch = target.epoch;
  fm.flush_sn = target.sn;
  fm.trace_id = f.span.trace_id;
  fm.parent_span_id = f.span.span_id;
  f.wire = fm.Encode();

  for (auto& w : waiters) {
    w->flight_id = fid;
    w->observed_round = 1;
  }
  f.waiters = std::move(waiters);
  if (opts_.coalesce) ps.current_flight_id = fid;

  env_->tracer().Record(
      obs::TraceEventType::kFlushFlightLaunch, env_->NowModelMs(), opts_.self,
      /*session=*/"", /*seqno=*/fid,
      "peer=" + peer + ";target=" + std::to_string(target.epoch) + ":" +
          std::to_string(target.sn) + ";batch=" +
          std::to_string(f.waiters.size()),
      f.span);
  ctr_sent_->Add(1);
  // SimNetwork::Send never blocks on model time (it schedules delivery), so
  // sending under mu_ is safe and keeps launch decisions atomic.
  send_(peer, f.wire);
  flights_.emplace(fid, std::move(f));
}

void FlushAggregator::LaunchQueuedLocked(const MspId& peer, PeerState& ps) {
  mu_.AssertHeld();
  if (ps.queued.empty()) return;
  // Legs covered by the accumulated maximum fly now; an epoch-mismatched
  // remainder (rare: mixed-epoch dependencies) waits for the next landing.
  StateId target = ps.queued_target;
  std::vector<std::shared_ptr<FlushWaiter>> now, later;
  for (auto& w : ps.queued) {
    if (w->id.epoch == target.epoch && w->id.sn <= target.sn) {
      now.push_back(std::move(w));
    } else {
      later.push_back(std::move(w));
    }
  }
  ps.queued = std::move(later);
  ps.queued_target = StateId{};
  for (const auto& w : ps.queued) {
    if (ps.queued_target < w->id) ps.queued_target = w->id;
  }
  if (now.size() > 1) ctr_msgs_saved_->Add(now.size() - 1);
  obs::SpanContext parent = now.front()->span;
  LaunchLocked(peer, ps, target, std::move(now), parent);
}

void FlushAggregator::HandleReply(const Message& m) {
  audit::LockGuard lk(mu_);
  auto it = flights_.find(m.flush_id);
  if (it == flights_.end()) return;  // stale or duplicate reply
  Flight& f = it->second;

  if (!m.flush_ok && m.rec_epoch == 0) {
    // Non-authoritative failure (epochs start at 1): the peer may be
    // mid-crash; resend and keep waiting for its recovery to answer.
    if (f.round >= opts_.max_rounds) {
      TimeOutFlightLocked(it->first);
      return;
    }
    ++f.round;
    ctr_sent_->Add(1);
    send_(f.peer, f.wire);
    return;
  }

  // Settled (success or authoritative failure): detach the flight, settle
  // every joined leg from this one completion, then dispatch the legs that
  // accumulated behind it.
  Flight done = std::move(f);
  flights_.erase(it);
  PeerState& ps = peers_[done.peer];
  if (ps.current_flight_id == m.flush_id) ps.current_flight_id = 0;
  hist_batch_->Record(static_cast<double>(done.waiters.size()));

  if (m.flush_ok) {
    AdvanceWatermarkLocked(ps, done.target);
    for (auto& w : done.waiters) {
      SettleLocked(w, /*ok=*/true, false, false, 0, 0);
    }
  } else {
    // The peer's epoch ended at (rec_epoch, rec_sn). Legs at or below the
    // recovered state number are durable — exactly what a per-leg request
    // would have been told — and everything above is orphaned with that
    // recovered state number as the witness.
    for (auto& w : done.waiters) {
      if (w->id.epoch == m.rec_epoch && w->id.sn <= m.rec_sn) {
        AdvanceWatermarkLocked(ps, w->id);
        SettleLocked(w, /*ok=*/true, false, false, 0, 0);
      } else {
        SettleLocked(w, /*ok=*/false, false, false, m.rec_epoch, m.rec_sn);
      }
    }
  }
  LaunchQueuedLocked(done.peer, ps);
}

void FlushAggregator::OnWaitTimeout(const std::shared_ptr<FlushWaiter>& w) {
  audit::LockGuard lk(mu_);
  {
    audit::LockGuard clk(w->call->mu);
    if (w->settled) return;
  }
  uint64_t fid = w->flight_id;
  if (fid == 0) {
    // Queued behind the peer's open flight: drive THAT flight — our own
    // request cannot launch until it lands.
    auto pit = peers_.find(w->peer);
    if (pit == peers_.end()) return;
    fid = pit->second.current_flight_id;
  }
  auto it = flights_.find(fid);
  if (it == flights_.end()) return;
  Flight& f = it->second;
  if (w->observed_round != f.round) {
    // The flight progressed (another waiter resent) since this waiter last
    // looked: give the new round a full timeout before resending again.
    w->observed_round = f.round;
    return;
  }
  if (f.round >= opts_.max_rounds) {
    TimeOutFlightLocked(fid);
    return;
  }
  ++f.round;
  w->observed_round = f.round;
  ctr_sent_->Add(1);
  send_(f.peer, f.wire);
}

void FlushAggregator::TimeOutFlightLocked(uint64_t flight_id) {
  mu_.AssertHeld();
  auto it = flights_.find(flight_id);
  if (it == flights_.end()) return;
  Flight dead = std::move(it->second);
  flights_.erase(it);
  PeerState& ps = peers_[dead.peer];
  if (ps.current_flight_id == flight_id) ps.current_flight_id = 0;
  hist_batch_->Record(static_cast<double>(dead.waiters.size()));
  for (auto& w : dead.waiters) {
    SettleLocked(w, /*ok=*/false, /*timed_out=*/true, false, 0, 0);
  }
  LaunchQueuedLocked(dead.peer, ps);
}

void FlushAggregator::Abandon(const std::shared_ptr<FlushWaiter>& w) {
  audit::LockGuard lk(mu_);
  auto drop = [&](std::vector<std::shared_ptr<FlushWaiter>>& v) {
    v.erase(std::remove(v.begin(), v.end(), w), v.end());
  };
  auto pit = peers_.find(w->peer);
  if (pit != peers_.end()) {
    drop(pit->second.queued);
    pit->second.queued_target = StateId{};
    for (const auto& q : pit->second.queued) {
      if (pit->second.queued_target < q->id) pit->second.queued_target = q->id;
    }
  }
  if (w->flight_id != 0) {
    auto it = flights_.find(w->flight_id);
    if (it != flights_.end()) {
      drop(it->second.waiters);
      if (it->second.waiters.empty()) {
        // Nobody is left to claim the outcome: drop the flight (a late
        // reply is ignored as stale) so queued legs are not stuck behind it.
        MspId peer = it->second.peer;
        uint64_t fid = it->first;
        flights_.erase(it);
        PeerState& ps = peers_[peer];
        if (ps.current_flight_id == fid) ps.current_flight_id = 0;
        LaunchQueuedLocked(peer, ps);
      }
    }
  }
  // Keep the call's accounting consistent even though the caller is gone.
  SettleLocked(w, /*ok=*/false, /*timed_out=*/true, false, 0, 0);
}

void FlushAggregator::AdvanceWatermarkLocked(PeerState& ps, StateId id) {
  mu_.AssertHeld();
  if (ps.watermark < id) ps.watermark = id;
}

void FlushAggregator::SettleLocked(const std::shared_ptr<FlushWaiter>& w,
                                   bool ok, bool timed_out, bool crashed,
                                   uint32_t orphan_epoch, uint64_t orphan_sn) {
  mu_.AssertHeld();
  audit::LockGuard clk(w->call->mu);
  if (w->settled) return;
  w->settled = true;
  w->ok = ok;
  w->timed_out = timed_out;
  w->crashed = crashed;
  w->orphan_epoch = orphan_epoch;
  w->orphan_sn = orphan_sn;
  if (!ok) w->call->fatal = true;
  if (w->call->unsettled > 0) --w->call->unsettled;
  w->call->cv.notify_all();
}

void FlushAggregator::FailAll() {
  audit::LockGuard lk(mu_);
  for (auto& [fid, f] : flights_) {
    for (auto& w : f.waiters) {
      SettleLocked(w, /*ok=*/false, false, /*crashed=*/true, 0, 0);
    }
  }
  flights_.clear();
  for (auto& [peer, ps] : peers_) {
    for (auto& w : ps.queued) {
      SettleLocked(w, /*ok=*/false, false, /*crashed=*/true, 0, 0);
    }
    ps.queued.clear();
    ps.queued_target = StateId{};
    ps.current_flight_id = 0;
  }
}

void FlushAggregator::Reset() {
  FailAll();
  audit::LockGuard lk(mu_);
  peers_.clear();
  flights_.clear();
}

std::optional<StateId> FlushAggregator::WatermarkForTest(
    const MspId& peer) const {
  audit::LockGuard lk(mu_);
  auto it = peers_.find(peer);
  if (it == peers_.end() || it->second.watermark == StateId{}) {
    return std::nullopt;
  }
  return it->second.watermark;
}

size_t FlushAggregator::InFlightForTest() const {
  audit::LockGuard lk(mu_);
  return flights_.size();
}

size_t FlushAggregator::WaiterCountForTest() const {
  audit::LockGuard lk(mu_);
  size_t n = 0;
  for (const auto& [fid, f] : flights_) n += f.waiters.size();
  for (const auto& [peer, ps] : peers_) n += ps.queued.size();
  return n;
}

// ---------------------------------------------------------------------------
// InboundFlushCoalescer
// ---------------------------------------------------------------------------

InboundFlushCoalescer::InboundFlushCoalescer(SimEnvironment* env, FlushFn flush,
                                             ReplyFn reply)
    : flush_(std::move(flush)), reply_(std::move(reply)) {
  obs::MetricsRegistry& m = env->metrics();
  ctr_flushes_saved_ = m.GetCounter("flush.peer_flushes_saved");
  hist_batch_ = m.GetHistogram("flush.inbound_batch");
}

void InboundFlushCoalescer::Enqueue(Request r) {
  {
    audit::LockGuard lk(mu_);
    queue_.push_back(std::move(r));
    if (draining_) return;  // the active drainer's next batch covers it
    draining_ = true;
  }
  Drain();
}

void InboundFlushCoalescer::Drain() {
  while (true) {
    std::vector<Request> batch;
    {
      audit::LockGuard lk(mu_);
      if (queue_.empty()) {
        draining_ = false;
        return;
      }
      batch.swap(queue_);
    }
    uint64_t max_sn = 0;
    for (const Request& r : batch) max_sn = std::max(max_sn, r.flush_sn);
    if (!flush_(max_sn).ok()) {
      // We are crashing mid-flush: drop the batch silently — replying with
      // a failure for the current epoch would poison the requesters'
      // recovered-state tables. Recovery gives the authoritative answer.
      audit::LockGuard lk(mu_);
      queue_.clear();
      draining_ = false;
      return;
    }
    if (batch.size() > 1) ctr_flushes_saved_->Add(batch.size() - 1);
    hist_batch_->Record(static_cast<double>(batch.size()));
    for (const Request& r : batch) reply_(r);
  }
}

}  // namespace msplog
