// ServiceContext — the programming model an MSP offers to service methods
// (§2.2). A method receives a context through which it accesses private
// session variables, shared variables, and other MSPs. The recovery
// infrastructure is entirely transparent: the same method body runs during
// normal execution and during log-driven replay; the context decides
// whether an operation hits the live world or is fed from the log.
//
// Determinism contract: a service method must be deterministic given its
// argument, the session variables, the values returned by ReadShared, and
// the replies returned by Call. Wall-clock time, randomness and global
// mutable state outside the context are forbidden (use Compute() for CPU
// cost).
#pragma once

#include <functional>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace msplog {

class ServiceContext {
 public:
  virtual ~ServiceContext() = default;

  // ---- identity ----
  virtual const std::string& session_id() const = 0;
  virtual uint64_t request_seqno() const = 0;
  /// True while this execution is a log-driven replay (§4.1). Methods do
  /// not normally need this; it exists for instrumentation.
  virtual bool in_replay() const = 0;

  // ---- private session state (never logged; rebuilt by re-execution) ----
  virtual Bytes GetSessionVar(const std::string& name) = 0;
  virtual bool HasSessionVar(const std::string& name) const = 0;
  virtual void SetSessionVar(const std::string& name, ByteView value) = 0;

  // ---- shared in-memory state (value-logged, §3.3) ----
  virtual Status ReadShared(const std::string& name, Bytes* out) = 0;
  virtual Status WriteShared(const std::string& name, ByteView value) = 0;

  /// Atomic read-modify-write: `fn` maps the current value to the new one
  /// under a single lock hold, so concurrent updates never lose increments
  /// (plain ReadShared + WriteShared are two separate §2.2 lock acquisitions
  /// and give no cross-access atomicity). `fn` must be deterministic; it is
  /// re-applied to the logged read value during replay. The resulting value
  /// is returned through `out` when non-null.
  virtual Status UpdateShared(const std::string& name,
                              const std::function<Bytes(const Bytes&)>& fn,
                              Bytes* out = nullptr) = 0;

  // ---- synchronous outgoing call to another MSP (§2.1) ----
  virtual Status Call(const std::string& target_msp, const std::string& method,
                      ByteView arg, Bytes* reply) = 0;

  // ---- model CPU cost of business logic ----
  virtual void Compute(double model_ms) = 0;
};

/// A service method: deterministic business logic. Returns non-OK to signal
/// an application error (delivered to the client as ReplyCode::kAppError).
/// Infrastructure statuses (kOrphan, kCrashed) MUST be propagated unchanged.
using ServiceMethod =
    std::function<Status(ServiceContext*, const Bytes& arg, Bytes* result)>;

}  // namespace msplog
