// Offline outage post-mortem (forensics for the §4 crash/recovery story):
// given the flight recorder's frozen pre-crash facts — which sessions were
// in flight and how far the log was durable when the MSP died — re-derive
// every session's fate (replayed / orphaned / never-logged) from nothing
// but the raw log image, using the same scanner crash recovery uses.
//
// The derivation is intentionally independent of the live outage join in
// msp_recovery.cc: the log itself is the ground truth, so the two paths
// cross-check each other. The core is separated from the msplog_postmortem
// CLI so tests can run it in-process against a live SimDisk while CI runs
// the CLI over a dumped bundle + exported image file.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/sim_disk.h"

namespace msplog {

/// The pre-crash facts a post-mortem needs, normally lifted from a frozen
/// FlightBundle (the crashed actor's snapshot therein).
struct PostmortemInput {
  std::string actor;               ///< crashed MSP id (labeling only)
  uint64_t generation = 0;         ///< crash generation (labeling only)
  double crash_model_ms = 0;       ///< bundle frozen_at_ms (labeling only)
  /// Durable extent of the log at the instant of the crash: records at
  /// LSN >= this were written by post-crash recovery, not by the dead epoch.
  uint64_t durable_at_crash = 0;
  std::vector<std::string> inflight_sessions;
};

/// One in-flight session's offline verdict.
struct PostmortemSessionFate {
  std::string session_id;
  /// "replayed" | "orphaned" | "never-logged" (same taxonomy as the live
  /// obs::OutageReport, minus "pending" — the log never leaves a fate open).
  std::string fate;
  uint64_t first_lsn = 0;            ///< earliest durable record, 0 if none
  uint64_t requests_logged = 0;      ///< kRequestReceive below the crash point
  uint64_t eos_cuts_after_crash = 0; ///< EOS records at/after the crash point
};

struct PostmortemReport {
  std::string actor;
  uint64_t generation = 0;
  double crash_model_ms = 0;
  uint64_t durable_at_crash = 0;
  uint64_t records_scanned = 0;
  uint64_t image_bytes = 0;  ///< durable extent walked
  std::vector<PostmortemSessionFate> sessions;

  const PostmortemSessionFate* Find(const std::string& session_id) const;
  /// Human-readable multi-line summary.
  std::string Summary() const;
  std::string ToJson() const;
};

/// Walk the log image `file` on `disk` from offset 0 through the durable
/// extent and classify every session named in `in.inflight_sessions`:
///   * never-logged — no durable record below `durable_at_crash` mentions
///     the session: the crash erased it entirely; the client's work never
///     reached the disk.
///   * orphaned — the session has a durable trace AND recovery wrote an EOS
///     cut for it at/after the crash point: part of its in-flight work was
///     discarded as an orphan (§4.1).
///   * replayed — the session has a durable trace and no post-crash cut:
///     replay rebuilt it cleanly.
/// Returns non-OK only for environmental failures (missing file); a torn
/// tail ends the walk cleanly, exactly as it ends recovery's scan.
Status DerivePostmortem(SimDisk* disk, const std::string& file,
                        const PostmortemInput& in, PostmortemReport* report);

}  // namespace msplog
