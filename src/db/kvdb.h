// KvDb — a small write-ahead-logged transactional key/value store.
//
// This is the local DBMS substrate behind the paper's `Psession` baseline
// (§5.2): the web server keeps session state in a database, paying one read
// transaction and one write transaction per request per MSP. Commits are
// durable (WAL append + flush). Read transactions also pay a durable
// lock-record write, mirroring commercial session-state providers that
// update lock columns on fetch — this is what makes a Psession read
// transaction roughly as expensive as a write transaction, as the paper's
// measured 48.6 ms response time implies.
//
// KvDb is also usable on its own (see examples/) and is fully recoverable:
// Recover() rebuilds the memtable from the WAL, tolerating a torn tail.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "audit/mutex.h"
#include "common/bytes.h"
#include "common/status.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"

namespace msplog {

struct KvDbOptions {
  /// Charge a durable lock-record write on TxnGet (ASP.NET-provider-style).
  bool durable_read_locks = true;
};

class KvDb {
 public:
  KvDb(SimEnvironment* env, SimDisk* disk, std::string name,
       KvDbOptions options = KvDbOptions());

  /// Rebuild the memtable from the WAL. Idempotent. A corrupt tail is
  /// truncated (torn final write), not an error.
  Status Recover();

  /// Read transaction. NotFound if the key is absent.
  Status TxnGet(const std::string& key, Bytes* value);

  /// Write transaction: durable on return.
  Status TxnPut(const std::string& key, ByteView value);

  /// Delete transaction: durable on return. Deleting a missing key is OK.
  Status TxnDelete(const std::string& key);

  size_t KeyCount() const;
  uint64_t WalBytes() const;

 private:
  Status AppendWal(uint8_t op, const std::string& key, ByteView value);

  SimEnvironment* env_;
  SimDisk* disk_;
  std::string wal_file_;
  std::string lock_file_;
  KvDbOptions options_;

  mutable audit::Mutex mu_{"kvdb"};
  std::map<std::string, Bytes> table_ GUARDED_BY(mu_);
  bool recovered_ GUARDED_BY(mu_) = false;
};

}  // namespace msplog
