#include "audit/mutex.h"
#include "db/kvdb.h"

#include "common/crc32c.h"
#include "common/serde.h"

namespace msplog {

namespace {
constexpr uint8_t kOpPut = 1;
constexpr uint8_t kOpDelete = 2;
}  // namespace

KvDb::KvDb(SimEnvironment* env, SimDisk* disk, std::string name,
           KvDbOptions options)
    : env_(env),
      disk_(disk),
      wal_file_(name + ".wal"),
      lock_file_(name + ".lock"),
      options_(options) {}

Status KvDb::AppendWal(uint8_t op, const std::string& key, ByteView value) {
  BinaryWriter body;
  body.PutU8(op);
  body.PutBytes(key);
  body.PutBytes(value);
  BinaryWriter frame;
  frame.PutU32(static_cast<uint32_t>(body.size()));
  frame.PutU32(crc32c::Mask(crc32c::Compute(body.buffer())));
  frame.PutRaw(body.buffer());
  // Append + implicit flush: the simulated disk makes every write durable
  // and charges the full flush latency, which is the commit cost.
  return disk_->Append(wal_file_, frame.buffer());
}

Status KvDb::Recover() {
  audit::LockGuard lk(mu_);
  table_.clear();
  if (disk_->Exists(wal_file_)) {
    Bytes raw;
    MSPLOG_RETURN_IF_ERROR(
        // Recovery holds the table lock across the WAL read on purpose:
        // the DB must not serve requests from a half-rebuilt table.
        // audit:allow(blocking-under-lock)
        disk_->ReadAt(wal_file_, 0, disk_->FileSize(wal_file_), &raw));
    size_t pos = 0;
    while (pos + 8 <= raw.size()) {
      BinaryReader hr(ByteView(raw).substr(pos, 8));
      uint32_t len = 0, masked = 0;
      (void)hr.GetU32(&len);
      (void)hr.GetU32(&masked);
      if (len == 0 || pos + 8 + len > raw.size()) break;  // torn tail
      ByteView body = ByteView(raw).substr(pos + 8, len);
      if (crc32c::Compute(body) != crc32c::Unmask(masked)) break;
      BinaryReader r(body);
      uint8_t op = 0;
      Bytes key, value;
      if (!r.GetU8(&op).ok() || !r.GetBytes(&key).ok() ||
          !r.GetBytes(&value).ok()) {
        break;
      }
      if (op == kOpPut) {
        table_[key] = value;
      } else if (op == kOpDelete) {
        table_.erase(key);
      } else {
        break;
      }
      pos += 8 + len;
    }
  }
  recovered_ = true;
  return Status::OK();
}

Status KvDb::TxnGet(const std::string& key, Bytes* value) {
  if (options_.durable_read_locks) {
    // Session-state providers write a lock row when fetching: a durable
    // one-sector write that makes read transactions as costly as commits.
    MSPLOG_RETURN_IF_ERROR(disk_->WriteAt(lock_file_, 0, Bytes(16, 'L')));
  }
  audit::LockGuard lk(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) return Status::NotFound("key: " + key);
  *value = it->second;
  return Status::OK();
}

Status KvDb::TxnPut(const std::string& key, ByteView value) {
  MSPLOG_RETURN_IF_ERROR(AppendWal(kOpPut, key, value));
  audit::LockGuard lk(mu_);
  table_[key] = Bytes(value);
  return Status::OK();
}

Status KvDb::TxnDelete(const std::string& key) {
  MSPLOG_RETURN_IF_ERROR(AppendWal(kOpDelete, key, ""));
  audit::LockGuard lk(mu_);
  table_.erase(key);
  return Status::OK();
}

size_t KvDb::KeyCount() const {
  audit::LockGuard lk(mu_);
  return table_.size();
}

uint64_t KvDb::WalBytes() const { return disk_->FileSize(wal_file_); }

}  // namespace msplog
