#include "log/log_anchor.h"

#include "common/crc32c.h"
#include "common/serde.h"

namespace msplog {

Status LogAnchor::Write(const AnchorData& data) {
  BinaryWriter w;
  w.PutU64(data.msp_checkpoint_lsn);
  w.PutU32(data.epoch);
  Bytes body = w.Take();
  BinaryWriter framed;
  framed.PutU32(crc32c::Mask(crc32c::Compute(body)));
  framed.PutRaw(body);
  return disk_->WriteAt(file_, 0, framed.buffer());
}

Status LogAnchor::Read(AnchorData* out) {
  if (!disk_->Exists(file_)) return Status::NotFound("no anchor");
  Bytes raw;
  MSPLOG_RETURN_IF_ERROR(disk_->ReadAt(file_, 0, 4 + 12, &raw));
  if (raw.size() < 4 + 12) return Status::Corruption("short anchor");
  BinaryReader r(raw);
  uint32_t masked = 0;
  MSPLOG_RETURN_IF_ERROR(r.GetU32(&masked));
  ByteView body = ByteView(raw).substr(4, 12);
  if (crc32c::Compute(body) != crc32c::Unmask(masked)) {
    return Status::Corruption("anchor CRC mismatch");
  }
  BinaryReader br(body);
  MSPLOG_RETURN_IF_ERROR(br.GetU64(&out->msp_checkpoint_lsn));
  MSPLOG_RETURN_IF_ERROR(br.GetU32(&out->epoch));
  return Status::OK();
}

}  // namespace msplog
