// LogAnchor — ARIES-style anchor block (§3.4): a small, fixed-location block
// recording where recovery should begin. It stores the LSN of the most
// recent MSP checkpoint and the MSP's current epoch number. It is rewritten
// after every MSP checkpoint and when a recovering MSP bumps its epoch
// (before broadcasting its recovered state number), so that a crash *during*
// recovery can never reuse an epoch.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "sim/sim_disk.h"

namespace msplog {

struct AnchorData {
  /// LSN of the most recent MSP checkpoint record; 0 = none taken yet.
  uint64_t msp_checkpoint_lsn = 0;
  /// The MSP's current epoch (failure-free period counter).
  uint32_t epoch = 0;
};

class LogAnchor {
 public:
  LogAnchor(SimDisk* disk, std::string file) : disk_(disk), file_(std::move(file)) {}

  /// Durably (over)write the anchor block. One-sector write.
  Status Write(const AnchorData& data);

  /// Read the anchor. NotFound if the anchor was never written;
  /// Corruption if its CRC fails.
  Status Read(AnchorData* out);

 private:
  SimDisk* disk_;
  std::string file_;
};

}  // namespace msplog
