// PositionStream (§3.2) — per-session list of the positions (LSNs) of the
// session's log records since its latest checkpoint, kept so that a
// session's records can be extracted from the shared physical log without
// rescanning it. Positions accumulate in an in-memory buffer and are
// appended to a small disk file only when the buffer fills, so the normal-
// execution cost is negligible. The stream is truncated to zero at each
// session checkpoint and discarded at session end. After an MSP crash the
// in-memory part is lost and the whole stream is reconstructed by the
// analysis scan.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audit/mutex.h"
#include "common/status.h"
#include "sim/sim_disk.h"

namespace msplog {

class PositionStream {
 public:
  PositionStream(SimDisk* disk, std::string file,
                 size_t buffer_capacity = 1024);

  /// Record the position of a new log record; flushes the position buffer
  /// to disk when it reaches capacity.
  void Add(uint64_t lsn);

  /// All positions currently in the stream (persisted + buffered), in order.
  std::vector<uint64_t> All() const;

  size_t size() const;

  /// Drop every position (session checkpoint): truncates the disk file.
  void Truncate();

  /// Remove all positions in [from_lsn, to_lsn] — the skip range between an
  /// orphan log record and its EOS record (§4.1). Rewrites the disk file.
  void RemoveRange(uint64_t from_lsn, uint64_t to_lsn);

  /// Replace the whole stream (crash-recovery reconstruction, §4.3).
  /// Does not touch the disk file; the stream restarts memory-only.
  void ReplaceAll(std::vector<uint64_t> positions);

  /// Delete the backing file (session end).
  void Discard();

  /// Read back only what is persisted on disk (tests / fidelity checks).
  Status LoadPersisted(std::vector<uint64_t>* out) const;

 private:
  void FlushBufferLocked() REQUIRES(mu_);

  SimDisk* disk_;
  std::string file_;
  size_t buffer_capacity_;

  mutable audit::Mutex mu_{"position_stream"};
  /// Full stream.
  std::vector<uint64_t> positions_ GUARDED_BY(mu_);
  /// Prefix of positions_ already on disk.
  size_t persisted_count_ GUARDED_BY(mu_) = 0;
};

}  // namespace msplog
