// Log record model for the single physical log shared by all sessions of an
// MSP (§1.3, §3). Every nondeterministic event is captured by one of these
// record types; together with deterministic service-method re-execution they
// make the business state reconstructible.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/serde.h"
#include "common/status.h"
#include "recovery/dependency_vector.h"

namespace msplog {

enum class LogRecordType : uint8_t {
  kInvalid = 0,
  /// A client request received over a session (§3.1). Nondeterministic:
  /// carries the payload and, for intra-domain senders, the attached DV.
  kRequestReceive = 1,
  /// A reply received for an outgoing call made by a session (§2.1, §4.1
  /// replay rule: "requests to other MSPs are not sent, and their reply is
  /// read from the log").
  kReplyReceive = 2,
  /// Value logging of a shared-variable read (§3.3): the value *and* the
  /// variable's DV, so a recovering reader needs nobody else.
  kSharedRead = 3,
  /// Value logging of a shared-variable write (§3.3): the new value, the
  /// writer session's DV, and the LSN of the previous write record for the
  /// same variable (backward chain for undo recovery).
  kSharedWrite = 4,
  /// Shared-variable checkpoint (§3.3): the value after a distributed log
  /// flush, so it can never be an orphan. Breaks the backward chain.
  kSharedVarCheckpoint = 5,
  /// Session checkpoint (§3.2): session variables, buffered reply, next
  /// expected request seqno, outgoing sessions' next available seqnos.
  kSessionCheckpoint = 6,
  /// Marks the end of a session's log records (§3.2).
  kSessionEnd = 7,
  /// MSP fuzzy checkpoint (§3.4): recovered state numbers + the LSN of each
  /// session's and each shared variable's most recent checkpoint.
  kMspCheckpoint = 8,
  /// A recovered state number learned from a peer's recovery broadcast (§4).
  kRecoveredState = 9,
  /// End-of-skip (§4.1): points back to the orphan log record where a
  /// session's orphan recovery stopped; the range is invisible thereafter.
  kEos = 10,
  /// Session start (client's first request created the session).
  kSessionStart = 11,
};

const char* LogRecordTypeName(LogRecordType t);

/// One physical log record. Which fields are meaningful depends on `type`;
/// unused fields encode compactly (empty strings / zero varints).
struct LogRecord {
  LogRecordType type = LogRecordType::kInvalid;
  /// Owning session (empty for shared-variable / MSP-level records).
  std::string session_id;
  /// Shared variable name (kSharedRead/kSharedWrite/kSharedVarCheckpoint).
  std::string var_id;
  /// kRequestReceive: the request sequence number.
  /// kReplyReceive: the outgoing request's sequence number.
  uint64_t seqno = 0;
  /// kRequestReceive: requested service method name.
  /// kReplyReceive: the target MSP of the outgoing call.
  std::string target;
  /// Request argument / reply value / shared value / checkpoint blob.
  Bytes payload;
  /// Attached or owning DV (meaning depends on type). `has_dv` false means
  /// no DV was attached (e.g. a pessimistically logged cross-domain message).
  bool has_dv = false;
  DependencyVector dv;
  /// kSharedWrite: LSN of the previous write record of the same variable
  /// (0 = chain start). kEos: LSN of the orphan log record pointed back to.
  uint64_t prev_lsn = 0;
  /// kRecoveredState: which peer recovered, ending which epoch, up to where.
  std::string peer;
  uint32_t peer_epoch = 0;
  uint64_t peer_recovered_sn = 0;
  /// Small auxiliary value. kReplyReceive: the ReplyCode of the logged
  /// reply, so replay reproduces application errors faithfully.
  uint8_t aux = 0;

  /// Set by the log on append / scan; not part of the encoded body.
  uint64_t lsn = 0;

  /// Exact body size EncodeTo will produce. When `dv_wire` is non-null it
  /// stands in for this record's encoded DV (a caller-side cache of
  /// `dv.EncodeTo` output) — it MUST be the encoding of `dv`.
  size_t EncodedSize(const Bytes* dv_wire = nullptr) const;

  /// Encode the body through `w` — which may be an owned-buffer writer, an
  /// external-sink writer, or a span writer over preallocated log-arena
  /// memory (the zero-copy append path). Writes exactly EncodedSize(dv_wire)
  /// bytes. `dv_wire`, when given, is spliced in instead of re-encoding
  /// `dv`; byte-for-byte identical output either way.
  void EncodeTo(BinaryWriter* w, const Bytes* dv_wire = nullptr) const;

  Bytes Encode() const;
  static Status Decode(ByteView body, LogRecord* out);

  std::string ToString() const;
};

}  // namespace msplog
