// LogScanner — the single-threaded analysis scan of crash recovery (§4.3).
// Reads the durable log sequentially in 64 KB chunks (the paper notes that
// 128-sector recovery reads are larger and therefore more efficient than the
// small blocks written by individual flushes), skipping sector padding and
// stopping cleanly at the durable end or at a corrupt tail.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"
#include "log/log_record.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"

namespace msplog {

class LogScanner {
 public:
  static constexpr uint64_t kChunkBytes = 64 * 1024;

  /// Scan `file` on `disk` starting at `start_lsn`. Only data below
  /// `durable_size` (typically the file size at recovery time) is visible.
  LogScanner(SimDisk* disk, std::string file, uint64_t start_lsn,
             uint64_t durable_size);

  /// Advance to the next record. Returns:
  ///   OK         — `*out` holds the record (lsn set);
  ///   NotFound   — clean end of log;
  ///   Corruption — damaged record (scan cannot continue past it).
  Status Next(LogRecord* out);

  /// LSN one past the last successfully returned record's frame.
  uint64_t next_lsn() const { return pos_; }

 private:
  Status FillTo(uint64_t end);

  SimDisk* disk_;
  std::string file_;
  uint64_t pos_;
  uint64_t durable_size_;
  uint32_t sector_bytes_;
  Bytes chunk_;
  uint64_t chunk_base_ = 0;
  /// End offset of the last frame Next() returned; the auditor checks the
  /// scan never yields a record below it (log-scan-monotonic).
  uint64_t last_returned_end_ = 0;
};

}  // namespace msplog
