#include "audit/mutex.h"
#include "log/position_stream.h"

#include <algorithm>

#include "common/serde.h"

namespace msplog {

PositionStream::PositionStream(SimDisk* disk, std::string file,
                               size_t buffer_capacity)
    : disk_(disk), file_(std::move(file)), buffer_capacity_(buffer_capacity) {}

void PositionStream::Add(uint64_t lsn) {
  audit::LockGuard lk(mu_);
  positions_.push_back(lsn);
  if (positions_.size() - persisted_count_ >= buffer_capacity_) {
    FlushBufferLocked();
  }
}

void PositionStream::FlushBufferLocked() {
  mu_.AssertHeld();
  if (persisted_count_ == positions_.size()) return;
  BinaryWriter w;
  for (size_t i = persisted_count_; i < positions_.size(); ++i) {
    w.PutU64(positions_[i]);
  }
  disk_->Append(file_, w.buffer());
  persisted_count_ = positions_.size();
}

std::vector<uint64_t> PositionStream::All() const {
  audit::LockGuard lk(mu_);
  return positions_;
}

size_t PositionStream::size() const {
  audit::LockGuard lk(mu_);
  return positions_.size();
}

void PositionStream::Truncate() {
  audit::LockGuard lk(mu_);
  positions_.clear();
  persisted_count_ = 0;
  // audit:allow(blocking-under-lock): memory and file must change together.
  disk_->Truncate(file_, 0);
}

void PositionStream::RemoveRange(uint64_t from_lsn, uint64_t to_lsn) {
  audit::LockGuard lk(mu_);
  positions_.erase(std::remove_if(positions_.begin(), positions_.end(),
                                  [&](uint64_t p) {
                                    return p >= from_lsn && p <= to_lsn;
                                  }),
                   positions_.end());
  // Rewrite the persisted prefix so skipped records stay invisible even if
  // the file is consulted later. Rare operation (orphan recovery end).
  // audit:allow(blocking-under-lock): memory and file must change together.
  disk_->Truncate(file_, 0);
  persisted_count_ = 0;
  FlushBufferLocked();
}

void PositionStream::ReplaceAll(std::vector<uint64_t> positions) {
  audit::LockGuard lk(mu_);
  positions_ = std::move(positions);
  // audit:allow(blocking-under-lock): memory and file must change together.
  disk_->Truncate(file_, 0);
  persisted_count_ = 0;  // re-persisted lazily as the buffer refills
}

void PositionStream::Discard() {
  audit::LockGuard lk(mu_);
  positions_.clear();
  persisted_count_ = 0;
  // audit:allow(blocking-under-lock): memory and file must change together.
  disk_->Delete(file_);
}

Status PositionStream::LoadPersisted(std::vector<uint64_t>* out) const {
  out->clear();
  if (!disk_->Exists(file_)) return Status::OK();
  Bytes raw;
  MSPLOG_RETURN_IF_ERROR(
      disk_->ReadAt(file_, 0, disk_->FileSize(file_), &raw));
  BinaryReader r(raw);
  while (!r.AtEnd()) {
    uint64_t v = 0;
    MSPLOG_RETURN_IF_ERROR(r.GetU64(&v));
    out->push_back(v);
  }
  return Status::OK();
}

}  // namespace msplog
