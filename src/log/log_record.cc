#include "log/log_record.h"

namespace msplog {

const char* LogRecordTypeName(LogRecordType t) {
  switch (t) {
    case LogRecordType::kInvalid: return "Invalid";
    case LogRecordType::kRequestReceive: return "RequestReceive";
    case LogRecordType::kReplyReceive: return "ReplyReceive";
    case LogRecordType::kSharedRead: return "SharedRead";
    case LogRecordType::kSharedWrite: return "SharedWrite";
    case LogRecordType::kSharedVarCheckpoint: return "SharedVarCheckpoint";
    case LogRecordType::kSessionCheckpoint: return "SessionCheckpoint";
    case LogRecordType::kSessionEnd: return "SessionEnd";
    case LogRecordType::kMspCheckpoint: return "MspCheckpoint";
    case LogRecordType::kRecoveredState: return "RecoveredState";
    case LogRecordType::kEos: return "Eos";
    case LogRecordType::kSessionStart: return "SessionStart";
  }
  return "Unknown";
}

size_t LogRecord::EncodedSize(const Bytes* dv_wire) const {
  size_t n = 1;  // type
  n += BytesWireSize(session_id);
  n += BytesWireSize(var_id);
  n += VarintSize(seqno);
  n += BytesWireSize(target);
  n += BytesWireSize(payload);
  n += 1;  // has_dv
  if (has_dv) n += dv_wire != nullptr ? dv_wire->size() : dv.EncodedSize();
  n += VarintSize(prev_lsn);
  n += BytesWireSize(peer);
  n += 4;  // peer_epoch
  n += VarintSize(peer_recovered_sn);
  n += 1;  // aux
  return n;
}

void LogRecord::EncodeTo(BinaryWriter* w, const Bytes* dv_wire) const {
  w->PutU8(static_cast<uint8_t>(type));
  w->PutBytes(session_id);
  w->PutBytes(var_id);
  w->PutVarint(seqno);
  w->PutBytes(target);
  w->PutBytes(payload);
  w->PutU8(has_dv ? 1 : 0);
  if (has_dv) {
    if (dv_wire != nullptr) {
      w->PutRaw(*dv_wire);
    } else {
      dv.EncodeTo(w);
    }
  }
  w->PutVarint(prev_lsn);
  w->PutBytes(peer);
  w->PutU32(peer_epoch);
  w->PutVarint(peer_recovered_sn);
  w->PutU8(aux);
}

Bytes LogRecord::Encode() const {
  BinaryWriter w;
  EncodeTo(&w);
  return w.Take();
}

Status LogRecord::Decode(ByteView body, LogRecord* out) {
  BinaryReader r(body);
  uint8_t type = 0;
  MSPLOG_RETURN_IF_ERROR(r.GetU8(&type));
  if (type == 0 || type > static_cast<uint8_t>(LogRecordType::kSessionStart)) {
    return Status::Corruption("bad log record type");
  }
  out->type = static_cast<LogRecordType>(type);
  MSPLOG_RETURN_IF_ERROR(r.GetBytes(&out->session_id));
  MSPLOG_RETURN_IF_ERROR(r.GetBytes(&out->var_id));
  MSPLOG_RETURN_IF_ERROR(r.GetVarint(&out->seqno));
  MSPLOG_RETURN_IF_ERROR(r.GetBytes(&out->target));
  MSPLOG_RETURN_IF_ERROR(r.GetBytes(&out->payload));
  uint8_t has_dv = 0;
  MSPLOG_RETURN_IF_ERROR(r.GetU8(&has_dv));
  out->has_dv = has_dv != 0;
  if (out->has_dv) {
    MSPLOG_RETURN_IF_ERROR(out->dv.DecodeFrom(&r));
  } else {
    out->dv.Clear();
  }
  MSPLOG_RETURN_IF_ERROR(r.GetVarint(&out->prev_lsn));
  MSPLOG_RETURN_IF_ERROR(r.GetBytes(&out->peer));
  MSPLOG_RETURN_IF_ERROR(r.GetU32(&out->peer_epoch));
  MSPLOG_RETURN_IF_ERROR(r.GetVarint(&out->peer_recovered_sn));
  MSPLOG_RETURN_IF_ERROR(r.GetU8(&out->aux));
  return Status::OK();
}

std::string LogRecord::ToString() const {
  std::string out = LogRecordTypeName(type);
  out += "@" + std::to_string(lsn);
  if (!session_id.empty()) out += " se=" + session_id;
  if (!var_id.empty()) out += " sv=" + var_id;
  if (seqno) out += " seq=" + std::to_string(seqno);
  if (!target.empty()) out += " target=" + target;
  if (has_dv) out += " dv=" + dv.ToString();
  if (prev_lsn) out += " prev=" + std::to_string(prev_lsn);
  if (!peer.empty()) {
    out += " peer=" + peer + " ep=" + std::to_string(peer_epoch) +
           " rsn=" + std::to_string(peer_recovered_sn);
  }
  return out;
}

}  // namespace msplog
