#include "log/log_scanner.h"

#include <algorithm>

#include "audit/invariants.h"
#include "common/crc32c.h"
#include "log/log_file.h"

namespace msplog {

LogScanner::LogScanner(SimDisk* disk, std::string file, uint64_t start_lsn,
                       uint64_t durable_size)
    : disk_(disk),
      file_(std::move(file)),
      pos_(start_lsn),
      durable_size_(std::min(durable_size, disk_->FileSize(file_))),
      sector_bytes_(disk_->geometry().sector_bytes) {}

Status LogScanner::FillTo(uint64_t end) {
  // Ensure chunk_ covers [pos_, end). Reads in kChunkBytes units.
  if (pos_ >= chunk_base_ && end <= chunk_base_ + chunk_.size()) {
    return Status::OK();
  }
  chunk_base_ = pos_;
  uint64_t want = std::max<uint64_t>(end - pos_, kChunkBytes);
  want = std::min(want, durable_size_ - pos_);
  return disk_->ReadAt(file_, chunk_base_, want, &chunk_);
}

Status LogScanner::Next(LogRecord* out) {
  while (true) {
    if (pos_ + 8 > durable_size_) return Status::NotFound("end of log");
    MSPLOG_RETURN_IF_ERROR(FillTo(pos_ + 8));
    if (chunk_.size() < pos_ - chunk_base_ + 8) {
      return Status::NotFound("end of log");
    }
    ByteView view(chunk_);
    ByteView body;
    size_t frame_len = 0;
    Status st = ParseFrame(view, pos_ - chunk_base_, &body, &frame_len);
    if (st.IsNotFound()) {
      // Padding: skip to the next sector boundary.
      pos_ = (pos_ / sector_bytes_ + 1) * sector_bytes_;
      continue;
    }
    if (st.IsCorruption()) {
      // The frame may just straddle the chunk edge; refill from pos_ and
      // retry once with the full remaining extent.
      uint64_t len_hint = 0;
      if (pos_ - chunk_base_ + 4 <= chunk_.size()) {
        for (int i = 0; i < 4; ++i) {
          len_hint |= static_cast<uint64_t>(static_cast<uint8_t>(
                          chunk_[pos_ - chunk_base_ + i]))
                      << (8 * i);
        }
      }
      uint64_t need_end = pos_ + 8 + len_hint;
      if (need_end <= durable_size_ && need_end > chunk_base_ + chunk_.size()) {
        MSPLOG_RETURN_IF_ERROR(FillTo(need_end));
        st = ParseFrame(ByteView(chunk_), pos_ - chunk_base_, &body,
                        &frame_len);
        if (st.IsNotFound()) {
          pos_ = (pos_ / sector_bytes_ + 1) * sector_bytes_;
          continue;
        }
      }
      if (!st.ok()) {
        if (st.IsCorruption()) {
          audit::InvariantRegistry::Instance().Note(
              "log.crc-reject", file_ + " @" + std::to_string(pos_) + ": " +
                                    st.ToString());
        }
        return st;
      }
    } else if (!st.ok()) {
      if (st.IsCorruption()) {
        audit::InvariantRegistry::Instance().Note(
            "log.crc-reject",
            file_ + " @" + std::to_string(pos_) + ": " + st.ToString());
      }
      return st;
    }
    uint64_t lsn = pos_;
    MSPLOG_RETURN_IF_ERROR(LogRecord::Decode(body, out));
    out->lsn = lsn;
    audit::CheckLsnAdvance("scan " + file_, last_returned_end_, lsn);
    pos_ += frame_len;
    last_returned_end_ = pos_;
    return Status::OK();
  }
}

}  // namespace msplog
