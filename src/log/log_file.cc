// lint:hot-path
#include "audit/mutex.h"
#include "log/log_file.h"

#include <algorithm>
#include <cassert>

#include "common/crc32c.h"
#include "common/serde.h"

namespace msplog {

namespace {
constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 masked crc
/// Fresh arenas start small and grow geometrically (quiescent grows only);
/// the working set of a light log stays a few pages.
constexpr size_t kInitialArenaBytes = 64 * 1024;
/// Bound on simultaneously live arenas (active + filled + writing + free):
/// appenders wait (backpressure) rather than allocate past this.
constexpr size_t kMaxArenas = 4;

void PutU32At(Bytes* buf, size_t pos, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*buf)[pos + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

void PutU32Raw(char* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    dst[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

uint32_t GetU32At(ByteView buf, size_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(buf[pos + i])) << (8 * i);
  }
  return v;
}
}  // namespace

Bytes FrameRecord(ByteView body) {
  Bytes frame(kFrameHeaderBytes, '\0');
  PutU32At(&frame, 0, static_cast<uint32_t>(body.size()));
  PutU32At(&frame, 4, crc32c::Mask(crc32c::Compute(body)));
  frame.append(body.data(), body.size());
  return frame;
}

Status ParseFrame(ByteView data, size_t pos, ByteView* body_out,
                  size_t* frame_len) {
  if (pos + kFrameHeaderBytes > data.size()) {
    return Status::Corruption("truncated frame header");
  }
  uint32_t len = GetU32At(data, pos);
  if (len == 0) return Status::NotFound("padding");
  if (pos + kFrameHeaderBytes + len > data.size()) {
    return Status::Corruption("truncated frame body");
  }
  uint32_t stored = crc32c::Unmask(GetU32At(data, pos + 4));
  ByteView body = data.substr(pos + kFrameHeaderBytes, len);
  if (crc32c::Compute(body) != stored) {
    return Status::Corruption("frame CRC mismatch");
  }
  *body_out = body;
  *frame_len = kFrameHeaderBytes + len;
  return Status::OK();
}

LogFile::LogFile(SimEnvironment* env, SimDisk* disk, std::string file_name,
                 LogFileOptions options)
    : env_(env),
      disk_(disk),
      file_name_(std::move(file_name)),
      options_(options),
      sector_bytes_(disk->geometry().sector_bytes) {
  obs::MetricsRegistry& m = env_->metrics();
  hist_append_bytes_ = m.GetHistogram("log.append_bytes");
  hist_flush_wait_ms_ = m.GetHistogram("log.flush_wait_ms");
  hist_flush_write_ms_ = m.GetHistogram("log.flush_write_ms");
  hist_flush_batch_bytes_ = m.GetHistogram("log.flush_batch_bytes");
  hist_arena_fill_ = m.GetHistogram("log.arena_fill_bytes");
  ctr_physical_flushes_ = m.GetCounter("log.physical_flushes");
  ctr_arena_seals_ = m.GetCounter("log.arena_seals");
  ctr_arena_backpressure_ = m.GetCounter("log.arena_backpressure_waits");
  // Resume appending after the existing durable extent (sector-aligned).
  // The first sector is reserved so that no record ever has LSN 0 — LSN 0
  // is the "none" sentinel in checkpoints and session metadata. The scanner
  // treats the reserved sector as padding and skips it.
  uint64_t size = disk_->FileSize(file_name_);
  uint64_t aligned = RoundUpToSector(size);
  aligned = std::max<uint64_t>(aligned, sector_bytes_);
  durable_end_.store(aligned, std::memory_order_relaxed);
  active_ = std::make_unique<LogArena>();
  active_->data.resize(kInitialArenaBytes, '\0');
  active_->base = aligned;
  arena_count_ = 1;
  completion_hook_id_ = disk_->AddCompletionHook(
      [this](const DiskCompletion& c) {
        if (*c.file != file_name_) return;  // cheap filter, no lock
        OnDiskWrite(c.offset, c.bytes);
      });
  writer_thread_ = std::thread([this] { WriterLoop(); });
}

LogFile::~LogFile() {
  Stop();
  if (completion_hook_id_ >= 0) {
    disk_->RemoveCompletionHook(completion_hook_id_);
  }
}

void LogFile::Stop() {
  {
    audit::LockGuard lk(mu_);
    if (stop_) return;
    stop_ = true;
    FailWaitersLocked(SyncRequest::kFailed, Status::IOError("log stopped"));
    writer_cv_.notify_all();
    arena_cv_.notify_all();
  }
  if (writer_thread_.joinable()) writer_thread_.join();
}

uint64_t LogFile::Append(const LogRecord& rec, size_t* framed_size,
                         const Bytes* dv_wire) {
  const size_t body_size = rec.EncodedSize(dv_wire);
  const size_t frame_size = kFrameHeaderBytes + body_size;
  if (framed_size) *framed_size = frame_size;
  LogArena* arena = nullptr;
  uint64_t lsn = 0;
  char* frame = nullptr;
  {
    audit::UniqueLock lk(mu_);
    arena = ReserveLocked(frame_size, lk);
    lsn = arena->base + arena->reserved;
    frame = &arena->data[arena->reserved];
    arena->reserved += frame_size;
  }
  // Encode straight into the reserved span — no intermediate buffer, no
  // lock held. The span cannot move: the arena grows only when quiescent
  // (committed == reserved) and is drained only after every reservation in
  // it has committed.
  {
    BinaryWriter w(frame + kFrameHeaderBytes, body_size);
    rec.EncodeTo(&w, dv_wire);
    assert(w.size() == body_size);
  }
  PutU32Raw(frame, static_cast<uint32_t>(body_size));
  PutU32Raw(frame + 4,
            crc32c::Mask(crc32c::Compute(
                ByteView(frame + kFrameHeaderBytes, body_size))));
  // Lock-free commit: one seq_cst RMW publishes the encoded span. If we
  // read `sealed == false` here, the seq_cst total order places our add
  // before the seal, so the writer's post-seal predicate read observes it;
  // if we read true and completed the arena, the drain may be waiting on
  // exactly this commit, so we post the notify ourselves.
  const size_t after =
      arena->committed.fetch_add(frame_size, std::memory_order_seq_cst) +
      frame_size;
  if (arena->sealed.load(std::memory_order_seq_cst) &&
      after == arena->sealed_bytes.load(std::memory_order_relaxed)) {
    audit::LockGuard lk(mu_);
    writer_cv_.notify_all();
  }
  env_->stats().log_records_appended.fetch_add(1);
  env_->stats().log_bytes_appended.fetch_add(frame_size);
  hist_append_bytes_->Record(static_cast<double>(frame_size));
  return lsn;
}

LogFile::LogArena* LogFile::ReserveLocked(size_t frame_size,
                                          audit::UniqueLock& lk) {
  for (;;) {
    LogArena* a = active_.get();
    const bool valve = a->reserved >= options_.max_buffer_bytes;
    if (!valve && a->reserved + frame_size <= a->data.size()) {
      return a;
    }
    if (!valve && a->committed.load(std::memory_order_acquire) == a->reserved) {
      // No encoder is mid-flight, so no outstanding span pointers: grow the
      // arena in place (geometric, capped at the valve / one giant frame).
      const uint64_t need = a->reserved + frame_size;
      const uint64_t cap = RoundUpToSector(
          std::max<uint64_t>(options_.max_buffer_bytes, frame_size));
      if (need <= cap) {
        uint64_t grown = std::max<uint64_t>(a->data.size() * 2,
                                            RoundUpToSector(need));
        a->data.resize(std::min(grown, cap), '\0');
        continue;
      }
    }
    // Rotation needed. Backpressure first (never leave active_ sealed while
    // waiting: other appenders keep hitting this same path and wait too).
    if (free_arenas_.empty() && arena_count_ >= kMaxArenas &&
        !crashed_.load(std::memory_order_relaxed)) {
      ctr_arena_backpressure_->Add(1);
      drain_requested_ = true;
      writer_cv_.notify_all();
      arena_cv_.wait(lk, [&] {
        mu_.AssertHeld();
        return !free_arenas_.empty() || arena_count_ < kMaxArenas ||
               crashed_.load(std::memory_order_relaxed);
      });
      continue;  // world changed: re-evaluate from scratch
    }
    SealActiveLocked();
    InstallFreshActiveLocked(
        filled_.back()->base + filled_.back()->padded_bytes, frame_size);
  }
}

void LogFile::SealActiveLocked() {
  LogArena* a = active_.get();
  assert(a->reserved > 0 && !a->sealed.load(std::memory_order_relaxed));
  // sealed_bytes before the flag: a lock-free committer reads it only after
  // seeing sealed == true (the seq_cst store below is also a release).
  a->sealed_bytes.store(a->reserved, std::memory_order_relaxed);
  a->padded_bytes = RoundUpToSector(a->reserved);
  a->sealed.store(true, std::memory_order_seq_cst);
  // Zero the pad tail: recycled arenas carry stale bytes, and both the
  // scanner and ReadRecordAt rely on zero length-prefixes marking padding.
  std::fill(a->data.begin() + static_cast<ptrdiff_t>(a->reserved),
            a->data.begin() + static_cast<ptrdiff_t>(a->padded_bytes), '\0');
  env_->stats().disk_bytes_wasted.fetch_add(a->padded_bytes - a->reserved);
  hist_arena_fill_->Record(static_cast<double>(a->reserved));
  ctr_arena_seals_->Add(1);
  filled_bytes_ += a->padded_bytes;
  filled_.push_back(std::move(active_));
  if (filled_bytes_ >= options_.max_buffer_bytes) drain_requested_ = true;
  writer_cv_.notify_all();
}

void LogFile::InstallFreshActiveLocked(uint64_t base, size_t min_bytes) {
  std::unique_ptr<LogArena> a;
  if (!free_arenas_.empty()) {
    a = std::move(free_arenas_.back());
    free_arenas_.pop_back();
  } else {
    a = std::make_unique<LogArena>();
    ++arena_count_;
  }
  const uint64_t want =
      RoundUpToSector(std::max<uint64_t>(kInitialArenaBytes, min_bytes));
  if (a->data.size() < want) a->data.resize(want, '\0');
  a->base = base;
  a->reserved = 0;
  a->committed.store(0, std::memory_order_relaxed);
  a->sealed.store(false, std::memory_order_relaxed);
  a->sealed_bytes.store(0, std::memory_order_relaxed);
  a->padded_bytes = 0;
  active_ = std::move(a);
}

void LogFile::WriterLoop() {
  audit::UniqueLock lk(mu_);
  for (;;) {
    writer_cv_.wait(lk, [&] {
      mu_.AssertHeld();
      return stop_ || !sync_q_.empty() || drain_requested_;
    });
    if (stop_) return;
    if (crashed_.load(std::memory_order_relaxed)) {
      FailWaitersLocked(SyncRequest::kCrashed, Status::Crashed("log crashed"));
      drain_requested_ = false;
      continue;
    }
    if (options_.batch_flush && !sync_q_.empty()) {
      // Batch window (§5.5): let more flush requests accumulate so they all
      // ride one physical write.
      lk.unlock();
      env_->SleepModelMs(options_.batch_timeout_ms);
      lk.lock();
      if (stop_) return;
      if (crashed_.load(std::memory_order_relaxed)) {
        FailWaitersLocked(SyncRequest::kCrashed,
                          Status::Crashed("log crashed"));
        drain_requested_ = false;
        continue;
      }
    }
    if (!options_.batch_flush && !sync_q_.empty()) {
      // Unbatched cost model (§5.2): the front request owns this physical
      // write; everyone else it covers pays a one-sector barrier.
      sync_q_.front()->owner = true;
    }
    if (active_->reserved > 0 && (drain_requested_ || !sync_q_.empty())) {
      SealActiveLocked();
      InstallFreshActiveLocked(
          filled_.back()->base + filled_.back()->padded_bytes, 0);
    }
    drain_requested_ = false;
    DrainLocked(lk);  // failures are propagated through the waiters
    ResolveWaitersLocked();
  }
}

Status LogFile::DrainLocked(audit::UniqueLock& lk) {
  if (filled_.empty()) return Status::OK();
  // Wait for in-flight encoders of the sealed arenas to commit their spans.
  writer_cv_.wait(lk, [&] {
    mu_.AssertHeld();
    if (stop_ || crashed_.load(std::memory_order_relaxed)) return true;
    for (const auto& a : filled_) {
      // seq_cst pairs with the committers' fetch_add (see Append); the
      // acquire side also makes their encoded bytes visible to the write.
      if (a->committed.load(std::memory_order_seq_cst) !=
          a->sealed_bytes.load(std::memory_order_relaxed)) {
        return false;
      }
    }
    return true;
  });
  if (stop_ || crashed_.load(std::memory_order_relaxed)) {
    return Status::Crashed("log crashed");
  }
  const uint64_t batch_base = filled_.front()->base;
  uint64_t total = 0;
  std::vector<const LogArena*> batch;
  batch.reserve(filled_.size());
  while (!filled_.empty()) {
    filled_bytes_ -= filled_.front()->padded_bytes;
    total += filled_.front()->padded_bytes;
    batch.push_back(filled_.front().get());
    writing_.push_back(std::move(filled_.front()));
    filled_.pop_front();
  }
  // The arenas now sit in writing_: fully committed, mutated by nobody, so
  // the unlocked reads below race with nothing (concurrent ReadRecordAt
  // reads are lock-protected and read-only).
  lk.unlock();
  if (options_.on_physical_write) options_.on_physical_write();
  double t0 = env_->NowModelMs();
  env_->tracer().Record(obs::TraceEventType::kLocalFlushStart, t0, file_name_,
                        /*session=*/"", /*seqno=*/0,
                        "bytes=" + std::to_string(total));
  // Write in blocks of at most max_block_sectors (1–128 sectors, §5.2).
  // Each completed block lands in the completion hook, which advances the
  // durable watermark and wakes covered waiters mid-drain.
  const uint64_t max_block_bytes =
      static_cast<uint64_t>(options_.max_block_sectors) * sector_bytes_;
  Status st;
  for (const LogArena* a : batch) {
    for (uint64_t off = 0; st.ok() && off < a->padded_bytes;
         off += max_block_bytes) {
      uint64_t n = std::min<uint64_t>(max_block_bytes, a->padded_bytes - off);
      st = disk_->WriteAt(file_name_, a->base + off,
                          ByteView(a->data.data() + off, n));
    }
    if (!st.ok()) break;
  }
  double t1 = env_->NowModelMs();
  env_->tracer().Record(obs::TraceEventType::kLocalFlushEnd, t1, file_name_);
  hist_flush_write_ms_->Record(t1 - t0);
  hist_flush_batch_bytes_->Record(static_cast<double>(total));
  ctr_physical_flushes_->Add(1);
  lk.lock();
  if (st.ok() && !crashed_.load(std::memory_order_relaxed)) {
    // Belt and braces: the completion hook normally advanced the watermark
    // block by block; make sure the full batch is published.
    if (durable_end_.load(std::memory_order_relaxed) < batch_base + total) {
      durable_end_.store(batch_base + total, std::memory_order_release);
      durable_gen_.fetch_add(1, std::memory_order_release);
    }
  }
  for (auto& a : writing_) {
    a->reserved = 0;
    a->committed.store(0, std::memory_order_relaxed);
    a->sealed.store(false, std::memory_order_relaxed);
    a->sealed_bytes.store(0, std::memory_order_relaxed);
    a->padded_bytes = 0;
    free_arenas_.push_back(std::move(a));
  }
  writing_.clear();
  arena_cv_.notify_all();
  if (!st.ok()) {
    FailWaitersLocked(SyncRequest::kFailed, st);
    return st;
  }
  return crashed_.load(std::memory_order_relaxed)
             ? Status::Crashed("log crashed")
             : Status::OK();
}

void LogFile::OnDiskWrite(uint64_t offset, uint64_t bytes) {
  audit::LockGuard lk(mu_);
  if (crashed_.load(std::memory_order_relaxed)) return;
  // Contiguity check: the writer drains strictly in LSN order, so each
  // block extends the durable prefix exactly; anything else (an archive
  // copy-back, a foreign writer) must not advance the watermark. Waiters
  // are NOT resolved here — the writer resolves them after the drain so
  // the kLocalFlushStart/End trace pair closes before any dependent event
  // (per-request trace chains rely on that order).
  if (durable_end_.load(std::memory_order_relaxed) == offset) {
    durable_end_.store(offset + bytes, std::memory_order_release);
    durable_gen_.fetch_add(1, std::memory_order_release);
  }
}

void LogFile::ResolveWaitersLocked() {
  bool woke = false;
  const bool crashed = crashed_.load(std::memory_order_relaxed);
  const uint64_t durable = durable_end_.load(std::memory_order_relaxed);
  for (auto it = sync_q_.begin(); it != sync_q_.end();) {
    SyncRequest* r = it->get();
    if (crashed) {
      r->state = SyncRequest::kCrashed;
      r->error = Status::Crashed("log crashed");
    } else if (durable > r->lsn) {
      r->state = (options_.batch_flush || r->owner) ? SyncRequest::kWritten
                                                    : SyncRequest::kCovered;
    } else {
      ++it;
      continue;
    }
    woke = true;
    it = sync_q_.erase(it);
  }
  if (woke) flush_cv_.notify_all();
}

void LogFile::FailWaitersLocked(SyncRequest::State state,
                                const Status& error) {
  if (sync_q_.empty()) return;
  for (auto& r : sync_q_) {
    r->state = state;
    r->error = error;
  }
  sync_q_.clear();
  flush_cv_.notify_all();
}

Status LogFile::FlushUpTo(uint64_t lsn) {
  double t0 = env_->NowModelMs();
  Status st = FlushUpToImpl(lsn);
  hist_flush_wait_ms_->Record(env_->NowModelMs() - t0);
  return st;
}

Status LogFile::FlushUpToImpl(uint64_t lsn) {
  // Lock-free fast path: ride the durable watermark published by the
  // writer's completion path.
  if (durable_end_.load(std::memory_order_acquire) > lsn) {
    return crashed_.load(std::memory_order_acquire)
               ? Status::Crashed("log crashed")
               : Status::OK();
  }
  std::shared_ptr<SyncRequest> req;
  {
    audit::UniqueLock lk(mu_);
    if (lsn >= active_->base + active_->reserved) {
      return Status::InvalidArgument("flush target beyond log end");
    }
    if (durable_end_.load(std::memory_order_relaxed) > lsn) {
      return crashed_.load(std::memory_order_relaxed)
                 ? Status::Crashed("log crashed")
                 : Status::OK();
    }
    if (crashed_.load(std::memory_order_relaxed)) {
      return Status::Crashed("log crashed");
    }
    if (stop_) return Status::IOError("log stopped");
    req = std::make_shared<SyncRequest>();
    req->lsn = lsn;
    sync_q_.push_back(req);
    writer_cv_.notify_all();
    flush_cv_.wait(lk, [&] {
      mu_.AssertHeld();
      return req->state != SyncRequest::kPending;
    });
  }
  switch (req->state) {
    case SyncRequest::kWritten:
      return Status::OK();
    case SyncRequest::kCovered:
      break;  // pay the barrier below, outside the lock
    case SyncRequest::kCrashed:
      return Status::Crashed("log crashed");
    case SyncRequest::kFailed:
      return req->error;
    case SyncRequest::kPending:
      return Status::Internal("flush waiter woke unresolved");
  }
  // Unbatched (§5.2): someone else's physical write made our records
  // durable while we waited our turn; the sync still pays a one-sector
  // barrier on our own thread — this non-coalescing is what batch flushing
  // (§5.5) removes.
  if (options_.on_physical_write) options_.on_physical_write();
  double bt0 = env_->NowModelMs();
  env_->tracer().Record(obs::TraceEventType::kLocalFlushStart, bt0, file_name_,
                        /*session=*/"", /*seqno=*/0, "barrier");
  disk_->Barrier(1);
  double bt1 = env_->NowModelMs();
  env_->tracer().Record(obs::TraceEventType::kLocalFlushEnd, bt1, file_name_);
  hist_flush_write_ms_->Record(bt1 - bt0);
  ctr_physical_flushes_->Add(1);
  return crashed_.load(std::memory_order_acquire)
             ? Status::Crashed("log crashed")
             : Status::OK();
}

Status LogFile::FlushAll() {
  uint64_t end;
  {
    audit::LockGuard lk(mu_);
    end = active_->base + active_->reserved;
  }
  if (end == durable_end_.load(std::memory_order_acquire)) {
    return crashed_.load(std::memory_order_acquire) ? Status::Crashed("")
                                                    : Status::OK();
  }
  return FlushUpTo(end - 1);
}

Status LogFile::ReadRecordAt(uint64_t lsn, LogRecord* out) {
  {
    audit::UniqueLock lk(mu_);
    if (lsn >= active_->base + active_->reserved) {
      return Status::InvalidArgument("LSN beyond log end");
    }
    // Serve from the volatile arenas (active, filled, or mid-write) unless
    // the log crashed — a crash discards volatile content, so post-crash
    // reads must go to disk like a recovering process would.
    if (!crashed_.load(std::memory_order_relaxed)) {
      const LogArena* a = FindArenaLocked(lsn);
      if (a != nullptr) {
        const size_t limit = a->sealed ? a->padded_bytes : a->reserved;
        ByteView view(a->data.data(), limit);
        ByteView body;
        size_t frame_len = 0;
        Status st = ParseFrame(view, lsn - a->base, &body, &frame_len);
        if (st.IsNotFound()) return Status::Corruption("LSN points at padding");
        MSPLOG_RETURN_IF_ERROR(st);
        Status ds = LogRecord::Decode(body, out);
        out->lsn = lsn;
        return ds;
      }
    }
  }
  // Durable region: read header then body from disk.
  Bytes header;
  MSPLOG_RETURN_IF_ERROR(
      disk_->ReadAt(file_name_, lsn, kFrameHeaderBytes, &header));
  if (header.size() < kFrameHeaderBytes) {
    return Status::Corruption("truncated frame header on disk");
  }
  uint32_t len = GetU32At(header, 0);
  if (len == 0) return Status::Corruption("LSN points at padding");
  Bytes body;
  MSPLOG_RETURN_IF_ERROR(
      disk_->ReadAt(file_name_, lsn + kFrameHeaderBytes, len, &body));
  if (body.size() < len) return Status::Corruption("truncated frame body");
  uint32_t stored = crc32c::Unmask(GetU32At(header, 4));
  if (crc32c::Compute(body) != stored) {
    return Status::Corruption("frame CRC mismatch");
  }
  Status ds = LogRecord::Decode(body, out);
  out->lsn = lsn;
  return ds;
}

const LogFile::LogArena* LogFile::FindArenaLocked(uint64_t lsn) const {
  auto covers = [lsn](const LogArena& a) {
    const size_t limit = a.sealed ? a.padded_bytes : a.reserved;
    return lsn >= a.base && lsn < a.base + limit;
  };
  if (covers(*active_)) return active_.get();
  for (const auto& a : filled_) {
    if (covers(*a)) return a.get();
  }
  for (const auto& a : writing_) {
    if (covers(*a)) return a.get();
  }
  return nullptr;
}

uint64_t LogFile::durable_lsn() const {
  return durable_end_.load(std::memory_order_acquire);
}

uint64_t LogFile::end_lsn() const {
  audit::LockGuard lk(mu_);
  return active_->base + active_->reserved;
}

uint64_t LogFile::ReclaimUpTo(uint64_t lsn) {
  audit::UniqueLock lk(mu_);
  uint64_t target =
      std::min(lsn, durable_end_.load(std::memory_order_acquire));
  target = target / sector_bytes_ * sector_bytes_;  // sector floor
  if (target <= reclaimed_end_) return 0;
  uint64_t base = reclaimed_end_;
  reclaimed_end_ = target;
  lk.unlock();
  disk_->PunchHole(file_name_, base, target - base);
  return target - base;
}

uint64_t LogFile::reclaimed_lsn() const {
  audit::LockGuard lk(mu_);
  return reclaimed_end_;
}

uint64_t LogFile::ArchiveUpTo(uint64_t lsn) {
  audit::UniqueLock lk(mu_);
  uint64_t target =
      std::min(lsn, durable_end_.load(std::memory_order_acquire));
  target = target / sector_bytes_ * sector_bytes_;  // sector floor
  if (target <= reclaimed_end_) return 0;
  uint64_t base = reclaimed_end_;
  reclaimed_end_ = target;
  // Claiming the range above makes it ours exclusively: concurrent archive /
  // reclaim calls see the advanced watermark and back off, appends only ever
  // touch the tail, so the copy below races with nothing.
  archived_end_ = target;
  lk.unlock();
  Bytes segment;
  Status st = disk_->ReadAt(file_name_, base, target - base, &segment);
  if (st.ok()) {
    st = disk_->WriteAt(ArchiveSegmentName(file_name_, base), 0, segment);
  }
  if (!st.ok()) {
    // Copy-out failed: keep the live bytes (skip the punch) so no data is
    // lost; the range stays claimed and simply is not preserved.
    audit::LockGuard relk(mu_);
    archived_end_ = std::min(archived_end_, base);
    return 0;
  }
  disk_->PunchHole(file_name_, base, target - base);
  return target - base;
}

LogExtents LogFile::Extents() const {
  audit::LockGuard lk(mu_);
  LogExtents x;
  x.end_lsn = active_->base + active_->reserved;
  x.durable_lsn = durable_end_.load(std::memory_order_relaxed);
  x.reclaimed_lsn = reclaimed_end_;
  x.archived_lsn = archived_end_;
  return x;
}

std::string LogFile::ArchiveSegmentName(const std::string& log_file,
                                        uint64_t base) {
  return log_file + ".arc." + std::to_string(base);
}

std::vector<LogArchiveSegment> LogFile::ListArchiveSegments(
    SimDisk* disk, const std::string& log_file) {
  std::vector<LogArchiveSegment> out;
  const std::string prefix = log_file + ".arc.";
  for (const std::string& f : disk->ListFiles()) {
    if (f.size() <= prefix.size() || f.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string suffix = f.substr(prefix.size());
    if (suffix.find_first_not_of("0123456789") != std::string::npos) continue;
    LogArchiveSegment seg;
    seg.base = std::stoull(suffix);
    seg.bytes = disk->FileSize(f);
    seg.file = f;
    out.push_back(std::move(seg));
  }
  std::sort(out.begin(), out.end(),
            [](const LogArchiveSegment& a, const LogArchiveSegment& b) {
              return a.base < b.base;
            });
  return out;
}

void LogFile::Crash() {
  audit::LockGuard lk(mu_);
  crashed_.store(true, std::memory_order_release);
  // Volatile arenas die. Sealed-but-unwritten arenas park in the graveyard:
  // in-flight encoders may still be committing into them, so their memory
  // must stay alive and unrecycled. The active arena stays installed so
  // post-crash appends still have somewhere to land; nothing ever drains it.
  while (!filled_.empty()) {
    graveyard_.push_back(std::move(filled_.front()));
    filled_.pop_front();
  }
  filled_bytes_ = 0;
  FailWaitersLocked(SyncRequest::kCrashed, Status::Crashed("log crashed"));
  writer_cv_.notify_all();
  arena_cv_.notify_all();
}

}  // namespace msplog
