#include "audit/mutex.h"
#include "log/log_file.h"

#include <algorithm>
#include <cassert>

#include "common/crc32c.h"

namespace msplog {

namespace {
constexpr size_t kFrameHeaderBytes = 8;  // u32 len + u32 masked crc

void PutU32At(Bytes* buf, size_t pos, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*buf)[pos + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

uint32_t GetU32At(ByteView buf, size_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(buf[pos + i])) << (8 * i);
  }
  return v;
}
}  // namespace

Bytes FrameRecord(ByteView body) {
  Bytes frame(kFrameHeaderBytes, '\0');
  PutU32At(&frame, 0, static_cast<uint32_t>(body.size()));
  PutU32At(&frame, 4, crc32c::Mask(crc32c::Compute(body)));
  frame.append(body.data(), body.size());
  return frame;
}

Status ParseFrame(ByteView data, size_t pos, ByteView* body_out,
                  size_t* frame_len) {
  if (pos + kFrameHeaderBytes > data.size()) {
    return Status::Corruption("truncated frame header");
  }
  uint32_t len = GetU32At(data, pos);
  if (len == 0) return Status::NotFound("padding");
  if (pos + kFrameHeaderBytes + len > data.size()) {
    return Status::Corruption("truncated frame body");
  }
  uint32_t stored = crc32c::Unmask(GetU32At(data, pos + 4));
  ByteView body = data.substr(pos + kFrameHeaderBytes, len);
  if (crc32c::Compute(body) != stored) {
    return Status::Corruption("frame CRC mismatch");
  }
  *body_out = body;
  *frame_len = kFrameHeaderBytes + len;
  return Status::OK();
}

LogFile::LogFile(SimEnvironment* env, SimDisk* disk, std::string file_name,
                 LogFileOptions options)
    : env_(env),
      disk_(disk),
      file_name_(std::move(file_name)),
      options_(options),
      sector_bytes_(disk->geometry().sector_bytes) {
  obs::MetricsRegistry& m = env_->metrics();
  hist_append_bytes_ = m.GetHistogram("log.append_bytes");
  hist_flush_wait_ms_ = m.GetHistogram("log.flush_wait_ms");
  hist_flush_write_ms_ = m.GetHistogram("log.flush_write_ms");
  hist_flush_batch_bytes_ = m.GetHistogram("log.flush_batch_bytes");
  ctr_physical_flushes_ = m.GetCounter("log.physical_flushes");
  // Resume appending after the existing durable extent (sector-aligned).
  // The first sector is reserved so that no record ever has LSN 0 — LSN 0
  // is the "none" sentinel in checkpoints and session metadata. The scanner
  // treats the reserved sector as padding and skips it.
  uint64_t size = disk_->FileSize(file_name_);
  uint64_t aligned = (size + sector_bytes_ - 1) / sector_bytes_ * sector_bytes_;
  aligned = std::max<uint64_t>(aligned, sector_bytes_);
  durable_end_ = aligned;
  buffer_base_ = aligned;
  if (options_.batch_flush) {
    batch_thread_ = std::thread([this] { BatchFlusherLoop(); });
  }
}

LogFile::~LogFile() { Stop(); }

void LogFile::Stop() {
  {
    audit::LockGuard lk(mu_);
    if (stop_) return;
    stop_ = true;
    cv_.notify_all();
  }
  if (batch_thread_.joinable()) batch_thread_.join();
}

uint64_t LogFile::Append(const LogRecord& rec, size_t* framed_size) {
  Bytes frame = FrameRecord(rec.Encode());
  if (framed_size) *framed_size = frame.size();
  audit::UniqueLock lk(mu_);
  uint64_t lsn = buffer_base_ + buffer_.size();
  buffer_.append(frame);
  env_->stats().log_records_appended.fetch_add(1);
  env_->stats().log_bytes_appended.fetch_add(frame.size());
  hist_append_bytes_->Record(static_cast<double>(frame.size()));
  if (buffer_.size() > options_.max_buffer_bytes && !crashed_) {
    // Safety valve: flush inline on the appender's thread.
    if (flush_in_progress_) {
      cv_.wait(lk, [&] {
        mu_.AssertHeld();
        return !flush_in_progress_ || crashed_;
      });
    } else {
      DoFlushLocked(lk);
    }
  }
  return lsn;
}

Status LogFile::DoFlushLocked(audit::UniqueLock& lk) {
  mu_.AssertHeld();
  assert(!flush_in_progress_);
  if (crashed_) return Status::Crashed("log crashed");
  if (buffer_.empty()) return Status::OK();
  flush_in_progress_ = true;

  // Pad to a sector boundary; the remainder of the last sector is wasted.
  Bytes block = std::move(buffer_);
  uint64_t base = buffer_base_;
  size_t padded =
      (block.size() + sector_bytes_ - 1) / sector_bytes_ * sector_bytes_;
  env_->stats().disk_bytes_wasted.fetch_add(padded - block.size());
  block.resize(padded, '\0');
  pending_ = std::move(block);
  pending_base_ = base;
  buffer_.clear();
  buffer_base_ = base + padded;

  // View taken under the lock for the unlocked write below: while
  // flush_in_progress_ is set no other thread mutates pending_, so the view
  // stays valid (concurrent ReadRecordAt reads are lock-protected and
  // read-only).
  ByteView pending_view(pending_);
  lk.unlock();
  if (options_.on_physical_write) options_.on_physical_write();
  double t0 = env_->NowModelMs();
  env_->tracer().Record(obs::TraceEventType::kLocalFlushStart, t0, file_name_,
                        /*session=*/"", /*seqno=*/0,
                        "bytes=" + std::to_string(padded));
  // Write in blocks of at most max_block_sectors (1–128 sectors, §5.2).
  const uint64_t max_block_bytes =
      static_cast<uint64_t>(options_.max_block_sectors) * sector_bytes_;
  Status st;
  for (uint64_t off = 0; off < padded; off += max_block_bytes) {
    uint64_t n = std::min<uint64_t>(max_block_bytes, padded - off);
    st = disk_->WriteAt(file_name_, base + off, pending_view.substr(off, n));
    if (!st.ok()) break;
  }
  double t1 = env_->NowModelMs();
  env_->tracer().Record(obs::TraceEventType::kLocalFlushEnd, t1, file_name_);
  hist_flush_write_ms_->Record(t1 - t0);
  hist_flush_batch_bytes_->Record(static_cast<double>(padded));
  ctr_physical_flushes_->Add(1);
  lk.lock();

  if (st.ok() && !crashed_) {
    durable_end_ = pending_base_ + pending_.size();
  }
  pending_.clear();
  flush_in_progress_ = false;
  cv_.notify_all();
  return crashed_ ? Status::Crashed("log crashed") : st;
}

Status LogFile::FlushUpTo(uint64_t lsn) {
  double t0 = env_->NowModelMs();
  Status st = FlushUpToImpl(lsn);
  hist_flush_wait_ms_->Record(env_->NowModelMs() - t0);
  return st;
}

Status LogFile::FlushUpToImpl(uint64_t lsn) {
  audit::UniqueLock lk(mu_);
  if (lsn >= buffer_base_ + buffer_.size()) {
    return Status::InvalidArgument("flush target beyond log end");
  }
  if (durable_end_ > lsn) {
    return crashed_ ? Status::Crashed("log crashed") : Status::OK();
  }
  if (options_.batch_flush) {
    // Group commit: park until the batch flusher's next write covers us.
    while (durable_end_ <= lsn) {
      if (crashed_) return Status::Crashed("log crashed");
      flush_requested_ = true;
      cv_.notify_all();
      cv_.wait(lk, [&] {
        mu_.AssertHeld();
        return durable_end_ > lsn || crashed_;
      });
    }
    return crashed_ ? Status::Crashed("log crashed") : Status::OK();
  }
  // Unbatched: every flush call that found undurable data issues one
  // physical write, exactly like the paper's prototype ("each log flush is
  // one log block", §5.2). If a concurrent flush made our records durable
  // while we waited our turn, the sync still pays a one-sector barrier —
  // this non-coalescing is what batch flushing (§5.5) removes.
  while (flush_in_progress_) {
    if (crashed_) return Status::Crashed("log crashed");
    cv_.wait(lk, [&] {
      mu_.AssertHeld();
      return !flush_in_progress_ || crashed_;
    });
  }
  if (crashed_) return Status::Crashed("log crashed");
  if (durable_end_ <= lsn) {
    MSPLOG_RETURN_IF_ERROR(DoFlushLocked(lk));
  } else {
    flush_in_progress_ = true;
    lk.unlock();
    if (options_.on_physical_write) options_.on_physical_write();
    double bt0 = env_->NowModelMs();
    env_->tracer().Record(obs::TraceEventType::kLocalFlushStart, bt0,
                          file_name_, /*session=*/"", /*seqno=*/0, "barrier");
    disk_->Barrier(1);
    double bt1 = env_->NowModelMs();
    env_->tracer().Record(obs::TraceEventType::kLocalFlushEnd, bt1, file_name_);
    hist_flush_write_ms_->Record(bt1 - bt0);
    ctr_physical_flushes_->Add(1);
    lk.lock();
    flush_in_progress_ = false;
    cv_.notify_all();
  }
  return crashed_ ? Status::Crashed("log crashed") : Status::OK();
}

Status LogFile::FlushAll() {
  uint64_t end;
  {
    audit::LockGuard lk(mu_);
    end = buffer_base_ + buffer_.size();
    if (end == durable_end_) return crashed_ ? Status::Crashed("") : Status::OK();
  }
  return FlushUpTo(end - 1);
}

Status LogFile::ReadRecordAt(uint64_t lsn, LogRecord* out) {
  Bytes frame_bytes;
  {
    audit::UniqueLock lk(mu_);
    if (lsn >= buffer_base_) {
      if (lsn >= buffer_base_ + buffer_.size()) {
        return Status::InvalidArgument("LSN beyond log end");
      }
      ByteView body;
      size_t frame_len = 0;
      Status st = ParseFrame(buffer_, lsn - buffer_base_, &body, &frame_len);
      if (st.IsNotFound()) return Status::Corruption("LSN points at padding");
      MSPLOG_RETURN_IF_ERROR(st);
      Status ds = LogRecord::Decode(body, out);
      out->lsn = lsn;
      return ds;
    }
    if (!pending_.empty() && lsn >= pending_base_ &&
        lsn < pending_base_ + pending_.size()) {
      ByteView body;
      size_t frame_len = 0;
      Status st = ParseFrame(pending_, lsn - pending_base_, &body, &frame_len);
      if (st.IsNotFound()) return Status::Corruption("LSN points at padding");
      MSPLOG_RETURN_IF_ERROR(st);
      Status ds = LogRecord::Decode(body, out);
      out->lsn = lsn;
      return ds;
    }
  }
  // Durable region: read header then body from disk.
  Bytes header;
  MSPLOG_RETURN_IF_ERROR(disk_->ReadAt(file_name_, lsn, kFrameHeaderBytes,
                                       &header));
  if (header.size() < kFrameHeaderBytes) {
    return Status::Corruption("truncated frame header on disk");
  }
  uint32_t len = GetU32At(header, 0);
  if (len == 0) return Status::Corruption("LSN points at padding");
  Bytes body;
  MSPLOG_RETURN_IF_ERROR(disk_->ReadAt(file_name_, lsn + kFrameHeaderBytes,
                                       len, &body));
  if (body.size() < len) return Status::Corruption("truncated frame body");
  uint32_t stored = crc32c::Unmask(GetU32At(header, 4));
  if (crc32c::Compute(body) != stored) {
    return Status::Corruption("frame CRC mismatch");
  }
  Status ds = LogRecord::Decode(body, out);
  out->lsn = lsn;
  return ds;
}

uint64_t LogFile::durable_lsn() const {
  audit::LockGuard lk(mu_);
  return durable_end_;
}

uint64_t LogFile::end_lsn() const {
  audit::LockGuard lk(mu_);
  return buffer_base_ + buffer_.size();
}

uint64_t LogFile::ReclaimUpTo(uint64_t lsn) {
  audit::UniqueLock lk(mu_);
  uint64_t target = std::min(lsn, durable_end_);
  target = target / sector_bytes_ * sector_bytes_;  // sector floor
  if (target <= reclaimed_end_) return 0;
  uint64_t base = reclaimed_end_;
  reclaimed_end_ = target;
  lk.unlock();
  disk_->PunchHole(file_name_, base, target - base);
  return target - base;
}

uint64_t LogFile::reclaimed_lsn() const {
  audit::LockGuard lk(mu_);
  return reclaimed_end_;
}

uint64_t LogFile::ArchiveUpTo(uint64_t lsn) {
  audit::UniqueLock lk(mu_);
  uint64_t target = std::min(lsn, durable_end_);
  target = target / sector_bytes_ * sector_bytes_;  // sector floor
  if (target <= reclaimed_end_) return 0;
  uint64_t base = reclaimed_end_;
  reclaimed_end_ = target;
  // Claiming the range above makes it ours exclusively: concurrent archive /
  // reclaim calls see the advanced watermark and back off, appends only ever
  // touch the tail, so the copy below races with nothing.
  archived_end_ = target;
  lk.unlock();
  Bytes segment;
  Status st = disk_->ReadAt(file_name_, base, target - base, &segment);
  if (st.ok()) {
    st = disk_->WriteAt(ArchiveSegmentName(file_name_, base), 0, segment);
  }
  if (!st.ok()) {
    // Copy-out failed: keep the live bytes (skip the punch) so no data is
    // lost; the range stays claimed and simply is not preserved.
    audit::LockGuard relk(mu_);
    archived_end_ = std::min(archived_end_, base);
    return 0;
  }
  disk_->PunchHole(file_name_, base, target - base);
  return target - base;
}

LogExtents LogFile::Extents() const {
  audit::LockGuard lk(mu_);
  LogExtents x;
  x.end_lsn = buffer_base_ + buffer_.size();
  x.durable_lsn = durable_end_;
  x.reclaimed_lsn = reclaimed_end_;
  x.archived_lsn = archived_end_;
  return x;
}

std::string LogFile::ArchiveSegmentName(const std::string& log_file,
                                        uint64_t base) {
  return log_file + ".arc." + std::to_string(base);
}

std::vector<LogArchiveSegment> LogFile::ListArchiveSegments(
    SimDisk* disk, const std::string& log_file) {
  std::vector<LogArchiveSegment> out;
  const std::string prefix = log_file + ".arc.";
  for (const std::string& f : disk->ListFiles()) {
    if (f.size() <= prefix.size() || f.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string suffix = f.substr(prefix.size());
    if (suffix.find_first_not_of("0123456789") != std::string::npos) continue;
    LogArchiveSegment seg;
    seg.base = std::stoull(suffix);
    seg.bytes = disk->FileSize(f);
    seg.file = f;
    out.push_back(std::move(seg));
  }
  std::sort(out.begin(), out.end(),
            [](const LogArchiveSegment& a, const LogArchiveSegment& b) {
              return a.base < b.base;
            });
  return out;
}

void LogFile::Crash() {
  audit::LockGuard lk(mu_);
  crashed_ = true;
  buffer_.clear();
  cv_.notify_all();
}

void LogFile::BatchFlusherLoop() {
  audit::UniqueLock lk(mu_);
  while (!stop_) {
    cv_.wait(lk, [&] {
      mu_.AssertHeld();
      return stop_ || flush_requested_;
    });
    if (stop_) break;
    flush_requested_ = false;
    // Batch window: let more flush requests accumulate before the write.
    lk.unlock();
    env_->SleepModelMs(options_.batch_timeout_ms);
    lk.lock();
    if (stop_ || crashed_) continue;
    if (flush_in_progress_) {
      cv_.wait(lk, [&] {
        mu_.AssertHeld();
        return !flush_in_progress_ || stop_;
      });
      if (stop_) break;
    }
    DoFlushLocked(lk);
  }
}

}  // namespace msplog
