// LogFile — the single physical log shared by all sessions of an MSP (§1.3).
//
// Records are framed as [u32 len][u32 masked CRC32C][body]. Appends go to an
// in-memory arena (volatile: lost on crash); a flush pads the arena to a
// 512 B sector boundary and writes it as one or more blocks of at most 128
// sectors, matching §5.2 ("log blocks are aligned at sector boundaries and
// when a log block is flushed, its last sector may not be full — on average
// half a sector is wasted on every flush"). A zero length prefix marks
// padding: readers skip to the next sector boundary.
//
// An LSN is the byte offset of a record's frame in the log file. Because
// flushes insert padding, LSNs are not dense, but they are strictly
// monotonic, which is all the dependency-vector machinery needs.
//
// Hot-path shape (async pipeline): Append reserves a span in the active
// arena under a short critical section, encodes the record into the span
// with no lock held, then commits with a single lock-free atomic add —
// appenders never wait behind a physical write. A dedicated log-writer
// thread seals filled arenas and drains them to disk; durability is
// published through an atomic durable-LSN watermark advanced by the disk's
// write-completion hook, so FlushUpTo on already-durable data is a single
// atomic load. Waiters park on a per-request state resolved by the
// completion path rather than a broadcast condvar scan.
//
// Batch flushing (§5.5): when enabled, a flush request parks until a timeout
// (default 8 ms model time, roughly one disk write) so that several requests
// ride a single physical write. Without it, every FlushUpTo that found
// undurable data pays one physical I/O: the request that triggers the drain
// owns the write, and every other request covered by it pays a one-sector
// barrier on its own thread — the paper's non-coalescing cost model.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "audit/mutex.h"
#include "common/bytes.h"
#include "common/status.h"
#include "log/log_record.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"

namespace msplog {

struct LogFileOptions {
  bool batch_flush = false;
  double batch_timeout_ms = 8.0;
  uint32_t max_block_sectors = 128;
  /// Safety valve: buffered-but-unwritten bytes beyond this trigger a
  /// background drain even without an explicit request, and a single arena
  /// never grows beyond this (bounds memory under pure optimism).
  uint64_t max_buffer_bytes = 4 << 20;
  /// Invoked once per physical write (outside the log mutex) — used by the
  /// MSP to charge CPU time for issuing an I/O, which is what makes batch
  /// flushing reduce CPU load as well as disk load (§5.5).
  std::function<void()> on_physical_write;
};

/// One consistent snapshot of the log's extent watermarks, taken under a
/// single lock hold. Prefer this over calling `end_lsn()` / `durable_lsn()` /
/// `reclaimed_lsn()` back to back — three separate lock acquisitions can
/// interleave with a flush or reclamation and report e.g. a durable extent
/// ahead of the tail it was read with.
struct LogExtents {
  uint64_t end_lsn = 0;        ///< offset of the next append
  uint64_t durable_lsn = 0;    ///< first offset NOT yet durable
  uint64_t reclaimed_lsn = 0;  ///< first offset not reclaimed (punched)
  uint64_t archived_lsn = 0;   ///< reclaimed prefix preserved in archives
};

/// One closed archive segment: `[base, base + bytes)` of the original log,
/// preserved verbatim in `file` when the live range was punched.
struct LogArchiveSegment {
  uint64_t base = 0;
  uint64_t bytes = 0;
  std::string file;
};

class LogFile {
 public:
  LogFile(SimEnvironment* env, SimDisk* disk, std::string file_name,
          LogFileOptions options = LogFileOptions());
  ~LogFile();

  LogFile(const LogFile&) = delete;
  LogFile& operator=(const LogFile&) = delete;

  /// Append `rec` to the volatile arena; returns its LSN. The record is
  /// encoded directly into log memory (no intermediate buffer); the only
  /// blocking is a short reservation critical section, or arena
  /// backpressure when the writer cannot keep up. If `framed_size` is
  /// non-null it receives the on-log size of the record (frame included).
  /// If `dv_wire` is non-null it must be the encoding of `rec.dv` and is
  /// spliced in verbatim (batch DV piggybacking — consecutive same-session
  /// records share one encoded DV).
  uint64_t Append(const LogRecord& rec, size_t* framed_size = nullptr,
                  const Bytes* dv_wire = nullptr);

  /// Block until the record that starts at `lsn` is durable.
  Status FlushUpTo(uint64_t lsn);

  /// Flush everything appended so far.
  Status FlushAll();

  /// Read the record whose frame starts at `lsn` — served from the volatile
  /// arenas or from disk as appropriate. Fails with Corruption on a padding
  /// or garbage offset.
  Status ReadRecordAt(uint64_t lsn, LogRecord* out);

  /// First offset that is NOT yet durable (lock-free watermark read).
  uint64_t durable_lsn() const;
  /// Offset at which the next append will land.
  uint64_t end_lsn() const;
  const std::string& file_name() const { return file_name_; }
  SimDisk* disk() const { return disk_; }

  /// Log-space reclamation: release every durable byte strictly below
  /// `lsn` (rounded down to a sector boundary). Crash recovery scans start
  /// at the MSP checkpoint's minimum required position, so everything below
  /// it is dead weight; the punched range reads back as padding, which the
  /// scanner skips naturally. Returns the number of bytes reclaimed.
  uint64_t ReclaimUpTo(uint64_t lsn);

  /// First LSN that has not been reclaimed.
  uint64_t reclaimed_lsn() const;

  /// Segment archiving (checkpoint-watermark-driven): like ReclaimUpTo, but
  /// the released range is first copied verbatim into an archive segment
  /// file (`<log>.arc.<base>`) before the live bytes are punched. The live
  /// log behaves exactly as after ReclaimUpTo (the range reads back as
  /// padding); offline tools can overlay the archive segments to reconstruct
  /// the full historical image. Returns the number of bytes archived.
  uint64_t ArchiveUpTo(uint64_t lsn);

  /// One consistent snapshot of all extent watermarks (single lock hold).
  LogExtents Extents() const;

  /// Archive segment file name for a range starting at `base`.
  static std::string ArchiveSegmentName(const std::string& log_file,
                                        uint64_t base);

  /// Enumerate `log_file`'s archive segments on `disk`, sorted by base
  /// offset. Usable offline (no LogFile instance required).
  static std::vector<LogArchiveSegment> ListArchiveSegments(
      SimDisk* disk, const std::string& log_file);

  /// Simulate the crash of the owning MSP: the volatile arenas are discarded
  /// and all flush waiters fail with Status::Crashed. The durable prefix on
  /// disk is untouched.
  void Crash();

  /// Stop the log-writer thread without losing the arenas. Pending flush
  /// waiters fail with IOError (nobody is left to resolve them).
  void Stop();

 private:
  /// One reservation arena. Appenders reserve [reserved, reserved+frame)
  /// under mu_, encode into the span lock-free, then publish with one
  /// seq_cst fetch_add on `committed` — no lock on the commit side. Once
  /// sealed, no new reservations land here; the writer drains it after
  /// `committed` catches up to `sealed_bytes`. The object address is stable
  /// across container moves (held by unique_ptr), so in-flight encoder
  /// spans survive rotation.
  struct LogArena {
    Bytes data;               ///< capacity = data.size(), sector multiple
    uint64_t base = 0;        ///< LSN of data[0]
    size_t reserved = 0;      ///< bytes handed out to appenders
    /// Bytes fully encoded (CRC in place). seq_cst ops pair with `sealed`
    /// (Dekker): a committer that misses the seal flag is ordered before
    /// the seal in the seq_cst total order, so the writer's post-seal
    /// predicate read is guaranteed to observe its commit.
    std::atomic<size_t> committed{0};
    std::atomic<bool> sealed{false};
    /// == reserved; written before `sealed` is set. Atomic because the
    /// last committer may still be between its fetch_add and this read
    /// when the writer drains and recycles the arena (resetting it).
    std::atomic<size_t> sealed_bytes{0};
    size_t padded_bytes = 0;  ///< sealed_bytes rounded up to a sector
  };

  /// A parked FlushUpTo call. Resolved by the completion path (durable
  /// watermark advance), the writer (failure / crash) or Crash()/Stop().
  struct SyncRequest {
    enum State {
      kPending,
      kWritten,  ///< our request owned (or rode, in batch mode) the write
      kCovered,  ///< someone else's write covered us: pay a barrier (§5.2)
      kFailed,   ///< physical write failed or log stopped: see `error`
      kCrashed,  ///< log crashed while we waited
    };
    uint64_t lsn = 0;
    State state = kPending;
    bool owner = false;
    Status error;
  };

  Status FlushUpToImpl(uint64_t lsn) EXCLUDES(mu_);
  /// Returns the arena (with room for `frame_size` more bytes reserved by
  /// the caller) — growing, sealing+rotating, or waiting on backpressure as
  /// needed. `lk` is the caller's lock on mu_.
  LogArena* ReserveLocked(size_t frame_size, audit::UniqueLock& lk)
      REQUIRES(mu_);
  void SealActiveLocked() REQUIRES(mu_);
  void InstallFreshActiveLocked(uint64_t base, size_t min_bytes)
      REQUIRES(mu_);
  /// Seals/collects filled arenas and performs the physical write with the
  /// lock dropped (`lk` released and reacquired around the I/O); entered and
  /// exited with mu_ held.
  Status DrainLocked(audit::UniqueLock& lk) REQUIRES(mu_);
  /// Resolve every parked sync request satisfied by the current durable
  /// watermark (or failed by a crash) and wake the waiters.
  void ResolveWaitersLocked() REQUIRES(mu_);
  void FailWaitersLocked(SyncRequest::State state, const Status& error)
      REQUIRES(mu_);
  const LogArena* FindArenaLocked(uint64_t lsn) const REQUIRES(mu_);
  void WriterLoop();
  /// SimDisk write-completion hook: advances the durable watermark when a
  /// contiguous block of this log's file lands on disk.
  void OnDiskWrite(uint64_t offset, uint64_t bytes) EXCLUDES(mu_);
  uint64_t RoundUpToSector(uint64_t n) const {
    return (n + sector_bytes_ - 1) / sector_bytes_ * sector_bytes_;
  }

  SimEnvironment* env_;
  SimDisk* disk_;
  std::string file_name_;
  LogFileOptions options_;
  uint32_t sector_bytes_;
  int completion_hook_id_ = -1;  ///< set once in the ctor

  // Observability handles (owned by the environment's registry).
  obs::Histogram* hist_append_bytes_;      ///< "log.append_bytes"
  obs::Histogram* hist_flush_wait_ms_;     ///< "log.flush_wait_ms" per FlushUpTo
  obs::Histogram* hist_flush_write_ms_;    ///< "log.flush_write_ms" per phys write
  obs::Histogram* hist_flush_batch_bytes_; ///< "log.flush_batch_bytes"
  obs::Histogram* hist_arena_fill_;        ///< "log.arena_fill_bytes" per seal
  obs::Counter* ctr_physical_flushes_;     ///< "log.physical_flushes"
  obs::Counter* ctr_arena_seals_;          ///< "log.arena_seals"
  obs::Counter* ctr_arena_backpressure_;   ///< "log.arena_backpressure_waits"

  /// Durable-LSN watermark: first offset NOT yet durable. Written under mu_
  /// (completion hook / writer), read lock-free by the FlushUpTo fast path.
  std::atomic<uint64_t> durable_end_{0};
  /// Generation counter bumped on every watermark advance — a futex-style
  /// epoch for observers that want "did durability move?" without the lock.
  std::atomic<uint64_t> durable_gen_{0};
  std::atomic<bool> crashed_{false};

  mutable audit::Mutex mu_{"log_file"};
  audit::CondVar writer_cv_;  ///< writer: work available / commits caught up
  audit::CondVar arena_cv_;   ///< appenders: arena freed (backpressure)
  audit::CondVar flush_cv_;   ///< FlushUpTo waiters: request resolved
  std::unique_ptr<LogArena> active_ GUARDED_BY(mu_);
  std::deque<std::unique_ptr<LogArena>> filled_ GUARDED_BY(mu_);
  /// Moved out of filled_ under mu_ for the duration of the unlocked
  /// physical write, so ReadRecordAt can still find the bytes.
  std::vector<std::unique_ptr<LogArena>> writing_ GUARDED_BY(mu_);
  std::vector<std::unique_ptr<LogArena>> free_arenas_ GUARDED_BY(mu_);
  /// Crash-time parking lot: sealed arenas that will never be written but
  /// whose memory must outlive any in-flight encoder.
  std::vector<std::unique_ptr<LogArena>> graveyard_ GUARDED_BY(mu_);
  std::deque<std::shared_ptr<SyncRequest>> sync_q_ GUARDED_BY(mu_);
  uint64_t filled_bytes_ GUARDED_BY(mu_) = 0;  ///< padded bytes awaiting drain
  size_t arena_count_ GUARDED_BY(mu_) = 0;
  bool drain_requested_ GUARDED_BY(mu_) = false;
  /// Prefix released by ReclaimUpTo / ArchiveUpTo.
  uint64_t reclaimed_end_ GUARDED_BY(mu_) = 0;
  /// Prefix preserved in archive segments before punching (<= reclaimed_end_;
  /// lags it when plain ReclaimUpTo calls interleave with archiving).
  uint64_t archived_end_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread writer_thread_;
};

/// Build the on-disk frame for an encoded record body.
Bytes FrameRecord(ByteView body);

/// Parse a frame at `data[pos...]`. On success sets `*body_out` and
/// `*frame_len`. A zero length prefix yields Status::NotFound (padding).
/// Truncation / CRC mismatch yields Corruption.
Status ParseFrame(ByteView data, size_t pos, ByteView* body_out,
                  size_t* frame_len);

}  // namespace msplog
