// LogFile — the single physical log shared by all sessions of an MSP (§1.3).
//
// Records are framed as [u32 len][u32 masked CRC32C][body]. Appends go to an
// in-memory buffer (volatile: lost on crash); a flush pads the buffer to a
// 512 B sector boundary and writes it as one or more blocks of at most 128
// sectors, matching §5.2 ("log blocks are aligned at sector boundaries and
// when a log block is flushed, its last sector may not be full — on average
// half a sector is wasted on every flush"). A zero length prefix marks
// padding: readers skip to the next sector boundary.
//
// An LSN is the byte offset of a record's frame in the log file. Because
// flushes insert padding, LSNs are not dense, but they are strictly
// monotonic, which is all the dependency-vector machinery needs.
//
// Batch flushing (§5.5): when enabled, a flush request parks until a timeout
// (default 8 ms model time, roughly one disk write) so that several requests
// ride a single physical write.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "audit/mutex.h"
#include "common/bytes.h"
#include "common/status.h"
#include "log/log_record.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"

namespace msplog {

struct LogFileOptions {
  bool batch_flush = false;
  double batch_timeout_ms = 8.0;
  uint32_t max_block_sectors = 128;
  /// Safety valve: a buffer larger than this triggers a background flush
  /// even without an explicit request (bounds memory under pure optimism).
  uint64_t max_buffer_bytes = 4 << 20;
  /// Invoked once per physical write (outside the log mutex) — used by the
  /// MSP to charge CPU time for issuing an I/O, which is what makes batch
  /// flushing reduce CPU load as well as disk load (§5.5).
  std::function<void()> on_physical_write;
};

/// One consistent snapshot of the log's extent watermarks, taken under a
/// single lock hold. Prefer this over calling `end_lsn()` / `durable_lsn()` /
/// `reclaimed_lsn()` back to back — three separate lock acquisitions can
/// interleave with a flush or reclamation and report e.g. a durable extent
/// ahead of the tail it was read with.
struct LogExtents {
  uint64_t end_lsn = 0;        ///< offset of the next append
  uint64_t durable_lsn = 0;    ///< first offset NOT yet durable
  uint64_t reclaimed_lsn = 0;  ///< first offset not reclaimed (punched)
  uint64_t archived_lsn = 0;   ///< reclaimed prefix preserved in archives
};

/// One closed archive segment: `[base, base + bytes)` of the original log,
/// preserved verbatim in `file` when the live range was punched.
struct LogArchiveSegment {
  uint64_t base = 0;
  uint64_t bytes = 0;
  std::string file;
};

class LogFile {
 public:
  LogFile(SimEnvironment* env, SimDisk* disk, std::string file_name,
          LogFileOptions options = LogFileOptions());
  ~LogFile();

  LogFile(const LogFile&) = delete;
  LogFile& operator=(const LogFile&) = delete;

  /// Append `rec` to the volatile buffer; returns its LSN. Never blocks on
  /// I/O (except when the buffer safety valve fires). If `framed_size` is
  /// non-null it receives the on-log size of the record (frame included).
  uint64_t Append(const LogRecord& rec, size_t* framed_size = nullptr);

  /// Block until the record that starts at `lsn` is durable.
  Status FlushUpTo(uint64_t lsn);

  /// Flush everything appended so far.
  Status FlushAll();

  /// Read the record whose frame starts at `lsn` — served from the volatile
  /// buffer or from disk as appropriate. Fails with Corruption on a padding
  /// or garbage offset.
  Status ReadRecordAt(uint64_t lsn, LogRecord* out);

  /// First offset that is NOT yet durable.
  uint64_t durable_lsn() const;
  /// Offset at which the next append will land.
  uint64_t end_lsn() const;
  const std::string& file_name() const { return file_name_; }
  SimDisk* disk() const { return disk_; }

  /// Log-space reclamation: release every durable byte strictly below
  /// `lsn` (rounded down to a sector boundary). Crash recovery scans start
  /// at the MSP checkpoint's minimum required position, so everything below
  /// it is dead weight; the punched range reads back as padding, which the
  /// scanner skips naturally. Returns the number of bytes reclaimed.
  uint64_t ReclaimUpTo(uint64_t lsn);

  /// First LSN that has not been reclaimed.
  uint64_t reclaimed_lsn() const;

  /// Segment archiving (checkpoint-watermark-driven): like ReclaimUpTo, but
  /// the released range is first copied verbatim into an archive segment
  /// file (`<log>.arc.<base>`) before the live bytes are punched. The live
  /// log behaves exactly as after ReclaimUpTo (the range reads back as
  /// padding); offline tools can overlay the archive segments to reconstruct
  /// the full historical image. Returns the number of bytes archived.
  uint64_t ArchiveUpTo(uint64_t lsn);

  /// One consistent snapshot of all extent watermarks (single lock hold).
  LogExtents Extents() const;

  /// Archive segment file name for a range starting at `base`.
  static std::string ArchiveSegmentName(const std::string& log_file,
                                        uint64_t base);

  /// Enumerate `log_file`'s archive segments on `disk`, sorted by base
  /// offset. Usable offline (no LogFile instance required).
  static std::vector<LogArchiveSegment> ListArchiveSegments(
      SimDisk* disk, const std::string& log_file);

  /// Simulate the crash of the owning MSP: the volatile buffer is discarded
  /// and all flush waiters fail with Status::Crashed. The durable prefix on
  /// disk is untouched.
  void Crash();

  /// Stop the batch flusher thread (if any) without losing the buffer.
  void Stop();

 private:
  Status FlushUpToImpl(uint64_t lsn) EXCLUDES(mu_);
  /// Hands the buffer to `pending_` and performs the physical write with the
  /// lock dropped (`lk` is the caller's lock on mu_, released and reacquired
  /// around the I/O); entered and exited with mu_ held.
  Status DoFlushLocked(audit::UniqueLock& lk) REQUIRES(mu_);
  void BatchFlusherLoop();

  SimEnvironment* env_;
  SimDisk* disk_;
  std::string file_name_;
  LogFileOptions options_;
  uint32_t sector_bytes_;

  // Observability handles (owned by the environment's registry).
  obs::Histogram* hist_append_bytes_;      ///< "log.append_bytes"
  obs::Histogram* hist_flush_wait_ms_;     ///< "log.flush_wait_ms" per FlushUpTo
  obs::Histogram* hist_flush_write_ms_;    ///< "log.flush_write_ms" per phys write
  obs::Histogram* hist_flush_batch_bytes_; ///< "log.flush_batch_bytes"
  obs::Counter* ctr_physical_flushes_;     ///< "log.physical_flushes"

  mutable audit::Mutex mu_{"log_file"};
  audit::CondVar cv_;
  Bytes buffer_ GUARDED_BY(mu_);          ///< not yet handed to a flush
  uint64_t buffer_base_ GUARDED_BY(mu_);  ///< LSN of buffer_[0]
  /// Handed to an in-flight flush. While flush_in_progress_ is set, only the
  /// flushing thread writes it; everyone else (ReadRecordAt) reads it under
  /// mu_ — the flusher's unlocked read during the physical write goes
  /// through a view taken under the lock.
  Bytes pending_ GUARDED_BY(mu_);
  uint64_t pending_base_ GUARDED_BY(mu_) = 0;
  uint64_t durable_end_ GUARDED_BY(mu_);  ///< sector-aligned durable extent
  /// Prefix released by ReclaimUpTo / ArchiveUpTo.
  uint64_t reclaimed_end_ GUARDED_BY(mu_) = 0;
  /// Prefix preserved in archive segments before punching (<= reclaimed_end_;
  /// lags it when plain ReclaimUpTo calls interleave with archiving).
  uint64_t archived_end_ GUARDED_BY(mu_) = 0;
  bool flush_in_progress_ GUARDED_BY(mu_) = false;
  bool flush_requested_ GUARDED_BY(mu_) = false;
  bool crashed_ GUARDED_BY(mu_) = false;
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread batch_thread_;
};

/// Build the on-disk frame for an encoded record body.
Bytes FrameRecord(ByteView body);

/// Parse a frame at `data[pos...]`. On success sets `*body_out` and
/// `*frame_len`. A zero length prefix yields Status::NotFound (padding).
/// Truncation / CRC mismatch yields Corruption.
Status ParseFrame(ByteView data, size_t pos, ByteView* body_out,
                  size_t* frame_len);

}  // namespace msplog
