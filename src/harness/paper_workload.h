// PaperWorkload — the experimental setting of §5.1, Figure 13.
//
//   end client --> MSP1.ServiceMethod1:
//                    read+write SV0
//                    m × call MSP2.ServiceMethod2:
//                          read+write SV2, read+write SV3,
//                          modify session state (512 B of 8 KB)
//                    read+write SV1
//                    modify session state (512 B of 8 KB)
//
// Parameters and returned values are 100 B; shared variables 128 B; total
// session state 8 KB per session at each MSP. Link latencies default to the
// paper's measurements (client↔MSP1 round trip 3.9 ms, MSP1↔MSP2 3.596 ms).
//
// The harness builds any of the five §5 configurations, drives single- or
// multi-client load, injects the §5.4 crash ("when the reply from
// ServiceMethod2 is received by MSP1, MSP2 is instructed to kill itself",
// losing MSP2's buffered log records and orphaning SE1 at MSP1), and
// gathers response-time and throughput statistics in model milliseconds.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "audit/mutex.h"
#include "baseline/state_server.h"
#include "msp/msp.h"
#include "msp/service_domain.h"
#include "rpc/client_endpoint.h"
#include "sim/sim_disk.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {

/// Which §5 system configuration to build.
enum class PaperConfig {
  kLoOptimistic,  ///< both MSPs in one service domain (locally optimistic)
  kPessimistic,   ///< each MSP its own domain (pure pessimistic logging)
  kNoLog,         ///< no recovery infrastructure
  kPsession,      ///< session state in a local database per request
  kStateServer,   ///< session state at a remote in-memory state server
};

const char* PaperConfigName(PaperConfig c);

struct PaperWorkloadOptions {
  PaperConfig config = PaperConfig::kLoOptimistic;
  double time_scale = 0.0;
  /// m: calls to ServiceMethod2 inside ServiceMethod1 (§5.2 chart).
  int calls_per_request = 1;

  // Checkpointing (§5.3): 0 disables session checkpoints ("NoCp").
  uint64_t session_checkpoint_threshold_bytes = 1 << 20;
  uint64_t msp_checkpoint_log_bytes = 1 << 20;
  bool checkpoint_daemon = true;

  // Batch flushing (§5.5).
  bool batch_flush = false;
  double batch_timeout_ms = 8.0;

  // Latency model (one-way, model ms; paper round trips: 3.9 / 3.596 ms).
  double client_one_way_ms = 1.85;
  double msp_one_way_ms = 1.70;
  double ss_one_way_ms = 0.35;
  /// Model CPU per service-method body.
  double method_compute_ms = 0.25;
  /// Probability a disk I/O pays a full random seek because the OS shares
  /// the disk (§5.2 folds ~1/3 into TF2). Zero makes latencies
  /// deterministic — useful for max-response-time benches.
  double os_interference_prob = 1.0 / 3.0;
  /// RPC retry clocks (model ms). The defaults suit full-scale runs; the
  /// 1:10-scaled crash benches shrink them so that retry quantization does
  /// not mask the recovery work being measured.
  double call_resend_timeout_ms = 400.0;
  double flush_timeout_ms = 300.0;
  double client_busy_backoff_ms = 100.0;
  /// Give-up budget for end-client resends (raised by crash-storm tests).
  uint32_t client_max_sends = 200;
  /// Single-core CPU contention model (§5.5 / Fig. 17).
  bool single_core_cpu = false;
  double cpu_per_flush_ms = 0.0;

  // Sizes (§5.1).
  size_t payload_bytes = 100;
  size_t session_state_bytes = 8192;
  size_t session_write_bytes = 512;
  size_t shared_var_bytes = 128;

  size_t thread_pool_size = 8;
};

/// Aggregate results of a driven run.
struct RunResult {
  uint64_t requests = 0;
  double avg_response_ms = 0;
  double max_response_ms = 0;
  double p50_ms = 0;  ///< response-time quantiles over completed requests
  double p90_ms = 0;
  double p99_ms = 0;
  double throughput_rps = 0;  ///< requests per model second
  double elapsed_model_ms = 0;
  uint64_t resends = 0;
  uint64_t busy_replies = 0;
  /// Full response-time distribution (merge-able across runs).
  obs::Histogram::Snapshot response_hist{};
};

class PaperWorkload {
 public:
  explicit PaperWorkload(PaperWorkloadOptions options);
  ~PaperWorkload();

  SimEnvironment* env() { return env_.get(); }
  SimNetwork* network() { return network_.get(); }
  Msp* msp1() { return msp1_.get(); }
  Msp* msp2() { return msp2_.get(); }

  /// Start MSPs (and the state server when configured).
  Status Start();
  void Shutdown();

  /// Create an end client endpoint wired with the paper's link latencies.
  std::unique_ptr<ClientEndpoint> MakeClient(const std::string& name);

  /// Drive `requests` requests over one session from one client;
  /// crash_every > 0 injects the §5.4 crash once per that many requests.
  RunResult RunSingleClient(int requests, int crash_every = 0);

  /// Drive `clients` concurrent clients, each issuing `requests_per_client`
  /// requests over its own session.
  RunResult RunMultiClient(int clients, int requests_per_client,
                           int crash_every = 0);

  /// Arm the §5.4 crash: the next non-replay ServiceMethod1 execution that
  /// completes its calls instructs MSP2 to kill itself (and the harness
  /// restarts MSP2, which runs crash recovery).
  void ArmCrash();
  uint64_t crashes_injected() const { return crashes_injected_.load(); }

 private:
  void RegisterMethods(Msp* msp, bool is_msp1);
  void TriggerCrashAsync();
  void JoinCrashThreads();

  PaperWorkloadOptions options_;
  std::unique_ptr<SimEnvironment> env_;
  std::unique_ptr<SimNetwork> network_;
  std::unique_ptr<SimDisk> disk1_;
  std::unique_ptr<SimDisk> disk2_;
  DomainDirectory directory_;
  std::unique_ptr<Msp> msp1_;
  std::unique_ptr<Msp> msp2_;
  std::unique_ptr<StateServerNode> state_server_;

  std::atomic<bool> crash_armed_{false};
  std::atomic<uint64_t> crashes_injected_{0};
  audit::Mutex crash_threads_mu_{"workload.crash_threads"};
  std::vector<std::thread> crash_threads_ GUARDED_BY(crash_threads_mu_);
  /// Serializes injected crash/restart cycles of MSP2.
  audit::Mutex crash_cycle_mu_{"workload.crash_cycle"};
  std::atomic<int> next_client_ = 1;
};

}  // namespace msplog
