#include "audit/mutex.h"
#include "harness/paper_workload.h"

#include <algorithm>

namespace msplog {

const char* PaperConfigName(PaperConfig c) {
  switch (c) {
    case PaperConfig::kLoOptimistic: return "LoOptimistic";
    case PaperConfig::kPessimistic: return "Pessimistic";
    case PaperConfig::kNoLog: return "NoLog";
    case PaperConfig::kPsession: return "Psession";
    case PaperConfig::kStateServer: return "StateServer";
  }
  return "?";
}

namespace {
RecoveryMode ModeFor(PaperConfig c) {
  switch (c) {
    case PaperConfig::kLoOptimistic:
    case PaperConfig::kPessimistic:
      return RecoveryMode::kLogBased;
    case PaperConfig::kNoLog:
      return RecoveryMode::kNoLog;
    case PaperConfig::kPsession:
      return RecoveryMode::kPsession;
    case PaperConfig::kStateServer:
      return RecoveryMode::kStateServer;
  }
  return RecoveryMode::kNoLog;
}
}  // namespace

PaperWorkload::PaperWorkload(PaperWorkloadOptions options)
    : options_(options) {
  env_ = std::make_unique<SimEnvironment>(options_.time_scale);
  network_ = std::make_unique<SimNetwork>(env_.get());
  network_->set_default_one_way_ms(0.5);
  DiskGeometry geometry;
  geometry.os_interference_prob = options_.os_interference_prob;
  disk1_ = std::make_unique<SimDisk>(env_.get(), "disk1", geometry, 11);
  disk2_ = std::make_unique<SimDisk>(env_.get(), "disk2", geometry, 22);

  // Service domains: LoOptimistic shares one domain; Pessimistic splits
  // them (every message pessimistically logged). Baselines are irrelevant
  // to domains but harmless to configure.
  if (options_.config == PaperConfig::kLoOptimistic) {
    directory_.Assign("msp1", "domainA");
    directory_.Assign("msp2", "domainA");
  } else {
    directory_.Assign("msp1", "domainA");
    directory_.Assign("msp2", "domainB");
  }

  auto make_config = [&](const std::string& id) {
    MspConfig c;
    c.id = id;
    c.mode = ModeFor(options_.config);
    c.thread_pool_size = options_.thread_pool_size;
    c.batch_flush = options_.batch_flush;
    c.batch_timeout_ms = options_.batch_timeout_ms;
    c.session_checkpoint_threshold_bytes =
        options_.session_checkpoint_threshold_bytes;
    c.msp_checkpoint_log_bytes = options_.msp_checkpoint_log_bytes;
    c.checkpoint_daemon = options_.checkpoint_daemon;
    c.call_resend_timeout_ms = options_.call_resend_timeout_ms;
    c.flush_timeout_ms = options_.flush_timeout_ms;
    c.busy_backoff_ms = options_.client_busy_backoff_ms;
    c.single_core_cpu = options_.single_core_cpu;
    c.cpu_per_flush_ms = options_.cpu_per_flush_ms;
    c.method_overhead_ms = 0;  // methods call Compute() themselves
    c.state_server = "stateserver";
    return c;
  };
  msp1_ = std::make_unique<Msp>(env_.get(), network_.get(), disk1_.get(),
                                &directory_, make_config("msp1"));
  msp2_ = std::make_unique<Msp>(env_.get(), network_.get(), disk2_.get(),
                                &directory_, make_config("msp2"));
  if (options_.config == PaperConfig::kStateServer) {
    state_server_ =
        std::make_unique<StateServerNode>(env_.get(), network_.get(),
                                          "stateserver");
  }

  // Link latencies (§5.1 measurements).
  network_->SetLinkLatency("msp1", "msp2", options_.msp_one_way_ms);
  if (state_server_) {
    network_->SetLinkLatency("msp1", "stateserver", options_.ss_one_way_ms);
    network_->SetLinkLatency("msp2", "stateserver", options_.ss_one_way_ms);
  }

  RegisterMethods(msp1_.get(), /*is_msp1=*/true);
  RegisterMethods(msp2_.get(), /*is_msp1=*/false);
}

PaperWorkload::~PaperWorkload() { Shutdown(); }

Status PaperWorkload::Start() {
  if (state_server_) MSPLOG_RETURN_IF_ERROR(state_server_->Start());
  MSPLOG_RETURN_IF_ERROR(msp2_->Start());
  return msp1_->Start();
}

void PaperWorkload::Shutdown() {
  JoinCrashThreads();
  if (msp1_) msp1_->Shutdown();
  if (msp2_) msp2_->Shutdown();
  if (state_server_) state_server_->Crash();
}

void PaperWorkload::RegisterMethods(Msp* msp, bool is_msp1) {
  const size_t n_vars =
      std::max<size_t>(1, options_.session_state_bytes /
                              std::max<size_t>(1, options_.session_write_bytes));
  const size_t sv_bytes = options_.shared_var_bytes;
  const size_t write_bytes = options_.session_write_bytes;
  const size_t payload_bytes = options_.payload_bytes;
  const double compute_ms = options_.method_compute_ms;
  const int calls = options_.calls_per_request;

  if (is_msp1) {
    msp->RegisterSharedVariable("SV0", MakePayload(sv_bytes, 0));
    msp->RegisterSharedVariable("SV1", MakePayload(sv_bytes, 1));
    msp->RegisterMethod(
        "ServiceMethod1",
        [this, n_vars, sv_bytes, write_bytes, payload_bytes, compute_ms,
         calls](ServiceContext* ctx, const Bytes& arg, Bytes* result) {
          (void)arg;
          uint64_t seq = ctx->request_seqno();
          // First request materializes the full 8 KB session state.
          if (!ctx->HasSessionVar("s0")) {
            for (size_t i = 0; i < n_vars; ++i) {
              ctx->SetSessionVar("s" + std::to_string(i),
                                 MakePayload(write_bytes, i));
            }
          }
          Bytes v;
          MSPLOG_RETURN_IF_ERROR(ctx->ReadShared("SV0", &v));
          MSPLOG_RETURN_IF_ERROR(
              ctx->WriteShared("SV0", MakePayload(sv_bytes, seq * 2 + 1)));
          ctx->Compute(compute_ms);
          for (int c = 0; c < calls; ++c) {
            Bytes reply;
            MSPLOG_RETURN_IF_ERROR(ctx->Call(
                "msp2", "ServiceMethod2",
                MakePayload(payload_bytes, seq * 131 + c), &reply));
          }
          // §5.4 crash injection point: the reply from ServiceMethod2 has
          // been received by MSP1; MSP2 is instructed to kill itself,
          // losing its buffered log records.
          if (!ctx->in_replay() && crash_armed_.exchange(false)) {
            TriggerCrashAsync();
          }
          MSPLOG_RETURN_IF_ERROR(ctx->ReadShared("SV1", &v));
          MSPLOG_RETURN_IF_ERROR(
              ctx->WriteShared("SV1", MakePayload(sv_bytes, seq * 2 + 2)));
          ctx->SetSessionVar("s" + std::to_string(seq % n_vars),
                             MakePayload(write_bytes, seq));
          *result = MakePayload(payload_bytes, seq + 7);
          return Status::OK();
        });
  } else {
    msp->RegisterSharedVariable("SV2", MakePayload(sv_bytes, 2));
    msp->RegisterSharedVariable("SV3", MakePayload(sv_bytes, 3));
    msp->RegisterMethod(
        "ServiceMethod2",
        [n_vars, sv_bytes, write_bytes, payload_bytes, compute_ms](
            ServiceContext* ctx, const Bytes& arg, Bytes* result) {
          (void)arg;
          uint64_t seq = ctx->request_seqno();
          if (!ctx->HasSessionVar("s0")) {
            for (size_t i = 0; i < n_vars; ++i) {
              ctx->SetSessionVar("s" + std::to_string(i),
                                 MakePayload(write_bytes, i));
            }
          }
          Bytes v;
          MSPLOG_RETURN_IF_ERROR(ctx->ReadShared("SV2", &v));
          MSPLOG_RETURN_IF_ERROR(
              ctx->WriteShared("SV2", MakePayload(sv_bytes, seq * 3 + 1)));
          MSPLOG_RETURN_IF_ERROR(ctx->ReadShared("SV3", &v));
          MSPLOG_RETURN_IF_ERROR(
              ctx->WriteShared("SV3", MakePayload(sv_bytes, seq * 3 + 2)));
          ctx->Compute(compute_ms);
          ctx->SetSessionVar("s" + std::to_string(seq % n_vars),
                             MakePayload(write_bytes, seq));
          *result = MakePayload(payload_bytes, seq + 13);
          return Status::OK();
        });
  }
}

void PaperWorkload::ArmCrash() { crash_armed_.store(true); }

void PaperWorkload::TriggerCrashAsync() {
  crashes_injected_.fetch_add(1);
  audit::LockGuard lk(crash_threads_mu_);
  crash_threads_.emplace_back([this] {
    audit::LockGuard cycle(crash_cycle_mu_);
    msp2_->Crash();
    (void)msp2_->Start();  // restart runs crash recovery (§4.3)
  });
}

void PaperWorkload::JoinCrashThreads() {
  audit::LockGuard lk(crash_threads_mu_);
  for (auto& t : crash_threads_) {
    if (t.joinable()) t.join();
  }
  crash_threads_.clear();
}

std::unique_ptr<ClientEndpoint> PaperWorkload::MakeClient(
    const std::string& name) {
  network_->SetLinkLatency(name, "msp1", options_.client_one_way_ms);
  ClientOptions copts;
  copts.busy_backoff_ms = options_.client_busy_backoff_ms;
  copts.max_sends = options_.client_max_sends;
  return std::make_unique<ClientEndpoint>(env_.get(), network_.get(), name,
                                          copts);
}

RunResult PaperWorkload::RunSingleClient(int requests, int crash_every) {
  return RunMultiClient(1, requests, crash_every);
}

RunResult PaperWorkload::RunMultiClient(int clients, int requests_per_client,
                                        int crash_every) {
  struct PerClient {
    double sum_ms = 0;
    double max_ms = 0;
    uint64_t done = 0;
    uint64_t resends = 0;
    uint64_t busy = 0;
  };
  std::vector<PerClient> results(clients);
  std::atomic<uint64_t> global_count{0};
  auto response_hist = std::make_unique<obs::Histogram>();

  double t0 = env_->NowModelMs();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      auto client =
          MakeClient("client" + std::to_string(next_client_.fetch_add(1)));
      ClientSession session = client->StartSession("msp1");
      for (int r = 0; r < requests_per_client; ++r) {
        Bytes arg = MakePayload(options_.payload_bytes, r);
        Bytes reply;
        CallStats cs;
        Status st = client->Call(&session, "ServiceMethod1", arg, &reply, &cs);
        if (!st.ok()) continue;  // timed-out request: not counted
        results[i].sum_ms += cs.response_model_ms;
        response_hist->Record(cs.response_model_ms);
        results[i].max_ms = std::max(results[i].max_ms, cs.response_model_ms);
        results[i].done++;
        results[i].resends += cs.sends - 1;
        results[i].busy += cs.busy_replies;
        uint64_t n = global_count.fetch_add(1) + 1;
        if (crash_every > 0 && n % static_cast<uint64_t>(crash_every) == 0) {
          ArmCrash();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  JoinCrashThreads();
  double elapsed = env_->NowModelMs() - t0;

  RunResult out;
  for (const auto& r : results) {
    out.requests += r.done;
    out.avg_response_ms += r.sum_ms;
    out.max_response_ms = std::max(out.max_response_ms, r.max_ms);
    out.resends += r.resends;
    out.busy_replies += r.busy;
  }
  if (out.requests > 0) out.avg_response_ms /= static_cast<double>(out.requests);
  out.response_hist = response_hist->Snap();
  out.p50_ms = out.response_hist.P50();
  out.p90_ms = out.response_hist.P90();
  out.p99_ms = out.response_hist.P99();
  out.elapsed_model_ms = elapsed;
  if (elapsed > 0) {
    out.throughput_rps = static_cast<double>(out.requests) / (elapsed / 1000.0);
  }
  return out;
}

}  // namespace msplog
