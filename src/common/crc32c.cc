#include "common/crc32c.h"

#include <array>

namespace msplog {
namespace crc32c {

namespace {

constexpr uint32_t kPoly = 0x82F63B78U;  // reflected CRC32C polynomial

// Slice-by-8: tables[0] is the classic byte-at-a-time table; tables[k][b]
// is the CRC contribution of byte value b seen k bytes before the end of an
// 8-byte block, so eight independent lookups advance the CRC by eight
// message bytes at once instead of chaining eight dependent ones.
std::array<std::array<uint32_t, 256>, 8> BuildTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int b = 0; b < 8; ++b) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = tables[0][i];
    for (size_t k = 1; k < 8; ++k) {
      crc = tables[0][crc & 0xFF] ^ (crc >> 8);
      tables[k][i] = crc;
    }
  }
  return tables;
}

const std::array<std::array<uint32_t, 256>, 8>& Tables() {
  static const std::array<std::array<uint32_t, 256>, 8> tables = BuildTables();
  return tables;
}

uint32_t ComputeSw(const void* data, size_t n, uint32_t crc) {
  const auto& t = Tables();
  const auto* p = static_cast<const uint8_t*>(data);
  // Bytewise loads keep this endian- and alignment-neutral; the slicing win
  // comes from breaking the lookup dependency chain, not from wide loads.
  while (n >= 8) {
    uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) |
                         static_cast<uint32_t>(p[1]) << 8 |
                         static_cast<uint32_t>(p[2]) << 16 |
                         static_cast<uint32_t>(p[3]) << 24);
    uint32_t hi = static_cast<uint32_t>(p[4]) |
                  static_cast<uint32_t>(p[5]) << 8 |
                  static_cast<uint32_t>(p[6]) << 16 |
                  static_cast<uint32_t>(p[7]) << 24;
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
          t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (size_t i = 0; i < n; ++i) {
    crc = t[0][(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

#if defined(__x86_64__) && (defined(__clang__) || defined(__GNUC__))
#define MSPLOG_CRC32C_HW 1

// Hardware path: the SSE4.2 CRC32 instruction implements exactly this
// (reflected Castagnoli) polynomial, one 8-byte step per ~1-cycle op. The
// target attribute lets us emit the instruction without compiling the whole
// TU with -msse4.2; dispatch below checks cpuid once at startup.
__attribute__((target("sse4.2"))) uint32_t ComputeHw(const void* data,
                                                     size_t n, uint32_t crc) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t c = crc;
  while (n >= 8) {
    uint64_t chunk;
    __builtin_memcpy(&chunk, p, 8);  // unaligned-safe load
    c = __builtin_ia32_crc32di(c, chunk);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(c);
  while (n > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --n;
  }
  return crc;
}

const bool kHaveHwCrc = __builtin_cpu_supports("sse4.2");
#endif  // __x86_64__

}  // namespace

uint32_t Compute(const void* data, size_t n, uint32_t init) {
  uint32_t crc = ~init;
#if defined(MSPLOG_CRC32C_HW)
  if (kHaveHwCrc) return ~ComputeHw(data, n, crc);
#endif
  return ~ComputeSw(data, n, crc);
}

}  // namespace crc32c
}  // namespace msplog
