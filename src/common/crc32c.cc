#include "common/crc32c.h"

#include <array>

namespace msplog {
namespace crc32c {

namespace {

constexpr uint32_t kPoly = 0x82F63B78U;  // reflected CRC32C polynomial

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int b = 0; b < 8; ++b) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Compute(const void* data, size_t n, uint32_t init) {
  const auto& table = Table();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~init;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace crc32c
}  // namespace msplog
