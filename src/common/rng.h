// Deterministic pseudo-random number generator (xoshiro-style splitmix64).
// All stochastic behaviour in the simulator (message drops, OS-interference
// disk seeks, workload jitter) draws from explicitly seeded Rng instances so
// experiments are reproducible.
#pragma once

#include <cstdint>

namespace msplog {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0xC0FFEE123456789ULL) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace msplog
