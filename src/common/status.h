// Status / StatusOr error handling in the RocksDB/Arrow idiom: functions that
// can fail return a Status (or StatusOr<T>) instead of throwing. Exceptions
// are not used for control flow anywhere in msplog.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace msplog {

/// Error taxonomy for the whole library.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kCorruption,       ///< Log/record/checksum damage detected.
  kInvalidArgument,
  kIOError,          ///< Simulated-disk or file failure.
  kTimedOut,         ///< RPC or flush wait exceeded its deadline.
  kBusy,             ///< Server is checkpointing/recovering; caller retries.
  kOrphan,           ///< State depends on a lost log record (see paper §3.1).
  kCrashed,          ///< The target MSP is crashed / endpoint unregistered.
  kAborted,
  kUnsupported,
  kInternal,
};

/// Result of an operation that can fail. Cheap to copy when OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string m = "") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status Corruption(std::string m = "") {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status InvalidArgument(std::string m = "") {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status IOError(std::string m = "") {
    return Status(StatusCode::kIOError, std::move(m));
  }
  static Status TimedOut(std::string m = "") {
    return Status(StatusCode::kTimedOut, std::move(m));
  }
  static Status Busy(std::string m = "") {
    return Status(StatusCode::kBusy, std::move(m));
  }
  static Status Orphan(std::string m = "") {
    return Status(StatusCode::kOrphan, std::move(m));
  }
  static Status Crashed(std::string m = "") {
    return Status(StatusCode::kCrashed, std::move(m));
  }
  static Status Aborted(std::string m = "") {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status Unsupported(std::string m = "") {
    return Status(StatusCode::kUnsupported, std::move(m));
  }
  static Status Internal(std::string m = "") {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }
  bool IsOrphan() const { return code_ == StatusCode::kOrphan; }
  bool IsCrashed() const { return code_ == StatusCode::kCrashed; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string name;
    switch (code_) {
      case StatusCode::kOk: name = "OK"; break;
      case StatusCode::kNotFound: name = "NotFound"; break;
      case StatusCode::kCorruption: name = "Corruption"; break;
      case StatusCode::kInvalidArgument: name = "InvalidArgument"; break;
      case StatusCode::kIOError: name = "IOError"; break;
      case StatusCode::kTimedOut: name = "TimedOut"; break;
      case StatusCode::kBusy: name = "Busy"; break;
      case StatusCode::kOrphan: name = "Orphan"; break;
      case StatusCode::kCrashed: name = "Crashed"; break;
      case StatusCode::kAborted: name = "Aborted"; break;
      case StatusCode::kUnsupported: name = "Unsupported"; break;
      case StatusCode::kInternal: name = "Internal"; break;
    }
    return msg_.empty() ? name : name + ": " + msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of T or an error Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status s) : status_(std::move(s)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok());
  }
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // The class invariant (value_ is engaged iff status_.ok()) is asserted
  // here but invisible to bugprone-unchecked-optional-access, hence the
  // targeted NOLINTs.
  T& value() & {
    assert(ok());
    return *value_;  // NOLINT(bugprone-unchecked-optional-access)
  }
  const T& value() const& {
    assert(ok());
    return *value_;  // NOLINT(bugprone-unchecked-optional-access)
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);  // NOLINT(bugprone-unchecked-optional-access)
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace msplog

/// Propagate a non-OK Status to the caller.
#define MSPLOG_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::msplog::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

/// Evaluate a StatusOr expression, propagating error or binding the value.
#define MSPLOG_ASSIGN_OR_RETURN(lhs, expr)    \
  auto MSPLOG_CONCAT_(_sor_, __LINE__) = (expr);            \
  if (!MSPLOG_CONCAT_(_sor_, __LINE__).ok())                \
    return MSPLOG_CONCAT_(_sor_, __LINE__).status();        \
  lhs = std::move(MSPLOG_CONCAT_(_sor_, __LINE__)).value()

#define MSPLOG_CONCAT_IMPL_(a, b) a##b
#define MSPLOG_CONCAT_(a, b) MSPLOG_CONCAT_IMPL_(a, b)
