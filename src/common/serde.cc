#include "common/serde.h"

#include <cstring>

namespace msplog {

void BinaryWriter::PutU32(uint32_t v) {
  char tmp[4];
  for (int i = 0; i < 4; ++i) tmp[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  Write(tmp, 4);
}

void BinaryWriter::PutU64(uint64_t v) {
  char tmp[8];
  for (int i = 0; i < 8; ++i) tmp[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  Write(tmp, 8);
}

void BinaryWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    Push(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  Push(static_cast<char>(v));
}

void BinaryWriter::PutBytes(ByteView v) {
  PutVarint(v.size());
  Write(v.data(), v.size());
}

Status BinaryReader::GetU8(uint8_t* out) {
  if (remaining() < 1) return Status::Corruption("truncated u8");
  *out = static_cast<uint8_t>(view_[pos_++]);
  return Status::OK();
}

Status BinaryReader::GetU32(uint32_t* out) {
  if (remaining() < 4) return Status::Corruption("truncated u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(view_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return Status::OK();
}

Status BinaryReader::GetU64(uint64_t* out) {
  if (remaining() < 8) return Status::Corruption("truncated u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(view_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return Status::OK();
}

Status BinaryReader::GetVarint(uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= view_.size()) return Status::Corruption("truncated varint");
    if (shift > 63) return Status::Corruption("varint too long");
    uint8_t byte = static_cast<uint8_t>(view_[pos_++]);
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *out = v;
  return Status::OK();
}

Status BinaryReader::GetBytes(Bytes* out) {
  uint64_t n = 0;
  MSPLOG_RETURN_IF_ERROR(GetVarint(&n));
  if (remaining() < n) return Status::Corruption("truncated bytes");
  out->assign(view_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

}  // namespace msplog
