// Byte-buffer aliases used across msplog. A Bytes is an owned, mutable byte
// string; a ByteView is a non-owning window over one.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace msplog {

using Bytes = std::string;
using ByteView = std::string_view;

/// Make an opaque payload of `n` bytes with deterministic content derived
/// from `seed` — used by workloads and tests to build request parameters and
/// session-state values of a prescribed size.
inline Bytes MakePayload(size_t n, uint64_t seed = 0) {
  Bytes out(n, '\0');
  uint64_t x = seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL;
  for (size_t i = 0; i < n; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out[i] = static_cast<char>('a' + (x % 26));
  }
  return out;
}

}  // namespace msplog
