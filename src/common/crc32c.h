// CRC32C (Castagnoli). Slice-by-8 software tables with a runtime-dispatched
// SSE4.2 hardware path on x86-64. Protects every physical log record, the
// log anchor, and kvdb WAL records against torn writes.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"

namespace msplog {
namespace crc32c {

/// Compute the CRC32C of `data`, continuing from `init` (0 for a fresh CRC).
uint32_t Compute(const void* data, size_t n, uint32_t init = 0);

inline uint32_t Compute(ByteView v, uint32_t init = 0) {
  return Compute(v.data(), v.size(), init);
}

/// Masked CRC (RocksDB-style) so that a CRC stored alongside CRC-covered
/// data does not itself look like valid data.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xA282EAD8U;
}
inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - 0xA282EAD8U;
  return (rot << 15) | (rot >> 17);
}

}  // namespace crc32c
}  // namespace msplog
