// Binary serialization used for log records, checkpoints, dependency
// vectors, messages and kvdb WAL entries. Little-endian fixed-width ints,
// LEB128 varints, and length-prefixed strings.
#pragma once

#include <cassert>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace msplog {

/// Exact encoded size of a LEB128 varint. Pairs with BinaryWriter::PutVarint
/// so hot paths can precompute a record's framed size before reserving
/// arena/wire space and then encode in place without intermediate buffers.
inline size_t VarintSize(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Exact encoded size of a length-prefixed byte string (PutBytes).
inline size_t BytesWireSize(ByteView v) { return VarintSize(v.size()) + v.size(); }

/// Appends primitive values to one of three destinations, chosen at
/// construction:
///   - owned buffer (default): the classic build-then-Take() mode;
///   - external sink (`BinaryWriter(&bytes)`): appends to a caller-owned
///     Bytes, so a message encodes straight into the wire buffer;
///   - span (`BinaryWriter(dst, cap)`): writes into preallocated raw memory
///     (a log arena slot) with no allocation at all. The caller must have
///     sized the span with EncodedSize(); overflow is a programming error
///     and trips the assert.
/// size() always reports the bytes written through THIS writer (not the
/// sink's total); buffer()/Take() are valid only in owned mode.
class BinaryWriter {
 public:
  BinaryWriter() : sink_(&own_) {}
  explicit BinaryWriter(Bytes* sink) : sink_(sink) {}
  BinaryWriter(char* dst, size_t cap) : span_(dst), span_cap_(cap) {}

  void PutU8(uint8_t v) { Push(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutVarint(uint64_t v);
  /// Length-prefixed (varint) byte string.
  void PutBytes(ByteView v);
  /// Raw bytes with no length prefix.
  void PutRaw(ByteView v) { Write(v.data(), v.size()); }

  const Bytes& buffer() const {
    assert(sink_ == &own_);
    return own_;
  }
  Bytes Take() {
    assert(sink_ == &own_);
    return std::move(own_);
  }
  /// Bytes written through this writer (all modes).
  size_t size() const { return written_; }

 private:
  void Push(char c) {
    if (span_ != nullptr) {
      assert(written_ < span_cap_ && "BinaryWriter span overflow");
      span_[written_] = c;
    } else {
      sink_->push_back(c);
    }
    ++written_;
  }
  void Write(const char* p, size_t n) {
    if (span_ != nullptr) {
      assert(written_ + n <= span_cap_ && "BinaryWriter span overflow");
      for (size_t i = 0; i < n; ++i) span_[written_ + i] = p[i];
    } else {
      sink_->append(p, n);
    }
    written_ += n;
  }

  Bytes own_;
  Bytes* sink_ = nullptr;   // owned or external mode
  char* span_ = nullptr;    // span mode
  size_t span_cap_ = 0;
  size_t written_ = 0;
};

/// Consumes primitive values from a byte view. All getters return
/// Status::Corruption on truncation; decoding never reads past the view.
class BinaryReader {
 public:
  explicit BinaryReader(ByteView view) : view_(view) {}

  Status GetU8(uint8_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetVarint(uint64_t* out);
  Status GetBytes(Bytes* out);

  bool AtEnd() const { return pos_ == view_.size(); }
  size_t remaining() const { return view_.size() - pos_; }
  size_t position() const { return pos_; }

 private:
  ByteView view_;
  size_t pos_ = 0;
};

}  // namespace msplog
