// Binary serialization used for log records, checkpoints, dependency
// vectors, messages and kvdb WAL entries. Little-endian fixed-width ints,
// LEB128 varints, and length-prefixed strings.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace msplog {

/// Appends primitive values to an owned byte buffer.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutVarint(uint64_t v);
  /// Length-prefixed (varint) byte string.
  void PutBytes(ByteView v);
  /// Raw bytes with no length prefix.
  void PutRaw(ByteView v) { buf_.append(v.data(), v.size()); }

  const Bytes& buffer() const { return buf_; }
  Bytes Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Consumes primitive values from a byte view. All getters return
/// Status::Corruption on truncation; decoding never reads past the view.
class BinaryReader {
 public:
  explicit BinaryReader(ByteView view) : view_(view) {}

  Status GetU8(uint8_t* out);
  Status GetU32(uint32_t* out);
  Status GetU64(uint64_t* out);
  Status GetVarint(uint64_t* out);
  Status GetBytes(Bytes* out);

  bool AtEnd() const { return pos_ == view_.size(); }
  size_t remaining() const { return view_.size() - pos_; }
  size_t position() const { return pos_; }

 private:
  ByteView view_;
  size_t pos_ = 0;
};

}  // namespace msplog
