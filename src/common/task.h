// lint:hot-path
//
// Small-buffer-optimized, move-only callable for the request hot path.
// std::function requires copyability and heap-allocates for anything beyond
// a couple of pointers; every ThreadPool::Submit used to pay that allocation
// per request. Task stores callables up to kInlineBytes inline (covers the
// `[this, shared_ptr]` lambdas the dispatcher actually submits) and falls
// back to the heap only for oversized captures (e.g. a whole captured
// Message), where the old path would have allocated anyway — but a move
// into Task never copies the capture.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace msplog {

class Task {
 public:
  // Inline storage: enough for a this-pointer plus a shared_ptr or two
  // small values, which is every hot-path lambda in the dispatcher.
  static constexpr size_t kInlineBytes = 48;

  Task() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Task> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  Task(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(inline_buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      auto owned = std::make_unique<Fn>(std::forward<F>(f));
      heap_ = owned.release();
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  Task(Task&& o) noexcept { MoveFrom(std::move(o)); }

  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      Reset();
      MoveFrom(std::move(o));
    }
    return *this;
  }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Invoke the callable. Unlike a one-shot promise, invoking does not
  /// destroy the target (std::function semantics); destruction happens in
  /// the destructor / move-assign, exactly once.
  void operator()() { ops_->invoke(Target()); }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-construct the target from src storage into dst storage (inline
    // mode) and destroy the src; heap mode moves the pointer instead and
    // never uses this.
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void*);
    bool heap;
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void Relocate(void* src, void* dst) {
      Fn* from = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* p) { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy, false};
  };

  template <typename Fn>
  struct HeapOps {
    static void Invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void Relocate(void*, void*) {}
    static void Destroy(void* p) {
      std::default_delete<Fn>()(static_cast<Fn*>(p));
    }
    static constexpr Ops ops{&Invoke, &Relocate, &Destroy, true};
  };

  void* Target() { return ops_->heap ? heap_ : static_cast<void*>(inline_buf_); }

  void MoveFrom(Task&& o) {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      if (ops_->heap) {
        heap_ = o.heap_;
        o.heap_ = nullptr;
      } else {
        ops_->relocate(o.inline_buf_, inline_buf_);
      }
      o.ops_ = nullptr;
    }
  }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(Target());
      ops_ = nullptr;
      heap_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char inline_buf_[kInlineBytes];
  void* heap_ = nullptr;
  const Ops* ops_ = nullptr;
};

}  // namespace msplog
