// lint:hot-path
//
// Bounded lock-free multi-producer queue with an unbounded mutex-guarded
// overflow valve — the intake lane between SimNetwork delivery / request
// dispatch and the MSP worker pool.
//
// The fast path is the classic bounded MPMC ring (Vyukov): each cell
// carries a sequence stamp; producers CAS the enqueue cursor and publish
// with a release store of the stamp, consumers CAS the dequeue cursor and
// retire the cell by stamping it for the next lap. Push and Pop are
// wait-free against each other in the common case — no mutex, no
// allocation. Multiple consumers are supported (ThreadPool runs N workers),
// so this is strictly more general than its MPSC name suggests.
//
// When the ring is momentarily full, Push falls back to an audit::Mutex-
// guarded deque, which restores the old unbounded-queue guarantee (a
// producer never blocks on a full queue, and nothing is dropped). FIFO per
// producer is preserved across the spill: once a producer has spilled, its
// later pushes also spill until the overflow drains (it observes its own
// overflow_size_ writes), and consumers drain the ring — whose entries are
// always older than any coexisting overflow entry from the same producer —
// before touching the overflow.
//
// depth() is a relaxed atomic counter so observability probes (scraper
// queue-depth samples every 100 ms) never contend with the request path.
//
// Sleeping when empty is the CALLER's concern (ThreadPool, Mailbox): this
// type only provides the non-blocking operations plus the depth counter
// the callers' eventcount protocols hang off.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <utility>
#include <vector>

#include "audit/mutex.h"

namespace msplog {

template <typename T>
class MpscQueue {
 public:
  /// `capacity` is rounded up to a power of two; the ring is preallocated.
  explicit MpscQueue(size_t capacity = 1024, const char* name = "mpsc_queue")
      : overflow_mu_(name) {
    size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    mask_ = cap - 1;
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Lock-free unless the ring is full or an overflow spill is draining.
  /// Never fails, never blocks on a full queue.
  void Push(T v) {
    depth_.fetch_add(1, std::memory_order_relaxed);
    // A producer that spilled must keep spilling until the overflow drains,
    // or its ring entries would overtake its parked overflow entries.
    if (overflow_size_.load(std::memory_order_acquire) == 0 &&
        TryPushRing(std::move(v))) {
      return;
    }
    audit::LockGuard lk(overflow_mu_);
    overflow_.push_back(std::move(v));
    overflow_size_.store(overflow_.size(), std::memory_order_release);
  }

  /// Non-blocking pop; ring first (older), then the overflow spill.
  bool TryPop(T* out) {
    if (TryPopRing(out)) {
      depth_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
    if (overflow_size_.load(std::memory_order_acquire) != 0) {
      audit::LockGuard lk(overflow_mu_);
      if (!overflow_.empty()) {
        *out = std::move(overflow_.front());
        overflow_.pop_front();
        overflow_size_.store(overflow_.size(), std::memory_order_release);
        depth_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  /// Relaxed depth estimate: pushes not yet popped. Exact when quiescent.
  size_t depth() const { return depth_.load(std::memory_order_relaxed); }

  bool empty() const { return depth() == 0; }

 private:
  struct Cell {
    std::atomic<size_t> seq{0};
    T value{};
  };

  bool TryPushRing(T&& v) {
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell* cell = &cells_[pos & mask_];
      size_t seq = cell->seq.load(std::memory_order_acquire);
      intptr_t dif = static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          cell->value = std::move(v);
          cell->seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full lap: ring has no room
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  bool TryPopRing(T* out) {
    size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell* cell = &cells_[pos & mask_];
      size_t seq = cell->seq.load(std::memory_order_acquire);
      intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          *out = std::move(cell->value);
          cell->seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty (or the producer that claimed it hasn't published)
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  std::vector<Cell> cells_;
  size_t mask_ = 0;
  alignas(64) std::atomic<size_t> enqueue_pos_{0};
  alignas(64) std::atomic<size_t> dequeue_pos_{0};
  alignas(64) std::atomic<size_t> depth_{0};
  std::atomic<size_t> overflow_size_{0};
  audit::Mutex overflow_mu_;
  std::deque<T> overflow_ GUARDED_BY(overflow_mu_);
};

}  // namespace msplog
