#include "rpc/message.h"

namespace msplog {

Bytes Message::Encode() const {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(type));
  w.PutBytes(sender);
  w.PutBytes(session_id);
  w.PutVarint(seqno);
  w.PutBytes(method);
  w.PutBytes(payload);
  w.PutU8(has_dv ? 1 : 0);
  if (has_dv) dv.EncodeTo(&w);
  w.PutU64(trace_id);
  w.PutU64(parent_span_id);
  w.PutU8(static_cast<uint8_t>(reply_code));
  w.PutVarint(flush_id);
  w.PutU32(epoch);
  w.PutVarint(flush_sn);
  w.PutU8(flush_ok ? 1 : 0);
  w.PutU32(rec_epoch);
  w.PutVarint(rec_sn);
  return w.Take();
}

Status Message::Decode(ByteView wire, Message* out) {
  BinaryReader r(wire);
  uint8_t type = 0;
  MSPLOG_RETURN_IF_ERROR(r.GetU8(&type));
  if (type == 0 || type > static_cast<uint8_t>(MessageType::kRecoveryAnnounce)) {
    return Status::Corruption("bad message type");
  }
  out->type = static_cast<MessageType>(type);
  MSPLOG_RETURN_IF_ERROR(r.GetBytes(&out->sender));
  MSPLOG_RETURN_IF_ERROR(r.GetBytes(&out->session_id));
  MSPLOG_RETURN_IF_ERROR(r.GetVarint(&out->seqno));
  MSPLOG_RETURN_IF_ERROR(r.GetBytes(&out->method));
  MSPLOG_RETURN_IF_ERROR(r.GetBytes(&out->payload));
  uint8_t has_dv = 0;
  MSPLOG_RETURN_IF_ERROR(r.GetU8(&has_dv));
  out->has_dv = has_dv != 0;
  if (out->has_dv) {
    MSPLOG_RETURN_IF_ERROR(out->dv.DecodeFrom(&r));
  } else {
    out->dv.Clear();
  }
  MSPLOG_RETURN_IF_ERROR(r.GetU64(&out->trace_id));
  MSPLOG_RETURN_IF_ERROR(r.GetU64(&out->parent_span_id));
  uint8_t code = 0;
  MSPLOG_RETURN_IF_ERROR(r.GetU8(&code));
  if (code > static_cast<uint8_t>(ReplyCode::kOrphanNotice)) {
    return Status::Corruption("bad reply code");
  }
  out->reply_code = static_cast<ReplyCode>(code);
  MSPLOG_RETURN_IF_ERROR(r.GetVarint(&out->flush_id));
  MSPLOG_RETURN_IF_ERROR(r.GetU32(&out->epoch));
  MSPLOG_RETURN_IF_ERROR(r.GetVarint(&out->flush_sn));
  uint8_t flush_ok = 0;
  MSPLOG_RETURN_IF_ERROR(r.GetU8(&flush_ok));
  out->flush_ok = flush_ok != 0;
  MSPLOG_RETURN_IF_ERROR(r.GetU32(&out->rec_epoch));
  MSPLOG_RETURN_IF_ERROR(r.GetVarint(&out->rec_sn));
  return Status::OK();
}

}  // namespace msplog
