#include "rpc/message.h"

namespace msplog {

size_t Message::EncodedSize(const Bytes* dv_wire) const {
  size_t n = 1;  // type
  n += BytesWireSize(sender);
  n += BytesWireSize(session_id);
  n += VarintSize(seqno);
  n += BytesWireSize(method);
  n += BytesWireSize(payload);
  n += 1;  // has_dv
  if (has_dv) n += dv_wire != nullptr ? dv_wire->size() : dv.EncodedSize();
  n += 8 + 8;  // trace_id, parent_span_id
  n += 1;      // reply_code
  n += VarintSize(flush_id);
  n += 4;  // epoch
  n += VarintSize(flush_sn);
  n += 1;  // flush_ok
  n += 4;  // rec_epoch
  n += VarintSize(rec_sn);
  return n;
}

void Message::AppendTo(Bytes* wire, const Bytes* dv_wire) const {
  wire->reserve(wire->size() + EncodedSize(dv_wire));
  BinaryWriter w(wire);
  w.PutU8(static_cast<uint8_t>(type));
  w.PutBytes(sender);
  w.PutBytes(session_id);
  w.PutVarint(seqno);
  w.PutBytes(method);
  w.PutBytes(payload);
  w.PutU8(has_dv ? 1 : 0);
  if (has_dv) {
    if (dv_wire != nullptr) {
      w.PutRaw(*dv_wire);
    } else {
      dv.EncodeTo(&w);
    }
  }
  w.PutU64(trace_id);
  w.PutU64(parent_span_id);
  w.PutU8(static_cast<uint8_t>(reply_code));
  w.PutVarint(flush_id);
  w.PutU32(epoch);
  w.PutVarint(flush_sn);
  w.PutU8(flush_ok ? 1 : 0);
  w.PutU32(rec_epoch);
  w.PutVarint(rec_sn);
}

Bytes Message::Encode() const {
  Bytes out;
  AppendTo(&out);
  return out;
}

Status Message::Decode(ByteView wire, Message* out) {
  BinaryReader r(wire);
  uint8_t type = 0;
  MSPLOG_RETURN_IF_ERROR(r.GetU8(&type));
  if (type == 0 || type > static_cast<uint8_t>(MessageType::kRecoveryAnnounce)) {
    return Status::Corruption("bad message type");
  }
  out->type = static_cast<MessageType>(type);
  MSPLOG_RETURN_IF_ERROR(r.GetBytes(&out->sender));
  MSPLOG_RETURN_IF_ERROR(r.GetBytes(&out->session_id));
  MSPLOG_RETURN_IF_ERROR(r.GetVarint(&out->seqno));
  MSPLOG_RETURN_IF_ERROR(r.GetBytes(&out->method));
  MSPLOG_RETURN_IF_ERROR(r.GetBytes(&out->payload));
  uint8_t has_dv = 0;
  MSPLOG_RETURN_IF_ERROR(r.GetU8(&has_dv));
  out->has_dv = has_dv != 0;
  if (out->has_dv) {
    MSPLOG_RETURN_IF_ERROR(out->dv.DecodeFrom(&r));
  } else {
    out->dv.Clear();
  }
  MSPLOG_RETURN_IF_ERROR(r.GetU64(&out->trace_id));
  MSPLOG_RETURN_IF_ERROR(r.GetU64(&out->parent_span_id));
  uint8_t code = 0;
  MSPLOG_RETURN_IF_ERROR(r.GetU8(&code));
  if (code > static_cast<uint8_t>(ReplyCode::kOrphanNotice)) {
    return Status::Corruption("bad reply code");
  }
  out->reply_code = static_cast<ReplyCode>(code);
  MSPLOG_RETURN_IF_ERROR(r.GetVarint(&out->flush_id));
  MSPLOG_RETURN_IF_ERROR(r.GetU32(&out->epoch));
  MSPLOG_RETURN_IF_ERROR(r.GetVarint(&out->flush_sn));
  uint8_t flush_ok = 0;
  MSPLOG_RETURN_IF_ERROR(r.GetU8(&flush_ok));
  out->flush_ok = flush_ok != 0;
  MSPLOG_RETURN_IF_ERROR(r.GetU32(&out->rec_epoch));
  MSPLOG_RETURN_IF_ERROR(r.GetVarint(&out->rec_sn));
  return Status::OK();
}

}  // namespace msplog
