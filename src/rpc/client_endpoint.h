// ClientEndpoint — an end client process (§2.1). End clients live outside
// every service domain: their messages are never DV-tagged and an MSP always
// performs a (distributed) log flush before replying to them.
//
// The client implements the paper's reliability contract: it maintains a
// next-available request sequence number per session, resends the same
// request until the matching reply arrives, discards duplicate or stale
// replies, and — when the server answers Busy because it is checkpointing or
// recovering — sleeps 100 ms (model time) before resending (§5.4).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "rpc/message.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {

/// Client-side view of one session with one MSP.
struct ClientSession {
  std::string msp;
  std::string session_id;
  uint64_t next_seqno = 1;
};

/// Statistics of a single synchronous call.
struct CallStats {
  double response_model_ms = 0;
  uint32_t sends = 0;       ///< 1 + number of resends
  uint32_t busy_replies = 0;
};

struct ClientOptions {
  /// How long to wait for a reply before resending (model ms).
  double resend_timeout_ms = 400.0;
  /// Sleep before resending after a Busy reply (model ms; §5.4 uses 100 ms).
  double busy_backoff_ms = 100.0;
  /// Give up after this many sends.
  uint32_t max_sends = 200;
};

class ClientEndpoint {
 public:
  ClientEndpoint(SimEnvironment* env, SimNetwork* network, std::string name,
                 ClientOptions options = ClientOptions());
  ~ClientEndpoint();

  /// Open a new session with `msp`. Purely local: the server materializes
  /// the session when the first request arrives.
  ClientSession StartSession(const std::string& msp);

  /// Synchronous exactly-once call: send, wait, resend on loss/Busy.
  Status Call(ClientSession* session, const std::string& method,
              ByteView arg, Bytes* reply, CallStats* stats = nullptr);

  const std::string& name() const { return name_; }

 private:
  SimEnvironment* env_;
  SimNetwork* network_;
  std::string name_;
  ClientOptions options_;
  std::shared_ptr<Mailbox> mailbox_;
  std::atomic<uint64_t> next_session_ = 1;

  // Observability handles (owned by the environment's registry).
  obs::Histogram* hist_call_ms_;  ///< "client.call_ms" end-to-end per call
  obs::Counter* ctr_calls_;       ///< "client.calls"
  obs::Counter* ctr_resends_;     ///< "client.resends" (sends beyond the 1st)
  obs::Counter* ctr_busy_;        ///< "client.busy_replies"
  obs::Counter* ctr_timeouts_;    ///< "client.timeouts" (gave up entirely)
};

}  // namespace msplog
