// Wire message model (§2.1, §3.1). Requests and replies carry a request
// sequence number for duplicate / out-of-order detection; messages sent
// within a service domain additionally carry the sender session's DV.
// Control messages implement the distributed log flush and the recovery
// broadcast.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/serde.h"
#include "common/status.h"
#include "recovery/dependency_vector.h"

namespace msplog {

enum class MessageType : uint8_t {
  kInvalid = 0,
  kRequest = 1,
  kReply = 2,
  /// Ask a peer to flush its log **up to** `flush_sn` of epoch `epoch` —
  /// an ARIES-style "flush up to LSN" bound, not a point request: one leg
  /// of a distributed log flush (§3.1) whose completion also covers every
  /// coalesced leg with a smaller state number of the same epoch. Built
  /// exclusively by the flush aggregator (msp/flush_aggregator.h), which
  /// group-commits concurrent legs per peer.
  kFlushRequest = 3,
  kFlushReply = 4,
  /// Broadcast after crash recovery: "I ended epoch `rec_epoch` recovered
  /// to state number `rec_sn`" (§4).
  kRecoveryAnnounce = 5,
};

enum class ReplyCode : uint8_t {
  kOk = 0,
  /// Server is checkpointing or recovering; client sleeps and resends (§5.4).
  kBusy = 1,
  /// Application method returned an error.
  kAppError = 2,
  /// Extension beyond Fig. 7's silent discard: the request carried an
  /// orphan dependency; rec_epoch/rec_sn report the recovered state number
  /// that proves it, so a sender that missed the recovery broadcast can
  /// still learn it is an orphan (liveness under lost broadcasts).
  kOrphanNotice = 3,
};

struct Message {
  MessageType type = MessageType::kInvalid;
  /// Logical sender id (matches the network endpoint name).
  std::string sender;
  /// Service session this request/reply belongs to.
  std::string session_id;
  uint64_t seqno = 0;
  /// kRequest: service method name.
  std::string method;
  Bytes payload;
  /// Attached sender-session DV (only within a service domain).
  bool has_dv = false;
  DependencyVector dv;

  /// Causal-tracing context, carried next to the DV: the client-rooted
  /// trace this message belongs to and the sender-side span that caused it.
  /// Zero = untraced. Receivers allocate their own span with this parent;
  /// replies echo the request's ids back. Decode ignores extra trailing
  /// bytes, so a frame from a newer encoder that appends fields at the tail
  /// stays readable.
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;

  ReplyCode reply_code = ReplyCode::kOk;

  /// kFlushRequest / kFlushReply
  uint64_t flush_id = 0;
  uint32_t epoch = 0;       ///< epoch the flush_sn belongs to
  uint64_t flush_sn = 0;
  bool flush_ok = false;

  /// kRecoveryAnnounce (also piggybacked on failed flush replies)
  uint32_t rec_epoch = 0;   ///< the epoch that just ended
  uint64_t rec_sn = 0;      ///< recovered state number for that epoch

  /// Exact wire size AppendTo will produce. When `dv_wire` is non-null it
  /// stands in for the encoded DV: the sender attaches a pre-encoded DV
  /// (typically the session's version-keyed cache) without copying the
  /// DependencyVector into the message at all — `has_dv` must be true and
  /// `dv_wire` must be the encoding of the DV the sender intends to attach.
  size_t EncodedSize(const Bytes* dv_wire = nullptr) const;

  /// Encode directly onto the tail of `wire` (reserving exactly the bytes
  /// needed). Zero-copy send path: the wire buffer handed to the network is
  /// built in place, no intermediate Bytes. Output is byte-for-byte what
  /// Encode() produces.
  void AppendTo(Bytes* wire, const Bytes* dv_wire = nullptr) const;

  Bytes Encode() const;
  static Status Decode(ByteView wire, Message* out);
};

}  // namespace msplog
