#include "rpc/client_endpoint.h"

#include <algorithm>

namespace msplog {

namespace {
/// Convert a model-time wait to a real wait for condition/timeout purposes.
/// With scale 0 latency is off; a small real floor keeps loops cool without
/// slowing tests meaningfully.
int64_t RealWaitMs(const SimEnvironment* env, double model_ms) {
  if (env->time_scale() <= 0.0) return SimEnvironment::kFastWaitFloorMs;
  return std::max<int64_t>(1,
      static_cast<int64_t>(model_ms * env->time_scale()));
}
}  // namespace

ClientEndpoint::ClientEndpoint(SimEnvironment* env, SimNetwork* network,
                               std::string name, ClientOptions options)
    : env_(env), network_(network), name_(std::move(name)), options_(options) {
  obs::MetricsRegistry& m = env_->metrics();
  hist_call_ms_ = m.GetHistogram("client.call_ms");
  ctr_calls_ = m.GetCounter("client.calls");
  ctr_resends_ = m.GetCounter("client.resends");
  ctr_busy_ = m.GetCounter("client.busy_replies");
  ctr_timeouts_ = m.GetCounter("client.timeouts");
  mailbox_ = network_->Register(name_);
}

ClientEndpoint::~ClientEndpoint() { network_->Unregister(name_); }

ClientSession ClientEndpoint::StartSession(const std::string& msp) {
  ClientSession s;
  s.msp = msp;
  s.session_id = name_ + "/se" + std::to_string(next_session_.fetch_add(1));
  s.next_seqno = 1;
  return s;
}

Status ClientEndpoint::Call(ClientSession* session, const std::string& method,
                            ByteView arg, Bytes* reply, CallStats* stats) {
  const uint64_t seqno = session->next_seqno;
  // Root of this request's causal trace: the trace id doubles as the root
  // span id; servers parent their request spans on it via the wire fields.
  obs::SpanContext root;
  root.trace_id = obs::NextSpanId();
  root.span_id = root.trace_id;
  Message req;
  req.type = MessageType::kRequest;
  req.sender = name_;
  req.session_id = session->session_id;
  req.seqno = seqno;
  req.method = method;
  req.payload = Bytes(arg);
  req.trace_id = root.trace_id;
  req.parent_span_id = root.span_id;

  CallStats local;
  double t0 = env_->NowModelMs();
  Bytes wire = req.Encode();
  env_->tracer().Record(obs::TraceEventType::kClientCallStart, t0, name_,
                        session->session_id, seqno, method, root);

  // Single finish path: stats and registry metrics are recorded on every
  // exit, including the give-up timeout (callers passing stats == nullptr
  // still get the metrics).
  auto finish = [&](Status st) {
    local.response_model_ms = env_->NowModelMs() - t0;
    env_->tracer().Record(obs::TraceEventType::kClientCallEnd,
                          env_->NowModelMs(), name_, session->session_id,
                          seqno, st.ok() ? "" : st.ToString(), root);
    ctr_calls_->Add(1);
    if (local.sends > 1) ctr_resends_->Add(local.sends - 1);
    if (local.busy_replies > 0) ctr_busy_->Add(local.busy_replies);
    if (st.IsTimedOut()) ctr_timeouts_->Add(1);
    hist_call_ms_->Record(local.response_model_ms);
    if (stats) *stats = local;
    return st;
  };

  while (local.sends < options_.max_sends) {
    network_->Send(name_, session->msp, wire);
    ++local.sends;

    // Wait for the matching reply, ignoring duplicates and stale replies.
    int64_t budget_real_ms = RealWaitMs(env_, options_.resend_timeout_ms);
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(budget_real_ms);
    while (true) {
      auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;  // resend
      int64_t remain = std::chrono::duration_cast<std::chrono::milliseconds>(
                           deadline - now).count();
      Packet p;
      if (!mailbox_->PopWithTimeout(&p, std::max<int64_t>(1, remain))) {
        if (mailbox_->closed()) {
          return finish(Status::Crashed("client endpoint closed"));
        }
        continue;
      }
      Message m;
      Status st = Message::Decode(p.wire, &m);
      if (!st.ok()) continue;  // garbage on the wire: drop
      if (m.type != MessageType::kReply || m.session_id != session->session_id) {
        continue;  // not ours
      }
      if (m.seqno != seqno) continue;  // duplicate reply of an older request
      if (m.reply_code == ReplyCode::kBusy) {
        // Server is checkpointing or recovering: back off, then resend.
        ++local.busy_replies;
        env_->SleepModelMs(options_.busy_backoff_ms);
        goto resend;
      }
      session->next_seqno = seqno + 1;
      *reply = std::move(m.payload);
      return finish(m.reply_code == ReplyCode::kOk
                        ? Status::OK()
                        : Status::Aborted("application error: " + *reply));
    }
  resend:;
  }
  return finish(Status::TimedOut("no reply after " +
                                 std::to_string(local.sends) + " sends"));
}

}  // namespace msplog
