#include "audit/mutex.h"
#include "baseline/state_server.h"

#include "common/serde.h"

namespace msplog {

StateServerNode::StateServerNode(SimEnvironment* env, SimNetwork* network,
                                 std::string name)
    : env_(env), network_(network), name_(std::move(name)) {}

StateServerNode::~StateServerNode() { Crash(); }

Status StateServerNode::Start() {
  if (running_) return Status::InvalidArgument("already running");
  mailbox_ = network_->Register(name_);
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void StateServerNode::Crash() {
  if (!running_) return;
  running_ = false;
  network_->Unregister(name_);
  if (thread_.joinable()) thread_.join();
  audit::LockGuard lk(mu_);
  store_.clear();  // in-memory only: a crash loses everything
}

size_t StateServerNode::StoredSessions() const {
  audit::LockGuard lk(mu_);
  return store_.size();
}

void StateServerNode::Loop() {
  Packet p;
  while (mailbox_->Pop(&p)) {
    Message m;
    if (!Message::Decode(p.wire, &m).ok()) continue;
    if (m.type != MessageType::kRequest) continue;
    Message r;
    r.type = MessageType::kReply;
    r.sender = name_;
    r.session_id = m.session_id;
    r.seqno = m.seqno;
    r.reply_code = ReplyCode::kOk;
    if (m.method == "__ss_get") {
      audit::LockGuard lk(mu_);
      auto it = store_.find(m.payload);
      if (it == store_.end()) {
        r.payload.push_back('\0');
      } else {
        r.payload.push_back('\1');
        r.payload.append(it->second);
      }
    } else if (m.method == "__ss_put") {
      BinaryReader br(m.payload);
      Bytes key, blob;
      if (br.GetBytes(&key).ok() && br.GetBytes(&blob).ok()) {
        audit::LockGuard lk(mu_);
        store_[key] = std::move(blob);
      } else {
        r.reply_code = ReplyCode::kAppError;
        r.payload = "bad put payload";
      }
    } else {
      r.reply_code = ReplyCode::kAppError;
      r.payload = "unknown method " + m.method;
    }
    network_->Send(name_, p.from, r.Encode());
  }
}

}  // namespace msplog
