// StateServerNode — the §5 "StateServer" baseline: session states are kept
// in memory at a state server on a different computer. Cheap (two light
// network round trips per request per MSP) but not durable: if the state
// server crashes, every session state is gone — exactly the weakness the
// paper contrasts with log-based recovery.
//
// Protocol (over SimNetwork, reusing the rpc::Message frame):
//   method "__ss_get": payload = session key
//                      reply   = [u8 found][blob]
//   method "__ss_put": payload = PutBytes(key) PutBytes(blob)
//                      reply   = empty
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "audit/mutex.h"
#include "common/bytes.h"
#include "common/status.h"
#include "rpc/message.h"
#include "sim/sim_env.h"
#include "sim/sim_network.h"

namespace msplog {

class StateServerNode {
 public:
  StateServerNode(SimEnvironment* env, SimNetwork* network, std::string name);
  ~StateServerNode();

  Status Start();
  /// Abrupt failure: the in-memory session states are lost.
  void Crash();

  const std::string& name() const { return name_; }
  size_t StoredSessions() const;

 private:
  void Loop();

  SimEnvironment* env_;
  SimNetwork* network_;
  std::string name_;
  std::shared_ptr<Mailbox> mailbox_;
  std::thread thread_;
  /// Touched only by the driver thread (Start/Crash/dtor); Loop() never
  /// reads it, so it needs no lock.
  bool running_ = false;

  mutable audit::Mutex mu_{"state_server"};
  std::map<std::string, Bytes> store_ GUARDED_BY(mu_);
};

}  // namespace msplog
