// RecoveredStateTable — each MSP's knowledge of recovered state numbers
// (§3.1, §4). When an MSP finishes crash recovery it broadcasts, within its
// service domain, the state number it was able to recover to for the epoch
// that just ended. Receivers record (msp, epoch) → recovered_sn. A DV entry
// (msp, epoch, sn) is an *orphan* iff the table knows that `msp` ended
// `epoch` having recovered only to some sn' < sn: the state numbered sn was
// lost in the crash and will never be reproduced.
//
// An MSP also records its own recovery history here, which lets it answer
// distributed-log-flush requests that target an epoch it has already left
// (the flush trivially succeeds if the requested sn survived that epoch).
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "common/serde.h"
#include "common/status.h"
#include "recovery/dependency_vector.h"
#include "recovery/state_id.h"

namespace msplog {

class RecoveredStateTable {
 public:
  /// Record that `msp` ended `epoch` recovered to `recovered_sn`.
  /// Idempotent; keeps the maximum if told twice.
  void Record(const MspId& msp, uint32_t epoch, uint64_t recovered_sn);

  /// Recovered sn for (msp, epoch) if known.
  std::optional<uint64_t> RecoveredSn(const MspId& msp, uint32_t epoch) const;

  /// True iff the single dependency entry is known to be lost.
  bool IsOrphanEntry(const MspId& msp, StateId id) const;

  /// The first orphan entry of `dv`, if any: (msp, epoch, recovered_sn).
  struct OrphanWitness {
    MspId msp;
    uint32_t epoch = 0;
    uint64_t recovered_sn = 0;
  };
  std::optional<OrphanWitness> FindOrphanEntry(
      const DependencyVector& dv) const;

  /// True iff any entry of `dv` is an orphan. The owner's own entry can
  /// never be an orphan for itself, so callers typically pass DVs that
  /// include a self entry without special-casing it (a live process's own
  /// current-epoch entries are never in the table).
  bool IsOrphanDv(const DependencyVector& dv) const;

  bool empty() const { return table_.empty(); }
  size_t size() const { return table_.size(); }

  void Merge(const RecoveredStateTable& other);
  void Clear() { table_.clear(); }

  void EncodeTo(BinaryWriter* w) const;
  Status DecodeFrom(BinaryReader* r);

  const std::map<std::pair<MspId, uint32_t>, uint64_t>& entries() const {
    return table_;
  }

 private:
  std::map<std::pair<MspId, uint32_t>, uint64_t> table_;
};

}  // namespace msplog
