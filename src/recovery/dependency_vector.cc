#include "recovery/dependency_vector.h"

namespace msplog {

void DependencyVector::Merge(const DependencyVector& other) {
  for (const auto& [msp, id] : other.entries_) {
    Raise(msp, id);
  }
}

void DependencyVector::Raise(const MspId& msp, StateId id) {
  auto it = entries_.find(msp);
  if (it == entries_.end() || it->second < id) {
    entries_[msp] = id;
    ++version_;
  }
}

std::optional<StateId> DependencyVector::Get(const MspId& msp) const {
  auto it = entries_.find(msp);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void DependencyVector::EncodeTo(BinaryWriter* w) const {
  w->PutVarint(entries_.size());
  for (const auto& [msp, id] : entries_) {
    w->PutBytes(msp);
    w->PutU32(id.epoch);
    w->PutU64(id.sn);
  }
}

Status DependencyVector::DecodeFrom(BinaryReader* r) {
  entries_.clear();
  ++version_;
  uint64_t n = 0;
  MSPLOG_RETURN_IF_ERROR(r->GetVarint(&n));
  for (uint64_t i = 0; i < n; ++i) {
    Bytes msp;
    StateId id;
    MSPLOG_RETURN_IF_ERROR(r->GetBytes(&msp));
    MSPLOG_RETURN_IF_ERROR(r->GetU32(&id.epoch));
    MSPLOG_RETURN_IF_ERROR(r->GetU64(&id.sn));
    entries_[msp] = id;
  }
  return Status::OK();
}

size_t DependencyVector::EncodedSize() const {
  size_t n = VarintSize(entries_.size());
  for (const auto& [msp, id] : entries_) {
    n += BytesWireSize(msp) + 4 + 8;
  }
  return n;
}

size_t DependencyVector::WireSize() const {
  size_t n = 1;
  for (const auto& [msp, id] : entries_) {
    n += 1 + msp.size() + 4 + 8;
  }
  return n;
}

std::string DependencyVector::ToString() const {
  std::string out = "[";
  bool first = true;
  for (const auto& [msp, id] : entries_) {
    if (!first) out += ", ";
    first = false;
    out += msp + ":" + id.ToString();
  }
  out += "]";
  return out;
}

}  // namespace msplog
