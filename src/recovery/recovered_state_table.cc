#include "recovery/recovered_state_table.h"

namespace msplog {

void RecoveredStateTable::Record(const MspId& msp, uint32_t epoch,
                                 uint64_t recovered_sn) {
  auto key = std::make_pair(msp, epoch);
  auto it = table_.find(key);
  if (it == table_.end() || it->second < recovered_sn) {
    table_[key] = recovered_sn;
  }
}

std::optional<uint64_t> RecoveredStateTable::RecoveredSn(
    const MspId& msp, uint32_t epoch) const {
  auto it = table_.find({msp, epoch});
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

bool RecoveredStateTable::IsOrphanEntry(const MspId& msp, StateId id) const {
  auto it = table_.find({msp, id.epoch});
  if (it == table_.end()) return false;
  return id.sn > it->second;
}

std::optional<RecoveredStateTable::OrphanWitness>
RecoveredStateTable::FindOrphanEntry(const DependencyVector& dv) const {
  for (const auto& [msp, id] : dv.entries()) {
    if (IsOrphanEntry(msp, id)) {
      return OrphanWitness{msp, id.epoch, *RecoveredSn(msp, id.epoch)};
    }
  }
  return std::nullopt;
}

bool RecoveredStateTable::IsOrphanDv(const DependencyVector& dv) const {
  for (const auto& [msp, id] : dv.entries()) {
    if (IsOrphanEntry(msp, id)) return true;
  }
  return false;
}

void RecoveredStateTable::Merge(const RecoveredStateTable& other) {
  for (const auto& [key, sn] : other.table_) {
    Record(key.first, key.second, sn);
  }
}

void RecoveredStateTable::EncodeTo(BinaryWriter* w) const {
  w->PutVarint(table_.size());
  for (const auto& [key, sn] : table_) {
    w->PutBytes(key.first);
    w->PutU32(key.second);
    w->PutU64(sn);
  }
}

Status RecoveredStateTable::DecodeFrom(BinaryReader* r) {
  table_.clear();
  uint64_t n = 0;
  MSPLOG_RETURN_IF_ERROR(r->GetVarint(&n));
  for (uint64_t i = 0; i < n; ++i) {
    Bytes msp;
    uint32_t epoch = 0;
    uint64_t sn = 0;
    MSPLOG_RETURN_IF_ERROR(r->GetBytes(&msp));
    MSPLOG_RETURN_IF_ERROR(r->GetU32(&epoch));
    MSPLOG_RETURN_IF_ERROR(r->GetU64(&sn));
    table_[{msp, epoch}] = sn;
  }
  return Status::OK();
}

}  // namespace msplog
