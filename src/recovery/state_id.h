// StateId — a process state identifier per §3.1: a state number (the LSN of
// the process's most recent log record) qualified by an epoch number that
// identifies a failure-free period of execution. The epoch increments every
// time the process completes crash recovery.
#pragma once

#include <cstdint>
#include <string>

namespace msplog {

struct StateId {
  uint32_t epoch = 0;
  uint64_t sn = 0;  ///< state number: LSN of the most recent log record

  bool operator==(const StateId& o) const {
    return epoch == o.epoch && sn == o.sn;
  }
  bool operator<(const StateId& o) const {
    if (epoch != o.epoch) return epoch < o.epoch;
    return sn < o.sn;
  }
  bool operator<=(const StateId& o) const { return *this < o || *this == o; }

  std::string ToString() const {
    return std::to_string(epoch) + ":" + std::to_string(sn);
  }
};

/// Identifier of an MSP (also used for end-client endpoints).
using MspId = std::string;

}  // namespace msplog
