// DependencyVector (DV) — optimistic-logging dependency tracking per §3.1.
//
// A DV maps each MSP the owner transitively depends on to a StateId
// (epoch + state number). It is attached to every message sent within a
// service domain and merged (item-wise maximum) into the receiver's DV.
// Per §3.2 every *session* carries its own DV (not the whole MSP), and per
// §3.3 every shared variable carries one too, with the read/write-asymmetric
// propagation rules that avoid false dependencies.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/serde.h"
#include "common/status.h"
#include "recovery/state_id.h"

namespace msplog {

class DependencyVector {
 public:
  DependencyVector() = default;

  /// Item-wise maximum merge: for each entry in `other`, keep the larger
  /// (epoch, sn) pair. This is the receive-side rule of Fig. 7.
  void Merge(const DependencyVector& other);

  /// Set the owner's own entry (or any entry) outright.
  void Set(const MspId& msp, StateId id) { entries_[msp] = id; }

  /// Raise `msp`'s entry to at least `id`.
  void Raise(const MspId& msp, StateId id);

  std::optional<StateId> Get(const MspId& msp) const;
  void Remove(const MspId& msp) { entries_.erase(msp); }
  void Clear() { entries_.clear(); }

  size_t entry_count() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::map<MspId, StateId>& entries() const { return entries_; }

  /// Replace this DV entirely (the shared-variable *write* rule of §3.3:
  /// a write replaces the variable's DV with the writer session's DV).
  void ReplaceWith(const DependencyVector& other) { entries_ = other.entries_; }

  void EncodeTo(BinaryWriter* w) const;
  Status DecodeFrom(BinaryReader* r);

  /// Approximate wire size in bytes (for message-overhead accounting).
  size_t WireSize() const;

  std::string ToString() const;

  bool operator==(const DependencyVector& o) const {
    return entries_ == o.entries_;
  }

 private:
  std::map<MspId, StateId> entries_;
};

}  // namespace msplog
