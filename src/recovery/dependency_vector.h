// DependencyVector (DV) — optimistic-logging dependency tracking per §3.1.
//
// A DV maps each MSP the owner transitively depends on to a StateId
// (epoch + state number). It is attached to every message sent within a
// service domain and merged (item-wise maximum) into the receiver's DV.
// Per §3.2 every *session* carries its own DV (not the whole MSP), and per
// §3.3 every shared variable carries one too, with the read/write-asymmetric
// propagation rules that avoid false dependencies.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/serde.h"
#include "common/status.h"
#include "recovery/state_id.h"

namespace msplog {

class DependencyVector {
 public:
  DependencyVector() = default;

  /// Item-wise maximum merge: for each entry in `other`, keep the larger
  /// (epoch, sn) pair. This is the receive-side rule of Fig. 7.
  void Merge(const DependencyVector& other);

  /// Set the owner's own entry (or any entry) outright.
  void Set(const MspId& msp, StateId id) {
    entries_[msp] = id;
    ++version_;
  }

  /// Raise `msp`'s entry to at least `id`.
  void Raise(const MspId& msp, StateId id);

  std::optional<StateId> Get(const MspId& msp) const;
  void Remove(const MspId& msp) {
    entries_.erase(msp);
    ++version_;
  }
  void Clear() {
    entries_.clear();
    ++version_;
  }

  size_t entry_count() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::map<MspId, StateId>& entries() const { return entries_; }

  /// Replace this DV entirely (the shared-variable *write* rule of §3.3:
  /// a write replaces the variable's DV with the writer session's DV).
  void ReplaceWith(const DependencyVector& other) {
    entries_ = other.entries_;
    ++version_;
  }

  void EncodeTo(BinaryWriter* w) const;
  Status DecodeFrom(BinaryReader* r);

  /// Approximate wire size in bytes (for message-overhead accounting).
  size_t WireSize() const;

  /// Exact size EncodeTo will produce — hot paths precompute this to
  /// reserve arena/wire space and encode in place (unlike WireSize, which
  /// assumes 1-byte varints and exists for overhead accounting only).
  size_t EncodedSize() const;

  /// Mutation counter: bumped by every mutator (including no-op-looking
  /// ones — over-counting is safe, under-counting is not). Lets owners
  /// cache the encoded wire form keyed by (object, version) and skip
  /// re-encoding when the DV hasn't changed. Copies carry the source's
  /// version; the counter is only meaningful against one object identity.
  uint64_t version() const { return version_; }

  std::string ToString() const;

  bool operator==(const DependencyVector& o) const {
    return entries_ == o.entries_;
  }

 private:
  std::map<MspId, StateId> entries_;
  uint64_t version_ = 1;  // starts nonzero so 0 can mean "no cached encode"
};

}  // namespace msplog
