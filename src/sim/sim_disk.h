// SimDisk — a durable byte store with the latency model of §5.2.
//
// The paper derives its analysis from a 7200 RPM disk with 63 sectors per
// track, write track-to-track seek 1.2 ms and average random seek 10.5 ms:
//
//   TFn = rot/2 + n/63·rot + n/63·tts          (rot = 60000/7200 ms)
//
// plus an occasional full random seek caused by the OS sharing the disk
// (the paper folds this in as TF2 ≈ 4.5 + 10.5/3 ≈ 8 ms, i.e. one extra
// seek roughly every third flush). We implement exactly this model with
// every parameter configurable.
//
// Durability model: bytes written through WriteAt/Append are durable — they
// survive Msp::Crash(), which only discards MSP-held buffers. A single
// in-flight I/O per disk is enforced by holding the I/O mutex across the
// latency sleep, which is what makes multi-client workloads saturate the
// log disk the way Fig. 17 shows.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "audit/mutex.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "common/status.h"
#include "sim/sim_env.h"

namespace msplog {

/// Physical parameters of a simulated disk (defaults = the paper's disk).
struct DiskGeometry {
  double rpm = 7200.0;
  double sectors_per_track = 63.0;
  double write_track_to_track_ms = 1.2;
  double read_track_to_track_ms = 1.0;
  double write_avg_seek_ms = 10.5;
  double read_avg_seek_ms = 9.5;
  /// Probability that an I/O pays a full random seek because the OS also
  /// uses the disk (the paper estimates ~1/3 for writes on the log disk).
  double os_interference_prob = 1.0 / 3.0;
  uint32_t sector_bytes = 512;

  double RotationMs() const { return 60000.0 / rpm; }

  /// The paper's flush-time formula TFn for an n-sector write, without the
  /// probabilistic OS-interference seek.
  double WriteLatencyMs(uint64_t sectors) const {
    double n = static_cast<double>(sectors);
    return RotationMs() / 2.0 + n / sectors_per_track * RotationMs() +
           n / sectors_per_track * write_track_to_track_ms;
  }

  /// Same shape for sequential reads (used for 64 KB recovery log reads).
  double ReadLatencyMs(uint64_t sectors) const {
    double n = static_cast<double>(sectors);
    return RotationMs() / 2.0 + n / sectors_per_track * RotationMs() +
           n / sectors_per_track * read_track_to_track_ms;
  }
};

/// Write-completion notification: which byte range of which file just
/// became durable. Delivered AFTER the write's latency has been charged and
/// both the I/O and state mutexes have been released, so hooks may take
/// their own locks (e.g. a log advancing its durable-LSN watermark) without
/// creating a disk→client lock-order edge.
struct DiskCompletion {
  const std::string* file;  ///< valid only for the duration of the call
  uint64_t offset;
  uint64_t bytes;
};
using DiskCompletionHook = std::function<void(const DiskCompletion&)>;

/// A named durable byte store ("disk") holding one or more files. Thread
/// safe. Files are sparse: writing past the end zero-fills the gap.
class SimDisk {
 public:
  SimDisk(SimEnvironment* env, std::string name,
          DiskGeometry geometry = DiskGeometry(), uint64_t seed = 1);

  const std::string& name() const { return name_; }
  const DiskGeometry& geometry() const { return geometry_; }

  /// Durably write `data` at `offset` of `file`, charging write latency for
  /// ceil(size / sector) sectors (plus any OS-interference seek).
  Status WriteAt(const std::string& file, uint64_t offset, ByteView data);

  /// Append `data` to `file`.
  Status Append(const std::string& file, ByteView data);

  /// Read up to `n` bytes from `offset`; short reads at EOF are not errors.
  /// Charges read latency for the sectors touched.
  Status ReadAt(const std::string& file, uint64_t offset, uint64_t n,
                Bytes* out);

  /// Truncate `file` to `size` bytes (creates it if missing). Charged as a
  /// one-sector metadata write.
  Status Truncate(const std::string& file, uint64_t size);

  /// Charge the latency and accounting of an `sectors`-sector write without
  /// transferring data — models a sync/barrier call that rewrites an
  /// already-durable block because the caller did not coalesce.
  void Barrier(uint64_t sectors = 1);

  /// Release [offset, offset+length) of `file` back to the filesystem
  /// (FALLOC_FL_PUNCH_HOLE semantics): the range reads back as zeros, file
  /// size and later offsets are unchanged. Charged as one metadata write.
  Status PunchHole(const std::string& file, uint64_t offset, uint64_t length);

  Status Delete(const std::string& file);
  bool Exists(const std::string& file) const;
  uint64_t FileSize(const std::string& file) const;
  std::vector<std::string> ListFiles() const;

  /// Wipe every file — used by tests that re-create a world from scratch.
  void Format();

  /// Disable latency charging (tests that only care about contents).
  void set_charge_latency(bool v) { charge_latency_ = v; }

  /// Register a completion hook, invoked after every WriteAt/Append data
  /// write (not barriers or metadata ops) with no disk locks held. Returns
  /// an id for RemoveCompletionHook. The caller must remove the hook before
  /// destroying whatever it captures.
  int AddCompletionHook(DiskCompletionHook hook);
  void RemoveCompletionHook(int id);

 private:
  void ChargeWrite(uint64_t bytes);
  void ChargeRead(uint64_t bytes);
  void NotifyCompletion(const std::string& file, uint64_t offset,
                        uint64_t bytes) EXCLUDES(state_mu_, io_mu_);

  SimEnvironment* env_;
  std::string name_;
  DiskGeometry geometry_;
  bool charge_latency_ = true;
  /// Model I/O latency distributions ("disk.write_ms" / "disk.read_ms").
  obs::Histogram* hist_write_ms_;
  obs::Histogram* hist_read_ms_;

  mutable audit::Mutex state_mu_{"sim_disk.state"};
  /// Held across latency sleeps: one I/O at a time. Protects no data —
  /// it models the single disk arm.
  audit::Mutex io_mu_{"sim_disk.io"};
  std::map<std::string, Bytes> files_ GUARDED_BY(state_mu_);
  audit::Mutex rng_mu_{"sim_disk.rng"};
  Rng rng_ GUARDED_BY(rng_mu_);
  mutable audit::Mutex hooks_mu_{"sim_disk.hooks"};
  int next_hook_id_ GUARDED_BY(hooks_mu_) = 1;
  std::map<int, DiskCompletionHook> completion_hooks_ GUARDED_BY(hooks_mu_);
};

}  // namespace msplog
